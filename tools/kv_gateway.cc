// Serving-fleet head + gateway process: the front door of a live KV cluster.
//
//   kv_gateway --backup DIR [--port N] [--partitions N] [--slo-ms F]
//              [--fixed-batch N] [--high-water N] [--low-water N]
//              [--min-members N] [--auto-recover-ms N]
//
// Run against serve workers (tools/elastic_worker --serve):
//
//   term 1: kv_gateway --backup /tmp/kv --port 7600
//   term 2: elastic_worker --app kv --serve --head-port 7600 --id 1 \
//             --backup /tmp/kv --ckpt-interval-ms 100
//   term 3: kv_loadgen --port 7600 --mode bench --duration-ms 2000
//
// Prints "HEAD port=<membership/serve port>" at start and "SERVING
// members=<n>" once the fleet is assigned; clients (kv_loadgen, KvClient)
// connect to the same port. SIGTERM/SIGINT prints a final GWSTATS line and
// exits cleanly. scripts/net_smoke.sh drives this as the serve-phase smoke.
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "src/runtime/elastic.h"
#include "src/serve/gateway.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;
void OnSignal(int) { g_stop = 1; }

[[noreturn]] void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --backup DIR [--port N] [--partitions N] "
               "[--slo-ms F] [--fixed-batch N] [--high-water N] "
               "[--low-water N] [--min-members N] [--auto-recover-ms N]\n",
               argv0);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  uint16_t port = 0;
  std::string backup;
  uint32_t partitions = 4;
  size_t min_members = 1;
  int auto_recover_ms = 0;
  sdg::serve::GatewayOptions gw;
  for (int i = 1; i < argc; ++i) {
    auto need = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        Usage(argv[0]);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--port") == 0) {
      port = static_cast<uint16_t>(std::atoi(need("--port")));
    } else if (std::strcmp(argv[i], "--backup") == 0) {
      backup = need("--backup");
    } else if (std::strcmp(argv[i], "--partitions") == 0) {
      partitions = static_cast<uint32_t>(std::atoi(need("--partitions")));
    } else if (std::strcmp(argv[i], "--slo-ms") == 0) {
      gw.batcher.slo_p99_ms = std::atof(need("--slo-ms"));
    } else if (std::strcmp(argv[i], "--fixed-batch") == 0) {
      gw.fixed_batch = static_cast<size_t>(std::atoi(need("--fixed-batch")));
    } else if (std::strcmp(argv[i], "--high-water") == 0) {
      gw.admission.high_water =
          std::strtoull(need("--high-water"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--low-water") == 0) {
      gw.admission.low_water = std::strtoull(need("--low-water"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--min-members") == 0) {
      min_members = static_cast<size_t>(std::atoi(need("--min-members")));
    } else if (std::strcmp(argv[i], "--auto-recover-ms") == 0) {
      auto_recover_ms = std::atoi(need("--auto-recover-ms"));
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      Usage(argv[0]);
    }
  }
  if (backup.empty()) {
    Usage(argv[0]);
  }

  sdg::elastic::ElasticHeadOptions options;
  options.port = port;
  options.state = "store";
  options.entries = {"put", "get", "del"};  // must match --serve workers
  options.partitions = partitions;
  options.backup_root = backup;
  options.auto_recover_ms = auto_recover_ms;
  sdg::elastic::ElasticHead head(std::move(options));
  sdg::Status st = head.Start();
  if (!st.ok()) {
    std::fprintf(stderr, "start: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("HEAD port=%u\n", static_cast<unsigned>(head.port()));
  std::fflush(stdout);

  gw.partitions = partitions;
  sdg::serve::ServeGateway gateway(&head, gw);
  st = gateway.Start();
  if (!st.ok()) {
    std::fprintf(stderr, "gateway: %s\n", st.ToString().c_str());
    return 1;
  }

  if (!head.WaitForMembers(min_members, 60000) ||
      !head.WaitForAssignment(60000)) {
    std::fprintf(stderr, "fleet never assembled\n");
    return 1;
  }
  std::printf("SERVING members=%zu\n", min_members);
  std::fflush(stdout);

  std::signal(SIGTERM, OnSignal);
  std::signal(SIGINT, OnSignal);
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  sdg::serve::ServeGateway::Stats s = gateway.stats();
  gateway.Stop();
  std::printf(
      "GWSTATS accepted=%llu shed=%llu puts=%llu dels=%llu strong_gets=%llu "
      "replica_hits=%llu replica_misses=%llu timeouts=%llu errors=%llu "
      "batches=%llu batch=%zu p99_ms=%.3f epochs=%llu\n",
      static_cast<unsigned long long>(s.accepted),
      static_cast<unsigned long long>(s.shed),
      static_cast<unsigned long long>(s.puts),
      static_cast<unsigned long long>(s.dels),
      static_cast<unsigned long long>(s.strong_gets),
      static_cast<unsigned long long>(s.replica_hits),
      static_cast<unsigned long long>(s.replica_misses),
      static_cast<unsigned long long>(s.timeouts),
      static_cast<unsigned long long>(s.errors),
      static_cast<unsigned long long>(s.batches), s.batch_size,
      s.last_window_p99_ms,
      static_cast<unsigned long long>(s.replica_epochs_applied));
  std::fflush(stdout);
  head.Stop();
  return 0;
}
