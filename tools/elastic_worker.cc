// Standalone elastic worker process: joins a running deployment's head and
// serves state partitions until told otherwise. The multi-process chaos
// harness (tests/harness/chaos_process_test.cc) and the scale-out smoke
// (scripts/net_smoke.sh) spawn this binary as the real-process half of the
// membership/migration tests.
//
//   elastic_worker --app kv --head-port 9000 --id 1 --backup /tmp/b \
//                  [--data-port 0] [--partitions 4] [--slow-us 0] \
//                  [--ckpt-interval-ms 0] [--crash-at migrate.base] [--name w1]
//
// Prints "READY port=<data port>" on stdout once joined (the parent learns
// the ephemeral port from it), then runs until SIGTERM/SIGINT. Crash points
// _Exit(41) from inside the migration machinery (see ElasticWorkerOptions).
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "src/apps/kv.h"
#include "src/apps/wordcount.h"
#include "src/common/logging.h"
#include "src/runtime/elastic.h"
#include "src/state/spill.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;
void OnSignal(int) { g_stop = 1; }

[[noreturn]] void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --app kv|wordcount --head-port N --id N --backup "
               "DIR [--head-host H] [--data-port N] [--partitions N] "
               "[--slow-us N] [--ckpt-interval-ms N] [--crash-at PHASE] "
               "[--name S] [--serve] [--no-mux] [--spill-budget-kb N] "
               "[--spill-dir DIR] [--store-stripes N]\n",
               argv0);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  std::string app = "kv";
  bool serve = false;
  uint64_t spill_budget_kb = 0;
  std::string spill_dir;
  uint32_t store_stripes = 0;
  sdg::elastic::ElasticWorkerOptions options;
  options.partitions = 4;
  for (int i = 1; i < argc; ++i) {
    auto need = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        Usage(argv[0]);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--app") == 0) {
      app = need("--app");
    } else if (std::strcmp(argv[i], "--head-host") == 0) {
      options.head_host = need("--head-host");
    } else if (std::strcmp(argv[i], "--head-port") == 0) {
      options.head_port = static_cast<uint16_t>(std::atoi(need("--head-port")));
    } else if (std::strcmp(argv[i], "--data-port") == 0) {
      options.data_port = static_cast<uint16_t>(std::atoi(need("--data-port")));
    } else if (std::strcmp(argv[i], "--id") == 0) {
      options.member_id = static_cast<uint32_t>(std::atoi(need("--id")));
    } else if (std::strcmp(argv[i], "--backup") == 0) {
      options.backup_root = need("--backup");
    } else if (std::strcmp(argv[i], "--partitions") == 0) {
      options.partitions =
          static_cast<uint32_t>(std::atoi(need("--partitions")));
    } else if (std::strcmp(argv[i], "--slow-us") == 0) {
      options.slow_us = std::atoi(need("--slow-us"));
    } else if (std::strcmp(argv[i], "--ckpt-interval-ms") == 0) {
      options.checkpoint_interval_ms = std::atoi(need("--ckpt-interval-ms"));
    } else if (std::strcmp(argv[i], "--crash-at") == 0) {
      options.crash_at = need("--crash-at");
    } else if (std::strcmp(argv[i], "--name") == 0) {
      options.name = need("--name");
    } else if (std::strcmp(argv[i], "--serve") == 0) {
      serve = true;
    } else if (std::strcmp(argv[i], "--no-mux") == 0) {
      options.mux_replies = false;
    } else if (std::strcmp(argv[i], "--spill-budget-kb") == 0) {
      spill_budget_kb =
          static_cast<uint64_t>(std::atoll(need("--spill-budget-kb")));
    } else if (std::strcmp(argv[i], "--spill-dir") == 0) {
      spill_dir = need("--spill-dir");
    } else if (std::strcmp(argv[i], "--store-stripes") == 0) {
      store_stripes =
          static_cast<uint32_t>(std::atoi(need("--store-stripes")));
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      Usage(argv[0]);
    }
  }
  if (options.head_port == 0 || options.member_id == 0 ||
      options.backup_root.empty()) {
    Usage(argv[0]);
  }
  if (options.name.empty()) {
    options.name = "w" + std::to_string(options.member_id);
  }
  // "spill.*" crash points live in the state layer, not the migration
  // machinery — arm them there and keep them out of ElasticWorkerOptions.
  if (options.crash_at.rfind("spill.", 0) == 0) {
    sdg::state::ArmSpillCrashPoint(options.crash_at);
    options.crash_at.clear();
  }

  sdg::Result<sdg::graph::Sdg> g =
      sdg::Status(sdg::StatusCode::kInvalidArgument, "unset");
  if (app == "kv") {
    sdg::apps::KvOptions kv;
    kv.partitions = options.partitions;
    if (spill_budget_kb > 0) {
      kv.spill_budget_bytes = spill_budget_kb * 1024;
      // Spill dirs are wiped on startup, so they must be process-private:
      // default to a member-scoped subtree of the backup root.
      kv.spill_dir = !spill_dir.empty()
                         ? spill_dir
                         : options.backup_root + "/spill-m" +
                               std::to_string(options.member_id);
      kv.store_stripes = store_stripes;
    }
    g = sdg::apps::BuildKvSdg(kv);
    options.state = "store";
    if (serve) {
      // Serve fleet: gets flow through the dataflow too (strong reads ride
      // user_tag to the "get" sink), and checkpoints feed the replica stream.
      // The entries list numbers source instances, so head and workers must
      // agree on it — plain fleets keep {"put", "del"}.
      options.entries = {"put", "get", "del"};
      options.serve_feed = true;
      options.forward_sinks = {"get"};
    } else {
      options.entries = {"put", "del"};
    }
  } else if (app == "wordcount") {
    sdg::apps::WordCountOptions wc;
    wc.count_partitions = options.partitions;
    g = sdg::apps::BuildWordCountSdg(wc);
    options.state = "counts";
    options.entries = {"line"};
  } else {
    std::fprintf(stderr, "unknown app %s\n", app.c_str());
    Usage(argv[0]);
  }
  if (!g.ok()) {
    std::fprintf(stderr, "build sdg: %s\n", g.status().ToString().c_str());
    return 1;
  }

  sdg::elastic::ElasticWorker worker(std::move(*g), std::move(options));
  sdg::Status st = worker.Start();
  if (!st.ok()) {
    std::fprintf(stderr, "start: %s\n", st.ToString().c_str());
    return 1;
  }
  std::signal(SIGTERM, OnSignal);
  std::signal(SIGINT, OnSignal);
  if (!worker.WaitJoined(30000)) {
    std::fprintf(stderr, "never joined the head\n");
    worker.Stop();
    return 1;
  }
  std::printf("READY port=%u\n", static_cast<unsigned>(worker.data_port()));
  std::fflush(stdout);
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  worker.Stop();
  std::printf("STOPPED ingested=%llu\n",
              static_cast<unsigned long long>(worker.ItemsIngested()));
  return 0;
}
