// Client-side driver for a serving KV fleet (kv_gateway + --serve workers).
//
//   kv_loadgen --port N [--host H] --mode bench|smoke
//     bench: runs the open/closed-loop load generator and prints one JSON
//            line (machine-readable; offered_qps 0 = closed loop).
//     smoke: deterministic fill / delete / overload-burst / drain / verify
//            sequence for scripts/net_smoke.sh — checks the exact KV
//            contents through strong gets, demands a nonzero shed count
//            under the deliberate burst, and at least one bounded-stale get
//            answered from a replica. Prints SHED / REPLICA / KV OK lines.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "src/serve/client.h"
#include "src/serve/loadgen.h"

namespace {

[[noreturn]] void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --port N [--host H] [--mode bench|smoke]\n"
      "  bench: [--connections N] [--duration-ms N] [--offered-qps F]\n"
      "         [--get-fraction F] [--stale-fraction F] [--max-lag N]\n"
      "         [--key-space N] [--value-bytes N] [--pipeline N] [--seed N]\n"
      "  smoke: [--keys N] [--burst N]\n",
      argv0);
  std::exit(2);
}

// Sync call with bounded retries on kOverloaded (shedding is a normal,
// always-retriable outcome).
template <typename Fn>
sdg::Result<sdg::net::ResponseMsg> Retry(Fn&& fn, int attempts = 200) {
  for (int i = 0; i < attempts; ++i) {
    auto resp = fn();
    if (!resp.ok() || resp->code != sdg::net::kRespOverloaded) {
      return resp;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return sdg::Status(sdg::StatusCode::kUnavailable, "still overloaded");
}

int RunSmoke(const std::string& host, uint16_t port, int64_t keys,
             int burst) {
  sdg::serve::KvClient client({host, port});
  if (sdg::Status st = client.Connect(); !st.ok()) {
    std::fprintf(stderr, "connect: %s\n", st.ToString().c_str());
    return 1;
  }

  // 1. Deterministic fill + deletes: the reference model is exact.
  std::map<int64_t, std::string> model;
  for (int64_t k = 0; k < keys; ++k) {
    std::string v = "v" + std::to_string(k);
    auto resp = Retry([&] { return client.Put(k, v); });
    if (!resp.ok() || resp->code != sdg::net::kRespOk) {
      std::fprintf(stderr, "put %lld failed\n",
                   static_cast<long long>(k));
      return 1;
    }
    model[k] = v;
  }
  for (int64_t k = 0; k < keys; k += 5) {
    auto resp = Retry([&] { return client.Del(k); });
    if (!resp.ok() || resp->code != sdg::net::kRespOk) {
      std::fprintf(stderr, "del %lld failed\n", static_cast<long long>(k));
      return 1;
    }
    model.erase(k);
  }

  // 2. Overload burst: pipeline far more puts than the admission high-water
  // (keys outside the verify range). The gateway must shed some with
  // kOverloaded, and every response must still arrive.
  uint64_t shed = 0;
  uint64_t first_burst_id = 0;
  for (int i = 0; i < burst; ++i) {
    sdg::net::RequestMsg req;
    req.request_id = client.NextRequestId();
    if (i == 0) {
      first_burst_id = req.request_id;
    }
    req.op = sdg::net::kOpPut;
    req.key = 1000000 + i;
    req.value = "burst";
    if (sdg::Status st = client.Send(req); !st.ok()) {
      std::fprintf(stderr, "burst send: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  (void)first_burst_id;
  for (int i = 0; i < burst; ++i) {
    auto resp = client.Recv();
    if (!resp.ok()) {
      std::fprintf(stderr, "burst recv: %s\n",
                   resp.status().ToString().c_str());
      return 1;
    }
    if (resp->code == sdg::net::kRespOverloaded) {
      ++shed;
    }
  }
  std::printf("SHED n=%llu\n", static_cast<unsigned long long>(shed));
  std::fflush(stdout);
  if (shed == 0) {
    std::fprintf(stderr, "burst of %d never shed\n", burst);
    return 1;
  }

  // 3. Drain, then verify the exact contents via strong gets. Writes and
  // reads ride separate per-entry channels, so allow a short settle window
  // per key rather than demanding instant agreement.
  auto check_key = [&](int64_t k, bool stale, uint64_t* replica_hits) {
    std::string want;
    if (auto it = model.find(k); it != model.end()) {
      want = it->second;
    }
    for (int attempt = 0; attempt < 100; ++attempt) {
      auto resp = Retry([&] { return client.Get(k, stale, /*max_lag=*/8); });
      if (!resp.ok() || resp->code != sdg::net::kRespOk) {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        continue;
      }
      bool from_replica =
          (resp->flags & sdg::net::kRespFromReplica) != 0;
      if (from_replica && replica_hits != nullptr) {
        ++*replica_hits;
      }
      if (resp->value == want) {
        return true;
      }
      // A stale answer may legitimately trail the last writes briefly.
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    std::fprintf(stderr, "key %lld: wrong value (want '%s')\n",
                 static_cast<long long>(k), want.c_str());
    return false;
  };
  for (int64_t k = 0; k < keys; ++k) {
    if (!check_key(k, /*stale=*/false, nullptr)) {
      return 1;
    }
  }

  // 4. Bounded-stale reads: give the checkpoint/feed cadence a moment, then
  // demand that replicas answer (and answer exactly — the fleet is quiesced).
  std::this_thread::sleep_for(std::chrono::milliseconds(700));
  uint64_t replica_hits = 0;
  for (int64_t k = 0; k < keys; ++k) {
    if (!check_key(k, /*stale=*/true, &replica_hits)) {
      return 1;
    }
  }
  std::printf("REPLICA hits=%llu\n",
              static_cast<unsigned long long>(replica_hits));
  if (replica_hits == 0) {
    std::fprintf(stderr, "no stale get was ever answered from a replica\n");
    return 1;
  }
  std::printf("KV OK n=%lld\n", static_cast<long long>(keys));
  std::fflush(stdout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string mode = "bench";
  sdg::serve::LoadGenOptions o;
  int64_t keys = 200;
  int burst = 4000;
  for (int i = 1; i < argc; ++i) {
    auto need = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        Usage(argv[0]);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--host") == 0) {
      o.host = need("--host");
    } else if (std::strcmp(argv[i], "--port") == 0) {
      o.port = static_cast<uint16_t>(std::atoi(need("--port")));
    } else if (std::strcmp(argv[i], "--mode") == 0) {
      mode = need("--mode");
    } else if (std::strcmp(argv[i], "--connections") == 0) {
      o.connections = std::atoi(need("--connections"));
    } else if (std::strcmp(argv[i], "--duration-ms") == 0) {
      o.duration_ms = std::atoi(need("--duration-ms"));
    } else if (std::strcmp(argv[i], "--offered-qps") == 0) {
      o.offered_qps = std::atof(need("--offered-qps"));
    } else if (std::strcmp(argv[i], "--get-fraction") == 0) {
      o.get_fraction = std::atof(need("--get-fraction"));
    } else if (std::strcmp(argv[i], "--stale-fraction") == 0) {
      o.stale_fraction = std::atof(need("--stale-fraction"));
    } else if (std::strcmp(argv[i], "--max-lag") == 0) {
      o.max_epoch_lag = static_cast<uint32_t>(std::atoi(need("--max-lag")));
    } else if (std::strcmp(argv[i], "--key-space") == 0) {
      o.key_space = std::atoll(need("--key-space"));
    } else if (std::strcmp(argv[i], "--value-bytes") == 0) {
      o.value_bytes = std::atoi(need("--value-bytes"));
    } else if (std::strcmp(argv[i], "--pipeline") == 0) {
      o.pipeline = std::atoi(need("--pipeline"));
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      o.seed = std::strtoull(need("--seed"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--keys") == 0) {
      keys = std::atoll(need("--keys"));
    } else if (std::strcmp(argv[i], "--burst") == 0) {
      burst = std::atoi(need("--burst"));
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      Usage(argv[0]);
    }
  }
  if (o.port == 0) {
    Usage(argv[0]);
  }

  if (mode == "smoke") {
    return RunSmoke(o.host, o.port, keys, burst);
  }
  if (mode != "bench") {
    Usage(argv[0]);
  }
  auto report = sdg::serve::RunLoadGen(o);
  if (!report.ok()) {
    std::fprintf(stderr, "loadgen: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "{\"mode\":\"bench\",\"offered_qps\":%.1f,\"connections\":%d,"
      "\"sent\":%llu,\"ok\":%llu,\"overloaded\":%llu,\"errors\":%llu,"
      "\"replica\":%llu,\"achieved_qps\":%.1f,\"p50_ms\":%.3f,"
      "\"p99_ms\":%.3f}\n",
      o.offered_qps, o.connections,
      static_cast<unsigned long long>(report->sent),
      static_cast<unsigned long long>(report->ok),
      static_cast<unsigned long long>(report->overloaded),
      static_cast<unsigned long long>(report->errors),
      static_cast<unsigned long long>(report->replica_answers),
      report->achieved_qps, report->latency_ms.p50, report->latency_ms.p99);
  std::fflush(stdout);
  return 0;
}
