// sdg_explain: inspect how the bundled applications become SDGs.
//
// Usage: sdg_explain <cf|kv|wordcount|lr> [nodes]
//
// Prints, for the chosen application: the java2sdg translation report (when
// the app is defined as an annotated imperative program), the resulting
// graph as Graphviz DOT, the §3.3 four-step node allocation for `nodes`
// simulated nodes (default 4), and the materialised topology of a live
// deployment.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/apps/cf.h"
#include "src/apps/kv.h"
#include "src/apps/lr.h"
#include "src/apps/wordcount.h"
#include "src/graph/allocation.h"
#include "src/runtime/cluster.h"

namespace {

int Fail(const std::string& message) {
  std::fprintf(stderr, "sdg_explain: %s\n", message.c_str());
  std::fprintf(stderr, "usage: sdg_explain <cf|kv|wordcount|lr> [nodes]\n");
  return 1;
}

void Explain(sdg::graph::Sdg graph, const std::string& report,
             uint32_t nodes) {
  if (!report.empty()) {
    std::printf("=== translation report (Fig. 3 pipeline) ===\n%s\n",
                report.c_str());
  }
  std::printf("=== graph (Graphviz) ===\n%s\n", graph.ToDot().c_str());

  auto alloc = sdg::graph::AllocateSdg(graph, nodes);
  if (alloc.ok()) {
    std::printf("=== allocation onto %u nodes (Section 3.3) ===\n%s\n", nodes,
                alloc->ToString(graph).c_str());
  }

  sdg::runtime::ClusterOptions options;
  options.num_nodes = nodes;
  sdg::runtime::Cluster cluster(options);
  auto d = cluster.Deploy(std::move(graph));
  if (d.ok()) {
    std::printf("=== materialised topology ===\n%s",
                (*d)->DescribeTopology().c_str());
    (*d)->Shutdown();
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return Fail("missing application name");
  }
  std::string app = argv[1];
  uint32_t nodes = argc > 2 ? static_cast<uint32_t>(std::atoi(argv[2])) : 4;
  if (nodes == 0) {
    return Fail("nodes must be positive");
  }

  if (app == "cf") {
    sdg::apps::CfOptions opt;
    opt.num_items = 100;
    opt.user_partitions = 2;
    opt.cooc_replicas = 2;
    auto t = sdg::apps::BuildCfSdg(opt);
    if (!t.ok()) {
      return Fail(t.status().ToString());
    }
    Explain(std::move(t->sdg), t->report, nodes);
  } else if (app == "kv") {
    auto t = sdg::apps::BuildKvSdgViaTranslator({.partitions = 2});
    if (!t.ok()) {
      return Fail(t.status().ToString());
    }
    Explain(std::move(t->sdg), t->report, nodes);
  } else if (app == "wordcount") {
    auto g = sdg::apps::BuildWordCountSdg({.count_partitions = 2});
    if (!g.ok()) {
      return Fail(g.status().ToString());
    }
    Explain(std::move(*g), "", nodes);
  } else if (app == "lr") {
    auto g = sdg::apps::BuildLrSdg({.dimensions = 8, .worker_replicas = 2});
    if (!g.ok()) {
      return Fail(g.status().ToString());
    }
    Explain(std::move(*g), "", nodes);
  } else {
    return Fail("unknown application '" + app + "'");
  }
  return 0;
}
