// Differential chaos suites: one parameterised suite per application, each
// seed driving a fully deterministic schedule of ops, edge faults,
// checkpoints, crashes and recoveries (see chaos_harness.h). Run a specific
// seed with --gtest_filter=...seedN or widen the sweep with
// SDG_CHAOS_SEED_RANGE="lo-hi".
#include <gtest/gtest.h>

#include "tests/harness/chaos_harness.h"

namespace sdg::harness {
namespace {

class KvChaosTest : public ::testing::TestWithParam<uint64_t> {};
TEST_P(KvChaosTest, MatchesReferenceModel) { RunKvChaos(GetParam()); }
INSTANTIATE_TEST_SUITE_P(Seeds, KvChaosTest,
                         ::testing::ValuesIn(ChaosSeeds()), SeedTestName);

class WordCountChaosTest : public ::testing::TestWithParam<uint64_t> {};
TEST_P(WordCountChaosTest, MatchesReferenceModel) {
  RunWordCountChaos(GetParam());
}
INSTANTIATE_TEST_SUITE_P(Seeds, WordCountChaosTest,
                         ::testing::ValuesIn(ChaosSeeds()), SeedTestName);

class LrChaosTest : public ::testing::TestWithParam<uint64_t> {};
TEST_P(LrChaosTest, MatchesReferenceModel) { RunLrChaos(GetParam()); }
INSTANTIATE_TEST_SUITE_P(Seeds, LrChaosTest,
                         ::testing::ValuesIn(ChaosSeeds()), SeedTestName);

class KMeansChaosTest : public ::testing::TestWithParam<uint64_t> {};
TEST_P(KMeansChaosTest, MatchesReferenceModel) { RunKMeansChaos(GetParam()); }
INSTANTIATE_TEST_SUITE_P(Seeds, KMeansChaosTest,
                         ::testing::ValuesIn(ChaosSeeds()), SeedTestName);

class CfChaosTest : public ::testing::TestWithParam<uint64_t> {};
TEST_P(CfChaosTest, MatchesReferenceModel) { RunCfChaos(GetParam()); }
INSTANTIATE_TEST_SUITE_P(Seeds, CfChaosTest,
                         ::testing::ValuesIn(ChaosSeeds()), SeedTestName);

}  // namespace
}  // namespace sdg::harness
