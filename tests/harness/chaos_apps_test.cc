// Differential chaos suites: one parameterised suite per application, each
// seed driving a fully deterministic schedule of ops, edge faults,
// checkpoints, crashes and recoveries (see chaos_harness.h). Run a specific
// seed with --gtest_filter=...seedN or widen the sweep with
// SDG_CHAOS_SEED_RANGE="lo-hi".
#include <gtest/gtest.h>

#include "tests/harness/chaos_harness.h"

namespace sdg::harness {
namespace {

class KvChaosTest : public ::testing::TestWithParam<uint64_t> {};
TEST_P(KvChaosTest, MatchesReferenceModel) { RunKvChaos(GetParam()); }
INSTANTIATE_TEST_SUITE_P(Seeds, KvChaosTest,
                         ::testing::ValuesIn(ChaosSeeds()), SeedTestName);

class WordCountChaosTest : public ::testing::TestWithParam<uint64_t> {};
TEST_P(WordCountChaosTest, MatchesReferenceModel) {
  RunWordCountChaos(GetParam());
}
INSTANTIATE_TEST_SUITE_P(Seeds, WordCountChaosTest,
                         ::testing::ValuesIn(ChaosSeeds()), SeedTestName);

class LrChaosTest : public ::testing::TestWithParam<uint64_t> {};
TEST_P(LrChaosTest, MatchesReferenceModel) { RunLrChaos(GetParam()); }
INSTANTIATE_TEST_SUITE_P(Seeds, LrChaosTest,
                         ::testing::ValuesIn(ChaosSeeds()), SeedTestName);

class KMeansChaosTest : public ::testing::TestWithParam<uint64_t> {};
TEST_P(KMeansChaosTest, MatchesReferenceModel) { RunKMeansChaos(GetParam()); }
INSTANTIATE_TEST_SUITE_P(Seeds, KMeansChaosTest,
                         ::testing::ValuesIn(ChaosSeeds()), SeedTestName);

class CfChaosTest : public ::testing::TestWithParam<uint64_t> {};
TEST_P(CfChaosTest, MatchesReferenceModel) { RunCfChaos(GetParam()); }
INSTANTIATE_TEST_SUITE_P(Seeds, CfChaosTest,
                         ::testing::ValuesIn(ChaosSeeds()), SeedTestName);

// Delta-epoch variants: same apps, same seeds, but checkpoints write
// base+delta chains of compressed v2 chunks through the streaming path, so
// every recovery replays a chain in order and every armed crash between a
// base and its deltas must fall back to the last complete chain.

class KvChaosDeltaTest : public ::testing::TestWithParam<uint64_t> {};
TEST_P(KvChaosDeltaTest, MatchesReferenceModel) {
  RunKvChaos(GetParam(), /*delta_epochs=*/true);
}
INSTANTIATE_TEST_SUITE_P(Seeds, KvChaosDeltaTest,
                         ::testing::ValuesIn(ChaosSeeds()), SeedTestName);

class WordCountChaosDeltaTest : public ::testing::TestWithParam<uint64_t> {};
TEST_P(WordCountChaosDeltaTest, MatchesReferenceModel) {
  RunWordCountChaos(GetParam(), /*delta_epochs=*/true);
}
INSTANTIATE_TEST_SUITE_P(Seeds, WordCountChaosDeltaTest,
                         ::testing::ValuesIn(ChaosSeeds()), SeedTestName);

class LrChaosDeltaTest : public ::testing::TestWithParam<uint64_t> {};
TEST_P(LrChaosDeltaTest, MatchesReferenceModel) {
  RunLrChaos(GetParam(), /*delta_epochs=*/true);
}
INSTANTIATE_TEST_SUITE_P(Seeds, LrChaosDeltaTest,
                         ::testing::ValuesIn(ChaosSeeds()), SeedTestName);

class KMeansChaosDeltaTest : public ::testing::TestWithParam<uint64_t> {};
TEST_P(KMeansChaosDeltaTest, MatchesReferenceModel) {
  RunKMeansChaos(GetParam(), /*delta_epochs=*/true);
}
INSTANTIATE_TEST_SUITE_P(Seeds, KMeansChaosDeltaTest,
                         ::testing::ValuesIn(ChaosSeeds()), SeedTestName);

class CfChaosDeltaTest : public ::testing::TestWithParam<uint64_t> {};
TEST_P(CfChaosDeltaTest, MatchesReferenceModel) {
  RunCfChaos(GetParam(), /*delta_epochs=*/true);
}
INSTANTIATE_TEST_SUITE_P(Seeds, CfChaosDeltaTest,
                         ::testing::ValuesIn(ChaosSeeds()), SeedTestName);

}  // namespace
}  // namespace sdg::harness
