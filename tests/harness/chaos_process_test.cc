// Multi-process differential chaos: an in-process ElasticHead drives REAL
// elastic_worker child processes over loopback TCP, and a seeded event
// roulette kills them (SIGKILL), respawns them under the same member id /
// data port / backup root, migrates partitions live — including killing the
// source mid-migration — and checkpoints. The surviving fleet's durable
// state (read straight from the shared backup store after a final quiesce)
// must equal a single-threaded reference model: nothing lost, nothing
// double-applied. A deterministic crash-point matrix covers each phase of
// the migration protocol, and an m-to-n scenario recovers a dead worker's
// partitions across multiple survivors.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/apps/kv.h"
#include "src/checkpoint/backup_store.h"
#include "src/common/rng.h"
#include "src/runtime/elastic.h"
#include "src/state/chunk.h"
#include "src/state/keyed_dict.h"
#include "tests/common/scoped_test_dir.h"
#include "tests/harness/chaos_harness.h"
#include "tests/harness/process_fleet.h"

#ifndef SDG_ELASTIC_WORKER_BIN
#error "SDG_ELASTIC_WORKER_BIN must point at the elastic_worker binary"
#endif

namespace sdg::harness {
namespace {

constexpr uint32_t kPartitions = 4;

// One head + a fleet of worker child processes sharing a backup root.
class ProcessFleet {
 public:
  // Disk-backed store mode for every spawned worker (kv only). The spill
  // dir defaults inside the worker to a member-scoped subtree of the backup
  // root, so respawns under the same id wipe their own stale cold tier.
  uint64_t spill_budget_kb = 0;
  uint32_t store_stripes = 0;
  bool serve = false;  // kv only: serving entries + replica feed

  ProcessFleet(std::string app, std::string state,
               std::vector<std::string> entries, uint32_t partitions,
               int migrate_timeout_ms = 6000)
      : dir_("proc_chaos"), app_(std::move(app)), partitions_(partitions) {
    elastic::ElasticHeadOptions h;
    h.state = std::move(state);
    h.entries = std::move(entries);
    h.partitions = partitions;
    h.backup_root = BackupRoot();
    h.monitor_interval_ms = 50;
    h.migrate_timeout_ms = migrate_timeout_ms;
    h.use_mux = ChaosMuxEnabled();  // SDG_CHAOS_MUX=0: per-channel sockets
    head_ = std::make_unique<elastic::ElasticHead>(h);
  }

  ~ProcessFleet() {
    for (auto& [id, pid] : pids_) {
      if (pid > 0) {
        KillHard(pid);
      }
    }
    head_->Stop();
  }

  Status StartHead() { return head_->Start(); }
  elastic::ElasticHead& head() { return *head_; }
  std::string BackupRoot() const { return (dir_.path() / "backup").string(); }

  void Spawn(uint32_t id, const std::string& crash_at = "") {
    if (ports_.find(id) == ports_.end()) {
      ports_[id] = PickFreePort();
      ASSERT_NE(ports_[id], 0);
    }
    WorkerSpec spec;
    spec.app = app_;
    spec.head_port = head_->port();
    spec.member_id = id;
    spec.data_port = ports_[id];
    spec.backup_root = BackupRoot();
    spec.partitions = partitions_;
    spec.crash_at = crash_at;
    spec.serve = serve;
    spec.mux = ChaosMuxEnabled();
    spec.spill_budget_kb = spill_budget_kb;
    spec.store_stripes = store_stripes;
    pid_t pid = SpawnElasticWorker(SDG_ELASTIC_WORKER_BIN, spec);
    ASSERT_GT(pid, 0);
    pids_[id] = pid;
  }

  void Kill(uint32_t id) {
    KillHard(pids_.at(id));
    pids_[id] = -1;
  }

  // Reaps the child and returns its exit code (41 = armed crash point).
  int Reap(uint32_t id) {
    int code = WaitExit(pids_.at(id));
    pids_[id] = -1;
    return code;
  }

  int Stop(uint32_t id) {
    int code = StopSoft(pids_.at(id));
    pids_[id] = -1;
    return code;
  }

  void StopAll() {
    for (auto& [id, pid] : pids_) {
      if (pid > 0) {
        (void)StopSoft(pid);
        pid = -1;
      }
    }
  }

  std::vector<uint32_t> ids() const {
    std::vector<uint32_t> v;
    for (const auto& [id, pid] : pids_) {
      v.push_back(id);
    }
    return v;
  }

 private:
  ScopedTestDir dir_;
  std::string app_;
  uint32_t partitions_;
  std::unique_ptr<elastic::ElasticHead> head_;
  std::map<uint32_t, pid_t> pids_;
  std::map<uint32_t, uint16_t> ports_;
};

// Reads partition `p` of `state` from `member`'s latest durable epoch into
// `backend`; fails the test when the owner's store lacks the partition.
template <typename Backend>
void RestorePartitionFromBackup(const std::string& root, uint32_t member,
                                const std::string& state, uint32_t p,
                                Backend& backend) {
  checkpoint::BackupStoreOptions o;
  o.root = root;
  o.num_backup_nodes = 2;
  checkpoint::BackupStore store(o);
  auto epoch = store.LatestEpoch(member);
  ASSERT_TRUE(epoch.ok()) << "member " << member << " has no durable epoch";
  auto meta = store.ReadMeta(member, *epoch);
  ASSERT_TRUE(meta.ok());
  const checkpoint::StateInstanceMeta* sm = nullptr;
  for (const auto& s : meta->states) {
    if (s.instance == p) {
      sm = &s;
    }
  }
  ASSERT_NE(sm, nullptr) << "owner " << member << " never persisted p" << p;
  auto chunks = store.ReadChunks(member, *epoch,
                                 state + "." + std::to_string(p),
                                 sm->num_chunks);
  ASSERT_TRUE(chunks.ok()) << chunks.status().ToString();
  for (const auto& blob : *chunks) {
    ASSERT_TRUE(state::RestoreChunk(backend, blob).ok());
  }
}

// Quiesces the deployment and merges every partition's durable state (read
// from its current owner's backup) into one dictionary.
template <typename K, typename V>
void MergedDurableState(ProcessFleet& fleet, const std::string& state,
                        uint32_t partitions, std::map<K, V>* merged) {
  ASSERT_TRUE(fleet.head().AwaitQuiesce(90000))
      << "logs never drained: " << fleet.head().UnackedTotal()
      << " items unacked";
  ASSERT_TRUE(fleet.head().CheckpointAll().ok());
  std::map<uint32_t, uint32_t> owner_of;
  for (uint32_t p = 0; p < partitions; ++p) {
    owner_of[p] = fleet.head().OwnerOf(p);
    ASSERT_NE(owner_of[p], elastic::kNoOwner) << "p" << p << " unowned";
  }
  // Stop the fleet first so no concurrent checkpoint prunes epochs mid-read.
  fleet.StopAll();
  for (uint32_t p = 0; p < partitions; ++p) {
    state::KeyedDict<K, V> dict;
    RestorePartitionFromBackup(fleet.BackupRoot(), owner_of[p], state, p,
                               dict);
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
    dict.ForEach([&](const K& k, const V& v) {
      EXPECT_TRUE(merged->emplace(k, v).second)
          << "key in two partitions: " << k;
    });
  }
}

// --- Seeded kv chaos ---------------------------------------------------------

class KvProcessChaos : public ::testing::TestWithParam<uint64_t> {};

TEST_P(KvProcessChaos, MatchesReferenceModel) {
  const uint64_t seed = GetParam();
  Rng rng(seed);
  ProcessFleet fleet("kv", "store", {"put", "del"}, kPartitions);
  ASSERT_TRUE(fleet.StartHead().ok());
  fleet.Spawn(1);
  fleet.Spawn(2);
  if (::testing::Test::HasFatalFailure()) return;
  ASSERT_TRUE(fleet.head().WaitForMembers(2, 20000));
  ASSERT_TRUE(fleet.head().WaitForAssignment(20000));

  std::map<int64_t, std::string> model;
  uint64_t vseq = 0;
  // Chaos rounds are put-only: puts and dels ride DIFFERENT per-source logs,
  // and replay order across sources is undefined — racing a put against a
  // del of the same key asserts an ordering the protocol never promises.
  // Dels get their own phase after a quiesce barrier below.
  auto burst = [&](int count) {
    for (int i = 0; i < count; ++i) {
      int64_t key = static_cast<int64_t>(rng.NextBounded(300));
      std::string value = "v" + std::to_string(vseq++);
      ASSERT_TRUE(
          fleet.head().Inject(0, Tuple{Value(key), Value(value)}, 60000).ok());
      model[key] = value;
    }
  };

  for (int round = 0; round < 3; ++round) {
    burst(120);
    if (::testing::Test::HasFatalFailure()) return;
    uint32_t victim = rng.NextBounded(2) == 0 ? 1 : 2;
    uint32_t other = victim == 1 ? 2 : 1;
    switch (rng.NextBounded(5)) {
      case 0: {  // SIGKILL + respawn under the same identity, load during both
        fleet.Kill(victim);
        fleet.Spawn(victim);
        burst(40);  // injects retry while the worker rejoins and restores
        break;
      }
      case 1: {  // live migration under load
        uint32_t p = rng.NextBounded(kPartitions);
        uint32_t owner = fleet.head().OwnerOf(p);
        uint32_t target = owner == 1 ? 2 : 1;
        (void)fleet.head().MigratePartition(p, target);
        break;
      }
      case 2: {  // SIGKILL the migration source mid-flight
        uint32_t p = 0;
        for (uint32_t q = 0; q < kPartitions; ++q) {
          if (fleet.head().OwnerOf(q) == victim) {
            p = q;
          }
        }
        if (fleet.head().OwnerOf(p) != victim) {
          break;  // victim owns nothing to migrate
        }
        std::thread migrate(
            [&] { (void)fleet.head().MigratePartition(p, other); });
        std::this_thread::sleep_for(
            std::chrono::milliseconds(rng.NextBounded(40)));
        fleet.Kill(victim);
        migrate.join();
        fleet.Spawn(victim);
        break;
      }
      case 3: {  // checkpoint barrier (best effort under churn)
        (void)fleet.head().CheckpointAll(10000);
        break;
      }
      default:
        break;  // plain load round
    }
    if (::testing::Test::HasFatalFailure()) return;
  }

  // Quiesce makes every put durable and acked, so the del phase below cannot
  // race a replayed put for the same key; dels still run through a kill.
  ASSERT_TRUE(fleet.head().AwaitQuiesce(90000));
  for (int i = 0; i < 60; ++i) {
    if (i == 30) {
      uint32_t victim = rng.NextBounded(2) == 0 ? 1 : 2;
      fleet.Kill(victim);
      fleet.Spawn(victim);
      if (::testing::Test::HasFatalFailure()) return;
    }
    int64_t key = static_cast<int64_t>(rng.NextBounded(300));
    ASSERT_TRUE(fleet.head().Inject(1, Tuple{Value(key)}, 60000).ok());
    model.erase(key);
  }

  std::map<int64_t, std::string> merged;
  MergedDurableState(fleet, "store", kPartitions, &merged);
  if (::testing::Test::HasFatalFailure()) return;
  EXPECT_EQ(merged, model) << "seed " << seed << ": durable state diverged ("
                           << merged.size() << " keys vs model "
                           << model.size() << ")";
}

INSTANTIATE_TEST_SUITE_P(Seeds, KvProcessChaos,
                         ::testing::ValuesIn(ChaosSeeds()), SeedTestName);

// --- Seeded wordcount chaos --------------------------------------------------
//
// Counts increment on every delivery, so a replayed-but-not-deduped item
// shows up as an inflated count and a lost one as a deficit: the sharpest
// exactly-once assertion the differential harness has. Lines are single
// words so head routing (line hash) and the splitter's word routing agree.

class WordCountProcessChaos : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WordCountProcessChaos, CountsAreExact) {
  const uint64_t seed = GetParam();
  Rng rng(seed ^ 0x5dc0u);
  ProcessFleet fleet("wordcount", "counts", {"line"}, kPartitions);
  ASSERT_TRUE(fleet.StartHead().ok());
  fleet.Spawn(1);
  fleet.Spawn(2);
  if (::testing::Test::HasFatalFailure()) return;
  ASSERT_TRUE(fleet.head().WaitForMembers(2, 20000));
  ASSERT_TRUE(fleet.head().WaitForAssignment(20000));

  std::map<std::string, int64_t> model;
  auto burst = [&](int count) {
    for (int i = 0; i < count; ++i) {
      std::string word = "w" + std::to_string(rng.NextBounded(40));
      ASSERT_TRUE(fleet.head().Inject(0, Tuple{Value(word)}, 60000).ok());
      model[word] += 1;
    }
  };

  for (int round = 0; round < 3; ++round) {
    burst(150);
    if (::testing::Test::HasFatalFailure()) return;
    uint32_t victim = rng.NextBounded(2) == 0 ? 1 : 2;
    switch (rng.NextBounded(4)) {
      case 0: {
        fleet.Kill(victim);
        fleet.Spawn(victim);
        burst(50);  // injects retry while the worker rejoins and restores
        break;
      }
      case 1: {
        uint32_t p = rng.NextBounded(kPartitions);
        uint32_t owner = fleet.head().OwnerOf(p);
        (void)fleet.head().MigratePartition(p, owner == 1 ? 2 : 1);
        break;
      }
      case 2: {
        (void)fleet.head().CheckpointAll(10000);
        break;
      }
      default:
        break;
    }
    if (::testing::Test::HasFatalFailure()) return;
  }

  std::map<std::string, int64_t> merged;
  MergedDurableState(fleet, "counts", kPartitions, &merged);
  if (::testing::Test::HasFatalFailure()) return;
  EXPECT_EQ(merged, model) << "seed " << seed
                           << ": word mass diverged (dup or loss)";
}

INSTANTIATE_TEST_SUITE_P(Seeds, WordCountProcessChaos,
                         ::testing::ValuesIn(ChaosSeeds()), SeedTestName);

// --- Migration crash-point matrix --------------------------------------------
//
// Each phase of the live-migration protocol is armed to _Exit(41) in the
// SOURCE process; the head must converge to a consistent outcome: the
// migration aborts with the source still the owner (base / delta /
// precutover), or completes because the TARGET durably committed and
// reported the cutover (postcommit — the source's death after commit must
// not lose the partition). Either way, after the crashed worker restarts
// from its backup, the durable fleet state must equal the model.

class MigrationCrashPoint : public ::testing::TestWithParam<const char*> {};

TEST_P(MigrationCrashPoint, ExactlyOnceAcrossSourceCrash) {
  const std::string phase = GetParam();
  ProcessFleet fleet("kv", "store", {"put", "del"}, kPartitions,
                     /*migrate_timeout_ms=*/6000);
  ASSERT_TRUE(fleet.StartHead().ok());
  fleet.Spawn(1, phase);  // the armed source joins first and owns everything
  if (::testing::Test::HasFatalFailure()) return;
  ASSERT_TRUE(fleet.head().WaitForMembers(1, 20000));
  ASSERT_TRUE(fleet.head().WaitForAssignment(20000));
  fleet.Spawn(2);
  if (::testing::Test::HasFatalFailure()) return;
  ASSERT_TRUE(fleet.head().WaitForMembers(2, 20000));

  std::map<int64_t, std::string> model;
  for (int64_t k = 0; k < 150; ++k) {
    std::string v = "v" + std::to_string(k);
    ASSERT_TRUE(fleet.head().Inject(0, Tuple{Value(k), Value(v)}, 60000).ok());
    model[k] = v;
  }

  Status st = fleet.head().MigratePartition(0, 2);
  EXPECT_EQ(fleet.Reap(1), 41) << "crash point " << phase << " never fired";
  if (phase == "migrate.postcommit") {
    // The target committed durably and reported the cutover: the source's
    // death after commit must not abort the migration.
    EXPECT_TRUE(st.ok()) << st.ToString();
    EXPECT_EQ(fleet.head().OwnerOf(0), 2u);
  } else {
    EXPECT_FALSE(st.ok()) << "migration survived a dead source mid-" << phase;
    EXPECT_EQ(fleet.head().OwnerOf(0), 1u);
  }

  fleet.Spawn(1);  // restart clean from the backup store
  if (::testing::Test::HasFatalFailure()) return;
  for (int64_t k = 100; k < 220; ++k) {
    std::string v = "r" + std::to_string(k);
    ASSERT_TRUE(fleet.head().Inject(0, Tuple{Value(k), Value(v)}, 60000).ok());
    model[k] = v;
  }

  std::map<int64_t, std::string> merged;
  MergedDurableState(fleet, "store", kPartitions, &merged);
  if (::testing::Test::HasFatalFailure()) return;
  EXPECT_EQ(merged, model) << "crash at " << phase << " diverged";
}

INSTANTIATE_TEST_SUITE_P(Phases, MigrationCrashPoint,
                         ::testing::Values("migrate.base", "migrate.delta",
                                           "migrate.precutover",
                                           "migrate.postcommit"),
                         [](const ::testing::TestParamInfo<const char*>& i) {
                           std::string name = i.param;
                           for (auto& c : name) {
                             if (c == '.') c = '_';
                           }
                           return name;
                         });

// --- m-to-n recovery ---------------------------------------------------------

TEST(MToNRecovery, DeadWorkersPartitionsSpreadAcrossSurvivors) {
  constexpr uint32_t kParts = 6;
  ProcessFleet fleet("kv", "store", {"put", "del"}, kParts);
  ASSERT_TRUE(fleet.StartHead().ok());
  fleet.Spawn(1);
  if (::testing::Test::HasFatalFailure()) return;
  ASSERT_TRUE(fleet.head().WaitForMembers(1, 20000));
  ASSERT_TRUE(fleet.head().WaitForAssignment(20000));  // worker 1 owns all 6
  fleet.Spawn(2);
  fleet.Spawn(3);
  if (::testing::Test::HasFatalFailure()) return;
  ASSERT_TRUE(fleet.head().WaitForMembers(3, 20000));

  std::map<int64_t, std::string> model;
  for (int64_t k = 0; k < 300; ++k) {
    std::string v = "v" + std::to_string(k);
    ASSERT_TRUE(fleet.head().Inject(0, Tuple{Value(k), Value(v)}, 60000).ok());
    model[k] = v;
  }
  ASSERT_TRUE(fleet.head().CheckpointAll().ok());
  // A tail beyond the last checkpoint: recovery must replay exactly this.
  for (int64_t k = 250; k < 330; ++k) {
    std::string v = "t" + std::to_string(k);
    ASSERT_TRUE(fleet.head().Inject(0, Tuple{Value(k), Value(v)}, 60000).ok());
    model[k] = v;
  }

  fleet.Kill(1);
  ASSERT_TRUE(fleet.head().RecoverMember(1).ok());

  // m-to-n: the six lost partitions land on BOTH survivors.
  std::set<uint32_t> owners;
  for (uint32_t p = 0; p < kParts; ++p) {
    uint32_t o = fleet.head().OwnerOf(p);
    EXPECT_TRUE(o == 2u || o == 3u) << "p" << p << " still on m" << o;
    owners.insert(o);
  }
  EXPECT_EQ(owners.size(), 2u) << "recovery did not spread across survivors";

  for (int64_t k = 0; k < 80; ++k) {
    ASSERT_TRUE(fleet.head().Inject(1, Tuple{Value(k)}, 60000).ok());
    model.erase(k);
  }

  std::map<int64_t, std::string> merged;
  MergedDurableState(fleet, "store", kParts, &merged);
  if (::testing::Test::HasFatalFailure()) return;
  EXPECT_EQ(merged, model) << "m-to-n recovery diverged";
}

// --- Cold-tier crash-point matrix --------------------------------------------
//
// Spill files are a cache, not a durability tier (src/state/spill.h): a
// process that dies inside the spill machinery — spill file renamed but the
// victim stripe not yet dropped (spill.evict), stripe merged back but the
// file not yet removed (spill.faultin), or mid-serialize of a spilled stripe
// during a checkpoint (spill.ckpt) — must restart from its checkpoint chain
// with nothing lost and nothing double-applied, and the stale spill dir it
// left behind must never be read. The armed worker runs a working set
// several times its resident budget so the cold tier is active when the
// crash fires; fault-in needs a read path, so that leg runs the serve-mode
// entry set and drives "get" through the head.

class SpillCrashPoint : public ::testing::TestWithParam<const char*> {};

TEST_P(SpillCrashPoint, DurableStateSurvivesColdTierCrash) {
  const std::string phase = GetParam();
  const bool serve = phase == "spill.faultin";
  ProcessFleet fleet("kv", "store",
                     serve ? std::vector<std::string>{"put", "get", "del"}
                           : std::vector<std::string>{"put", "del"},
                     kPartitions);
  fleet.spill_budget_kb = 2;  // per store instance; see working set below
  fleet.store_stripes = 8;
  fleet.serve = serve;
  ASSERT_TRUE(fleet.StartHead().ok());
  fleet.Spawn(1, phase);
  if (::testing::Test::HasFatalFailure()) return;
  ASSERT_TRUE(fleet.head().WaitForMembers(1, 20000));
  ASSERT_TRUE(fleet.head().WaitForAssignment(20000));

  // ~150 B values, 240 keys over 4 instances: ~9 KiB resident demand per
  // instance against the 2 KiB budget, so eviction starts almost at once
  // and the periodic checkpoint (100 ms) soon serializes spilled stripes.
  // Injection runs in a thread: once the crash point fires, in-flight puts
  // block unacked until the respawned worker rejoins and replays them.
  std::map<int64_t, std::string> model;
  const std::string pad(120, 'x');
  std::thread load([&] {
    for (int64_t k = 0; k < 240; ++k) {
      std::string v = "v" + std::to_string(k) + pad;
      if (!fleet.head().Inject(0, Tuple{Value(k), Value(v)}, 120000).ok()) {
        ADD_FAILURE() << "put " << k << " never acked";
        return;
      }
      model[k] = v;
    }
    if (serve) {
      // Touch every key: any key untouched since its stripe was evicted is
      // blob-only, and the first such read pages the stripe back in.
      for (int64_t k = 0; k < 240; ++k) {
        if (!fleet.head().Inject(1, Tuple{Value(k)}, 120000).ok()) {
          ADD_FAILURE() << "get " << k << " never acked";
          return;
        }
      }
    }
  });
  int code = fleet.Reap(1);  // blocks until the armed phase fires
  fleet.Spawn(1);  // restart: spill dir wiped, checkpoint chain replayed
  load.join();
  EXPECT_EQ(code, 41) << "crash point " << phase << " never fired";
  if (::testing::Test::HasFatalFailure()) return;

  // A post-restart tail proves the respawned worker (spilling again from
  // restore onward) still applies new writes exactly once.
  for (int64_t k = 200; k < 280; ++k) {
    std::string v = "r" + std::to_string(k) + pad;
    ASSERT_TRUE(fleet.head().Inject(0, Tuple{Value(k), Value(v)}, 60000).ok());
    model[k] = v;
  }

  std::map<int64_t, std::string> merged;
  MergedDurableState(fleet, "store", kPartitions, &merged);
  if (::testing::Test::HasFatalFailure()) return;
  EXPECT_EQ(merged, model) << "crash at " << phase << " diverged ("
                           << merged.size() << " keys vs model "
                           << model.size() << ")";
}

INSTANTIATE_TEST_SUITE_P(Phases, SpillCrashPoint,
                         ::testing::Values("spill.evict", "spill.faultin",
                                           "spill.ckpt"),
                         [](const ::testing::TestParamInfo<const char*>& i) {
                           std::string name = i.param;
                           for (auto& c : name) {
                             if (c == '.') c = '_';
                           }
                           return name;
                         });

// --- Seeded kv chaos with a disk-backed store --------------------------------
//
// The KvProcessChaos roulette re-run with every worker under a 2 KiB
// per-instance resident budget and a working set ~5x that (padded values),
// so SIGKILL/respawn restores spill as they load, migrations stream spilled
// stripes off disk, and checkpoints serialize cold state — all while the
// reference model watches for loss or double-apply.

class KvSpillProcessChaos : public ::testing::TestWithParam<uint64_t> {};

TEST_P(KvSpillProcessChaos, MatchesReferenceModelUnderBudget) {
  const uint64_t seed = GetParam();
  Rng rng(seed ^ 0x51dau);
  ProcessFleet fleet("kv", "store", {"put", "del"}, kPartitions);
  fleet.spill_budget_kb = 2;
  fleet.store_stripes = 8;
  ASSERT_TRUE(fleet.StartHead().ok());
  fleet.Spawn(1);
  fleet.Spawn(2);
  if (::testing::Test::HasFatalFailure()) return;
  ASSERT_TRUE(fleet.head().WaitForMembers(2, 20000));
  ASSERT_TRUE(fleet.head().WaitForAssignment(20000));

  std::map<int64_t, std::string> model;
  uint64_t vseq = 0;
  const std::string pad(120, 'x');  // ~150 B/key: ~5x the per-instance budget
  auto burst = [&](int count) {
    for (int i = 0; i < count; ++i) {
      int64_t key = static_cast<int64_t>(rng.NextBounded(300));
      std::string value = "v" + std::to_string(vseq++) + pad;
      ASSERT_TRUE(
          fleet.head().Inject(0, Tuple{Value(key), Value(value)}, 60000).ok());
      model[key] = value;
    }
  };

  for (int round = 0; round < 3; ++round) {
    burst(120);
    if (::testing::Test::HasFatalFailure()) return;
    uint32_t victim = rng.NextBounded(2) == 0 ? 1 : 2;
    uint32_t other = victim == 1 ? 2 : 1;
    switch (rng.NextBounded(5)) {
      case 0: {  // SIGKILL + respawn: restore must spill as it loads
        fleet.Kill(victim);
        fleet.Spawn(victim);
        burst(40);
        break;
      }
      case 1: {  // live migration streams spilled stripes straight off disk
        uint32_t p = rng.NextBounded(kPartitions);
        uint32_t owner = fleet.head().OwnerOf(p);
        uint32_t target = owner == 1 ? 2 : 1;
        (void)fleet.head().MigratePartition(p, target);
        break;
      }
      case 2: {  // SIGKILL the migration source mid-flight
        uint32_t p = 0;
        for (uint32_t q = 0; q < kPartitions; ++q) {
          if (fleet.head().OwnerOf(q) == victim) {
            p = q;
          }
        }
        if (fleet.head().OwnerOf(p) != victim) {
          break;
        }
        std::thread migrate(
            [&] { (void)fleet.head().MigratePartition(p, other); });
        std::this_thread::sleep_for(
            std::chrono::milliseconds(rng.NextBounded(40)));
        fleet.Kill(victim);
        migrate.join();
        fleet.Spawn(victim);
        break;
      }
      case 3: {  // checkpoint barrier serializes cold stripes without paging
        (void)fleet.head().CheckpointAll(10000);
        break;
      }
      default:
        break;
    }
    if (::testing::Test::HasFatalFailure()) return;
  }

  // Del phase after a quiesce barrier (same reasoning as KvProcessChaos);
  // erases on spilled stripes land as cold-overlay tombstones.
  ASSERT_TRUE(fleet.head().AwaitQuiesce(90000));
  for (int i = 0; i < 60; ++i) {
    if (i == 30) {
      uint32_t victim = rng.NextBounded(2) == 0 ? 1 : 2;
      fleet.Kill(victim);
      fleet.Spawn(victim);
      if (::testing::Test::HasFatalFailure()) return;
    }
    int64_t key = static_cast<int64_t>(rng.NextBounded(300));
    ASSERT_TRUE(fleet.head().Inject(1, Tuple{Value(key)}, 60000).ok());
    model.erase(key);
  }

  std::map<int64_t, std::string> merged;
  MergedDurableState(fleet, "store", kPartitions, &merged);
  if (::testing::Test::HasFatalFailure()) return;
  EXPECT_EQ(merged, model) << "seed " << seed
                           << ": durable state diverged under spill ("
                           << merged.size() << " keys vs model "
                           << model.size() << ")";
}

INSTANTIATE_TEST_SUITE_P(Seeds, KvSpillProcessChaos,
                         ::testing::ValuesIn(ChaosSeeds()), SeedTestName);

}  // namespace
}  // namespace sdg::harness
