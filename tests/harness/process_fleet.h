// Process-fleet helpers for the multi-process chaos harness: spawn real
// elastic_worker child processes (fork/exec), SIGKILL them mid-protocol,
// respawn them under the same member id / data port / backup root, and reap
// exit codes (crash points _Exit(41)). The worker binary path comes from the
// SDG_ELASTIC_WORKER_BIN compile definition (tests/CMakeLists.txt).
#ifndef SDG_TESTS_HARNESS_PROCESS_FLEET_H_
#define SDG_TESTS_HARNESS_PROCESS_FLEET_H_

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/prctl.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace sdg::harness {

// Binds an ephemeral loopback port, releases it, and returns its number —
// the classic pick-then-reuse race is acceptable for loopback CI and buys a
// data port that stays stable across worker restarts.
inline uint16_t PickFreePort() {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return 0;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return 0;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  uint16_t port = ntohs(addr.sin_port);
  ::close(fd);
  return port;
}

// Chaos runs exercise the multiplexed transport by default; SDG_CHAOS_MUX=0
// flips the whole fleet (head data channels and worker reply streams) back to
// one-socket-per-channel, so CI can cover both wire formats with one binary.
inline bool ChaosMuxEnabled() {
  const char* v = std::getenv("SDG_CHAOS_MUX");
  return v == nullptr || std::string(v) != "0";
}

struct WorkerSpec {
  std::string app = "kv";  // kv | wordcount
  bool mux = true;         // false appends --no-mux (per-channel replies)
  uint16_t head_port = 0;
  uint32_t member_id = 0;
  uint16_t data_port = 0;  // stable across respawns
  std::string backup_root;
  uint32_t partitions = 4;
  int slow_us = 0;
  int ckpt_interval_ms = 100;
  std::string crash_at;
  bool serve = false;  // kv only: serving entries + replica feed
  // Disk-backed store mode (kv only): resident budget in KiB, 0 = no spill.
  // spill_dir defaults inside the worker to <backup_root>/spill-m<id>.
  uint64_t spill_budget_kb = 0;
  std::string spill_dir;
  uint32_t store_stripes = 0;
};

// fork/exec one worker. Child stdout/stderr go to /dev/null unless
// SDG_CHAOS_VERBOSE is set. Returns -1 on failure.
inline pid_t SpawnElasticWorker(const std::string& binary,
                                const WorkerSpec& spec) {
  std::vector<std::string> args = {
      binary,
      "--app", spec.app,
      "--head-port", std::to_string(spec.head_port),
      "--id", std::to_string(spec.member_id),
      "--data-port", std::to_string(spec.data_port),
      "--backup", spec.backup_root,
      "--partitions", std::to_string(spec.partitions),
      "--ckpt-interval-ms", std::to_string(spec.ckpt_interval_ms),
      "--slow-us", std::to_string(spec.slow_us),
  };
  if (!spec.crash_at.empty()) {
    args.push_back("--crash-at");
    args.push_back(spec.crash_at);
  }
  if (!spec.mux) {
    args.push_back("--no-mux");
  }
  if (spec.serve) {
    args.push_back("--serve");
  }
  if (spec.spill_budget_kb > 0) {
    args.push_back("--spill-budget-kb");
    args.push_back(std::to_string(spec.spill_budget_kb));
    if (!spec.spill_dir.empty()) {
      args.push_back("--spill-dir");
      args.push_back(spec.spill_dir);
    }
    if (spec.store_stripes > 0) {
      args.push_back("--store-stripes");
      args.push_back(std::to_string(spec.store_stripes));
    }
  }
  pid_t pid = ::fork();
  if (pid != 0) {
    return pid;
  }
  // Own process group, so the parent's kill helpers can take out the whole
  // worker subtree; and die with the parent (pdeathsig) so a test run that
  // ctest SIGKILLs on timeout — no exit handlers run — cannot leave orphaned
  // workers holding ports and spinning checkpoint loops.
  ::setpgid(0, 0);
  ::prctl(PR_SET_PDEATHSIG, SIGKILL);
  if (::getppid() == 1) {
    std::_Exit(126);  // parent already gone before pdeathsig armed
  }
  if (std::getenv("SDG_CHAOS_VERBOSE") == nullptr) {
    int devnull = ::open("/dev/null", O_WRONLY);
    if (devnull >= 0) {
      ::dup2(devnull, STDOUT_FILENO);
      ::dup2(devnull, STDERR_FILENO);
      ::close(devnull);
    }
  }
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (auto& a : args) {
    argv.push_back(const_cast<char*>(a.c_str()));
  }
  argv.push_back(nullptr);
  ::execv(binary.c_str(), argv.data());
  std::_Exit(127);  // exec failed
}

// Blocks until the child exits; returns its exit code, or -signal when it
// died on one, or -1000 on waitpid failure.
inline int WaitExit(pid_t pid) {
  int status = 0;
  if (::waitpid(pid, &status, 0) < 0) {
    return -1000;
  }
  if (WIFEXITED(status)) {
    return WEXITSTATUS(status);
  }
  if (WIFSIGNALED(status)) {
    return -WTERMSIG(status);
  }
  return -1000;
}

// SIGKILL + reap: the mid-protocol process death the harness is about.
// Signals the process group (the worker is its own group leader) so any
// children it spawned die with it.
inline void KillHard(pid_t pid) {
  ::kill(-pid, SIGKILL);
  ::kill(pid, SIGKILL);  // in case setpgid lost the race with exec
  (void)WaitExit(pid);
}

// Graceful stop; escalates to a group SIGKILL if the worker ignores SIGTERM.
inline int StopSoft(pid_t pid, int timeout_ms = 10000) {
  ::kill(pid, SIGTERM);
  for (int waited = 0; waited < timeout_ms; waited += 50) {
    int status = 0;
    pid_t r = ::waitpid(pid, &status, WNOHANG);
    if (r == pid) {
      return WIFEXITED(status) ? WEXITSTATUS(status)
                               : (WIFSIGNALED(status) ? -WTERMSIG(status)
                                                      : -1000);
    }
    ::usleep(50 * 1000);
  }
  ::kill(-pid, SIGKILL);
  ::kill(pid, SIGKILL);
  return WaitExit(pid);
}

}  // namespace sdg::harness

#endif  // SDG_TESTS_HARNESS_PROCESS_FLEET_H_
