#include "tests/harness/chaos_harness.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <map>
#include <mutex>
#include <set>
#include <sstream>
#include <utility>

#include "src/apps/cf.h"
#include "src/apps/kmeans.h"
#include "src/apps/kv.h"
#include "src/apps/lr.h"
#include "src/apps/reference_models.h"
#include "src/apps/wordcount.h"
#include "src/common/value.h"
#include "src/runtime/fault_injector.h"
#include "src/state/codec.h"
#include "src/state/dense_matrix.h"
#include "src/state/keyed_dict.h"
#include "src/state/state_backend.h"
#include "src/state/vector_state.h"
#include "tests/common/scoped_test_dir.h"

namespace sdg::harness {
namespace {

using apps::CfReferenceModel;
using apps::KMeansReferenceModel;
using apps::KvReferenceModel;
using apps::LrReferenceModel;
using apps::WordCountReferenceModel;
using runtime::CrashPhase;
using runtime::Deployment;
using runtime::EdgeFaultRule;
using runtime::FaultInjector;

runtime::ClusterOptions ChaosClusterOptions(const std::filesystem::path& dir,
                                            uint64_t seed,
                                            std::vector<EdgeFaultRule> rules,
                                            bool delta_epochs) {
  runtime::ClusterOptions o;
  o.num_nodes = 3;
  o.mailbox_capacity = 8192;
  o.fault_tolerance.mode = runtime::FtMode::kAsyncLocal;
  o.fault_tolerance.checkpoint_interval_s = 0;  // harness-driven only
  o.fault_tolerance.chunks_per_state = 4;
  o.fault_tolerance.store.root = dir.string();
  o.fault_tolerance.store.num_backup_nodes = 2;
  o.fault_tolerance.store.io_threads = 2;
  if (delta_epochs) {
    // Exercise the incremental data path: base+delta chains capped at 3
    // epochs, prefix-compressed v2 chunks, streamed segment-by-segment.
    o.fault_tolerance.delta_epoch_interval = 3;
    o.fault_tolerance.chunk_codec = state::kChunkCodecPrefix;
  }
  o.fault_injection.enabled = true;
  o.fault_injection.seed = seed;
  o.fault_injection.edges = std::move(rules);
  return o;
}

std::string VecToStr(const std::vector<double>& v) {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < v.size(); ++i) {
    os << (i ? " " : "") << v[i];
  }
  os << "]";
  return os.str();
}

}  // namespace

std::vector<uint64_t> ChaosSeeds() {
  const char* range = std::getenv("SDG_CHAOS_SEED_RANGE");
  if (range != nullptr) {
    uint64_t lo = 0, hi = 0;
    char dash = 0;
    std::istringstream is(range);
    if ((is >> lo >> dash >> hi) && dash == '-' && lo <= hi &&
        hi - lo < 10000) {
      std::vector<uint64_t> seeds;
      for (uint64_t s = lo; s <= hi; ++s) {
        seeds.push_back(s);
      }
      return seeds;
    }
  }
  return {7, 21, 42};
}

std::string SeedTestName(const ::testing::TestParamInfo<uint64_t>& info) {
  return "seed" + std::to_string(info.param);
}

std::string OpLog::Dump() const {
  std::ostringstream os;
  for (size_t i = 0; i < ops_.size(); ++i) {
    os << "  #" << i << " " << ops_[i] << "\n";
  }
  return os.str();
}

std::string FailureBanner(uint64_t seed, const OpLog& log,
                          const std::vector<std::string>& violations,
                          const std::vector<std::string>& fault_log) {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  std::ostringstream os;
  os << "\n=== chaos divergence (seed " << seed << ") ===\n";
  for (const auto& v : violations) {
    os << "  " << v << "\n";
  }
  os << "reproduce with:\n  SDG_CHAOS_SEED_RANGE=" << seed << "-" << seed
     << " ./build/tests/harness_test --gtest_filter=";
  if (info != nullptr) {
    os << info->test_suite_name() << "." << info->name();
  } else {
    os << "'*'";
  }
  os << "\nop log (" << log.size() << " ops):\n" << log.Dump();
  if (!fault_log.empty()) {
    os << "injected faults (" << fault_log.size() << "):\n";
    for (const auto& f : fault_log) {
      os << "  " << f << "\n";
    }
  }
  return os.str();
}

void RunChaosRounds(ChaosContext& ctx) {
  Deployment& d = *ctx.deployment;
  FaultInjector* inj = d.fault_injector();
  ASSERT_NE(inj, nullptr) << "harness requires fault_injection.enabled";
  Rng& rng = *ctx.rng;
  OpLog& log = *ctx.log;

  std::set<uint32_t> live;
  for (uint32_t n = 0; n < ctx.num_nodes; ++n) {
    live.insert(n);
  }
  bool have_checkpoint = false;

  for (int round = 0; round < ctx.rounds && !::testing::Test::HasFailure();
       ++round) {
    ctx.mutate(ctx.burst + static_cast<int>(rng.NextBounded(
                               static_cast<uint64_t>(ctx.burst))));
    d.Drain();

    const uint32_t target = d.NodeOfStateInstance(ctx.primary_state, 0);
    ASSERT_NE(target, UINT32_MAX) << ctx.primary_state << " instance 0 lost";
    const uint64_t roll = rng.NextBounded(100);

    if (roll < 25) {
      // Plain checkpoint of the primary node.
      log.Record("checkpoint node " + std::to_string(target));
      Status s = d.CheckpointNode(target);
      EXPECT_TRUE(s.ok()) << s.ToString();
      have_checkpoint = have_checkpoint || s.ok();
    } else if (roll < 45) {
      // Checkpoint that dies at an armed crash point. write_meta/after is the
      // interesting half-open case: the completeness marker is durable, so
      // the checkpoint is complete even though the driver reported an error.
      struct Scenario {
        const char* point;
        CrashPhase phase;
        uint32_t on_hit;
        bool checkpoint_completes;
      };
      static constexpr Scenario kScenarios[] = {
          {"backup.write_chunk", CrashPhase::kAfter, 2, false},
          {"checkpoint.persist", CrashPhase::kBefore, 1, false},
          {"checkpoint.persist", CrashPhase::kAfter, 1, false},
          {"backup.write_meta", CrashPhase::kBefore, 1, false},
          {"backup.write_meta", CrashPhase::kAfter, 1, true},
      };
      const Scenario& sc = kScenarios[rng.NextBounded(5)];
      log.Record("checkpoint node " + std::to_string(target) +
                 " crashing at " + sc.point +
                 (sc.phase == CrashPhase::kBefore ? " (before" : " (after") +
                 ", hit " + std::to_string(sc.on_hit) + ")");
      inj->ArmCrash(sc.point, sc.phase, sc.on_hit);
      Status s = d.CheckpointNode(target);
      EXPECT_FALSE(s.ok()) << "armed crash at " << sc.point << " never fired";
      inj->DisarmAll();
      have_checkpoint = have_checkpoint || sc.checkpoint_completes;
    } else if (roll < 80 && have_checkpoint && live.size() >= 2) {
      // Checkpoint, mutate past it, kill the node, recover — sometimes
      // through an injected restore failure and a clean retry, sometimes
      // with the buffer replay run twice (must be absorbed by dedup).
      Status cs = d.CheckpointNode(target);
      EXPECT_TRUE(cs.ok()) << cs.ToString();
      // Covered only by upstream-backup replay.
      (ctx.mutate_replay ? ctx.mutate_replay : ctx.mutate)(ctx.burst / 2);
      d.Drain();
      // Bisection aid (docs/testing.md): verify against the model right
      // before the kill, so a failure can be attributed to either the faulty
      // steady-state path or the kill/recover path.
      if (getenv("SDG_CHAOS_DEBUG_PREKILL_VERIFY") != nullptr) {
        inj->Pause();
        log.Record("pre-kill debug verify");
        ctx.verify();
        inj->Resume();
      }

      std::vector<uint32_t> others(live.begin(), live.end());
      others.erase(std::remove(others.begin(), others.end(), target),
                   others.end());
      const uint32_t replacement =
          others[rng.NextBounded(others.size())];
      const uint64_t rroll = rng.NextBounded(100);

      EXPECT_TRUE(d.KillNode(target).ok());
      const char* restore_crash = nullptr;
      uint32_t restore_hit = 1;
      if (rroll < 18) {
        restore_crash = "restore.meta";
      } else if (rroll < 36) {
        restore_crash = "restore.install";
      } else if (rroll < 54) {
        restore_crash = "backup.read_chunk";
        restore_hit = 2;
      }
      if (restore_crash != nullptr) {
        log.Record("kill node " + std::to_string(target) +
                   "; recovery onto node " + std::to_string(replacement) +
                   " crashing at " + restore_crash + ", then retried");
        inj->ArmCrash(restore_crash, CrashPhase::kBefore, restore_hit);
        Status fail = d.RecoverNode(target, {replacement});
        EXPECT_FALSE(fail.ok())
            << "armed crash at " << restore_crash << " never fired";
        inj->DisarmAll();
      } else if (rroll < 72) {
        log.Record("kill node " + std::to_string(target) +
                   "; recovery onto node " + std::to_string(replacement) +
                   " with replay run twice");
        inj->ArmCrash("replay.repeat", CrashPhase::kAfter);
      } else {
        log.Record("kill node " + std::to_string(target) +
                   "; recovery onto node " + std::to_string(replacement));
      }
      Status rs = d.RecoverNode(target, {replacement});
      EXPECT_TRUE(rs.ok()) << rs.ToString();
      inj->DisarmAll();
      live.erase(target);
    }
    d.Drain();

    // Differential verification runs fault-free: injected faults must never
    // masquerade as (or mask) a real divergence.
    inj->Pause();
    inj->DisarmAll();
    ctx.verify();
    inj->Resume();
  }
}

// --- KV ---------------------------------------------------------------------

void RunKvChaos(uint64_t seed, bool delta_epochs) {
  ScopedTestDir dir("chaos_kv");
  Rng rng(seed);
  OpLog log;
  KvReferenceModel model;

  apps::KvOptions kv_opt;
  kv_opt.partitions = 2;
  auto g = apps::BuildKvSdg(kv_opt);
  ASSERT_TRUE(g.ok()) << g.status().ToString();

  auto opts = ChaosClusterOptions(
      dir.path(), seed,
      {
          {"external", "put", /*drop=*/0.0, /*dup=*/0.15, /*delay=*/0.05,
           /*reorder=*/0.0, /*delay_us=*/300},
          {"external", "del", 0.0, 0.15, 0.05, 0.0, 300},
          {"external", "get", 0.10, 0.15, 0.05, 0.25, 300},
      },
      delta_epochs);
  runtime::Cluster cluster(opts);
  auto d = cluster.Deploy(std::move(*g));
  ASSERT_TRUE(d.ok()) << d.status().ToString();

  constexpr int64_t kKeySpace = 200;
  std::mutex mu;
  std::map<int64_t, std::string> observed;
  std::atomic<bool> collecting{false};
  ASSERT_TRUE((*d)
                  ->OnOutput("get",
                             [&](const Tuple& out, uint64_t) {
                               if (!collecting.load()) {
                                 return;
                               }
                               std::lock_guard<std::mutex> lock(mu);
                               if (!out[1].AsString().empty()) {
                                 observed[out[0].AsInt()] = out[1].AsString();
                               }
                             })
                  .ok());

  ChaosContext ctx;
  ctx.deployment = d->get();
  ctx.rng = &rng;
  ctx.log = &log;
  ctx.seed = seed;
  ctx.primary_state = "store";
  auto put_or_get = [&](int count) {
    for (int i = 0; i < count; ++i) {
      const int64_t key = static_cast<int64_t>(rng.NextBounded(kKeySpace));
      if (rng.NextBounded(100) < 75) {
        std::string value = "v" + std::to_string(rng.Next() % 100000);
        model.Put(key, value);
        log.Record("put " + std::to_string(key) + " " + value);
        EXPECT_TRUE(
            (*d)->Inject("put", Tuple{Value(key), Value(value)}).ok());
      } else {
        // Unverified read under faults; the verify sweep re-reads everything.
        log.Record("get " + std::to_string(key));
        EXPECT_TRUE((*d)->Inject("get", Tuple{Value(key)}).ok());
      }
    }
  };
  // put and del are different entry TEs with separate mailboxes and workers,
  // so the runtime leaves cross-entry per-key ordering undefined (the seed
  // chaos test documents the same caveat). Phase each burst — all deletes,
  // drain, then puts and gets — so last-write-wins per key is deterministic.
  ctx.mutate = [&](int count) {
    const int dels = count / 5;
    for (int i = 0; i < dels; ++i) {
      const int64_t key = static_cast<int64_t>(rng.NextBounded(kKeySpace));
      model.Del(key);
      log.Record("del " + std::to_string(key));
      EXPECT_TRUE((*d)->Inject("del", Tuple{Value(key)}).ok());
    }
    (*d)->Drain();
    put_or_get(count - dels);
  };
  // Replay re-delivers each restored entry TE's external stream concurrently,
  // so the del-then-put phasing above cannot be preserved across a recovery:
  // the window sticks to puts and gets (single entry => per-key FIFO).
  ctx.mutate_replay = put_or_get;
  ctx.verify = [&]() {
    {
      std::lock_guard<std::mutex> lock(mu);
      observed.clear();
    }
    collecting.store(true);
    for (int64_t k = 0; k < kKeySpace; ++k) {
      EXPECT_TRUE((*d)->Inject("get", Tuple{Value(k)}).ok());
    }
    (*d)->Drain();
    collecting.store(false);
    std::lock_guard<std::mutex> lock(mu);
    std::vector<std::string> violations;
    for (const auto& [k, v] : model.entries()) {
      auto it = observed.find(k);
      if (it == observed.end()) {
        violations.push_back("lost write: key " + std::to_string(k) +
                             " expected '" + v + "', got nothing");
      } else if (it->second != v) {
        violations.push_back("corrupted value: key " + std::to_string(k) +
                             " expected '" + v + "', got '" + it->second +
                             "'");
      }
    }
    for (const auto& [k, v] : observed) {
      if (!model.Get(k).has_value()) {
        violations.push_back("resurrected delete: key " + std::to_string(k) +
                             " should be absent, got '" + v + "'");
      }
    }
    EXPECT_TRUE(violations.empty()) << FailureBanner(
        seed, log, violations, (*d)->fault_injector()->Log());
  };

  RunChaosRounds(ctx);
  (*d)->Shutdown();
}

// --- Wordcount --------------------------------------------------------------

void RunWordCountChaos(uint64_t seed, bool delta_epochs) {
  ScopedTestDir dir("chaos_wc");
  Rng rng(seed);
  OpLog log;
  WordCountReferenceModel model;

  apps::WordCountOptions wc_opt;
  wc_opt.count_partitions = 2;
  auto g = apps::BuildWordCountSdg(wc_opt);
  ASSERT_TRUE(g.ok()) << g.status().ToString();

  // line->count is an internal partitioned hop: int64 counting commutes, so
  // reorder is safe to inject there on top of dup and delay.
  auto opts = ChaosClusterOptions(dir.path(), seed,
                                  {
                                      {"external", "line", 0.0, 0.15, 0.05,
                                       0.0, 300},
                                      {"line", "count", 0.0, 0.15, 0.05,
                                       0.25, 300},
                                      {"external", "snapshot", 0.10, 0.15,
                                       0.05, 0.25, 300},
                                  },
                                  delta_epochs);
  runtime::Cluster cluster(opts);
  auto d = cluster.Deploy(std::move(*g));
  ASSERT_TRUE(d.ok()) << d.status().ToString();

  constexpr int kVocab = 30;
  auto word = [](uint64_t i) { return "w" + std::to_string(i); };

  ChaosContext ctx;
  ctx.deployment = d->get();
  ctx.rng = &rng;
  ctx.log = &log;
  ctx.seed = seed;
  ctx.primary_state = "counts";
  ctx.mutate = [&](int count) {
    for (int i = 0; i < count; ++i) {
      if (rng.NextBounded(100) < 85) {
        std::string line;
        const uint64_t words = 1 + rng.NextBounded(5);
        for (uint64_t w = 0; w < words; ++w) {
          if (!line.empty()) {
            line += ' ';
          }
          line += word(rng.NextBounded(kVocab));
        }
        model.AddLine(line);
        log.Record("line \"" + line + "\"");
        EXPECT_TRUE((*d)->Inject("line", Tuple{Value(line)}).ok());
      } else {
        // Unverified snapshot query under faults.
        std::string w = word(rng.NextBounded(kVocab));
        log.Record("snapshot " + w);
        EXPECT_TRUE((*d)->Inject("snapshot", Tuple{Value(w)}).ok());
      }
    }
  };
  ctx.verify = [&]() {
    // Direct end-state comparison across all count partitions: catches lost
    // words, duplicate side-effects (count too high) and phantom words.
    std::map<std::string, int64_t> observed;
    const uint32_t parts = (*d)->NumStateInstances("counts");
    for (uint32_t p = 0; p < parts; ++p) {
      auto* dict = state::StateAs<state::KeyedDict<std::string, int64_t>>(
          (*d)->StateInstance("counts", p));
      ASSERT_NE(dict, nullptr);
      dict->ForEach([&](const std::string& w, const int64_t& c) {
        observed[w] += c;
      });
    }
    std::vector<std::string> violations;
    for (const auto& [w, c] : model.counts()) {
      auto it = observed.find(w);
      const int64_t got = it == observed.end() ? 0 : it->second;
      if (got < c) {
        violations.push_back("lost write: word '" + w + "' expected " +
                             std::to_string(c) + ", got " +
                             std::to_string(got));
      } else if (got > c) {
        violations.push_back("duplicate side effect: word '" + w +
                             "' expected " + std::to_string(c) + ", got " +
                             std::to_string(got));
      }
    }
    for (const auto& [w, c] : observed) {
      if (model.counts().find(w) == model.counts().end()) {
        violations.push_back("phantom word '" + w + "' with count " +
                             std::to_string(c));
      }
    }
    EXPECT_TRUE(violations.empty()) << FailureBanner(
        seed, log, violations, (*d)->fault_injector()->Log());
  };

  RunChaosRounds(ctx);
  (*d)->Shutdown();
}

// --- Logistic regression ----------------------------------------------------

void RunLrChaos(uint64_t seed, bool delta_epochs) {
  ScopedTestDir dir("chaos_lr");
  Rng rng(seed);
  OpLog log;

  apps::LrOptions lr_opt;
  lr_opt.dimensions = 8;
  lr_opt.learning_rate = 0.05;
  lr_opt.worker_replicas = 1;  // single replica => deterministic float order
  LrReferenceModel model(lr_opt);
  auto g = apps::BuildLrSdg(lr_opt);
  ASSERT_TRUE(g.ok()) << g.status().ToString();

  auto opts = ChaosClusterOptions(dir.path(), seed,
                                  {
                                      {"external", "train", 0.0, 0.15, 0.05,
                                       0.0, 300},
                                      {"external", "readModel", 0.10, 0.15,
                                       0.05, 0.0, 300},
                                  },
                                  delta_epochs);
  runtime::Cluster cluster(opts);
  auto d = cluster.Deploy(std::move(*g));
  ASSERT_TRUE(d.ok()) << d.status().ToString();

  ChaosContext ctx;
  ctx.deployment = d->get();
  ctx.rng = &rng;
  ctx.log = &log;
  ctx.seed = seed;
  ctx.primary_state = "weights";
  ctx.mutate = [&](int count) {
    for (int i = 0; i < count; ++i) {
      if (rng.NextBounded(100) < 90) {
        std::vector<double> x(lr_opt.dimensions);
        for (double& xi : x) {
          xi = rng.NextDoubleIn(-1.0, 1.0);
        }
        const int64_t y = static_cast<int64_t>(rng.NextBounded(2));
        model.Train(x, y);
        log.Record("train y=" + std::to_string(y) + " x=" + VecToStr(x));
        EXPECT_TRUE(
            (*d)->Inject("train", Tuple{Value(x), Value(y)}).ok());
      } else {
        // Unverified global read under faults.
        log.Record("readModel");
        EXPECT_TRUE((*d)->Inject("readModel", Tuple{}).ok());
      }
    }
  };
  ctx.verify = [&]() {
    auto* w = state::StateAs<state::VectorState>(
        (*d)->StateInstance("weights", 0));
    ASSERT_NE(w, nullptr);
    const std::vector<double> got = w->ToDense();
    const std::vector<double>& want = model.weights();
    ASSERT_EQ(got.size(), want.size());
    std::vector<std::string> violations;
    for (size_t i = 0; i < want.size(); ++i) {
      if (std::abs(got[i] - want[i]) > 1e-9) {
        violations.push_back("weight " + std::to_string(i) + " diverged: " +
                             std::to_string(want[i]) + " vs " +
                             std::to_string(got[i]));
      }
    }
    EXPECT_TRUE(violations.empty()) << FailureBanner(
        seed, log, violations, (*d)->fault_injector()->Log());
  };

  RunChaosRounds(ctx);
  (*d)->Shutdown();
}

// --- k-means ----------------------------------------------------------------

void RunKMeansChaos(uint64_t seed, bool delta_epochs) {
  ScopedTestDir dir("chaos_kmeans");
  Rng rng(seed);
  OpLog log;

  apps::KMeansOptions km_opt;
  km_opt.clusters = 3;
  km_opt.dimensions = 2;
  km_opt.replicas = 1;  // single replica => deterministic assignments
  KMeansReferenceModel model(km_opt);
  auto g = apps::BuildKMeansSdg(km_opt);
  ASSERT_TRUE(g.ok()) << g.status().ToString();

  // assign->accumulate folds commutative additions, so reorder is safe; the
  // step/merge edges stay fault-free (the app requires a drained pipeline at
  // the synchronisation point).
  auto opts = ChaosClusterOptions(dir.path(), seed,
                                  {
                                      {"external", "assign", 0.0, 0.15, 0.05,
                                       0.0, 300},
                                      {"assign", "accumulate", 0.0, 0.15,
                                       0.05, 0.25, 300},
                                  },
                                  delta_epochs);
  runtime::Cluster cluster(opts);
  auto d = cluster.Deploy(std::move(*g));
  ASSERT_TRUE(d.ok()) << d.status().ToString();

  ChaosContext ctx;
  ctx.deployment = d->get();
  ctx.rng = &rng;
  ctx.log = &log;
  ctx.seed = seed;
  ctx.primary_state = "model";
  ctx.mutate = [&](int count) {
    for (int i = 0; i < count; ++i) {
      if (rng.NextBounded(100) < 92) {
        std::vector<double> x(km_opt.dimensions);
        for (double& xi : x) {
          xi = rng.NextDoubleIn(0.0, 10.0);
        }
        model.Assign(x);
        log.Record("assign " + VecToStr(x));
        EXPECT_TRUE((*d)->Inject("assign", Tuple{Value(x)}).ok());
      } else {
        // Close the iteration: drain assignments first (the app's contract),
        // then merge sums into new centroids on both sides.
        (*d)->Drain();
        model.Step();
        log.Record("step");
        EXPECT_TRUE((*d)->Inject("step", Tuple{}).ok());
        (*d)->Drain();
      }
    }
  };
  // The iteration-closing step is a global sync and not replay-safe (see
  // ChaosContext::mutate_replay); the replay window streams assignments only.
  ctx.mutate_replay = [&](int count) {
    for (int i = 0; i < count; ++i) {
      std::vector<double> x(km_opt.dimensions);
      for (double& xi : x) {
        xi = rng.NextDoubleIn(0.0, 10.0);
      }
      model.Assign(x);
      log.Record("assign " + VecToStr(x));
      EXPECT_TRUE((*d)->Inject("assign", Tuple{Value(x)}).ok());
    }
  };
  ctx.verify = [&]() {
    auto* m = state::StateAs<state::DenseMatrix>(
        (*d)->StateInstance("model", 0));
    ASSERT_NE(m, nullptr);
    std::vector<std::string> violations;
    for (uint32_t c = 0; c < km_opt.clusters; ++c) {
      for (size_t j = 0; j < km_opt.dimensions; ++j) {
        const double want = model.centroids()[c * km_opt.dimensions + j];
        const double got = m->Get(c, j);
        // Reorder faults permute the (commutative) sum accumulation order,
        // so centroids compare modulo float rounding.
        if (std::abs(got - want) > 1e-6) {
          violations.push_back(
              "centroid (" + std::to_string(c) + "," + std::to_string(j) +
              ") diverged: " + std::to_string(want) + " vs " +
              std::to_string(got));
        }
      }
    }
    EXPECT_TRUE(violations.empty()) << FailureBanner(
        seed, log, violations, (*d)->fault_injector()->Log());
  };

  RunChaosRounds(ctx);
  (*d)->Shutdown();
}

// --- Collaborative filtering ------------------------------------------------

void RunCfChaos(uint64_t seed, bool delta_epochs) {
  ScopedTestDir dir("chaos_cf");
  Rng rng(seed);
  OpLog log;

  apps::CfOptions cf_opt;
  cf_opt.num_items = 40;
  cf_opt.user_partitions = 1;
  cf_opt.cooc_replicas = 1;  // single replica => exact integer co-occurrence
  CfReferenceModel model(cf_opt);
  auto t = apps::BuildCfSdg(cf_opt);
  ASSERT_TRUE(t.ok()) << t.status().ToString();

  auto opts = ChaosClusterOptions(dir.path(), seed,
                                  {
                                      {"external", "addRating", 0.0, 0.15,
                                       0.05, 0.0, 300},
                                      {"external", "getRec", 0.10, 0.15,
                                       0.05, 0.0, 300},
                                  },
                                  delta_epochs);
  runtime::Cluster cluster(opts);
  auto d = cluster.Deploy(std::move(t->sdg));
  ASSERT_TRUE(d.ok()) << d.status().ToString();

  constexpr int64_t kUsers = 12;
  std::mutex mu;
  std::map<int64_t, std::vector<double>> observed;
  std::atomic<bool> collecting{false};
  ASSERT_TRUE((*d)
                  ->OnOutput("merge",
                             [&](const Tuple& out, uint64_t) {
                               if (!collecting.load()) {
                                 return;
                               }
                               std::lock_guard<std::mutex> lock(mu);
                               observed[out[0].AsInt()] =
                                   out[1].AsDoubleVector();
                             })
                  .ok());

  ChaosContext ctx;
  ctx.deployment = d->get();
  ctx.rng = &rng;
  ctx.log = &log;
  ctx.seed = seed;
  ctx.primary_state = "userItem";
  ctx.mutate = [&](int count) {
    for (int i = 0; i < count; ++i) {
      if (rng.NextBounded(100) < 85) {
        const int64_t user = static_cast<int64_t>(rng.NextBounded(kUsers));
        const int64_t item = static_cast<int64_t>(
            rng.NextBounded(static_cast<uint64_t>(cf_opt.num_items)));
        // Integer ratings keep the co-occurrence sums exact.
        const double rating = static_cast<double>(1 + rng.NextBounded(5));
        model.AddRating(user, item, rating);
        log.Record("addRating user=" + std::to_string(user) +
                   " item=" + std::to_string(item) +
                   " rating=" + std::to_string(rating));
        EXPECT_TRUE(
            (*d)->Inject("addRating",
                         Tuple{Value(user), Value(item), Value(rating)})
                .ok());
      } else {
        // Unverified recommendation query under faults.
        const int64_t user = static_cast<int64_t>(rng.NextBounded(kUsers));
        log.Record("getRec user=" + std::to_string(user));
        EXPECT_TRUE((*d)->Inject("getRec", Tuple{Value(user)}).ok());
      }
    }
  };
  ctx.verify = [&]() {
    {
      std::lock_guard<std::mutex> lock(mu);
      observed.clear();
    }
    collecting.store(true);
    for (int64_t u = 0; u < kUsers; ++u) {
      EXPECT_TRUE((*d)->Inject("getRec", Tuple{Value(u)}).ok());
    }
    (*d)->Drain();
    collecting.store(false);
    std::lock_guard<std::mutex> lock(mu);
    std::vector<std::string> violations;
    for (int64_t u = 0; u < kUsers; ++u) {
      auto it = observed.find(u);
      if (it == observed.end()) {
        violations.push_back("lost query: no recommendation for user " +
                             std::to_string(u));
        continue;
      }
      const std::vector<double> want = model.GetRec(u);
      if (it->second.size() != want.size()) {
        violations.push_back("recommendation for user " + std::to_string(u) +
                             " has wrong length");
        continue;
      }
      for (size_t i = 0; i < want.size(); ++i) {
        if (std::abs(it->second[i] - want[i]) > 1e-9) {
          violations.push_back(
              "recommendation diverged: user " + std::to_string(u) +
              " item " + std::to_string(i) + ": " + std::to_string(want[i]) +
              " vs " + std::to_string(it->second[i]));
          break;
        }
      }
    }
    EXPECT_TRUE(violations.empty()) << FailureBanner(
        seed, log, violations, (*d)->fault_injector()->Log());
  };

  RunChaosRounds(ctx);
  (*d)->Shutdown();
}

}  // namespace sdg::harness
