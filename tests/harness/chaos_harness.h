// Differential chaos harness: every app runs against its single-threaded
// reference model (src/apps/reference_models.h) under seeded edge faults
// (drop/dup/delay/reorder) and armed crash points in the checkpoint, backup
// store, restore and replay paths. One seed determines the op stream, the
// fault schedule and the checkpoint/kill/recover interleaving, so any
// failure reproduces from the seed alone. See docs/testing.md.
#ifndef SDG_TESTS_HARNESS_CHAOS_HARNESS_H_
#define SDG_TESTS_HARNESS_CHAOS_HARNESS_H_

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <functional>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/runtime/cluster.h"

namespace sdg::harness {

// Seeds to run each app's chaos suite with. Defaults to a small fixed set;
// SDG_CHAOS_SEED_RANGE="lo-hi" (inclusive) substitutes an extended range —
// CI exposes it behind a workflow-dispatch input.
std::vector<uint64_t> ChaosSeeds();

// Test-name generator so a seed pins directly into --gtest_filter
// (".../seed42" instead of ".../3").
std::string SeedTestName(const ::testing::TestParamInfo<uint64_t>& info);

// Chronological op/event log for one chaos run; dumped on divergence.
class OpLog {
 public:
  void Record(std::string op) { ops_.push_back(std::move(op)); }
  size_t size() const { return ops_.size(); }
  std::string Dump() const;

 private:
  std::vector<std::string> ops_;
};

// Failure report: the violations, the seed, a ready-to-paste repro line, the
// full op log and (when provided) the injector's record of every fired fault.
std::string FailureBanner(uint64_t seed, const OpLog& log,
                          const std::vector<std::string>& violations,
                          const std::vector<std::string>& fault_log = {});

// One app's hookup to the generic chaos protocol.
struct ChaosContext {
  runtime::Deployment* deployment = nullptr;
  Rng* rng = nullptr;
  OpLog* log = nullptr;
  uint64_t seed = 0;
  uint32_t num_nodes = 3;
  // State element whose instance-0 node is checkpointed / killed / recovered.
  std::string primary_state;
  // Injects `count` seeded ops, mirrors them into the reference model and
  // records them in the log. Runs with edge faults active.
  std::function<void(int count)> mutate;
  // Ops injected between a checkpoint and a kill, i.e. covered only by
  // upstream-backup replay. Defaults to `mutate`. Apps whose op set includes
  // a global synchronisation (k-means step) must exclude it here: replaying
  // a sync whose downstream effects survived on other nodes is absorbed by
  // dedup there, so the restored node never sees the sync re-applied.
  std::function<void(int count)> mutate_replay;
  // Compares deployment end state against the model with GTest expectations.
  // Runs with the injector paused and all crash points disarmed.
  std::function<void()> verify;
  int rounds = 4;
  int burst = 40;
};

// The seeded chaos protocol: per round, an op burst, a drain, a seeded
// fault-tolerance event (checkpoint; checkpoint dying at an armed crash
// point; or checkpoint + post-checkpoint burst + kill + recover, sometimes
// through an injected restore failure and retry, or with replay run twice),
// a drain, then differential verification.
void RunChaosRounds(ChaosContext& ctx);

// Per-app drivers (tests/harness/chaos_apps_test.cc instantiates these over
// ChaosSeeds()). Each builds the app with fault injection enabled, runs
// RunChaosRounds and reports divergences via FailureBanner. With
// `delta_epochs` the deployment checkpoints incrementally (base+delta chains,
// compressed v2 chunks), so recoveries exercise chain-ordered restore and
// crash points between a base and its deltas must fall back to the last
// complete chain.
void RunKvChaos(uint64_t seed, bool delta_epochs = false);
void RunWordCountChaos(uint64_t seed, bool delta_epochs = false);
void RunLrChaos(uint64_t seed, bool delta_epochs = false);
void RunKMeansChaos(uint64_t seed, bool delta_epochs = false);
void RunCfChaos(uint64_t seed, bool delta_epochs = false);

}  // namespace sdg::harness

#endif  // SDG_TESTS_HARNESS_CHAOS_HARNESS_H_
