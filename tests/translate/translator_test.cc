// Tests of the java2sdg translation pipeline (Fig. 3), including the
// flagship check: Alg. 1 translates to the Fig. 1 SDG shape.
#include "src/translate/translator.h"

#include <gtest/gtest.h>

#include "src/apps/cf.h"
#include "src/state/keyed_dict.h"

namespace sdg::translate {
namespace {

using graph::AccessMode;
using graph::Dispatch;
using state::KeyedDict;

using IntDict = KeyedDict<int64_t, int64_t>;

state::StateFactory DictFactory() {
  return [] { return std::make_unique<IntDict>(); };
}

TEST(TranslatorTest, CfProgramYieldsFig1Shape) {
  apps::CfOptions opt;
  opt.num_items = 10;
  auto t = apps::BuildCfSdg(opt);
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  const graph::Sdg& g = t->sdg;

  // Two SEs: partitioned userItem, partial coOcc.
  ASSERT_EQ(g.states().size(), 2u);
  EXPECT_EQ(g.state(g.StateByName("userItem").value()).distribution,
            graph::StateDistribution::kPartitioned);
  EXPECT_EQ(g.state(g.StateByName("coOcc").value()).distribution,
            graph::StateDistribution::kPartial);

  // Five TEs: addRating (hosting updateUserItem), updateCoOcc, getRec
  // (hosting getUserVec), getRecVec, merge.
  ASSERT_EQ(g.tasks().size(), 5u);
  auto add_rating = g.TaskByName("addRating");
  auto update_cooc = g.TaskByName("updateCoOcc");
  auto get_rec = g.TaskByName("getRec");
  auto get_rec_vec = g.TaskByName("getRecVec");
  auto merge = g.TaskByName("merge");
  ASSERT_TRUE(add_rating.ok());
  ASSERT_TRUE(update_cooc.ok());
  ASSERT_TRUE(get_rec.ok());
  ASSERT_TRUE(get_rec_vec.ok());
  ASSERT_TRUE(merge.ok());

  // Access edges and modes.
  EXPECT_EQ(g.task(*add_rating).access, AccessMode::kPartitioned);
  EXPECT_EQ(g.task(*update_cooc).access, AccessMode::kLocal);
  EXPECT_EQ(g.task(*get_rec).access, AccessMode::kPartitioned);
  EXPECT_EQ(g.task(*get_rec_vec).access, AccessMode::kGlobal);
  EXPECT_TRUE(g.task(*merge).is_collector());

  // Dataflow dispatch semantics per the §4.2 rules.
  auto out_add = g.OutEdges(*add_rating);
  ASSERT_EQ(out_add.size(), 1u);
  EXPECT_EQ(out_add[0]->dispatch, Dispatch::kOneToAny);  // rule 4

  auto out_get = g.OutEdges(*get_rec);
  ASSERT_EQ(out_get.size(), 1u);
  EXPECT_EQ(out_get[0]->dispatch, Dispatch::kOneToAll);  // rule 3

  auto out_vec = g.OutEdges(*get_rec_vec);
  ASSERT_EQ(out_vec.size(), 1u);
  EXPECT_EQ(out_vec[0]->dispatch, Dispatch::kAllToOne);  // rule 5

  // The translation report documents the cuts.
  EXPECT_NE(t->report.find("rule 3"), std::string::npos);
  EXPECT_NE(t->report.find("rule 4"), std::string::npos);
  EXPECT_NE(t->report.find("rule 5"), std::string::npos);
}

Program MinimalProgram() {
  Program p;
  p.name = "minimal";
  Method m;
  m.name = "go";
  m.params = {"x"};
  LocalStmt twice;
  twice.inputs = {"x"};
  twice.output = "y";
  twice.op = [](const std::vector<Value>& in) {
    return Value(in[0].AsInt() * 2);
  };
  m.body.push_back(twice);
  OutputStmt out;
  out.inputs = {"y"};
  m.body.push_back(out);
  p.methods.push_back(std::move(m));
  return p;
}

TEST(TranslatorTest, StatelessMethodBecomesSingleEntryTe) {
  auto t = TranslateToSdg(MinimalProgram());
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ(t->sdg.tasks().size(), 1u);
  EXPECT_TRUE(t->sdg.tasks()[0].is_entry);
  EXPECT_TRUE(t->sdg.states().empty());
}

TEST(TranslatorTest, RejectsEmptyProgram) {
  Program p;
  EXPECT_FALSE(TranslateToSdg(p).ok());
}

TEST(TranslatorTest, RejectsUndefinedVariable) {
  Program p = MinimalProgram();
  std::get<LocalStmt>(p.methods[0].body[0]).inputs = {"nope"};
  auto t = TranslateToSdg(p);
  ASSERT_FALSE(t.ok());
  EXPECT_NE(t.status().message().find("undefined"), std::string::npos);
}

TEST(TranslatorTest, RejectsGlobalAccessToPartitionedField) {
  Program p;
  p.name = "bad";
  p.fields.push_back(StateField{"f", FieldAnnotation::kPartitioned, DictFactory()});
  Method m;
  m.name = "go";
  m.params = {"k"};
  StateStmt s;
  s.field = "f";
  s.global = true;
  s.key_var = "k";
  s.op = [](state::StateBackend*, const std::vector<Value>&) { return Value(); };
  m.body.push_back(s);
  p.methods.push_back(std::move(m));
  EXPECT_FALSE(TranslateToSdg(p).ok());
}

TEST(TranslatorTest, RejectsPartitionedAccessWithoutKey) {
  Program p;
  p.fields.push_back(StateField{"f", FieldAnnotation::kPartitioned, DictFactory()});
  Method m;
  m.name = "go";
  m.params = {"k"};
  StateStmt s;
  s.field = "f";
  s.op = [](state::StateBackend*, const std::vector<Value>&) { return Value(); };
  m.body.push_back(s);
  p.methods.push_back(std::move(m));
  EXPECT_FALSE(TranslateToSdg(p).ok());
}

TEST(TranslatorTest, RejectsUnknownField) {
  Program p = MinimalProgram();
  StateStmt s;
  s.field = "ghost";
  s.inputs = {"x"};
  s.op = [](state::StateBackend*, const std::vector<Value>&) { return Value(); };
  p.methods[0].body.insert(p.methods[0].body.begin(), s);
  EXPECT_FALSE(TranslateToSdg(p).ok());
}

TEST(TranslatorTest, RejectsMergeOfSingleValuedVariable) {
  Program p = MinimalProgram();
  MergeStmt m;
  m.partial_var = "y";
  m.output = "z";
  m.op = [](const std::vector<Value>&, const std::vector<Value>&) {
    return Value();
  };
  p.methods[0].body.push_back(m);
  auto t = TranslateToSdg(p);
  ASSERT_FALSE(t.ok());
  EXPECT_NE(t.status().message().find("multi-valued"), std::string::npos);
}

TEST(TranslatorTest, RejectsMultiValuedEscapeWithoutMerge) {
  // A variable assigned under @Global must not be consumed by a later
  // single-valued statement (§4.1 side-effect-free parallelism).
  Program p;
  p.fields.push_back(StateField{"f", FieldAnnotation::kPartial, DictFactory()});
  p.fields.push_back(StateField{"g", FieldAnnotation::kNone, DictFactory()});
  Method m;
  m.name = "go";
  m.params = {"k"};
  StateStmt global;
  global.field = "f";
  global.global = true;
  global.inputs = {"k"};
  global.output = "pv";
  global.op = [](state::StateBackend*, const std::vector<Value>&) {
    return Value(int64_t{1});
  };
  m.body.push_back(global);
  StateStmt use;
  use.field = "g";
  use.inputs = {"pv"};  // escapes the global context
  use.op = [](state::StateBackend*, const std::vector<Value>&) { return Value(); };
  m.body.push_back(use);
  p.methods.push_back(std::move(m));
  auto t = TranslateToSdg(p);
  ASSERT_FALSE(t.ok());
  EXPECT_NE(t.status().message().find("multi-valued"), std::string::npos);
}

TEST(TranslatorTest, RejectsConsecutiveGlobalAccessesWithoutMerge) {
  Program p;
  p.fields.push_back(StateField{"f", FieldAnnotation::kPartial, DictFactory()});
  Method m;
  m.name = "go";
  m.params = {"k"};
  for (int i = 0; i < 2; ++i) {
    StateStmt s;
    s.field = "f";
    s.global = true;
    s.inputs = {"k"};
    s.output = i == 0 ? "a" : "b";
    s.op = [](state::StateBackend*, const std::vector<Value>&) {
      return Value(int64_t{0});
    };
    m.body.push_back(s);
  }
  p.methods.push_back(std::move(m));
  EXPECT_FALSE(TranslateToSdg(p).ok());
}

TEST(TranslatorTest, PartitionedKeyComputedAfterEntryForcesCut) {
  // If the access key is derived (not a parameter), the entry TE cannot host
  // the partitioned access — rule 2 forces a cut with a key-partitioned edge.
  Program p;
  p.fields.push_back(StateField{"f", FieldAnnotation::kPartitioned, DictFactory()});
  Method m;
  m.name = "go";
  m.params = {"x"};
  LocalStmt derive;
  derive.inputs = {"x"};
  derive.output = "key";
  derive.op = [](const std::vector<Value>& in) {
    return Value(in[0].AsInt() / 2);
  };
  m.body.push_back(derive);
  StateStmt s;
  s.field = "f";
  s.key_var = "key";
  s.inputs = {"key", "x"};
  s.op = [](state::StateBackend* b, const std::vector<Value>& in) {
    state::StateAs<IntDict>(b)->Put(in[0].AsInt(), in[1].AsInt());
    return Value();
  };
  m.body.push_back(s);
  p.methods.push_back(std::move(m));

  auto t = TranslateToSdg(p);
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  ASSERT_EQ(t->sdg.tasks().size(), 2u);
  const auto& edges = t->sdg.edges();
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0].dispatch, Dispatch::kPartitioned);
  EXPECT_GE(edges[0].key_field, 0);
}

TEST(TranslatorTest, SameSeSameKeyStaysInOneTe) {
  // Two partitioned accesses with the same key fuse into one TE (no cut).
  Program p;
  p.fields.push_back(StateField{"f", FieldAnnotation::kPartitioned, DictFactory()});
  Method m;
  m.name = "go";
  m.params = {"k", "v"};
  for (int i = 0; i < 2; ++i) {
    StateStmt s;
    s.field = "f";
    s.key_var = "k";
    s.inputs = {"k", "v"};
    s.op = [](state::StateBackend* b, const std::vector<Value>& in) {
      state::StateAs<IntDict>(b)->Put(in[0].AsInt(), in[1].AsInt());
      return Value();
    };
    m.body.push_back(s);
  }
  p.methods.push_back(std::move(m));
  auto t = TranslateToSdg(p);
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ(t->sdg.tasks().size(), 1u);
}

TEST(TranslatorTest, InstanceOptionsPropagate) {
  apps::CfOptions opt;
  opt.num_items = 10;
  opt.user_partitions = 3;
  opt.cooc_replicas = 2;
  auto t = apps::BuildCfSdg(opt);
  ASSERT_TRUE(t.ok());
  auto add_rating = t->sdg.TaskByName("addRating").value();
  auto update_cooc = t->sdg.TaskByName("updateCoOcc").value();
  EXPECT_EQ(t->sdg.task(add_rating).initial_instances, 3u);
  EXPECT_EQ(t->sdg.task(update_cooc).initial_instances, 2u);
}

}  // namespace
}  // namespace sdg::translate
