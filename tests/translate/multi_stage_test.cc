// Translation of deeper programs: chained partitioned accesses with
// different keys, a merge followed by further computation, and two
// global/merge rounds in one method — executed end-to-end.
#include <gtest/gtest.h>

#include <atomic>

#include "src/runtime/cluster.h"
#include "src/state/keyed_dict.h"
#include "src/translate/translator.h"

namespace sdg::translate {
namespace {

using state::KeyedDict;
using state::StateAs;
using IntDict = KeyedDict<int64_t, int64_t>;

state::StateFactory DictFactory() {
  return [] { return std::make_unique<IntDict>(); };
}

StateStmt AddToField(const std::string& field, const std::string& key,
                     const std::string& amount) {
  StateStmt s;
  s.field = field;
  s.key_var = key;
  s.inputs = {key, amount};
  s.op = [](state::StateBackend* b, const std::vector<Value>& in) {
    StateAs<IntDict>(b)->Update(
        in[0].AsInt(), [&](int64_t v) { return v + in[1].AsInt(); });
    return Value();
  };
  return s;
}

TEST(MultiStageTest, TwoPartitionedFieldsWithDifferentKeysCutTwice) {
  // transfer(src, dst, amount): debit the source account, credit the
  // destination — two partitioned accesses with different keys must land in
  // two TEs connected by a key-partitioned edge (rule 2).
  Program p;
  p.name = "bank";
  p.fields.push_back(StateField{"accounts", FieldAnnotation::kPartitioned,
                                DictFactory()});
  Method m;
  m.name = "transfer";
  m.params = {"src", "dst", "amount"};
  LocalStmt negate;
  negate.inputs = {"amount"};
  negate.output = "debit";
  negate.op = [](const std::vector<Value>& in) {
    return Value(-in[0].AsInt());
  };
  m.body.push_back(negate);
  m.body.push_back(AddToField("accounts", "src", "debit"));
  m.body.push_back(AddToField("accounts", "dst", "amount"));
  p.methods.push_back(std::move(m));

  TranslateOptions topt;
  topt.partitioned_instances = 2;
  auto t = TranslateToSdg(p, topt);
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  ASSERT_EQ(t->sdg.tasks().size(), 2u);
  ASSERT_EQ(t->sdg.edges().size(), 1u);
  EXPECT_EQ(t->sdg.edges()[0].dispatch, graph::Dispatch::kPartitioned);

  runtime::ClusterOptions o;
  o.num_nodes = 2;
  runtime::Cluster cluster(o);
  auto d = cluster.Deploy(std::move(t->sdg));
  ASSERT_TRUE(d.ok());

  // 50 transfers of 10 from account 1 to account 2.
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE((*d)->Inject("transfer",
                             Tuple{Value(1), Value(2), Value(10)}).ok());
  }
  (*d)->Drain();

  int64_t balance1 = 0, balance2 = 0, total_keys = 0;
  for (uint32_t j = 0; j < 2; ++j) {
    auto* part = StateAs<IntDict>((*d)->StateInstance("accounts", j));
    ASSERT_NE(part, nullptr);
    if (auto v = part->Get(1)) {
      balance1 += *v;
    }
    if (auto v = part->Get(2)) {
      balance2 += *v;
    }
    total_keys += static_cast<int64_t>(part->Size());
  }
  EXPECT_EQ(balance1, -500);
  EXPECT_EQ(balance2, 500);
  EXPECT_EQ(total_keys, 2);  // each account on exactly one partition
}

TEST(MultiStageTest, ComputationAfterMergeRunsInCollector) {
  // global read -> merge -> further local computation -> output: the
  // post-merge statements execute inside the collector TE.
  Program p;
  p.name = "poll";
  p.fields.push_back(StateField{"votes", FieldAnnotation::kPartial,
                                DictFactory()});
  {
    Method m;
    m.name = "vote";
    m.params = {"candidate"};
    StateStmt s;
    s.field = "votes";
    s.inputs = {"candidate"};
    s.op = [](state::StateBackend* b, const std::vector<Value>& in) {
      StateAs<IntDict>(b)->Update(in[0].AsInt(),
                                  [](int64_t v) { return v + 1; });
      return Value();
    };
    m.body.push_back(std::move(s));
    p.methods.push_back(std::move(m));
  }
  {
    Method m;
    m.name = "tally";
    m.params = {"candidate"};
    StateStmt read;
    read.field = "votes";
    read.global = true;
    read.inputs = {"candidate"};
    read.output = "local_count";
    read.op = [](state::StateBackend* b, const std::vector<Value>& in) {
      return Value(StateAs<IntDict>(b)->Get(in[0].AsInt()).value_or(0));
    };
    m.body.push_back(std::move(read));
    MergeStmt merge;
    merge.partial_var = "local_count";
    merge.output = "total";
    merge.op = [](const std::vector<Value>& partials,
                  const std::vector<Value>&) {
      int64_t total = 0;
      for (const auto& v : partials) {
        total += v.AsInt();
      }
      return Value(total);
    };
    m.body.push_back(std::move(merge));
    LocalStmt doubled;  // post-merge computation in the collector
    doubled.inputs = {"total"};
    doubled.output = "twice";
    doubled.op = [](const std::vector<Value>& in) {
      return Value(in[0].AsInt() * 2);
    };
    m.body.push_back(std::move(doubled));
    OutputStmt out;
    out.inputs = {"candidate", "total", "twice"};
    m.body.push_back(out);
    p.methods.push_back(std::move(m));
  }

  TranslateOptions topt;
  topt.partial_instances = 3;
  auto t = TranslateToSdg(p, topt);
  ASSERT_TRUE(t.ok()) << t.status().ToString();

  runtime::ClusterOptions o;
  o.num_nodes = 3;
  runtime::Cluster cluster(o);
  auto d = cluster.Deploy(std::move(t->sdg));
  ASSERT_TRUE(d.ok());

  for (int i = 0; i < 33; ++i) {
    ASSERT_TRUE((*d)->Inject("vote", Tuple{Value(int64_t{5})}).ok());
  }
  (*d)->Drain();

  std::atomic<int64_t> total{-1}, twice{-1};
  auto merge_name = t->sdg.TaskByName("tally@2");
  // The merge collector is the second cut of 'tally'; find it by suffix.
  std::string collector_name;
  for (const auto& te : (*d)->sdg().tasks()) {
    if (te.is_collector()) {
      collector_name = te.name;
    }
  }
  ASSERT_FALSE(collector_name.empty());
  (void)merge_name;
  ASSERT_TRUE((*d)->OnOutput(collector_name, [&](const Tuple& out, uint64_t) {
              total = out[1].AsInt();
              twice = out[2].AsInt();
            }).ok());
  ASSERT_TRUE((*d)->Inject("tally", Tuple{Value(int64_t{5})}).ok());
  (*d)->Drain();
  EXPECT_EQ(total.load(), 33);
  EXPECT_EQ(twice.load(), 66);
}

TEST(MultiStageTest, TwoGlobalMergeRoundsInOneMethod) {
  // global -> merge -> global -> merge: rule 3 applies again after the first
  // barrier; the second global slice broadcasts from the first collector.
  Program p;
  p.name = "two-rounds";
  p.fields.push_back(StateField{"a", FieldAnnotation::kPartial, DictFactory()});
  p.fields.push_back(StateField{"b", FieldAnnotation::kPartial, DictFactory()});
  Method m;
  m.name = "go";
  m.params = {"k"};

  auto global_read = [](const std::string& field, const std::string& out_var) {
    StateStmt s;
    s.field = field;
    s.global = true;
    s.inputs = {"k"};
    s.output = out_var;
    s.op = [](state::StateBackend* b, const std::vector<Value>& in) {
      return Value(StateAs<IntDict>(b)->Get(in[0].AsInt()).value_or(0));
    };
    return s;
  };
  auto sum_merge = [](const std::string& pv, const std::string& out_var) {
    MergeStmt s;
    s.partial_var = pv;
    s.output = out_var;
    s.op = [](const std::vector<Value>& partials, const std::vector<Value>&) {
      int64_t total = 0;
      for (const auto& v : partials) {
        total += v.AsInt();
      }
      return Value(total);
    };
    return s;
  };
  m.body.push_back(global_read("a", "pa"));
  m.body.push_back(sum_merge("pa", "sum_a"));
  m.body.push_back(global_read("b", "pb"));
  m.body.push_back(sum_merge("pb", "sum_b"));
  LocalStmt add;
  add.inputs = {"sum_a", "sum_b"};
  add.output = "grand";
  add.op = [](const std::vector<Value>& in) {
    return Value(in[0].AsInt() + in[1].AsInt());
  };
  m.body.push_back(std::move(add));
  OutputStmt out;
  out.inputs = {"grand"};
  m.body.push_back(out);
  p.methods.push_back(std::move(m));

  // Seed methods for a and b.
  for (const char* field : {"a", "b"}) {
    Method seed;
    seed.name = std::string("seed_") + field;
    seed.params = {"k", "v"};
    StateStmt s;
    s.field = field;
    s.inputs = {"k", "v"};
    s.op = [](state::StateBackend* b, const std::vector<Value>& in) {
      StateAs<IntDict>(b)->Update(
          in[0].AsInt(), [&](int64_t v) { return v + in[1].AsInt(); });
      return Value();
    };
    seed.body.push_back(std::move(s));
    p.methods.push_back(std::move(seed));
  }

  TranslateOptions topt;
  topt.partial_instances = 2;
  auto t = TranslateToSdg(p, topt);
  ASSERT_TRUE(t.ok()) << t.status().ToString();

  runtime::ClusterOptions o;
  o.num_nodes = 2;
  runtime::Cluster cluster(o);
  auto d = cluster.Deploy(std::move(t->sdg));
  ASSERT_TRUE(d.ok());

  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE((*d)->Inject("seed_a", Tuple{Value(1), Value(3)}).ok());
    ASSERT_TRUE((*d)->Inject("seed_b", Tuple{Value(1), Value(4)}).ok());
  }
  (*d)->Drain();

  // The final collector is the last collector TE of method 'go'.
  std::string last_collector;
  for (const auto& te : (*d)->sdg().tasks()) {
    if (te.is_collector() && te.name.rfind("go@", 0) == 0) {
      last_collector = te.name;
    }
  }
  ASSERT_FALSE(last_collector.empty());
  std::atomic<int64_t> grand{-1};
  ASSERT_TRUE((*d)->OnOutput(last_collector, [&](const Tuple& out, uint64_t) {
              grand = out[0].AsInt();
            }).ok());
  ASSERT_TRUE((*d)->Inject("go", Tuple{Value(int64_t{1})}).ok());
  (*d)->Drain();
  EXPECT_EQ(grand.load(), 70);  // 10*3 + 10*4
}

}  // namespace
}  // namespace sdg::translate
