// End-to-end tests of the materialised SDG runtime: pipelines, partitioned
// and partial state, barriers, and scaling.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "src/graph/sdg.h"
#include "src/runtime/cluster.h"
#include "src/state/keyed_dict.h"

namespace sdg::runtime {
namespace {

using graph::AccessMode;
using graph::Dispatch;
using graph::SdgBuilder;
using graph::StateDistribution;
using state::KeyedDict;
using state::StateAs;

using IntDict = KeyedDict<int64_t, int64_t>;

state::StateFactory IntDictFactory() {
  return [] { return std::make_unique<IntDict>(); };
}

ClusterOptions SmallCluster(uint32_t nodes = 2) {
  ClusterOptions o;
  o.num_nodes = nodes;
  o.mailbox_capacity = 4096;
  return o;
}

TEST(PipelineTest, StatelessPassThrough) {
  SdgBuilder b;
  auto src = b.AddEntryTask("src", [](const Tuple& in, graph::TaskContext& ctx) {
    ctx.Emit(0, Tuple{Value(in[0].AsInt() * 2)});
  });
  auto next = b.AddTask("double", [](const Tuple& in, graph::TaskContext& ctx) {
    ctx.Emit(0, Tuple{Value(in[0].AsInt() + 1)});
  });
  ASSERT_TRUE(b.Connect(src, next, Dispatch::kOneToAny).ok());
  auto g = std::move(b).Build();
  ASSERT_TRUE(g.ok()) << g.status().ToString();

  Cluster cluster(SmallCluster());
  auto d = cluster.Deploy(std::move(*g));
  ASSERT_TRUE(d.ok()) << d.status().ToString();

  std::atomic<int64_t> sum{0};
  std::atomic<int> count{0};
  ASSERT_TRUE((*d)->OnOutput("double", [&](const Tuple& t, uint64_t) {
              sum += t[0].AsInt();
              ++count;
            }).ok());

  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE((*d)->Inject("src", Tuple{Value(i)}).ok());
  }
  (*d)->Drain();
  EXPECT_EQ(count.load(), 100);
  // sum of (2i + 1) for i in 0..99 = 2*4950 + 100.
  EXPECT_EQ(sum.load(), 2 * 4950 + 100);
  (*d)->Shutdown();
}

TEST(PipelineTest, UserTagPropagatesToSink) {
  SdgBuilder b;
  auto src = b.AddEntryTask("src", [](const Tuple& in, graph::TaskContext& ctx) {
    ctx.Emit(0, in);
  });
  (void)src;
  auto g = std::move(b).Build();
  ASSERT_TRUE(g.ok());

  Cluster cluster(SmallCluster(1));
  auto d = cluster.Deploy(std::move(*g));
  ASSERT_TRUE(d.ok());

  std::atomic<uint64_t> tag{0};
  ASSERT_TRUE((*d)->OnOutput("src", [&](const Tuple&, uint64_t user_tag) {
              tag = user_tag;
            }).ok());
  ASSERT_TRUE((*d)->Inject("src", Tuple{Value(1)}, /*user_tag=*/777).ok());
  (*d)->Drain();
  EXPECT_EQ(tag.load(), 777u);
}

// A minimal partitioned key/value store: put and get entries sharing one
// partitioned KeyedDict.
Result<graph::Sdg> BuildKvGraph(uint32_t instances = 1) {
  SdgBuilder b;
  auto dict = b.AddState("dict", StateDistribution::kPartitioned,
                         IntDictFactory());
  auto put = b.AddEntryTask("put", [](const Tuple& in, graph::TaskContext& ctx) {
    auto* d = StateAs<IntDict>(ctx.state());
    d->Put(in[0].AsInt(), in[1].AsInt());
  });
  auto get = b.AddEntryTask("get", [](const Tuple& in, graph::TaskContext& ctx) {
    auto* d = StateAs<IntDict>(ctx.state());
    auto v = d->Get(in[0].AsInt());
    ctx.Emit(0, Tuple{in[0], Value(v.value_or(-1))});
  });
  EXPECT_TRUE(b.SetAccess(put, dict, AccessMode::kPartitioned).ok());
  EXPECT_TRUE(b.SetAccess(get, dict, AccessMode::kPartitioned).ok());
  b.SetInitialInstances(put, instances);
  b.SetInitialInstances(get, instances);
  return std::move(b).Build();
}

TEST(PipelineTest, PartitionedStateServesPutsAndGets) {
  auto g = BuildKvGraph(2);
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  Cluster cluster(SmallCluster(2));
  auto d = cluster.Deploy(std::move(*g));
  ASSERT_TRUE(d.ok());

  for (int64_t k = 0; k < 200; ++k) {
    ASSERT_TRUE((*d)->Inject("put", Tuple{Value(k), Value(k * 10)}).ok());
  }
  (*d)->Drain();

  std::mutex mu;
  std::map<int64_t, int64_t> results;
  ASSERT_TRUE((*d)->OnOutput("get", [&](const Tuple& t, uint64_t) {
              std::lock_guard<std::mutex> lock(mu);
              results[t[0].AsInt()] = t[1].AsInt();
            }).ok());
  for (int64_t k = 0; k < 200; ++k) {
    ASSERT_TRUE((*d)->Inject("get", Tuple{Value(k)}).ok());
  }
  (*d)->Drain();

  ASSERT_EQ(results.size(), 200u);
  for (int64_t k = 0; k < 200; ++k) {
    EXPECT_EQ(results[k], k * 10) << "key " << k;
  }
  // The two partitions must both hold a fair share of keys.
  auto* p0 = StateAs<IntDict>((*d)->StateInstance("dict", 0));
  auto* p1 = StateAs<IntDict>((*d)->StateInstance("dict", 1));
  ASSERT_NE(p0, nullptr);
  ASSERT_NE(p1, nullptr);
  EXPECT_EQ(p0->Size() + p1->Size(), 200u);
  EXPECT_GT(p0->Size(), 50u);
  EXPECT_GT(p1->Size(), 50u);
}

// Partial state with global read access: updates go to one replica
// (one-to-any); queries broadcast (one-to-all), each replica reports its
// local value, and a merge collector sums the partials (§3.2).
Result<graph::Sdg> BuildPartialSumGraph(uint32_t replicas) {
  SdgBuilder b;
  auto acc = b.AddState("acc", StateDistribution::kPartial, IntDictFactory());
  auto update =
      b.AddEntryTask("update", [](const Tuple& in, graph::TaskContext& ctx) {
        auto* d = StateAs<IntDict>(ctx.state());
        d->Update(in[0].AsInt(),
                  [&](int64_t v) { return v + in[1].AsInt(); });
      });
  auto query = b.AddEntryTask("query", [](const Tuple& in, graph::TaskContext& ctx) {
    ctx.Emit(0, in);
  });
  auto read = b.AddTask("read", [](const Tuple& in, graph::TaskContext& ctx) {
    auto* d = StateAs<IntDict>(ctx.state());
    ctx.Emit(0, Tuple{in[0], Value(d->Get(in[0].AsInt()).value_or(0))});
  });
  auto merge = b.AddCollectorTask(
      "merge", [](const std::vector<Tuple>& partials, graph::TaskContext& ctx) {
        int64_t total = 0;
        for (const auto& p : partials) {
          total += p[1].AsInt();
        }
        ctx.Emit(0, Tuple{partials[0][0], Value(total)});
      });
  EXPECT_TRUE(b.SetAccess(update, acc, AccessMode::kLocal).ok());
  EXPECT_TRUE(b.SetAccess(read, acc, AccessMode::kGlobal).ok());
  b.SetInitialInstances(update, replicas);
  EXPECT_TRUE(b.Connect(query, read, Dispatch::kOneToAll).ok());
  EXPECT_TRUE(b.Connect(read, merge, Dispatch::kAllToOne).ok());
  return std::move(b).Build();
}

TEST(PipelineTest, PartialStateMergesGlobalReads) {
  auto g = BuildPartialSumGraph(3);
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  Cluster cluster(SmallCluster(3));
  auto d = cluster.Deploy(std::move(*g));
  ASSERT_TRUE(d.ok());

  EXPECT_EQ((*d)->NumInstancesOf("update"), 3u);
  EXPECT_EQ((*d)->NumInstancesOf("read"), 3u);
  EXPECT_EQ((*d)->NumStateInstances("acc"), 3u);

  // 90 updates of +1 on the same key scatter across the three replicas.
  for (int i = 0; i < 90; ++i) {
    ASSERT_TRUE((*d)->Inject("update", Tuple{Value(7), Value(1)}).ok());
  }
  (*d)->Drain();

  std::atomic<int64_t> total{-1};
  ASSERT_TRUE((*d)->OnOutput("merge", [&](const Tuple& t, uint64_t) {
              total = t[1].AsInt();
            }).ok());
  ASSERT_TRUE((*d)->Inject("query", Tuple{Value(7)}).ok());
  (*d)->Drain();
  EXPECT_EQ(total.load(), 90);

  // No single replica should have absorbed all updates (one-to-any spread).
  int64_t max_local = 0;
  for (uint32_t j = 0; j < 3; ++j) {
    auto* replica = StateAs<IntDict>((*d)->StateInstance("acc", j));
    ASSERT_NE(replica, nullptr);
    max_local = std::max(max_local, replica->Get(7).value_or(0));
  }
  EXPECT_LT(max_local, 90);
}

TEST(PipelineTest, IterationCycleConverges) {
  // A counter loops through two TEs until it reaches 5, then exits to the
  // sink — the dataflow-cycle form of iteration (§3.1).
  SdgBuilder b;
  auto start = b.AddEntryTask("start", [](const Tuple& in, graph::TaskContext& ctx) {
    ctx.Emit(0, in);
  });
  auto step = b.AddTask("step", [](const Tuple& in, graph::TaskContext& ctx) {
    int64_t v = in[0].AsInt() + 1;
    if (v >= 5) {
      ctx.Emit(1, Tuple{Value(v)});  // exit edge to sink
    } else {
      ctx.Emit(0, Tuple{Value(v)});  // loop edge
    }
  });
  auto loop = b.AddTask("loop", [](const Tuple& in, graph::TaskContext& ctx) {
    ctx.Emit(0, in);
  });
  ASSERT_TRUE(b.Connect(start, step, Dispatch::kOneToAny).ok());
  ASSERT_TRUE(b.Connect(step, loop, Dispatch::kOneToAny).ok());
  ASSERT_TRUE(b.Connect(loop, step, Dispatch::kOneToAny).ok());
  auto g = std::move(b).Build();
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_FALSE(g->TasksOnCycles().empty());

  Cluster cluster(SmallCluster(2));
  auto d = cluster.Deploy(std::move(*g));
  ASSERT_TRUE(d.ok());
  std::atomic<int64_t> result{0};
  ASSERT_TRUE((*d)->OnOutput("step", [&](const Tuple& t, uint64_t) {
              result = t[0].AsInt();
            }).ok());
  ASSERT_TRUE((*d)->Inject("start", Tuple{Value(0)}).ok());
  (*d)->Drain();
  EXPECT_EQ(result.load(), 5);
}

TEST(ScalingTest, AddStatelessInstance) {
  SdgBuilder b;
  auto src = b.AddEntryTask("src", [](const Tuple& in, graph::TaskContext& ctx) {
    ctx.Emit(0, in);
  });
  (void)src;
  auto g = std::move(b).Build();
  ASSERT_TRUE(g.ok());
  Cluster cluster(SmallCluster(3));
  auto d = cluster.Deploy(std::move(*g));
  ASSERT_TRUE(d.ok());
  EXPECT_EQ((*d)->NumInstancesOf("src"), 1u);
  ASSERT_TRUE((*d)->AddTaskInstance("src").ok());
  EXPECT_EQ((*d)->NumInstancesOf("src"), 2u);
}

TEST(ScalingTest, PartitionedGroupScaleOutPreservesState) {
  auto g = BuildKvGraph(1);
  ASSERT_TRUE(g.ok());
  Cluster cluster(SmallCluster(3));
  auto d = cluster.Deploy(std::move(*g));
  ASSERT_TRUE(d.ok());

  for (int64_t k = 0; k < 300; ++k) {
    ASSERT_TRUE((*d)->Inject("put", Tuple{Value(k), Value(k + 1)}).ok());
  }
  (*d)->Drain();

  // Scale the state-bound group 1 -> 2 -> 3; repartitioning must keep every
  // key readable.
  ASSERT_TRUE((*d)->AddTaskInstance("put").ok());
  EXPECT_EQ((*d)->NumInstancesOf("put"), 2u);
  EXPECT_EQ((*d)->NumInstancesOf("get"), 2u);
  EXPECT_EQ((*d)->NumStateInstances("dict"), 2u);
  ASSERT_TRUE((*d)->AddTaskInstance("get").ok());
  EXPECT_EQ((*d)->NumStateInstances("dict"), 3u);

  std::mutex mu;
  std::map<int64_t, int64_t> results;
  ASSERT_TRUE((*d)->OnOutput("get", [&](const Tuple& t, uint64_t) {
              std::lock_guard<std::mutex> lock(mu);
              results[t[0].AsInt()] = t[1].AsInt();
            }).ok());
  for (int64_t k = 0; k < 300; ++k) {
    ASSERT_TRUE((*d)->Inject("get", Tuple{Value(k)}).ok());
  }
  (*d)->Drain();
  ASSERT_EQ(results.size(), 300u);
  for (int64_t k = 0; k < 300; ++k) {
    EXPECT_EQ(results[k], k + 1) << "key " << k << " lost in re-sharding";
  }
}

TEST(ScalingTest, PartialGroupScaleOutAddsEmptyReplica) {
  auto g = BuildPartialSumGraph(2);
  ASSERT_TRUE(g.ok());
  Cluster cluster(SmallCluster(3));
  auto d = cluster.Deploy(std::move(*g));
  ASSERT_TRUE(d.ok());

  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE((*d)->Inject("update", Tuple{Value(1), Value(1)}).ok());
  }
  (*d)->Drain();
  ASSERT_TRUE((*d)->AddTaskInstance("update").ok());
  EXPECT_EQ((*d)->NumStateInstances("acc"), 3u);

  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE((*d)->Inject("update", Tuple{Value(1), Value(1)}).ok());
  }
  (*d)->Drain();

  std::atomic<int64_t> total{-1};
  ASSERT_TRUE((*d)->OnOutput("merge", [&](const Tuple& t, uint64_t) {
              total = t[1].AsInt();
            }).ok());
  ASSERT_TRUE((*d)->Inject("query", Tuple{Value(1)}).ok());
  (*d)->Drain();
  // All 60 updates remain visible through the merged global read.
  EXPECT_EQ(total.load(), 60);
}

TEST(RuntimeIntrospectionTest, CountersAndDepths) {
  auto g = BuildKvGraph(1);
  ASSERT_TRUE(g.ok());
  Cluster cluster(SmallCluster(1));
  auto d = cluster.Deploy(std::move(*g));
  ASSERT_TRUE(d.ok());
  for (int64_t k = 0; k < 50; ++k) {
    ASSERT_TRUE((*d)->Inject("put", Tuple{Value(k), Value(k)}).ok());
  }
  (*d)->Drain();
  EXPECT_GE((*d)->TotalProcessed(), 50u);
  EXPECT_EQ((*d)->TotalQueueDepth(), 0u);
  EXPECT_GT((*d)->StateSizeBytes("dict"), 0u);
  EXPECT_TRUE((*d)->NodeAlive(0));
  EXPECT_EQ((*d)->QueueDepthOf("put"), 0u);
}

TEST(RuntimeErrorsTest, RejectsBadInjection) {
  auto g = BuildKvGraph(1);
  ASSERT_TRUE(g.ok());
  Cluster cluster(SmallCluster(1));
  auto d = cluster.Deploy(std::move(*g));
  ASSERT_TRUE(d.ok());
  EXPECT_FALSE((*d)->Inject("nonexistent", Tuple{Value(1)}).ok());
  EXPECT_FALSE((*d)->OnOutput("nonexistent", [](const Tuple&, uint64_t) {}).ok());
  EXPECT_FALSE((*d)->AddTaskInstance("nonexistent").ok());
}

}  // namespace
}  // namespace sdg::runtime
