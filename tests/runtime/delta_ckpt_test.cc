// Delta-epoch checkpointing through the runtime: base+delta chains are
// written by CheckpointNode, carried in the meta, applied in order by
// RecoverNode, and surfaced in the deployment's checkpoint stats.
#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <mutex>

#include "src/graph/sdg.h"
#include "src/runtime/cluster.h"
#include "src/state/codec.h"
#include "src/state/keyed_dict.h"
#include "tests/common/scoped_test_dir.h"

namespace sdg::runtime {
namespace {

using graph::AccessMode;
using graph::SdgBuilder;
using graph::StateDistribution;
using state::KeyedDict;
using state::StateAs;

using IntDict = KeyedDict<int64_t, int64_t>;

Result<graph::Sdg> BuildKvGraph() {
  SdgBuilder b;
  auto dict = b.AddState("dict", StateDistribution::kPartitioned,
                         [] { return std::make_unique<IntDict>(); });
  auto put = b.AddEntryTask("put", [](const Tuple& in, graph::TaskContext& ctx) {
    StateAs<IntDict>(ctx.state())->Put(in[0].AsInt(), in[1].AsInt());
  });
  auto del = b.AddEntryTask("del", [](const Tuple& in, graph::TaskContext& ctx) {
    StateAs<IntDict>(ctx.state())->Erase(in[0].AsInt());
  });
  auto get = b.AddEntryTask("get", [](const Tuple& in, graph::TaskContext& ctx) {
    auto v = StateAs<IntDict>(ctx.state())->Get(in[0].AsInt());
    ctx.Emit(0, Tuple{in[0], Value(v.value_or(-1))});
  });
  EXPECT_TRUE(b.SetAccess(put, dict, AccessMode::kPartitioned).ok());
  EXPECT_TRUE(b.SetAccess(del, dict, AccessMode::kPartitioned).ok());
  EXPECT_TRUE(b.SetAccess(get, dict, AccessMode::kPartitioned).ok());
  return std::move(b).Build();
}

ClusterOptions DeltaCluster(const std::filesystem::path& dir,
                            bool streaming = true,
                            uint32_t delta_interval = 3) {
  ClusterOptions o;
  o.num_nodes = 3;
  o.mailbox_capacity = 8192;
  o.fault_tolerance.mode = FtMode::kAsyncLocal;
  o.fault_tolerance.checkpoint_interval_s = 0;  // manual checkpoints only
  o.fault_tolerance.chunks_per_state = 4;
  o.fault_tolerance.streaming_checkpoint = streaming;
  o.fault_tolerance.delta_epoch_interval = delta_interval;
  o.fault_tolerance.chunk_codec = state::kChunkCodecPrefix;
  o.fault_tolerance.store.root = dir;
  o.fault_tolerance.store.num_backup_nodes = 2;
  o.fault_tolerance.store.io_threads = 4;
  return o;
}

std::map<int64_t, int64_t> ReadAll(Deployment& d, int64_t num_keys) {
  std::mutex mu;
  std::map<int64_t, int64_t> results;
  EXPECT_TRUE(d.OnOutput("get", [&](const Tuple& t, uint64_t) {
              std::lock_guard<std::mutex> lock(mu);
              results[t[0].AsInt()] = t[1].AsInt();
            }).ok());
  for (int64_t k = 0; k < num_keys; ++k) {
    EXPECT_TRUE(d.Inject("get", Tuple{Value(k)}).ok());
  }
  d.Drain();
  return results;
}

class DeltaCkptTest : public ::testing::TestWithParam<bool> {};

TEST_P(DeltaCkptTest, BaseDeltaChainRestoresAfterFailure) {
  const bool streaming = GetParam();
  ScopedTestDir dir("delta_ckpt");
  auto g = BuildKvGraph();
  ASSERT_TRUE(g.ok());
  Cluster cluster(DeltaCluster(dir.path(), streaming));
  auto d = cluster.Deploy(std::move(*g));
  ASSERT_TRUE(d.ok());

  // Epoch 1: full base of 300 keys.
  for (int64_t k = 0; k < 300; ++k) {
    ASSERT_TRUE((*d)->Inject("put", Tuple{Value(k), Value(k)}).ok());
  }
  (*d)->Drain();
  ASSERT_TRUE((*d)->CheckpointAllNodes().ok());

  // Epoch 2 (delta): overwrite a few, add a few.
  for (int64_t k = 0; k < 10; ++k) {
    ASSERT_TRUE((*d)->Inject("put", Tuple{Value(k), Value(k + 1000)}).ok());
  }
  ASSERT_TRUE((*d)->Inject("put", Tuple{Value(300), Value(300)}).ok());
  (*d)->Drain();
  ASSERT_TRUE((*d)->CheckpointAllNodes().ok());

  // Epoch 3 (delta): erase some base keys.
  for (int64_t k = 100; k < 110; ++k) {
    ASSERT_TRUE((*d)->Inject("del", Tuple{Value(k)}).ok());
  }
  (*d)->Drain();
  ASSERT_TRUE((*d)->CheckpointAllNodes().ok());

  auto stats = (*d)->CheckpointStatsSnapshot();
  EXPECT_GT(stats.full_serializations, 0u);
  EXPECT_GT(stats.delta_serializations, 0u);
  EXPECT_GT(stats.tombstones, 0u);
  // The deltas carried only the changed records, not the 300-key base.
  EXPECT_LT(stats.records_delta, stats.records_full);

  // Kill the node hosting the dict and restore from the base+delta chain.
  uint32_t victim = (*d)->NodeOfStateInstance("dict", 0);
  ASSERT_NE(victim, UINT32_MAX);
  uint32_t target = (victim + 1) % 3;
  ASSERT_TRUE((*d)->KillNode(victim).ok());
  ASSERT_TRUE((*d)->RecoverNode(victim, {target}).ok());

  auto all = ReadAll(**d, 301);
  for (int64_t k = 0; k < 301; ++k) {
    int64_t expect = k;
    if (k < 10) {
      expect = k + 1000;
    } else if (k >= 100 && k < 110) {
      expect = -1;  // erased
    }
    EXPECT_EQ(all[k], expect) << "key " << k;
  }
}

INSTANTIATE_TEST_SUITE_P(StreamingAndBatch, DeltaCkptTest,
                         ::testing::Values(true, false));

TEST(DeltaCkptTest2, FullBaseRewrittenWhenChainHitsInterval) {
  ScopedTestDir dir("delta_interval");
  auto g = BuildKvGraph();
  ASSERT_TRUE(g.ok());
  Cluster cluster(DeltaCluster(dir.path(), /*streaming=*/true,
                               /*delta_interval=*/2));
  auto d = cluster.Deploy(std::move(*g));
  ASSERT_TRUE(d.ok());

  for (int64_t round = 0; round < 4; ++round) {
    ASSERT_TRUE((*d)->Inject("put", Tuple{Value(round), Value(round)}).ok());
    (*d)->Drain();
    uint32_t dict_node = (*d)->NodeOfStateInstance("dict", 0);
    ASSERT_NE(dict_node, UINT32_MAX);
    ASSERT_TRUE((*d)->CheckpointNode(dict_node).ok());
  }
  auto stats = (*d)->CheckpointStatsSnapshot();
  // Chain cap 2: epochs alternate full, delta, full, delta.
  EXPECT_EQ(stats.full_serializations, 2u);
  EXPECT_EQ(stats.delta_serializations, 2u);
}

TEST(DeltaCkptTest2, StatsAccumulateAndDriverCountersMatch) {
  ScopedTestDir dir("delta_stats");
  auto g = BuildKvGraph();
  ASSERT_TRUE(g.ok());
  Cluster cluster(DeltaCluster(dir.path()));
  auto d = cluster.Deploy(std::move(*g));
  ASSERT_TRUE(d.ok());

  for (int64_t k = 0; k < 50; ++k) {
    ASSERT_TRUE((*d)->Inject("put", Tuple{Value(k), Value(k)}).ok());
  }
  (*d)->Drain();
  ASSERT_TRUE((*d)->CheckpointAllNodes().ok());
  auto s1 = (*d)->CheckpointStatsSnapshot();
  EXPECT_EQ(s1.checkpoints, (*d)->CheckpointsCompleted());
  EXPECT_EQ(s1.checkpoints, 3u);  // one per node
  EXPECT_GT(s1.bytes_written, 0u);
  EXPECT_GT(s1.records_full, 0u);

  ASSERT_TRUE(
      (*d)->Inject("put", Tuple{Value(int64_t{1}), Value(int64_t{2})}).ok());
  (*d)->Drain();
  ASSERT_TRUE((*d)->CheckpointAllNodes().ok());
  auto s2 = (*d)->CheckpointStatsSnapshot();
  EXPECT_EQ(s2.checkpoints, 6u);
  EXPECT_GT(s2.bytes_written, s1.bytes_written);
  // The second sweep wrote one delta with a single changed record.
  EXPECT_GE(s2.delta_serializations, 1u);
  EXPECT_EQ(s2.records_full, s1.records_full);
  EXPECT_GE(s2.records_delta, 1u);
}

TEST(DeltaCkptTest2, FullCheckpointsStillWorkWithDeltaDisabled) {
  // delta_epoch_interval = 0 must reproduce the pre-delta behaviour (every
  // epoch a full base) while still using the streaming writer.
  ScopedTestDir dir("delta_off");
  auto g = BuildKvGraph();
  ASSERT_TRUE(g.ok());
  Cluster cluster(DeltaCluster(dir.path(), /*streaming=*/true,
                               /*delta_interval=*/0));
  auto d = cluster.Deploy(std::move(*g));
  ASSERT_TRUE(d.ok());

  for (int64_t k = 0; k < 100; ++k) {
    ASSERT_TRUE((*d)->Inject("put", Tuple{Value(k), Value(k)}).ok());
  }
  (*d)->Drain();
  ASSERT_TRUE((*d)->CheckpointAllNodes().ok());
  ASSERT_TRUE((*d)->CheckpointAllNodes().ok());
  auto stats = (*d)->CheckpointStatsSnapshot();
  EXPECT_EQ(stats.delta_serializations, 0u);

  uint32_t victim = (*d)->NodeOfStateInstance("dict", 0);
  uint32_t target = (victim + 1) % 3;
  ASSERT_TRUE((*d)->KillNode(victim).ok());
  ASSERT_TRUE((*d)->RecoverNode(victim, {target}).ok());
  auto all = ReadAll(**d, 100);
  for (int64_t k = 0; k < 100; ++k) {
    EXPECT_EQ(all[k], k);
  }
}

}  // namespace
}  // namespace sdg::runtime
