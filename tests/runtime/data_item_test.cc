#include "src/runtime/data_item.h"

#include <gtest/gtest.h>

namespace sdg::runtime {
namespace {

TEST(SourceIdTest, OrderingAndEquality) {
  SourceId a{1, 0}, b{1, 1}, c{2, 0};
  EXPECT_TRUE(a == a);
  EXPECT_FALSE(a == b);
  EXPECT_TRUE(a < b);
  EXPECT_TRUE(b < c);
  EXPECT_FALSE(c < a);
}

TEST(DataItemTest, RoundTripAllFields) {
  DataItem item;
  item.from = SourceId{7, 3};
  item.ts = 0xDEADBEEFull;
  item.barrier_id = 42;
  item.expected_partials = 5;
  item.user_tag = 0x1234567890ull;
  item.replayed = true;
  item.payload = Tuple{Value(1), Value("two"), Value(3.0)};

  auto back = DataItem::FromBytes(item.ToBytes());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->from.task, 7u);
  EXPECT_EQ(back->from.instance, 3u);
  EXPECT_EQ(back->ts, 0xDEADBEEFull);
  EXPECT_EQ(back->barrier_id, 42u);
  EXPECT_EQ(back->expected_partials, 5u);
  EXPECT_EQ(back->user_tag, 0x1234567890ull);
  EXPECT_TRUE(back->replayed);
  EXPECT_EQ(back->payload, item.payload);
}

TEST(DataItemTest, DefaultsRoundTrip) {
  DataItem item;
  auto back = DataItem::FromBytes(item.ToBytes());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->ts, 0u);
  EXPECT_EQ(back->barrier_id, 0u);
  EXPECT_FALSE(back->replayed);
  EXPECT_TRUE(back->payload.empty());
}

TEST(DataItemTest, TruncatedBytesFail) {
  DataItem item;
  item.payload = Tuple{Value("payload")};
  auto bytes = item.ToBytes();
  bytes.resize(bytes.size() / 2);
  EXPECT_FALSE(DataItem::FromBytes(bytes).ok());
}

}  // namespace
}  // namespace sdg::runtime
