// Unit tests for the seeded deterministic fault injector: decision hashing,
// crash-point arming/countdowns, rule resolution and the backup-store hook.
#include "src/runtime/fault_injector.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/apps/kv.h"
#include "src/checkpoint/backup_store.h"
#include "tests/common/scoped_test_dir.h"

namespace sdg::runtime {
namespace {

std::vector<DataItem> MakeGroup(uint32_t src_task, uint32_t src_instance,
                                uint64_t first_ts, size_t n) {
  std::vector<DataItem> items;
  for (size_t i = 0; i < n; ++i) {
    DataItem item;
    item.from = SourceId{src_task, src_instance};
    item.ts = first_ts + i;
    item.payload = Tuple{Value(static_cast<int64_t>(first_ts + i))};
    items.push_back(std::move(item));
  }
  return items;
}

FaultInjectionOptions AnyEdgeOptions(uint64_t seed) {
  FaultInjectionOptions opt;
  opt.enabled = true;
  opt.seed = seed;
  opt.edges.push_back(EdgeFaultRule{"", "", /*drop=*/0.3, /*dup=*/0.3,
                                    /*delay=*/0.0, /*reorder=*/0.2, 200});
  return opt;
}

// Summarises the fault decisions over a fixed item stream so two runs can be
// compared exactly.
std::string Schedule(FaultInjector& inj) {
  std::string out;
  for (uint64_t g = 0; g < 50; ++g) {
    auto items = MakeGroup(/*task=*/3, /*instance=*/1, g * 10, 8);
    auto eff = inj.ApplyToGroup(3, 7, items);
    out += std::to_string(eff.dropped) + "/" + std::to_string(eff.duplicated) +
           (eff.reordered ? "r" : "-") + ";";
    for (const auto& item : items) {
      out += std::to_string(item.ts) + (item.replayed ? "d" : "") + ",";
    }
    out += "|";
  }
  return out;
}

TEST(FaultInjectorTest, SameSeedSameSchedule) {
  FaultInjector a(AnyEdgeOptions(42));
  FaultInjector b(AnyEdgeOptions(42));
  ASSERT_TRUE(a.Resolve(graph::Sdg()).ok());
  ASSERT_TRUE(b.Resolve(graph::Sdg()).ok());
  EXPECT_EQ(Schedule(a), Schedule(b));
  EXPECT_EQ(a.FaultCount(), b.FaultCount());
}

TEST(FaultInjectorTest, DifferentSeedDifferentSchedule) {
  FaultInjector a(AnyEdgeOptions(42));
  FaultInjector b(AnyEdgeOptions(43));
  ASSERT_TRUE(a.Resolve(graph::Sdg()).ok());
  ASSERT_TRUE(b.Resolve(graph::Sdg()).ok());
  // 400 independent per-item decisions; identical schedules would mean the
  // seed is ignored.
  EXPECT_NE(Schedule(a), Schedule(b));
}

TEST(FaultInjectorTest, DecisionsArePureFunctionsOfItemIdentity) {
  // The same item must get the same fate regardless of processing order or
  // what was rolled before it — the property that makes schedules replayable
  // across thread interleavings.
  FaultInjector a(AnyEdgeOptions(7));
  FaultInjector b(AnyEdgeOptions(7));
  ASSERT_TRUE(a.Resolve(graph::Sdg()).ok());
  ASSERT_TRUE(b.Resolve(graph::Sdg()).ok());

  auto forward = MakeGroup(1, 0, 100, 1);
  a.ApplyToGroup(1, 2, forward);  // warm up `a` with an unrelated group
  auto probe_a = MakeGroup(5, 2, 777, 1);
  auto probe_b = MakeGroup(5, 2, 777, 1);
  a.ApplyToGroup(5, 6, probe_a);
  b.ApplyToGroup(5, 6, probe_b);
  ASSERT_EQ(probe_a.size(), probe_b.size());
  for (size_t i = 0; i < probe_a.size(); ++i) {
    EXPECT_EQ(probe_a[i].ts, probe_b[i].ts);
    EXPECT_EQ(probe_a[i].replayed, probe_b[i].replayed);
  }
}

TEST(FaultInjectorTest, ReplayedItemsAreExemptFromFaults) {
  // Recovery re-sends ride an ordered, reliable channel: the receiver's
  // timestamp-watermark dedup requires per-source FIFO, so replayed items
  // must never be dropped, duplicated, or reordered (a reordered replay group
  // advances the watermark past undelivered items and loses them silently).
  FaultInjectionOptions opt;
  opt.enabled = true;
  opt.seed = 11;
  opt.edges.push_back(
      EdgeFaultRule{"", "", /*drop=*/1.0, /*dup=*/1.0, /*delay=*/0.0,
                    /*reorder=*/1.0, 200});
  FaultInjector inj(opt);
  ASSERT_TRUE(inj.Resolve(graph::Sdg()).ok());

  auto items = MakeGroup(/*task=*/3, /*instance=*/0, /*first_ts=*/100, 4);
  for (auto& item : items) {
    item.replayed = true;
  }
  auto eff = inj.ApplyToGroup(3, 7, items);
  EXPECT_EQ(eff.dropped, 0u);
  EXPECT_EQ(eff.duplicated, 0u);
  EXPECT_FALSE(eff.reordered);
  ASSERT_EQ(items.size(), 4u);
  for (size_t i = 0; i < items.size(); ++i) {
    EXPECT_EQ(items[i].ts, 100 + i);
  }

  // A single replayed item in the group pins the whole group's order; the
  // fresh items around it still take per-item faults.
  auto mixed = MakeGroup(3, 0, 200, 4);
  mixed[2].replayed = true;
  eff = inj.ApplyToGroup(3, 7, mixed);
  EXPECT_FALSE(eff.reordered);
  bool survivor = false;
  for (const auto& item : mixed) {
    survivor = survivor || item.ts == 202;
  }
  EXPECT_TRUE(survivor) << "replayed item must never be dropped";
}

TEST(FaultInjectorTest, DisabledOrPausedInjectsNothing) {
  FaultInjectionOptions opt = AnyEdgeOptions(42);
  opt.enabled = false;
  FaultInjector off(opt);
  ASSERT_TRUE(off.Resolve(graph::Sdg()).ok());
  auto items = MakeGroup(3, 1, 0, 8);
  auto eff = off.ApplyToGroup(3, 7, items);
  EXPECT_EQ(eff.dropped + eff.duplicated, 0u);
  EXPECT_EQ(items.size(), 8u);

  FaultInjector paused(AnyEdgeOptions(42));
  ASSERT_TRUE(paused.Resolve(graph::Sdg()).ok());
  paused.Pause();
  items = MakeGroup(3, 1, 0, 8);
  eff = paused.ApplyToGroup(3, 7, items);
  EXPECT_EQ(eff.dropped + eff.duplicated, 0u);
  EXPECT_EQ(items.size(), 8u);
  paused.Resume();
  items = MakeGroup(3, 1, 0, 64);
  eff = paused.ApplyToGroup(3, 7, items);
  EXPECT_GT(eff.dropped + eff.duplicated, 0u);
}

TEST(FaultInjectorTest, DuplicatesFollowOriginalsAndAreReplayMarked) {
  FaultInjectionOptions opt;
  opt.enabled = true;
  opt.seed = 11;
  opt.edges.push_back(EdgeFaultRule{"", "", 0.0, /*dup=*/1.0, 0.0, 0.0, 200});
  FaultInjector inj(opt);
  ASSERT_TRUE(inj.Resolve(graph::Sdg()).ok());
  auto items = MakeGroup(2, 0, 10, 4);
  auto eff = inj.ApplyToGroup(2, 3, items);
  EXPECT_EQ(eff.duplicated, 4u);
  ASSERT_EQ(items.size(), 8u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_FALSE(items[i].replayed) << i;  // originals first, unmarked
    EXPECT_TRUE(items[4 + i].replayed) << i;
  }
}

TEST(FaultInjectorTest, ResolveMatchesTaskNamesAndRejectsUnknown) {
  auto g = apps::BuildKvSdg(apps::KvOptions{});
  ASSERT_TRUE(g.ok());

  FaultInjectionOptions opt;
  opt.enabled = true;
  opt.seed = 1;
  opt.edges.push_back(EdgeFaultRule{"external", "put", /*drop=*/1.0, 0.0, 0.0,
                                    0.0, 200});
  FaultInjector inj(opt);
  ASSERT_TRUE(inj.Resolve(*g).ok());

  auto put_id = g->TaskByName("put");
  auto get_id = g->TaskByName("get");
  ASSERT_TRUE(put_id.ok());
  ASSERT_TRUE(get_id.ok());

  // external -> put matches; external -> get and put -> put do not.
  auto items = MakeGroup(FaultInjector::kExternalTask, *put_id, 0, 4);
  EXPECT_EQ(inj.ApplyToGroup(FaultInjector::kExternalTask, *put_id, items)
                .dropped,
            4u);
  items = MakeGroup(FaultInjector::kExternalTask, *get_id, 0, 4);
  EXPECT_EQ(inj.ApplyToGroup(FaultInjector::kExternalTask, *get_id, items)
                .dropped,
            0u);
  items = MakeGroup(*put_id, 0, 0, 4);
  EXPECT_EQ(inj.ApplyToGroup(*put_id, *put_id, items).dropped, 0u);

  opt.edges[0].to_task = "no_such_task";
  FaultInjector bad(opt);
  Status s = bad.Resolve(*g);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("no_such_task"), std::string::npos);
}

TEST(FaultInjectorTest, CrashCountdownFiresOnNthHit) {
  FaultInjectionOptions opt;
  opt.enabled = true;
  opt.seed = 5;
  FaultInjector inj(opt);
  inj.ArmCrash("backup.write_chunk", CrashPhase::kAfter, /*on_hit=*/3);

  EXPECT_FALSE(inj.FireIfArmed("backup.write_chunk", CrashPhase::kBefore));
  EXPECT_FALSE(inj.FireIfArmed("backup.write_chunk", CrashPhase::kAfter));
  EXPECT_FALSE(inj.FireIfArmed("backup.write_chunk", CrashPhase::kAfter));
  EXPECT_TRUE(inj.FireIfArmed("backup.write_chunk", CrashPhase::kAfter));
  // One-shot: consumed once fired.
  EXPECT_FALSE(inj.FireIfArmed("backup.write_chunk", CrashPhase::kAfter));
}

TEST(FaultInjectorTest, CheckCrashReportsPointPhaseAndSeed) {
  FaultInjectionOptions opt;
  opt.enabled = true;
  opt.seed = 1234;
  FaultInjector inj(opt);
  inj.ArmCrash("restore.meta", CrashPhase::kBefore);
  Status s = inj.CheckCrash("restore.meta", CrashPhase::kBefore);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("restore.meta"), std::string::npos);
  EXPECT_NE(s.ToString().find("1234"), std::string::npos);
  EXPECT_TRUE(inj.CheckCrash("restore.meta", CrashPhase::kBefore).ok());

  inj.ArmCrash("restore.install", CrashPhase::kBefore);
  inj.DisarmAll();
  EXPECT_TRUE(inj.CheckCrash("restore.install", CrashPhase::kBefore).ok());
}

TEST(FaultInjectorTest, StoreHookDiesAfterNthChunk) {
  // End to end through the real BackupStore: arm "after chunk 2 is backed
  // up" and observe the write fail exactly there, with earlier chunks on
  // disk and later ones absent.
  ScopedTestDir dir("fault_store");
  FaultInjectionOptions opt;
  opt.enabled = true;
  opt.seed = 9;
  auto inj = std::make_shared<FaultInjector>(opt);

  checkpoint::BackupStoreOptions store_opt;
  store_opt.root = dir.path();
  store_opt.num_backup_nodes = 2;
  store_opt.io_threads = 1;
  store_opt.fault_hook = [inj](const char* op, uint32_t index, bool before) {
    return inj->OnStoreOp(op, index, before);
  };
  checkpoint::BackupStore store(std::move(store_opt));

  std::vector<std::vector<uint8_t>> chunks(4, std::vector<uint8_t>{1, 2, 3});
  ASSERT_TRUE(store.WriteChunks(0, 1, "se", chunks).ok());

  inj->ArmCrash("backup.write_chunk", CrashPhase::kAfter, /*on_hit=*/2);
  Status s = store.WriteChunks(0, 2, "se", chunks);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("backup.write_chunk"), std::string::npos);

  // Epoch 1 fully written and readable; epoch 2 has no meta and must not be
  // reported as the latest complete checkpoint.
  auto read = store.ReadChunks(0, 1, "se", 4);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->size(), 4u);
  auto partial = store.ReadChunks(0, 2, "se", 4);
  EXPECT_FALSE(partial.ok());
}

TEST(FaultInjectorTest, FaultLogIncludesSeedContext) {
  FaultInjectionOptions opt;
  opt.enabled = true;
  opt.seed = 77;
  opt.edges.push_back(EdgeFaultRule{"", "", /*drop=*/1.0, 0.0, 0.0, 0.0, 200});
  FaultInjector inj(opt);
  ASSERT_TRUE(inj.Resolve(graph::Sdg()).ok());
  auto items = MakeGroup(1, 0, 5, 2);
  inj.ApplyToGroup(1, 2, items);
  EXPECT_TRUE(items.empty());
  EXPECT_EQ(inj.FaultCount(), 2u);
  auto log = inj.Log();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_NE(log[0].find("drop"), std::string::npos);
  EXPECT_NE(log[0].find("ts=5"), std::string::npos);
  EXPECT_EQ(inj.seed(), 77u);
}

}  // namespace
}  // namespace sdg::runtime
