// Chaos property test: random operation streams with checkpoints, failures
// and recoveries injected at random points must never lose or corrupt state.
//
// The deployment runs the KV SDG; a reference model applies the same
// operations. After every recovery and at the end, the store must agree with
// the model exactly — puts before the last checkpoint come back from chunks,
// puts after it from upstream-buffer replay, and deletes must not resurrect.
//
// On divergence the failure message carries the seed, a ready-to-paste
// --gtest_filter repro line and the full op log, so any run reproduces from
// the test output alone (tests/harness/ applies the same reporting pattern
// across all apps).
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include "src/apps/kv.h"
#include "src/common/rng.h"
#include "src/runtime/cluster.h"
#include "tests/common/scoped_test_dir.h"

namespace sdg::runtime {
namespace {

class ChaosTest : public ::testing::TestWithParam<uint64_t> {};

// Names instantiations "seed101" instead of "0" so the repro line below can
// be pasted into --gtest_filter directly.
std::string ChaosSeedName(const ::testing::TestParamInfo<uint64_t>& info) {
  return "seed" + std::to_string(info.param);
}

// The divergence report for one failed round: seed, repro, diff, op log.
std::string DivergenceReport(uint64_t seed, int round,
                             const std::map<int64_t, std::string>& model,
                             const std::map<int64_t, std::string>& observed,
                             const std::vector<std::string>& ops) {
  std::ostringstream os;
  os << "=== chaos divergence (seed " << seed << ", round " << round
     << ") ===\n";
  for (const auto& [k, v] : model) {
    auto it = observed.find(k);
    if (it == observed.end()) {
      os << "  lost write: key " << k << " expected '" << v
         << "', got nothing\n";
    } else if (it->second != v) {
      os << "  corrupted value: key " << k << " expected '" << v << "', got '"
         << it->second << "'\n";
    }
  }
  for (const auto& [k, v] : observed) {
    if (model.find(k) == model.end()) {
      os << "  resurrected delete: key " << k << " should be absent, got '"
         << v << "'\n";
    }
  }
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  os << "reproduce with:\n  ./build/tests/runtime_test --gtest_filter="
     << info->test_suite_name() << "." << info->name() << "\n";
  os << "op log (" << ops.size() << " ops):\n";
  for (const auto& op : ops) {
    os << "  " << op << "\n";
  }
  return os.str();
}

TEST_P(ChaosTest, RandomOpsFailuresAndRecoveriesMatchModel) {
  Rng rng(GetParam());
  ScopedTestDir dir("chaos_kv_seed");

  auto g = apps::BuildKvSdg(apps::KvOptions{});
  ASSERT_TRUE(g.ok());
  ClusterOptions o;
  o.num_nodes = 3;
  o.mailbox_capacity = 4096;
  o.fault_tolerance.mode = FtMode::kAsyncLocal;
  o.fault_tolerance.checkpoint_interval_s = 0;  // chaos drives checkpoints
  o.fault_tolerance.store.root = dir.path();
  o.fault_tolerance.store.num_backup_nodes = 1 + rng.NextBounded(2);
  Cluster cluster(o);
  auto d = cluster.Deploy(std::move(*g));
  ASSERT_TRUE(d.ok());

  std::map<int64_t, std::string> model;
  std::vector<std::string> ops;
  constexpr int64_t kKeySpace = 400;

  // One sink with test-lifetime storage: replayed gets may fire it at any
  // point after a recovery, so its captures must outlive every round.
  std::mutex observed_mu;
  std::map<int64_t, std::string> observed;
  ASSERT_TRUE((*d)->OnOutput("get", [&](const Tuple& t, uint64_t) {
              std::lock_guard<std::mutex> lock(observed_mu);
              if (!t[1].AsString().empty()) {
                observed[t[0].AsInt()] = t[1].AsString();
              }
            }).ok());
  bool have_checkpoint = false;
  // The store starts on node 0; recoveries move it between live nodes.
  uint32_t store_node = 0;
  std::vector<uint32_t> live = {0, 1, 2};

  const int rounds = 6;
  for (int round = 0; round < rounds; ++round) {
    // A burst of random mutations, mirrored into the model. Deletes and puts
    // go through different entry TEs (separate mailboxes), so cross-entry
    // order per key is undefined — phase them: all deletes, drain, all puts.
    // Within one entry, per-key FIFO makes last-write-wins deterministic.
    int dels = 20 + static_cast<int>(rng.NextBounded(40));
    for (int i = 0; i < dels; ++i) {
      auto key = static_cast<int64_t>(rng.NextBounded(kKeySpace));
      ASSERT_TRUE((*d)->Inject("del", Tuple{Value(key)}).ok());
      model.erase(key);
      ops.push_back("del " + std::to_string(key));
    }
    (*d)->Drain();
    int puts = 100 + static_cast<int>(rng.NextBounded(200));
    for (int i = 0; i < puts; ++i) {
      auto key = static_cast<int64_t>(rng.NextBounded(kKeySpace));
      std::string value = "r" + std::to_string(round) + "v" +
                          std::to_string(rng.NextBounded(1000));
      ASSERT_TRUE((*d)->Inject("put", Tuple{Value(key), Value(value)}).ok());
      model[key] = value;
      ops.push_back("put " + std::to_string(key) + " " + value);
    }
    (*d)->Drain();

    // Random fault-tolerance event.
    uint64_t roll = rng.NextBounded(100);
    if (roll < 40) {
      ASSERT_TRUE((*d)->CheckpointNode(store_node).ok()) << "round " << round;
      have_checkpoint = true;
      ops.push_back("checkpoint node " + std::to_string(store_node));
    } else if (roll < 70 && have_checkpoint && live.size() >= 2) {
      // Checkpoint, then kill and recover onto a random other live node
      // (1-to-1). Checkpointing first keeps the scenario recoverable; the
      // post-checkpoint burst of the *next* round exercises replay.
      ASSERT_TRUE((*d)->CheckpointNode(store_node).ok());
      ops.push_back("checkpoint node " + std::to_string(store_node));
      // A few extra post-checkpoint ops that must survive via replay.
      for (int i = 0; i < 30; ++i) {
        auto key = static_cast<int64_t>(rng.NextBounded(kKeySpace));
        std::string value = "post" + std::to_string(round) + "_" +
                            std::to_string(i);
        ASSERT_TRUE((*d)->Inject("put", Tuple{Value(key), Value(value)}).ok());
        model[key] = value;
        ops.push_back("put " + std::to_string(key) + " " + value);
      }
      (*d)->Drain();
      ASSERT_TRUE((*d)->KillNode(store_node).ok()) << "round " << round;
      std::vector<uint32_t> candidates;
      for (uint32_t n : live) {
        if (n != store_node) {
          candidates.push_back(n);
        }
      }
      uint32_t target = candidates[rng.NextBounded(candidates.size())];
      ASSERT_TRUE((*d)->RecoverNode(store_node, {target}).ok())
          << "round " << round;
      (*d)->Drain();
      ops.push_back("kill node " + std::to_string(store_node) +
                    "; recover onto node " + std::to_string(target));
      // The killed node is gone for good.
      live.erase(std::find(live.begin(), live.end(), store_node));
      store_node = target;
    }

    // Verify the full key space against the model. Stale entries from
    // replayed gets are discarded by the clear; the fresh sweep rebuilds.
    {
      std::lock_guard<std::mutex> lock(observed_mu);
      observed.clear();
    }
    for (int64_t k = 0; k < kKeySpace; ++k) {
      ASSERT_TRUE((*d)->Inject("get", Tuple{Value(k)}).ok());
    }
    (*d)->Drain();
    std::lock_guard<std::mutex> lock(observed_mu);
    EXPECT_TRUE(observed == model)
        << DivergenceReport(GetParam(), round, model, observed, ops);
    if (observed != model) {
      break;  // no point compounding the failure across rounds
    }
  }

  (*d)->Shutdown();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosTest,
                         ::testing::Values(101, 202, 303, 404, 505, 606),
                         ChaosSeedName);

}  // namespace
}  // namespace sdg::runtime
