#include "src/runtime/output_buffer.h"

#include <gtest/gtest.h>

namespace sdg::runtime {
namespace {

DataItem Item(uint64_t ts, uint64_t tag = 0) {
  DataItem i;
  i.from = SourceId{1, 0};
  i.ts = ts;
  i.user_tag = tag;
  i.payload = Tuple{Value(static_cast<int64_t>(ts))};
  return i;
}

TEST(OutputBufferTest, AppendAndItemsAfter) {
  OutputBuffer b;
  b.Append(Item(1), 0);
  b.Append(Item(2), 1);
  b.Append(Item(3), 0);
  EXPECT_EQ(b.size(), 3u);

  auto replay = b.ItemsAfter(/*dest_instance=*/0, /*from_ts=*/1);
  ASSERT_EQ(replay.size(), 1u);
  EXPECT_EQ(replay[0].ts, 3u);

  auto all0 = b.ItemsAfter(0, 0);
  EXPECT_EQ(all0.size(), 2u);
  auto none = b.ItemsAfter(0, 10);
  EXPECT_TRUE(none.empty());
}

TEST(OutputBufferTest, AckTrimsCoveredPrefix) {
  OutputBuffer b;
  for (uint64_t ts = 1; ts <= 6; ++ts) {
    b.Append(Item(ts), ts % 2);  // alternating destinations
  }
  // Covering dest 1 up to ts 3 trims its entries ts 1 and ts 3 — dest 0's
  // interleaved entries no longer pin them (per-destination logs).
  b.Ack(1, 3);
  EXPECT_EQ(b.size(), 4u);
  EXPECT_EQ(b.SizeFor(1), 1u);
  // Covering dest 0 up to ts 4 releases ts 2 and ts 4.
  b.Ack(0, 4);
  EXPECT_EQ(b.size(), 2u);
  auto rest = b.ItemsAfter(1, 0);
  ASSERT_EQ(rest.size(), 1u);
  EXPECT_EQ(rest[0].ts, 5u);
  auto rest0 = b.ItemsAfter(0, 0);
  ASSERT_EQ(rest0.size(), 1u);
  EXPECT_EQ(rest0[0].ts, 6u);
}

TEST(OutputBufferTest, SlowDestinationDoesNotPinAckedSiblings) {
  // Regression: with one FIFO shared by all destinations, a never-acking
  // head entry (a slow or failed instance) pinned every acknowledged entry
  // queued behind it, so the buffer grew without bound even though all
  // other destinations kept up. Per-destination logs keep each destination's
  // retained set equal to exactly its own unacked suffix.
  OutputBuffer b;
  b.Append(Item(1), /*dest=*/9);  // dest 9 never acks
  constexpr uint64_t kRounds = 1000;
  for (uint64_t ts = 2; ts < 2 + kRounds; ++ts) {
    b.Append(Item(ts), ts % 2);
    if (ts % 10 == 0) {
      b.Ack(0, ts);  // both healthy destinations ack promptly
      b.Ack(1, ts);
    }
  }
  b.Ack(0, 2 + kRounds);
  b.Ack(1, 2 + kRounds);
  EXPECT_EQ(b.SizeFor(0), 0u);
  EXPECT_EQ(b.SizeFor(1), 0u);
  EXPECT_EQ(b.SizeFor(9), 1u);
  EXPECT_EQ(b.size(), 1u);  // only the genuinely unacked entry is retained
  // The straggler's entry is still replayable.
  auto replay = b.ItemsAfter(9, 0);
  ASSERT_EQ(replay.size(), 1u);
  EXPECT_EQ(replay[0].ts, 1u);
}

TEST(OutputBufferTest, AckKeepsMaximum) {
  OutputBuffer b;
  b.Append(Item(5), 0);
  b.Ack(0, 10);
  b.Ack(0, 2);  // lower ack must not resurrect trimming threshold
  b.Append(Item(7), 0);
  b.Ack(0, 2);
  // ts 7 <= max ack 10: trimmed immediately.
  EXPECT_EQ(b.size(), 0u);
}

TEST(OutputBufferTest, SnapshotAndRestore) {
  OutputBuffer b;
  b.Append(Item(1, 100), 2);
  b.Append(Item(2, 200), 3);
  auto snap = b.Snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].item.user_tag, 100u);
  EXPECT_EQ(snap[0].dest_instance, 2u);

  OutputBuffer restored;
  for (const auto& e : snap) {
    restored.RestoreEntry(e.item, e.dest_instance);
  }
  EXPECT_EQ(restored.size(), 2u);
  EXPECT_EQ(restored.ItemsAfter(3, 0).size(), 1u);
}

TEST(OutputBufferTest, ClearEmpties) {
  OutputBuffer b;
  b.Append(Item(1), 0);
  b.Clear();
  EXPECT_EQ(b.size(), 0u);
}

}  // namespace
}  // namespace sdg::runtime
