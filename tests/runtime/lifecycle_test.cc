// Deployment lifecycle edge cases: double start, inject-after-shutdown,
// abort with items in flight, and deployments at the topology extremes.
#include <gtest/gtest.h>

#include <atomic>

#include "src/graph/sdg.h"
#include "src/runtime/cluster.h"
#include "src/state/keyed_dict.h"

namespace sdg::runtime {
namespace {

using state::KeyedDict;
using state::StateAs;
using IntDict = KeyedDict<int64_t, int64_t>;

graph::Sdg EchoGraph() {
  graph::SdgBuilder b;
  auto echo = b.AddEntryTask("echo", [](const Tuple& in, graph::TaskContext& ctx) {
    ctx.Emit(0, in);
  });
  (void)echo;
  return std::move(b).Build().value();
}

TEST(LifecycleTest, DoubleStartFails) {
  ClusterOptions o;
  o.num_nodes = 1;
  Deployment d(EchoGraph(), o);
  ASSERT_TRUE(d.Start().ok());
  EXPECT_EQ(d.Start().code(), StatusCode::kFailedPrecondition);
  d.Shutdown();
}

TEST(LifecycleTest, InjectBeforeStartFails) {
  ClusterOptions o;
  o.num_nodes = 1;
  Deployment d(EchoGraph(), o);
  EXPECT_FALSE(d.Inject("echo", Tuple{Value(1)}).ok());
}

TEST(LifecycleTest, InjectAfterShutdownFails) {
  ClusterOptions o;
  o.num_nodes = 1;
  Deployment d(EchoGraph(), o);
  ASSERT_TRUE(d.Start().ok());
  d.Shutdown();
  EXPECT_FALSE(d.Inject("echo", Tuple{Value(1)}).ok());
}

TEST(LifecycleTest, ShutdownIsIdempotent) {
  ClusterOptions o;
  o.num_nodes = 1;
  Deployment d(EchoGraph(), o);
  ASSERT_TRUE(d.Start().ok());
  d.Shutdown();
  d.Shutdown();  // must not hang or crash
}

TEST(LifecycleTest, DestructorWithItemsInFlightDoesNotHang) {
  ClusterOptions o;
  o.num_nodes = 1;
  o.mailbox_capacity = 1 << 12;
  auto d = std::make_unique<Deployment>(EchoGraph(), o);
  ASSERT_TRUE(d->Start().ok());
  for (int i = 0; i < 1000; ++i) {
    (void)d->Inject("echo", Tuple{Value(i)});
  }
  d.reset();  // aborts outstanding items; must terminate promptly
}

TEST(LifecycleTest, SingleNodeHostsEverything) {
  graph::SdgBuilder b;
  auto dict = b.AddState("d", graph::StateDistribution::kPartitioned,
                         [] { return std::make_unique<IntDict>(); });
  auto put = b.AddEntryTask("put", [](const Tuple& in, graph::TaskContext& ctx) {
    StateAs<IntDict>(ctx.state())->Put(in[0].AsInt(), in[1].AsInt());
  });
  auto fwd = b.AddTask("fwd", [](const Tuple& in, graph::TaskContext& ctx) {
    ctx.Emit(0, in);
  });
  ASSERT_TRUE(b.SetAccess(put, dict, graph::AccessMode::kPartitioned).ok());
  ASSERT_TRUE(b.Connect(fwd, put, graph::Dispatch::kPartitioned, 0).ok());
  // fwd is unreachable from an entry but must still deploy.
  auto g = std::move(b).Build();
  ASSERT_TRUE(g.ok());
  ClusterOptions o;
  o.num_nodes = 1;
  Cluster cluster(o);
  auto d = cluster.Deploy(std::move(*g));
  ASSERT_TRUE(d.ok());
  ASSERT_TRUE((*d)->Inject("put", Tuple{Value(1), Value(2)}).ok());
  (*d)->Drain();
  EXPECT_EQ(StateAs<IntDict>((*d)->StateInstance("d", 0))->Get(1), 2);
}

TEST(LifecycleTest, ManyInstancesOnFewNodes) {
  graph::SdgBuilder b;
  auto dict = b.AddState("d", graph::StateDistribution::kPartitioned,
                         [] { return std::make_unique<IntDict>(); });
  auto put = b.AddEntryTask("put", [](const Tuple& in, graph::TaskContext& ctx) {
    StateAs<IntDict>(ctx.state())->Put(in[0].AsInt(), in[1].AsInt());
  });
  ASSERT_TRUE(b.SetAccess(put, dict, graph::AccessMode::kPartitioned).ok());
  b.SetInitialInstances(put, 8);  // 8 partitions on 2 nodes
  auto g = std::move(b).Build();
  ASSERT_TRUE(g.ok());
  ClusterOptions o;
  o.num_nodes = 2;
  Cluster cluster(o);
  auto d = cluster.Deploy(std::move(*g));
  ASSERT_TRUE(d.ok());
  EXPECT_EQ((*d)->NumInstancesOf("put"), 8u);
  EXPECT_EQ((*d)->NumStateInstances("d"), 8u);
  for (int64_t k = 0; k < 400; ++k) {
    ASSERT_TRUE((*d)->Inject("put", Tuple{Value(k), Value(k)}).ok());
  }
  (*d)->Drain();
  uint64_t total = 0;
  for (uint32_t j = 0; j < 8; ++j) {
    total += StateAs<IntDict>((*d)->StateInstance("d", j))->Size();
  }
  EXPECT_EQ(total, 400u);
}

TEST(LifecycleTest, DrainWithNoTrafficReturnsImmediately) {
  ClusterOptions o;
  o.num_nodes = 1;
  Cluster cluster(o);
  auto d = cluster.Deploy(EchoGraph());
  ASSERT_TRUE(d.ok());
  (*d)->Drain();  // must not block
  SUCCEED();
}

}  // namespace
}  // namespace sdg::runtime
