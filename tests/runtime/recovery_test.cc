// Failure-recovery tests: checkpoints, kill, m-to-n restore, and replay (§5).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <mutex>

#include "src/graph/sdg.h"
#include "src/runtime/cluster.h"
#include "src/state/keyed_dict.h"
#include "tests/common/scoped_test_dir.h"

namespace sdg::runtime {
namespace {

using graph::AccessMode;
using graph::SdgBuilder;
using graph::StateDistribution;
using state::KeyedDict;
using state::StateAs;

using IntDict = KeyedDict<int64_t, int64_t>;

Result<graph::Sdg> BuildKvGraph() {
  SdgBuilder b;
  auto dict = b.AddState("dict", StateDistribution::kPartitioned,
                         [] { return std::make_unique<IntDict>(); });
  auto put = b.AddEntryTask("put", [](const Tuple& in, graph::TaskContext& ctx) {
    StateAs<IntDict>(ctx.state())->Put(in[0].AsInt(), in[1].AsInt());
  });
  auto get = b.AddEntryTask("get", [](const Tuple& in, graph::TaskContext& ctx) {
    auto v = StateAs<IntDict>(ctx.state())->Get(in[0].AsInt());
    ctx.Emit(0, Tuple{in[0], Value(v.value_or(-1))});
  });
  EXPECT_TRUE(b.SetAccess(put, dict, AccessMode::kPartitioned).ok());
  EXPECT_TRUE(b.SetAccess(get, dict, AccessMode::kPartitioned).ok());
  return std::move(b).Build();
}

ClusterOptions FtCluster(const std::filesystem::path& dir, FtMode mode,
                         uint32_t nodes = 3, uint32_t backup_nodes = 2) {
  ClusterOptions o;
  o.num_nodes = nodes;
  o.mailbox_capacity = 8192;
  o.fault_tolerance.mode = mode;
  o.fault_tolerance.checkpoint_interval_s = 0;  // manual checkpoints only
  o.fault_tolerance.chunks_per_state = 4;
  o.fault_tolerance.store.root = dir;
  o.fault_tolerance.store.num_backup_nodes = backup_nodes;
  o.fault_tolerance.store.io_threads = 4;
  return o;
}

std::map<int64_t, int64_t> ReadAll(Deployment& d, int64_t num_keys) {
  std::mutex mu;
  std::map<int64_t, int64_t> results;
  EXPECT_TRUE(d.OnOutput("get", [&](const Tuple& t, uint64_t) {
              std::lock_guard<std::mutex> lock(mu);
              results[t[0].AsInt()] = t[1].AsInt();
            }).ok());
  for (int64_t k = 0; k < num_keys; ++k) {
    EXPECT_TRUE(d.Inject("get", Tuple{Value(k)}).ok());
  }
  d.Drain();
  return results;
}

TEST(CheckpointTest, ManualCheckpointCompletes) {
  ScopedTestDir dir("ckpt_basic");
  auto g = BuildKvGraph();
  ASSERT_TRUE(g.ok());
  Cluster cluster(FtCluster(dir.path(), FtMode::kAsyncLocal));
  auto d = cluster.Deploy(std::move(*g));
  ASSERT_TRUE(d.ok());

  for (int64_t k = 0; k < 100; ++k) {
    ASSERT_TRUE((*d)->Inject("put", Tuple{Value(k), Value(k)}).ok());
  }
  (*d)->Drain();
  ASSERT_TRUE((*d)->CheckpointAllNodes().ok());
  EXPECT_GT((*d)->CheckpointsCompleted(), 0u);
  // After the checkpoint, no SE may be left with an active dirty overlay.
  auto* dict = StateAs<IntDict>((*d)->StateInstance("dict", 0));
  ASSERT_NE(dict, nullptr);
  EXPECT_FALSE(dict->checkpoint_active());
}

TEST(CheckpointTest, DisabledModeRejectsCheckpoint) {
  auto g = BuildKvGraph();
  ASSERT_TRUE(g.ok());
  ClusterOptions o;
  o.num_nodes = 1;
  Cluster cluster(o);
  auto d = cluster.Deploy(std::move(*g));
  ASSERT_TRUE(d.ok());
  EXPECT_EQ((*d)->CheckpointNode(0).code(), StatusCode::kFailedPrecondition);
}

TEST(CheckpointTest, ProcessingContinuesDuringAsyncCheckpoint) {
  ScopedTestDir dir("ckpt_async");
  auto g = BuildKvGraph();
  ASSERT_TRUE(g.ok());
  Cluster cluster(FtCluster(dir.path(), FtMode::kAsyncLocal, /*nodes=*/1));
  auto d = cluster.Deploy(std::move(*g));
  ASSERT_TRUE(d.ok());

  for (int64_t k = 0; k < 5000; ++k) {
    ASSERT_TRUE((*d)->Inject("put", Tuple{Value(k), Value(1)}).ok());
  }
  // Checkpoint while puts continue from another thread.
  std::thread injector([&] {
    for (int64_t k = 0; k < 5000; ++k) {
      ASSERT_TRUE((*d)->Inject("put", Tuple{Value(k), Value(2)}).ok());
    }
  });
  ASSERT_TRUE((*d)->CheckpointNode(0).ok());
  injector.join();
  (*d)->Drain();
  // Everything written, dirty overlay consolidated.
  auto all = ReadAll(**d, 5000);
  for (int64_t k = 0; k < 5000; ++k) {
    EXPECT_EQ(all[k], 2);
  }
}

TEST(CheckpointTest, ParallelSerializeFanoutRoundTrip) {
  // Forces the per-shard serialize fan-out (ckpt_parallelism > 1) plus the
  // concurrent ChunkStreamWriter, which auto-parallelism would leave off on
  // a single-core machine, and proves the bytes it writes restore a node.
  ScopedTestDir dir("ckpt_fanout");
  auto g = BuildKvGraph();
  ASSERT_TRUE(g.ok());
  auto opts = FtCluster(dir.path(), FtMode::kAsyncLocal);
  opts.fault_tolerance.ckpt_parallelism = 4;
  Cluster cluster(opts);
  auto d = cluster.Deploy(std::move(*g));
  ASSERT_TRUE(d.ok());

  constexpr int64_t kKeys = 2000;
  for (int64_t k = 0; k < kKeys; ++k) {
    ASSERT_TRUE((*d)->Inject("put", Tuple{Value(k), Value(k * 3)}).ok());
  }
  (*d)->Drain();
  ASSERT_TRUE((*d)->CheckpointAllNodes().ok());

  ASSERT_TRUE((*d)->KillNode(0).ok());
  ASSERT_TRUE((*d)->RecoverNode(0, {1}).ok());
  (*d)->Drain();

  auto all = ReadAll(**d, kKeys);
  ASSERT_EQ(all.size(), static_cast<size_t>(kKeys));
  for (int64_t k = 0; k < kKeys; ++k) {
    ASSERT_EQ(all[k], k * 3) << "key " << k << " lost through fan-out ckpt";
  }
}

class RecoveryModeTest : public ::testing::TestWithParam<FtMode> {};

TEST_P(RecoveryModeTest, KillAndRecoverOneToOne) {
  ScopedTestDir dir(std::string("rec_") +
                      std::string(FtModeName(GetParam())));
  auto g = BuildKvGraph();
  ASSERT_TRUE(g.ok());
  // Single-node KV plus two spares.
  auto opts = FtCluster(dir.path(), GetParam(), /*nodes=*/3);
  Cluster cluster(opts);
  auto d = cluster.Deploy(std::move(*g));
  ASSERT_TRUE(d.ok());

  constexpr int64_t kKeys = 500;
  for (int64_t k = 0; k < kKeys; ++k) {
    ASSERT_TRUE((*d)->Inject("put", Tuple{Value(k), Value(k)}).ok());
  }
  (*d)->Drain();
  ASSERT_TRUE((*d)->CheckpointNode(0).ok());

  // Post-checkpoint updates: recovered only via external-buffer replay.
  for (int64_t k = 0; k < kKeys; ++k) {
    ASSERT_TRUE((*d)->Inject("put", Tuple{Value(k), Value(k + 1000)}).ok());
  }
  (*d)->Drain();

  ASSERT_TRUE((*d)->KillNode(0).ok());
  EXPECT_FALSE((*d)->NodeAlive(0));
  ASSERT_TRUE((*d)->RecoverNode(0, {1}).ok());
  (*d)->Drain();

  auto all = ReadAll(**d, kKeys);
  ASSERT_EQ(all.size(), static_cast<size_t>(kKeys));
  for (int64_t k = 0; k < kKeys; ++k) {
    EXPECT_EQ(all[k], k + 1000) << "key " << k << " lost post-checkpoint update";
  }
}

INSTANTIATE_TEST_SUITE_P(AllModes, RecoveryModeTest,
                         ::testing::Values(FtMode::kAsyncLocal,
                                           FtMode::kSyncLocal,
                                           FtMode::kSyncGlobal),
                         [](const auto& info) {
                           return std::string(FtModeName(info.param)) == "async-local"
                                      ? std::string("AsyncLocal")
                                  : FtModeName(info.param) == "sync-local"
                                      ? std::string("SyncLocal")
                                      : std::string("SyncGlobal");
                         });

TEST(RecoveryTest, OneToTwoSplitRecovery) {
  ScopedTestDir dir("rec_split");
  auto g = BuildKvGraph();
  ASSERT_TRUE(g.ok());
  Cluster cluster(FtCluster(dir.path(), FtMode::kAsyncLocal, /*nodes=*/3));
  auto d = cluster.Deploy(std::move(*g));
  ASSERT_TRUE(d.ok());

  constexpr int64_t kKeys = 400;
  for (int64_t k = 0; k < kKeys; ++k) {
    ASSERT_TRUE((*d)->Inject("put", Tuple{Value(k), Value(k * 3)}).ok());
  }
  (*d)->Drain();
  ASSERT_TRUE((*d)->CheckpointNode(0).ok());

  ASSERT_TRUE((*d)->KillNode(0).ok());
  // Restore the lost single-instance SE as two partitioned instances on the
  // two spare nodes (1-to-2 of Fig. 4 / Fig. 11).
  ASSERT_TRUE((*d)->RecoverNode(0, {1, 2}).ok());
  (*d)->Drain();

  EXPECT_EQ((*d)->NumStateInstances("dict"), 2u);
  EXPECT_EQ((*d)->NumInstancesOf("put"), 2u);
  EXPECT_EQ((*d)->NumInstancesOf("get"), 2u);

  auto all = ReadAll(**d, kKeys);
  ASSERT_EQ(all.size(), static_cast<size_t>(kKeys));
  for (int64_t k = 0; k < kKeys; ++k) {
    EXPECT_EQ(all[k], k * 3) << "key " << k;
  }
  // Both new partitions hold a share.
  auto* p0 = StateAs<IntDict>((*d)->StateInstance("dict", 0));
  auto* p1 = StateAs<IntDict>((*d)->StateInstance("dict", 1));
  ASSERT_NE(p0, nullptr);
  ASSERT_NE(p1, nullptr);
  EXPECT_GT(p0->Size(), 100u);
  EXPECT_GT(p1->Size(), 100u);
}

TEST(RecoveryTest, RecoveryWithoutCheckpointFails) {
  ScopedTestDir dir("rec_nockpt");
  auto g = BuildKvGraph();
  ASSERT_TRUE(g.ok());
  Cluster cluster(FtCluster(dir.path(), FtMode::kAsyncLocal, /*nodes=*/2));
  auto d = cluster.Deploy(std::move(*g));
  ASSERT_TRUE(d.ok());
  ASSERT_TRUE((*d)->KillNode(0).ok());
  EXPECT_FALSE((*d)->RecoverNode(0, {1}).ok());
}

TEST(RecoveryTest, PeriodicCheckpointDriverRuns) {
  ScopedTestDir dir("rec_periodic");
  auto g = BuildKvGraph();
  ASSERT_TRUE(g.ok());
  auto opts = FtCluster(dir.path(), FtMode::kAsyncLocal, /*nodes=*/1);
  opts.fault_tolerance.checkpoint_interval_s = 0.05;
  Cluster cluster(opts);
  auto d = cluster.Deploy(std::move(*g));
  ASSERT_TRUE(d.ok());
  for (int64_t k = 0; k < 100; ++k) {
    ASSERT_TRUE((*d)->Inject("put", Tuple{Value(k), Value(k)}).ok());
  }
  // Give the driver a few intervals.
  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  EXPECT_GT((*d)->CheckpointsCompleted(), 1u);
  (*d)->Shutdown();
}

TEST(RecoveryTest, MigrateNodeMovesStateAndKeepsServing) {
  ScopedTestDir dir("rec_migrate");
  auto g = BuildKvGraph();
  ASSERT_TRUE(g.ok());
  Cluster cluster(FtCluster(dir.path(), FtMode::kAsyncLocal, /*nodes=*/3));
  auto d = cluster.Deploy(std::move(*g));
  ASSERT_TRUE(d.ok());

  constexpr int64_t kKeys = 300;
  for (int64_t k = 0; k < kKeys; ++k) {
    ASSERT_TRUE((*d)->Inject("put", Tuple{Value(k), Value(k * 7)}).ok());
  }
  (*d)->Drain();

  // Evacuate node 0 (hosting the single store partition) onto node 2.
  ASSERT_TRUE((*d)->MigrateNode(0, {2}).ok());
  (*d)->Drain();
  EXPECT_FALSE((*d)->NodeAlive(0));
  std::string dump = (*d)->DescribeTopology();
  EXPECT_NE(dump.find("node 0 [DEAD]"), std::string::npos);

  // All state survives, and new traffic keeps flowing.
  for (int64_t k = kKeys; k < kKeys + 50; ++k) {
    ASSERT_TRUE((*d)->Inject("put", Tuple{Value(k), Value(k * 7)}).ok());
  }
  (*d)->Drain();
  auto all = ReadAll(**d, kKeys + 50);
  ASSERT_EQ(all.size(), static_cast<size_t>(kKeys + 50));
  for (int64_t k = 0; k < kKeys + 50; ++k) {
    EXPECT_EQ(all[k], k * 7) << "key " << k;
  }
  EXPECT_FALSE((*d)->MigrateNode(1, {1}).ok());  // self-migration rejected
}

TEST(RecoveryTest, RecoverNodeRejectsBadReplacementLists) {
  ScopedTestDir dir("rec_badargs");
  auto g = BuildKvGraph();
  ASSERT_TRUE(g.ok());
  Cluster cluster(FtCluster(dir.path(), FtMode::kAsyncLocal, /*nodes=*/3));
  auto d = cluster.Deploy(std::move(*g));
  ASSERT_TRUE(d.ok());

  constexpr int64_t kKeys = 100;
  for (int64_t k = 0; k < kKeys; ++k) {
    ASSERT_TRUE((*d)->Inject("put", Tuple{Value(k), Value(k)}).ok());
  }
  (*d)->Drain();
  ASSERT_TRUE((*d)->CheckpointNode(0).ok());
  ASSERT_TRUE((*d)->KillNode(0).ok());

  // The failed node cannot host its own replacement, alone or in a split
  // list; the rejection must not consume the checkpoint or mutate topology.
  auto s = (*d)->RecoverNode(0, {0});
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("failed node"), std::string::npos)
      << s.ToString();
  EXPECT_FALSE((*d)->RecoverNode(0, {1, 0}).ok());
  EXPECT_FALSE((*d)->RecoverNode(0, {}).ok());
  EXPECT_FALSE((*d)->RecoverNode(0, {7}).ok());  // unknown node

  // A live node is not recoverable, even onto a valid replacement.
  EXPECT_FALSE((*d)->RecoverNode(1, {2}).ok());

  // After every rejection, a well-formed recovery still succeeds intact.
  ASSERT_TRUE((*d)->RecoverNode(0, {1}).ok());
  (*d)->Drain();
  auto all = ReadAll(**d, kKeys);
  ASSERT_EQ(all.size(), static_cast<size_t>(kKeys));
  for (int64_t k = 0; k < kKeys; ++k) {
    EXPECT_EQ(all[k], k) << "key " << k;
  }
}

TEST(RecoveryTest, KillingDeadNodeFails) {
  ScopedTestDir dir("rec_dead");
  auto g = BuildKvGraph();
  ASSERT_TRUE(g.ok());
  Cluster cluster(FtCluster(dir.path(), FtMode::kAsyncLocal, /*nodes=*/2));
  auto d = cluster.Deploy(std::move(*g));
  ASSERT_TRUE(d.ok());
  ASSERT_TRUE((*d)->KillNode(0).ok());
  EXPECT_FALSE((*d)->KillNode(0).ok());
  EXPECT_FALSE((*d)->RecoverNode(0, {0}).ok());  // dead replacement
}

}  // namespace
}  // namespace sdg::runtime
