// End-to-end tests of the reactive scaling monitor (§3.3/§6.3): bottleneck
// detection adds TE instances, and recovery integrates with a live
// application (CF) built through the translator.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <set>
#include <thread>

#include "src/apps/cf.h"
#include "src/graph/sdg.h"
#include "src/runtime/cluster.h"
#include "src/state/keyed_dict.h"

namespace sdg::runtime {
namespace {

using state::KeyedDict;
using state::StateAs;
using IntDict = KeyedDict<int64_t, int64_t>;

TEST(ScalingMonitorTest, BottleneckTriggersInstanceAdd) {
  graph::SdgBuilder b;
  auto slow = b.AddEntryTask("slow", [](const Tuple&, graph::TaskContext&) {
    std::this_thread::sleep_for(std::chrono::microseconds(500));
  });
  (void)slow;
  auto g = std::move(b).Build();
  ASSERT_TRUE(g.ok());

  ClusterOptions o;
  o.num_nodes = 2;
  o.mailbox_capacity = 256;
  o.scaling.enabled = true;
  o.scaling.sample_interval_ms = 50;
  o.scaling.queue_high_watermark = 0.3;
  o.scaling.samples_to_trigger = 2;
  o.scaling.cooldown_ms = 200;
  o.scaling.max_instances_per_task = 3;
  Cluster cluster(o);
  auto d = cluster.Deploy(std::move(*g));
  ASSERT_TRUE(d.ok());

  // Flood the slow task; the monitor must react within a few seconds.
  std::atomic<bool> stop{false};
  std::thread injector([&] {
    while (!stop.load()) {
      if ((*d)->TotalQueueDepth() < 200) {
        (void)(*d)->Inject("slow", Tuple{Value(1)});
      } else {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
      }
    }
  });

  bool scaled = false;
  for (int i = 0; i < 100 && !scaled; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    scaled = (*d)->NumInstancesOf("slow") > 1;
  }
  stop = true;
  injector.join();
  EXPECT_TRUE(scaled) << "monitor never added an instance";
  (*d)->Drain();
  (*d)->Shutdown();
}

TEST(ScalingMonitorTest, DisabledMonitorNeverScales) {
  graph::SdgBuilder b;
  auto t = b.AddEntryTask("t", [](const Tuple&, graph::TaskContext&) {});
  (void)t;
  auto g = std::move(b).Build();
  ASSERT_TRUE(g.ok());
  ClusterOptions o;
  o.num_nodes = 2;
  Cluster cluster(o);  // scaling.enabled defaults to false
  auto d = cluster.Deploy(std::move(*g));
  ASSERT_TRUE(d.ok());
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE((*d)->Inject("t", Tuple{Value(i)}).ok());
  }
  (*d)->Drain();
  EXPECT_EQ((*d)->NumInstancesOf("t"), 1u);
}

TEST(ScalingMonitorTest, StragglerCallbackFiresOncePerNode) {
  // Two instances of a partitioned entry task (key-hash routed); every item
  // for one key sleeps, so the instance that key hashes to is persistently
  // slower than the median and its node must be reported through
  // on_straggler — exactly once, with no cluster locks held (the callback
  // re-enters the deployment to prove it).
  graph::SdgBuilder b;
  auto dict = b.AddState("d", graph::StateDistribution::kPartitioned,
                         [] { return std::make_unique<IntDict>(); });
  auto t = b.AddEntryTask("t", [](const Tuple& in, graph::TaskContext& ctx) {
    StateAs<IntDict>(ctx.state())->Put(in[0].AsInt(), in[1].AsInt());
    if (in[1].AsInt() == 1) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });
  ASSERT_TRUE(b.SetAccess(t, dict, graph::AccessMode::kPartitioned).ok());
  b.SetInitialInstances(t, 2);
  auto g = std::move(b).Build();
  ASSERT_TRUE(g.ok());

  // Two keys on different instances: slow traffic pins one, fast the other.
  int64_t slow_key = 0;
  int64_t fast_key = 1;
  while (Value(slow_key).Hash() % 2 != 0) ++slow_key;
  while (Value(fast_key).Hash() % 2 != 1) ++fast_key;

  std::atomic<int> fired{0};
  std::atomic<uint32_t> flagged_node{Deployment::kNoNode};
  Deployment* dep = nullptr;

  ClusterOptions o;
  o.num_nodes = 2;
  o.mailbox_capacity = 512;
  o.scaling.enabled = true;
  o.scaling.sample_interval_ms = 50;
  o.scaling.samples_to_trigger = 2;
  o.scaling.queue_high_watermark = 2.0;  // occupancy <= 1: never adds instances
  o.scaling.straggler_ratio = 0.5;
  o.scaling.on_straggler = [&](uint32_t node) {
    fired.fetch_add(1);
    flagged_node.store(node);
    // Lock-free contract: deployment queries must not deadlock from here.
    (void)dep->NumInstancesOf("t");
  };
  Cluster cluster(o);
  auto d = cluster.Deploy(std::move(*g));
  ASSERT_TRUE(d.ok());
  dep = d->get();

  std::atomic<bool> stop{false};
  std::thread injector([&] {
    while (!stop.load()) {
      if ((*d)->TotalQueueDepth() < 300) {
        (void)(*d)->Inject("t", Tuple{Value(slow_key), Value(int64_t{1})});
        (void)(*d)->Inject("t", Tuple{Value(fast_key), Value(int64_t{0})});
      } else {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    }
  });
  for (int i = 0; i < 200 && fired.load() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  // Keep load flowing a little longer: the flag must NOT re-fire for a node
  // that already transitioned.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  stop = true;
  injector.join();
  EXPECT_EQ(fired.load(), 1) << "on_straggler must fire once per transition";
  // The reported node hosts one of the task's instances (slot -> instance-id
  // order is an allocation detail, so only membership is asserted).
  std::set<uint32_t> nodes = {(*d)->NodeOfTaskInstance("t", 0),
                              (*d)->NodeOfTaskInstance("t", 1)};
  EXPECT_TRUE(nodes.count(flagged_node.load()) > 0)
      << "flagged node " << flagged_node.load() << " hosts no instance of t";
  (*d)->Drain();
  (*d)->Shutdown();
}

TEST(StragglerPlacementTest, AvoidsFlaggedNode) {
  graph::SdgBuilder b;
  (void)b.AddEntryTask("t", [](const Tuple&, graph::TaskContext&) {});
  auto g = std::move(b).Build();
  ASSERT_TRUE(g.ok());
  ClusterOptions o;
  o.num_nodes = 3;
  Cluster cluster(o);
  auto d = cluster.Deploy(std::move(*g));
  ASSERT_TRUE(d.ok());

  // Instance 0 occupies some node; of the two empty nodes, flag one as a
  // straggler — the new instance must land on the other.
  uint32_t occupied = (*d)->NodeOfTaskInstance("t", 0);
  ASSERT_NE(occupied, Deployment::kNoNode);
  uint32_t flagged = (occupied + 1) % 3;
  uint32_t expected = (occupied + 2) % 3;
  (*d)->MarkNodeStraggler(flagged);
  ASSERT_TRUE((*d)->AddTaskInstance("t").ok());
  EXPECT_EQ((*d)->NodeOfTaskInstance("t", 1), expected);
  (*d)->Shutdown();
}

TEST(StragglerPlacementTest, AllStragglersFallBackToLeastLoaded) {
  // Regression: when EVERY alive node was flagged, the fallback returned the
  // first alive node unconditionally — typically node 0, the most loaded one
  // (and often the very straggler that triggered scaling). It must instead
  // balance by load across the (uniformly straggling) alive nodes.
  graph::SdgBuilder b;
  (void)b.AddEntryTask("t", [](const Tuple&, graph::TaskContext&) {});
  auto g = std::move(b).Build();
  ASSERT_TRUE(g.ok());
  ClusterOptions o;
  o.num_nodes = 3;
  Cluster cluster(o);
  auto d = cluster.Deploy(std::move(*g));
  ASSERT_TRUE(d.ok());

  uint32_t occupied = (*d)->NodeOfTaskInstance("t", 0);
  ASSERT_NE(occupied, Deployment::kNoNode);
  for (uint32_t n = 0; n < 3; ++n) {
    (*d)->MarkNodeStraggler(n);
  }
  ASSERT_TRUE((*d)->AddTaskInstance("t").ok());
  uint32_t placed = (*d)->NodeOfTaskInstance("t", 1);
  ASSERT_NE(placed, Deployment::kNoNode);
  EXPECT_NE(placed, occupied) << "fallback dog-piled the occupied node";

  // And a third instance fills the remaining empty node before any doubles up.
  ASSERT_TRUE((*d)->AddTaskInstance("t").ok());
  uint32_t third = (*d)->NodeOfTaskInstance("t", 2);
  EXPECT_NE(third, occupied);
  EXPECT_NE(third, placed);
  (*d)->Shutdown();
}

TEST(CfIntegrationTest, SurvivesKillAndRecovery) {
  // The translated CF application, checkpointed, killed and recovered: the
  // model must keep answering recommendation queries afterwards.
  auto dir = std::filesystem::temp_directory_path() / "sdg_cf_recovery_test";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  apps::CfOptions opt;
  opt.num_items = 10;
  auto t = apps::BuildCfSdg(opt);
  ASSERT_TRUE(t.ok());

  ClusterOptions o;
  o.num_nodes = 4;
  o.fault_tolerance.mode = FtMode::kAsyncLocal;
  o.fault_tolerance.checkpoint_interval_s = 0;
  o.fault_tolerance.store.root = dir;
  o.fault_tolerance.store.num_backup_nodes = 2;
  Cluster cluster(o);
  auto d = cluster.Deploy(std::move(t->sdg));
  ASSERT_TRUE(d.ok());

  for (int64_t user = 0; user < 50; ++user) {
    ASSERT_TRUE((*d)->Inject("addRating",
                             Tuple{Value(user), Value(user % 5), Value(5)}).ok());
    ASSERT_TRUE((*d)->Inject("addRating",
                             Tuple{Value(user), Value(5 + user % 5), Value(4)})
                    .ok());
  }
  (*d)->Drain();
  ASSERT_TRUE((*d)->CheckpointAllNodes().ok());

  // Post-checkpoint ratings (recovered via replay).
  for (int64_t user = 50; user < 60; ++user) {
    ASSERT_TRUE((*d)->Inject("addRating",
                             Tuple{Value(user), Value(0), Value(5)}).ok());
  }
  (*d)->Drain();

  // Find and kill the node hosting the userItem SE.
  auto* user_item = (*d)->StateInstance("userItem", 0);
  ASSERT_NE(user_item, nullptr);
  uint64_t rows_before = user_item->EntryCount();
  ASSERT_GT(rows_before, 0u);

  // userItem instance 0 lives on some node; the allocation put it on node 0.
  ASSERT_TRUE((*d)->KillNode(0).ok());
  ASSERT_TRUE((*d)->RecoverNode(0, {3}).ok());
  (*d)->Drain();

  std::atomic<bool> got_rec{false};
  std::atomic<double> rec_score{0};
  ASSERT_TRUE((*d)->OnOutput("merge", [&](const Tuple& out, uint64_t) {
              const auto& rec = out[1].AsDoubleVector();
              rec_score = rec[5];  // item 5 co-rated with item 0 by users 0,5,10,…
              got_rec = true;
            }).ok());
  ASSERT_TRUE((*d)->Inject("getRec", Tuple{Value(int64_t{0})}).ok());
  (*d)->Drain();

  EXPECT_TRUE(got_rec.load());
  EXPECT_GT(rec_score.load(), 0.0)
      << "recovered co-occurrence model lost its mass";
  (*d)->Shutdown();
  std::filesystem::remove_all(dir);
}

TEST(SyncGlobalTest, CheckpointUnderLoadCompletes) {
  auto dir = std::filesystem::temp_directory_path() / "sdg_syncglobal_test";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  graph::SdgBuilder b;
  auto dict = b.AddState("d", graph::StateDistribution::kPartitioned,
                         [] { return std::make_unique<IntDict>(); });
  auto put = b.AddEntryTask("put", [](const Tuple& in, graph::TaskContext& ctx) {
    StateAs<IntDict>(ctx.state())->Put(in[0].AsInt(), in[1].AsInt());
  });
  ASSERT_TRUE(b.SetAccess(put, dict, graph::AccessMode::kPartitioned).ok());
  b.SetInitialInstances(put, 2);
  auto g = std::move(b).Build();
  ASSERT_TRUE(g.ok());

  ClusterOptions o;
  o.num_nodes = 2;
  o.fault_tolerance.mode = FtMode::kSyncGlobal;
  o.fault_tolerance.checkpoint_interval_s = 0;
  o.fault_tolerance.store.root = dir;
  Cluster cluster(o);
  auto d = cluster.Deploy(std::move(*g));
  ASSERT_TRUE(d.ok());

  std::atomic<bool> stop{false};
  std::thread injector([&] {
    int64_t k = 0;
    while (!stop.load()) {
      (void)(*d)->Inject("put", Tuple{Value(k % 1000), Value(k)});
      ++k;
    }
  });
  // Stop-the-world checkpoints must complete while load is flowing.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE((*d)->CheckpointAllNodes().ok()) << "round " << i;
  }
  stop = true;
  injector.join();
  (*d)->Drain();
  EXPECT_GE((*d)->CheckpointsCompleted(), 6u);
  (*d)->Shutdown();
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace sdg::runtime
