// Drain() vs concurrent injection: stress for the lock-free in-flight gauge
// and its 1->0 condvar handoff. A lost wakeup makes Drain() hang forever, a
// mis-count makes it return early — both show up here as a hang or a
// processed-count mismatch. Covers the per-item path (Inject), the batched
// ingest path (InjectAll), deferred batch flushing (no fault tolerance) and
// the per-item flush path (upstream backup on).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <thread>
#include <vector>

#include "src/graph/sdg.h"
#include "src/runtime/cluster.h"
#include "src/state/keyed_dict.h"
#include "tests/common/scoped_test_dir.h"

namespace sdg::runtime {
namespace {

using graph::AccessMode;
using graph::SdgBuilder;
using graph::StateDistribution;
using state::KeyedDict;
using state::StateAs;

using IntDict = KeyedDict<int64_t, int64_t>;

// feed (entry) --kPartitioned--> count (stateful): every injected item takes
// one emit hop, so both the ingest and the emit delivery paths are in play.
graph::Sdg PipelineGraph() {
  SdgBuilder b;
  auto dict = b.AddState("d", StateDistribution::kPartitioned,
                         [] { return std::make_unique<IntDict>(); });
  auto feed = b.AddEntryTask("feed", [](const Tuple& in,
                                        graph::TaskContext& ctx) {
    ctx.Emit(0, in);
  });
  auto count = b.AddTask("count", [](const Tuple& in, graph::TaskContext& ctx) {
    StateAs<IntDict>(ctx.state())->Put(in[0].AsInt(), in[1].AsInt());
  });
  EXPECT_TRUE(b.SetAccess(count, dict, AccessMode::kPartitioned).ok());
  b.SetInitialInstances(count, 4);
  EXPECT_TRUE(b.Connect(feed, count, graph::Dispatch::kPartitioned, 0).ok());
  return std::move(b).Build().value();
}

// Runs `rounds` rounds of: 4 injector threads firing while the main thread
// calls Drain() repeatedly, then a final Drain once injection stops. After
// every round the downstream processed count must equal exactly the number
// of items injected so far — Drain() returning early or late would break the
// equality; a lost 1->0 wakeup would hang the test.
void StressRounds(Deployment& d, int rounds, uint64_t* total_injected) {
  uint64_t total = 0;
  for (int round = 0; round < rounds; ++round) {
    std::atomic<uint64_t> injected{0};
    std::vector<std::thread> injectors;
    for (int t = 0; t < 4; ++t) {
      injectors.emplace_back([&, t] {
        if (t % 2 == 0) {
          // Per-item ingest path.
          for (int i = 0; i < 120; ++i) {
            int64_t k = t * 1000 + i;
            if (d.Inject("feed", Tuple{Value(k % 17), Value(k)}).ok()) {
              injected.fetch_add(1);
            }
          }
        } else {
          // Batched ingest path.
          for (int i = 0; i < 24; ++i) {
            std::vector<Tuple> chunk;
            for (int j = 0; j < 5; ++j) {
              int64_t k = t * 1000 + i * 5 + j;
              chunk.push_back(Tuple{Value(k % 17), Value(k)});
            }
            if (d.InjectAll("feed", std::move(chunk)).ok()) {
              injected.fetch_add(5);
            }
          }
        }
      });
    }
    // Drain concurrently with the injectors: each call may legitimately
    // return at any momentary zero, but must never hang or crash.
    for (int k = 0; k < 8; ++k) {
      d.Drain();
    }
    for (auto& th : injectors) {
      th.join();
    }
    d.Drain();
    total += injected.load();
    ASSERT_EQ(d.ProcessedOf("count"), total) << "round " << round;
  }
  *total_injected = total;
}

TEST(DrainStressTest, RepeatedDrainUnderConcurrentInjection) {
  ClusterOptions o;
  o.num_nodes = 4;
  o.serialize_cross_node = true;
  o.max_batch = 32;
  o.mailbox_capacity = 4096;
  Deployment d(PipelineGraph(), o);
  ASSERT_TRUE(d.Start().ok());

  uint64_t total = 0;
  StressRounds(d, 30, &total);
  EXPECT_GT(total, 0u);
  EXPECT_EQ(d.TotalQueueDepth(), 0u);
  d.Shutdown();
}

TEST(DrainStressTest, StrictItemAtATimeBatchSizeOne) {
  // max_batch = 1 exercises the degenerate batch: every item pays its own
  // in-flight report, maximising 1->0 transitions of the gauge.
  ClusterOptions o;
  o.num_nodes = 2;
  o.serialize_cross_node = true;
  o.max_batch = 1;
  o.mailbox_capacity = 4096;
  Deployment d(PipelineGraph(), o);
  ASSERT_TRUE(d.Start().ok());

  uint64_t total = 0;
  StressRounds(d, 10, &total);
  EXPECT_GT(total, 0u);
  d.Shutdown();
}

TEST(DrainStressTest, DrainWithUpstreamBackupEnabled) {
  // With fault tolerance on, deliveries flush per input item inside the step
  // lock (the replay protocol forbids deferral); the accounting protocol
  // must hold on that path too.
  ScopedTestDir dir("drain_stress_ft");
  ClusterOptions o;
  o.num_nodes = 2;
  o.serialize_cross_node = true;
  o.max_batch = 16;
  o.mailbox_capacity = 4096;
  o.fault_tolerance.mode = FtMode::kAsyncLocal;
  o.fault_tolerance.checkpoint_interval_s = 0;  // manual checkpoints only
  o.fault_tolerance.store.root = dir.path();
  o.fault_tolerance.store.num_backup_nodes = 1;
  Deployment d(PipelineGraph(), o);
  ASSERT_TRUE(d.Start().ok());

  uint64_t total = 0;
  StressRounds(d, 10, &total);
  EXPECT_GT(total, 0u);
  d.Shutdown();
}

TEST(DrainStressTest, DrainRacesConcurrentKillNode) {
  // KillNode() aborts every mailbox on the node; the items it discards were
  // counted into the in-flight gauge at delivery and must be released, or a
  // Drain() parked on the gauge waits for deliveries that will never finish.
  // Each trial parks the drainer at a different queue depth; a regression
  // shows up as a hang, which the per-test ctest timeout converts into a
  // fast failure.
  for (int trial = 0; trial < 8; ++trial) {
    ClusterOptions o;
    o.num_nodes = 4;
    o.serialize_cross_node = true;
    o.max_batch = 8;
    o.mailbox_capacity = 4096;
    Deployment d(PipelineGraph(), o);
    ASSERT_TRUE(d.Start().ok());

    for (int i = 0; i < 2000; ++i) {
      ASSERT_TRUE(d.Inject("feed", Tuple{Value(i % 17), Value(i)}).ok());
    }
    std::thread drainer([&] { d.Drain(); });
    std::this_thread::sleep_for(std::chrono::microseconds(200 * trial));
    ASSERT_TRUE(d.KillNode(trial % 3).ok());
    drainer.join();

    // The degraded deployment must still drain instantly and repeatedly.
    d.Drain();
    d.Drain();
    d.Shutdown();
  }
}

TEST(DrainStressTest, ConcurrentDrainCallers) {
  // Several threads parked in Drain() must all be released by the same 1->0
  // transition (notify_all, not notify_one).
  ClusterOptions o;
  o.num_nodes = 4;
  o.serialize_cross_node = true;
  o.max_batch = 32;
  o.mailbox_capacity = 4096;
  Deployment d(PipelineGraph(), o);
  ASSERT_TRUE(d.Start().ok());

  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 500; ++i) {
      ASSERT_TRUE(d.Inject("feed", Tuple{Value(i % 17), Value(i)}).ok());
    }
    std::vector<std::thread> drainers;
    for (int t = 0; t < 3; ++t) {
      drainers.emplace_back([&] { d.Drain(); });
    }
    for (auto& th : drainers) {
      th.join();
    }
    ASSERT_EQ(d.ProcessedOf("count"),
              static_cast<uint64_t>((round + 1) * 500));
  }
  d.Shutdown();
}

}  // namespace
}  // namespace sdg::runtime
