// Executor unit tests: the claim protocol (single-runner invariant, ready
// coalescing, re-enqueue on FinishSlice(more)), one-shot Submit, the
// Parallel fan-out primitive, inline help, and AwaitIdle quiescence — plus
// an oversubscription stress deployment: 1024 task instances multiplexed on
// a 4-worker pool, differentially checked against a scalar reference model,
// with the process thread count asserted O(pool), not O(instances).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "src/graph/sdg.h"
#include "src/runtime/cluster.h"
#include "src/runtime/executor.h"

namespace sdg::runtime {
namespace {

// A schedulable that drains an atomic unit counter in bounded slices and
// checks the single-runner invariant on every slice.
class CountingEntity : public Schedulable {
 public:
  explicit CountingEntity(Executor* ex) { BindExecutor(ex); }

  void AddUnits(uint64_t n) {
    units_.fetch_add(n, std::memory_order_relaxed);
    Ready();
  }

  uint64_t processed() const {
    return processed_.load(std::memory_order_relaxed);
  }
  int max_concurrent_runners() const {
    return max_runners_.load(std::memory_order_relaxed);
  }
  uint64_t slices() const { return slices_.load(std::memory_order_relaxed); }

 protected:
  bool RunSlice() override {
    int runners = runners_.fetch_add(1) + 1;
    int seen = max_runners_.load();
    while (runners > seen && !max_runners_.compare_exchange_weak(seen, runners)) {
    }
    slices_.fetch_add(1, std::memory_order_relaxed);
    // Drain at most a small batch per slice so re-enqueue (more=true) and
    // steal opportunities actually occur.
    uint64_t done = 0;
    for (; done < 16; ++done) {
      uint64_t u = units_.load(std::memory_order_relaxed);
      if (u == 0) {
        break;
      }
      if (units_.compare_exchange_weak(u, u - 1)) {
        processed_.fetch_add(1, std::memory_order_relaxed);
      } else {
        --done;  // retry the same unit
      }
    }
    runners_.fetch_sub(1);
    return units_.load(std::memory_order_relaxed) != 0;
  }

 private:
  std::atomic<uint64_t> units_{0};
  std::atomic<uint64_t> processed_{0};
  std::atomic<uint64_t> slices_{0};
  std::atomic<int> runners_{0};
  std::atomic<int> max_runners_{0};
};

TEST(ExecutorTest, SubmitRunsClosures) {
  Executor ex(Executor::Options{.workers = 2});
  constexpr int kTasks = 200;
  std::atomic<int> ran{0};
  for (int i = 0; i < kTasks; ++i) {
    ex.Submit([&] { ran.fetch_add(1); });
  }
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (ran.load() < kTasks && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(ran.load(), kTasks);
}

TEST(ExecutorTest, SingleRunnerInvariantUnderReadyStorm) {
  Executor ex(Executor::Options{.workers = 4});
  CountingEntity ent(&ex);
  // Hammer Ready() from several producers while slices drain: no matter how
  // many queue entries pile up, at most one thread may be inside RunSlice.
  std::vector<std::thread> producers;
  for (int t = 0; t < 4; ++t) {
    producers.emplace_back([&] {
      for (int i = 0; i < 500; ++i) {
        ent.AddUnits(3);
        if (i % 7 == 0) {
          std::this_thread::yield();
        }
      }
    });
  }
  for (auto& t : producers) {
    t.join();
  }
  ent.AwaitIdle();
  EXPECT_EQ(ent.processed(), 4u * 500u * 3u);
  EXPECT_EQ(ent.max_concurrent_runners(), 1);
}

TEST(ExecutorTest, ReadyStormCoalescesIntoFewSlices) {
  Executor ex(Executor::Options{.workers = 2});
  CountingEntity ent(&ex);
  // 10k units via 10k Ready() calls: the claim protocol collapses redundant
  // readies, so the slice count is bounded by work/batch plus a small
  // constant for claim races — far below one slice per Ready().
  for (int i = 0; i < 10000; ++i) {
    ent.AddUnits(1);
  }
  ent.AwaitIdle();
  EXPECT_EQ(ent.processed(), 10000u);
  EXPECT_LT(ent.slices(), 10000u / 16u + 200u);
}

TEST(ExecutorTest, TryRunInlineHelpsOnCallerThread) {
  Executor ex(Executor::Options{.workers = 1});
  CountingEntity ent(&ex);
  ent.AddUnits(64);
  // The caller may legally lose every claim race to the worker; what must
  // hold is that inline help plus the pool drain everything.
  while (ent.processed() < 64) {
    ent.TryRunInline();
  }
  ent.AwaitIdle();
  EXPECT_EQ(ent.processed(), 64u);
  EXPECT_EQ(ent.max_concurrent_runners(), 1);
}

TEST(ExecutorTest, ParallelCoversAllIndicesOnce) {
  Executor ex(Executor::Options{.workers = 4});
  constexpr size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  ex.Parallel(kN, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
  // max_workers caps concurrency but never coverage.
  std::vector<std::atomic<int>> hits2(kN);
  std::atomic<int> live{0};
  std::atomic<int> max_live{0};
  ex.Parallel(
      kN,
      [&](size_t i) {
        int l = live.fetch_add(1) + 1;
        int seen = max_live.load();
        while (l > seen && !max_live.compare_exchange_weak(seen, l)) {
        }
        hits2[i].fetch_add(1);
        live.fetch_sub(1);
      },
      /*max_workers=*/2);
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits2[i].load(), 1) << "index " << i;
  }
  EXPECT_LE(max_live.load(), 2);
  // Degenerate sizes.
  std::atomic<int> one{0};
  ex.Parallel(0, [&](size_t) { one.fetch_add(1); });
  EXPECT_EQ(one.load(), 0);
  ex.Parallel(1, [&](size_t) { one.fetch_add(1); });
  EXPECT_EQ(one.load(), 1);
}

TEST(ExecutorTest, ParallelWorksOnSingleWorkerPool) {
  // Caller participation is what makes Parallel safe on a saturated or
  // 1-worker pool (this container runs 1 core): it must complete even if no
  // worker ever picks up a shard.
  Executor ex(Executor::Options{.workers = 1});
  std::atomic<uint64_t> sum{0};
  ex.Parallel(257, [&](size_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 257u * 256u / 2u);
}

TEST(ExecutorTest, StatsCountTasksRun) {
  Executor ex(Executor::Options{.workers = 2});
  CountingEntity ent(&ex);
  ent.AddUnits(1000);
  ent.AwaitIdle();
  ExecutorStats stats = ex.StatsSnapshot();
  EXPECT_GT(stats.tasks_run, 0u);
  EXPECT_EQ(stats.per_worker.size(), 2u);
}

// ---------------------------------------------------------------------------
// Oversubscription stress: 1024 instances, 4 workers.

using graph::AccessMode;
using graph::SdgBuilder;
using graph::StateDistribution;

int CountProcessThreads() {
  int n = 0;
  for (auto it = std::filesystem::directory_iterator("/proc/self/task");
       it != std::filesystem::directory_iterator(); ++it) {
    ++n;
  }
  return n;
}

TEST(ExecutorOversubscriptionTest, ThousandInstancesOnFourWorkers) {
  // feed --kPartitioned--> work, with 1024 materialised work instances on a
  // 4-worker private pool: the executor must multiplex them (the pre-executor
  // design would spawn >1024 threads here) and the output must match a
  // scalar reference model exactly — per key, in per-source FIFO order.
  constexpr uint32_t kInstances = 1024;
  constexpr int64_t kKeys = 331;
  constexpr int64_t kItems = 20000;

  SdgBuilder b;
  auto feed =
      b.AddEntryTask("feed", [](const Tuple& in, graph::TaskContext& ctx) {
        ctx.Emit(0, in);
      });
  auto work =
      b.AddTask("work", [](const Tuple& in, graph::TaskContext& ctx) {
        ctx.Emit(0, Tuple{in[0], Value(in[1].AsInt() * 2 + 1)});
      });
  b.SetInitialInstances(work, kInstances);
  ASSERT_TRUE(b.Connect(feed, work, graph::Dispatch::kPartitioned, 0).ok());
  auto g = std::move(b).Build();
  ASSERT_TRUE(g.ok()) << g.status().ToString();

  ClusterOptions o;
  o.num_nodes = 4;
  o.serialize_cross_node = true;
  o.max_batch = 32;
  o.mailbox_capacity = 256;
  o.executor_workers = 4;
  Deployment d(std::move(*g), o);
  ASSERT_TRUE(d.Start().ok());

  const int threads_running = CountProcessThreads();
  // O(pool size): 4 pool workers plus a fixed overhead (main, gtest, the
  // shared event loop, service threads, and stray still-exiting threads from
  // earlier tests) — nowhere near the 1024+ of thread-per-instance.
  EXPECT_LT(threads_running, 64)
      << "thread count scales with instances, not pool size";

  std::mutex mu;
  std::map<int64_t, std::vector<int64_t>> got;  // key -> values in order
  ASSERT_TRUE(d.OnOutput("work", [&](const Tuple& t, uint64_t) {
                 std::lock_guard<std::mutex> lock(mu);
                 got[t[0].AsInt()].push_back(t[1].AsInt());
               }).ok());

  // Reference model: the same transform, scalar.
  std::map<int64_t, std::vector<int64_t>> want;
  for (int64_t i = 0; i < kItems; ++i) {
    want[i % kKeys].push_back(i * 2 + 1);
  }

  for (int64_t i = 0; i < kItems; ++i) {
    ASSERT_TRUE(d.Inject("feed", Tuple{Value(i % kKeys), Value(i)}).ok());
  }
  d.Drain();

  EXPECT_EQ(d.ProcessedOf("work"), static_cast<uint64_t>(kItems));
  {
    std::lock_guard<std::mutex> lock(mu);
    ASSERT_EQ(got.size(), want.size());
    for (const auto& [key, values] : want) {
      ASSERT_EQ(got[key], values) << "key " << key;
    }
  }
  d.Shutdown();
}

}  // namespace
}  // namespace sdg::runtime
