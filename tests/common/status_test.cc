#include "src/common/status.h"

#include <gtest/gtest.h>

namespace sdg {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = InvalidArgumentError("bad key");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad key");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad key");
}

TEST(StatusTest, AllErrorFactoriesSetTheirCode) {
  EXPECT_EQ(NotFoundError("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(AlreadyExistsError("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(FailedPreconditionError("x").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(OutOfRangeError("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(UnavailableError("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(AbortedError("x").code(), StatusCode::kAborted);
  EXPECT_EQ(DataLossError("x").code(), StatusCode::kDataLoss);
  EXPECT_EQ(InternalError("x").code(), StatusCode::kInternal);
  EXPECT_EQ(UnimplementedError("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(DeadlineExceededError("x").code(), StatusCode::kDeadlineExceeded);
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::Ok(), Status());
  EXPECT_EQ(NotFoundError("a"), NotFoundError("a"));
  EXPECT_FALSE(NotFoundError("a") == NotFoundError("b"));
  EXPECT_FALSE(NotFoundError("a") == InternalError("a"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = NotFoundError("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

Status FailIfNegative(int x) {
  if (x < 0) {
    return InvalidArgumentError("negative");
  }
  return Status::Ok();
}

Status UseReturnIfError(int x) {
  SDG_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::Ok();
}

TEST(StatusMacrosTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(UseReturnIfError(1).ok());
  EXPECT_EQ(UseReturnIfError(-1).code(), StatusCode::kInvalidArgument);
}

Result<int> Half(int x) {
  if (x % 2 != 0) {
    return InvalidArgumentError("odd");
  }
  return x / 2;
}

Result<int> Quarter(int x) {
  SDG_ASSIGN_OR_RETURN(int h, Half(x));
  SDG_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(StatusMacrosTest, AssignOrReturnChains) {
  Result<int> r = Quarter(8);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 2);
  EXPECT_FALSE(Quarter(6).ok());
  EXPECT_FALSE(Quarter(3).ok());
}

}  // namespace
}  // namespace sdg
