#include "src/common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>

namespace sdg {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { ++counter; });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitWithNoTasksReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<bool> ran{false};
  pool.Submit([&] { ran = true; });
  pool.Wait();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolTest, TasksRunConcurrently) {
  ThreadPool pool(4);
  std::atomic<int> concurrent{0};
  std::atomic<int> max_concurrent{0};
  for (int i = 0; i < 8; ++i) {
    pool.Submit([&] {
      int now = ++concurrent;
      int prev = max_concurrent.load();
      while (now > prev && !max_concurrent.compare_exchange_weak(prev, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      --concurrent;
    });
  }
  pool.Wait();
  EXPECT_GT(max_concurrent.load(), 1);
}

TEST(ThreadPoolTest, DestructorCompletesQueuedWork) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { ++counter; });
    }
    pool.Wait();
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, WaitCanBeCalledRepeatedly) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&] { ++counter; });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
  pool.Submit([&] { ++counter; });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

}  // namespace
}  // namespace sdg
