#include "src/common/rng.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

namespace sdg {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int differing = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() != b.Next()) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 90);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextBoundedRespectsBound) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
  EXPECT_EQ(rng.NextBounded(0), 0u);
}

TEST(RngTest, NextDoubleInRange) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDoubleIn(-2.0, 3.0);
    EXPECT_GE(d, -2.0);
    EXPECT_LT(d, 3.0);
  }
}

TEST(RngTest, GaussianHasRoughlyZeroMeanUnitVariance) {
  Rng rng(13);
  double sum = 0, sum_sq = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  double mean = sum / kN;
  double var = sum_sq / kN - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(ZipfTest, ValuesInRange) {
  ZipfGenerator zipf(1000, 0.99, 5);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(zipf.Next(), 1000u);
  }
}

TEST(ZipfTest, SkewFavoursLowRanks) {
  ZipfGenerator zipf(10000, 0.99, 5);
  std::map<uint64_t, int> counts;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    counts[zipf.Next()]++;
  }
  // Rank 0 should dominate: with theta=0.99 and n=10000 it gets ~10% of mass.
  EXPECT_GT(counts[0], kN / 20);
  // And it should beat a mid-rank key by a large factor.
  EXPECT_GT(counts[0], counts[5000] * 10);
}

TEST(ZipfTest, DeterministicForSameSeed) {
  ZipfGenerator a(100, 0.8, 3);
  ZipfGenerator b(100, 0.8, 3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

}  // namespace
}  // namespace sdg
