#include "src/common/backoff.h"

#include <gtest/gtest.h>

namespace sdg {
namespace {

TEST(Backoff, DoublesToCapWithoutJitter) {
  Backoff::Options opt;
  opt.initial_ms = 200;
  opt.max_ms = 5000;
  opt.jitter = 0.0;
  Backoff b(opt);
  EXPECT_EQ(b.NextDelayMs(), 200);
  EXPECT_EQ(b.NextDelayMs(), 400);
  EXPECT_EQ(b.NextDelayMs(), 800);
  EXPECT_EQ(b.NextDelayMs(), 1600);
  EXPECT_EQ(b.NextDelayMs(), 3200);
  EXPECT_EQ(b.NextDelayMs(), 5000);  // 6400 clamps to the cap
  EXPECT_EQ(b.NextDelayMs(), 5000);  // and stays there
}

TEST(Backoff, ResetRestartsTheSchedule) {
  Backoff::Options opt;
  opt.jitter = 0.0;
  Backoff b(opt);
  EXPECT_EQ(b.NextDelayMs(), 200);
  EXPECT_EQ(b.NextDelayMs(), 400);
  b.Reset();
  EXPECT_EQ(b.NextDelayMs(), 200);
  EXPECT_EQ(b.NextDelayMs(), 400);
}

TEST(Backoff, JitterStaysWithinTheBandAtEveryStep) {
  Backoff::Options opt;
  opt.initial_ms = 200;
  opt.max_ms = 5000;
  opt.jitter = 0.2;
  Backoff b(opt);
  for (int step = 0; step < 50; ++step) {
    const int base = b.base_ms();
    const int d = b.NextDelayMs();
    EXPECT_GE(d, static_cast<int>(base * (1.0 - opt.jitter)));
    EXPECT_LE(d, static_cast<int>(base * (1.0 + opt.jitter)) + 1);
  }
  // The capped tail must actually vary — fixed 5000 ms redials across a
  // fleet would re-synchronise the thundering herd the jitter is for.
  b.Reset();
  for (int i = 0; i < 10; ++i) {
    b.NextDelayMs();  // run into the cap
  }
  int distinct = 0;
  int prev = -1;
  for (int i = 0; i < 10; ++i) {
    const int d = b.NextDelayMs();
    distinct += (d != prev);
    prev = d;
  }
  EXPECT_GT(distinct, 1);
}

TEST(Backoff, DeterministicForAFixedSeed) {
  Backoff::Options opt;
  opt.seed = 1234;
  Backoff a(opt);
  Backoff b(opt);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(a.NextDelayMs(), b.NextDelayMs());
  }
}

}  // namespace
}  // namespace sdg
