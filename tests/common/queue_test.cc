#include "src/common/queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace sdg {
namespace {

TEST(BoundedQueueTest, PushPopSingleThread) {
  BoundedQueue<int> q(4);
  EXPECT_TRUE(q.Push(1));
  EXPECT_TRUE(q.Push(2));
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.Pop().value(), 1);
  EXPECT_EQ(q.Pop().value(), 2);
  EXPECT_TRUE(q.Empty());
}

TEST(BoundedQueueTest, TryPushRespectsCapacity) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  EXPECT_FALSE(q.TryPush(3));
  EXPECT_EQ(q.size(), 2u);
}

TEST(BoundedQueueTest, TryPopOnEmptyReturnsNullopt) {
  BoundedQueue<int> q(2);
  EXPECT_FALSE(q.TryPop().has_value());
}

TEST(BoundedQueueTest, CloseDrainsThenReturnsNullopt) {
  BoundedQueue<int> q(4);
  q.Push(1);
  q.Push(2);
  q.Close();
  EXPECT_FALSE(q.Push(3));  // closed: push fails
  EXPECT_EQ(q.Pop().value(), 1);
  EXPECT_EQ(q.Pop().value(), 2);
  EXPECT_FALSE(q.Pop().has_value());
}

TEST(BoundedQueueTest, AbortDropsItems) {
  BoundedQueue<int> q(4);
  q.Push(1);
  q.Push(2);
  q.Abort();
  EXPECT_FALSE(q.Pop().has_value());
  EXPECT_TRUE(q.closed());
}

TEST(BoundedQueueTest, PopForTimesOut) {
  BoundedQueue<int> q(4);
  auto result = q.PopFor(std::chrono::milliseconds(10));
  EXPECT_FALSE(result.has_value());
}

TEST(BoundedQueueTest, BlockingPushUnblocksOnPop) {
  BoundedQueue<int> q(1);
  q.Push(1);
  std::thread producer([&] { q.Push(2); });  // blocks until a pop
  EXPECT_EQ(q.Pop().value(), 1);
  producer.join();
  EXPECT_EQ(q.Pop().value(), 2);
}

TEST(BoundedQueueTest, BlockingPushUnblocksOnClose) {
  BoundedQueue<int> q(1);
  q.Push(1);
  std::atomic<bool> push_result{true};
  std::thread producer([&] { push_result = q.Push(2); });
  q.Close();
  producer.join();
  EXPECT_FALSE(push_result.load());
}

TEST(BoundedQueueTest, MpmcDeliversAllItemsExactlyOnce) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 2500;
  BoundedQueue<int> q(64);

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.Push(p * kPerProducer + i));
      }
    });
  }

  std::atomic<int64_t> sum{0};
  std::atomic<int> count{0};
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      while (auto item = q.Pop()) {
        sum += *item;
        ++count;
      }
    });
  }

  for (auto& t : producers) {
    t.join();
  }
  q.Close();
  for (auto& t : consumers) {
    t.join();
  }

  int total = kProducers * kPerProducer;
  EXPECT_EQ(count.load(), total);
  EXPECT_EQ(sum.load(), static_cast<int64_t>(total) * (total - 1) / 2);
}

TEST(BoundedQueueTest, MoveOnlyItems) {
  BoundedQueue<std::unique_ptr<int>> q(2);
  q.Push(std::make_unique<int>(5));
  auto item = q.Pop();
  ASSERT_TRUE(item.has_value());
  EXPECT_EQ(**item, 5);
}

}  // namespace
}  // namespace sdg
