#include "src/common/queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace sdg {
namespace {

TEST(BoundedQueueTest, PushPopSingleThread) {
  BoundedQueue<int> q(4);
  EXPECT_TRUE(q.Push(1));
  EXPECT_TRUE(q.Push(2));
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.Pop().value(), 1);
  EXPECT_EQ(q.Pop().value(), 2);
  EXPECT_TRUE(q.Empty());
}

TEST(BoundedQueueTest, TryPushRespectsCapacity) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  EXPECT_FALSE(q.TryPush(3));
  EXPECT_EQ(q.size(), 2u);
}

TEST(BoundedQueueTest, TryPopOnEmptyReturnsNullopt) {
  BoundedQueue<int> q(2);
  EXPECT_FALSE(q.TryPop().has_value());
}

TEST(BoundedQueueTest, CloseDrainsThenReturnsNullopt) {
  BoundedQueue<int> q(4);
  q.Push(1);
  q.Push(2);
  q.Close();
  EXPECT_FALSE(q.Push(3));  // closed: push fails
  EXPECT_EQ(q.Pop().value(), 1);
  EXPECT_EQ(q.Pop().value(), 2);
  EXPECT_FALSE(q.Pop().has_value());
}

TEST(BoundedQueueTest, AbortDropsItems) {
  BoundedQueue<int> q(4);
  q.Push(1);
  q.Push(2);
  q.Abort();
  EXPECT_FALSE(q.Pop().has_value());
  EXPECT_TRUE(q.closed());
}

TEST(BoundedQueueTest, PopForTimesOut) {
  BoundedQueue<int> q(4);
  auto result = q.PopFor(std::chrono::milliseconds(10));
  EXPECT_FALSE(result.has_value());
}

TEST(BoundedQueueTest, BlockingPushUnblocksOnPop) {
  BoundedQueue<int> q(1);
  q.Push(1);
  std::thread producer([&] { q.Push(2); });  // blocks until a pop
  EXPECT_EQ(q.Pop().value(), 1);
  producer.join();
  EXPECT_EQ(q.Pop().value(), 2);
}

TEST(BoundedQueueTest, BlockingPushUnblocksOnClose) {
  BoundedQueue<int> q(1);
  q.Push(1);
  std::atomic<bool> push_result{true};
  std::thread producer([&] { push_result = q.Push(2); });
  q.Close();
  producer.join();
  EXPECT_FALSE(push_result.load());
}

TEST(BoundedQueueTest, MpmcDeliversAllItemsExactlyOnce) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 2500;
  BoundedQueue<int> q(64);

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.Push(p * kPerProducer + i));
      }
    });
  }

  std::atomic<int64_t> sum{0};
  std::atomic<int> count{0};
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      while (auto item = q.Pop()) {
        sum += *item;
        ++count;
      }
    });
  }

  for (auto& t : producers) {
    t.join();
  }
  q.Close();
  for (auto& t : consumers) {
    t.join();
  }

  int total = kProducers * kPerProducer;
  EXPECT_EQ(count.load(), total);
  EXPECT_EQ(sum.load(), static_cast<int64_t>(total) * (total - 1) / 2);
}

TEST(BoundedQueueTest, MoveOnlyItems) {
  BoundedQueue<std::unique_ptr<int>> q(2);
  q.Push(std::make_unique<int>(5));
  auto item = q.Pop();
  ASSERT_TRUE(item.has_value());
  EXPECT_EQ(**item, 5);
}

TEST(BoundedQueueTest, PushAllPopAllRoundTripInOrder) {
  BoundedQueue<int> q(8);
  std::vector<int> in = {1, 2, 3, 4, 5};
  EXPECT_EQ(q.PushAll(std::move(in)), 5u);
  EXPECT_EQ(q.size(), 5u);

  std::deque<int> out;
  EXPECT_EQ(q.PopAll(out, 3), 3u);  // bounded by max
  EXPECT_EQ(q.PopAll(out, 100), 2u);  // bounded by contents
  ASSERT_EQ(out.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(out[i], i + 1);  // FIFO preserved across batch pops
  }
  EXPECT_TRUE(q.Empty());
}

TEST(BoundedQueueTest, PushAllLargerThanCapacityChunksThrough) {
  BoundedQueue<int> q(4);
  std::vector<int> in(64);
  for (int i = 0; i < 64; ++i) {
    in[i] = i;
  }
  std::thread producer([&] { EXPECT_EQ(q.PushAll(std::move(in)), 64u); });

  std::deque<int> out;
  int expected = 0;
  while (expected < 64) {
    std::deque<int> batch;
    size_t n = q.PopAll(batch, 16);
    ASSERT_GT(n, 0u);
    for (int v : batch) {
      EXPECT_EQ(v, expected++);  // chunking never reorders
    }
  }
  producer.join();
}

TEST(BoundedQueueTest, PopAllAfterCloseDrainsThenReportsZero) {
  BoundedQueue<int> q(8);
  q.Push(1);
  q.Push(2);
  q.Close();
  std::deque<int> out;
  EXPECT_EQ(q.PopAll(out, 100), 2u);  // close drains remaining items first
  EXPECT_EQ(q.PopAll(out, 100), 0u);  // then reports closed-and-drained
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], 1);
  EXPECT_EQ(out[1], 2);
}

TEST(BoundedQueueTest, PushAllOnClosedQueueEnqueuesNothing) {
  BoundedQueue<int> q(8);
  q.Close();
  std::vector<int> in = {1, 2, 3};
  EXPECT_EQ(q.PushAll(std::move(in)), 0u);
  EXPECT_EQ(q.size(), 0u);
}

TEST(BoundedQueueTest, AbortDropsItemsAndUnblocksBatchConsumers) {
  BoundedQueue<int> q(8);
  q.Push(1);
  q.Push(2);

  std::deque<int> out;
  std::atomic<size_t> popped{1};
  std::thread consumer([&] {
    std::deque<int> ignored;
    q.PopAll(ignored, 100);      // drains the two queued items...
    popped = q.PopAll(out, 100);  // ...then blocks until the abort
  });
  while (q.size() > 0) {
    std::this_thread::yield();
  }
  q.Abort();
  consumer.join();
  EXPECT_EQ(popped.load(), 0u);  // abort discards, never hands out items
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_TRUE(q.closed());
}

TEST(BoundedQueueTest, TryPushFailsOnFullThenSucceedsAfterPopAll) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  EXPECT_FALSE(q.TryPush(3));  // full
  std::deque<int> out;
  EXPECT_EQ(q.PopAll(out, 100), 2u);
  EXPECT_TRUE(q.TryPush(3));  // batch pop freed capacity
  EXPECT_EQ(q.size(), 1u);
}

TEST(BoundedQueueTest, ApproxSizeStaysInRangeUnderConcurrency) {
  constexpr int kProducers = 3;
  constexpr int kPerProducer = 4000;
  BoundedQueue<int> q(32);

  std::atomic<bool> stop{false};
  // The probe hammers size() while producers and consumers mutate the queue:
  // the relaxed mirror must always stay within [0, capacity] (size_t
  // underflow would show up as a huge value).
  std::thread probe([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      size_t s = q.size();
      EXPECT_LE(s, q.capacity());
    }
  });

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&] {
      std::vector<int> chunk;
      for (int i = 0; i < kPerProducer; ++i) {
        chunk.push_back(i);
        if (chunk.size() == 16) {
          ASSERT_EQ(q.PushAll(std::move(chunk)), 16u);
          chunk = {};
        }
      }
      if (!chunk.empty()) {
        size_t n = chunk.size();
        ASSERT_EQ(q.PushAll(std::move(chunk)), n);
      }
    });
  }
  std::atomic<int> consumed{0};
  std::thread consumer([&] {
    std::deque<int> batch;
    while (true) {
      batch.clear();
      size_t n = q.PopAll(batch, 24);
      if (n == 0) {
        return;
      }
      consumed += static_cast<int>(n);
    }
  });

  for (auto& t : producers) {
    t.join();
  }
  q.Close();
  consumer.join();
  stop = true;
  probe.join();

  EXPECT_EQ(consumed.load(), kProducers * kPerProducer);
  EXPECT_EQ(q.size(), 0u);
}

}  // namespace
}  // namespace sdg
