#include "src/common/hash.h"

#include <gtest/gtest.h>

#include <map>
#include <string>

namespace sdg {
namespace {

TEST(HashTest, Fnv1a64KnownValues) {
  // FNV-1a test vectors.
  EXPECT_EQ(Fnv1a64(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(Fnv1a64("a"), 0xaf63dc4c8601ec8cull);
}

TEST(HashTest, Fnv1a64Deterministic) {
  EXPECT_EQ(Fnv1a64("stateful dataflow"), Fnv1a64("stateful dataflow"));
  EXPECT_NE(Fnv1a64("a"), Fnv1a64("b"));
}

TEST(HashTest, MixHash64SpreadsSequentialKeys) {
  // Sequential integers must distribute roughly evenly mod small n — this is
  // the property partitioned dispatch relies on.
  constexpr int kParts = 4;
  std::map<uint64_t, int> buckets;
  constexpr int kN = 10000;
  for (uint64_t i = 0; i < kN; ++i) {
    buckets[MixHash64(i) % kParts]++;
  }
  for (int p = 0; p < kParts; ++p) {
    EXPECT_GT(buckets[p], kN / kParts / 2) << "bucket " << p;
    EXPECT_LT(buckets[p], kN / kParts * 2) << "bucket " << p;
  }
}

TEST(HashTest, MixHash64IsInjectiveOnSmallRange) {
  std::map<uint64_t, uint64_t> seen;
  for (uint64_t i = 0; i < 100000; ++i) {
    uint64_t h = MixHash64(i);
    auto [it, inserted] = seen.emplace(h, i);
    EXPECT_TRUE(inserted) << i << " collides with " << it->second;
  }
}

TEST(HashTest, HashCombineOrderSensitive) {
  uint64_t ab = HashCombine(HashCombine(0, 1), 2);
  uint64_t ba = HashCombine(HashCombine(0, 2), 1);
  EXPECT_NE(ab, ba);
}

TEST(HashTest, ConstexprUsable) {
  constexpr uint64_t h = Fnv1a64("compile-time");
  static_assert(h != 0);
  constexpr uint64_t m = MixHash64(7);
  static_assert(m != 7);
  SUCCEED();
}

}  // namespace
}  // namespace sdg
