#include "src/common/metrics.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace sdg {
namespace {

TEST(CounterTest, IncrementsAtomically) {
  Counter c;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < 10000; ++i) {
        c.Increment();
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(c.value(), 40000u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(PercentileTest, ExactOnSmallSorted) {
  std::vector<double> v{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(PercentileOfSorted(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(PercentileOfSorted(v, 50), 3.0);
  EXPECT_DOUBLE_EQ(PercentileOfSorted(v, 100), 5.0);
  EXPECT_DOUBLE_EQ(PercentileOfSorted(v, 25), 2.0);
}

TEST(PercentileTest, InterpolatesBetweenSamples) {
  std::vector<double> v{0, 10};
  EXPECT_DOUBLE_EQ(PercentileOfSorted(v, 50), 5.0);
  EXPECT_DOUBLE_EQ(PercentileOfSorted(v, 95), 9.5);
}

TEST(PercentileTest, EdgeCases) {
  EXPECT_DOUBLE_EQ(PercentileOfSorted({}, 50), 0.0);
  EXPECT_DOUBLE_EQ(PercentileOfSorted({7.0}, 95), 7.0);
}

TEST(HistogramTest, SnapshotSummarises) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) {
    h.Record(i);
  }
  PercentileSummary s = h.Snapshot();
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_NEAR(s.mean, 50.5, 1e-9);
  EXPECT_NEAR(s.p50, 50.5, 0.5);
  EXPECT_NEAR(s.p95, 95.05, 0.5);
  EXPECT_NEAR(s.p5, 5.95, 0.5);
}

TEST(HistogramTest, EmptySnapshotIsZero) {
  Histogram h;
  PercentileSummary s = h.Snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.p50, 0.0);
}

TEST(HistogramTest, RecordBatchAndReset) {
  Histogram h;
  h.RecordBatch({1.0, 2.0, 3.0});
  EXPECT_EQ(h.count(), 3u);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
}

TEST(HistogramTest, BatchRecorderPreservesExactPercentiles) {
  // Buffered recording must be observationally identical to direct Record
  // calls once flushed: same count, same exact percentiles.
  Histogram direct;
  Histogram buffered;
  {
    Histogram::BatchRecorder rec(&buffered, /*flush_at=*/64);
    for (int i = 1; i <= 1000; ++i) {
      direct.Record(i);
      rec.Record(i);
    }
    // 1000 % 64 != 0, so a tail is still pending in the recorder.
    EXPECT_LT(buffered.count(), 1000u);
    EXPECT_EQ(buffered.count() + rec.pending(), 1000u);
  }  // destructor flushes the tail
  EXPECT_EQ(buffered.count(), 1000u);
  PercentileSummary a = direct.Snapshot();
  PercentileSummary b = buffered.Snapshot();
  EXPECT_EQ(a.count, b.count);
  EXPECT_DOUBLE_EQ(a.min, b.min);
  EXPECT_DOUBLE_EQ(a.max, b.max);
  EXPECT_DOUBLE_EQ(a.mean, b.mean);
  EXPECT_DOUBLE_EQ(a.p5, b.p5);
  EXPECT_DOUBLE_EQ(a.p50, b.p50);
  EXPECT_DOUBLE_EQ(a.p95, b.p95);
  EXPECT_DOUBLE_EQ(a.p99, b.p99);
}

TEST(HistogramTest, BatchRecorderExplicitFlush) {
  Histogram h;
  Histogram::BatchRecorder rec(&h, /*flush_at=*/1024);
  rec.Record(1.0);
  rec.Record(2.0);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(rec.pending(), 2u);
  rec.Flush();
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(rec.pending(), 0u);
}

TEST(HistogramTest, ConcurrentRecordingIsSafe) {
  Histogram h;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < 1000; ++i) {
        h.Record(static_cast<double>(i));
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(h.count(), 4000u);
}

TEST(HistogramTest, SummaryToStringMentionsPercentiles) {
  Histogram h;
  h.Record(1.0);
  std::string s = h.Snapshot().ToString();
  EXPECT_NE(s.find("p50"), std::string::npos);
  EXPECT_NE(s.find("p95"), std::string::npos);
}

TEST(ThroughputMeterTest, FirstCallPrimesThenRates) {
  ThroughputMeter m;
  m.Add(100);
  EXPECT_DOUBLE_EQ(m.TakeRate(), 0.0);  // priming call
  m.Add(50);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  double rate = m.TakeRate();
  EXPECT_GT(rate, 0.0);
}

}  // namespace
}  // namespace sdg
