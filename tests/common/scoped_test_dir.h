// ScopedTestDir: RAII temp directory for tests.
//
// Creates a unique directory under the system temp path and removes it on
// destruction — including when the test fails or throws. The previous
// per-test setup/teardown in chaos_test, recovery_test and backup_store_test
// only cleaned up on success, leaking sdg_chaos_* dirs in /tmp on failure.
#ifndef SDG_TESTS_COMMON_SCOPED_TEST_DIR_H_
#define SDG_TESTS_COMMON_SCOPED_TEST_DIR_H_

#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <string>
#include <string_view>

namespace sdg {

class ScopedTestDir {
 public:
  explicit ScopedTestDir(std::string_view tag) {
    static std::atomic<uint64_t> counter{0};
    path_ = std::filesystem::temp_directory_path() /
            ("sdg_" + std::string(tag) + "_" + std::to_string(::getpid()) +
             "_" + std::to_string(counter.fetch_add(1)));
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }

  ~ScopedTestDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);  // best effort, never throws
  }

  ScopedTestDir(const ScopedTestDir&) = delete;
  ScopedTestDir& operator=(const ScopedTestDir&) = delete;

  const std::filesystem::path& path() const { return path_; }
  operator const std::filesystem::path&() const { return path_; }

 private:
  std::filesystem::path path_;
};

}  // namespace sdg

#endif  // SDG_TESTS_COMMON_SCOPED_TEST_DIR_H_
