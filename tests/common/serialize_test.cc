#include "src/common/serialize.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

namespace sdg {
namespace {

TEST(SerializeTest, RoundTripsScalars) {
  BinaryWriter w;
  w.Write<int32_t>(-7);
  w.Write<uint64_t>(std::numeric_limits<uint64_t>::max());
  w.Write<double>(3.25);
  w.Write<uint8_t>(255);

  BinaryReader r(w.buffer());
  EXPECT_EQ(r.Read<int32_t>().value(), -7);
  EXPECT_EQ(r.Read<uint64_t>().value(), std::numeric_limits<uint64_t>::max());
  EXPECT_EQ(r.Read<double>().value(), 3.25);
  EXPECT_EQ(r.Read<uint8_t>().value(), 255);
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerializeTest, RoundTripsStrings) {
  BinaryWriter w;
  w.WriteString("");
  w.WriteString("hello");
  w.WriteString(std::string(1000, 'x'));

  BinaryReader r(w.buffer());
  EXPECT_EQ(r.ReadString().value(), "");
  EXPECT_EQ(r.ReadString().value(), "hello");
  EXPECT_EQ(r.ReadString().value(), std::string(1000, 'x'));
}

TEST(SerializeTest, RoundTripsVectors) {
  BinaryWriter w;
  std::vector<double> dv{1.5, -2.5, 0.0};
  std::vector<int64_t> iv{1, 2, 3, 4};
  w.WriteVector(dv);
  w.WriteVector(iv);

  BinaryReader r(w.buffer());
  EXPECT_EQ(r.ReadVector<double>().value(), dv);
  EXPECT_EQ(r.ReadVector<int64_t>().value(), iv);
}

TEST(SerializeTest, RoundTripsStringVector) {
  BinaryWriter w;
  std::vector<std::string> v{"a", "", "long string here"};
  w.WriteStringVector(v);
  BinaryReader r(w.buffer());
  EXPECT_EQ(r.ReadStringVector().value(), v);
}

TEST(SerializeTest, RoundTripsMap) {
  BinaryWriter w;
  std::unordered_map<int64_t, double> m{{1, 1.0}, {2, 4.0}, {-3, 9.0}};
  w.WriteMap(m);
  BinaryReader r(w.buffer());
  EXPECT_EQ((r.ReadMap<int64_t, double>().value()), m);
}

TEST(SerializeTest, ReadPastEndIsOutOfRange) {
  BinaryWriter w;
  w.Write<uint8_t>(1);
  BinaryReader r(w.buffer());
  EXPECT_TRUE(r.Read<uint8_t>().ok());
  auto bad = r.Read<uint32_t>();
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kOutOfRange);
}

TEST(SerializeTest, CorruptStringLengthIsDetected) {
  BinaryWriter w;
  w.Write<uint64_t>(1000);  // claims 1000 bytes follow
  w.Write<uint8_t>('x');    // only 1 byte present
  BinaryReader r(w.buffer());
  auto bad = r.ReadString();
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kOutOfRange);
}

TEST(SerializeTest, SkipAdvancesAndBoundsChecks) {
  BinaryWriter w;
  w.Write<uint32_t>(1);
  w.Write<uint32_t>(2);
  BinaryReader r(w.buffer());
  ASSERT_TRUE(r.Skip(4).ok());
  EXPECT_EQ(r.Read<uint32_t>().value(), 2u);
  EXPECT_FALSE(r.Skip(1).ok());
}

TEST(SerializeTest, EmptyBufferBehaviour) {
  std::vector<uint8_t> empty;
  BinaryReader r(empty);
  EXPECT_TRUE(r.AtEnd());
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_FALSE(r.Read<uint8_t>().ok());
}

}  // namespace
}  // namespace sdg
