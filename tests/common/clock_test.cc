#include "src/common/clock.h"

#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

namespace sdg {
namespace {

TEST(LogicalClockTest, MonotoneFromOne) {
  LogicalClock c;
  EXPECT_EQ(c.Next(), 1u);
  EXPECT_EQ(c.Next(), 2u);
  EXPECT_EQ(c.Peek(), 3u);
  EXPECT_EQ(c.Next(), 3u);
}

TEST(LogicalClockTest, AdvanceToSkipsForward) {
  LogicalClock c;
  c.AdvanceTo(100);
  EXPECT_EQ(c.Next(), 101u);
  // Advancing backwards is a no-op.
  c.AdvanceTo(5);
  EXPECT_EQ(c.Next(), 102u);
}

TEST(LogicalClockTest, ConcurrentNextYieldsUniqueTimestamps) {
  LogicalClock c;
  std::mutex mu;
  std::set<uint64_t> seen;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      std::vector<uint64_t> local;
      for (int i = 0; i < 2500; ++i) {
        local.push_back(c.Next());
      }
      std::lock_guard<std::mutex> lock(mu);
      seen.insert(local.begin(), local.end());
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(seen.size(), 10000u);
}

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  double ms = sw.ElapsedMillis();
  EXPECT_GE(ms, 15.0);
  EXPECT_LT(ms, 2000.0);
  sw.Restart();
  EXPECT_LT(sw.ElapsedMillis(), 15.0);
}

TEST(StopwatchTest, NowNanosIsMonotone) {
  int64_t a = Stopwatch::NowNanos();
  int64_t b = Stopwatch::NowNanos();
  EXPECT_LE(a, b);
}

}  // namespace
}  // namespace sdg
