#include "src/common/value.h"

#include <gtest/gtest.h>

namespace sdg {
namespace {

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_TRUE(Value().is_null());
  EXPECT_EQ(Value(int64_t{5}).AsInt(), 5);
  EXPECT_EQ(Value(3).AsInt(), 3);  // int promotes to int64
  EXPECT_DOUBLE_EQ(Value(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value("abc").AsString(), "abc");
  EXPECT_EQ(Value(std::vector<double>{1, 2}).AsDoubleVector().size(), 2u);
  EXPECT_EQ(Value(std::vector<int64_t>{1, 2, 3}).AsIntVector().size(), 3u);
}

TEST(ValueTest, ToDoubleCoercesInt) {
  EXPECT_DOUBLE_EQ(Value(7).ToDouble(), 7.0);
  EXPECT_DOUBLE_EQ(Value(2.5).ToDouble(), 2.5);
}

TEST(ValueTest, SerializeRoundTripsEveryType) {
  std::vector<Value> values{
      Value(),
      Value(int64_t{-12345}),
      Value(6.75),
      Value(std::string("state")),
      Value(std::vector<double>{1.0, -2.0, 3.5}),
      Value(std::vector<int64_t>{9, 8, 7}),
  };
  for (const auto& v : values) {
    BinaryWriter w;
    v.Serialize(w);
    BinaryReader r(w.buffer());
    auto back = Value::Deserialize(r);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, v) << v.ToString();
    EXPECT_TRUE(r.AtEnd());
  }
}

TEST(ValueTest, EqualValuesHashEqually) {
  EXPECT_EQ(Value(5).Hash(), Value(int64_t{5}).Hash());
  EXPECT_EQ(Value("key").Hash(), Value(std::string("key")).Hash());
  EXPECT_NE(Value(5).Hash(), Value(6).Hash());
  EXPECT_NE(Value("a").Hash(), Value("b").Hash());
}

TEST(TupleTest, BasicOperations) {
  Tuple t{Value(1), Value("x"), Value(2.5)};
  EXPECT_EQ(t.size(), 3u);
  EXPECT_EQ(t[0].AsInt(), 1);
  EXPECT_EQ(t.at(1).AsString(), "x");
  t.Append(Value(9));
  EXPECT_EQ(t.size(), 4u);
}

TEST(TupleTest, SerializeRoundTrip) {
  Tuple t{Value(42), Value("user"), Value(std::vector<double>{0.5, 1.5})};
  auto bytes = t.ToBytes();
  auto back = Tuple::FromBytes(bytes);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, t);
}

TEST(TupleTest, EmptyTupleRoundTrip) {
  Tuple t;
  auto back = Tuple::FromBytes(t.ToBytes());
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->empty());
}

TEST(TupleTest, DeserializeRejectsGarbage) {
  std::vector<uint8_t> garbage{0xFF, 0xFF, 0xFF, 0xFF, 0x09};
  auto r = Tuple::FromBytes(garbage);
  EXPECT_FALSE(r.ok());
}

TEST(TupleTest, ToStringIsReadable) {
  Tuple t{Value(1), Value("a")};
  EXPECT_EQ(t.ToString(), "(1, \"a\")");
}

}  // namespace
}  // namespace sdg
