// Cold-tier spill (docs/state.md, "Tiered storage"): stripe eviction under a
// resident-byte budget, transparent fault-in, blob-answered reads during
// checkpoints, checkpoint/delta/restore/extract on spilled stripes, and the
// spill-directory lifecycle.
#include "src/state/spill.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/state/codec.h"
#include "src/state/keyed_dict.h"
#include "tests/common/scoped_test_dir.h"

namespace sdg::state {
namespace {

using Dict = KeyedDict<int64_t, std::string>;

std::string ValueFor(int64_t k) {
  return "value-" + std::to_string(k) + std::string(64, 'x');
}

// 8-striped dict holding `n` keys, spilling into `dir` under `budget`.
void FillAndSpill(Dict& d, const std::string& dir, uint64_t budget, int n) {
  for (int64_t k = 0; k < n; ++k) {
    d.Put(k, ValueFor(k));
  }
  SpillConfig config;
  config.dir = dir;
  config.budget_bytes = budget;
  ASSERT_TRUE(d.ConfigureSpill(config).ok());
}

size_t SpillFileCount(const std::string& dir) {
  size_t n = 0;
  for (const auto& e : std::filesystem::directory_iterator(dir)) {
    n += e.path().extension() == ".spill";
  }
  return n;
}

TEST(SpillTest, ConfigureSpillValidation) {
  ScopedTestDir tmp("spill_cfg");
  const std::string dir = (tmp.path() / "cold").string();

  Dict single(1);
  SpillConfig config;
  config.dir = dir;
  config.budget_bytes = 1024;
  EXPECT_FALSE(single.ConfigureSpill(config).ok());  // eviction needs >= 2 stripes

  Dict d(8);
  SpillConfig no_budget;
  no_budget.dir = dir;
  EXPECT_FALSE(d.ConfigureSpill(no_budget).ok());

  d.BeginCheckpoint();
  EXPECT_FALSE(d.ConfigureSpill(config).ok());  // not during a checkpoint
  d.EndCheckpoint();

  EXPECT_TRUE(d.ConfigureSpill(config).ok());
  EXPECT_FALSE(d.ConfigureSpill(config).ok());  // one-way, once
}

TEST(SpillTest, EvictsUnderBudgetAndReadsFaultBackIn) {
  ScopedTestDir tmp("spill_evict");
  Dict d(8);
  FillAndSpill(d, (tmp.path() / "cold").string(), 4096, 400);

  SpillStats st = d.GetSpillStats();
  EXPECT_GT(st.evictions, 0u);
  EXPECT_GT(st.spilled_stripes, 0u);
  EXPECT_GT(st.spilled_bytes, 0u);
  EXPECT_GT(SpillFileCount((tmp.path() / "cold").string()), 0u);

  // Every key reads back correctly through fault-in (which re-evicts other
  // stripes to stay under budget as it goes).
  for (int64_t k = 0; k < 400; ++k) {
    ASSERT_EQ(d.Get(k), ValueFor(k)) << "key " << k;
  }
  EXPECT_GT(d.GetSpillStats().fault_ins, 0u);
}

TEST(SpillTest, WritesOnSpilledStripesNeverRehydrate) {
  ScopedTestDir tmp("spill_cold_writes");
  Dict d(8);
  FillAndSpill(d, (tmp.path() / "cold").string(), 1, 200);  // evict everything evictable

  const uint64_t fault_ins_before = d.GetSpillStats().fault_ins;
  // Overwrite, erase and read-modify-write across all keys: absorbed by the
  // cold overlays (or resident mains) without paging anything in.
  for (int64_t k = 0; k < 100; ++k) {
    d.Put(k, "fresh-" + std::to_string(k));
  }
  for (int64_t k = 100; k < 150; ++k) {
    d.Erase(k);
  }
  for (int64_t k = 150; k < 200; ++k) {
    d.Update(k, [](std::string v) { return v + "+updated"; });
  }
  EXPECT_EQ(d.GetSpillStats().fault_ins, fault_ins_before);

  EXPECT_EQ(d.Size(), 150u);
  for (int64_t k = 0; k < 100; ++k) {
    std::optional<std::string> got;
    // Contains → View faults in; assert through ForEach-free Size + spot Gets
    // after the no-fault window is already asserted above.
    got = d.Get(k);
    ASSERT_EQ(got, "fresh-" + std::to_string(k));
  }
  for (int64_t k = 100; k < 150; ++k) {
    ASSERT_FALSE(d.Get(k).has_value());
  }
  for (int64_t k = 150; k < 200; ++k) {
    ASSERT_EQ(d.Get(k), ValueFor(k) + "+updated");
  }
}

TEST(SpillTest, ForEachMergesBlobColdAndResident) {
  ScopedTestDir tmp("spill_foreach");
  Dict d(8);
  FillAndSpill(d, (tmp.path() / "cold").string(), 1, 120);
  d.Put(7, "override");  // cold overlay on a spilled stripe (or resident main)
  d.Erase(11);

  std::unordered_map<int64_t, std::string> seen;
  d.ForEach([&](int64_t k, const std::string& v) {
    EXPECT_EQ(seen.count(k), 0u) << "duplicate key " << k;
    seen[k] = v;
  });
  EXPECT_EQ(seen.size(), 119u);
  EXPECT_EQ(seen[7], "override");
  EXPECT_EQ(seen.count(11), 0u);
  EXPECT_EQ(seen[42], ValueFor(42));
  EXPECT_EQ(d.Size(), 119u);
}

TEST(SpillTest, FullSerializeStreamsSpilledStripesWithoutRehydration) {
  ScopedTestDir tmp("spill_serialize");
  Dict d(8);
  FillAndSpill(d, (tmp.path() / "cold").string(), 1, 150);
  d.Put(3, "post-spill");  // make sure cold overlays serialize too
  d.Erase(5);

  const uint64_t fault_ins_before = d.GetSpillStats().fault_ins;
  Dict restored(8);
  d.SerializeRecords([&](uint64_t, const uint8_t* p, size_t n) {
    ASSERT_TRUE(restored.RestoreRecord(p, n).ok());
  });
  EXPECT_EQ(d.GetSpillStats().fault_ins, fault_ins_before);

  EXPECT_EQ(restored.Size(), 149u);
  EXPECT_EQ(restored.Get(3), "post-spill");
  EXPECT_FALSE(restored.Contains(5));
  EXPECT_EQ(restored.Get(77), ValueFor(77));
}

TEST(SpillTest, CheckpointOnSpilledStateWithoutRehydration) {
  ScopedTestDir tmp("spill_ckpt");
  Dict d(8);
  FillAndSpill(d, (tmp.path() / "cold").string(), 1, 100);
  const SpillStats before = d.GetSpillStats();

  d.BeginCheckpoint();
  // Writes during the checkpoint divert to the dirty overlay, reads see them
  // dirty-first, and the snapshot below must NOT contain them.
  d.Put(1, "during");
  d.Put(1000, "new-during");
  d.Erase(2);
  EXPECT_EQ(d.Get(1), "during");
  EXPECT_FALSE(d.Get(2).has_value());

  std::unordered_map<int64_t, std::string> snapshot;
  d.SerializeRecords([&](uint64_t, const uint8_t* p, size_t n) {
    BinaryReader r(p, n);
    int64_t k = Codec<int64_t>::Decode(r).value();
    std::string v = Codec<std::string>::Decode(r).value();
    EXPECT_EQ(snapshot.count(k), 0u);
    snapshot[k] = std::move(v);
  });
  EXPECT_EQ(snapshot.size(), 100u);  // pre-checkpoint contents exactly
  EXPECT_EQ(snapshot[1], ValueFor(1));
  EXPECT_EQ(snapshot.count(1000), 0u);
  d.EndCheckpoint();

  // The spilled set was stable for the whole checkpoint, no fault-ins
  // happened, and the overlay folded into the cold tier — not into memory.
  const SpillStats after = d.GetSpillStats();
  EXPECT_EQ(after.fault_ins, before.fault_ins);
  EXPECT_GE(after.spilled_stripes, before.spilled_stripes);
  EXPECT_EQ(d.Get(1), "during");
  EXPECT_EQ(d.Get(1000), "new-during");
  EXPECT_FALSE(d.Get(2).has_value());
  EXPECT_EQ(d.Size(), 100u);  // -1 erased, +1 new
}

TEST(SpillTest, ReadsDuringCheckpointAnswerFromBlob) {
  ScopedTestDir tmp("spill_ckpt_read");
  Dict d(8);
  FillAndSpill(d, (tmp.path() / "cold").string(), 1, 100);
  const SpillStats before = d.GetSpillStats();

  d.BeginCheckpoint();
  for (int64_t k = 0; k < 100; ++k) {
    ASSERT_EQ(d.Get(k), ValueFor(k)) << "key " << k;
  }
  ASSERT_FALSE(d.Get(5000).has_value());
  d.EndCheckpoint();

  const SpillStats after = d.GetSpillStats();
  EXPECT_EQ(after.fault_ins, before.fault_ins);  // fault-in disabled
  EXPECT_GT(after.cold_lookups, before.cold_lookups);
}

TEST(SpillTest, DeltaEpochsOnSpilledStripes) {
  ScopedTestDir tmp("spill_delta");
  Dict d(8);
  d.EnableDeltaTracking();
  FillAndSpill(d, (tmp.path() / "cold").string(), 1, 100);

  // Base epoch (streams the spilled stripes from disk).
  Dict replica(8);
  d.BeginCheckpoint();
  d.SerializeRecords([&](uint64_t, const uint8_t* p, size_t n) {
    ASSERT_TRUE(replica.RestoreRecord(p, n).ok());
  });
  d.EndCheckpoint();
  d.ResolveEpoch(true);
  ASSERT_TRUE(d.DeltaReady());

  // Touch a value that only exists in a blob, one in a cold overlay, and
  // erase one — the delta must cover exactly these three.
  d.Put(10, "changed");
  d.Update(20, [](std::string v) { return v + "!"; });
  d.Erase(30);
  d.BeginCheckpoint();
  size_t records = 0;
  size_t tombstones = 0;
  d.SerializeDirtyRecords([&](uint64_t, const uint8_t* p, size_t n,
                              bool tomb) {
    ++records;
    tombstones += tomb;
    if (tomb) {
      ASSERT_TRUE(replica.RestoreErase(p, n).ok());
    } else {
      ASSERT_TRUE(replica.RestoreRecord(p, n).ok());
    }
  });
  d.EndCheckpoint();
  d.ResolveEpoch(true);
  EXPECT_EQ(records, 3u);
  EXPECT_EQ(tombstones, 1u);

  EXPECT_EQ(replica.Size(), 99u);
  EXPECT_EQ(replica.Get(10), "changed");
  EXPECT_EQ(replica.Get(20), ValueFor(20) + "!");
  EXPECT_FALSE(replica.Contains(30));
  EXPECT_EQ(replica.Get(40), ValueFor(40));
}

TEST(SpillTest, RestoreSpillsAsItLoads) {
  ScopedTestDir tmp("spill_restore");
  Dict source(8);
  for (int64_t k = 0; k < 300; ++k) {
    source.Put(k, ValueFor(k));
  }

  // An empty dict with a tiny budget must absorb a 300-key restore by
  // spilling along the way instead of blowing past the budget.
  Dict d(8);
  SpillConfig config;
  config.dir = (tmp.path() / "cold").string();
  config.budget_bytes = 4096;
  ASSERT_TRUE(d.ConfigureSpill(config).ok());
  source.SerializeRecords([&](uint64_t, const uint8_t* p, size_t n) {
    ASSERT_TRUE(d.RestoreRecord(p, n).ok());
  });

  SpillStats st = d.GetSpillStats();
  EXPECT_GT(st.spilled_stripes, 0u);
  EXPECT_EQ(d.Size(), 300u);
  for (int64_t k = 0; k < 300; k += 37) {
    ASSERT_EQ(d.Get(k), ValueFor(k));
  }
}

TEST(SpillTest, ExtractPartitionStreamsFromSpilledStripes) {
  ScopedTestDir tmp("spill_extract");
  Dict d(8);
  FillAndSpill(d, (tmp.path() / "cold").string(), 1, 200);

  Dict extracted(8);
  ASSERT_TRUE(d.ExtractPartition(0, 2, [&](uint64_t, const uint8_t* p,
                                           size_t n) {
    ASSERT_TRUE(extracted.RestoreRecord(p, n).ok());
  }).ok());

  // Partition membership is by the codec hash; extracted and remaining
  // contents must partition the original exactly.
  uint64_t part0 = 0;
  for (int64_t k = 0; k < 200; ++k) {
    const bool mine = Codec<int64_t>::Hash(k) % 2 == 0;
    part0 += mine;
    ASSERT_EQ(extracted.Contains(k), mine) << "key " << k;
    ASSERT_EQ(d.Contains(k), !mine) << "key " << k;
  }
  EXPECT_EQ(extracted.Size(), part0);
  EXPECT_EQ(d.Size(), 200u - part0);
  EXPECT_GT(part0, 0u);
  EXPECT_LT(part0, 200u);
}

TEST(SpillTest, ClearDropsSpillFiles) {
  ScopedTestDir tmp("spill_clear");
  const std::string dir = (tmp.path() / "cold").string();
  Dict d(8);
  FillAndSpill(d, dir, 1, 150);
  ASSERT_GT(SpillFileCount(dir), 0u);

  d.Clear();
  EXPECT_EQ(d.Size(), 0u);
  SpillStats st = d.GetSpillStats();
  EXPECT_EQ(st.spilled_stripes, 0u);
  EXPECT_EQ(st.spilled_bytes, 0u);
  EXPECT_EQ(st.resident_bytes, 0u);
  EXPECT_EQ(SpillFileCount(dir), 0u);

  // The dict is still usable (and still budgeted) after Clear.
  for (int64_t k = 0; k < 150; ++k) {
    d.Put(k, ValueFor(k));
  }
  EXPECT_EQ(d.Size(), 150u);
  EXPECT_GT(d.GetSpillStats().spilled_stripes, 0u);
}

TEST(SpillTest, PrepareSpillDirWipesStaleFiles) {
  ScopedTestDir tmp("spill_prepare");
  const std::string dir = (tmp.path() / "cold").string();
  {
    Dict d(8);
    FillAndSpill(d, dir, 1, 150);
    ASSERT_GT(SpillFileCount(dir), 0u);
  }
  // A new incarnation configuring the same directory must never see the old
  // process's blobs (they are a cache, not a durability tier).
  Dict fresh(8);
  SpillConfig config;
  config.dir = dir;
  config.budget_bytes = 1 << 20;
  ASSERT_TRUE(fresh.ConfigureSpill(config).ok());
  EXPECT_EQ(SpillFileCount(dir), 0u);
  EXPECT_EQ(fresh.Size(), 0u);
}

}  // namespace
}  // namespace sdg::state
