// Property-based tests: random operation sequences against reference models,
// with checkpoints interleaved at random points. These pin down the central
// state invariants of §5:
//   P1  the logical contents always equal the reference model, checkpoint or
//       not (dirty overlay transparency);
//   P2  a snapshot serialised during a checkpoint equals the model exactly as
//       it was at BeginCheckpoint (consistency);
//   P3  serialise -> chunk -> split(n) -> restore reproduces the state for
//       any chunk/split fan-out (m-to-n integrity).
#include <gtest/gtest.h>

#include <map>
#include <optional>

#include "src/common/rng.h"
#include "src/state/chunk.h"
#include "src/state/keyed_dict.h"
#include "src/state/sparse_matrix.h"
#include "src/state/vector_state.h"

namespace sdg::state {
namespace {

using Model = std::map<int64_t, int64_t>;

Model DictContents(const KeyedDict<int64_t, int64_t>& d) {
  Model m;
  d.ForEach([&](int64_t k, int64_t v) { m[k] = v; });
  return m;
}

Model RestoreToModel(const KeyedDict<int64_t, int64_t>& d) {
  KeyedDict<int64_t, int64_t> copy;
  d.SerializeRecords([&](uint64_t, const uint8_t* p, size_t n) {
    EXPECT_TRUE(copy.RestoreRecord(p, n).ok());
  });
  Model m;
  copy.ForEach([&](int64_t k, int64_t v) { m[k] = v; });
  return m;
}

class DictPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DictPropertyTest, RandomOpsWithCheckpointsMatchModel) {
  Rng rng(GetParam());
  KeyedDict<int64_t, int64_t> dict;
  Model model;
  std::optional<Model> snapshot_at_begin;

  constexpr int kOps = 4000;
  for (int i = 0; i < kOps; ++i) {
    uint64_t roll = rng.NextBounded(100);
    int64_t key = static_cast<int64_t>(rng.NextBounded(200));
    if (roll < 45) {
      int64_t value = static_cast<int64_t>(rng.NextBounded(1000));
      dict.Put(key, value);
      model[key] = value;
    } else if (roll < 60) {
      dict.Erase(key);
      model.erase(key);
    } else if (roll < 75) {
      dict.Update(key, [](int64_t v) { return v + 1; });
      model[key] += 1;
    } else if (roll < 85) {
      // P1: point reads agree with the model.
      auto got = dict.Get(key);
      auto it = model.find(key);
      if (it == model.end()) {
        EXPECT_FALSE(got.has_value()) << "key " << key << " op " << i;
      } else {
        ASSERT_TRUE(got.has_value()) << "key " << key << " op " << i;
        EXPECT_EQ(*got, it->second) << "key " << key << " op " << i;
      }
    } else if (roll < 92) {
      if (!dict.checkpoint_active()) {
        dict.BeginCheckpoint();
        snapshot_at_begin = model;  // what the snapshot must contain (P2)
      }
    } else {
      if (dict.checkpoint_active()) {
        // P2: the serialised snapshot equals the model at Begin time.
        EXPECT_EQ(RestoreToModel(dict), *snapshot_at_begin) << "op " << i;
        dict.EndCheckpoint();
        snapshot_at_begin.reset();
        // P1 after consolidation.
        EXPECT_EQ(DictContents(dict), model) << "op " << i;
      }
    }
  }
  if (dict.checkpoint_active()) {
    dict.EndCheckpoint();
  }
  EXPECT_EQ(DictContents(dict), model);
  EXPECT_EQ(dict.Size(), model.size());
}

TEST_P(DictPropertyTest, ChunkSplitRestoreIdentity) {
  Rng rng(GetParam() ^ 0xc0ffee);
  KeyedDict<int64_t, int64_t> dict;
  Model model;
  int entries = 100 + static_cast<int>(rng.NextBounded(900));
  for (int i = 0; i < entries; ++i) {
    int64_t k = static_cast<int64_t>(rng.NextBounded(100000));
    int64_t v = static_cast<int64_t>(rng.Next());
    dict.Put(k, v);
    model[k] = v;
  }
  uint32_t m = 1 + static_cast<uint32_t>(rng.NextBounded(6));
  uint32_t n = 1 + static_cast<uint32_t>(rng.NextBounded(6));

  // P3: m chunks, each split n ways, restored into n instances, reassembled.
  auto chunks = SerializeToChunks(dict, "prop", m);
  ASSERT_EQ(chunks.size(), m);
  std::vector<KeyedDict<int64_t, int64_t>> nodes(n);
  for (const auto& chunk : chunks) {
    auto parts = SplitChunk(chunk, n);
    ASSERT_TRUE(parts.ok());
    for (uint32_t i = 0; i < n; ++i) {
      ASSERT_TRUE(RestoreChunk(nodes[i], (*parts)[i]).ok());
    }
  }
  Model reassembled;
  uint64_t total = 0;
  for (auto& node : nodes) {
    total += node.Size();
    node.ForEach([&](int64_t k, int64_t v) { reassembled[k] = v; });
  }
  EXPECT_EQ(total, model.size()) << "m=" << m << " n=" << n
                                 << " (keys duplicated across nodes)";
  EXPECT_EQ(reassembled, model) << "m=" << m << " n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Seeds, DictPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

class MatrixPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MatrixPropertyTest, RandomOpsWithCheckpointsMatchModel) {
  Rng rng(GetParam());
  SparseMatrix matrix;
  std::map<std::pair<int64_t, int64_t>, double> model;

  constexpr int kOps = 2000;
  for (int i = 0; i < kOps; ++i) {
    uint64_t roll = rng.NextBounded(100);
    int64_t r = static_cast<int64_t>(rng.NextBounded(30));
    int64_t c = static_cast<int64_t>(rng.NextBounded(30));
    if (roll < 40) {
      double v = rng.NextDoubleIn(-10, 10);
      matrix.Set(r, c, v);
      model[{r, c}] = v;
    } else if (roll < 70) {
      matrix.Add(r, c, 1.0);
      model[{r, c}] += 1.0;
    } else if (roll < 85) {
      auto it = model.find({r, c});
      EXPECT_DOUBLE_EQ(matrix.Get(r, c),
                       it == model.end() ? 0.0 : it->second)
          << "op " << i;
    } else if (roll < 92) {
      if (!matrix.checkpoint_active()) {
        matrix.BeginCheckpoint();
      }
    } else {
      if (matrix.checkpoint_active()) {
        matrix.EndCheckpoint();
      }
    }
  }
  if (matrix.checkpoint_active()) {
    matrix.EndCheckpoint();
  }
  for (const auto& [rc, v] : model) {
    EXPECT_DOUBLE_EQ(matrix.Get(rc.first, rc.second), v);
  }
}

TEST_P(MatrixPropertyTest, MultiplyMatchesNaiveReference) {
  Rng rng(GetParam() ^ 0xabcd);
  SparseMatrix matrix;
  constexpr size_t kDim = 24;
  std::vector<std::vector<double>> dense(kDim, std::vector<double>(kDim, 0.0));
  for (int i = 0; i < 150; ++i) {
    auto r = static_cast<size_t>(rng.NextBounded(kDim));
    auto c = static_cast<size_t>(rng.NextBounded(kDim));
    double v = rng.NextDoubleIn(-5, 5);
    matrix.Set(static_cast<int64_t>(r), static_cast<int64_t>(c), v);
    dense[r][c] = v;
  }
  std::vector<double> x(kDim);
  for (auto& e : x) {
    e = rng.NextDoubleIn(-1, 1);
  }
  auto got = matrix.MultiplyDense(x, kDim);
  for (size_t r = 0; r < kDim; ++r) {
    double expected = 0;
    for (size_t c = 0; c < kDim; ++c) {
      expected += dense[r][c] * x[c];
    }
    EXPECT_NEAR(got[r], expected, 1e-9) << "row " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatrixPropertyTest,
                         ::testing::Values(7, 11, 17, 23, 31));

class VectorPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(VectorPropertyTest, RandomOpsWithCheckpointsMatchModel) {
  Rng rng(GetParam());
  VectorState vec;
  std::vector<double> model;

  constexpr int kOps = 2000;
  for (int i = 0; i < kOps; ++i) {
    uint64_t roll = rng.NextBounded(100);
    auto idx = static_cast<size_t>(rng.NextBounded(500));
    if (roll < 40) {
      double v = rng.NextDoubleIn(-10, 10);
      vec.Set(idx, v);
      if (idx >= model.size()) {
        model.resize(idx + 1, 0.0);
      }
      model[idx] = v;
    } else if (roll < 70) {
      vec.Add(idx, 0.5);
      if (idx >= model.size()) {
        model.resize(idx + 1, 0.0);
      }
      model[idx] += 0.5;
    } else if (roll < 85) {
      double expected = idx < model.size() ? model[idx] : 0.0;
      EXPECT_DOUBLE_EQ(vec.Get(idx), expected) << "op " << i;
    } else if (roll < 92) {
      if (!vec.checkpoint_active()) {
        vec.BeginCheckpoint();
      }
    } else {
      if (vec.checkpoint_active()) {
        vec.EndCheckpoint();
      }
    }
  }
  if (vec.checkpoint_active()) {
    vec.EndCheckpoint();
  }
  auto dense = vec.ToDense();
  ASSERT_EQ(dense.size(), model.size());
  for (size_t i = 0; i < model.size(); ++i) {
    EXPECT_DOUBLE_EQ(dense[i], model[i]) << "index " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VectorPropertyTest,
                         ::testing::Values(2, 4, 6, 10, 12));

}  // namespace
}  // namespace sdg::state
