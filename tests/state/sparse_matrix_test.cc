#include "src/state/sparse_matrix.h"

#include <gtest/gtest.h>

namespace sdg::state {
namespace {

TEST(SparseMatrixTest, SetGetAdd) {
  SparseMatrix m;
  m.Set(1, 2, 3.0);
  EXPECT_DOUBLE_EQ(m.Get(1, 2), 3.0);
  EXPECT_DOUBLE_EQ(m.Get(1, 3), 0.0);
  EXPECT_DOUBLE_EQ(m.Get(9, 9), 0.0);
  m.Add(1, 2, 1.5);
  EXPECT_DOUBLE_EQ(m.Get(1, 2), 4.5);
  m.Add(7, 7, 2.0);  // add on empty cell
  EXPECT_DOUBLE_EQ(m.Get(7, 7), 2.0);
  EXPECT_EQ(m.RowCount(), 2u);
  EXPECT_EQ(m.NonZeroCount(), 2u);
}

TEST(SparseMatrixTest, GetRowDense) {
  SparseMatrix m;
  m.Set(0, 1, 5.0);
  m.Set(0, 3, 7.0);
  auto row = m.GetRowDense(0, 5);
  EXPECT_EQ(row, (std::vector<double>{0, 5, 0, 7, 0}));
  EXPECT_EQ(m.GetRowDense(42, 3), (std::vector<double>{0, 0, 0}));
}

TEST(SparseMatrixTest, MultiplyDenseMatchesManual) {
  // M = [[1,2],[3,4]] as sparse; x = [5,6].
  SparseMatrix m;
  m.Set(0, 0, 1);
  m.Set(0, 1, 2);
  m.Set(1, 0, 3);
  m.Set(1, 1, 4);
  auto y = m.MultiplyDense({5, 6}, 2);
  EXPECT_EQ(y, (std::vector<double>{17, 39}));
}

TEST(SparseMatrixTest, MultiplySkipsOutOfDimRows) {
  SparseMatrix m;
  m.Set(0, 0, 1);
  m.Set(5, 0, 99);  // outside dim=2 result
  auto y = m.MultiplyDense({2.0}, 2);
  EXPECT_EQ(y, (std::vector<double>{2.0, 0.0}));
}

TEST(SparseMatrixTest, DirtyOverlayDuringCheckpoint) {
  SparseMatrix m;
  m.Set(1, 1, 10.0);
  m.BeginCheckpoint();
  m.Set(1, 1, 20.0);
  m.Add(1, 2, 5.0);
  m.Set(3, 0, 7.0);  // whole new row in the overlay
  EXPECT_DOUBLE_EQ(m.Get(1, 1), 20.0);
  EXPECT_DOUBLE_EQ(m.Get(1, 2), 5.0);
  EXPECT_DOUBLE_EQ(m.Get(3, 0), 7.0);

  // Snapshot sees only the pre-checkpoint cell.
  SparseMatrix restored;
  m.SerializeRecords([&](uint64_t, const uint8_t* p, size_t n) {
    ASSERT_TRUE(restored.RestoreRecord(p, n).ok());
  });
  EXPECT_DOUBLE_EQ(restored.Get(1, 1), 10.0);
  EXPECT_DOUBLE_EQ(restored.Get(1, 2), 0.0);
  EXPECT_DOUBLE_EQ(restored.Get(3, 0), 0.0);

  m.EndCheckpoint();
  EXPECT_DOUBLE_EQ(m.Get(1, 1), 20.0);
  EXPECT_DOUBLE_EQ(m.Get(1, 2), 5.0);
  EXPECT_DOUBLE_EQ(m.Get(3, 0), 7.0);
}

TEST(SparseMatrixTest, AddTwiceDuringCheckpointAccumulatesInOverlay) {
  SparseMatrix m;
  m.Set(0, 0, 1.0);
  m.BeginCheckpoint();
  m.Add(0, 0, 1.0);
  m.Add(0, 0, 1.0);
  EXPECT_DOUBLE_EQ(m.Get(0, 0), 3.0);
  m.EndCheckpoint();
  EXPECT_DOUBLE_EQ(m.Get(0, 0), 3.0);
}

TEST(SparseMatrixTest, GetRowMergesOverlay) {
  SparseMatrix m;
  m.Set(2, 0, 1.0);
  m.Set(2, 1, 2.0);
  m.BeginCheckpoint();
  m.Set(2, 1, 9.0);
  m.Set(2, 5, 3.0);
  auto row = m.GetRow(2);
  m.EndCheckpoint();
  EXPECT_DOUBLE_EQ(row[0], 1.0);
  EXPECT_DOUBLE_EQ(row[1], 9.0);
  EXPECT_DOUBLE_EQ(row[5], 3.0);
}

TEST(SparseMatrixTest, MultiplySeesOverlayDuringCheckpoint) {
  SparseMatrix m;
  m.Set(0, 0, 1.0);
  m.BeginCheckpoint();
  m.Set(0, 0, 2.0);   // overlay on an existing row
  m.Set(1, 0, 10.0);  // overlay-only row
  auto y = m.MultiplyDense({3.0}, 2);
  m.EndCheckpoint();
  EXPECT_EQ(y, (std::vector<double>{6.0, 30.0}));
}

TEST(SparseMatrixTest, SerializeRestoreRoundTrip) {
  SparseMatrix m;
  for (int64_t r = 0; r < 50; ++r) {
    for (int64_t c = 0; c < 10; ++c) {
      m.Set(r, c, static_cast<double>(r * 10 + c));
    }
  }
  SparseMatrix restored;
  m.SerializeRecords([&](uint64_t, const uint8_t* p, size_t n) {
    ASSERT_TRUE(restored.RestoreRecord(p, n).ok());
  });
  EXPECT_EQ(restored.NonZeroCount(), 500u);
  EXPECT_DOUBLE_EQ(restored.Get(49, 9), 499.0);
}

TEST(SparseMatrixTest, ExtractPartitionSplitsRows) {
  SparseMatrix m;
  for (int64_t r = 0; r < 200; ++r) {
    m.Set(r, 0, static_cast<double>(r));
  }
  SparseMatrix other;
  ASSERT_TRUE(m.ExtractPartition(0, 2, [&](uint64_t, const uint8_t* p, size_t n) {
              ASSERT_TRUE(other.RestoreRecord(p, n).ok());
            }).ok());
  EXPECT_EQ(m.RowCount() + other.RowCount(), 200u);
  EXPECT_GT(other.RowCount(), 50u);
  EXPECT_GT(m.RowCount(), 50u);
  for (int64_t r = 0; r < 200; ++r) {
    EXPECT_DOUBLE_EQ(m.Get(r, 0) + other.Get(r, 0), static_cast<double>(r));
  }
}

TEST(SparseMatrixTest, ExtractPartitionRejectedDuringCheckpoint) {
  SparseMatrix m;
  m.Set(0, 0, 1);
  m.BeginCheckpoint();
  Status s = m.ExtractPartition(0, 2, [](uint64_t, const uint8_t*, size_t) {});
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
  m.EndCheckpoint();
}

TEST(SparseMatrixTest, BackendMetadata) {
  SparseMatrix m;
  EXPECT_EQ(m.TypeName(), "SparseMatrix");
  m.Set(0, 0, 1);
  EXPECT_GT(m.SizeBytes(), 0u);
  m.Clear();
  EXPECT_EQ(m.NonZeroCount(), 0u);
}

}  // namespace
}  // namespace sdg::state
