#include "src/state/chunk.h"

#include <gtest/gtest.h>

#include <set>

#include "src/state/codec.h"
#include "src/state/keyed_dict.h"

namespace sdg::state {
namespace {

TEST(ChunkTest, BuildAndRead) {
  ChunkBuilder b("mystate");
  std::vector<uint8_t> p1{1, 2, 3};
  std::vector<uint8_t> p2{4, 5};
  b.AddRecord(100, p1.data(), p1.size());
  b.AddRecord(200, p2.data(), p2.size());
  EXPECT_EQ(b.record_count(), 2u);
  auto chunk = std::move(b).Finish();

  auto reader = ChunkReader::Open(chunk);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader->se_name(), "mystate");
  EXPECT_EQ(reader->record_count(), 2u);

  std::vector<std::pair<uint64_t, std::vector<uint8_t>>> records;
  ASSERT_TRUE(reader->ForEachRecord([&](uint64_t h, const uint8_t* p, size_t n) {
              records.emplace_back(h, std::vector<uint8_t>(p, p + n));
            }).ok());
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].first, 100u);
  EXPECT_EQ(records[0].second, p1);
  EXPECT_EQ(records[1].first, 200u);
  EXPECT_EQ(records[1].second, p2);
}

TEST(ChunkTest, EmptyChunkRoundTrips) {
  auto chunk = ChunkBuilder("empty").Finish();
  auto reader = ChunkReader::Open(chunk);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader->record_count(), 0u);
}

TEST(ChunkTest, OpenRejectsBadMagic) {
  std::vector<uint8_t> garbage{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12};
  auto reader = ChunkReader::Open(garbage);
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kDataLoss);
}

TEST(ChunkTest, SinkForwardsIntoBuilder) {
  ChunkBuilder b("s");
  RecordSink sink = b.AsSink();
  uint8_t byte = 42;
  sink(7, &byte, 1);
  EXPECT_EQ(b.record_count(), 1u);
}

TEST(ChunkTest, SplitPreservesAllRecordsDisjointly) {
  ChunkBuilder b("s");
  for (uint64_t h = 0; h < 100; ++h) {
    uint8_t payload = static_cast<uint8_t>(h);
    b.AddRecord(h * 7919, &payload, 1);  // spread hashes
  }
  auto chunk = std::move(b).Finish();
  auto parts = SplitChunk(chunk, 3);
  ASSERT_TRUE(parts.ok());
  ASSERT_EQ(parts->size(), 3u);

  uint64_t total = 0;
  std::set<uint8_t> seen;
  for (uint32_t i = 0; i < 3; ++i) {
    auto reader = ChunkReader::Open((*parts)[i]);
    ASSERT_TRUE(reader.ok());
    total += reader->record_count();
    ASSERT_TRUE(reader->ForEachRecord([&](uint64_t h, const uint8_t* p, size_t n) {
                EXPECT_EQ(h % 3, i);  // routed to the right sub-chunk
                ASSERT_EQ(n, 1u);
                seen.insert(p[0]);
              }).ok());
  }
  EXPECT_EQ(total, 100u);
  EXPECT_EQ(seen.size(), 100u);
}

TEST(ChunkTest, FilterKeepsOnlyOnePartition) {
  ChunkBuilder b("s");
  for (uint64_t h = 0; h < 50; ++h) {
    uint8_t payload = 0;
    b.AddRecord(h, &payload, 1);
  }
  auto chunk = std::move(b).Finish();
  auto filtered = FilterChunk(chunk, 1, 4);
  ASSERT_TRUE(filtered.ok());
  auto reader = ChunkReader::Open(*filtered);
  ASSERT_TRUE(reader.ok());
  ASSERT_TRUE(reader->ForEachRecord([&](uint64_t h, const uint8_t*, size_t) {
              EXPECT_EQ(h % 4, 1u);
            }).ok());
  EXPECT_EQ(reader->record_count(), 13u);  // hashes 1,5,9,...,49
}

TEST(ChunkTest, SerializeToChunksAndRestoreEndToEnd) {
  KeyedDict<int64_t, int64_t> source;
  for (int64_t i = 0; i < 1000; ++i) {
    source.Put(i, i * i);
  }
  auto chunks = SerializeToChunks(source, "kv", 4);
  ASSERT_EQ(chunks.size(), 4u);

  KeyedDict<int64_t, int64_t> restored;
  for (const auto& chunk : chunks) {
    ASSERT_TRUE(RestoreChunk(restored, chunk).ok());
  }
  EXPECT_EQ(restored.Size(), 1000u);
  EXPECT_EQ(restored.Get(31), 961);
}

TEST(ChunkTest, MToNRoundTrip) {
  // The full Fig. 4 pattern: serialise to m=2 backup chunks, split each for
  // n=3 recovering nodes, restore, and verify the union is complete and the
  // partitions are disjoint.
  KeyedDict<int64_t, int64_t> source;
  for (int64_t i = 0; i < 500; ++i) {
    source.Put(i, i + 1);
  }
  auto backup_chunks = SerializeToChunks(source, "kv", 2);

  constexpr uint32_t kN = 3;
  std::vector<KeyedDict<int64_t, int64_t>> recovered(kN);
  for (const auto& chunk : backup_chunks) {
    auto split = SplitChunk(chunk, kN);
    ASSERT_TRUE(split.ok());
    for (uint32_t i = 0; i < kN; ++i) {
      ASSERT_TRUE(RestoreChunk(recovered[i], (*split)[i]).ok());
    }
  }

  uint64_t total = 0;
  for (auto& r : recovered) {
    total += r.Size();
  }
  EXPECT_EQ(total, 500u);
  for (int64_t i = 0; i < 500; ++i) {
    int found = 0;
    for (auto& r : recovered) {
      if (r.Contains(i)) {
        ++found;
        EXPECT_EQ(r.Get(i), i + 1);
      }
    }
    EXPECT_EQ(found, 1) << "key " << i << " must live on exactly one node";
  }
}

// --- v2 frame: codec, tombstones, streamed chunks ---------------------------

ChunkOptions V2Options(uint8_t codec, bool delta) {
  ChunkOptions o;
  o.version = kChunkVersion2;
  o.codec = codec;
  o.delta = delta;
  return o;
}

TEST(ChunkV2Test, PrefixCodecRoundTripsAndShrinksSharedPrefixes) {
  // Records sharing a long common prefix: the codec should elide it.
  std::vector<std::vector<uint8_t>> payloads;
  for (int i = 0; i < 64; ++i) {
    std::vector<uint8_t> p(100, 0xAB);  // 100 identical leading bytes
    p.push_back(static_cast<uint8_t>(i));
    payloads.push_back(std::move(p));
  }

  ChunkBuilder plain("s", V2Options(kChunkCodecNone, false));
  ChunkBuilder packed("s", V2Options(kChunkCodecPrefix, false));
  for (uint64_t i = 0; i < payloads.size(); ++i) {
    plain.AddRecord(i, payloads[i].data(), payloads[i].size());
    packed.AddRecord(i, payloads[i].data(), payloads[i].size());
  }
  auto plain_chunk = std::move(plain).Finish();
  auto packed_chunk = std::move(packed).Finish();
  EXPECT_LT(packed_chunk.size(), plain_chunk.size() / 2);

  auto reader = ChunkReader::Open(packed_chunk);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader->version(), kChunkVersion2);
  EXPECT_EQ(reader->codec(), kChunkCodecPrefix);
  size_t i = 0;
  ASSERT_TRUE(reader->ForEach([&](const ChunkRecordView& rec) {
                EXPECT_EQ(rec.key_hash, i);
                ASSERT_EQ(rec.size, payloads[i].size());
                EXPECT_EQ(std::vector<uint8_t>(rec.payload, rec.payload + rec.size),
                          payloads[i]);
                ++i;
              }).ok());
  EXPECT_EQ(i, payloads.size());
}

TEST(ChunkV2Test, TombstonesRoundTripAndRejectLegacyWalk) {
  ChunkBuilder b("s", V2Options(kChunkCodecNone, /*delta=*/true));
  uint8_t live = 1, dead = 2;
  b.AddRecord(10, &live, 1);
  b.AddTombstone(20, &dead, 1);
  auto chunk = std::move(b).Finish();

  auto reader = ChunkReader::Open(chunk);
  ASSERT_TRUE(reader.ok());
  EXPECT_TRUE(reader->is_delta());
  std::vector<std::pair<uint64_t, bool>> seen;
  ASSERT_TRUE(reader->ForEach([&](const ChunkRecordView& rec) {
                seen.emplace_back(rec.key_hash, rec.tombstone);
              }).ok());
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], (std::pair<uint64_t, bool>{10, false}));
  EXPECT_EQ(seen[1], (std::pair<uint64_t, bool>{20, true}));

  // Pre-delta callers cannot represent an erase.
  Status s = reader->ForEachRecord([](uint64_t, const uint8_t*, size_t) {});
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
}

TEST(ChunkV2Test, SplitPreservesOptionsAndTombstones) {
  ChunkBuilder b("s", V2Options(kChunkCodecPrefix, /*delta=*/true));
  for (uint64_t h = 0; h < 60; ++h) {
    std::vector<uint8_t> p(20, 0x11);
    p.push_back(static_cast<uint8_t>(h));
    if (h % 5 == 0) {
      b.AddTombstone(h, p.data(), p.size());
    } else {
      b.AddRecord(h, p.data(), p.size());
    }
  }
  auto chunk = std::move(b).Finish();
  auto parts = SplitChunk(chunk, 3);
  ASSERT_TRUE(parts.ok());

  size_t total = 0, tombstones = 0;
  for (uint32_t i = 0; i < 3; ++i) {
    auto reader = ChunkReader::Open((*parts)[i]);
    ASSERT_TRUE(reader.ok());
    EXPECT_EQ(reader->version(), kChunkVersion2);
    EXPECT_EQ(reader->codec(), kChunkCodecPrefix);
    EXPECT_TRUE(reader->is_delta());
    ASSERT_TRUE(reader->ForEach([&](const ChunkRecordView& rec) {
                  EXPECT_EQ(rec.key_hash % 3, i);
                  ASSERT_EQ(rec.size, 21u);
                  EXPECT_EQ(rec.payload[20], static_cast<uint8_t>(rec.key_hash));
                  ++total;
                  if (rec.tombstone) {
                    ++tombstones;
                  }
                }).ok());
  }
  EXPECT_EQ(total, 60u);
  EXPECT_EQ(tombstones, 12u);  // hashes 0,5,...,55
}

TEST(ChunkV2Test, FilterKeepsPartitionTombstones) {
  ChunkBuilder b("s", V2Options(kChunkCodecNone, /*delta=*/true));
  uint8_t p = 0;
  for (uint64_t h = 0; h < 40; ++h) {
    if (h % 2 == 0) {
      b.AddTombstone(h, &p, 1);
    } else {
      b.AddRecord(h, &p, 1);
    }
  }
  auto chunk = std::move(b).Finish();
  auto filtered = FilterChunk(chunk, 2, 4);
  ASSERT_TRUE(filtered.ok());
  auto reader = ChunkReader::Open(*filtered);
  ASSERT_TRUE(reader.ok());
  EXPECT_TRUE(reader->is_delta());
  size_t count = 0;
  ASSERT_TRUE(reader->ForEach([&](const ChunkRecordView& rec) {
                EXPECT_EQ(rec.key_hash % 4, 2u);
                EXPECT_TRUE(rec.tombstone);  // partition 2 of 4 = even hashes
                ++count;
              }).ok());
  EXPECT_EQ(count, 10u);
}

TEST(ChunkV2Test, StreamedSentinelWalksBodyToEnd) {
  // A streamed chunk is framed segment-by-segment: header first (count
  // unknown), record frames appended after.
  ChunkOptions opts = V2Options(kChunkCodecPrefix, false);
  auto chunk = BuildChunkHeader(opts, "s", kStreamedRecordCount);
  std::vector<uint8_t> prev;
  std::vector<std::vector<uint8_t>> payloads;
  for (uint64_t i = 0; i < 10; ++i) {
    std::vector<uint8_t> p(8, 0x7F);
    p.push_back(static_cast<uint8_t>(i));
    AppendRecordFrame(opts, i, p.data(), p.size(), /*tombstone=*/false, chunk,
                      prev);
    payloads.push_back(std::move(p));
  }
  auto reader = ChunkReader::Open(chunk);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader->record_count(), kStreamedRecordCount);
  size_t i = 0;
  ASSERT_TRUE(reader->ForEach([&](const ChunkRecordView& rec) {
                ASSERT_LT(i, payloads.size());
                EXPECT_EQ(rec.key_hash, i);
                EXPECT_EQ(std::vector<uint8_t>(rec.payload, rec.payload + rec.size),
                          payloads[i]);
                ++i;
              }).ok());
  EXPECT_EQ(i, payloads.size());
}

TEST(ChunkV2Test, TruncatedV2BodyFailsCleanly) {
  ChunkBuilder b("s", V2Options(kChunkCodecPrefix, false));
  std::vector<uint8_t> p(32, 0x42);
  b.AddRecord(1, p.data(), p.size());
  b.AddRecord(2, p.data(), p.size());
  auto chunk = std::move(b).Finish();
  chunk.resize(chunk.size() - 5);
  auto reader = ChunkReader::Open(chunk);
  ASSERT_TRUE(reader.ok());  // header intact
  Status s = reader->ForEach([](const ChunkRecordView&) {});
  EXPECT_FALSE(s.ok());
}

TEST(ChunkV2Test, MixedV1V2RestoreAppliesTombstones) {
  // A v1 full base followed by a v2 delta epoch: the delta's tombstone erases
  // a base key and its record overwrites another.
  KeyedDict<int64_t, int64_t> base;
  for (int64_t i = 0; i < 100; ++i) {
    base.Put(i, i);
  }
  auto base_chunks = SerializeToChunks(base, "kv", 2);  // v1 frame

  KeyedDict<int64_t, int64_t> next;
  next.EnableDeltaTracking();
  for (int64_t i = 0; i < 100; ++i) {
    next.Put(i, i);
  }
  next.BeginCheckpoint();
  next.EndCheckpoint();
  next.ResolveEpoch(true);  // baseline committed; tracking live
  next.Put(7, 700);
  next.Erase(13);
  next.BeginCheckpoint();
  ChunkBuilder delta("kv", V2Options(kChunkCodecPrefix, /*delta=*/true));
  next.SerializeDirtyRecords([&](uint64_t h, const uint8_t* pl, size_t n,
                                 bool tomb) {
    if (tomb) {
      delta.AddTombstone(h, pl, n);
    } else {
      delta.AddRecord(h, pl, n);
    }
  });
  next.EndCheckpoint();
  next.ResolveEpoch(true);
  auto delta_chunk = std::move(delta).Finish();

  KeyedDict<int64_t, int64_t> restored;
  for (const auto& c : base_chunks) {
    ASSERT_TRUE(RestoreChunk(restored, c).ok());
  }
  ASSERT_TRUE(RestoreChunk(restored, delta_chunk).ok());
  EXPECT_EQ(restored.Size(), 99u);
  EXPECT_EQ(restored.Get(7), 700);
  EXPECT_FALSE(restored.Contains(13));
  EXPECT_EQ(restored.Get(42), 42);
}

}  // namespace
}  // namespace sdg::state
