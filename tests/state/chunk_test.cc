#include "src/state/chunk.h"

#include <gtest/gtest.h>

#include <set>

#include "src/state/keyed_dict.h"

namespace sdg::state {
namespace {

TEST(ChunkTest, BuildAndRead) {
  ChunkBuilder b("mystate");
  std::vector<uint8_t> p1{1, 2, 3};
  std::vector<uint8_t> p2{4, 5};
  b.AddRecord(100, p1.data(), p1.size());
  b.AddRecord(200, p2.data(), p2.size());
  EXPECT_EQ(b.record_count(), 2u);
  auto chunk = std::move(b).Finish();

  auto reader = ChunkReader::Open(chunk);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader->se_name(), "mystate");
  EXPECT_EQ(reader->record_count(), 2u);

  std::vector<std::pair<uint64_t, std::vector<uint8_t>>> records;
  ASSERT_TRUE(reader->ForEachRecord([&](uint64_t h, const uint8_t* p, size_t n) {
              records.emplace_back(h, std::vector<uint8_t>(p, p + n));
            }).ok());
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].first, 100u);
  EXPECT_EQ(records[0].second, p1);
  EXPECT_EQ(records[1].first, 200u);
  EXPECT_EQ(records[1].second, p2);
}

TEST(ChunkTest, EmptyChunkRoundTrips) {
  auto chunk = ChunkBuilder("empty").Finish();
  auto reader = ChunkReader::Open(chunk);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader->record_count(), 0u);
}

TEST(ChunkTest, OpenRejectsBadMagic) {
  std::vector<uint8_t> garbage{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12};
  auto reader = ChunkReader::Open(garbage);
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kDataLoss);
}

TEST(ChunkTest, SinkForwardsIntoBuilder) {
  ChunkBuilder b("s");
  RecordSink sink = b.AsSink();
  uint8_t byte = 42;
  sink(7, &byte, 1);
  EXPECT_EQ(b.record_count(), 1u);
}

TEST(ChunkTest, SplitPreservesAllRecordsDisjointly) {
  ChunkBuilder b("s");
  for (uint64_t h = 0; h < 100; ++h) {
    uint8_t payload = static_cast<uint8_t>(h);
    b.AddRecord(h * 7919, &payload, 1);  // spread hashes
  }
  auto chunk = std::move(b).Finish();
  auto parts = SplitChunk(chunk, 3);
  ASSERT_TRUE(parts.ok());
  ASSERT_EQ(parts->size(), 3u);

  uint64_t total = 0;
  std::set<uint8_t> seen;
  for (uint32_t i = 0; i < 3; ++i) {
    auto reader = ChunkReader::Open((*parts)[i]);
    ASSERT_TRUE(reader.ok());
    total += reader->record_count();
    ASSERT_TRUE(reader->ForEachRecord([&](uint64_t h, const uint8_t* p, size_t n) {
                EXPECT_EQ(h % 3, i);  // routed to the right sub-chunk
                ASSERT_EQ(n, 1u);
                seen.insert(p[0]);
              }).ok());
  }
  EXPECT_EQ(total, 100u);
  EXPECT_EQ(seen.size(), 100u);
}

TEST(ChunkTest, FilterKeepsOnlyOnePartition) {
  ChunkBuilder b("s");
  for (uint64_t h = 0; h < 50; ++h) {
    uint8_t payload = 0;
    b.AddRecord(h, &payload, 1);
  }
  auto chunk = std::move(b).Finish();
  auto filtered = FilterChunk(chunk, 1, 4);
  ASSERT_TRUE(filtered.ok());
  auto reader = ChunkReader::Open(*filtered);
  ASSERT_TRUE(reader.ok());
  ASSERT_TRUE(reader->ForEachRecord([&](uint64_t h, const uint8_t*, size_t) {
              EXPECT_EQ(h % 4, 1u);
            }).ok());
  EXPECT_EQ(reader->record_count(), 13u);  // hashes 1,5,9,...,49
}

TEST(ChunkTest, SerializeToChunksAndRestoreEndToEnd) {
  KeyedDict<int64_t, int64_t> source;
  for (int64_t i = 0; i < 1000; ++i) {
    source.Put(i, i * i);
  }
  auto chunks = SerializeToChunks(source, "kv", 4);
  ASSERT_EQ(chunks.size(), 4u);

  KeyedDict<int64_t, int64_t> restored;
  for (const auto& chunk : chunks) {
    ASSERT_TRUE(RestoreChunk(restored, chunk).ok());
  }
  EXPECT_EQ(restored.Size(), 1000u);
  EXPECT_EQ(restored.Get(31), 961);
}

TEST(ChunkTest, MToNRoundTrip) {
  // The full Fig. 4 pattern: serialise to m=2 backup chunks, split each for
  // n=3 recovering nodes, restore, and verify the union is complete and the
  // partitions are disjoint.
  KeyedDict<int64_t, int64_t> source;
  for (int64_t i = 0; i < 500; ++i) {
    source.Put(i, i + 1);
  }
  auto backup_chunks = SerializeToChunks(source, "kv", 2);

  constexpr uint32_t kN = 3;
  std::vector<KeyedDict<int64_t, int64_t>> recovered(kN);
  for (const auto& chunk : backup_chunks) {
    auto split = SplitChunk(chunk, kN);
    ASSERT_TRUE(split.ok());
    for (uint32_t i = 0; i < kN; ++i) {
      ASSERT_TRUE(RestoreChunk(recovered[i], (*split)[i]).ok());
    }
  }

  uint64_t total = 0;
  for (auto& r : recovered) {
    total += r.Size();
  }
  EXPECT_EQ(total, 500u);
  for (int64_t i = 0; i < 500; ++i) {
    int found = 0;
    for (auto& r : recovered) {
      if (r.Contains(i)) {
        ++found;
        EXPECT_EQ(r.Get(i), i + 1);
      }
    }
    EXPECT_EQ(found, 1) << "key " << i << " must live on exactly one node";
  }
}

}  // namespace
}  // namespace sdg::state
