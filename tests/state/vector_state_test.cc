#include "src/state/vector_state.h"

#include <gtest/gtest.h>

namespace sdg::state {
namespace {

TEST(VectorStateTest, SetGetGrow) {
  VectorState v;
  v.Set(0, 1.5);
  v.Set(10, 2.5);
  EXPECT_DOUBLE_EQ(v.Get(0), 1.5);
  EXPECT_DOUBLE_EQ(v.Get(10), 2.5);
  EXPECT_DOUBLE_EQ(v.Get(5), 0.0);   // implicit zero fill
  EXPECT_DOUBLE_EQ(v.Get(99), 0.0);  // out of range reads as zero
  EXPECT_EQ(v.LogicalSize(), 11u);
}

TEST(VectorStateTest, PresizedConstruction) {
  VectorState v(100);
  EXPECT_EQ(v.LogicalSize(), 100u);
  EXPECT_DOUBLE_EQ(v.Get(50), 0.0);
}

TEST(VectorStateTest, AddAccumulates) {
  VectorState v;
  v.Add(3, 1.0);
  v.Add(3, 2.0);
  EXPECT_DOUBLE_EQ(v.Get(3), 3.0);
}

TEST(VectorStateTest, AccumulateVector) {
  VectorState v(3);
  v.Set(0, 1.0);
  v.Accumulate({10.0, 20.0, 30.0, 40.0});
  EXPECT_EQ(v.ToDense(), (std::vector<double>{11.0, 20.0, 30.0, 40.0}));
}

TEST(VectorStateTest, DirtyOverlayDuringCheckpoint) {
  VectorState v(4);
  v.Set(0, 1.0);
  v.BeginCheckpoint();
  v.Set(0, 9.0);
  v.Add(1, 5.0);
  EXPECT_DOUBLE_EQ(v.Get(0), 9.0);  // read sees overlay
  EXPECT_DOUBLE_EQ(v.Get(1), 5.0);

  // Snapshot is the pre-checkpoint content.
  VectorState restored;
  v.SerializeRecords([&](uint64_t, const uint8_t* p, size_t n) {
    ASSERT_TRUE(restored.RestoreRecord(p, n).ok());
  });
  EXPECT_DOUBLE_EQ(restored.Get(0), 1.0);
  EXPECT_DOUBLE_EQ(restored.Get(1), 0.0);

  EXPECT_EQ(v.EndCheckpoint(), 2u);
  EXPECT_DOUBLE_EQ(v.Get(0), 9.0);
  EXPECT_DOUBLE_EQ(v.Get(1), 5.0);
}

TEST(VectorStateTest, GrowthDuringCheckpointViaOverlay) {
  VectorState v(2);
  v.BeginCheckpoint();
  v.Set(100, 7.0);
  EXPECT_EQ(v.LogicalSize(), 101u);
  EXPECT_DOUBLE_EQ(v.Get(100), 7.0);
  v.EndCheckpoint();
  EXPECT_EQ(v.LogicalSize(), 101u);
  EXPECT_DOUBLE_EQ(v.Get(100), 7.0);
}

TEST(VectorStateTest, SerializeRestoreLargeVector) {
  VectorState v;
  constexpr size_t kN = 5000;  // spans multiple blocks
  for (size_t i = 0; i < kN; ++i) {
    v.Set(i, static_cast<double>(i) * 0.5);
  }
  VectorState restored;
  v.SerializeRecords([&](uint64_t, const uint8_t* p, size_t n) {
    ASSERT_TRUE(restored.RestoreRecord(p, n).ok());
  });
  EXPECT_EQ(restored.LogicalSize(), kN);
  for (size_t i = 0; i < kN; i += 377) {
    EXPECT_DOUBLE_EQ(restored.Get(i), static_cast<double>(i) * 0.5);
  }
}

TEST(VectorStateTest, ExtractPartitionZeroesMovedBlocks) {
  VectorState v;
  constexpr size_t kN = 4096;
  for (size_t i = 0; i < kN; ++i) {
    v.Set(i, 1.0);
  }
  VectorState other;
  ASSERT_TRUE(v.ExtractPartition(0, 2, [&](uint64_t, const uint8_t* p, size_t n) {
              ASSERT_TRUE(other.RestoreRecord(p, n).ok());
            }).ok());
  double total = 0;
  for (size_t i = 0; i < kN; ++i) {
    total += v.Get(i) + other.Get(i);
    // Each element lives in exactly one of the two instances.
    EXPECT_DOUBLE_EQ(v.Get(i) + other.Get(i), 1.0) << i;
  }
  EXPECT_DOUBLE_EQ(total, static_cast<double>(kN));
}

TEST(VectorStateTest, RestoreRejectsShortRecord) {
  VectorState v;
  BinaryWriter w;
  w.Write<uint64_t>(0);    // block
  w.Write<uint64_t>(100);  // claims 100 doubles
  w.Write<double>(1.0);    // only one present
  Status s = v.RestoreRecord(w.buffer().data(), w.buffer().size());
  EXPECT_EQ(s.code(), StatusCode::kDataLoss);
}

TEST(VectorStateTest, BackendMetadata) {
  VectorState v(10);
  EXPECT_EQ(v.TypeName(), "VectorState");
  EXPECT_EQ(v.EntryCount(), 10u);
  EXPECT_GE(v.SizeBytes(), 10 * sizeof(double));
  v.Clear();
  EXPECT_EQ(v.EntryCount(), 0u);
}

}  // namespace
}  // namespace sdg::state
