#include "src/state/keyed_dict.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "src/state/chunk.h"

namespace sdg::state {
namespace {

TEST(KeyedDictTest, PutGetErase) {
  KeyedDict<int64_t, int64_t> d;
  d.Put(1, 10);
  d.Put(2, 20);
  EXPECT_EQ(d.Get(1), 10);
  EXPECT_EQ(d.Get(2), 20);
  EXPECT_FALSE(d.Get(3).has_value());
  d.Erase(1);
  EXPECT_FALSE(d.Get(1).has_value());
  EXPECT_EQ(d.Size(), 1u);
}

TEST(KeyedDictTest, StringKeysAndValues) {
  KeyedDict<std::string, std::string> d;
  d.Put("hello", "world");
  EXPECT_EQ(d.Get("hello"), "world");
  EXPECT_TRUE(d.Contains("hello"));
  EXPECT_FALSE(d.Contains("nope"));
}

TEST(KeyedDictTest, UpdateReadModifyWrite) {
  KeyedDict<std::string, int64_t> counts;
  for (int i = 0; i < 3; ++i) {
    counts.Update("word", [](int64_t v) { return v + 1; });
  }
  EXPECT_EQ(counts.Get("word"), 3);
}

TEST(KeyedDictTest, DirtyOverlayDivertsWritesDuringCheckpoint) {
  KeyedDict<int64_t, int64_t> d;
  d.Put(1, 100);
  d.BeginCheckpoint();
  EXPECT_TRUE(d.checkpoint_active());

  d.Put(1, 200);    // diverted to overlay
  d.Put(2, 300);    // new key in overlay
  EXPECT_EQ(d.DirtySize(), 2u);

  // Reads see the overlay (dirty-first semantics of §5 step 2).
  EXPECT_EQ(d.Get(1), 200);
  EXPECT_EQ(d.Get(2), 300);

  // The consistent snapshot still holds the pre-checkpoint value.
  int64_t snapshot_value = -1;
  uint64_t snapshot_records = 0;
  d.SerializeRecords([&](uint64_t, const uint8_t* p, size_t n) {
    ++snapshot_records;
    BinaryReader r(p, n);
    int64_t k = r.Read<int64_t>().value();
    int64_t v = r.Read<int64_t>().value();
    if (k == 1) {
      snapshot_value = v;
    }
  });
  EXPECT_EQ(snapshot_records, 1u);  // key 2 not yet in the snapshot
  EXPECT_EQ(snapshot_value, 100);

  uint64_t consolidated = d.EndCheckpoint();
  EXPECT_EQ(consolidated, 2u);
  EXPECT_FALSE(d.checkpoint_active());
  EXPECT_EQ(d.Get(1), 200);
  EXPECT_EQ(d.Get(2), 300);
  EXPECT_EQ(d.DirtySize(), 0u);
}

TEST(KeyedDictTest, EraseDuringCheckpointIsTombstone) {
  KeyedDict<int64_t, int64_t> d;
  d.Put(1, 10);
  d.Put(2, 20);
  d.BeginCheckpoint();
  d.Erase(1);
  EXPECT_FALSE(d.Get(1).has_value());
  EXPECT_EQ(d.Size(), 1u);
  d.EndCheckpoint();
  EXPECT_FALSE(d.Get(1).has_value());
  EXPECT_EQ(d.Get(2), 20);
}

TEST(KeyedDictTest, UpdateDuringCheckpointSeesMainThenOverlays) {
  KeyedDict<int64_t, int64_t> d;
  d.Put(5, 7);
  d.BeginCheckpoint();
  d.Update(5, [](int64_t v) { return v + 1; });  // reads 7 from main
  EXPECT_EQ(d.Get(5), 8);
  d.Update(5, [](int64_t v) { return v + 1; });  // reads 8 from overlay
  EXPECT_EQ(d.Get(5), 9);
  d.EndCheckpoint();
  EXPECT_EQ(d.Get(5), 9);
}

TEST(KeyedDictTest, ForEachMergesOverlay) {
  KeyedDict<int64_t, int64_t> d;
  d.Put(1, 1);
  d.Put(2, 2);
  d.BeginCheckpoint();
  d.Put(2, 22);
  d.Put(3, 3);
  d.Erase(1);
  std::unordered_map<int64_t, int64_t> seen;
  d.ForEach([&](int64_t k, int64_t v) { seen[k] = v; });
  d.EndCheckpoint();
  EXPECT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[2], 22);
  EXPECT_EQ(seen[3], 3);
}

TEST(KeyedDictTest, SerializeRestoreRoundTrip) {
  KeyedDict<std::string, int64_t> d;
  for (int i = 0; i < 100; ++i) {
    d.Put("key" + std::to_string(i), i);
  }
  KeyedDict<std::string, int64_t> restored;
  d.SerializeRecords([&](uint64_t, const uint8_t* p, size_t n) {
    ASSERT_TRUE(restored.RestoreRecord(p, n).ok());
  });
  EXPECT_EQ(restored.Size(), 100u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(restored.Get("key" + std::to_string(i)), i);
  }
}

TEST(KeyedDictTest, ExtractPartitionMovesDisjointSubsets) {
  KeyedDict<int64_t, int64_t> d;
  for (int64_t i = 0; i < 1000; ++i) {
    d.Put(i, i * 2);
  }
  // Buffer the moving records, restore after ExtractPartition returns —
  // reentering another striped dict from inside the sink would nest the two
  // dicts' stripe locks (the same inversion the runtime's re-shard path
  // avoids by buffering, see cluster.cc).
  std::vector<std::vector<uint8_t>> moving;
  ASSERT_TRUE(d.ExtractPartition(1, 2, [&](uint64_t, const uint8_t* p, size_t n) {
              moving.emplace_back(p, p + n);
            }).ok());
  KeyedDict<int64_t, int64_t> other;
  for (const auto& rec : moving) {
    ASSERT_TRUE(other.RestoreRecord(rec.data(), rec.size()).ok());
  }
  EXPECT_EQ(d.Size() + other.Size(), 1000u);
  EXPECT_GT(other.Size(), 300u);  // hash split should be roughly even
  EXPECT_GT(d.Size(), 300u);
  std::vector<std::pair<int64_t, int64_t>> moved;
  other.ForEach([&](int64_t k, int64_t v) { moved.emplace_back(k, v); });
  for (const auto& [k, v] : moved) {
    EXPECT_FALSE(d.Contains(k));  // no key is in both
    EXPECT_EQ(v, k * 2);          // values survived the move
  }
}

TEST(KeyedDictTest, ExtractPartitionRejectedDuringCheckpoint) {
  KeyedDict<int64_t, int64_t> d;
  d.Put(1, 1);
  d.BeginCheckpoint();
  Status s = d.ExtractPartition(0, 2, [](uint64_t, const uint8_t*, size_t) {});
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
  d.EndCheckpoint();
}

TEST(KeyedDictTest, ConcurrentWritesDuringCheckpointDoNotCorruptSnapshot) {
  KeyedDict<int64_t, int64_t> d;
  constexpr int64_t kKeys = 10000;
  for (int64_t i = 0; i < kKeys; ++i) {
    d.Put(i, 1);
  }
  d.BeginCheckpoint();
  std::thread writer([&] {
    for (int64_t i = 0; i < kKeys; ++i) {
      d.Put(i, 2);
    }
  });
  // Serialise the frozen snapshot concurrently with the writer.
  int64_t sum = 0;
  uint64_t records = 0;
  d.SerializeRecords([&](uint64_t, const uint8_t* p, size_t n) {
    BinaryReader r(p, n);
    (void)r.Read<int64_t>();
    sum += r.Read<int64_t>().value();
    ++records;
  });
  writer.join();
  EXPECT_EQ(records, static_cast<uint64_t>(kKeys));
  EXPECT_EQ(sum, kKeys);  // every snapshot value is the pre-checkpoint 1
  d.EndCheckpoint();
  EXPECT_EQ(d.Get(0), 2);
  EXPECT_EQ(d.Get(kKeys - 1), 2);
}

TEST(KeyedDictTest, ClearEmptiesEverything) {
  KeyedDict<int64_t, int64_t> d;
  d.Put(1, 1);
  d.Clear();
  EXPECT_EQ(d.Size(), 0u);
  EXPECT_EQ(d.EntryCount(), 0u);
}

TEST(KeyedDictTest, TypeNameAndSizeBytes) {
  KeyedDict<int64_t, int64_t> d;
  EXPECT_EQ(d.TypeName(), "KeyedDict");
  d.Put(1, 1);
  EXPECT_GT(d.SizeBytes(), 0u);
}

TEST(KeyedDictTest, VectorValues) {
  KeyedDict<int64_t, std::vector<double>> d;
  d.Put(1, {1.0, 2.0, 3.0});
  auto v = d.Get(1);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->size(), 3u);
  // Round-trip through serialisation too.
  KeyedDict<int64_t, std::vector<double>> restored;
  d.SerializeRecords([&](uint64_t, const uint8_t* p, size_t n) {
    ASSERT_TRUE(restored.RestoreRecord(p, n).ok());
  });
  EXPECT_EQ(restored.Get(1), (std::vector<double>{1.0, 2.0, 3.0}));
}

}  // namespace
}  // namespace sdg::state
