// Concurrent reader / writer / checkpoint stress over the striped backends.
//
// Each test runs writer threads that own disjoint key ranges (so a local,
// unsynchronised reference model is exact), reader threads hammering the
// shared-lock paths, and a checkpoint driver that repeatedly:
//   1. pauses the writers at an op boundary,
//   2. snapshots the logical contents (the pre-BeginCheckpoint reference),
//   3. calls BeginCheckpoint and resumes the writers,
//   4. fans SerializeShardRecords across threads WHILE the writers mutate,
//   5. restores the collected records into a fresh backend and asserts it
//      equals the step-2 snapshot (the frozen cut saw none of the overlay),
//   6. calls EndCheckpoint.
// After the writers join, the final contents must equal the merged per-writer
// models — no lost updates across stripes, overlays, or consolidation.
//
// Op counts are sized for the TSan CI job (state_test runs under -fsanitize=
// thread there); the interesting schedules come from the concurrency shape,
// not volume.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "src/state/dense_matrix.h"
#include "src/state/keyed_dict.h"
#include "src/state/sparse_matrix.h"
#include "src/state/spill.h"
#include "src/state/vector_state.h"
#include "tests/common/scoped_test_dir.h"

namespace sdg::state {
namespace {

constexpr int kWriters = 4;
constexpr int kReaders = 2;
constexpr int kCheckpointRounds = 3;

// Op-boundary pause gate. A writer calls MaybePause() between state ops; the
// driver's Pause() returns only once every writer is parked inside it, i.e.
// no state op is in flight and none can start until Resume().
class PauseGate {
 public:
  void MaybePause() {
    if (!pause_.load(std::memory_order_acquire)) {
      return;
    }
    paused_.fetch_add(1, std::memory_order_acq_rel);
    while (pause_.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    paused_.fetch_sub(1, std::memory_order_acq_rel);
  }

  void Pause() {
    pause_.store(true, std::memory_order_release);
    while (paused_.load(std::memory_order_acquire) < kWriters) {
      std::this_thread::yield();
    }
  }

  void Resume() {
    pause_.store(false, std::memory_order_release);
    while (paused_.load(std::memory_order_acquire) > 0) {
      std::this_thread::yield();
    }
  }

 private:
  std::atomic<bool> pause_{false};
  std::atomic<int> paused_{0};
};

struct RawRecord {
  std::vector<uint8_t> payload;
};

// Runs backend.SerializeShardRecords across `threads` threads (shards dealt
// round-robin) and returns every emitted record. Called while a checkpoint is
// active and writers are mutating the overlay — the whole point.
template <typename Backend>
std::vector<RawRecord> ParallelSerialize(const Backend& backend, int threads) {
  std::mutex mu;
  std::vector<RawRecord> records;
  const uint32_t shards = backend.SerializeShardCount();
  std::vector<std::thread> pool;
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      std::vector<RawRecord> local;
      for (uint32_t s = t; s < shards; s += threads) {
        backend.SerializeShardRecords(
            s, [&local](uint64_t, const uint8_t* payload, size_t size) {
              local.push_back(RawRecord{{payload, payload + size}});
            });
      }
      std::lock_guard<std::mutex> lock(mu);
      for (auto& r : local) {
        records.push_back(std::move(r));
      }
    });
  }
  for (auto& t : pool) {
    t.join();
  }
  return records;
}

template <typename Backend>
void RestoreInto(Backend& backend, const std::vector<RawRecord>& records) {
  for (const auto& r : records) {
    ASSERT_TRUE(backend.RestoreRecord(r.payload.data(), r.payload.size()).ok());
  }
}

TEST(StripedStressTest, KeyedDictConcurrentCheckpoint) {
  constexpr int64_t kKeysPerWriter = 64;
  KeyedDict<int64_t, int64_t> dict;
  PauseGate gate;
  std::atomic<bool> stop{false};

  std::vector<std::thread> writers;
  std::vector<std::map<int64_t, int64_t>> models(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      int64_t i = 0;
      while (!stop.load(std::memory_order_acquire)) {
        gate.MaybePause();
        int64_t key = w * kKeysPerWriter + (i % kKeysPerWriter);
        dict.Update(key, [](int64_t v) { return v + 1; });
        ++models[w][key];
        ++i;
      }
    });
  }
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      int64_t i = r;
      while (!stop.load(std::memory_order_acquire)) {
        int64_t key = i++ % (kWriters * kKeysPerWriter);
        int64_t seen = 0;
        dict.View(key, [&seen](const int64_t& v) { seen = v; });
        ASSERT_GE(seen, 0);
      }
    });
  }

  uint64_t consolidated = 0;
  for (int round = 0; round < kCheckpointRounds; ++round) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    gate.Pause();
    std::map<int64_t, int64_t> reference;
    dict.ForEach([&](int64_t k, const int64_t& v) { reference[k] = v; });
    dict.BeginCheckpoint();
    gate.Resume();

    // Let writers pile changes into the overlay while we serialise.
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    auto records = ParallelSerialize(dict, /*threads=*/4);

    KeyedDict<int64_t, int64_t> restored;
    RestoreInto(restored, records);
    EXPECT_EQ(restored.Size(), reference.size());
    std::map<int64_t, int64_t> got;
    restored.ForEach([&](int64_t k, const int64_t& v) { got[k] = v; });
    EXPECT_EQ(got, reference) << "mid-checkpoint snapshot drifted from the "
                                 "pre-BeginCheckpoint state in round "
                              << round;
    consolidated += dict.EndCheckpoint();
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : writers) {
    t.join();
  }
  for (auto& t : readers) {
    t.join();
  }
  EXPECT_GT(consolidated, 0u) << "no write ever hit the dirty overlay";

  std::map<int64_t, int64_t> expected;
  for (const auto& m : models) {
    for (const auto& [k, v] : m) {
      expected[k] = v;
    }
  }
  EXPECT_EQ(dict.Size(), expected.size());
  for (const auto& [k, v] : expected) {
    EXPECT_EQ(dict.Get(k), v) << "lost update on key " << k;
  }
}

// Same shape as KeyedDictConcurrentCheckpoint, but under a tiny spill budget:
// readers and writers race eviction, fault-in and cold-overlay absorption
// while checkpoints freeze the spilled set. The snapshot equality check makes
// this the TSan leg for the whole cold-tier locking story.
TEST(StripedStressTest, KeyedDictSpillConcurrentCheckpoint) {
  constexpr int64_t kKeysPerWriter = 64;
  ScopedTestDir tmp("spill_stress");
  KeyedDict<int64_t, int64_t> dict(8);
  SpillConfig spill;
  spill.dir = (tmp.path() / "cold").string();
  spill.budget_bytes = 512;  // entries are 32 bytes: constant churn
  ASSERT_TRUE(dict.ConfigureSpill(spill).ok());
  PauseGate gate;
  std::atomic<bool> stop{false};

  std::vector<std::thread> writers;
  std::vector<std::map<int64_t, int64_t>> models(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      int64_t i = 0;
      while (!stop.load(std::memory_order_acquire)) {
        gate.MaybePause();
        int64_t key = w * kKeysPerWriter + (i % kKeysPerWriter);
        dict.Update(key, [](int64_t v) { return v + 1; });
        ++models[w][key];
        ++i;
      }
    });
  }
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      int64_t i = r;
      while (!stop.load(std::memory_order_acquire)) {
        int64_t key = i++ % (kWriters * kKeysPerWriter);
        int64_t seen = 0;
        dict.View(key, [&seen](const int64_t& v) { seen = v; });
        ASSERT_GE(seen, 0);
      }
    });
  }

  for (int round = 0; round < kCheckpointRounds; ++round) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    gate.Pause();
    std::map<int64_t, int64_t> reference;
    dict.ForEach([&](int64_t k, const int64_t& v) { reference[k] = v; });
    dict.BeginCheckpoint();
    gate.Resume();

    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    auto records = ParallelSerialize(dict, /*threads=*/4);

    KeyedDict<int64_t, int64_t> restored;
    RestoreInto(restored, records);
    EXPECT_EQ(restored.Size(), reference.size());
    std::map<int64_t, int64_t> got;
    restored.ForEach([&](int64_t k, const int64_t& v) { got[k] = v; });
    EXPECT_EQ(got, reference) << "mid-checkpoint snapshot drifted from the "
                                 "pre-BeginCheckpoint state in round "
                              << round;
    dict.EndCheckpoint();
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : writers) {
    t.join();
  }
  for (auto& t : readers) {
    t.join();
  }

  const SpillStats stats = dict.GetSpillStats();
  EXPECT_GT(stats.evictions, 0u) << "budget never bound: nothing spilled";

  std::map<int64_t, int64_t> expected;
  for (const auto& m : models) {
    for (const auto& [k, v] : m) {
      expected[k] = v;
    }
  }
  EXPECT_EQ(dict.Size(), expected.size());
  for (const auto& [k, v] : expected) {
    EXPECT_EQ(dict.Get(k), v) << "lost update on key " << k;
  }
}

TEST(StripedStressTest, VectorStateConcurrentCheckpoint) {
  constexpr size_t kDims = 2048;
  VectorState vec(kDims);
  PauseGate gate;
  std::atomic<bool> stop{false};

  std::vector<std::thread> writers;
  std::vector<std::vector<double>> models(kWriters,
                                          std::vector<double>(kDims, 0.0));
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      size_t i = w;
      while (!stop.load(std::memory_order_acquire)) {
        gate.MaybePause();
        size_t idx = i % kDims;
        vec.Add(idx, 1.0);
        models[w][idx] += 1.0;
        i += kWriters;  // disjoint index sets across writers
      }
    });
  }
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        double sum = 0;
        vec.View([&sum](const double* d, size_t n) {
          for (size_t i = 0; i < n; i += 97) {
            sum += d[i];
          }
        });
        ASSERT_GE(sum, 0.0);
      }
    });
  }

  uint64_t consolidated = 0;
  for (int round = 0; round < kCheckpointRounds; ++round) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    gate.Pause();
    std::vector<double> reference = vec.ToDense();
    vec.BeginCheckpoint();
    gate.Resume();

    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    auto records = ParallelSerialize(vec, /*threads=*/4);

    VectorState restored;
    RestoreInto(restored, records);
    std::vector<double> got = restored.ToDense();
    got.resize(reference.size(), 0.0);
    EXPECT_EQ(got, reference) << "round " << round;
    consolidated += vec.EndCheckpoint();
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : writers) {
    t.join();
  }
  for (auto& t : readers) {
    t.join();
  }
  EXPECT_GT(consolidated, 0u);

  std::vector<double> expected(kDims, 0.0);
  for (const auto& m : models) {
    for (size_t i = 0; i < kDims; ++i) {
      expected[i] += m[i];
    }
  }
  std::vector<double> final = vec.ToDense();
  final.resize(kDims, 0.0);
  EXPECT_EQ(final, expected) << "lost vector updates";
}

TEST(StripedStressTest, DenseMatrixConcurrentCheckpoint) {
  constexpr size_t kRows = 64;
  constexpr size_t kCols = 16;
  DenseMatrix mat(kRows, kCols);
  PauseGate gate;
  std::atomic<bool> stop{false};

  std::vector<std::thread> writers;
  std::vector<std::vector<double>> models(
      kWriters, std::vector<double>(kRows * kCols, 0.0));
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      size_t i = 0;
      while (!stop.load(std::memory_order_acquire)) {
        gate.MaybePause();
        size_t row = w + kWriters * (i % (kRows / kWriters));  // disjoint rows
        size_t col = i % kCols;
        mat.Add(row, col, 1.0);
        models[w][row * kCols + col] += 1.0;
        ++i;
      }
    });
  }
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      size_t i = r;
      while (!stop.load(std::memory_order_acquire)) {
        std::vector<double> row = mat.GetRowDense(i++ % kRows);
        ASSERT_EQ(row.size(), kCols);
      }
    });
  }

  uint64_t consolidated = 0;
  for (int round = 0; round < kCheckpointRounds; ++round) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    gate.Pause();
    std::vector<double> reference;
    for (size_t row = 0; row < kRows; ++row) {
      auto r = mat.GetRowDense(row);
      reference.insert(reference.end(), r.begin(), r.end());
    }
    mat.BeginCheckpoint();
    gate.Resume();

    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    auto records = ParallelSerialize(mat, /*threads=*/4);

    DenseMatrix restored;
    RestoreInto(restored, records);
    ASSERT_EQ(restored.rows(), kRows);
    ASSERT_EQ(restored.cols(), kCols);
    std::vector<double> got;
    for (size_t row = 0; row < kRows; ++row) {
      auto r = restored.GetRowDense(row);
      got.insert(got.end(), r.begin(), r.end());
    }
    EXPECT_EQ(got, reference) << "round " << round;
    consolidated += mat.EndCheckpoint();
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : writers) {
    t.join();
  }
  for (auto& t : readers) {
    t.join();
  }
  EXPECT_GT(consolidated, 0u);

  for (size_t row = 0; row < kRows; ++row) {
    for (size_t col = 0; col < kCols; ++col) {
      double expected = 0;
      for (const auto& m : models) {
        expected += m[row * kCols + col];
      }
      EXPECT_EQ(mat.Get(row, col), expected)
          << "lost update at (" << row << "," << col << ")";
    }
  }
}

TEST(StripedStressTest, SparseMatrixConcurrentCheckpoint) {
  constexpr int64_t kRows = 96;
  constexpr int64_t kCols = 12;
  SparseMatrix mat;
  PauseGate gate;
  std::atomic<bool> stop{false};

  std::vector<std::thread> writers;
  std::vector<std::map<std::pair<int64_t, int64_t>, double>> models(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      int64_t i = 0;
      while (!stop.load(std::memory_order_acquire)) {
        gate.MaybePause();
        int64_t row = w + kWriters * (i % (kRows / kWriters));  // disjoint rows
        int64_t col = i % kCols;
        mat.Add(row, col, 1.0);
        models[w][{row, col}] += 1.0;
        ++i;
      }
    });
  }
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      int64_t i = r;
      while (!stop.load(std::memory_order_acquire)) {
        double v = mat.Get(i % kRows, i % kCols);
        ASSERT_GE(v, 0.0);
        ++i;
      }
    });
  }

  uint64_t consolidated = 0;
  for (int round = 0; round < kCheckpointRounds; ++round) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    gate.Pause();
    std::vector<double> reference;
    for (int64_t row = 0; row < kRows; ++row) {
      for (int64_t col = 0; col < kCols; ++col) {
        reference.push_back(mat.Get(row, col));
      }
    }
    mat.BeginCheckpoint();
    gate.Resume();

    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    auto records = ParallelSerialize(mat, /*threads=*/4);

    SparseMatrix restored;
    RestoreInto(restored, records);
    std::vector<double> got;
    for (int64_t row = 0; row < kRows; ++row) {
      for (int64_t col = 0; col < kCols; ++col) {
        got.push_back(restored.Get(row, col));
      }
    }
    EXPECT_EQ(got, reference) << "round " << round;
    consolidated += mat.EndCheckpoint();
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : writers) {
    t.join();
  }
  for (auto& t : readers) {
    t.join();
  }
  EXPECT_GT(consolidated, 0u);

  for (int64_t row = 0; row < kRows; ++row) {
    for (int64_t col = 0; col < kCols; ++col) {
      double expected = 0;
      for (const auto& m : models) {
        auto it = m.find({row, col});
        if (it != m.end()) {
          expected += it->second;
        }
      }
      EXPECT_EQ(mat.Get(row, col), expected)
          << "lost update at (" << row << "," << col << ")";
    }
  }
}

}  // namespace
}  // namespace sdg::state
