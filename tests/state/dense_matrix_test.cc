#include "src/state/dense_matrix.h"

#include <gtest/gtest.h>

namespace sdg::state {
namespace {

TEST(DenseMatrixTest, ShapeAndAccess) {
  DenseMatrix m(3, 4);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  m.Set(2, 3, 5.0);
  EXPECT_DOUBLE_EQ(m.Get(2, 3), 5.0);
  EXPECT_DOUBLE_EQ(m.Get(0, 0), 0.0);
  m.Add(2, 3, 1.0);
  EXPECT_DOUBLE_EQ(m.Get(2, 3), 6.0);
}

TEST(DenseMatrixTest, GetRowDense) {
  DenseMatrix m(2, 3);
  m.Set(1, 0, 1);
  m.Set(1, 2, 3);
  EXPECT_EQ(m.GetRowDense(1), (std::vector<double>{1, 0, 3}));
}

TEST(DenseMatrixTest, MultiplyDense) {
  DenseMatrix m(2, 2);
  m.Set(0, 0, 1);
  m.Set(0, 1, 2);
  m.Set(1, 0, 3);
  m.Set(1, 1, 4);
  EXPECT_EQ(m.MultiplyDense({5, 6}), (std::vector<double>{17, 39}));
}

TEST(DenseMatrixTest, DirtyOverlayDuringCheckpoint) {
  DenseMatrix m(2, 2);
  m.Set(0, 0, 1.0);
  m.BeginCheckpoint();
  m.Set(0, 0, 9.0);
  m.Add(1, 1, 4.0);
  EXPECT_DOUBLE_EQ(m.Get(0, 0), 9.0);
  EXPECT_DOUBLE_EQ(m.Get(1, 1), 4.0);

  DenseMatrix restored;
  m.SerializeRecords([&](uint64_t, const uint8_t* p, size_t n) {
    ASSERT_TRUE(restored.RestoreRecord(p, n).ok());
  });
  EXPECT_DOUBLE_EQ(restored.Get(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(restored.Get(1, 1), 0.0);

  EXPECT_EQ(m.EndCheckpoint(), 2u);
  EXPECT_DOUBLE_EQ(m.Get(0, 0), 9.0);
}

TEST(DenseMatrixTest, MultiplyCorrectsForOverlay) {
  DenseMatrix m(2, 2);
  m.Set(0, 0, 1.0);
  m.BeginCheckpoint();
  m.Set(0, 0, 2.0);
  m.Set(1, 1, 3.0);
  auto y = m.MultiplyDense({10.0, 100.0});
  m.EndCheckpoint();
  EXPECT_EQ(y, (std::vector<double>{20.0, 300.0}));
}

TEST(DenseMatrixTest, SerializeRestoreRoundTrip) {
  DenseMatrix m(8, 16);
  for (size_t r = 0; r < 8; ++r) {
    for (size_t c = 0; c < 16; ++c) {
      m.Set(r, c, static_cast<double>(r * 100 + c));
    }
  }
  DenseMatrix restored;  // shape restored from records
  m.SerializeRecords([&](uint64_t, const uint8_t* p, size_t n) {
    ASSERT_TRUE(restored.RestoreRecord(p, n).ok());
  });
  EXPECT_EQ(restored.rows(), 8u);
  EXPECT_EQ(restored.cols(), 16u);
  EXPECT_DOUBLE_EQ(restored.Get(7, 15), 715.0);
}

TEST(DenseMatrixTest, RestoreRejectsShapeMismatch) {
  DenseMatrix a(2, 2);
  a.Set(0, 0, 1);
  DenseMatrix b(3, 3);
  Status status = Status::Ok();
  a.SerializeRecords([&](uint64_t, const uint8_t* p, size_t n) {
    Status s = b.RestoreRecord(p, n);
    if (!s.ok()) {
      status = s;
    }
  });
  EXPECT_EQ(status.code(), StatusCode::kDataLoss);
}

TEST(DenseMatrixTest, ExtractPartitionRowsDoNotResurrect) {
  DenseMatrix m(10, 4);
  for (size_t r = 0; r < 10; ++r) {
    m.Set(r, 0, static_cast<double>(r + 1));
  }
  DenseMatrix other(10, 4);
  ASSERT_TRUE(m.ExtractPartition(0, 2, [&](uint64_t, const uint8_t* p, size_t n) {
              ASSERT_TRUE(other.RestoreRecord(p, n).ok());
            }).ok());
  // Every row value lives in exactly one instance.
  for (size_t r = 0; r < 10; ++r) {
    EXPECT_DOUBLE_EQ(m.Get(r, 0) + other.Get(r, 0), static_cast<double>(r + 1));
  }
  // Serialising the source must not include extracted rows.
  DenseMatrix again;
  m.SerializeRecords([&](uint64_t, const uint8_t* p, size_t n) {
    ASSERT_TRUE(again.RestoreRecord(p, n).ok());
  });
  for (size_t r = 0; r < 10; ++r) {
    EXPECT_DOUBLE_EQ(again.Get(r, 0), m.Get(r, 0));
  }
}

TEST(DenseMatrixTest, FillResetsEverythingPreservingShape) {
  DenseMatrix m(3, 4);
  m.Set(1, 2, 7.0);
  m.Fill(0.0);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_DOUBLE_EQ(m.Get(1, 2), 0.0);
  m.Fill(2.5);
  EXPECT_DOUBLE_EQ(m.Get(0, 0), 2.5);
  EXPECT_DOUBLE_EQ(m.Get(2, 3), 2.5);
}

TEST(DenseMatrixTest, FillDuringCheckpointGoesToOverlay) {
  DenseMatrix m(2, 2);
  m.Set(0, 0, 1.0);
  m.BeginCheckpoint();
  m.Fill(9.0);
  EXPECT_DOUBLE_EQ(m.Get(0, 0), 9.0);
  EXPECT_DOUBLE_EQ(m.Get(1, 1), 9.0);
  // Snapshot still shows the pre-checkpoint contents.
  DenseMatrix restored;
  m.SerializeRecords([&](uint64_t, const uint8_t* p, size_t n) {
    ASSERT_TRUE(restored.RestoreRecord(p, n).ok());
  });
  EXPECT_DOUBLE_EQ(restored.Get(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(restored.Get(1, 1), 0.0);
  m.EndCheckpoint();
  EXPECT_DOUBLE_EQ(m.Get(1, 1), 9.0);
}

TEST(DenseMatrixTest, BackendMetadata) {
  DenseMatrix m(4, 4);
  EXPECT_EQ(m.TypeName(), "DenseMatrix");
  EXPECT_EQ(m.EntryCount(), 16u);
  EXPECT_GE(m.SizeBytes(), 16 * sizeof(double));
  m.Clear();
  EXPECT_EQ(m.EntryCount(), 0u);
}

}  // namespace
}  // namespace sdg::state
