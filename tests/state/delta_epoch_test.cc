// Delta epoch protocol (state_backend.h): per backend, dirty tracking freezes
// at BeginCheckpoint, SerializeDirtyRecords emits only the frozen change set,
// and ResolveEpoch either commits the baseline or rolls the set forward so an
// abandoned epoch's next delta is a superset.
#include <gtest/gtest.h>

#include <vector>

#include "src/state/dense_matrix.h"
#include "src/state/keyed_dict.h"
#include "src/state/sparse_matrix.h"
#include "src/state/vector_state.h"

namespace sdg::state {
namespace {

struct DeltaRecord {
  uint64_t key_hash;
  std::vector<uint8_t> payload;
  bool tombstone;
};

// Runs one full epoch cycle: freeze, collect the dirty records, consolidate,
// resolve.
std::vector<DeltaRecord> RunEpoch(StateBackend& backend, bool commit = true) {
  backend.BeginCheckpoint();
  std::vector<DeltaRecord> out;
  backend.SerializeDirtyRecords(
      [&](uint64_t h, const uint8_t* p, size_t n, bool tomb) {
        out.push_back({h, std::vector<uint8_t>(p, p + n), tomb});
      });
  backend.EndCheckpoint();
  backend.ResolveEpoch(commit);
  return out;
}

TEST(DeltaEpochTest, NotReadyUntilBaseCommitted) {
  KeyedDict<int64_t, int64_t> d;
  EXPECT_FALSE(d.DeltaReady());
  d.EnableDeltaTracking();
  d.Put(1, 1);
  // No committed baseline yet: the first epoch must be a full base.
  EXPECT_FALSE(d.DeltaReady());
  RunEpoch(d);
  EXPECT_TRUE(d.DeltaReady());
}

TEST(DeltaEpochTest, KeyedDictEmitsOnlyChangedKeysAndTombstones) {
  KeyedDict<int64_t, int64_t> d;
  d.EnableDeltaTracking();
  for (int64_t i = 0; i < 100; ++i) {
    d.Put(i, i);
  }
  RunEpoch(d);  // base committed

  d.Put(3, 33);
  d.Erase(9);
  auto delta = RunEpoch(d);
  ASSERT_EQ(delta.size(), 2u);
  size_t tombs = 0;
  for (const auto& r : delta) {
    tombs += r.tombstone;
  }
  EXPECT_EQ(tombs, 1u);
  EXPECT_EQ(d.DeltaChangedCount(), 0u);

  // Delta-restoring onto a copy of the base reproduces the current state.
  KeyedDict<int64_t, int64_t> copy;
  for (int64_t i = 0; i < 100; ++i) {
    copy.Put(i, i);
  }
  for (const auto& r : delta) {
    if (r.tombstone) {
      ASSERT_TRUE(copy.RestoreErase(r.payload.data(), r.payload.size()).ok());
    } else {
      ASSERT_TRUE(copy.RestoreRecord(r.payload.data(), r.payload.size()).ok());
    }
  }
  EXPECT_EQ(copy.Size(), 99u);
  EXPECT_EQ(copy.Get(3), 33);
  EXPECT_FALSE(copy.Contains(9));
}

TEST(DeltaEpochTest, AbandonedEpochMergesIntoNextDelta) {
  KeyedDict<int64_t, int64_t> d;
  d.EnableDeltaTracking();
  d.Put(1, 1);
  d.Put(2, 2);
  RunEpoch(d);

  d.Put(1, 10);
  auto abandoned = RunEpoch(d, /*commit=*/false);
  EXPECT_EQ(abandoned.size(), 1u);

  // The abandoned change must reappear alongside the new one: a superset
  // delta restores correctly even if the abandoned epoch was secretly
  // durable (WriteMeta crash-after).
  d.Put(2, 20);
  auto next = RunEpoch(d);
  EXPECT_EQ(next.size(), 2u);
}

TEST(DeltaEpochTest, WritesDuringActiveCheckpointLandInNextEpoch) {
  KeyedDict<int64_t, int64_t> d;
  d.EnableDeltaTracking();
  d.Put(1, 1);
  RunEpoch(d);

  d.Put(2, 2);
  d.BeginCheckpoint();
  d.Put(3, 3);  // diverted to the overlay; dirty for the NEXT epoch
  std::vector<DeltaRecord> now;
  d.SerializeDirtyRecords([&](uint64_t h, const uint8_t* p, size_t n,
                              bool tomb) {
    now.push_back({h, std::vector<uint8_t>(p, p + n), tomb});
  });
  EXPECT_EQ(now.size(), 1u);  // only key 2
  d.EndCheckpoint();
  d.ResolveEpoch(true);

  auto next = RunEpoch(d);
  EXPECT_EQ(next.size(), 1u);  // only key 3
}

TEST(DeltaEpochTest, RestoreInvalidatesBaseline) {
  KeyedDict<int64_t, int64_t> d;
  d.EnableDeltaTracking();
  d.Put(1, 1);
  RunEpoch(d);
  EXPECT_TRUE(d.DeltaReady());

  // Restoring records (recovery) makes the tracked baseline meaningless: the
  // next epoch must be a full base again.
  KeyedDict<int64_t, int64_t> donor;
  donor.Put(5, 5);
  donor.SerializeRecords([&](uint64_t, const uint8_t* p, size_t n) {
    ASSERT_TRUE(d.RestoreRecord(p, n).ok());
  });
  EXPECT_FALSE(d.DeltaReady());
  RunEpoch(d);
  EXPECT_TRUE(d.DeltaReady());

  d.Clear();
  EXPECT_FALSE(d.DeltaReady());
}

TEST(DeltaEpochTest, VectorStateTracksBlocks) {
  VectorState v(4 * VectorState::kBlockSize);
  v.EnableDeltaTracking();
  v.Set(1, 1.0);
  RunEpoch(v);

  // One write -> exactly one block record in the delta.
  v.Set(2 * VectorState::kBlockSize + 5, 42.0);
  auto delta = RunEpoch(v);
  ASSERT_EQ(delta.size(), 1u);

  VectorState copy(4 * VectorState::kBlockSize);
  copy.Set(1, 1.0);
  for (const auto& r : delta) {
    ASSERT_TRUE(copy.RestoreRecord(r.payload.data(), r.payload.size()).ok());
  }
  EXPECT_EQ(copy.Get(2 * VectorState::kBlockSize + 5), 42.0);
  EXPECT_EQ(copy.Get(1), 1.0);
}

TEST(DeltaEpochTest, DenseMatrixTracksRows) {
  DenseMatrix m(8, 4);
  m.EnableDeltaTracking();
  m.Fill(1.0);
  RunEpoch(m);

  m.Set(5, 2, 9.0);
  m.Add(5, 3, 1.0);
  auto delta = RunEpoch(m);
  ASSERT_EQ(delta.size(), 1u);  // both writes hit row 5

  DenseMatrix copy(8, 4);
  copy.Fill(1.0);
  ASSERT_TRUE(copy.RestoreRecord(delta[0].payload.data(),
                                 delta[0].payload.size()).ok());
  EXPECT_EQ(copy.Get(5, 2), 9.0);
  EXPECT_EQ(copy.Get(5, 3), 2.0);
  EXPECT_EQ(copy.Get(4, 2), 1.0);
}

TEST(DeltaEpochTest, SparseMatrixTracksRows) {
  SparseMatrix m;
  m.EnableDeltaTracking();
  m.Set(10, 1, 1.0);
  m.Set(20, 1, 2.0);
  RunEpoch(m);

  m.Set(10, 2, 3.0);
  auto delta = RunEpoch(m);
  ASSERT_EQ(delta.size(), 1u);  // only row 10

  SparseMatrix copy;
  copy.Set(10, 1, 1.0);
  copy.Set(20, 1, 2.0);
  ASSERT_TRUE(copy.RestoreRecord(delta[0].payload.data(),
                                 delta[0].payload.size()).ok());
  EXPECT_EQ(copy.Get(10, 1), 1.0);
  EXPECT_EQ(copy.Get(10, 2), 3.0);
  EXPECT_EQ(copy.Get(20, 1), 2.0);
}

TEST(DeltaEpochTest, ExtractPartitionRejectedDuringCheckpointAndInvalidates) {
  KeyedDict<int64_t, int64_t> d;
  d.EnableDeltaTracking();
  d.Put(1, 1);
  d.Put(2, 2);
  RunEpoch(d);
  EXPECT_TRUE(d.DeltaReady());

  d.BeginCheckpoint();
  Status s =
      d.ExtractPartition(0, 2, [](uint64_t, const uint8_t*, size_t) {});
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
  d.EndCheckpoint();
  d.ResolveEpoch(true);

  // A successful repartition moves records out from under the tracked
  // baseline: the next epoch must fall back to a full base.
  ASSERT_TRUE(
      d.ExtractPartition(0, 1, [](uint64_t, const uint8_t*, size_t) {}).ok());
  EXPECT_FALSE(d.DeltaReady());
}

TEST(DeltaEpochTest, DefaultSerializeDirtyFallsBackToFull) {
  // A backend without delta support serves SerializeDirtyRecords as a full
  // pass with no tombstones (state_backend.h default).
  KeyedDict<int64_t, int64_t> d;  // tracking never enabled
  d.Put(1, 1);
  d.Put(2, 2);
  EXPECT_FALSE(d.DeltaReady());
}

}  // namespace
}  // namespace sdg::state
