// In-process end-to-end test of the serve front door: a real ElasticHead +
// ServeGateway, a real ElasticWorker with the replica feed enabled, and a
// KvClient speaking the request/response protocol over loopback TCP. The
// single-process complement of the multi-process chaos serve test.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/apps/kv.h"
#include "src/net/frame.h"
#include "src/runtime/elastic.h"
#include "src/serve/client.h"
#include "src/serve/gateway.h"

namespace sdg::serve {
namespace {

constexpr uint32_t kPartitions = 4;

class GatewayFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = std::filesystem::temp_directory_path() /
            ("sdg_gateway_test_" +
             std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
             "_" + ::testing::UnitTest::GetInstance()
                       ->current_test_info()
                       ->name());
    std::filesystem::remove_all(root_);
    std::filesystem::create_directories(root_);
  }
  void TearDown() override { std::filesystem::remove_all(root_); }

  elastic::ElasticHeadOptions HeadOptions() {
    elastic::ElasticHeadOptions h;
    h.state = "store";
    h.partitions = kPartitions;
    h.entries = {"put", "get", "del"};  // serve fleet entry order
    h.backup_root = (root_ / "backup").string();
    h.monitor_interval_ms = 20;
    h.migrate_timeout_ms = 20000;
    return h;
  }

  std::unique_ptr<elastic::ElasticWorker> MakeServeWorker(
      uint32_t member_id, uint16_t head_port, int ckpt_interval_ms) {
    apps::KvOptions kv;
    kv.partitions = kPartitions;
    auto g = apps::BuildKvSdg(kv);
    EXPECT_TRUE(g.ok());
    elastic::ElasticWorkerOptions w;
    w.member_id = member_id;
    w.name = "w" + std::to_string(member_id);
    w.head_port = head_port;
    w.state = "store";
    w.partitions = kPartitions;
    w.entries = {"put", "get", "del"};
    w.backup_root = (root_ / "backup").string();
    w.checkpoint_interval_ms = ckpt_interval_ms;
    w.serve_feed = true;
    w.forward_sinks = {"get"};
    return std::make_unique<elastic::ElasticWorker>(std::move(*g),
                                                    std::move(w));
  }

  std::filesystem::path root_;
};

TEST_F(GatewayFixture, PutGetDelOverTheWire) {
  elastic::ElasticHead head(HeadOptions());
  ASSERT_TRUE(head.Start().ok());
  auto w1 = MakeServeWorker(1, head.port(), /*ckpt_interval_ms=*/100);
  ASSERT_TRUE(w1->Start().ok());
  ASSERT_TRUE(w1->WaitJoined(10000));
  ASSERT_TRUE(head.WaitForAssignment(10000));

  GatewayOptions go;
  go.partitions = kPartitions;
  ServeGateway gw(&head, go);
  ASSERT_TRUE(gw.Start().ok());

  KvClient client({"127.0.0.1", head.port()});
  ASSERT_TRUE(client.Connect().ok());

  std::map<int64_t, std::string> model;
  for (int64_t k = 0; k < 60; ++k) {
    std::string v = "v" + std::to_string(k);
    auto resp = client.Put(k, v);
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    ASSERT_EQ(resp->code, net::kRespOk);
    model[k] = v;
  }
  for (int64_t k = 0; k < 60; k += 4) {
    auto resp = client.Del(k);
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    ASSERT_EQ(resp->code, net::kRespOk);
    model.erase(k);
  }

  // Strong gets see every write exactly (writes and reads ride separate
  // per-entry channels, so allow a short settle per key).
  for (int64_t k = 0; k < 60; ++k) {
    std::string want;
    if (auto it = model.find(k); it != model.end()) {
      want = it->second;
    }
    bool matched = false;
    for (int attempt = 0; attempt < 100 && !matched; ++attempt) {
      auto resp = client.Get(k);
      ASSERT_TRUE(resp.ok()) << resp.status().ToString();
      if (resp->code == net::kRespOk && resp->value == want) {
        matched = true;
      } else {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
    }
    EXPECT_TRUE(matched) << "key " << k;
  }

  auto st = gw.stats();
  EXPECT_EQ(st.puts, 60u);
  EXPECT_EQ(st.dels, 15u);
  EXPECT_GE(st.strong_gets, 60u);
  EXPECT_EQ(st.errors, 0u);
  EXPECT_GT(st.batches, 0u);

  client.Close();
  gw.Stop();
  w1->Stop();
  head.Stop();
}

TEST_F(GatewayFixture, BoundedStaleReadsComeFromReplica) {
  elastic::ElasticHead head(HeadOptions());
  ASSERT_TRUE(head.Start().ok());
  auto w1 = MakeServeWorker(1, head.port(), /*ckpt_interval_ms=*/50);
  ASSERT_TRUE(w1->Start().ok());
  ASSERT_TRUE(w1->WaitJoined(10000));
  ASSERT_TRUE(head.WaitForAssignment(10000));

  GatewayOptions go;
  go.partitions = kPartitions;
  ServeGateway gw(&head, go);
  ASSERT_TRUE(gw.Start().ok());

  KvClient client({"127.0.0.1", head.port()});
  ASSERT_TRUE(client.Connect().ok());

  for (int64_t k = 0; k < 40; ++k) {
    auto resp = client.Put(k, "r" + std::to_string(k));
    ASSERT_TRUE(resp.ok());
    ASSERT_EQ(resp->code, net::kRespOk);
  }

  // Wait until every partition's replica has applied at least one epoch by
  // probing with stale gets (the fleet is quiescing, so replicas converge).
  uint64_t replica_answers = 0;
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(20);
  for (int64_t k = 0; k < 40 && replica_answers < 40;) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "replicas never caught up: " << replica_answers << " answers, "
        << gw.stats().replica_epochs_applied << " epochs applied";
    auto resp = client.Get(k, /*stale=*/true, /*max_epoch_lag=*/8);
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    ASSERT_EQ(resp->code, net::kRespOk);
    if ((resp->flags & net::kRespFromReplica) != 0 &&
        resp->value == "r" + std::to_string(k)) {
      // An admissible replica may briefly lag (max_epoch_lag epochs) while
      // the feed drains, so a stale value is retried, not failed — but the
      // replica must CONVERGE to the acked value before the deadline.
      EXPECT_GT(resp->epoch, 0u);
      ++replica_answers;
      ++k;
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }
  EXPECT_EQ(replica_answers, 40u);
  EXPECT_GT(gw.stats().replica_hits, 0u);
  EXPECT_GT(gw.stats().replica_epochs_applied, 0u);

  client.Close();
  gw.Stop();
  w1->Stop();
  head.Stop();
}

TEST_F(GatewayFixture, OverloadShedsWithOverloadedAndRecovers) {
  elastic::ElasticHead head(HeadOptions());
  ASSERT_TRUE(head.Start().ok());
  auto w1 = MakeServeWorker(1, head.port(), /*ckpt_interval_ms=*/100);
  ASSERT_TRUE(w1->Start().ok());
  ASSERT_TRUE(w1->WaitJoined(10000));
  ASSERT_TRUE(head.WaitForAssignment(10000));

  GatewayOptions go;
  go.partitions = kPartitions;
  go.admission.high_water = 64;
  go.admission.low_water = 8;
  ServeGateway gw(&head, go);
  ASSERT_TRUE(gw.Start().ok());

  KvClient client({"127.0.0.1", head.port()});
  ASSERT_TRUE(client.Connect().ok());

  // Pipeline a burst far past the high-water mark. Every request must get a
  // response — ok or overloaded, never silence.
  constexpr int kBurst = 1500;
  for (int i = 0; i < kBurst; ++i) {
    net::RequestMsg req;
    req.request_id = client.NextRequestId();
    req.op = net::kOpPut;
    req.key = 500000 + i;
    req.value = "burst";
    ASSERT_TRUE(client.Send(req).ok());
  }
  int ok = 0, overloaded = 0;
  for (int i = 0; i < kBurst; ++i) {
    auto resp = client.Recv();
    ASSERT_TRUE(resp.ok()) << "response " << i << " lost: "
                           << resp.status().ToString();
    if (resp->code == net::kRespOk) {
      ++ok;
    } else if (resp->code == net::kRespOverloaded) {
      ++overloaded;
    }
  }
  EXPECT_GT(overloaded, 0) << "burst never shed";
  EXPECT_GT(ok, 0) << "everything shed";
  EXPECT_EQ(ok + overloaded, kBurst);
  EXPECT_GT(gw.stats().shed, 0u);
  EXPECT_EQ(gw.admission().shed(), gw.stats().shed);

  // Hysteresis: once the backlog drains below low water, service resumes.
  bool recovered = false;
  for (int attempt = 0; attempt < 200 && !recovered; ++attempt) {
    auto resp = client.Put(1, "after");
    ASSERT_TRUE(resp.ok());
    if (resp->code == net::kRespOk) {
      recovered = true;
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
  EXPECT_TRUE(recovered) << "gateway stuck shedding after drain";

  client.Close();
  gw.Stop();
  w1->Stop();
  head.Stop();
}

}  // namespace
}  // namespace sdg::serve
