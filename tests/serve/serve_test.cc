// Unit tests for the serve front door's control pieces: admission hysteresis,
// the SLO-adaptive batch controller against a synthetic latency/batch model,
// and the replica pipeline (SerializeEpochBlobs -> EpochTail -> ReplicaView /
// ReplicaTable) including the staleness bound and owner-change re-basing.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/checkpoint/epoch_tail.h"
#include "src/common/value.h"
#include "src/net/frame.h"
#include "src/serve/admission.h"
#include "src/serve/batcher.h"
#include "src/serve/replica_table.h"
#include "src/state/chunk.h"
#include "src/state/keyed_dict.h"
#include "src/state/replica_view.h"

namespace sdg::serve {
namespace {

using KvDict = state::KeyedDict<int64_t, std::string>;

// --- Admission hysteresis ----------------------------------------------------

TEST(AdmissionTest, HysteresisBand) {
  AdmissionController ac({/*high_water=*/100, /*low_water=*/20});

  // Below the high-water mark: admitting.
  ac.Observe(99);
  EXPECT_FALSE(ac.shedding());
  EXPECT_TRUE(ac.Admit());

  // Crossing high water flips to shedding.
  ac.Observe(100);
  EXPECT_TRUE(ac.shedding());
  EXPECT_FALSE(ac.Admit());

  // Anywhere inside the band while shedding: still shedding. This is the
  // hysteresis — a single threshold would flap admit/shed here.
  ac.Observe(55);
  EXPECT_TRUE(ac.shedding());
  ac.Observe(21);
  EXPECT_TRUE(ac.shedding());

  // Only draining to low water readmits.
  ac.Observe(20);
  EXPECT_FALSE(ac.shedding());
  EXPECT_TRUE(ac.Admit());

  // And the signal must climb all the way back to high water to shed again.
  ac.Observe(99);
  EXPECT_FALSE(ac.shedding());
  ac.Observe(150);
  EXPECT_TRUE(ac.shedding());

  EXPECT_EQ(ac.accepted(), 2u);
  EXPECT_EQ(ac.shed(), 1u);
}

// --- Batch controller --------------------------------------------------------

// Feeds the batcher full windows of a synthetic latency model until the batch
// size settles. Returns the settled batch size.
size_t RunToConvergence(AdaptiveBatcher& b, double (*p99_of_batch)(size_t),
                        int max_rounds = 200) {
  size_t last = 0;
  int stable = 0;
  for (int round = 0; round < max_rounds && stable < 5; ++round) {
    size_t batch = b.batch_size();
    double ms = p99_of_batch(batch);
    for (size_t i = 0; i < b.options().window; ++i) {
      b.RecordLatencyMs(ms);
    }
    stable = (b.batch_size() == last) ? stable + 1 : 0;
    last = b.batch_size();
  }
  return last;
}

// Linear queueing model: p99 = 0.05 ms per batched request. With a 10 ms SLO
// the breach knee is at batch 200 and the grow ceiling (headroom 0.7) at 140.
double LinearModel(size_t batch) { return 0.05 * static_cast<double>(batch); }

TEST(BatcherTest, ConvergesIntoSloBandFromBelow) {
  BatcherOptions o;
  o.slo_p99_ms = 10.0;
  o.initial_batch = 4;
  o.max_batch = 512;
  AdaptiveBatcher b(o);

  size_t settled = RunToConvergence(b, LinearModel);
  // Settled inside the hold band: past the grow ceiling, under the breach.
  EXPECT_GE(LinearModel(settled), o.headroom * o.slo_p99_ms);
  EXPECT_LE(LinearModel(settled), o.slo_p99_ms);
  EXPECT_GT(b.grow_steps(), 0u);
  EXPECT_GT(b.last_window_p99_ms(), 0.0);
}

TEST(BatcherTest, ConvergesIntoSloBandFromAbove) {
  BatcherOptions o;
  o.slo_p99_ms = 10.0;
  o.initial_batch = 512;
  o.max_batch = 512;
  AdaptiveBatcher b(o);

  size_t settled = RunToConvergence(b, LinearModel);
  EXPECT_LE(LinearModel(settled), o.slo_p99_ms);
  // 512 -> 25.6 ms, 256 -> 12.8 ms: at least two multiplicative decreases.
  EXPECT_GE(b.shrink_steps(), 2u);
}

TEST(BatcherTest, HopelessSloClampsToMinBatch) {
  BatcherOptions o;
  o.slo_p99_ms = 1.0;
  o.initial_batch = 64;
  o.min_batch = 1;
  AdaptiveBatcher b(o);

  // Even a batch of one breaches the SLO: the controller must floor at
  // min_batch, not collapse to zero.
  size_t settled =
      RunToConvergence(b, [](size_t) { return 50.0; });
  EXPECT_EQ(settled, o.min_batch);
}

TEST(BatcherTest, HoldsInsideBand) {
  BatcherOptions o;
  o.slo_p99_ms = 10.0;
  o.initial_batch = 32;
  AdaptiveBatcher b(o);

  // p99 between headroom*SLO and SLO: no movement in either direction.
  for (size_t i = 0; i < 10 * o.window; ++i) {
    b.RecordLatencyMs(8.0);
  }
  EXPECT_EQ(b.batch_size(), o.initial_batch);
  EXPECT_EQ(b.grow_steps(), 0u);
  EXPECT_EQ(b.shrink_steps(), 0u);
}

// --- Replica pipeline --------------------------------------------------------

std::unique_ptr<KvDict> MakeDict() { return std::make_unique<KvDict>(); }

// Cuts one epoch from `dict` the way the worker's Checkpoint does: under the
// delta protocol, emitting a delta iff the dirty tracker is armed and the
// tail does not demand a base.
checkpoint::EpochTail::Entry CutEpoch(KvDict& dict, checkpoint::EpochTail& tail,
                                      uint64_t epoch) {
  dict.BeginCheckpoint();
  bool delta = dict.DeltaReady() && !tail.NeedsBase();
  auto blobs = checkpoint::SerializeEpochBlobs(dict, "store", /*num_chunks=*/2,
                                               delta, state::kChunkCodecPrefix);
  dict.EndCheckpoint();
  dict.ResolveEpoch(blobs.ok());
  EXPECT_TRUE(blobs.ok()) << blobs.status().ToString();
  if (delta) {
    delta = tail.PushDelta(epoch, *blobs);
  }
  if (!delta) {
    tail.PushBase(epoch, *blobs);
  }
  return checkpoint::EpochTail::Entry{epoch, !delta, std::move(*blobs)};
}

TEST(ReplicaPipelineTest, BaseAndDeltaRoundTrip) {
  auto owner = MakeDict();
  owner->EnableDeltaTracking();
  checkpoint::EpochTail tail(/*max_deltas=*/8);
  state::ReplicaView view(MakeDict());

  owner->Put(1, "one");
  owner->Put(2, "two");
  auto e1 = CutEpoch(*owner, tail, 1);
  EXPECT_TRUE(e1.base);  // empty tail demands a base
  ASSERT_TRUE(view.ApplyBase(7, 1, e1.chunks).ok());

  // Delta epoch: one overwrite, one insert, one tombstone.
  owner->Put(2, "two'");
  owner->Put(3, "three");
  owner->Erase(1);
  auto e2 = CutEpoch(*owner, tail, 2);
  EXPECT_FALSE(e2.base);
  ASSERT_TRUE(view.ApplyDelta(7, 2, e2.chunks).ok());

  bool ok = view.ReadWithin(0, [&](const state::StateBackend& b, uint64_t ep) {
    EXPECT_EQ(ep, 2u);
    const auto* dict = dynamic_cast<const KvDict*>(&b);
    ASSERT_NE(dict, nullptr);
    EXPECT_FALSE(dict->Get(1).has_value());  // tombstone applied
    EXPECT_EQ(dict->Get(2).value_or(""), "two'");
    EXPECT_EQ(dict->Get(3).value_or(""), "three");
  });
  EXPECT_TRUE(ok);

  // Duplicate replay (reconnect) is a no-op, not corruption.
  ASSERT_TRUE(view.ApplyDelta(7, 2, e2.chunks).ok());
  EXPECT_EQ(view.applied_epoch(), 2u);
}

TEST(ReplicaPipelineTest, TailReplayCatchesUpFreshSubscriber) {
  auto owner = MakeDict();
  owner->EnableDeltaTracking();
  checkpoint::EpochTail tail(/*max_deltas=*/8);

  owner->Put(10, "a");
  CutEpoch(*owner, tail, 1);
  owner->Put(11, "b");
  CutEpoch(*owner, tail, 2);
  owner->Erase(10);
  owner->Put(12, "c");
  CutEpoch(*owner, tail, 3);

  // A fresh subscriber replays the retained base + deltas in order.
  state::ReplicaView view(MakeDict());
  for (const auto& e : tail.Replay()) {
    if (e.base) {
      ASSERT_TRUE(view.ApplyBase(7, e.epoch, e.chunks).ok());
    } else {
      ASSERT_TRUE(view.ApplyDelta(7, e.epoch, e.chunks).ok());
    }
  }
  EXPECT_EQ(view.applied_epoch(), 3u);
  bool ok = view.ReadWithin(0, [&](const state::StateBackend& b, uint64_t) {
    const auto* dict = dynamic_cast<const KvDict*>(&b);
    ASSERT_NE(dict, nullptr);
    EXPECT_FALSE(dict->Get(10).has_value());
    EXPECT_EQ(dict->Get(11).value_or(""), "b");
    EXPECT_EQ(dict->Get(12).value_or(""), "c");
  });
  EXPECT_TRUE(ok);
}

TEST(ReplicaPipelineTest, DeltaCapForcesRebase) {
  auto owner = MakeDict();
  owner->EnableDeltaTracking();
  checkpoint::EpochTail tail(/*max_deltas=*/2);

  owner->Put(1, "x");
  EXPECT_TRUE(CutEpoch(*owner, tail, 1).base);
  owner->Put(2, "x");
  EXPECT_FALSE(CutEpoch(*owner, tail, 2).base);
  owner->Put(3, "x");
  EXPECT_FALSE(CutEpoch(*owner, tail, 3).base);
  // Delta run at its cap: the next epoch must re-base, bounding replay.
  owner->Put(4, "x");
  EXPECT_TRUE(CutEpoch(*owner, tail, 4).base);
  EXPECT_EQ(tail.Replay().size(), 1u);
}

TEST(ReplicaViewTest, StalenessBoundAgainstAnnounceWatermark) {
  auto owner = MakeDict();
  owner->EnableDeltaTracking();
  checkpoint::EpochTail tail;
  state::ReplicaView view(MakeDict());

  owner->Put(1, "v");
  auto e1 = CutEpoch(*owner, tail, 5);
  ASSERT_TRUE(view.ApplyBase(7, 5, e1.chunks).ok());

  // In sync: admissible even at lag 0.
  EXPECT_TRUE(view.ReadWithin(0, [](const state::StateBackend&, uint64_t) {}));

  // The owner cuts epochs 6..8 whose blobs never arrive (wedged feed). The
  // announce watermark moves; the replica must fail the bound, not serve
  // arbitrarily old data.
  view.Announce(7, 8);
  EXPECT_FALSE(view.ReadWithin(2, [](const state::StateBackend&, uint64_t) {}));
  EXPECT_TRUE(view.ReadWithin(3, [](const state::StateBackend&, uint64_t) {}));
}

TEST(ReplicaViewTest, OwnerChangeRefusesReadsUntilNewBase) {
  auto owner = MakeDict();
  owner->EnableDeltaTracking();
  checkpoint::EpochTail tail;
  state::ReplicaView view(MakeDict());

  owner->Put(1, "v");
  auto e1 = CutEpoch(*owner, tail, 3);
  ASSERT_TRUE(view.ApplyBase(7, 3, e1.chunks).ok());
  EXPECT_TRUE(view.ReadWithin(8, [](const state::StateBackend&, uint64_t) {}));

  // The partition migrates: member 9 announces. Reads are refused however
  // generous the lag bound — the applied base belongs to the old owner.
  view.Announce(9, 1);
  EXPECT_FALSE(
      view.ReadWithin(1000, [](const state::StateBackend&, uint64_t) {}));

  // So are deltas from the new owner (no matching base yet).
  owner->Put(2, "w");
  auto stray = CutEpoch(*owner, tail, 4);
  EXPECT_FALSE(view.ApplyDelta(9, 4, stray.chunks).ok());

  // The new owner's base restores service.
  ASSERT_TRUE(view.ApplyBase(9, 4, stray.chunks).ok());
  EXPECT_TRUE(view.ReadWithin(0, [](const state::StateBackend&, uint64_t) {}));
}

TEST(ReplicaTableTest, FeedEventsAnswerBoundedStaleReads) {
  ReplicaTable table(/*partitions=*/1);
  auto owner = MakeDict();
  owner->EnableDeltaTracking();
  checkpoint::EpochTail tail;

  owner->Put(5, "five");
  auto e1 = CutEpoch(*owner, tail, 1);

  net::ReplicaEpochMsg announce;
  announce.partition = 0;
  announce.member_id = 2;
  announce.kind = net::kEpochAnnounce;
  announce.epoch = 1;
  announce.queue_depth = 33;
  table.OnEpoch(announce);

  // Announce landed but no blobs yet: nothing to answer from.
  EXPECT_FALSE(table.TryGet(5, 8).admissible);
  EXPECT_EQ(table.owner_queue_depth(), 33u);

  net::ReplicaEpochMsg base = announce;
  base.kind = net::kEpochBase;
  base.chunks = e1.chunks;
  table.OnEpoch(base);

  auto hit = table.TryGet(5, 0);
  EXPECT_TRUE(hit.admissible);
  EXPECT_TRUE(hit.found);
  EXPECT_EQ(hit.value, "five");
  EXPECT_EQ(hit.epoch, 1u);

  auto miss = table.TryGet(6, 0);
  EXPECT_TRUE(miss.admissible);
  EXPECT_FALSE(miss.found);

  // The owner announces epoch 4 without blobs arriving: lag 3 exceeds a
  // client bound of 2 and the read falls back to the strong path.
  announce.epoch = 4;
  table.OnEpoch(announce);
  EXPECT_FALSE(table.TryGet(5, 2).admissible);
  EXPECT_TRUE(table.TryGet(5, 3).admissible);
  EXPECT_EQ(table.epochs_applied(), 1u);
}

}  // namespace
}  // namespace sdg::serve
