// Chaos for the serve path: a client streams requests at a real serving
// fleet (in-process head + gateway, real elastic_worker child processes with
// the replica feed on) while a worker is SIGKILLed mid-stream and recovered.
//
// The contract under fire: every request gets a response, and every response
// is either kRespOk, kRespOverloaded (shed before touching state), or
// kRespError (e.g. the owner died mid-request — retriable, puts and dels are
// idempotent). A client that retries on anything but kRespOk must end up
// with exactly the state it wrote: acked writes survive the kill, and no
// response ever carries a wrong answer — not during the outage, not after.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "src/net/frame.h"
#include "src/runtime/elastic.h"
#include "src/serve/client.h"
#include "src/serve/gateway.h"
#include "tests/common/scoped_test_dir.h"
#include "tests/harness/process_fleet.h"

#ifndef SDG_ELASTIC_WORKER_BIN
#error "SDG_ELASTIC_WORKER_BIN must point at the elastic_worker binary"
#endif

namespace sdg::serve {
namespace {

constexpr uint32_t kPartitions = 4;
constexpr int64_t kKeys = 120;
constexpr int64_t kKillAfter = 40;  // keys written before the SIGKILL

std::string ValueOf(int64_t k) { return "v" + std::to_string(k); }

TEST(ChaosServeTest, SigkillServingWorkerMidStream) {
  ScopedTestDir dir("chaos_serve");
  elastic::ElasticHeadOptions h;
  h.state = "store";
  h.partitions = kPartitions;
  h.entries = {"put", "get", "del"};
  h.backup_root = (dir.path() / "backup").string();
  h.monitor_interval_ms = 50;
  h.migrate_timeout_ms = 20000;
  h.use_mux = harness::ChaosMuxEnabled();
  elastic::ElasticHead head(h);
  ASSERT_TRUE(head.Start().ok());

  GatewayOptions go;
  go.partitions = kPartitions;
  // Short deadlines: the outage must surface as retriable responses, not a
  // gateway wedged for the elastic default.
  go.request_timeout_ms = 2000;
  go.inject_deadline_ms = 2000;
  ServeGateway gw(&head, go);
  ASSERT_TRUE(gw.Start().ok());

  uint16_t data_port = harness::PickFreePort();
  ASSERT_NE(data_port, 0);
  auto spawn = [&]() -> pid_t {
    harness::WorkerSpec spec;
    spec.app = "kv";
    spec.head_port = head.port();
    spec.member_id = 1;
    spec.data_port = data_port;
    spec.backup_root = h.backup_root;
    spec.partitions = kPartitions;
    spec.ckpt_interval_ms = 100;
    spec.serve = true;
    spec.mux = harness::ChaosMuxEnabled();
    return harness::SpawnElasticWorker(SDG_ELASTIC_WORKER_BIN, spec);
  };
  pid_t pid = spawn();
  ASSERT_GT(pid, 0);
  ASSERT_TRUE(head.WaitForMembers(1, 20000));
  ASSERT_TRUE(head.WaitForAssignment(20000));

  // The client thread: writes every key with retry-until-acked, and after
  // each acked write strong-reads an earlier acked key — an OK response with
  // the wrong value at any point is an immediate failure. Counts outcomes.
  std::atomic<bool> killed{false};
  std::atomic<uint64_t> retriable{0};
  std::atomic<int64_t> progress{0};
  std::atomic<bool> client_failed{false};
  std::thread client_thread([&] {
    KvClient client({"127.0.0.1", head.port()});
    if (!client.Connect().ok()) {
      client_failed = true;
      return;
    }
    auto retry_until_ok = [&](auto&& fn, const char* what,
                              int64_t k) -> Result<net::ResponseMsg> {
      for (int attempt = 0; attempt < 600; ++attempt) {
        auto resp = fn();
        if (!resp.ok()) {
          // Transport-level failure (e.g. recv timeout): reconnect and keep
          // retrying — the ops are idempotent.
          retriable.fetch_add(1);
          client.Close();
          if (!client.Connect().ok()) {
            std::this_thread::sleep_for(std::chrono::milliseconds(100));
          }
          continue;
        }
        if (resp->code == net::kRespOk) {
          return resp;
        }
        // Shed or errored: both retriable, neither touched state visibly.
        EXPECT_TRUE(resp->code == net::kRespOverloaded ||
                    resp->code == net::kRespError)
            << what << " key " << k << ": unknown response code "
            << static_cast<int>(resp->code);
        retriable.fetch_add(1);
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
      return Status(StatusCode::kDeadlineExceeded, "retries exhausted");
    };

    for (int64_t k = 0; k < kKeys; ++k) {
      auto put = retry_until_ok(
          [&] { return client.Put(k, ValueOf(k)); }, "put", k);
      if (!put.ok()) {
        ADD_FAILURE() << "put " << k << " never acked: "
                      << put.status().ToString();
        client_failed = true;
        return;
      }
      // Read back an already-acked key through the dataflow. Puts and gets
      // ride separate per-entry channels with no cross-channel ordering, so
      // a get may briefly race ahead of the put it chases — but it must
      // CONVERGE to the acked value; anything else is a lost write.
      int64_t probe = k / 2;
      bool converged = false;
      // Time-bounded, not round-bounded: convergence waits out the respawned
      // worker's restore+replay, whose duration is load-dependent — a round
      // count silently shrinks the wall-clock budget as responses get faster.
      // Generous because a parallel suite run on a small host can stretch
      // the respawn+replay well past what the test costs alone; the ctest
      // timeout (120 s) still bounds a true wedge.
      auto converge_deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(90);
      while (!converged &&
             std::chrono::steady_clock::now() < converge_deadline) {
        auto get = retry_until_ok(
            [&] { return client.Get(probe); }, "get", probe);
        if (get.ok() && get->value == ValueOf(probe)) {
          converged = true;
        } else {
          std::this_thread::sleep_for(std::chrono::milliseconds(20));
        }
      }
      if (!converged) {
        ADD_FAILURE() << "strong get " << probe
                      << " never converged to the acked value";
        client_failed = true;
        return;
      }
      progress.store(k + 1);
    }
  });

  // Mid-stream: SIGKILL the only serving worker and respawn it under the
  // same member id / data port / backup root. The rejoin path restores the
  // last checkpoint and the head replays its unacked logs — no operator
  // action needed beyond the respawn.
  while (progress.load() < kKillAfter && !client_failed.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  if (!client_failed.load()) {
    harness::KillHard(pid);
    killed = true;
    pid = spawn();
    EXPECT_GT(pid, 0);
  }

  client_thread.join();
  ASSERT_FALSE(client_failed.load());
  EXPECT_EQ(progress.load(), kKeys);

  // Drain, then verify the exact final contents through strong gets — acked
  // writes from before the kill included.
  ASSERT_TRUE(head.AwaitQuiesce(60000));
  KvClient verifier({"127.0.0.1", head.port()});
  ASSERT_TRUE(verifier.Connect().ok());
  for (int64_t k = 0; k < kKeys; ++k) {
    bool matched = false;
    for (int attempt = 0; attempt < 200 && !matched; ++attempt) {
      auto resp = verifier.Get(k);
      ASSERT_TRUE(resp.ok()) << resp.status().ToString();
      if (resp->code == net::kRespOk) {
        ASSERT_EQ(resp->value, ValueOf(k)) << "key " << k << " lost or wrong";
        matched = true;
      } else {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
    }
    ASSERT_TRUE(matched) << "key " << k << " unreadable after recovery";
  }

  // Bounded-stale reads after the dust settles: an admissible replica answer
  // must also be exact (the fleet is idle).
  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  for (int64_t k = 0; k < kKeys; k += 7) {
    auto resp = verifier.Get(k, /*stale=*/true, /*max_epoch_lag=*/8);
    ASSERT_TRUE(resp.ok());
    if (resp->code == net::kRespOk) {
      EXPECT_EQ(resp->value, ValueOf(k)) << "stale get " << k;
    }
  }

  EXPECT_TRUE(killed.load());
  verifier.Close();
  harness::StopSoft(pid);
  gw.Stop();
  head.Stop();
}

}  // namespace
}  // namespace sdg::serve
