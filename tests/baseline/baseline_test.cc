// Tests of the comparator engines (mini Streaming-Spark / mini Naiad).
#include <gtest/gtest.h>

#include "src/baseline/batched_stream.h"
#include "src/baseline/iterative_batch.h"
#include "src/baseline/sync_kv.h"

namespace sdg::baseline {
namespace {

TEST(BatchedStreamTest, ProcessesAndCounts) {
  apps::TextGenerator gen(100, 10, 42);
  BatchedWordCountOptions opt;
  opt.batch_size = 100;
  opt.per_batch_overhead_s = 0;
  opt.window_s = 0.05;
  auto r = RunBatchedWordCount(opt, gen, 0.2);
  EXPECT_GT(r.items_processed, 0u);
  EXPECT_GT(r.batches, 0u);
  EXPECT_GT(r.windows, 1u);
  EXPECT_GT(r.distinct_words, 0u);
  EXPECT_GT(r.throughput_items_s, 0.0);
}

TEST(BatchedStreamTest, OverheadReducesThroughput) {
  apps::TextGenerator gen1(100, 10, 42);
  apps::TextGenerator gen2(100, 10, 42);
  BatchedWordCountOptions cheap;
  cheap.batch_size = 200;
  cheap.per_batch_overhead_s = 0;
  cheap.window_s = 10;
  BatchedWordCountOptions pricey = cheap;
  pricey.per_batch_overhead_s = 0.005;
  auto fast = RunBatchedWordCount(cheap, gen1, 0.3);
  auto slow = RunBatchedWordCount(pricey, gen2, 0.3);
  EXPECT_GT(fast.throughput_items_s, slow.throughput_items_s * 1.5);
}

TEST(BatchedStreamTest, SmallWindowsCollapseSparkStyle) {
  // With per-window state regeneration, shrinking the window slashes
  // throughput — the Fig. 8 collapse.
  apps::TextGenerator gen1(20000, 10, 7);
  apps::TextGenerator gen2(20000, 10, 7);
  BatchedWordCountOptions wide;
  wide.batch_size = 500;
  wide.per_batch_overhead_s = 0.001;
  wide.copy_state_per_window = true;
  wide.window_s = 0.5;
  BatchedWordCountOptions narrow = wide;
  narrow.window_s = 0.005;
  auto ok = RunBatchedWordCount(wide, gen1, 0.4);
  auto collapsed = RunBatchedWordCount(narrow, gen2, 0.4);
  EXPECT_GT(ok.throughput_items_s, collapsed.throughput_items_s);
}

TEST(SyncKvTest, ServesWorkloadAndCheckpoints) {
  apps::KvWorkload wl(1000, 128, 0.5, 3);
  SyncKvOptions opt;
  opt.checkpoint_interval_s = 0.05;
  opt.checkpoint_to_disk = false;
  auto r = RunSyncCheckpointKv(opt, wl, /*preload_keys=*/5000,
                               /*value_size=*/128, /*duration_s=*/0.3);
  EXPECT_GT(r.throughput_ops_s, 0.0);
  EXPECT_GT(r.checkpoints, 2u);
  EXPECT_GT(r.state_bytes, 5000u * 128u);
  EXPECT_GT(r.latency_ms.count, 0u);
}

TEST(SyncKvTest, LargerStateMeansLongerPauses) {
  apps::KvWorkload wl1(1000, 64, 0.5, 3);
  apps::KvWorkload wl2(1000, 64, 0.5, 3);
  SyncKvOptions opt;
  opt.checkpoint_interval_s = 0.05;
  opt.checkpoint_to_disk = false;
  auto small = RunSyncCheckpointKv(opt, wl1, 1000, 64, 0.3);
  auto large = RunSyncCheckpointKv(opt, wl2, 200000, 64, 0.3);
  EXPECT_GT(large.max_checkpoint_s, small.max_checkpoint_s);
  // The stop-the-world pause shows up in tail latency.
  EXPECT_GT(large.latency_ms.max, small.latency_ms.max);
}

TEST(IterativeLrTest, TrainsAndReportsThroughput) {
  apps::LrDataGenerator gen(8, 21);
  std::vector<apps::LrDataGenerator::Example> data;
  for (int i = 0; i < 5000; ++i) {
    data.push_back(gen.Next());
  }
  IterativeLrOptions opt;
  opt.workers = 2;
  opt.iterations = 5;
  opt.task_launch_overhead_s = 0.0005;
  opt.learning_rate = 2.0;
  auto r = RunIterativeBatchLr(opt, data);
  EXPECT_GT(r.throughput_examples_s, 0.0);
  ASSERT_EQ(r.weights.size(), 8u);

  // Direction of learned weights must correlate with the ground truth.
  double dot = 0, norm_a = 0, norm_b = 0;
  for (size_t i = 0; i < 8; ++i) {
    dot += r.weights[i] * gen.true_weights()[i];
    norm_a += r.weights[i] * r.weights[i];
    norm_b += gen.true_weights()[i] * gen.true_weights()[i];
  }
  EXPECT_GT(dot / std::sqrt(norm_a * norm_b), 0.7);
}

TEST(IterativeLrTest, TaskOverheadHurtsThroughput) {
  apps::LrDataGenerator gen(4, 33);
  std::vector<apps::LrDataGenerator::Example> data;
  for (int i = 0; i < 2000; ++i) {
    data.push_back(gen.Next());
  }
  IterativeLrOptions cheap;
  cheap.iterations = 4;
  cheap.task_launch_overhead_s = 0;
  IterativeLrOptions pricey = cheap;
  pricey.task_launch_overhead_s = 0.01;
  auto fast = RunIterativeBatchLr(cheap, data);
  auto slow = RunIterativeBatchLr(pricey, data);
  EXPECT_GT(fast.throughput_examples_s, slow.throughput_examples_s);
}

TEST(IterativeLrTest, EmptyDataset) {
  IterativeLrOptions opt;
  auto r = RunIterativeBatchLr(opt, {});
  EXPECT_EQ(r.throughput_examples_s, 0.0);
}

}  // namespace
}  // namespace sdg::baseline
