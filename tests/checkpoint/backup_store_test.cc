#include "src/checkpoint/backup_store.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>

#include "src/common/clock.h"
#include "tests/common/scoped_test_dir.h"

namespace sdg::checkpoint {
namespace {

namespace fs = std::filesystem;

class BackupStoreTest : public ::testing::Test {
 protected:
  BackupStoreOptions Options(uint32_t backups, uint64_t throttle = 0) {
    BackupStoreOptions o;
    o.root = dir_.path();
    o.num_backup_nodes = backups;
    o.throttle_bytes_per_sec = throttle;
    o.io_threads = 2;
    return o;
  }

  // RAII: the directory disappears even when a test fails mid-way.
  ScopedTestDir dir_{"store_test"};
};

std::vector<std::vector<uint8_t>> MakeChunks(int n, size_t size) {
  std::vector<std::vector<uint8_t>> chunks;
  for (int i = 0; i < n; ++i) {
    chunks.emplace_back(size, static_cast<uint8_t>(i));
  }
  return chunks;
}

TEST_F(BackupStoreTest, WriteReadRoundTrip) {
  BackupStore store(Options(2));
  auto chunks = MakeChunks(4, 1024);
  ASSERT_TRUE(store.WriteChunks(0, 1, "se0", chunks).ok());
  auto back = store.ReadChunks(0, 1, "se0", 4);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(*back, chunks);
}

TEST_F(BackupStoreTest, ChunksSpreadAcrossBackupDirs) {
  BackupStore store(Options(2));
  ASSERT_TRUE(store.WriteChunks(0, 1, "se0", MakeChunks(4, 16)).ok());
  size_t in_backup0 = 0, in_backup1 = 0;
  for (const auto& e : fs::directory_iterator(dir_.path() / "backup0")) {
    (void)e;
    ++in_backup0;
  }
  for (const auto& e : fs::directory_iterator(dir_.path() / "backup1")) {
    (void)e;
    ++in_backup1;
  }
  EXPECT_EQ(in_backup0, 2u);  // chunks 0, 2
  EXPECT_EQ(in_backup1, 2u);  // chunks 1, 3
}

TEST_F(BackupStoreTest, MetaRoundTripAndLatestEpoch) {
  BackupStore store(Options(1));
  CheckpointMeta meta;
  meta.epoch = 3;
  meta.tasks.push_back({/*task=*/1, /*instance=*/0, /*emit_clock=*/42,
                        {{2, 0, 17}}});
  meta.states.push_back({/*state=*/0, /*instance=*/0, /*num_chunks=*/4,
                         /*record_count=*/100});
  ASSERT_TRUE(store.WriteMeta(5, 3, meta).ok());

  auto latest = store.LatestEpoch(5);
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(*latest, 3u);

  auto back = store.ReadMeta(5, 3);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->epoch, 3u);
  ASSERT_EQ(back->tasks.size(), 1u);
  EXPECT_EQ(back->tasks[0].emit_clock, 42u);
  ASSERT_EQ(back->tasks[0].last_seen.size(), 1u);
  EXPECT_EQ(back->tasks[0].last_seen[0].ts, 17u);
  ASSERT_EQ(back->states.size(), 1u);
  EXPECT_EQ(back->states[0].record_count, 100u);
}

TEST_F(BackupStoreTest, LatestEpochPicksHighest) {
  BackupStore store(Options(1));
  CheckpointMeta meta;
  for (uint64_t e : {1, 5, 3}) {
    meta.epoch = e;
    ASSERT_TRUE(store.WriteMeta(0, e, meta).ok());
  }
  auto latest = store.LatestEpoch(0);
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(*latest, 5u);
}

TEST_F(BackupStoreTest, LatestEpochOfUnknownNodeFails) {
  BackupStore store(Options(1));
  EXPECT_FALSE(store.LatestEpoch(9).ok());
}

TEST_F(BackupStoreTest, ReadMissingChunkFails) {
  BackupStore store(Options(1));
  auto r = store.ReadChunks(0, 1, "ghost", 2);
  EXPECT_FALSE(r.ok());
}

TEST_F(BackupStoreTest, PruneRemovesOldEpochs) {
  BackupStore store(Options(1));
  CheckpointMeta meta;
  for (uint64_t e : {1, 2, 3}) {
    meta.epoch = e;
    ASSERT_TRUE(store.WriteChunks(0, e, "se0", MakeChunks(1, 8)).ok());
    ASSERT_TRUE(store.WriteMeta(0, e, meta).ok());
  }
  store.PruneBefore(0, 3);
  EXPECT_FALSE(store.ReadMeta(0, 1).ok());
  EXPECT_FALSE(store.ReadMeta(0, 2).ok());
  EXPECT_TRUE(store.ReadMeta(0, 3).ok());
  EXPECT_TRUE(store.ReadChunks(0, 3, "se0", 1).ok());
  EXPECT_FALSE(store.ReadChunks(0, 1, "se0", 1).ok());
}

TEST_F(BackupStoreTest, PruneIsPerNode) {
  BackupStore store(Options(1));
  CheckpointMeta meta;
  meta.epoch = 1;
  ASSERT_TRUE(store.WriteMeta(0, 1, meta).ok());
  ASSERT_TRUE(store.WriteMeta(1, 1, meta).ok());
  store.PruneBefore(0, 2);
  EXPECT_FALSE(store.ReadMeta(0, 1).ok());
  EXPECT_TRUE(store.ReadMeta(1, 1).ok());
}

TEST_F(BackupStoreTest, ThrottleSlowsLargeWrites) {
  // 1 MB at 4 MB/s must take at least ~200 ms; unthrottled is instant.
  auto chunks = MakeChunks(1, 1 << 20);
  Stopwatch fast_timer;
  {
    BackupStore store(Options(1));
    ASSERT_TRUE(store.WriteChunks(0, 1, "se0", chunks).ok());
  }
  double fast = fast_timer.ElapsedSeconds();

  Stopwatch slow_timer;
  {
    BackupStore store(Options(1, /*throttle=*/4 << 20));
    ASSERT_TRUE(store.WriteChunks(0, 1, "se0", chunks).ok());
  }
  double slow = slow_timer.ElapsedSeconds();
  EXPECT_GT(slow, fast);
  EXPECT_GE(slow, 0.15);
}

TEST_F(BackupStoreTest, EmptyChunkListIsOk) {
  BackupStore store(Options(2));
  EXPECT_TRUE(store.WriteChunks(0, 1, "se0", {}).ok());
}

// --- Streaming chunk writes + hash-offset placement --------------------------

TEST_F(BackupStoreTest, StreamedChunksReadBackAsWritten) {
  BackupStore store(Options(2));
  auto stream = store.BeginChunkStream(0, 1, "se0", 0);
  ASSERT_TRUE(stream.ok());
  std::vector<uint8_t> expect;
  for (int i = 0; i < 20; ++i) {
    std::vector<uint8_t> seg(1000 + i, static_cast<uint8_t>(i));
    expect.insert(expect.end(), seg.begin(), seg.end());
    ASSERT_TRUE(store.AppendChunkStream(*stream, std::move(seg)).ok());
  }
  ASSERT_TRUE(store.FinishChunkStream(*stream).ok());

  auto back = store.ReadChunks(0, 1, "se0", 1);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->size(), 1u);
  EXPECT_EQ((*back)[0], expect);
}

TEST_F(BackupStoreTest, StreamingSurvivesTinyBacklogBudget) {
  // A backlog budget smaller than one segment forces the appender to wait on
  // the drainer every time; ordering and content must be unaffected.
  auto opts = Options(1);
  opts.max_stream_backlog_bytes = 512;
  BackupStore store(opts);
  auto stream = store.BeginChunkStream(0, 7, "kv", 0);
  ASSERT_TRUE(stream.ok());
  std::vector<uint8_t> expect;
  for (int i = 0; i < 50; ++i) {
    std::vector<uint8_t> seg(1024, static_cast<uint8_t>(i));
    expect.insert(expect.end(), seg.begin(), seg.end());
    ASSERT_TRUE(store.AppendChunkStream(*stream, std::move(seg)).ok());
  }
  ASSERT_TRUE(store.FinishChunkStream(*stream).ok());
  auto back = store.ReadChunks(0, 7, "kv", 1);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ((*back)[0], expect);
}

TEST_F(BackupStoreTest, InterleavedStreamsStayIndependent) {
  BackupStore store(Options(2));
  auto s0 = store.BeginChunkStream(0, 1, "a", 0);
  auto s1 = store.BeginChunkStream(0, 1, "a", 1);
  ASSERT_TRUE(s0.ok());
  ASSERT_TRUE(s1.ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(store.AppendChunkStream(*s0, std::vector<uint8_t>(64, 0xA0))
                    .ok());
    ASSERT_TRUE(store.AppendChunkStream(*s1, std::vector<uint8_t>(32, 0xB1))
                    .ok());
  }
  ASSERT_TRUE(store.FinishChunkStream(*s0).ok());
  ASSERT_TRUE(store.FinishChunkStream(*s1).ok());
  auto back = store.ReadChunks(0, 1, "a", 2);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ((*back)[0], std::vector<uint8_t>(640, 0xA0));
  EXPECT_EQ((*back)[1], std::vector<uint8_t>(320, 0xB1));
}

TEST_F(BackupStoreTest, AppendToUnknownStreamFails) {
  BackupStore store(Options(1));
  EXPECT_FALSE(store.AppendChunkStream(999, {1, 2, 3}).ok());
  EXPECT_FALSE(store.FinishChunkStream(999).ok());
}

TEST_F(BackupStoreTest, SingleChunkNamesSpreadAcrossBackupDirs) {
  // The i % m placement is offset by hash(name): single-chunk blobs of
  // different names (TE output buffers) must not all pile onto backup 0.
  BackupStore store(Options(2));
  for (int i = 0; i < 8; ++i) {
    std::string name = "outbuf" + std::to_string(i) + "_0";
    ASSERT_TRUE(store.WriteChunks(0, 1, name, MakeChunks(1, 16)).ok());
  }
  size_t in_backup0 = 0, in_backup1 = 0;
  for (const auto& e : fs::directory_iterator(dir_.path() / "backup0")) {
    (void)e;
    ++in_backup0;
  }
  for (const auto& e : fs::directory_iterator(dir_.path() / "backup1")) {
    (void)e;
    ++in_backup1;
  }
  EXPECT_EQ(in_backup0 + in_backup1, 8u);
  EXPECT_GT(in_backup0, 0u);
  EXPECT_GT(in_backup1, 0u);
}

}  // namespace
}  // namespace sdg::checkpoint
