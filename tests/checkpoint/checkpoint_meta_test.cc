#include "src/checkpoint/checkpoint_meta.h"

#include <gtest/gtest.h>

namespace sdg::checkpoint {
namespace {

TEST(CheckpointMetaTest, EmptyRoundTrip) {
  CheckpointMeta m;
  m.epoch = 7;
  auto back = CheckpointMeta::FromBytes(m.ToBytes());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->epoch, 7u);
  EXPECT_TRUE(back->tasks.empty());
  EXPECT_TRUE(back->states.empty());
}

TEST(CheckpointMetaTest, FullRoundTrip) {
  CheckpointMeta m;
  m.epoch = 12;
  TaskInstanceMeta t1;
  t1.task = 3;
  t1.instance = 1;
  t1.emit_clock = 999;
  t1.last_seen = {{0, 0, 10}, {0xFFFFFFFFu, 3, 55}};
  m.tasks.push_back(t1);
  TaskInstanceMeta t2;
  t2.task = 4;
  m.tasks.push_back(t2);
  m.states.push_back({2, 0, 8, 12345});

  auto back = CheckpointMeta::FromBytes(m.ToBytes());
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->tasks.size(), 2u);
  EXPECT_EQ(back->tasks[0].task, 3u);
  EXPECT_EQ(back->tasks[0].emit_clock, 999u);
  ASSERT_EQ(back->tasks[0].last_seen.size(), 2u);
  EXPECT_EQ(back->tasks[0].last_seen[1].task, 0xFFFFFFFFu);
  EXPECT_EQ(back->tasks[0].last_seen[1].ts, 55u);
  EXPECT_EQ(back->tasks[1].task, 4u);
  ASSERT_EQ(back->states.size(), 1u);
  EXPECT_EQ(back->states[0].num_chunks, 8u);
  EXPECT_EQ(back->states[0].record_count, 12345u);
}

TEST(CheckpointMetaTest, TruncatedBytesFail) {
  CheckpointMeta m;
  m.epoch = 1;
  m.states.push_back({1, 1, 1, 1});
  auto bytes = m.ToBytes();
  bytes.resize(bytes.size() - 4);
  EXPECT_FALSE(CheckpointMeta::FromBytes(bytes).ok());
}

TEST(CheckpointMetaTest, GarbageBytesFailGracefully) {
  std::vector<uint8_t> garbage(16, 0xFF);
  // A hostile count must not crash or over-allocate.
  auto r = CheckpointMeta::FromBytes(garbage);
  EXPECT_FALSE(r.ok());
}

TEST(CheckpointMetaTest, DeltaChainRoundTrips) {
  CheckpointMeta m;
  m.epoch = 9;
  StateInstanceMeta s;
  s.state = 1;
  s.instance = 0;
  s.num_chunks = 4;
  s.record_count = 10;
  s.kind = EpochKind::kDelta;
  s.base_epoch = 6;
  s.chain = {{6, 4, EpochKind::kFull},
             {7, 4, EpochKind::kDelta},
             {9, 4, EpochKind::kDelta}};
  m.states.push_back(s);

  auto back = CheckpointMeta::FromBytes(m.ToBytes());
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->states.size(), 1u);
  const auto& bs = back->states[0];
  EXPECT_EQ(bs.kind, EpochKind::kDelta);
  EXPECT_EQ(bs.base_epoch, 6u);
  ASSERT_EQ(bs.chain.size(), 3u);
  EXPECT_EQ(bs.chain[0].epoch, 6u);
  EXPECT_EQ(bs.chain[0].kind, EpochKind::kFull);
  EXPECT_EQ(bs.chain[2].epoch, 9u);
  EXPECT_EQ(bs.chain[2].kind, EpochKind::kDelta);
  EXPECT_EQ(back->MinChainEpoch(), 6u);
}

TEST(CheckpointMetaTest, MinChainEpochDefaultsToOwnEpoch) {
  CheckpointMeta m;
  m.epoch = 11;
  m.states.push_back({1, 0, 2, 5});
  m.states.back().chain = {{11, 2, EpochKind::kFull}};
  EXPECT_EQ(m.MinChainEpoch(), 11u);
}

TEST(CheckpointMetaTest, V1BytesDeserializeWithSynthesizedChain) {
  // A pre-v2 meta: no magic, the frame starts directly with the epoch and
  // state entries carry no kind/base/chain fields.
  BinaryWriter w;
  w.Write<uint64_t>(42);  // epoch
  w.Write<uint32_t>(0);   // no tasks
  w.Write<uint32_t>(1);   // one state
  w.Write<uint32_t>(3);   // state id
  w.Write<uint32_t>(0);   // instance
  w.Write<uint32_t>(4);   // num_chunks
  w.Write<uint64_t>(77);  // record_count
  auto bytes = std::move(w).TakeBuffer();

  auto m = CheckpointMeta::FromBytes(bytes);
  ASSERT_TRUE(m.ok()) << m.status().ToString();
  EXPECT_EQ(m->epoch, 42u);
  ASSERT_EQ(m->states.size(), 1u);
  const auto& s = m->states[0];
  EXPECT_EQ(s.record_count, 77u);
  // Restore never branches on meta version: v1 states get a one-link full
  // chain at their own epoch.
  EXPECT_EQ(s.kind, EpochKind::kFull);
  EXPECT_EQ(s.base_epoch, 42u);
  ASSERT_EQ(s.chain.size(), 1u);
  EXPECT_EQ(s.chain[0].epoch, 42u);
  EXPECT_EQ(s.chain[0].num_chunks, 4u);
  EXPECT_EQ(s.chain[0].kind, EpochKind::kFull);
}

TEST(CheckpointMetaTest, BadEpochKindFails) {
  CheckpointMeta m;
  m.epoch = 1;
  m.states.push_back({1, 0, 1, 1});
  m.states.back().chain = {{1, 1, EpochKind::kFull}};
  auto bytes = m.ToBytes();
  bytes.back() = 0x7F;  // the trailing chain-link kind byte
  EXPECT_FALSE(CheckpointMeta::FromBytes(bytes).ok());
}

}  // namespace
}  // namespace sdg::checkpoint
