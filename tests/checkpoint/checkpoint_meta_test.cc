#include "src/checkpoint/checkpoint_meta.h"

#include <gtest/gtest.h>

namespace sdg::checkpoint {
namespace {

TEST(CheckpointMetaTest, EmptyRoundTrip) {
  CheckpointMeta m;
  m.epoch = 7;
  auto back = CheckpointMeta::FromBytes(m.ToBytes());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->epoch, 7u);
  EXPECT_TRUE(back->tasks.empty());
  EXPECT_TRUE(back->states.empty());
}

TEST(CheckpointMetaTest, FullRoundTrip) {
  CheckpointMeta m;
  m.epoch = 12;
  TaskInstanceMeta t1;
  t1.task = 3;
  t1.instance = 1;
  t1.emit_clock = 999;
  t1.last_seen = {{0, 0, 10}, {0xFFFFFFFFu, 3, 55}};
  m.tasks.push_back(t1);
  TaskInstanceMeta t2;
  t2.task = 4;
  m.tasks.push_back(t2);
  m.states.push_back({2, 0, 8, 12345});

  auto back = CheckpointMeta::FromBytes(m.ToBytes());
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->tasks.size(), 2u);
  EXPECT_EQ(back->tasks[0].task, 3u);
  EXPECT_EQ(back->tasks[0].emit_clock, 999u);
  ASSERT_EQ(back->tasks[0].last_seen.size(), 2u);
  EXPECT_EQ(back->tasks[0].last_seen[1].task, 0xFFFFFFFFu);
  EXPECT_EQ(back->tasks[0].last_seen[1].ts, 55u);
  EXPECT_EQ(back->tasks[1].task, 4u);
  ASSERT_EQ(back->states.size(), 1u);
  EXPECT_EQ(back->states[0].num_chunks, 8u);
  EXPECT_EQ(back->states[0].record_count, 12345u);
}

TEST(CheckpointMetaTest, TruncatedBytesFail) {
  CheckpointMeta m;
  m.epoch = 1;
  m.states.push_back({1, 1, 1, 1});
  auto bytes = m.ToBytes();
  bytes.resize(bytes.size() - 4);
  EXPECT_FALSE(CheckpointMeta::FromBytes(bytes).ok());
}

TEST(CheckpointMetaTest, GarbageBytesFailGracefully) {
  std::vector<uint8_t> garbage(16, 0xFF);
  // A hostile count must not crash or over-allocate.
  auto r = CheckpointMeta::FromBytes(garbage);
  EXPECT_FALSE(r.ok());
}

}  // namespace
}  // namespace sdg::checkpoint
