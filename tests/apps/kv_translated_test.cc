// The KV store expressed as an annotated imperative program must translate
// to an SDG behaviourally identical to the hand-built one.
#include <gtest/gtest.h>

#include <map>
#include <mutex>

#include "src/apps/kv.h"
#include "src/runtime/cluster.h"

namespace sdg::apps {
namespace {

TEST(KvTranslatedTest, ProgramTranslatesToThreeEntryGraph) {
  auto t = BuildKvSdgViaTranslator(KvOptions{.partitions = 2});
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  const auto& g = t->sdg;
  // One TE per entry method, all fused with their single partitioned access.
  EXPECT_EQ(g.tasks().size(), 3u);
  EXPECT_EQ(g.states().size(), 1u);
  EXPECT_TRUE(g.edges().empty());
  for (const auto& te : g.tasks()) {
    EXPECT_TRUE(te.is_entry) << te.name;
    EXPECT_EQ(te.access, graph::AccessMode::kPartitioned) << te.name;
    EXPECT_EQ(te.initial_instances, 2u) << te.name;
  }
}

TEST(KvTranslatedTest, BehavesLikeHandBuiltStore) {
  auto t = BuildKvSdgViaTranslator(KvOptions{.partitions = 2});
  ASSERT_TRUE(t.ok());
  runtime::ClusterOptions o;
  o.num_nodes = 2;
  runtime::Cluster cluster(o);
  auto d = cluster.Deploy(std::move(t->sdg));
  ASSERT_TRUE(d.ok());

  for (int64_t k = 0; k < 100; ++k) {
    ASSERT_TRUE((*d)->Inject("put", Tuple{Value(k), Value("v" + std::to_string(k))}).ok());
  }
  (*d)->Drain();
  ASSERT_TRUE((*d)->Inject("del", Tuple{Value(int64_t{10})}).ok());
  (*d)->Drain();

  std::mutex mu;
  std::map<int64_t, std::string> results;
  ASSERT_TRUE((*d)->OnOutput("get", [&](const Tuple& out, uint64_t) {
              std::lock_guard<std::mutex> lock(mu);
              results[out[0].AsInt()] = out[1].AsString();
            }).ok());
  for (int64_t k = 0; k < 100; ++k) {
    ASSERT_TRUE((*d)->Inject("get", Tuple{Value(k)}).ok());
  }
  (*d)->Drain();
  EXPECT_EQ(results[9], "v9");
  EXPECT_EQ(results[10], "");  // deleted
  EXPECT_EQ(results[99], "v99");
}

TEST(KvTranslatedTest, TopologyDumpListsEverything) {
  auto t = BuildKvSdgViaTranslator(KvOptions{.partitions = 2});
  ASSERT_TRUE(t.ok());
  runtime::ClusterOptions o;
  o.num_nodes = 2;
  runtime::Cluster cluster(o);
  auto d = cluster.Deploy(std::move(t->sdg));
  ASSERT_TRUE(d.ok());
  ASSERT_TRUE((*d)->Inject("put", Tuple{Value(int64_t{1}), Value("x")}).ok());
  (*d)->Drain();

  std::string dump = (*d)->DescribeTopology();
  EXPECT_NE(dump.find("node 0"), std::string::npos);
  EXPECT_NE(dump.find("node 1"), std::string::npos);
  EXPECT_NE(dump.find("SE store[0]"), std::string::npos);
  EXPECT_NE(dump.find("SE store[1]"), std::string::npos);
  EXPECT_NE(dump.find("TE put[0]"), std::string::npos);
  EXPECT_NE(dump.find("TE get[1]"), std::string::npos);
  EXPECT_EQ(dump.find("DEAD"), std::string::npos);
}

}  // namespace
}  // namespace sdg::apps
