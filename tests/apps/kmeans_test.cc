// End-to-end k-means: iterative reconcile-and-redistribute over partial state.
#include "src/apps/kmeans.h"

#include <gtest/gtest.h>

#include <cmath>
#include <mutex>

#include "src/common/rng.h"
#include "src/runtime/cluster.h"
#include "src/state/dense_matrix.h"

namespace sdg::apps {
namespace {

using state::DenseMatrix;
using state::StateAs;

TEST(KMeansTest, GraphShape) {
  KMeansOptions opt;
  opt.clusters = 3;
  opt.dimensions = 2;
  opt.replicas = 2;
  auto g = BuildKMeansSdg(opt);
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_EQ(g->states().size(), 2u);
  EXPECT_EQ(g->tasks().size(), 7u);
  auto merge = g->TaskByName("newModel");
  ASSERT_TRUE(merge.ok());
  EXPECT_TRUE(g->task(*merge).is_collector());
  EXPECT_EQ(g->OutEdges(*merge).size(), 2u);
}

TEST(KMeansTest, RejectsDegenerateOptions) {
  EXPECT_FALSE(BuildKMeansSdg({.clusters = 0}).ok());
  KMeansOptions bad;
  bad.clusters = 2;
  bad.dimensions = 2;
  bad.initial_centroids = {1.0};  // wrong arity
  EXPECT_FALSE(BuildKMeansSdg(bad).ok());
}

TEST(KMeansTest, ConvergesOnSeparatedBlobs) {
  KMeansOptions opt;
  opt.clusters = 2;
  opt.dimensions = 2;
  opt.replicas = 2;
  auto g = BuildKMeansSdg(opt);
  ASSERT_TRUE(g.ok()) << g.status().ToString();

  runtime::ClusterOptions copts;
  copts.num_nodes = 2;
  runtime::Cluster cluster(copts);
  auto d = cluster.Deploy(std::move(*g));
  ASSERT_TRUE(d.ok()) << d.status().ToString();

  std::mutex mu;
  std::vector<double> centroids;
  std::vector<double> counts;
  ASSERT_TRUE((*d)->OnOutput("newModel", [&](const Tuple& out, uint64_t) {
              std::lock_guard<std::mutex> lock(mu);
              centroids = out[0].AsDoubleVector();
              counts = out[1].AsDoubleVector();
            }).ok());

  Rng rng(17);
  for (int iter = 0; iter < 4; ++iter) {
    for (int i = 0; i < 300; ++i) {
      // Two well-separated blobs around (0,0) and (10,10).
      double cx = (i % 2 == 0) ? 0.0 : 10.0;
      std::vector<double> p{cx + rng.NextDoubleIn(-0.5, 0.5),
                            cx + rng.NextDoubleIn(-0.5, 0.5)};
      ASSERT_TRUE((*d)->Inject("assign", Tuple{Value(std::move(p))}).ok());
    }
    (*d)->Drain();  // assignments settled: the §3.1 iteration boundary
    ASSERT_TRUE((*d)->Inject("step", Tuple{}).ok());
    (*d)->Drain();
  }

  std::lock_guard<std::mutex> lock(mu);
  ASSERT_EQ(centroids.size(), 4u);
  ASSERT_EQ(counts.size(), 2u);
  // One centroid near each blob mean, in either order.
  double d0 = std::hypot(centroids[0] - 0.0, centroids[1] - 0.0);
  double d1 = std::hypot(centroids[2] - 10.0, centroids[3] - 10.0);
  double swapped0 = std::hypot(centroids[0] - 10.0, centroids[1] - 10.0);
  double swapped1 = std::hypot(centroids[2] - 0.0, centroids[3] - 0.0);
  bool direct = d0 < 1.0 && d1 < 1.0;
  bool swapped = swapped0 < 1.0 && swapped1 < 1.0;
  EXPECT_TRUE(direct || swapped)
      << "centroids: (" << centroids[0] << "," << centroids[1] << ") ("
      << centroids[2] << "," << centroids[3] << ")";
  EXPECT_DOUBLE_EQ(counts[0] + counts[1], 300.0);  // last iteration's points

  // The reconciled model reached every replica.
  for (uint32_t j = 0; j < 2; ++j) {
    auto* m = StateAs<DenseMatrix>((*d)->StateInstance("model", j));
    ASSERT_NE(m, nullptr);
    EXPECT_DOUBLE_EQ(m->Get(0, 0), centroids[0]) << "replica " << j;
    EXPECT_DOUBLE_EQ(m->Get(1, 0), centroids[2]) << "replica " << j;
  }
  // The sums were reset for the next iteration.
  for (uint32_t j = 0; j < 2; ++j) {
    auto* s = StateAs<DenseMatrix>((*d)->StateInstance("sums", j));
    ASSERT_NE(s, nullptr);
    EXPECT_DOUBLE_EQ(s->Get(0, 2), 0.0) << "replica " << j;
    EXPECT_DOUBLE_EQ(s->Get(1, 2), 0.0) << "replica " << j;
  }
}

TEST(KMeansTest, AssignSinkReportsClusters) {
  KMeansOptions opt;
  opt.clusters = 2;
  opt.dimensions = 1;
  opt.initial_centroids = {0.0, 10.0};
  auto g = BuildKMeansSdg(opt);
  ASSERT_TRUE(g.ok());
  runtime::ClusterOptions copts;
  copts.num_nodes = 1;
  runtime::Cluster cluster(copts);
  auto d = cluster.Deploy(std::move(*g));
  ASSERT_TRUE(d.ok());

  std::mutex mu;
  std::map<int64_t, int64_t> assignments;  // point value -> cluster
  ASSERT_TRUE((*d)->OnOutput("assign", [&](const Tuple& out, uint64_t) {
              std::lock_guard<std::mutex> lock(mu);
              assignments[static_cast<int64_t>(out[1].AsDoubleVector()[0])] =
                  out[0].AsInt();
            }).ok());
  ASSERT_TRUE((*d)->Inject("assign", Tuple{Value(std::vector<double>{1.0})}).ok());
  ASSERT_TRUE((*d)->Inject("assign", Tuple{Value(std::vector<double>{9.0})}).ok());
  (*d)->Drain();
  std::lock_guard<std::mutex> lock(mu);
  EXPECT_EQ(assignments[1], 0);
  EXPECT_EQ(assignments[9], 1);
}

}  // namespace
}  // namespace sdg::apps
