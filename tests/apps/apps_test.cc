// Tests for the KV store, wordcount and logistic-regression applications and
// the synthetic workload generators.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <mutex>
#include <set>

#include "src/apps/kv.h"
#include "src/apps/lr.h"
#include "src/apps/wordcount.h"
#include "src/apps/workloads.h"
#include "src/runtime/cluster.h"

namespace sdg::apps {
namespace {

runtime::ClusterOptions SmallCluster(uint32_t nodes) {
  runtime::ClusterOptions o;
  o.num_nodes = nodes;
  return o;
}

TEST(KvAppTest, PutGetDelete) {
  KvOptions opt;
  opt.partitions = 2;
  auto g = BuildKvSdg(opt);
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  runtime::Cluster cluster(SmallCluster(2));
  auto d = cluster.Deploy(std::move(*g));
  ASSERT_TRUE(d.ok());

  for (int64_t k = 0; k < 100; ++k) {
    ASSERT_TRUE((*d)->Inject("put", Tuple{Value(k), Value("v" + std::to_string(k))}).ok());
  }
  (*d)->Drain();
  ASSERT_TRUE((*d)->Inject("del", Tuple{Value(int64_t{50})}).ok());
  (*d)->Drain();

  std::mutex mu;
  std::map<int64_t, std::string> results;
  ASSERT_TRUE((*d)->OnOutput("get", [&](const Tuple& t, uint64_t) {
              std::lock_guard<std::mutex> lock(mu);
              results[t[0].AsInt()] = t[1].AsString();
            }).ok());
  for (int64_t k = 0; k < 100; ++k) {
    ASSERT_TRUE((*d)->Inject("get", Tuple{Value(k)}).ok());
  }
  (*d)->Drain();
  EXPECT_EQ(results[49], "v49");
  EXPECT_EQ(results[50], "");  // deleted
  EXPECT_EQ(results[99], "v99");
}

TEST(WordCountAppTest, CountsWordsAcrossPartitions) {
  WordCountOptions opt;
  opt.count_partitions = 2;
  auto g = BuildWordCountSdg(opt);
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  runtime::Cluster cluster(SmallCluster(2));
  auto d = cluster.Deploy(std::move(*g));
  ASSERT_TRUE(d.ok());

  ASSERT_TRUE((*d)->Inject("line", Tuple{Value("the cat sat on the mat")}).ok());
  ASSERT_TRUE((*d)->Inject("line", Tuple{Value("the dog sat")}).ok());
  (*d)->Drain();

  std::mutex mu;
  std::map<std::string, int64_t> counts;
  ASSERT_TRUE((*d)->OnOutput("read", [&](const Tuple& t, uint64_t) {
              std::lock_guard<std::mutex> lock(mu);
              counts[t[0].AsString()] = t[1].AsInt();
            }).ok());
  for (const char* w : {"the", "sat", "cat", "missing"}) {
    ASSERT_TRUE((*d)->Inject("snapshot", Tuple{Value(w)}).ok());
  }
  (*d)->Drain();
  EXPECT_EQ(counts["the"], 3);
  EXPECT_EQ(counts["sat"], 2);
  EXPECT_EQ(counts["cat"], 1);
  EXPECT_EQ(counts["missing"], 0);
}

TEST(WordCountAppTest, EmitUpdatesStreamsCounts) {
  WordCountOptions opt;
  opt.emit_updates = true;
  auto g = BuildWordCountSdg(opt);
  ASSERT_TRUE(g.ok());
  runtime::Cluster cluster(SmallCluster(1));
  auto d = cluster.Deploy(std::move(*g));
  ASSERT_TRUE(d.ok());

  std::mutex mu;
  std::vector<int64_t> updates;
  ASSERT_TRUE((*d)->OnOutput("count", [&](const Tuple& t, uint64_t) {
              std::lock_guard<std::mutex> lock(mu);
              if (t[0].AsString() == "a") {
                updates.push_back(t[1].AsInt());
              }
            }).ok());
  ASSERT_TRUE((*d)->Inject("line", Tuple{Value("a a a")}).ok());
  (*d)->Drain();
  EXPECT_EQ(updates, (std::vector<int64_t>{1, 2, 3}));
}

TEST(LrAppTest, LearnsSeparableData) {
  LrOptions opt;
  opt.dimensions = 5;
  opt.learning_rate = 0.5;
  opt.worker_replicas = 2;
  auto g = BuildLrSdg(opt);
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  runtime::Cluster cluster(SmallCluster(2));
  auto d = cluster.Deploy(std::move(*g));
  ASSERT_TRUE(d.ok());

  LrDataGenerator gen(opt.dimensions, /*seed=*/11);
  for (int i = 0; i < 4000; ++i) {
    auto ex = gen.Next();
    ASSERT_TRUE((*d)->Inject("train", Tuple{Value(ex.x), Value(ex.y)}).ok());
  }
  (*d)->Drain();

  std::mutex mu;
  std::vector<double> model;
  ASSERT_TRUE((*d)->OnOutput("mergeModel", [&](const Tuple& t, uint64_t) {
              std::lock_guard<std::mutex> lock(mu);
              model = t[0].AsDoubleVector();
            }).ok());
  ASSERT_TRUE((*d)->Inject("readModel", Tuple{}).ok());
  (*d)->Drain();
  ASSERT_EQ(model.size(), opt.dimensions);

  // The merged model must classify fresh data from the same distribution
  // well above chance.
  LrDataGenerator test_gen(opt.dimensions, /*seed=*/11);  // same true weights
  for (int i = 0; i < 4000; ++i) {
    test_gen.Next();  // skip training range
  }
  int correct = 0;
  constexpr int kTest = 500;
  for (int i = 0; i < kTest; ++i) {
    auto ex = test_gen.Next();
    double z = 0;
    for (size_t j = 0; j < model.size(); ++j) {
      z += model[j] * ex.x[j];
    }
    int64_t prediction = LrSigmoid(z) > 0.5 ? 1 : 0;
    if (prediction == ex.y) {
      ++correct;
    }
  }
  EXPECT_GT(correct, kTest * 80 / 100)
      << "model accuracy too low: " << correct << "/" << kTest;
}

TEST(WorkloadTest, RatingGeneratorInRangeAndSkewed) {
  RatingGenerator gen(1000, 500, 7);
  std::map<int64_t, int> user_counts;
  for (int i = 0; i < 20000; ++i) {
    auto r = gen.Next();
    EXPECT_GE(r.user, 0);
    EXPECT_LT(r.user, 1000);
    EXPECT_GE(r.item, 0);
    EXPECT_LT(r.item, 500);
    EXPECT_GE(r.rating, 1);
    EXPECT_LE(r.rating, 5);
    user_counts[r.user]++;
  }
  EXPECT_GT(user_counts[0], user_counts[500] * 2);  // Zipf head dominates
}

TEST(WorkloadTest, TextGeneratorProducesLines) {
  TextGenerator gen(100, 8, 3);
  std::string line = gen.NextLine();
  // 8 words separated by single spaces, each like "w<rank>".
  EXPECT_EQ(std::count(line.begin(), line.end(), ' '), 7);
  EXPECT_EQ(line[0], 'w');
}

TEST(WorkloadTest, KvWorkloadMixMatchesFraction) {
  KvWorkload wl(1000, 64, 0.3, 5);
  int reads = 0;
  constexpr int kN = 10000;
  for (int i = 0; i < kN; ++i) {
    auto op = wl.Next();
    if (op.type == KvWorkload::OpType::kRead) {
      ++reads;
      EXPECT_TRUE(op.value.empty());
    } else {
      EXPECT_EQ(op.value.size(), 64u);
    }
  }
  EXPECT_NEAR(static_cast<double>(reads) / kN, 0.3, 0.03);
}

TEST(WorkloadTest, LrDataLabelsMatchTrueModel) {
  LrDataGenerator gen(4, 9);
  for (int i = 0; i < 100; ++i) {
    auto ex = gen.Next();
    double z = 0;
    for (size_t j = 0; j < ex.x.size(); ++j) {
      z += ex.x[j] * gen.true_weights()[j];
    }
    EXPECT_EQ(ex.y, z > 0 ? 1 : 0);
  }
}

}  // namespace
}  // namespace sdg::apps
