// End-to-end execution of the translated collaborative-filtering SDG.
#include "src/apps/cf.h"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>

#include "src/runtime/cluster.h"
#include "src/state/sparse_matrix.h"

namespace sdg::apps {
namespace {

TEST(CfEndToEndTest, RecommendationsReflectCoOccurrence) {
  CfOptions opt;
  opt.num_items = 8;
  auto t = BuildCfSdg(opt);
  ASSERT_TRUE(t.ok()) << t.status().ToString();

  runtime::ClusterOptions copts;
  copts.num_nodes = 3;
  runtime::Cluster cluster(copts);
  auto d = cluster.Deploy(std::move(t->sdg));
  ASSERT_TRUE(d.ok()) << d.status().ToString();

  // Users 1..3 rate items {1,2} together; user 4 rates item 3 alone.
  for (int64_t user = 1; user <= 3; ++user) {
    ASSERT_TRUE((*d)->Inject("addRating",
                             Tuple{Value(user), Value(1), Value(5)}).ok());
    ASSERT_TRUE((*d)->Inject("addRating",
                             Tuple{Value(user), Value(2), Value(4)}).ok());
  }
  ASSERT_TRUE((*d)->Inject("addRating", Tuple{Value(4), Value(3), Value(5)}).ok());
  (*d)->Drain();

  std::mutex mu;
  std::vector<double> rec;
  int64_t rec_user = -1;
  ASSERT_TRUE((*d)->OnOutput("merge", [&](const Tuple& out, uint64_t) {
              std::lock_guard<std::mutex> lock(mu);
              rec_user = out[0].AsInt();
              rec = out[1].AsDoubleVector();
            }).ok());

  // User 5 rates item 1; the co-occurrence model should recommend item 2
  // (rated together with 1 by users 1..3) over item 3 (never co-rated).
  ASSERT_TRUE((*d)->Inject("addRating", Tuple{Value(5), Value(1), Value(5)}).ok());
  (*d)->Drain();
  ASSERT_TRUE((*d)->Inject("getRec", Tuple{Value(5)}).ok());
  (*d)->Drain();

  std::lock_guard<std::mutex> lock(mu);
  ASSERT_EQ(rec_user, 5);
  ASSERT_EQ(rec.size(), opt.num_items);
  EXPECT_GT(rec[2], rec[3]) << "co-rated item must outrank un-co-rated item";
  EXPECT_GT(rec[2], 0.0);
}

TEST(CfEndToEndTest, PartialReplicasMergeToSameResultAsSingle) {
  // The defining property of partial state (§3.2): with updates spread over
  // R independent coOcc replicas, the *merged* recommendation equals the
  // single-replica result.
  auto run = [](uint32_t replicas) {
    CfOptions opt;
    opt.num_items = 6;
    opt.cooc_replicas = replicas;
    auto t = BuildCfSdg(opt);
    EXPECT_TRUE(t.ok());
    runtime::ClusterOptions copts;
    copts.num_nodes = 3;
    runtime::Cluster cluster(copts);
    auto d = cluster.Deploy(std::move(t->sdg));
    EXPECT_TRUE(d.ok());

    for (int64_t user = 1; user <= 6; ++user) {
      EXPECT_TRUE((*d)->Inject("addRating",
                               Tuple{Value(user), Value(user % 3), Value(5)})
                      .ok());
      EXPECT_TRUE((*d)->Inject("addRating",
                               Tuple{Value(user), Value(3 + user % 2), Value(4)})
                      .ok());
    }
    (*d)->Drain();

    std::mutex mu;
    std::vector<double> rec;
    EXPECT_TRUE((*d)->OnOutput("merge", [&](const Tuple& out, uint64_t) {
                std::lock_guard<std::mutex> lock(mu);
                rec = out[1].AsDoubleVector();
              }).ok());
    EXPECT_TRUE((*d)->Inject("getRec", Tuple{Value(2)}).ok());
    (*d)->Drain();
    std::lock_guard<std::mutex> lock(mu);
    return rec;
  };

  auto single = run(1);
  auto tripled = run(3);
  ASSERT_EQ(single.size(), tripled.size());
  for (size_t i = 0; i < single.size(); ++i) {
    EXPECT_DOUBLE_EQ(single[i], tripled[i]) << "item " << i;
  }
}

TEST(CfEndToEndTest, UserPartitionsIsolateUserRows) {
  CfOptions opt;
  opt.num_items = 4;
  opt.user_partitions = 2;
  auto t = BuildCfSdg(opt);
  ASSERT_TRUE(t.ok());
  runtime::ClusterOptions copts;
  copts.num_nodes = 2;
  runtime::Cluster cluster(copts);
  auto d = cluster.Deploy(std::move(t->sdg));
  ASSERT_TRUE(d.ok());

  for (int64_t user = 0; user < 50; ++user) {
    ASSERT_TRUE((*d)->Inject("addRating",
                             Tuple{Value(user), Value(user % 4), Value(3)}).ok());
  }
  (*d)->Drain();

  // Each userItem partition holds a strict subset of user rows.
  auto* p0 = state::StateAs<state::SparseMatrix>((*d)->StateInstance("userItem", 0));
  auto* p1 = state::StateAs<state::SparseMatrix>((*d)->StateInstance("userItem", 1));
  ASSERT_NE(p0, nullptr);
  ASSERT_NE(p1, nullptr);
  EXPECT_EQ(p0->RowCount() + p1->RowCount(), 50u);
  EXPECT_GT(p0->RowCount(), 10u);
  EXPECT_GT(p1->RowCount(), 10u);
}

}  // namespace
}  // namespace sdg::apps
