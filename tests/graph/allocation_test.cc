#include "src/graph/allocation.h"

#include <gtest/gtest.h>

#include "src/state/keyed_dict.h"

namespace sdg::graph {
namespace {

state::StateFactory DictFactory() {
  return [] { return std::make_unique<state::KeyedDict<int64_t, int64_t>>(); };
}

TaskFn Noop() {
  return [](const Tuple&, TaskContext&) {};
}

TEST(AllocationTest, RejectsZeroNodes) {
  SdgBuilder b;
  b.AddEntryTask("t", Noop());
  auto g = std::move(b).Build();
  ASSERT_TRUE(g.ok());
  EXPECT_FALSE(AllocateSdg(*g, 0).ok());
}

TEST(AllocationTest, TasksColocateWithTheirState) {
  // Step 3 of §3.3: every stateful TE lands on its SE's node.
  SdgBuilder b;
  auto s1 = b.AddState("s1", StateDistribution::kSingle, DictFactory());
  auto s2 = b.AddState("s2", StateDistribution::kSingle, DictFactory());
  auto t1 = b.AddEntryTask("t1", Noop());
  auto t2 = b.AddTask("t2", Noop());
  EXPECT_TRUE(b.SetAccess(t1, s1, AccessMode::kLocal).ok());
  EXPECT_TRUE(b.SetAccess(t2, s2, AccessMode::kLocal).ok());
  EXPECT_TRUE(b.Connect(t1, t2, Dispatch::kOneToAny).ok());
  auto g = std::move(b).Build();
  ASSERT_TRUE(g.ok());

  auto a = AllocateSdg(*g, 4);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->task_nodes[t1], a->state_nodes[s1]);
  EXPECT_EQ(a->task_nodes[t2], a->state_nodes[s2]);
}

TEST(AllocationTest, SeparateStatesSpreadAcrossNodes) {
  // Step 2: SEs that are not on cycles go to separate nodes.
  SdgBuilder b;
  auto s1 = b.AddState("s1", StateDistribution::kSingle, DictFactory());
  auto s2 = b.AddState("s2", StateDistribution::kSingle, DictFactory());
  auto t = b.AddEntryTask("t", Noop());
  EXPECT_TRUE(b.SetAccess(t, s1, AccessMode::kLocal).ok());
  (void)s2;
  auto g = std::move(b).Build();
  ASSERT_TRUE(g.ok());
  auto a = AllocateSdg(*g, 4);
  ASSERT_TRUE(a.ok());
  EXPECT_NE(a->state_nodes[s1], a->state_nodes[s2]);
}

TEST(AllocationTest, CycleStatesColocate) {
  // Step 1: SEs accessed inside a dataflow cycle share one node.
  SdgBuilder b;
  auto s1 = b.AddState("s1", StateDistribution::kSingle, DictFactory());
  auto s2 = b.AddState("s2", StateDistribution::kSingle, DictFactory());
  auto t1 = b.AddEntryTask("t1", Noop());
  auto t2 = b.AddTask("t2", Noop());
  EXPECT_TRUE(b.SetAccess(t1, s1, AccessMode::kLocal).ok());
  EXPECT_TRUE(b.SetAccess(t2, s2, AccessMode::kLocal).ok());
  EXPECT_TRUE(b.Connect(t1, t2, Dispatch::kOneToAny).ok());
  EXPECT_TRUE(b.Connect(t2, t1, Dispatch::kOneToAny).ok());  // cycle
  auto g = std::move(b).Build();
  ASSERT_TRUE(g.ok());
  auto a = AllocateSdg(*g, 4);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->state_nodes[s1], a->state_nodes[s2]);
  EXPECT_EQ(a->task_nodes[t1], a->task_nodes[t2]);
}

TEST(AllocationTest, StatelessTasksGetOwnNodes) {
  // Step 4: a stateless TE must still receive a node.
  SdgBuilder b;
  auto t1 = b.AddEntryTask("t1", Noop());
  auto t2 = b.AddTask("t2", Noop());
  EXPECT_TRUE(b.Connect(t1, t2, Dispatch::kOneToAny).ok());
  auto g = std::move(b).Build();
  ASSERT_TRUE(g.ok());
  auto a = AllocateSdg(*g, 4);
  ASSERT_TRUE(a.ok());
  EXPECT_LT(a->task_nodes[t1], 4u);
  EXPECT_LT(a->task_nodes[t2], 4u);
  EXPECT_NE(a->task_nodes[t1], a->task_nodes[t2]);
}

TEST(AllocationTest, WrapsRoundRobinWhenFewNodes) {
  SdgBuilder b;
  std::vector<StateId> states;
  for (int i = 0; i < 5; ++i) {
    states.push_back(
        b.AddState("s" + std::to_string(i), StateDistribution::kSingle, DictFactory()));
  }
  auto t = b.AddEntryTask("t", Noop());
  EXPECT_TRUE(b.SetAccess(t, states[0], AccessMode::kLocal).ok());
  auto g = std::move(b).Build();
  ASSERT_TRUE(g.ok());
  auto a = AllocateSdg(*g, 2);
  ASSERT_TRUE(a.ok());
  for (StateId s : states) {
    EXPECT_LT(a->state_nodes[s], 2u);
  }
}

TEST(AllocationTest, ToStringMentionsElements) {
  SdgBuilder b;
  auto s = b.AddState("mystate", StateDistribution::kSingle, DictFactory());
  auto t = b.AddEntryTask("mytask", Noop());
  EXPECT_TRUE(b.SetAccess(t, s, AccessMode::kLocal).ok());
  auto g = std::move(b).Build();
  ASSERT_TRUE(g.ok());
  auto a = AllocateSdg(*g, 2);
  ASSERT_TRUE(a.ok());
  std::string str = a->ToString(*g);
  EXPECT_NE(str.find("mystate"), std::string::npos);
  EXPECT_NE(str.find("mytask"), std::string::npos);
}

}  // namespace
}  // namespace sdg::graph
