#include "src/graph/sdg.h"

#include <gtest/gtest.h>

#include "src/state/keyed_dict.h"
#include "src/state/sparse_matrix.h"

namespace sdg::graph {
namespace {

state::StateFactory DictFactory() {
  return [] { return std::make_unique<state::KeyedDict<int64_t, int64_t>>(); };
}

TaskFn Noop() {
  return [](const Tuple&, TaskContext&) {};
}

CollectorFn NoopCollector() {
  return [](const std::vector<Tuple>&, TaskContext&) {};
}

// Builds the Fig. 1 collaborative-filtering SDG shape: five TEs, two SEs.
Result<Sdg> BuildCfShape() {
  SdgBuilder b;
  auto user_item = b.AddState("userItem", StateDistribution::kPartitioned,
                              [] { return std::make_unique<state::SparseMatrix>(); });
  auto co_occ = b.AddState("coOcc", StateDistribution::kPartial,
                           [] { return std::make_unique<state::SparseMatrix>(); });

  auto update_user = b.AddEntryTask("updateUserItem", Noop());
  auto update_co = b.AddTask("updateCoOcc", Noop());
  auto get_user_vec = b.AddEntryTask("getUserVec", Noop());
  auto get_rec_vec = b.AddTask("getRecVec", Noop());
  auto merge = b.AddCollectorTask("merge", NoopCollector());

  EXPECT_TRUE(b.SetAccess(update_user, user_item, AccessMode::kPartitioned).ok());
  EXPECT_TRUE(b.SetAccess(update_co, co_occ, AccessMode::kLocal).ok());
  EXPECT_TRUE(b.SetAccess(get_user_vec, user_item, AccessMode::kPartitioned).ok());
  EXPECT_TRUE(b.SetAccess(get_rec_vec, co_occ, AccessMode::kGlobal).ok());

  EXPECT_TRUE(b.Connect(update_user, update_co, Dispatch::kOneToAny).ok());
  EXPECT_TRUE(b.Connect(get_user_vec, get_rec_vec, Dispatch::kOneToAll).ok());
  EXPECT_TRUE(b.Connect(get_rec_vec, merge, Dispatch::kAllToOne).ok());
  return std::move(b).Build();
}

TEST(SdgBuilderTest, BuildsCfGraph) {
  auto g = BuildCfShape();
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_EQ(g->tasks().size(), 5u);
  EXPECT_EQ(g->states().size(), 2u);
  EXPECT_EQ(g->edges().size(), 3u);
}

TEST(SdgBuilderTest, LookupByName) {
  auto g = BuildCfShape();
  ASSERT_TRUE(g.ok());
  auto t = g->TaskByName("merge");
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(g->task(*t).is_collector());
  EXPECT_FALSE(g->TaskByName("nope").ok());
  auto s = g->StateByName("coOcc");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(g->state(*s).distribution, StateDistribution::kPartial);
  EXPECT_FALSE(g->StateByName("nope").ok());
}

TEST(SdgBuilderTest, OutAndInEdges) {
  auto g = BuildCfShape();
  ASSERT_TRUE(g.ok());
  auto get_user_vec = g->TaskByName("getUserVec").value();
  auto get_rec_vec = g->TaskByName("getRecVec").value();
  EXPECT_EQ(g->OutEdges(get_user_vec).size(), 1u);
  EXPECT_EQ(g->InEdges(get_rec_vec).size(), 1u);
  EXPECT_EQ(g->OutEdges(get_user_vec)[0]->dispatch, Dispatch::kOneToAll);
}

TEST(SdgBuilderTest, TaskMayAccessOnlyOneSe) {
  SdgBuilder b;
  auto s1 = b.AddState("s1", StateDistribution::kSingle, DictFactory());
  auto s2 = b.AddState("s2", StateDistribution::kSingle, DictFactory());
  auto t = b.AddEntryTask("t", Noop());
  EXPECT_TRUE(b.SetAccess(t, s1, AccessMode::kLocal).ok());
  Status second = b.SetAccess(t, s2, AccessMode::kLocal);
  EXPECT_EQ(second.code(), StatusCode::kFailedPrecondition);
  // Re-declaring the same SE is fine (e.g. refining the mode).
  EXPECT_TRUE(b.SetAccess(t, s1, AccessMode::kLocal).ok());
}

TEST(SdgValidationTest, RejectsEmptyGraph) {
  SdgBuilder b;
  auto g = std::move(b).Build();
  EXPECT_FALSE(g.ok());
}

TEST(SdgValidationTest, RejectsGraphWithoutEntry) {
  SdgBuilder b;
  b.AddTask("t", Noop());
  auto g = std::move(b).Build();
  ASSERT_FALSE(g.ok());
  EXPECT_NE(g.status().message().find("entry"), std::string::npos);
}

TEST(SdgValidationTest, RejectsPartitionedDispatchWithoutKey) {
  SdgBuilder b;
  auto t1 = b.AddEntryTask("t1", Noop());
  auto t2 = b.AddTask("t2", Noop());
  EXPECT_TRUE(b.Connect(t1, t2, Dispatch::kPartitioned).ok());  // key_field -1
  auto g = std::move(b).Build();
  ASSERT_FALSE(g.ok());
  EXPECT_NE(g.status().message().find("key"), std::string::npos);
}

TEST(SdgValidationTest, RejectsPartitionedAccessWithMismatchedDispatch) {
  // §3.2: dataflow partitioning must match the state access pattern.
  SdgBuilder b;
  auto s = b.AddState("s", StateDistribution::kPartitioned, DictFactory());
  auto t1 = b.AddEntryTask("t1", Noop());
  auto t2 = b.AddTask("t2", Noop());
  EXPECT_TRUE(b.SetAccess(t2, s, AccessMode::kPartitioned).ok());
  EXPECT_TRUE(b.Connect(t1, t2, Dispatch::kOneToAny).ok());
  auto g = std::move(b).Build();
  EXPECT_FALSE(g.ok());
}

TEST(SdgValidationTest, RejectsGlobalAccessToNonPartialState) {
  SdgBuilder b;
  auto s = b.AddState("s", StateDistribution::kSingle, DictFactory());
  auto t = b.AddEntryTask("t", Noop());
  EXPECT_TRUE(b.SetAccess(t, s, AccessMode::kGlobal).ok());
  auto g = std::move(b).Build();
  EXPECT_FALSE(g.ok());
}

TEST(SdgValidationTest, RejectsLocalAccessToPartitionedState) {
  SdgBuilder b;
  auto s = b.AddState("s", StateDistribution::kPartitioned, DictFactory());
  auto t = b.AddEntryTask("t", Noop());
  EXPECT_TRUE(b.SetAccess(t, s, AccessMode::kLocal).ok());
  auto g = std::move(b).Build();
  EXPECT_FALSE(g.ok());
}

TEST(SdgValidationTest, RejectsAllToOneIntoNonCollector) {
  SdgBuilder b;
  auto t1 = b.AddEntryTask("t1", Noop());
  auto t2 = b.AddTask("t2", Noop());
  EXPECT_TRUE(b.Connect(t1, t2, Dispatch::kAllToOne).ok());
  auto g = std::move(b).Build();
  EXPECT_FALSE(g.ok());
}

TEST(SdgValidationTest, RejectsCollectorWithoutAllToOne) {
  SdgBuilder b;
  auto t1 = b.AddEntryTask("t1", Noop());
  auto t2 = b.AddCollectorTask("t2", NoopCollector());
  EXPECT_TRUE(b.Connect(t1, t2, Dispatch::kOneToAny).ok());
  auto g = std::move(b).Build();
  EXPECT_FALSE(g.ok());
}

TEST(SdgValidationTest, RejectsZeroInstances) {
  SdgBuilder b;
  auto t = b.AddEntryTask("t", Noop());
  b.SetInitialInstances(t, 0);
  auto g = std::move(b).Build();
  EXPECT_FALSE(g.ok());
}

TEST(SdgCycleTest, DetectsCycles) {
  SdgBuilder b;
  auto t1 = b.AddEntryTask("t1", Noop());
  auto t2 = b.AddTask("t2", Noop());
  auto t3 = b.AddTask("t3", Noop());
  EXPECT_TRUE(b.Connect(t1, t2, Dispatch::kOneToAny).ok());
  EXPECT_TRUE(b.Connect(t2, t3, Dispatch::kOneToAny).ok());
  EXPECT_TRUE(b.Connect(t3, t2, Dispatch::kOneToAny).ok());  // cycle t2<->t3
  auto g = std::move(b).Build();
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  auto cyclic = g->TasksOnCycles();
  EXPECT_EQ(cyclic.size(), 2u);
  EXPECT_TRUE(std::find(cyclic.begin(), cyclic.end(), t2) != cyclic.end());
  EXPECT_TRUE(std::find(cyclic.begin(), cyclic.end(), t3) != cyclic.end());
  EXPECT_TRUE(std::find(cyclic.begin(), cyclic.end(), t1) == cyclic.end());
}

TEST(SdgCycleTest, AcyclicGraphHasNoCycles) {
  auto g = BuildCfShape();
  ASSERT_TRUE(g.ok());
  EXPECT_TRUE(g->TasksOnCycles().empty());
}

TEST(SdgDotTest, RendersAllElements) {
  auto g = BuildCfShape();
  ASSERT_TRUE(g.ok());
  std::string dot = g->ToDot();
  EXPECT_NE(dot.find("updateUserItem"), std::string::npos);
  EXPECT_NE(dot.find("coOcc"), std::string::npos);
  EXPECT_NE(dot.find("partial"), std::string::npos);
  EXPECT_NE(dot.find("all-to-one"), std::string::npos);
}

TEST(SdgNamesTest, EnumNamesAreStable) {
  EXPECT_EQ(StateDistributionName(StateDistribution::kPartial), "partial");
  EXPECT_EQ(AccessModeName(AccessMode::kGlobal), "global");
  EXPECT_EQ(DispatchName(Dispatch::kOneToAll), "one-to-all");
}

}  // namespace
}  // namespace sdg::graph
