// Frame codec tests: round-trips, rejection of malformed input as Status
// (never a crash), and incremental decoding across arbitrary read() splits.
#include "src/net/frame.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace sdg::net {
namespace {

runtime::DataItem MakeItem(uint64_t ts) {
  runtime::DataItem item;
  item.from = runtime::SourceId{7, 3};
  item.ts = ts;
  item.user_tag = ts * 10;
  item.replayed = (ts % 2) == 0;
  item.payload = Tuple{Value(static_cast<int64_t>(ts)), Value("payload")};
  return item;
}

std::vector<uint8_t> EncodeOne(FrameType type,
                               const std::vector<uint8_t>& payload) {
  BinaryWriter w;
  EncodeFrame(w, type, payload.data(), payload.size());
  return std::move(w).TakeBuffer();
}

TEST(FrameCodecTest, RoundTripSingleFrame) {
  std::vector<uint8_t> payload = {1, 2, 3, 4, 5};
  auto bytes = EncodeOne(FrameType::kData, payload);
  EXPECT_EQ(bytes.size(), kFrameHeaderBytes + payload.size());

  FrameDecoder dec;
  dec.Feed(bytes.data(), bytes.size());
  Frame frame;
  auto ready = dec.Next(&frame);
  ASSERT_TRUE(ready.ok());
  ASSERT_TRUE(*ready);
  EXPECT_EQ(frame.type, FrameType::kData);
  EXPECT_EQ(frame.payload, payload);
  // Exactly one frame; the decoder is drained.
  auto more = dec.Next(&frame);
  ASSERT_TRUE(more.ok());
  EXPECT_FALSE(*more);
  EXPECT_EQ(dec.buffered_bytes(), 0u);
}

TEST(FrameCodecTest, EmptyPayloadFrame) {
  auto bytes = EncodeOne(FrameType::kAck, {});
  FrameDecoder dec;
  dec.Feed(bytes.data(), bytes.size());
  Frame frame;
  auto ready = dec.Next(&frame);
  ASSERT_TRUE(ready.ok());
  ASSERT_TRUE(*ready);
  EXPECT_EQ(frame.type, FrameType::kAck);
  EXPECT_TRUE(frame.payload.empty());
}

TEST(FrameCodecTest, TruncatedFrameIsIncompleteNotError) {
  auto bytes = EncodeOne(FrameType::kData, {9, 9, 9, 9});
  FrameDecoder dec;
  Frame frame;
  // Feed everything but the last byte, one byte at a time: never an error,
  // never a frame.
  for (size_t i = 0; i + 1 < bytes.size(); ++i) {
    dec.Feed(&bytes[i], 1);
    auto ready = dec.Next(&frame);
    ASSERT_TRUE(ready.ok()) << "offset " << i;
    EXPECT_FALSE(*ready) << "offset " << i;
  }
  dec.Feed(&bytes[bytes.size() - 1], 1);
  auto ready = dec.Next(&frame);
  ASSERT_TRUE(ready.ok());
  ASSERT_TRUE(*ready);
  EXPECT_EQ(frame.payload.size(), 4u);
}

TEST(FrameCodecTest, CorruptMagicPoisonsDecoder) {
  auto bytes = EncodeOne(FrameType::kData, {1});
  bytes[0] ^= 0xFF;
  FrameDecoder dec;
  dec.Feed(bytes.data(), bytes.size());
  Frame frame;
  auto ready = dec.Next(&frame);
  ASSERT_FALSE(ready.ok());
  EXPECT_EQ(ready.status().code(), StatusCode::kDataLoss);
  // Poisoned: even fresh valid bytes cannot resynchronise the stream.
  auto good = EncodeOne(FrameType::kData, {2});
  dec.Feed(good.data(), good.size());
  auto again = dec.Next(&frame);
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.status().code(), StatusCode::kDataLoss);
}

TEST(FrameCodecTest, OversizedLengthRejected) {
  BinaryWriter w;
  w.Write<uint32_t>(kFrameMagic);
  w.Write<uint8_t>(static_cast<uint8_t>(FrameType::kData));
  w.Write<uint32_t>(kMaxFramePayload + 1);
  auto bytes = std::move(w).TakeBuffer();
  FrameDecoder dec;
  dec.Feed(bytes.data(), bytes.size());
  Frame frame;
  auto ready = dec.Next(&frame);
  ASSERT_FALSE(ready.ok());
  EXPECT_EQ(ready.status().code(), StatusCode::kDataLoss);
}

TEST(FrameCodecTest, UnknownTypeRejected) {
  BinaryWriter w;
  w.Write<uint32_t>(kFrameMagic);
  w.Write<uint8_t>(200);
  w.Write<uint32_t>(0);
  auto bytes = std::move(w).TakeBuffer();
  FrameDecoder dec;
  dec.Feed(bytes.data(), bytes.size());
  Frame frame;
  auto ready = dec.Next(&frame);
  ASSERT_FALSE(ready.ok());
  EXPECT_EQ(ready.status().code(), StatusCode::kDataLoss);
}

TEST(FrameCodecTest, RandomSplitFeedDecodesEveryFrame) {
  // Many frames of varying sizes, fed in random read()-sized slices: the
  // incremental decoder must produce the exact frame sequence regardless of
  // where the slices fall.
  std::vector<std::vector<uint8_t>> payloads;
  std::vector<uint8_t> stream;
  Rng rng(42);
  for (int i = 0; i < 200; ++i) {
    std::vector<uint8_t> p(rng.NextBounded(300));
    for (auto& b : p) {
      b = static_cast<uint8_t>(rng.NextBounded(256));
    }
    auto bytes = EncodeOne(FrameType::kData, p);
    stream.insert(stream.end(), bytes.begin(), bytes.end());
    payloads.push_back(std::move(p));
  }

  FrameDecoder dec;
  size_t fed = 0;
  size_t decoded = 0;
  Frame frame;
  while (fed < stream.size()) {
    size_t n = std::min<size_t>(1 + rng.NextBounded(97), stream.size() - fed);
    dec.Feed(stream.data() + fed, n);
    fed += n;
    for (;;) {
      auto ready = dec.Next(&frame);
      ASSERT_TRUE(ready.ok());
      if (!*ready) {
        break;
      }
      ASSERT_LT(decoded, payloads.size());
      EXPECT_EQ(frame.payload, payloads[decoded]);
      ++decoded;
    }
  }
  EXPECT_EQ(decoded, payloads.size());
  EXPECT_EQ(dec.buffered_bytes(), 0u);
}

TEST(FrameMessageTest, HandshakeRoundTrip) {
  Handshake hs;
  hs.deployment_id = 0xDEADBEEF12345678ull;
  hs.source_task = 11;
  hs.source_instance = 2;
  hs.entry = "line";
  hs.emit_clock = 991;
  auto decoded = Handshake::Decode(hs.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->protocol, kProtocolVersion);
  EXPECT_EQ(decoded->deployment_id, hs.deployment_id);
  EXPECT_EQ(decoded->source_task, 11u);
  EXPECT_EQ(decoded->source_instance, 2u);
  EXPECT_EQ(decoded->entry, "line");
  EXPECT_EQ(decoded->emit_clock, 991u);
}

TEST(FrameMessageTest, HandshakeAckRoundTrip) {
  HandshakeAck ack;
  ack.accepted = true;
  ack.acked_ts = 77;
  auto decoded = HandshakeAck::Decode(ack.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->accepted);
  EXPECT_EQ(decoded->acked_ts, 77u);

  HandshakeAck nak;
  nak.accepted = false;
  nak.message = "wrong protocol";
  auto d2 = HandshakeAck::Decode(nak.Encode());
  ASSERT_TRUE(d2.ok());
  EXPECT_FALSE(d2->accepted);
  EXPECT_EQ(d2->message, "wrong protocol");
}

TEST(FrameMessageTest, DataBatchRoundTrip) {
  DataBatch batch;
  for (uint64_t ts = 1; ts <= 5; ++ts) {
    batch.items.push_back(MakeItem(ts));
  }
  BinaryWriter w;
  batch.EncodeTo(w);
  auto decoded = DataBatch::Decode(w.buffer());
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->items.size(), 5u);
  for (uint64_t ts = 1; ts <= 5; ++ts) {
    const auto& item = decoded->items[ts - 1];
    EXPECT_EQ(item.ts, ts);
    EXPECT_EQ(item.from.task, 7u);
    EXPECT_EQ(item.user_tag, ts * 10);
    EXPECT_EQ(item.replayed, (ts % 2) == 0);
    EXPECT_EQ(item.payload[0].AsInt(), static_cast<int64_t>(ts));
    EXPECT_EQ(item.payload[1].AsString(), "payload");
  }
}

TEST(FrameMessageTest, TruncatedMessagesRejected) {
  Handshake hs;
  hs.entry = "counts";
  auto bytes = hs.Encode();
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    std::vector<uint8_t> partial(bytes.begin(), bytes.begin() + cut);
    EXPECT_FALSE(Handshake::Decode(partial).ok()) << "cut at " << cut;
  }
  DataBatch batch;
  batch.items.push_back(MakeItem(1));
  BinaryWriter w;
  batch.EncodeTo(w);
  const auto& full = w.buffer();
  for (size_t cut = 0; cut < full.size(); ++cut) {
    std::vector<uint8_t> partial(full.begin(), full.begin() + cut);
    EXPECT_FALSE(DataBatch::Decode(partial).ok()) << "cut at " << cut;
  }
}

TEST(FrameMessageTest, TrailingBytesRejected) {
  AckMsg msg;
  msg.acked_ts = 5;
  auto bytes = msg.Encode();
  bytes.push_back(0);
  EXPECT_FALSE(AckMsg::Decode(bytes).ok());
}

TEST(FrameMessageTest, RequestRoundTrip) {
  RequestMsg req;
  req.request_id = 0x1122334455667788ull;
  req.op = kOpGet;
  req.flags = kReadStale;
  req.key = -42;
  req.value = "ignored for gets";
  req.max_epoch_lag = 7;
  auto decoded = RequestMsg::Decode(req.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->request_id, req.request_id);
  EXPECT_EQ(decoded->op, kOpGet);
  EXPECT_EQ(decoded->flags, kReadStale);
  EXPECT_EQ(decoded->key, -42);
  EXPECT_EQ(decoded->value, req.value);
  EXPECT_EQ(decoded->max_epoch_lag, 7u);

  for (size_t cut = 0; cut + 1 < req.Encode().size(); ++cut) {
    auto bytes = req.Encode();
    bytes.resize(cut);
    EXPECT_FALSE(RequestMsg::Decode(bytes).ok()) << "cut at " << cut;
  }
}

TEST(FrameMessageTest, ResponseRoundTrip) {
  ResponseMsg resp;
  resp.request_id = 99;
  resp.code = kRespOverloaded;
  resp.flags = kRespFromReplica;
  resp.value = std::string(300, 'x');  // multi-byte varint length
  resp.epoch = 1234567;
  auto decoded = ResponseMsg::Decode(resp.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->request_id, 99u);
  EXPECT_EQ(decoded->code, kRespOverloaded);
  EXPECT_EQ(decoded->flags, kRespFromReplica);
  EXPECT_EQ(decoded->value, resp.value);
  EXPECT_EQ(decoded->epoch, 1234567u);
}

TEST(FrameMessageTest, ReplicaSubscribeRoundTrip) {
  ReplicaSubscribeMsg sub;
  sub.deployment_id = 31337;
  sub.member_id = 5;
  sub.state = "store";
  auto decoded = ReplicaSubscribeMsg::Decode(sub.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->protocol, kProtocolVersion);
  EXPECT_EQ(decoded->deployment_id, 31337u);
  EXPECT_EQ(decoded->member_id, 5u);
  EXPECT_EQ(decoded->state, "store");
}

TEST(FrameMessageTest, ReplicaEpochRoundTrip) {
  ReplicaEpochMsg msg;
  msg.partition = 3;
  msg.member_id = 2;
  msg.kind = kEpochDelta;
  msg.epoch = 41;
  msg.queue_depth = 17;
  msg.chunks = {{1, 2, 3}, {}, {0xFF, 0x00, 0x7F}};
  auto decoded = ReplicaEpochMsg::Decode(msg.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->partition, 3u);
  EXPECT_EQ(decoded->member_id, 2u);
  EXPECT_EQ(decoded->kind, kEpochDelta);
  EXPECT_EQ(decoded->epoch, 41u);
  EXPECT_EQ(decoded->queue_depth, 17u);
  EXPECT_EQ(decoded->chunks, msg.chunks);

  // An announce carries no chunks.
  ReplicaEpochMsg announce;
  announce.kind = kEpochAnnounce;
  announce.epoch = 42;
  auto d2 = ReplicaEpochMsg::Decode(announce.Encode());
  ASSERT_TRUE(d2.ok());
  EXPECT_EQ(d2->kind, kEpochAnnounce);
  EXPECT_TRUE(d2->chunks.empty());
}

}  // namespace
}  // namespace sdg::net
