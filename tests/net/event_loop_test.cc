// EventLoop unit tests (registration, readiness dispatch, interest updates,
// Post, and the Deregister-waits-out-callbacks contract) plus the Connection
// Close() drain guarantee in both operating modes: every frame Send()
// accepted before Close must reach the peer even when Close follows the last
// Send immediately.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "src/net/connection.h"
#include "src/net/event_loop.h"
#include "src/net/frame.h"
#include "src/net/socket.h"

namespace sdg::net {
namespace {

bool WaitUntil(const std::function<bool()>& pred, int timeout_ms = 10000) {
  auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) {
      return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return pred();
}

// A nonblocking pipe: the read end is what gets registered on the loop.
struct Pipe {
  int rd = -1;
  int wr = -1;
  Pipe() {
    int fds[2] = {-1, -1};
    EXPECT_EQ(pipe(fds), 0);
    rd = fds[0];
    wr = fds[1];
    fcntl(rd, F_SETFL, fcntl(rd, F_GETFL, 0) | O_NONBLOCK);
  }
  ~Pipe() {
    if (rd >= 0) close(rd);
    if (wr >= 0) close(wr);
  }
};

class PipeReader : public EventLoop::Handler {
 public:
  explicit PipeReader(int fd) : fd_(fd) {}
  void OnReadable() override {
    char buf[256];
    ssize_t n;
    while ((n = read(fd_, buf, sizeof(buf))) > 0) {
      bytes_.fetch_add(static_cast<uint64_t>(n));
    }
    dispatches_.fetch_add(1);
  }
  uint64_t bytes() const { return bytes_.load(); }
  uint64_t dispatches() const { return dispatches_.load(); }

 private:
  int fd_;
  std::atomic<uint64_t> bytes_{0};
  std::atomic<uint64_t> dispatches_{0};
};

TEST(EventLoopTest, DispatchesReadableAndStopsAfterDeregister) {
  EventLoop loop;
  Pipe p;
  PipeReader reader(p.rd);
  ASSERT_TRUE(loop.Register(p.rd, &reader, /*want_read=*/true,
                            /*want_write=*/false)
                  .ok());
  ASSERT_EQ(write(p.wr, "hello", 5), 5);
  ASSERT_TRUE(WaitUntil([&] { return reader.bytes() == 5; }));

  loop.Deregister(p.rd);
  uint64_t dispatches_at_deregister = reader.dispatches();
  // Data written after Deregister must never reach the handler.
  ASSERT_EQ(write(p.wr, "again", 5), 5);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(reader.bytes(), 5u);
  EXPECT_EQ(reader.dispatches(), dispatches_at_deregister);
}

TEST(EventLoopTest, UpdateEventsGatesReadInterest) {
  EventLoop loop;
  Pipe p;
  PipeReader reader(p.rd);
  ASSERT_TRUE(loop.Register(p.rd, &reader, /*want_read=*/false,
                            /*want_write=*/false)
                  .ok());
  // Interest off: pending data must not be dispatched.
  ASSERT_EQ(write(p.wr, "x", 1), 1);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(reader.bytes(), 0u);
  // Level-triggered: enabling interest delivers the already-pending byte.
  ASSERT_TRUE(loop.UpdateEvents(p.rd, /*want_read=*/true,
                                /*want_write=*/false)
                  .ok());
  ASSERT_TRUE(WaitUntil([&] { return reader.bytes() == 1; }));
  loop.Deregister(p.rd);
}

TEST(EventLoopTest, DispatchesWritable) {
  EventLoop loop;
  Pipe p;
  class Writable : public EventLoop::Handler {
   public:
    void OnWritable() override { hits.fetch_add(1); }
    std::atomic<int> hits{0};
  } handler;
  // An empty pipe's write end is immediately writable.
  ASSERT_TRUE(loop.Register(p.wr, &handler, /*want_read=*/false,
                            /*want_write=*/true)
                  .ok());
  ASSERT_TRUE(WaitUntil([&] { return handler.hits.load() > 0; }));
  loop.Deregister(p.wr);
}

TEST(EventLoopTest, PostRunsOnLoopThread) {
  EventLoop loop;
  std::atomic<bool> ran{false};
  std::atomic<bool> on_loop{false};
  loop.Post([&] {
    on_loop.store(loop.InLoopThread());
    ran.store(true);
  });
  ASSERT_TRUE(WaitUntil([&] { return ran.load(); }));
  EXPECT_TRUE(on_loop.load());
}

TEST(EventLoopTest, DeregisterWaitsOutInFlightCallback) {
  EventLoop loop;
  Pipe p;
  class SlowReader : public EventLoop::Handler {
   public:
    explicit SlowReader(int fd) : fd_(fd) {}
    void OnReadable() override {
      entered.store(true);
      std::this_thread::sleep_for(std::chrono::milliseconds(150));
      char buf[16];
      while (read(fd_, buf, sizeof(buf)) > 0) {
      }
      finished.store(true);
    }
    std::atomic<bool> entered{false};
    std::atomic<bool> finished{false};

   private:
    int fd_;
  } reader(p.rd);

  ASSERT_TRUE(loop.Register(p.rd, &reader, /*want_read=*/true,
                            /*want_write=*/false)
                  .ok());
  ASSERT_EQ(write(p.wr, "x", 1), 1);
  ASSERT_TRUE(WaitUntil([&] { return reader.entered.load(); }));
  // The callback is sleeping right now; Deregister must block until it is
  // done, so the handler may be destroyed the moment it returns.
  loop.Deregister(p.rd);
  EXPECT_TRUE(reader.finished.load());
}

// ---------------------------------------------------------------------------
// Connection Close() drain: Send N frames, Close immediately, receiver must
// get all N (the writer/loop flushes what it already accepted).

std::vector<uint8_t> MakeFrameBytes(uint32_t seq, size_t payload_bytes) {
  std::vector<uint8_t> payload(payload_bytes, static_cast<uint8_t>(seq));
  payload[0] = static_cast<uint8_t>(seq >> 0);
  payload[1] = static_cast<uint8_t>(seq >> 8);
  BinaryWriter frame(kFrameHeaderBytes + payload.size());
  EncodeFrame(frame, FrameType::kData, payload.data(), payload.size());
  return std::move(frame).TakeBuffer();
}

void CloseDrainTest(bool use_event_loop) {
  constexpr uint32_t kFrames = 200;
  constexpr size_t kPayloadBytes = 512;

  auto listener = Listener::Bind(0);
  ASSERT_TRUE(listener.ok());
  std::atomic<uint32_t> received{0};
  std::atomic<bool> in_order{true};
  std::thread receiver([&] {
    auto sock = listener->Accept();
    ASSERT_TRUE(sock.ok());
    FrameDecoder carry;
    for (uint32_t i = 0; i < kFrames; ++i) {
      auto frame = ReadFrameBlocking(*sock, carry);
      if (!frame.ok()) {
        return;  // premature EOF: the count assertion below fails
      }
      uint32_t seq = static_cast<uint32_t>(frame->payload[0]) |
                     static_cast<uint32_t>(frame->payload[1]) << 8;
      if (seq != i) {
        in_order.store(false);
      }
      received.fetch_add(1);
    }
  });

  auto sock = Socket::Connect("127.0.0.1", listener->port());
  ASSERT_TRUE(sock.ok());
  Connection::Options copts;
  copts.send_queue_frames = 32;
  if (use_event_loop) {
    copts.loop = EventLoop::Shared();
  }
  // on_error may legitimately fire if the receiver closes its end (EOF) the
  // instant it has read the last frame, so it is not asserted on here — the
  // drain guarantee is about frame delivery, not about outliving the peer.
  auto conn = std::make_unique<Connection>(
      std::move(*sock), copts, [](Frame) {}, [](const Status&) {});

  for (uint32_t i = 0; i < kFrames; ++i) {
    ASSERT_TRUE(conn->Send(MakeFrameBytes(i, kPayloadBytes))) << "frame " << i;
  }
  // Stop immediately: everything Send() accepted must still hit the wire.
  conn->Close();

  receiver.join();
  EXPECT_EQ(received.load(), kFrames);
  EXPECT_TRUE(in_order.load());
}

TEST(ConnectionCloseDrainTest, EventLoopMode) {
  CloseDrainTest(/*use_event_loop=*/true);
}

TEST(ConnectionCloseDrainTest, ThreadedMode) {
  CloseDrainTest(/*use_event_loop=*/false);
}

}  // namespace
}  // namespace sdg::net
