// Multiplexed-transport tests: mux message codec round-trips plus
// truncation/corruption fuzz (malformed bytes surface as Status, never a
// crash), mux-framing round-trips across arbitrary read() splits, per-stream
// flow control (a hot stream out of credits blocks only its own sender), and
// the reconnect-replay contract per stream (each stream replays past its OWN
// durable watermark after the shared socket dies).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "src/common/rng.h"
#include "src/net/channel_server.h"
#include "src/net/event_loop.h"
#include "src/net/frame.h"
#include "src/net/mux.h"
#include "src/net/remote_channel.h"

namespace sdg::net {
namespace {

using runtime::DataItem;
using runtime::OutputBuffer;

bool WaitUntil(const std::function<bool()>& pred, int timeout_ms = 10000) {
  auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) {
      return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return pred();
}

DataItem MakeItem(uint64_t ts, uint32_t instance) {
  DataItem item;
  item.from = runtime::SourceId{runtime::kRemoteSourceTask, instance};
  item.ts = ts;
  item.payload = Tuple{Value(static_cast<int64_t>(ts))};
  return item;
}

std::vector<DataItem> MakeItems(uint64_t first_ts, uint64_t last_ts,
                                uint32_t instance) {
  std::vector<DataItem> items;
  for (uint64_t ts = first_ts; ts <= last_ts; ++ts) {
    items.push_back(MakeItem(ts, instance));
  }
  return items;
}

// --- Codec round-trips --------------------------------------------------------

TEST(MuxCodecTest, HelloRoundTrip) {
  MuxHelloMsg m;
  m.protocol = kProtocolVersionMux;
  m.deployment_id = 0xdeadbeefcafe;
  auto decoded = MuxHelloMsg::Decode(m.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->protocol, m.protocol);
  EXPECT_EQ(decoded->deployment_id, m.deployment_id);
}

TEST(MuxCodecTest, HelloAckRoundTrip) {
  MuxHelloAckMsg m;
  m.accepted = true;
  m.window = 128;
  m.message = "";
  auto decoded = MuxHelloAckMsg::Decode(m.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->accepted);
  EXPECT_EQ(decoded->window, 128u);

  MuxHelloAckMsg rej;
  rej.accepted = false;
  rej.message = "deployment mismatch";
  auto decoded2 = MuxHelloAckMsg::Decode(rej.Encode());
  ASSERT_TRUE(decoded2.ok());
  EXPECT_FALSE(decoded2->accepted);
  EXPECT_EQ(decoded2->message, "deployment mismatch");
}

TEST(MuxCodecTest, OpenRoundTrip) {
  MuxOpenMsg m;
  m.kind = kMuxStreamReply;
  m.deployment_id = 42;
  m.member_id = 7;
  m.source_task = 1000;
  m.source_instance = 3;
  m.entry = "wordcount";
  m.emit_clock = 12345678901234ull;
  auto decoded = MuxOpenMsg::Decode(m.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->kind, kMuxStreamReply);
  EXPECT_EQ(decoded->deployment_id, 42u);
  EXPECT_EQ(decoded->member_id, 7u);
  EXPECT_EQ(decoded->source_task, 1000u);
  EXPECT_EQ(decoded->source_instance, 3u);
  EXPECT_EQ(decoded->entry, "wordcount");
  EXPECT_EQ(decoded->emit_clock, 12345678901234ull);
}

TEST(MuxCodecTest, OpenAckAndWindowRoundTrip) {
  MuxOpenAckMsg ack;
  ack.accepted = true;
  ack.acked_ts = 999;
  ack.window = 64;
  auto decoded = MuxOpenAckMsg::Decode(ack.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->accepted);
  EXPECT_EQ(decoded->acked_ts, 999u);
  EXPECT_EQ(decoded->window, 64u);

  MuxWindowMsg win;
  win.credits = 17;
  auto decoded2 = MuxWindowMsg::Decode(win.Encode());
  ASSERT_TRUE(decoded2.ok());
  EXPECT_EQ(decoded2->credits, 17u);
}

TEST(MuxCodecTest, AckBatchRoundTrip) {
  MuxAckBatchMsg m;
  for (uint32_t i = 1; i <= 5; ++i) {
    m.entries.push_back({i * 2, i * 1000ull});
  }
  auto decoded = MuxAckBatchMsg::Decode(m.Encode());
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->entries.size(), 5u);
  for (uint32_t i = 1; i <= 5; ++i) {
    EXPECT_EQ(decoded->entries[i - 1].stream, i * 2);
    EXPECT_EQ(decoded->entries[i - 1].acked_ts, i * 1000ull);
  }

  MuxAckBatchMsg empty;
  auto decoded2 = MuxAckBatchMsg::Decode(empty.Encode());
  ASSERT_TRUE(decoded2.ok());
  EXPECT_TRUE(decoded2->entries.empty());
}

// --- Truncation / corruption fuzz ---------------------------------------------

// Every strict prefix of a valid encoding must fail as a Status: the decoders
// bounds-check each read and reject trailing garbage, so there is no length
// at which a cut-off message silently half-parses.
TEST(MuxCodecTest, TruncationNeverCrashesAlwaysErrors) {
  MuxOpenMsg open;
  open.kind = kMuxStreamData;
  open.deployment_id = 77;
  open.entry = "entry-name-long-enough-to-truncate-mid-string";
  open.emit_clock = 5;
  MuxAckBatchMsg batch;
  batch.entries = {{1, 10}, {2, 20}, {3, 30}};
  MuxHelloMsg hello;
  MuxHelloAckMsg hello_ack;
  hello_ack.accepted = true;
  hello_ack.message = "ok";
  MuxOpenAckMsg open_ack;
  open_ack.message = "why";
  MuxWindowMsg win;
  win.credits = 1;

  std::vector<std::pair<const char*, std::vector<uint8_t>>> encodings = {
      {"open", open.Encode()},           {"ack-batch", batch.Encode()},
      {"hello", hello.Encode()},         {"hello-ack", hello_ack.Encode()},
      {"open-ack", open_ack.Encode()},   {"window", win.Encode()},
  };
  for (const auto& [name, bytes] : encodings) {
    for (size_t len = 0; len < bytes.size(); ++len) {
      std::vector<uint8_t> prefix(bytes.begin(), bytes.begin() + len);
      bool ok = false;
      if (std::string(name) == "open") {
        ok = MuxOpenMsg::Decode(prefix).ok();
      } else if (std::string(name) == "ack-batch") {
        ok = MuxAckBatchMsg::Decode(prefix).ok();
      } else if (std::string(name) == "hello") {
        ok = MuxHelloMsg::Decode(prefix).ok();
      } else if (std::string(name) == "hello-ack") {
        ok = MuxHelloAckMsg::Decode(prefix).ok();
      } else if (std::string(name) == "open-ack") {
        ok = MuxOpenAckMsg::Decode(prefix).ok();
      } else {
        ok = MuxWindowMsg::Decode(prefix).ok();
      }
      EXPECT_FALSE(ok) << name << " accepted a " << len << "-byte prefix of "
                       << bytes.size() << " bytes";
    }
  }
}

// Random byte flips must never crash a decoder. A flip may still produce a
// decodable message (most fields carry no redundancy) — the contract under
// fuzz is memory safety and Status-or-value, not detection.
TEST(MuxCodecTest, CorruptionNeverCrashes) {
  Rng rng(20260809);
  MuxOpenMsg open;
  open.entry = "kv";
  open.deployment_id = 1;
  MuxAckBatchMsg batch;
  batch.entries = {{1, 100}, {9, 900}};
  const std::vector<std::vector<uint8_t>> bases = {open.Encode(),
                                                   batch.Encode()};
  for (int iter = 0; iter < 2000; ++iter) {
    std::vector<uint8_t> bytes = bases[iter % bases.size()];
    int flips = 1 + static_cast<int>(rng.Next() % 4);
    for (int f = 0; f < flips; ++f) {
      size_t pos = rng.Next() % bytes.size();
      bytes[pos] ^= static_cast<uint8_t>(1u << (rng.Next() % 8));
    }
    // Either outcome is fine; it must not crash or hang.
    (void)MuxOpenMsg::Decode(bytes);
    (void)MuxAckBatchMsg::Decode(bytes);
  }
}

// Mux framing (stream id in the header) round-trips through the decoder at
// every read() split point, and the stream id survives.
TEST(MuxCodecTest, MuxFramingRoundTripAcrossSplits) {
  std::vector<uint8_t> payload = {9, 8, 7, 6, 5, 4};
  BinaryWriter w;
  EncodeMuxFrame(w, FrameType::kData, /*stream=*/0x01020304, payload.data(),
                 payload.size());
  EncodeMuxFrame(w, FrameType::kAck, /*stream=*/7, nullptr, 0);
  const std::vector<uint8_t>& bytes = w.buffer();

  for (size_t split = 0; split <= bytes.size(); ++split) {
    FrameDecoder dec;
    dec.EnableMux();
    dec.Feed(bytes.data(), split);
    dec.Feed(bytes.data() + split, bytes.size() - split);
    Frame f1, f2, extra;
    auto r1 = dec.Next(&f1);
    ASSERT_TRUE(r1.ok() && *r1) << "split=" << split;
    EXPECT_EQ(f1.type, FrameType::kData);
    EXPECT_EQ(f1.stream, 0x01020304u);
    EXPECT_EQ(f1.payload, payload);
    auto r2 = dec.Next(&f2);
    ASSERT_TRUE(r2.ok() && *r2) << "split=" << split;
    EXPECT_EQ(f2.type, FrameType::kAck);
    EXPECT_EQ(f2.stream, 7u);
    EXPECT_TRUE(f2.payload.empty());
    auto r3 = dec.Next(&extra);
    ASSERT_TRUE(r3.ok());
    EXPECT_FALSE(*r3);
  }
}

// A corrupt mux frame header (unknown type byte) poisons the decoder with a
// Status instead of crashing or resynchronizing onto garbage.
TEST(MuxCodecTest, CorruptMuxHeaderPoisonsDecoder) {
  BinaryWriter w;
  EncodeMuxFrame(w, FrameType::kData, 1, nullptr, 0);
  std::vector<uint8_t> bytes = w.buffer();
  bytes[4] = 0xEE;  // type byte (after the 4-byte magic/length prelude)
  FrameDecoder dec;
  dec.EnableMux();
  dec.Feed(bytes.data(), bytes.size());
  Frame f;
  auto r = dec.Next(&f);
  if (r.ok()) {
    // Some byte positions decode as a different valid header; acceptable —
    // the guarantee under corruption is no crash and no wrong-frame reuse.
    return;
  }
  EXPECT_FALSE(r.ok());
}

// --- Per-stream flow control --------------------------------------------------

// One shared socket, two streams: the hot stream's consumer is slow, so the
// hot sender exhausts its credit window and blocks — but only ITSELF. The
// cold stream on the same socket must finish its (tiny) workload while the
// hot stream is still mid-flight; if window exhaustion blocked the shared
// socket, the cold items would queue behind ~seconds of hot dispatch.
TEST(MuxFlowControlTest, HotStreamCannotStarveColdSibling) {
  constexpr uint64_t kHot = 3000;
  constexpr uint64_t kCold = 50;
  std::atomic<uint64_t> hot_received{0};
  std::atomic<uint64_t> cold_received{0};
  // Hot progress at the moment the cold stream completed (sentinel ~0).
  std::atomic<uint64_t> hot_at_cold_done{~0ull};

  ChannelServerOptions sopts;
  sopts.mode = NetMode::kEventLoop;
  ChannelServer server(sopts);
  ASSERT_TRUE(
      server
          .Start([](const Handshake&) { return uint64_t{0}; },
                 [&](const Handshake& hs, std::vector<DataItem> items) {
                   if (hs.source_instance == 0) {
                     // Slow consumer: bounded stall per item so the hot
                     // stream needs >= kHot * 300us of wall clock.
                     std::this_thread::sleep_for(
                         std::chrono::microseconds(300) * items.size());
                     hot_received.fetch_add(items.size());
                   } else {
                     uint64_t total =
                         cold_received.fetch_add(items.size()) + items.size();
                     if (total >= kCold) {
                       hot_at_cold_done.store(hot_received.load());
                     }
                   }
                 })
          .ok());

  MuxConnection::Options mopts;
  mopts.loop = EventLoop::Shared();
  MuxPool pool(mopts);

  auto make_channel = [&](uint32_t instance, OutputBuffer* log) {
    RemoteChannelOptions opts;
    opts.port = server.port();
    opts.entry = "t";
    opts.source_instance = instance;
    opts.mux = &pool;
    return std::make_unique<RemoteChannel>(opts, log);
  };
  OutputBuffer hot_log, cold_log;
  auto hot = make_channel(0, &hot_log);
  auto cold = make_channel(1, &cold_log);
  ASSERT_TRUE(hot->Connect().ok());
  ASSERT_TRUE(cold->Connect().ok());

  std::thread hot_sender([&] {
    for (uint64_t ts = 1; ts <= kHot; ++ts) {
      ASSERT_TRUE(hot->Deliver(MakeItem(ts, 0)));
    }
  });
  // Give the hot stream a head start so its window is already exhausted
  // (and its backlog deep) when the cold items enter the shared socket.
  ASSERT_TRUE(WaitUntil([&] { return hot_received.load() >= 64; }, 30000));
  std::thread cold_sender([&] {
    for (uint64_t ts = 1; ts <= kCold; ++ts) {
      ASSERT_TRUE(cold->Deliver(MakeItem(ts, 1)));
    }
  });

  ASSERT_TRUE(WaitUntil([&] { return cold_received.load() == kCold; }, 30000))
      << "cold stream starved behind the hot stream's window: "
      << cold_received.load() << "/" << kCold << " (hot at "
      << hot_received.load() << "/" << kHot << ")";
  EXPECT_LT(hot_at_cold_done.load(), kHot)
      << "hot stream finished before cold — the test lost its contention";

  cold_sender.join();
  hot_sender.join();
  ASSERT_TRUE(WaitUntil([&] { return hot_received.load() == kHot; }, 60000));

  // Window accounting survived: every credit comes back once the consumer
  // drains, so a follow-up burst still flows.
  ASSERT_TRUE(hot->Deliver(MakeItem(kHot + 1, 0)));
  ASSERT_TRUE(WaitUntil([&] { return hot_received.load() == kHot + 1; }));

  hot->Close();
  cold->Close();
  pool.CloseAll();
  server.Stop();
}

// --- Reconnect-replay per stream ----------------------------------------------

// Two channels on one shared socket, acked to DIFFERENT watermarks, then the
// receiver dies. After a restart on the same port, each channel must replay
// exactly ITS unacked suffix — stream A past 5, stream B past 8 — marked
// replayed, with nothing at or below the per-stream watermark resent.
TEST(MuxReconnectTest, ReplayHonorsPerStreamWatermarks) {
  std::mutex mu;
  std::set<uint64_t> seen_a1, seen_b1;
  ChannelServerOptions sopts;
  sopts.mode = NetMode::kEventLoop;
  auto server1 = std::make_unique<ChannelServer>(sopts);
  ASSERT_TRUE(
      server1
          ->Start([](const Handshake&) { return uint64_t{0}; },
                  [&](const Handshake& hs, std::vector<DataItem> items) {
                    std::lock_guard<std::mutex> lock(mu);
                    for (const auto& item : items) {
                      (hs.source_instance == 0 ? seen_a1 : seen_b1)
                          .insert(item.ts);
                    }
                  })
          .ok());
  uint16_t port = server1->port();

  MuxConnection::Options mopts;
  mopts.loop = EventLoop::Shared();
  MuxPool pool(mopts);

  OutputBuffer log_a, log_b;
  RemoteChannelOptions opts;
  opts.port = port;
  opts.entry = "t";
  opts.reconnect_backoff_ms = 20;
  opts.mux = &pool;
  opts.source_instance = 0;
  RemoteChannel chan_a(opts, &log_a);
  opts.source_instance = 1;
  RemoteChannel chan_b(opts, &log_b);
  ASSERT_TRUE(chan_a.Connect().ok());
  ASSERT_TRUE(chan_b.Connect().ok());

  EXPECT_EQ(chan_a.DeliverAll(MakeItems(1, 10, 0)), 10u);
  EXPECT_EQ(chan_b.DeliverAll(MakeItems(1, 10, 1)), 10u);
  ASSERT_TRUE(WaitUntil([&] {
    std::lock_guard<std::mutex> lock(mu);
    return seen_a1.size() == 10 && seen_b1.size() == 10;
  }));
  // Different durable watermarks per stream — the coalesced ack path must
  // keep them separate, not broadcast one value.
  server1->AckSource(runtime::kRemoteSourceTask, 0, 5);
  server1->AckSource(runtime::kRemoteSourceTask, 1, 8);
  ASSERT_TRUE(WaitUntil([&] { return chan_a.UnackedCount() == 5; }));
  ASSERT_TRUE(WaitUntil([&] { return chan_b.UnackedCount() == 2; }));

  server1->Stop();
  server1.reset();
  ASSERT_TRUE(WaitUntil([&] { return !chan_a.connected(); }));
  ASSERT_TRUE(WaitUntil([&] { return !chan_b.connected(); }));

  // Restart on the same port, restored to the per-stream watermarks.
  std::set<uint64_t> seen_a2, seen_b2;
  std::atomic<int> replayed_a{0}, replayed_b{0};
  ChannelServerOptions sopts2;
  sopts2.mode = NetMode::kEventLoop;
  sopts2.port = port;
  ChannelServer server2(sopts2);
  ASSERT_TRUE(
      server2
          .Start(
              [](const Handshake& hs) {
                return hs.source_instance == 0 ? uint64_t{5} : uint64_t{8};
              },
              [&](const Handshake& hs, std::vector<DataItem> items) {
                std::lock_guard<std::mutex> lock(mu);
                for (const auto& item : items) {
                  if (hs.source_instance == 0) {
                    EXPECT_GT(item.ts, 5u) << "stream A acked item resent";
                    if (item.replayed) replayed_a.fetch_add(1);
                    seen_a2.insert(item.ts);
                  } else {
                    EXPECT_GT(item.ts, 8u) << "stream B acked item resent";
                    if (item.replayed) replayed_b.fetch_add(1);
                    seen_b2.insert(item.ts);
                  }
                }
              })
          .ok());

  // Delivering through the dead shared socket redials the pool, reopens each
  // stream, and replays each log past its own open-ack watermark.
  EXPECT_EQ(chan_a.DeliverAll(MakeItems(11, 20, 0)), 10u);
  EXPECT_EQ(chan_b.DeliverAll(MakeItems(11, 20, 1)), 10u);
  ASSERT_TRUE(WaitUntil([&] {
    std::lock_guard<std::mutex> lock(mu);
    return seen_a2.size() == 15 && seen_b2.size() == 12;
  }));
  {
    std::lock_guard<std::mutex> lock(mu);
    for (uint64_t ts = 6; ts <= 20; ++ts) {
      EXPECT_TRUE(seen_a2.count(ts)) << "stream A lost ts=" << ts;
    }
    for (uint64_t ts = 9; ts <= 20; ++ts) {
      EXPECT_TRUE(seen_b2.count(ts)) << "stream B lost ts=" << ts;
    }
  }
  EXPECT_EQ(replayed_a.load(), 5) << "stream A replay was not exactly 6..10";
  EXPECT_EQ(replayed_b.load(), 2) << "stream B replay was not exactly 9..10";

  server2.Ack(20);
  ASSERT_TRUE(WaitUntil([&] { return chan_a.UnackedCount() == 0; }));
  ASSERT_TRUE(WaitUntil([&] { return chan_b.UnackedCount() == 0; }));
  chan_a.Close();
  chan_b.Close();
  pool.CloseAll();
  server2.Stop();
}

}  // namespace
}  // namespace sdg::net
