// Loopback integration tests of the TCP transport: RemoteChannel sender,
// ChannelServer receiver, upstream-backup trim on acks, and the
// kill/restart reconnect-replay path (§5 as the transport's error path).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "src/graph/sdg.h"
#include "src/net/channel_server.h"
#include "src/net/remote_channel.h"
#include "src/runtime/cluster.h"

namespace sdg::net {
namespace {

using runtime::DataItem;
using runtime::OutputBuffer;

bool WaitUntil(const std::function<bool()>& pred, int timeout_ms = 10000) {
  auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) {
      return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return pred();
}

DataItem MakeItem(uint64_t ts) {
  DataItem item;
  item.from = runtime::SourceId{runtime::kRemoteSourceTask, 0};
  item.ts = ts;
  item.payload = Tuple{Value(static_cast<int64_t>(ts))};
  return item;
}

std::vector<DataItem> MakeItems(uint64_t first_ts, uint64_t last_ts) {
  std::vector<DataItem> items;
  for (uint64_t ts = first_ts; ts <= last_ts; ++ts) {
    items.push_back(MakeItem(ts));
  }
  return items;
}

TEST(ChannelTest, LoopbackDeliverAckTrim) {
  std::mutex mu;
  std::vector<uint64_t> received;
  ChannelServer server(ChannelServerOptions{});
  ASSERT_TRUE(server
                  .Start([](const Handshake&) { return uint64_t{0}; },
                         [&](const Handshake& hs, std::vector<DataItem> items) {
                           EXPECT_EQ(hs.entry, "t");
                           std::lock_guard<std::mutex> lock(mu);
                           for (const auto& item : items) {
                             received.push_back(item.ts);
                           }
                         })
                  .ok());

  OutputBuffer log;
  RemoteChannelOptions opts;
  opts.port = server.port();
  opts.entry = "t";
  RemoteChannel chan(opts, &log);
  ASSERT_TRUE(chan.Connect().ok());
  ASSERT_TRUE(chan.connected());

  EXPECT_EQ(chan.DeliverAll(MakeItems(1, 50)), 50u);
  EXPECT_TRUE(chan.Deliver(MakeItem(51)));
  ASSERT_TRUE(WaitUntil([&] {
    std::lock_guard<std::mutex> lock(mu);
    return received.size() == 51;
  }));
  {
    // Wire order is sender FIFO order.
    std::lock_guard<std::mutex> lock(mu);
    for (uint64_t i = 0; i < received.size(); ++i) {
      EXPECT_EQ(received[i], i + 1);
    }
  }

  // Everything is logged until the receiver acknowledges durability.
  EXPECT_EQ(chan.UnackedCount(), 51u);
  server.Ack(30);
  ASSERT_TRUE(WaitUntil([&] { return chan.UnackedCount() == 21; }));
  EXPECT_EQ(chan.acked_watermark(), 30u);
  server.Ack(51);
  ASSERT_TRUE(WaitUntil([&] { return chan.UnackedCount() == 0; }));

  chan.Close();
  server.Stop();
}

// Regression test for the read-interest backpressure protocol: a slow
// on_batch lets the per-peer frame backlog repeatedly cross the pause
// watermark while the executor drains it back under the resume watermark,
// cycling pause/resume many times. A stale interest update losing the race
// (reads off while unpaused) wedges the peer permanently — the test then
// times out with items missing.
TEST(ChannelTest, BackpressurePauseResumeStress) {
  constexpr uint64_t kItems = 4000;
  std::atomic<uint64_t> received{0};
  std::atomic<bool> in_order{true};
  uint64_t next_ts = 1;  // dispatch slices are serialized, no lock needed
  ChannelServer server(ChannelServerOptions{});
  ASSERT_TRUE(server
                  .Start([](const Handshake&) { return uint64_t{0}; },
                         [&](const Handshake&, std::vector<DataItem> items) {
                           for (const auto& item : items) {
                             if (item.ts != next_ts) {
                               in_order.store(false);
                             }
                             ++next_ts;
                           }
                           uint64_t total =
                               received.fetch_add(items.size()) + items.size();
                           // Stall in bursts so the frame backlog climbs past
                           // the pause watermark, then drains below resume.
                           if (total % 64 < 8) {
                             std::this_thread::sleep_for(
                                 std::chrono::microseconds(200));
                           }
                         })
                  .ok());

  OutputBuffer log;
  RemoteChannelOptions opts;
  opts.port = server.port();
  opts.entry = "t";
  RemoteChannel chan(opts, &log);
  ASSERT_TRUE(chan.Connect().ok());
  for (uint64_t ts = 1; ts <= kItems; ++ts) {
    ASSERT_TRUE(chan.Deliver(MakeItem(ts)));
  }
  ASSERT_TRUE(WaitUntil([&] { return received.load() == kItems; }, 30000))
      << "delivered " << received.load() << "/" << kItems
      << " — read interest likely wedged off";
  EXPECT_TRUE(in_order.load());

  chan.Close();
  server.Stop();
}

TEST(ChannelTest, HandshakeRejectionSurfacesAsError) {
  ChannelServer server(ChannelServerOptions{});
  ASSERT_TRUE(server
                  .Start(
                      [](const Handshake& hs) -> Result<uint64_t> {
                        return InvalidArgumentError("unknown entry '" +
                                                    hs.entry + "'");
                      },
                      [](const Handshake&, std::vector<DataItem>) {})
                  .ok());
  OutputBuffer log;
  RemoteChannelOptions opts;
  opts.port = server.port();
  opts.entry = "nope";
  opts.reconnect_attempts = 2;
  opts.reconnect_backoff_ms = 10;
  RemoteChannel chan(opts, &log);
  Status s = chan.Connect();
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
  server.Stop();
}

TEST(ChannelTest, ServerRestartReplaysExactlyTheUnacked) {
  // Receiver half 1: sees ts 1..10, makes 1..5 durable, then dies.
  std::mutex mu;
  std::set<uint64_t> seen1;
  auto server1 = std::make_unique<ChannelServer>(ChannelServerOptions{});
  ASSERT_TRUE(server1
                  ->Start([](const Handshake&) { return uint64_t{0}; },
                          [&](const Handshake&, std::vector<DataItem> items) {
                            std::lock_guard<std::mutex> lock(mu);
                            for (const auto& item : items) {
                              seen1.insert(item.ts);
                            }
                          })
                  .ok());
  uint16_t port = server1->port();

  OutputBuffer log;
  RemoteChannelOptions opts;
  opts.port = port;
  opts.entry = "t";
  opts.reconnect_backoff_ms = 20;
  RemoteChannel chan(opts, &log);
  ASSERT_TRUE(chan.Connect().ok());
  EXPECT_EQ(chan.DeliverAll(MakeItems(1, 10)), 10u);
  ASSERT_TRUE(WaitUntil([&] {
    std::lock_guard<std::mutex> lock(mu);
    return seen1.size() == 10;
  }));
  server1->Ack(5);  // only 1..5 durable before the crash
  ASSERT_TRUE(WaitUntil([&] { return chan.UnackedCount() == 5; }));

  // Kill the receiver; the sender must notice the broken wire.
  server1->Stop();
  server1.reset();
  ASSERT_TRUE(WaitUntil([&] { return !chan.connected(); }));

  // Receiver half 2 on the SAME port, restored to watermark 5. It must see
  // the unacked 6..10 again (replayed) plus the new 11..20 — and nothing at
  // or below its watermark.
  std::set<uint64_t> seen2;
  std::atomic<int> replayed_count{0};
  ChannelServerOptions opts2;
  opts2.port = port;
  ChannelServer server2(opts2);
  ASSERT_TRUE(server2
                  .Start([](const Handshake&) { return uint64_t{5}; },
                         [&](const Handshake&, std::vector<DataItem> items) {
                           std::lock_guard<std::mutex> lock(mu);
                           for (const auto& item : items) {
                             EXPECT_GT(item.ts, 5u) << "acked item re-sent";
                             if (item.replayed) {
                               replayed_count.fetch_add(1);
                             }
                             seen2.insert(item.ts);
                           }
                         })
                  .ok());

  // Delivering through the broken channel reconnects, replays 6..10, then
  // sends the new batch.
  EXPECT_EQ(chan.DeliverAll(MakeItems(11, 20)), 10u);
  ASSERT_TRUE(WaitUntil([&] {
    std::lock_guard<std::mutex> lock(mu);
    return seen2.size() == 15;
  }));
  {
    std::lock_guard<std::mutex> lock(mu);
    for (uint64_t ts = 6; ts <= 20; ++ts) {
      EXPECT_TRUE(seen2.count(ts)) << "lost item ts=" << ts;
    }
  }
  EXPECT_EQ(replayed_count.load(), 5) << "replay set was not exactly 6..10";

  // The union of both incarnations covers every item ever sent.
  server2.Ack(20);
  ASSERT_TRUE(WaitUntil([&] { return chan.UnackedCount() == 0; }));
  chan.Close();
  server2.Stop();
}

TEST(ChannelTest, InjectRemoteFeedsDeployment) {
  // Full receive path: wire batches land in a live deployment through
  // InjectRemote, flowing through the same batched dispatch as local
  // injection.
  graph::SdgBuilder b;
  std::shared_ptr<std::atomic<int64_t>> sum =
      std::make_shared<std::atomic<int64_t>>(0);
  (void)b.AddEntryTask("t", [sum](const Tuple& in, graph::TaskContext&) {
    sum->fetch_add(in[0].AsInt());
  });
  auto g = std::move(b).Build();
  ASSERT_TRUE(g.ok());
  runtime::Cluster cluster(runtime::ClusterOptions{});
  auto d = cluster.Deploy(std::move(*g));
  ASSERT_TRUE(d.ok());

  ChannelServer server(ChannelServerOptions{});
  ASSERT_TRUE(server
                  .Start([](const Handshake&) { return uint64_t{0}; },
                         [&](const Handshake& hs, std::vector<DataItem> items) {
                           auto st =
                               (*d)->InjectRemote(hs.entry, std::move(items));
                           EXPECT_TRUE(st.ok()) << st.ToString();
                         })
                  .ok());

  OutputBuffer log;
  RemoteChannelOptions opts;
  opts.port = server.port();
  opts.entry = "t";
  RemoteChannel chan(opts, &log);
  ASSERT_TRUE(chan.Connect().ok());
  constexpr int64_t kN = 200;
  EXPECT_EQ(chan.DeliverAll(MakeItems(1, kN)), static_cast<size_t>(kN));
  ASSERT_TRUE(WaitUntil(
      [&] { return (*d)->ProcessedOf("t") == static_cast<uint64_t>(kN); }));
  EXPECT_EQ(sum->load(), kN * (kN + 1) / 2);

  server.Ack(kN);
  ASSERT_TRUE(WaitUntil([&] { return chan.UnackedCount() == 0; }));
  chan.Close();
  server.Stop();
  (*d)->Drain();
  (*d)->Shutdown();
}

}  // namespace
}  // namespace sdg::net
