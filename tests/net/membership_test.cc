// Membership-protocol tests (kJoin/kJoinAck/kControl on a bare ChannelServer)
// plus in-process end-to-end tests of the elastic runtime: initial
// assignment, live migration with the watermark handoff, and the
// restart/reconnect-replay regression — the single-process complement of the
// multi-process chaos harness (tests/harness/chaos_process_test.cc).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/apps/kv.h"
#include "src/net/channel_server.h"
#include "src/net/connection.h"
#include "src/net/frame.h"
#include "src/net/socket.h"
#include "src/runtime/elastic.h"
#include "src/state/keyed_dict.h"
#include "src/state/state_backend.h"

namespace sdg {
namespace {

using net::ChannelServer;
using net::ChannelServerOptions;
using net::ControlMsg;
using net::Frame;
using net::FrameDecoder;
using net::FrameType;
using net::JoinAckMsg;
using net::JoinMsg;
using net::ReadFrameBlocking;
using net::Socket;
using net::WriteFrameBlocking;

Result<Socket> DialJoin(uint16_t port, uint32_t member_id,
                        FrameDecoder& carry, JoinAckMsg* ack,
                        uint64_t deployment_id = 1) {
  SDG_ASSIGN_OR_RETURN(Socket s, Socket::Connect("127.0.0.1", port));
  JoinMsg join;
  join.deployment_id = deployment_id;
  join.member_id = member_id;
  join.data_port = 1;  // tests never dial back
  join.name = "test";
  SDG_RETURN_IF_ERROR(
      WriteFrameBlocking(s, FrameType::kJoin, join.Encode()));
  s.SetRecvTimeout(5000);
  SDG_ASSIGN_OR_RETURN(Frame reply, ReadFrameBlocking(s, carry));
  if (reply.type != FrameType::kJoinAck) {
    return Status(StatusCode::kDataLoss, "expected kJoinAck");
  }
  SDG_ASSIGN_OR_RETURN(*ack, JoinAckMsg::Decode(reply.payload));
  s.SetRecvTimeout(0);
  return s;
}

struct MemberServer {
  ChannelServer server{ChannelServerOptions{}};
  std::mutex mu;
  std::vector<std::pair<uint32_t, ControlMsg>> control_frames;

  Status Start() {
    return server.Start(
        [](const net::Handshake&) -> Result<uint64_t> {
          return Status(StatusCode::kFailedPrecondition, "no data channels");
        },
        [](const net::Handshake&, std::vector<runtime::DataItem>) {},
        [](const JoinMsg& join) -> Result<uint32_t> {
          if (join.deployment_id != 1) {
            return Status(StatusCode::kFailedPrecondition, "wrong deployment");
          }
          return join.member_id;
        },
        [this](uint32_t member, Frame frame) {
          if (frame.type != FrameType::kControl) {
            return;
          }
          auto msg = ControlMsg::Decode(frame.payload);
          if (msg.ok()) {
            std::lock_guard<std::mutex> lock(mu);
            control_frames.emplace_back(member, *msg);
          }
        });
  }
};

TEST(MembershipProtocol, JoinAckAndControlRoundtrip) {
  MemberServer ms;
  ASSERT_TRUE(ms.Start().ok());

  FrameDecoder carry;
  JoinAckMsg ack;
  auto sock = DialJoin(ms.server.port(), 7, carry, &ack);
  ASSERT_TRUE(sock.ok()) << sock.status().ToString();
  EXPECT_TRUE(ack.accepted);
  EXPECT_EQ(ack.member_id, 7u);
  EXPECT_EQ(ms.server.MemberCount(), 1u);

  // Head -> member.
  ControlMsg ping;
  ping.op = net::kCtrlPing;
  ASSERT_TRUE(ms.server.SendToMember(7, FrameType::kControl, ping.Encode()));
  sock->SetRecvTimeout(5000);
  auto frame = ReadFrameBlocking(*sock, carry);
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  ASSERT_EQ(frame->type, FrameType::kControl);
  auto msg = ControlMsg::Decode(frame->payload);
  ASSERT_TRUE(msg.ok());
  EXPECT_EQ(msg->op, net::kCtrlPing);

  // Member -> head.
  ControlMsg report;
  report.op = net::kCtrlStraggler;
  report.arg = 3;
  ASSERT_TRUE(
      WriteFrameBlocking(*sock, FrameType::kControl, report.Encode()).ok());
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(ms.mu);
      if (!ms.control_frames.empty()) {
        EXPECT_EQ(ms.control_frames[0].first, 7u);
        EXPECT_EQ(ms.control_frames[0].second.op, net::kCtrlStraggler);
        EXPECT_EQ(ms.control_frames[0].second.arg, 3u);
        break;
      }
    }
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "control frame never reached on_member";
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ms.server.Stop();
}

TEST(MembershipProtocol, JoinRejectedWrongDeployment) {
  MemberServer ms;
  ASSERT_TRUE(ms.Start().ok());
  FrameDecoder carry;
  JoinAckMsg ack;
  auto sock =
      DialJoin(ms.server.port(), 9, carry, &ack, /*deployment_id=*/42);
  ASSERT_TRUE(sock.ok()) << sock.status().ToString();
  EXPECT_FALSE(ack.accepted);
  EXPECT_FALSE(ack.message.empty());
  EXPECT_EQ(ms.server.MemberCount(), 0u);
  ms.server.Stop();
}

TEST(MembershipProtocol, DuplicateJoinSupersedes) {
  MemberServer ms;
  ASSERT_TRUE(ms.Start().ok());

  FrameDecoder carry1, carry2;
  JoinAckMsg ack1, ack2;
  auto first = DialJoin(ms.server.port(), 5, carry1, &ack1);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(ack1.accepted);
  auto second = DialJoin(ms.server.port(), 5, carry2, &ack2);
  ASSERT_TRUE(second.ok());
  ASSERT_TRUE(ack2.accepted);

  // The rejoin replaced the first incarnation: one member, and control
  // traffic lands on the SECOND connection (the first reads EOF).
  EXPECT_EQ(ms.server.MemberCount(), 1u);
  ControlMsg ping;
  ping.op = net::kCtrlPing;
  ASSERT_TRUE(ms.server.SendToMember(5, FrameType::kControl, ping.Encode()));
  second->SetRecvTimeout(5000);
  auto frame = ReadFrameBlocking(*second, carry2);
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_EQ(frame->type, FrameType::kControl);

  first->SetRecvTimeout(5000);
  auto stale = ReadFrameBlocking(*first, carry1);
  EXPECT_FALSE(stale.ok()) << "superseded channel should be closed";
  ms.server.Stop();
}

TEST(MembershipProtocol, JoinThenImmediateDisconnect) {
  MemberServer ms;
  ASSERT_TRUE(ms.Start().ok());
  {
    FrameDecoder carry;
    JoinAckMsg ack;
    auto sock = DialJoin(ms.server.port(), 11, carry, &ack);
    ASSERT_TRUE(sock.ok());
    ASSERT_TRUE(ack.accepted);
    // Socket drops here — the member vanished right after joining.
  }
  // Sends eventually fail (the break may take a send to surface), and the
  // server keeps accepting new members afterwards.
  ControlMsg ping;
  ping.op = net::kCtrlPing;
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (ms.server.SendToMember(11, FrameType::kControl, ping.Encode())) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "send to a disconnected member never failed";
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  FrameDecoder carry;
  JoinAckMsg ack;
  auto sock = DialJoin(ms.server.port(), 12, carry, &ack);
  ASSERT_TRUE(sock.ok());
  EXPECT_TRUE(ack.accepted);
  ms.server.Stop();
}

// --- In-process elastic runtime ---------------------------------------------

constexpr uint32_t kPartitions = 4;

class ElasticFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = std::filesystem::temp_directory_path() /
            ("sdg_elastic_test_" +
             std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
             "_" + ::testing::UnitTest::GetInstance()
                       ->current_test_info()
                       ->name());
    std::filesystem::remove_all(root_);
    std::filesystem::create_directories(root_);
  }
  void TearDown() override { std::filesystem::remove_all(root_); }

  elastic::ElasticHeadOptions HeadOptions() {
    elastic::ElasticHeadOptions h;
    h.state = "store";
    h.partitions = kPartitions;
    h.entries = {"put", "del"};
    h.backup_root = (root_ / "backup").string();
    h.monitor_interval_ms = 20;
    h.migrate_timeout_ms = 20000;
    return h;
  }

  std::unique_ptr<elastic::ElasticWorker> MakeWorker(uint32_t member_id,
                                                     uint16_t head_port,
                                                     uint16_t data_port = 0) {
    apps::KvOptions kv;
    kv.partitions = kPartitions;
    auto g = apps::BuildKvSdg(kv);
    EXPECT_TRUE(g.ok());
    elastic::ElasticWorkerOptions w;
    w.member_id = member_id;
    w.name = "w" + std::to_string(member_id);
    w.head_port = head_port;
    w.data_port = data_port;
    w.state = "store";
    w.partitions = kPartitions;
    w.entries = {"put", "del"};
    w.backup_root = (root_ / "backup").string();
    return std::make_unique<elastic::ElasticWorker>(std::move(*g),
                                                    std::move(w));
  }

  // Reads every owned partition of `workers` into one map, asserting no
  // partition is owned twice and all partitions are covered.
  std::map<int64_t, std::string> MergedState(
      const std::vector<elastic::ElasticWorker*>& workers) {
    std::map<int64_t, std::string> merged;
    std::set<uint32_t> seen;
    for (auto* w : workers) {
      for (uint32_t p : w->OwnedPartitions()) {
        EXPECT_TRUE(seen.insert(p).second) << "partition " << p
                                           << " owned twice";
        auto* backend = w->deployment()->StateInstance("store", p);
        auto* dict =
            state::StateAs<state::KeyedDict<int64_t, std::string>>(backend);
        EXPECT_NE(dict, nullptr);
        dict->ForEach([&](const int64_t& k, const std::string& v) {
          EXPECT_TRUE(merged.emplace(k, v).second)
              << "key " << k << " present in two partitions";
        });
      }
    }
    EXPECT_EQ(seen.size(), kPartitions);
    return merged;
  }

  std::filesystem::path root_;
};

TEST_F(ElasticFixture, AssignInjectCheckpointQuiesce) {
  elastic::ElasticHead head(HeadOptions());
  ASSERT_TRUE(head.Start().ok());
  auto w1 = MakeWorker(1, head.port());
  ASSERT_TRUE(w1->Start().ok());
  ASSERT_TRUE(w1->WaitJoined(10000));
  ASSERT_TRUE(head.WaitForAssignment(10000));

  std::map<int64_t, std::string> model;
  for (int64_t k = 0; k < 200; ++k) {
    std::string v = "v" + std::to_string(k);
    ASSERT_TRUE(head.Inject(0, Tuple{Value(k), Value(v)}, 20000).ok());
    model[k] = v;
  }
  ASSERT_TRUE(head.CheckpointAll().ok());
  ASSERT_TRUE(head.AwaitQuiesce(20000));
  EXPECT_EQ(head.UnackedTotal(), 0u);
  EXPECT_EQ(MergedState({w1.get()}), model);

  w1->Stop();
  head.Stop();
}

TEST_F(ElasticFixture, LiveMigrationMovesPartitionExactlyOnce) {
  elastic::ElasticHead head(HeadOptions());
  ASSERT_TRUE(head.Start().ok());
  auto w1 = MakeWorker(1, head.port());
  auto w2 = MakeWorker(2, head.port());
  ASSERT_TRUE(w1->Start().ok());
  ASSERT_TRUE(w2->Start().ok());
  ASSERT_TRUE(w1->WaitJoined(10000));
  ASSERT_TRUE(w2->WaitJoined(10000));
  ASSERT_TRUE(head.WaitForAssignment(10000));

  std::map<int64_t, std::string> model;
  auto put_range = [&](int64_t lo, int64_t hi) {
    for (int64_t k = lo; k < hi; ++k) {
      std::string v = "v" + std::to_string(k);
      ASSERT_TRUE(head.Inject(0, Tuple{Value(k), Value(v)}, 20000).ok());
      model[k] = v;
    }
  };
  put_range(0, 300);

  // Move a partition from its current owner to the other worker, live.
  uint32_t part = 0;
  uint32_t from = head.OwnerOf(part);
  uint32_t to = from == 1 ? 2 : 1;
  ASSERT_TRUE(head.MigratePartition(part, to).ok());
  EXPECT_EQ(head.OwnerOf(part), to);
  EXPECT_EQ(head.migrations_completed(), 1u);
  EXPECT_GT(head.last_migration_pause_ms(), 0.0);

  // Deletes and overwrites after the cutover land on the new owner.
  put_range(300, 500);
  for (int64_t k = 0; k < 50; ++k) {
    ASSERT_TRUE(head.Inject(1, Tuple{Value(k)}, 20000).ok());
    model.erase(k);
  }
  ASSERT_TRUE(head.CheckpointAll().ok());
  ASSERT_TRUE(head.AwaitQuiesce(20000));
  EXPECT_EQ(MergedState({w1.get(), w2.get()}), model);

  w1->Stop();
  w2->Stop();
  head.Stop();
}

TEST_F(ElasticFixture, RestartReplaysUnackedSuffix) {
  elastic::ElasticHead head(HeadOptions());
  ASSERT_TRUE(head.Start().ok());
  auto w1 = MakeWorker(1, head.port());
  ASSERT_TRUE(w1->Start().ok());
  ASSERT_TRUE(w1->WaitJoined(10000));
  ASSERT_TRUE(head.WaitForAssignment(10000));
  uint16_t data_port = w1->data_port();

  std::map<int64_t, std::string> model;
  for (int64_t k = 0; k < 100; ++k) {
    std::string v = "a" + std::to_string(k);
    ASSERT_TRUE(head.Inject(0, Tuple{Value(k), Value(v)}, 20000).ok());
    model[k] = v;
  }
  ASSERT_TRUE(head.CheckpointAll().ok());
  ASSERT_TRUE(head.AwaitQuiesce(20000));

  // A second wave that is applied in memory but never checkpointed: the
  // restarted worker must get exactly this suffix replayed.
  for (int64_t k = 50; k < 150; ++k) {
    std::string v = "b" + std::to_string(k);
    ASSERT_TRUE(head.Inject(0, Tuple{Value(k), Value(v)}, 20000).ok());
    model[k] = v;
  }
  EXPECT_GT(head.UnackedTotal(), 0u);

  w1->Stop();
  w1.reset();
  auto w1b = MakeWorker(1, head.port(), data_port);
  ASSERT_TRUE(w1b->Start().ok());
  ASSERT_TRUE(w1b->WaitJoined(10000));

  ASSERT_TRUE(head.AwaitQuiesce(30000)) << "replay did not drain the logs";
  ASSERT_TRUE(head.CheckpointAll().ok());
  EXPECT_EQ(MergedState({w1b.get()}), model);

  w1b->Stop();
  head.Stop();
}

TEST_F(ElasticFixture, JoinDuringActiveCheckpoint) {
  elastic::ElasticHead head(HeadOptions());
  ASSERT_TRUE(head.Start().ok());
  auto w1 = MakeWorker(1, head.port());
  ASSERT_TRUE(w1->Start().ok());
  ASSERT_TRUE(w1->WaitJoined(10000));
  ASSERT_TRUE(head.WaitForAssignment(10000));

  for (int64_t k = 0; k < 400; ++k) {
    ASSERT_TRUE(head
                    .Inject(0, Tuple{Value(k), Value("v" + std::to_string(k))},
                            20000)
                    .ok());
  }
  // Join a second worker while the first is checkpointing.
  std::thread ckpt([&] { ASSERT_TRUE(head.CheckpointAll().ok()); });
  auto w2 = MakeWorker(2, head.port());
  ASSERT_TRUE(w2->Start().ok());
  ASSERT_TRUE(w2->WaitJoined(10000));
  ckpt.join();

  EXPECT_EQ(head.AliveMembers().size(), 2u);
  ASSERT_TRUE(head.AwaitQuiesce(20000));
  w1->Stop();
  w2->Stop();
  head.Stop();
}

}  // namespace
}  // namespace sdg
