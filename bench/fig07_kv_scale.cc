// Fig. 7 — Distributed KV store: throughput and read latency as nodes (and
// with them aggregate state) scale, keeping state per node constant.
//
// Paper shape: near-linear aggregate throughput (470k req/s @ 50 GB to
// 1.5M @ 200 GB across 10->40 VMs); median latency grows mildly (8-29 ms),
// p95 under ~1 s. Here nodes are simulated workers, node counts and state
// scaled to one machine.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/apps/kv.h"
#include "src/apps/workloads.h"

namespace sdg::bench {
namespace {

constexpr size_t kValueSize = 512;

void Run() {
  PrintHeader("Fig. 7", "KV scalability: constant state per node, growing nodes");
  PrintNote("simulated nodes are threads; 'modeled' scales the measured rate "
            "to dedicated machines when nodes exceed available cores");
  const double seconds = MeasureSeconds(2.0);
  const double scale = Scale();
  // State per node (paper: 5 GB/node; scaled down for one machine).
  const auto keys_per_node =
      static_cast<uint64_t>(16.0 * 1024 * 1024 * scale / kValueSize);

  std::printf("%-8s %-14s %16s %18s %12s %12s\n", "nodes", "agg state",
              "tput (op/s)", "modeled (op/s)", "p50 (ms)", "p95 (ms)");

  for (uint32_t nodes : {1, 2, 4, 8}) {
    apps::KvOptions opt;
    opt.partitions = nodes;
    auto g = apps::BuildKvSdg(opt);
    if (!g.ok()) {
      return;
    }
    runtime::ClusterOptions copts;
    copts.num_nodes = nodes;
    copts.mailbox_capacity = 1 << 14;
    runtime::Cluster cluster(copts);
    auto d = cluster.Deploy(std::move(*g));
    if (!d.ok()) {
      return;
    }

    const uint64_t total_keys = keys_per_node * nodes;
    std::string value(kValueSize, 'x');
    for (uint64_t k = 0; k < total_keys; ++k) {
      (void)(*d)->Inject("put",
                         Tuple{Value(static_cast<int64_t>(k)), Value(value)});
    }
    (*d)->Drain();

    Histogram latency_ms;
    (void)(*d)->OnOutput("get", [&](const Tuple&, uint64_t tag) {
      if (tag != 0) {
        latency_ms.Record(LatencyMsFromTag(tag));
      }
    });

    std::atomic<uint64_t> seed{11};
    uint64_t injected = DriveLoad(
        seconds, static_cast<int>(std::min(4u, nodes + 1)), [&](int) {
          thread_local apps::KvWorkload wl(total_keys, kValueSize,
                                           /*read_fraction=*/0.5,
                                           seed.fetch_add(1));
          if (Backpressure(**d)) {
            return false;
          }
          auto op = wl.Next();
          if (op.type == apps::KvWorkload::OpType::kRead) {
            return (*d)->Inject("get", Tuple{Value(op.key)}, NowTag()).ok();
          }
          return (*d)
              ->Inject("put", Tuple{Value(op.key), Value(std::move(op.value))})
              .ok();
        });
    (*d)->Drain();

    auto lat = latency_ms.Snapshot();
    double agg_mb = static_cast<double>((*d)->StateSizeBytes("store")) / 1e6;
    char state_label[32];
    std::snprintf(state_label, sizeof(state_label), "%.0f MB", agg_mb);
    double measured = static_cast<double>(injected) / seconds;
    // Simulated nodes share this machine's cores; the modeled column scales
    // the measured per-node rate to n independent machines.
    double hw = std::max(1u, std::thread::hardware_concurrency());
    double modeled = measured * std::max(1.0, static_cast<double>(nodes) / hw);
    std::printf("%-8u %-14s %16.0f %18.0f %12.3f %12.3f\n", nodes, state_label,
                measured, modeled, lat.p50, lat.p95);
    (*d)->Shutdown();
  }
}

}  // namespace
}  // namespace sdg::bench

int main() {
  sdg::bench::Run();
  return 0;
}
