// Live-migration microbench (BENCH_migrate.json).
//
// Single process, loopback: an ElasticHead and two ElasticWorkers — the
// exact scale-out data path of the multi-process deployment, minus the
// process boundary. Per config it preloads a kv store, measures steady-state
// inject throughput, live-migrates one partition to the other worker while
// the injector keeps running, and measures throughput again on the new
// owner. Reported per row:
//
//   items_per_sec_before / items_per_sec_after — the regression gate
//     (scripts/diff_bench.py): migration must not degrade the path.
//   wall_ms_pause — the cutover pause (ingest held while the final delta
//     ships and routing flips); the paper's headline is that this stays in
//     the tens of milliseconds while the base state streams live.
//   wall_ms_total — the whole MigratePartition call, dominated by the
//     compressed base-chunk stream.
//
// Best-of-reps like micro_hotpath: the peak is the stable statistic on a
// shared machine. Short mode: SDG_BENCH_SECONDS=0.2 (CI smoke).
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/apps/kv.h"
#include "src/runtime/elastic.h"

namespace sdg::bench {
namespace {

int Reps() {
  const char* env = std::getenv("SDG_BENCH_REPS");
  if (env != nullptr) {
    int v = std::atoi(env);
    if (v > 0) {
      return v;
    }
  }
  return 3;
}

struct MigrateRun {
  double items_per_sec_before = 0;
  double items_per_sec_after = 0;
  double wall_ms_pause = 0;
  double wall_ms_total = 0;
};

std::unique_ptr<elastic::ElasticWorker> MakeWorker(uint32_t member_id,
                                                   uint16_t head_port,
                                                   uint32_t partitions,
                                                   const std::string& backup) {
  apps::KvOptions kv;
  kv.partitions = partitions;
  auto g = apps::BuildKvSdg(kv);
  if (!g.ok()) {
    std::fprintf(stderr, "kv sdg: %s\n", g.status().ToString().c_str());
    std::exit(1);
  }
  elastic::ElasticWorkerOptions w;
  w.member_id = member_id;
  w.name = "w" + std::to_string(member_id);
  w.head_port = head_port;
  w.state = "store";
  w.partitions = partitions;
  w.entries = {"put", "del"};
  w.backup_root = backup;
  return std::make_unique<elastic::ElasticWorker>(std::move(*g), std::move(w));
}

MigrateRun RunOnce(uint32_t partitions, uint64_t preload_keys,
                   double phase_s) {
  auto dir = FreshBenchDir("migrate");
  elastic::ElasticHeadOptions h;
  h.state = "store";
  h.partitions = partitions;
  h.entries = {"put", "del"};
  h.backup_root = (dir / "backup").string();
  h.monitor_interval_ms = 50;
  elastic::ElasticHead head(std::move(h));
  if (!head.Start().ok()) {
    std::fprintf(stderr, "head start failed\n");
    std::exit(1);
  }
  auto w1 = MakeWorker(1, head.port(), partitions, (dir / "backup").string());
  auto w2 = MakeWorker(2, head.port(), partitions, (dir / "backup").string());
  if (!w1->Start().ok() || !w2->Start().ok() ||
      !head.WaitForMembers(2, 20000) || !head.WaitForAssignment(20000)) {
    std::fprintf(stderr, "fleet never assembled\n");
    std::exit(1);
  }

  uint64_t seq = 0;
  auto put = [&](int64_t key) {
    Status st = head.Inject(
        0, Tuple{Value(key), Value("v" + std::to_string(seq++))}, 60000);
    if (!st.ok()) {
      std::fprintf(stderr, "inject: %s\n", st.ToString().c_str());
      std::exit(1);
    }
  };
  for (uint64_t k = 0; k < preload_keys; ++k) {
    put(static_cast<int64_t>(k));
  }

  // Closed-loop steady state over the preloaded keyspace. Each measured
  // phase starts from a drained, fully-acked log so before/after compare the
  // data path, not the size of the backlog the previous phase left behind.
  auto measure = [&](double seconds) {
    if (!head.AwaitQuiesce(60000)) {
      std::fprintf(stderr, "quiesce failed\n");
      std::exit(1);
    }
    uint64_t items = 0;
    int64_t start = Stopwatch::NowNanos();
    int64_t end = start + static_cast<int64_t>(seconds * 1e9);
    while (Stopwatch::NowNanos() < end) {
      put(static_cast<int64_t>(items % preload_keys));
      ++items;
    }
    double elapsed = static_cast<double>(Stopwatch::NowNanos() - start) * 1e-9;
    return static_cast<double>(items) / elapsed;
  };

  MigrateRun run;
  run.items_per_sec_before = measure(phase_s);

  // Migrate whatever partition worker 1 owns while the stream keeps flowing:
  // the pause the head reports is the cutover under live load.
  uint32_t victim = 0;
  for (uint32_t p = 0; p < partitions; ++p) {
    if (head.OwnerOf(p) == 1) {
      victim = p;
      break;
    }
  }
  uint32_t target = head.OwnerOf(victim) == 1 ? 2 : 1;
  std::atomic<bool> stop{false};
  std::thread injector([&] {
    uint64_t i = 0;
    while (!stop.load(std::memory_order_acquire)) {
      put(static_cast<int64_t>(i++ % preload_keys));
    }
  });
  int64_t t0 = Stopwatch::NowNanos();
  Status st = head.MigratePartition(victim, target);
  run.wall_ms_total = static_cast<double>(Stopwatch::NowNanos() - t0) * 1e-6;
  stop.store(true, std::memory_order_release);
  injector.join();
  if (!st.ok()) {
    std::fprintf(stderr, "migrate: %s\n", st.ToString().c_str());
    std::exit(1);
  }
  run.wall_ms_pause = static_cast<double>(head.last_migration_pause_ms());

  run.items_per_sec_after = measure(phase_s);

  w1->Stop();
  w2->Stop();
  head.Stop();
  return run;
}

}  // namespace
}  // namespace sdg::bench

int main() {
  using namespace sdg::bench;
  const double phase_s = MeasureSeconds(1.0);
  const double scale = Scale();
  const int reps = Reps();

  PrintHeader("micro_migrate", "live partition migration: pause + throughput");
  PrintNote("pause holds ingest only for the final delta + routing flip");

  // Row names use the nominal key count, not the scaled one, so a scaled-down
  // CI smoke produces the same config names (with a preload_keys shape
  // mismatch, which diff_bench skips) instead of "row disappeared" failures.
  struct Config {
    uint32_t partitions;
    uint64_t nominal_keys;
    uint64_t preload_keys;
  };
  const std::vector<Config> configs = {
      {4, 10000, static_cast<uint64_t>(10000 * scale) + 1},
      {4, 50000, static_cast<uint64_t>(50000 * scale) + 1},
  };

  BenchJson json;
  std::printf("%-22s %14s %14s %12s %12s\n", "config", "before_items/s",
              "after_items/s", "pause_ms", "total_ms");
  for (const auto& c : configs) {
    MigrateRun best;
    for (int r = 0; r < reps; ++r) {
      MigrateRun run = RunOnce(c.partitions, c.preload_keys, phase_s);
      if (run.items_per_sec_before > best.items_per_sec_before) {
        best.items_per_sec_before = run.items_per_sec_before;
      }
      if (run.items_per_sec_after > best.items_per_sec_after) {
        best.items_per_sec_after = run.items_per_sec_after;
      }
      if (best.wall_ms_pause == 0 || run.wall_ms_pause < best.wall_ms_pause) {
        best.wall_ms_pause = run.wall_ms_pause;
      }
      if (best.wall_ms_total == 0 || run.wall_ms_total < best.wall_ms_total) {
        best.wall_ms_total = run.wall_ms_total;
      }
    }
    std::string config = "kv_p" + std::to_string(c.partitions) + "_keys" +
                         std::to_string(c.nominal_keys);
    std::printf("%-22s %14.0f %14.0f %12.1f %12.1f\n", config.c_str(),
                best.items_per_sec_before, best.items_per_sec_after,
                best.wall_ms_pause, best.wall_ms_total);
    json.BeginRow();
    json.Add("config", config);
    json.Add("partitions", static_cast<uint64_t>(c.partitions));
    json.Add("preload_keys", c.preload_keys);
    json.Add("reps", static_cast<uint64_t>(reps));
    json.Add("hw_threads", HwThreads());
    json.Add("items_per_sec_before", best.items_per_sec_before);
    json.Add("items_per_sec_after", best.items_per_sec_after);
    json.Add("wall_ms_pause", best.wall_ms_pause);
    json.Add("wall_ms_total", best.wall_ms_total);
  }
  if (!json.WriteFile("BENCH_migrate.json")) {
    std::fprintf(stderr, "failed to write BENCH_migrate.json\n");
    return 1;
  }
  std::printf("wrote BENCH_migrate.json\n");
  return 0;
}
