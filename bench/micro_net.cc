// TCP transport microbench (BENCH_net.json).
//
// Single process, loopback: a ChannelServer receiver and a RemoteChannel
// sender backed by an upstream-backup OutputBuffer — the exact data path of
// the two-process cluster mode, minus the process boundary. Sweeps the batch
// size and payload size and reports items/s and MiB/s per config, plus the
// per-DeliverAll latency distribution (via Histogram::BatchRecorder, so the
// measurement itself stays off the hot path's lock).
//
// The receiver acks every kAckEveryItems items, which is what bounds the
// sender's log: the bench also reports the peak unacked count it observed so
// a regression in ack trimming shows up as unbounded memory, not silence.
//
// Short mode: SDG_BENCH_SECONDS=0.2 (CI smoke).
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/common/metrics.h"
#include "src/net/channel_server.h"
#include "src/net/event_loop.h"
#include "src/net/mux.h"
#include "src/net/remote_channel.h"
#include "src/runtime/delivery.h"
#include "src/runtime/output_buffer.h"

namespace sdg::bench {
namespace {

constexpr uint64_t kAckEveryItems = 4096;

// Best-of-reps, as in micro_hotpath: on a shared machine the peak is the
// stable statistic for the regression gate, the mean measures noise.
int Reps() {
  const char* env = std::getenv("SDG_BENCH_REPS");
  if (env != nullptr) {
    int v = std::atoi(env);
    if (v > 0) {
      return v;
    }
  }
  return 3;
}

struct NetRun {
  double items_per_sec = 0;
  double mib_per_sec = 0;
  double send_p50_us = 0;
  double send_p99_us = 0;
  uint64_t items = 0;
  uint64_t peak_unacked = 0;
};

NetRun MeasureConfig(double duration_s, size_t batch_items,
                     size_t payload_bytes, bool use_event_loop) {
  std::atomic<uint64_t> received{0};
  std::atomic<uint64_t> last_ts{0};

  net::ChannelServerOptions sopts;
  sopts.mode =
      use_event_loop ? net::NetMode::kEventLoop : net::NetMode::kThreads;
  net::ChannelServer server(sopts);
  net::ChannelServer* server_ptr = &server;
  Status started = server.Start(
      [](const net::Handshake&) -> Result<uint64_t> { return 0; },
      [&received, &last_ts, server_ptr](const net::Handshake&,
                                        std::vector<runtime::DataItem> items) {
        uint64_t before = received.fetch_add(items.size());
        last_ts.store(items.back().ts, std::memory_order_relaxed);
        // Ack on batch boundaries crossing the interval; coarse acks model a
        // checkpoint-driven watermark, not per-item chatter.
        if (before / kAckEveryItems !=
            (before + items.size()) / kAckEveryItems) {
          server_ptr->Ack(items.back().ts);
        }
      });
  if (!started.ok()) {
    std::fprintf(stderr, "server start failed: %s\n",
                 started.ToString().c_str());
    std::exit(1);
  }

  runtime::OutputBuffer log;
  net::RemoteChannelOptions copts;
  copts.port = server.port();
  copts.entry = "bench";
  copts.use_event_loop = use_event_loop;
  net::RemoteChannel chan(copts, &log);
  if (Status s = chan.Connect(); !s.ok()) {
    std::fprintf(stderr, "connect failed: %s\n", s.ToString().c_str());
    std::exit(1);
  }

  Histogram send_us;
  Histogram::BatchRecorder send_rec(&send_us);
  const std::string payload(payload_bytes, 'x');
  LogicalClock clock;

  NetRun run;
  Stopwatch timer;
  while (timer.ElapsedSeconds() < duration_s) {
    std::vector<runtime::DataItem> batch;
    batch.reserve(batch_items);
    for (size_t i = 0; i < batch_items; ++i) {
      runtime::DataItem item;
      item.from = {runtime::kRemoteSourceTask, 0};
      item.ts = clock.Next();
      item.payload = Tuple{Value(payload)};
      batch.push_back(std::move(item));
    }
    Stopwatch send_timer;
    size_t accepted = chan.DeliverAll(std::move(batch));
    send_rec.Record(send_timer.ElapsedSeconds() * 1e6);
    run.items += accepted;
    run.peak_unacked = std::max<uint64_t>(run.peak_unacked, chan.UnackedCount());
    if (accepted != batch_items) {
      std::fprintf(stderr, "delivery rejected mid-bench\n");
      std::exit(1);
    }
  }
  double wall_s = timer.ElapsedSeconds();

  // Wait for the receiver to have seen everything before tearing down, so
  // items/s reflects received (durable-side) throughput, not queued frames.
  while (received.load() < run.items) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  send_rec.Flush();
  auto snap = send_us.Snapshot();

  run.items_per_sec = run.items / wall_s;
  run.mib_per_sec =
      (static_cast<double>(run.items) * payload_bytes) / wall_s / (1 << 20);
  run.send_p50_us = snap.p50;
  run.send_p99_us = snap.p99;

  chan.Close();
  server.Stop();
  return run;
}

// Mux variant: N logical channels share ONE socket through a MuxPool, the
// deployment transport (what elastic workers use). A shared LogicalClock
// keeps ts globally monotonic across streams so the server's broadcast ack
// watermark trims every channel's log. Round-robin sends model the head
// fanning one entry's output across partitions.
NetRun MeasureMuxConfig(double duration_s, size_t batch_items,
                        size_t payload_bytes, size_t num_streams) {
  std::atomic<uint64_t> received{0};

  net::ChannelServerOptions sopts;
  sopts.mode = net::NetMode::kEventLoop;
  net::ChannelServer server(sopts);
  net::ChannelServer* server_ptr = &server;
  Status started = server.Start(
      [](const net::Handshake&) -> Result<uint64_t> { return 0; },
      [&received, server_ptr](const net::Handshake&,
                              std::vector<runtime::DataItem> items) {
        uint64_t before = received.fetch_add(items.size());
        if (before / kAckEveryItems !=
            (before + items.size()) / kAckEveryItems) {
          server_ptr->Ack(items.back().ts);
        }
      });
  if (!started.ok()) {
    std::fprintf(stderr, "server start failed: %s\n",
                 started.ToString().c_str());
    std::exit(1);
  }

  net::MuxConnection::Options mopts;
  mopts.loop = net::EventLoop::Shared();
  net::MuxPool pool(mopts);

  std::vector<std::unique_ptr<runtime::OutputBuffer>> logs;
  std::vector<std::unique_ptr<net::RemoteChannel>> chans;
  for (size_t i = 0; i < num_streams; ++i) {
    logs.push_back(std::make_unique<runtime::OutputBuffer>());
    net::RemoteChannelOptions copts;
    copts.port = server.port();
    copts.entry = "bench";
    copts.source_instance = static_cast<uint32_t>(i);
    copts.use_event_loop = true;
    copts.mux = &pool;
    chans.push_back(
        std::make_unique<net::RemoteChannel>(copts, logs.back().get()));
    if (Status s = chans.back()->Connect(); !s.ok()) {
      std::fprintf(stderr, "mux connect failed: %s\n", s.ToString().c_str());
      std::exit(1);
    }
  }

  Histogram send_us;
  Histogram::BatchRecorder send_rec(&send_us);
  const std::string payload(payload_bytes, 'x');
  LogicalClock clock;

  NetRun run;
  Stopwatch timer;
  size_t next = 0;
  while (timer.ElapsedSeconds() < duration_s) {
    std::vector<runtime::DataItem> batch;
    batch.reserve(batch_items);
    for (size_t i = 0; i < batch_items; ++i) {
      runtime::DataItem item;
      item.from = {runtime::kRemoteSourceTask, static_cast<uint32_t>(next)};
      item.ts = clock.Next();
      item.payload = Tuple{Value(payload)};
      batch.push_back(std::move(item));
    }
    net::RemoteChannel& chan = *chans[next];
    next = (next + 1) % num_streams;
    Stopwatch send_timer;
    size_t accepted = chan.DeliverAll(std::move(batch));
    send_rec.Record(send_timer.ElapsedSeconds() * 1e6);
    run.items += accepted;
    run.peak_unacked =
        std::max<uint64_t>(run.peak_unacked, chan.UnackedCount());
    if (accepted != batch_items) {
      std::fprintf(stderr, "delivery rejected mid-bench\n");
      std::exit(1);
    }
  }
  double wall_s = timer.ElapsedSeconds();

  while (received.load() < run.items) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  send_rec.Flush();
  auto snap = send_us.Snapshot();

  run.items_per_sec = run.items / wall_s;
  run.mib_per_sec =
      (static_cast<double>(run.items) * payload_bytes) / wall_s / (1 << 20);
  run.send_p50_us = snap.p50;
  run.send_p99_us = snap.p99;

  for (auto& chan : chans) {
    chan->Close();
  }
  pool.CloseAll();
  server.Stop();
  return run;
}

}  // namespace
}  // namespace sdg::bench

int main() {
  using namespace sdg::bench;

  const double duration_s = MeasureSeconds(1.0);

  PrintHeader("micro_net", "loopback TCP channel: mode/batch/payload sweep");
  std::printf("  %-30s %12s %10s %10s %10s %12s\n", "config", "items/s",
              "MiB/s", "p50 us", "p99 us", "peak unackd");

  // "epoll" is the deployment default (shared event loop + executor
  // dispatch); "threads" keeps the writer/reader-thread-per-connection
  // design alive as the measured baseline the tentpole replaced.
  BenchJson json;
  for (bool use_event_loop : {true, false}) {
    for (size_t batch : {1, 64, 512}) {
      for (size_t payload : {16, 256}) {
        NetRun r;
        for (int rep = 0; rep < Reps(); ++rep) {
          NetRun attempt =
              MeasureConfig(duration_s, batch, payload, use_event_loop);
          if (attempt.items_per_sec > r.items_per_sec) {
            r = attempt;
          }
        }
        char tag[64];
        std::snprintf(tag, sizeof(tag), "%s_batch%zu_payload%zuB",
                      use_event_loop ? "epoll" : "threads", batch, payload);
        std::printf("  %-30s %12.0f %10.1f %10.1f %10.1f %12llu\n", tag,
                    r.items_per_sec, r.mib_per_sec, r.send_p50_us,
                    r.send_p99_us,
                    static_cast<unsigned long long>(r.peak_unacked));
        json.BeginRow();
        json.Add("config", std::string(tag));
        json.Add("mode", std::string(use_event_loop ? "epoll" : "threads"));
        json.Add("batch_items", static_cast<uint64_t>(batch));
        json.Add("payload_bytes", static_cast<uint64_t>(payload));
        json.Add("hw_threads", HwThreads());
        json.Add("items_per_sec", r.items_per_sec);
        json.Add("mib_per_sec", r.mib_per_sec);
        json.Add("send_p50_us", r.send_p50_us);
        json.Add("send_p99_us", r.send_p99_us);
        json.Add("items", r.items);
        json.Add("peak_unacked", r.peak_unacked);
      }
    }
  }

  // Mux rows: the shared-socket deployment transport. streams=N is N logical
  // channels multiplexed over ONE socket; compare streams1_batch1 against
  // epoll_batch1 for the per-send win, and the streams sweep for fan-out
  // scaling that per-channel sockets paid a connection apiece for.
  for (size_t streams : {1, 4, 16}) {
    for (size_t batch : {1, 64}) {
      constexpr size_t kPayload = 16;
      NetRun r;
      for (int rep = 0; rep < Reps(); ++rep) {
        NetRun attempt = MeasureMuxConfig(duration_s, batch, kPayload, streams);
        if (attempt.items_per_sec > r.items_per_sec) {
          r = attempt;
        }
      }
      char tag[64];
      std::snprintf(tag, sizeof(tag), "mux_streams%zu_batch%zu_payload%zuB",
                    streams, batch, kPayload);
      std::printf("  %-30s %12.0f %10.1f %10.1f %10.1f %12llu\n", tag,
                  r.items_per_sec, r.mib_per_sec, r.send_p50_us, r.send_p99_us,
                  static_cast<unsigned long long>(r.peak_unacked));
      json.BeginRow();
      json.Add("config", std::string(tag));
      json.Add("mode", std::string("mux"));
      json.Add("streams", static_cast<uint64_t>(streams));
      json.Add("batch_items", static_cast<uint64_t>(batch));
      json.Add("payload_bytes", static_cast<uint64_t>(kPayload));
      json.Add("hw_threads", HwThreads());
      json.Add("items_per_sec", r.items_per_sec);
      json.Add("mib_per_sec", r.mib_per_sec);
      json.Add("send_p50_us", r.send_p50_us);
      json.Add("send_p99_us", r.send_p99_us);
      json.Add("items", r.items);
      json.Add("peak_unacked", r.peak_unacked);
    }
  }

  if (json.WriteFile("BENCH_net.json")) {
    PrintNote("wrote BENCH_net.json");
  }
  return 0;
}
