// Fig. 9 — Batch logistic regression: throughput scaling with worker count,
// SDG vs the Spark-style iterative batch engine.
//
// Paper shape: both scale linearly with nodes (25-100 in the paper); SDG
// sits above Spark because pipelined TEs avoid per-iteration task
// re-instantiation. Worker counts are scaled to one machine.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/apps/lr.h"
#include "src/apps/workloads.h"
#include "src/baseline/iterative_batch.h"

namespace sdg::bench {
namespace {

constexpr size_t kDims = 64;
constexpr uint32_t kIterations = 6;

double RunSdgLr(uint32_t workers,
                const std::vector<apps::LrDataGenerator::Example>& data) {
  apps::LrOptions opt;
  opt.dimensions = kDims;
  opt.worker_replicas = workers;
  auto g = apps::BuildLrSdg(opt);
  if (!g.ok()) {
    return 0;
  }
  runtime::ClusterOptions copts;
  copts.num_nodes = workers;
  copts.mailbox_capacity = 1 << 15;
  runtime::Cluster cluster(copts);
  auto d = cluster.Deploy(std::move(*g));
  if (!d.ok()) {
    return 0;
  }

  // Pre-pack the dataset into splits (the dataflow's input granularity;
  // datasets enter as blocks, not single records).
  constexpr size_t kSplit = 2000;
  std::vector<Tuple> splits;
  for (size_t base = 0; base < data.size(); base += kSplit) {
    std::vector<double> xs;
    std::vector<int64_t> ys;
    size_t end = std::min(data.size(), base + kSplit);
    xs.reserve((end - base) * kDims);
    for (size_t i = base; i < end; ++i) {
      xs.insert(xs.end(), data[i].x.begin(), data[i].x.end());
      ys.push_back(data[i].y);
    }
    splits.emplace_back(Tuple{Value(std::move(xs)), Value(std::move(ys))});
  }

  Stopwatch timer;
  // The pipelined SDG streams the epochs through the standing train TEs; no
  // per-iteration redeployment.
  for (uint32_t iter = 0; iter < kIterations; ++iter) {
    for (const auto& split : splits) {
      (void)(*d)->Inject("trainBatch", split);
    }
  }
  (*d)->Drain();
  double elapsed = timer.ElapsedSeconds();
  (*d)->Shutdown();
  return elapsed > 0
             ? static_cast<double>(data.size()) * kIterations / elapsed
             : 0;
}

void Run() {
  PrintHeader("Fig. 9", "batch LR: throughput vs workers, SDG vs Spark-style");
  const double scale = Scale();
  const auto examples = static_cast<size_t>(40000 * scale);

  apps::LrDataGenerator gen(kDims, 5);
  std::vector<apps::LrDataGenerator::Example> data;
  data.reserve(examples);
  for (size_t i = 0; i < examples; ++i) {
    data.push_back(gen.Next());
  }

  std::printf("%-8s %18s %18s %10s %22s %22s\n", "workers", "SDG (ex/s)",
              "Spark (ex/s)", "SDG/Spark", "SDG modeled (ex/s)",
              "Spark modeled (ex/s)");
  double hw = std::max(1u, std::thread::hardware_concurrency());
  for (uint32_t workers : {1, 2, 4, 8}) {
    double sdg = RunSdgLr(workers, data);

    baseline::IterativeLrOptions sopt;
    sopt.workers = workers;
    sopt.partitions_per_worker = 4;
    sopt.iterations = kIterations;
    sopt.task_launch_overhead_s = 0.015;
    double spark = baseline::RunIterativeBatchLr(sopt, data).throughput_examples_s;

    // Simulated workers share this machine's cores; the modeled columns
    // scale the measured rates to dedicated machines.
    double factor = std::max(1.0, static_cast<double>(workers) / hw);
    std::printf("%-8u %18.0f %18.0f %9.2fx %22.0f %22.0f\n", workers, sdg,
                spark, spark > 0 ? sdg / spark : 0.0, sdg * factor,
                spark * factor);
  }
  PrintNote("per-iteration task launches cost the Spark model 15 ms each "
            "(2014-era task latency); SDG TEs stay deployed across "
            "iterations");
}

}  // namespace
}  // namespace sdg::bench

int main() {
  sdg::bench::Run();
  return 0;
}
