// Microbenchmarks of the runtime layer (google-benchmark): injection-to-sink
// latency, partitioned hops, and the partial-state barrier as the replica
// count grows — the building blocks behind the figure-level results.
#include <benchmark/benchmark.h>

#include <atomic>
#include <condition_variable>
#include <mutex>

#include "src/graph/sdg.h"
#include "src/runtime/cluster.h"
#include "src/state/keyed_dict.h"

namespace sdg::runtime {
namespace {

using state::KeyedDict;
using state::StateAs;
using IntDict = KeyedDict<int64_t, int64_t>;

// Blocks until the sink has delivered `expected` tuples.
class SinkLatch {
 public:
  void Arrived() {
    std::lock_guard<std::mutex> lock(mu_);
    ++count_;
    cv_.notify_all();
  }
  void AwaitAndReset(uint64_t expected) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return count_ >= expected; });
    count_ = 0;
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  uint64_t count_ = 0;
};

void BM_InjectToSinkRoundTrip(benchmark::State& state) {
  graph::SdgBuilder b;
  auto echo = b.AddEntryTask("echo", [](const Tuple& in, graph::TaskContext& ctx) {
    ctx.Emit(0, in);
  });
  (void)echo;
  auto g = std::move(b).Build();
  ClusterOptions o;
  o.num_nodes = 1;
  Cluster cluster(o);
  auto d = cluster.Deploy(std::move(*g));
  SinkLatch latch;
  (void)(*d)->OnOutput("echo", [&](const Tuple&, uint64_t) { latch.Arrived(); });

  for (auto _ : state) {
    (void)(*d)->Inject("echo", Tuple{Value(1)});
    latch.AwaitAndReset(1);
  }
  state.SetItemsProcessed(state.iterations());
  (*d)->Shutdown();
}
BENCHMARK(BM_InjectToSinkRoundTrip);

void BM_PartitionedPut(benchmark::State& state) {
  const auto partitions = static_cast<uint32_t>(state.range(0));
  graph::SdgBuilder b;
  auto dict = b.AddState("d", graph::StateDistribution::kPartitioned,
                         [] { return std::make_unique<IntDict>(); });
  auto put = b.AddEntryTask("put", [](const Tuple& in, graph::TaskContext& ctx) {
    StateAs<IntDict>(ctx.state())->Put(in[0].AsInt(), in[1].AsInt());
  });
  (void)b.SetAccess(put, dict, graph::AccessMode::kPartitioned);
  b.SetInitialInstances(put, partitions);
  auto g = std::move(b).Build();
  ClusterOptions o;
  o.num_nodes = partitions;
  Cluster cluster(o);
  auto d = cluster.Deploy(std::move(*g));

  int64_t k = 0;
  for (auto _ : state) {
    (void)(*d)->Inject("put", Tuple{Value(k++ % 10000), Value(k)});
  }
  (*d)->Drain();
  state.SetItemsProcessed(state.iterations());
  (*d)->Shutdown();
}
BENCHMARK(BM_PartitionedPut)->Arg(1)->Arg(2)->Arg(4);

void BM_InstanceScaling(benchmark::State& state) {
  // §3.3-3.4 at executor scale: the same partitioned put pipeline with the
  // stateful stage materialised `instances` wide, multiplexed over the fixed
  // shared pool. Thread-per-instance could not run the 1024 point at all;
  // here the cost is ready-set scheduling, not thread creation.
  const auto instances = static_cast<uint32_t>(state.range(0));
  graph::SdgBuilder b;
  auto dict = b.AddState("d", graph::StateDistribution::kPartitioned,
                         [] { return std::make_unique<IntDict>(); });
  auto put = b.AddEntryTask("put", [](const Tuple& in, graph::TaskContext& ctx) {
    StateAs<IntDict>(ctx.state())->Put(in[0].AsInt(), in[1].AsInt());
  });
  (void)b.SetAccess(put, dict, graph::AccessMode::kPartitioned);
  b.SetInitialInstances(put, instances);
  auto g = std::move(b).Build();
  ClusterOptions o;
  o.num_nodes = 4;
  Cluster cluster(o);
  auto d = cluster.Deploy(std::move(*g));

  int64_t k = 0;
  for (auto _ : state) {
    (void)(*d)->Inject("put", Tuple{Value(k++ % 100003), Value(k)});
  }
  (*d)->Drain();
  state.SetItemsProcessed(state.iterations());
  (*d)->Shutdown();
}
BENCHMARK(BM_InstanceScaling)->Arg(64)->Arg(256)->Arg(1024);

void BM_PartialBarrierMerge(benchmark::State& state) {
  // One global read: broadcast to k replicas, gather k partials, merge.
  const auto replicas = static_cast<uint32_t>(state.range(0));
  graph::SdgBuilder b;
  auto acc = b.AddState("acc", graph::StateDistribution::kPartial,
                        [] { return std::make_unique<IntDict>(); });
  auto update = b.AddEntryTask("update", [](const Tuple& in,
                                            graph::TaskContext& ctx) {
    StateAs<IntDict>(ctx.state())->Put(in[0].AsInt(), 1);
  });
  auto query = b.AddEntryTask("query", [](const Tuple& in, graph::TaskContext& ctx) {
    ctx.Emit(0, in);
  });
  auto read = b.AddTask("read", [](const Tuple& in, graph::TaskContext& ctx) {
    ctx.Emit(0, Tuple{in[0],
                      Value(StateAs<IntDict>(ctx.state())->Get(in[0].AsInt())
                                .value_or(0))});
  });
  auto merge = b.AddCollectorTask(
      "merge", [](const std::vector<Tuple>& partials, graph::TaskContext& ctx) {
        int64_t total = 0;
        for (const auto& p : partials) {
          total += p[1].AsInt();
        }
        ctx.Emit(0, Tuple{partials[0][0], Value(total)});
      });
  (void)b.SetAccess(update, acc, graph::AccessMode::kLocal);
  (void)b.SetAccess(read, acc, graph::AccessMode::kGlobal);
  b.SetInitialInstances(update, replicas);
  (void)b.Connect(query, read, graph::Dispatch::kOneToAll);
  (void)b.Connect(read, merge, graph::Dispatch::kAllToOne);
  auto g = std::move(b).Build();

  ClusterOptions o;
  o.num_nodes = replicas;
  Cluster cluster(o);
  auto d = cluster.Deploy(std::move(*g));
  SinkLatch latch;
  (void)(*d)->OnOutput("merge", [&](const Tuple&, uint64_t) { latch.Arrived(); });

  for (auto _ : state) {
    (void)(*d)->Inject("query", Tuple{Value(7)});
    latch.AwaitAndReset(1);
  }
  state.SetItemsProcessed(state.iterations());
  (*d)->Shutdown();
}
BENCHMARK(BM_PartialBarrierMerge)->Arg(1)->Arg(2)->Arg(4);

void BM_DeploymentStartup(benchmark::State& state) {
  // §3.4: materialising an SDG is the model's fixed cost ("50 TE and SE
  // instances on 50 nodes within 7 s" on the paper's cluster). Here: one
  // partitioned group scaled to `instances`, time to full deployment.
  const auto instances = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    graph::SdgBuilder b;
    auto dict = b.AddState("d", graph::StateDistribution::kPartitioned,
                           [] { return std::make_unique<IntDict>(); });
    auto put = b.AddEntryTask("put", [](const Tuple& in, graph::TaskContext& ctx) {
      StateAs<IntDict>(ctx.state())->Put(in[0].AsInt(), in[1].AsInt());
    });
    (void)b.SetAccess(put, dict, graph::AccessMode::kPartitioned);
    b.SetInitialInstances(put, instances);
    auto g = std::move(b).Build();
    ClusterOptions o;
    o.num_nodes = instances;
    Cluster cluster(o);
    auto d = cluster.Deploy(std::move(*g));
    benchmark::DoNotOptimize(d);
    (*d)->Shutdown();
  }
}
BENCHMARK(BM_DeploymentStartup)->Arg(4)->Arg(16)->Arg(50);

}  // namespace
}  // namespace sdg::runtime

BENCHMARK_MAIN();
