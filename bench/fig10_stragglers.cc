// Fig. 10 — Straggler mitigation timeline: CF throughput and instance count
// over time while the runtime reacts to bottlenecks and a slow node.
//
// Paper shape: a single getRecVec instance bottlenecks; a second instance
// (t≈10 s) roughly doubles throughput; it lands on a slow machine, so a
// further instance added without relieving the straggler doesn't help;
// once the straggler is detected and an instance is placed elsewhere
// (t≈50 s), throughput rises again (3.6k -> 6.2k -> 11k req/s in the paper).
#include <cstdio>

#include "bench/bench_common.h"
#include "src/apps/cf.h"
#include "src/apps/workloads.h"
#include "src/common/rng.h"

namespace sdg::bench {
namespace {

void Run() {
  PrintHeader("Fig. 10", "runtime parallelism under a straggling node (timeline)");
  const double seconds = MeasureSeconds(32.0);
  const double scale = Scale();
  (void)scale;
  const auto num_users = static_cast<uint64_t>(10000);
  const auto num_items = static_cast<uint64_t>(100);  // caps coOcc growth

  apps::CfOptions opt;
  opt.num_items = num_items;
  // Sleep-bound per-rating work in the CPU-intensive updateCoOcc TE so added
  // instances add capacity even on a single-core host (sleeping instances
  // overlap; one-to-any dispatch splits the load across replicas).
  opt.update_think_us = 2000;
  opt.multiply_think_us = 100;
  auto t = apps::BuildCfSdg(opt);
  if (!t.ok()) {
    std::fprintf(stderr, "build failed: %s\n", t.status().ToString().c_str());
    return;
  }

  runtime::ClusterOptions copts;
  copts.num_nodes = 4;
  copts.mailbox_capacity = 512;
  // Node 2 is the "less powerful machine" of §6.3.
  copts.node_speed = {1.0, 1.0, 0.25, 1.0};
  copts.scaling.enabled = true;
  copts.scaling.sample_interval_ms = 250;
  copts.scaling.queue_high_watermark = 0.20;
  copts.scaling.samples_to_trigger = 2;
  copts.scaling.cooldown_ms = 1500;
  copts.scaling.max_instances_per_task = 4;
  copts.scaling.straggler_ratio = 0.5;
  runtime::Cluster cluster(copts);
  auto d = cluster.Deploy(std::move(t->sdg));
  if (!d.ok()) {
    std::fprintf(stderr, "deploy failed: %s\n", d.status().ToString().c_str());
    return;
  }

  // Warm the model.
  apps::RatingGenerator warmup(num_users, num_items, 1);
  for (int i = 0; i < 3000; ++i) {
    auto r = warmup.Next();
    (void)(*d)->Inject("addRating",
                       Tuple{Value(r.user), Value(r.item), Value(r.rating)});
  }
  (*d)->Drain();



  std::atomic<bool> stop{false};
  std::vector<std::thread> injectors;
  std::atomic<uint64_t> seed{50};
  for (int i = 0; i < 2; ++i) {
    injectors.emplace_back([&] {
      Rng rng(seed.fetch_add(1));
      apps::RatingGenerator ratings(num_users, num_items, seed.fetch_add(1));
      while (!stop.load(std::memory_order_relaxed)) {
        if (Backpressure(**d, 1024)) {
          continue;
        }
        if (rng.NextDouble() < 0.05) {
          auto user = static_cast<int64_t>(rng.NextBounded(num_users));
          (void)(*d)->Inject("getRec", Tuple{Value(user)});
        } else {
          auto r = ratings.Next();
          (void)(*d)->Inject(
              "addRating", Tuple{Value(r.user), Value(r.item), Value(r.rating)});
        }
      }
    });
  }

  std::printf("%-10s %16s %16s %14s\n", "t (s)", "tput (req/s)",
              "updateCoOcc TEs", "coOcc SEs");
  Stopwatch clock;
  uint64_t last = (*d)->ProcessedOf("updateCoOcc");  // exclude warmup items
  double tick = 1.0;
  for (double t_s = tick; t_s <= seconds; t_s += tick) {
    while (clock.ElapsedSeconds() < t_s) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    uint64_t now = (*d)->ProcessedOf("updateCoOcc");
    std::printf("%-10.0f %16.0f %16u %14u\n", t_s,
                static_cast<double>(now - last) / tick,
                (*d)->NumInstancesOf("updateCoOcc"),
                (*d)->NumStateInstances("coOcc"));
    last = now;
  }

  stop = true;
  for (auto& i : injectors) {
    i.join();
  }
  (*d)->Drain();
  (*d)->Shutdown();
  PrintNote("node 2 runs at 0.25x speed; watch instance count rise and "
            "throughput step when placement avoids the flagged straggler");
}

}  // namespace
}  // namespace sdg::bench

int main() {
  sdg::bench::Run();
  return 0;
}
