// Fig. 12 — Synchronous vs asynchronous checkpointing on the SDG runtime:
// KV throughput and tail latency as checkpoint (state) size grows.
//
// Paper shape: with synchronous (stop-the-node) checkpoints, throughput
// falls ~33% and p99 latency climbs to seconds as state reaches 4 GB;
// asynchronous dirty-state checkpoints cost ~5% throughput with latency an
// order of magnitude lower.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/apps/kv.h"
#include "src/apps/workloads.h"

namespace sdg::bench {
namespace {

constexpr size_t kValueSize = 1024;

struct Point {
  double tput = 0;
  double p99_ms = 0;
  double p50_ms = 0;
};

Point RunMode(runtime::FtMode mode, uint64_t keys, double seconds) {
  auto dir = FreshBenchDir("fig12");
  apps::KvOptions opt;
  auto g = apps::BuildKvSdg(opt);
  if (!g.ok()) {
    return {};
  }
  runtime::ClusterOptions copts;
  copts.num_nodes = 1;
  copts.mailbox_capacity = 1 << 14;
  copts.fault_tolerance.mode = mode;
  copts.fault_tolerance.checkpoint_interval_s = 1.0;
  copts.fault_tolerance.store.root = dir;
  copts.fault_tolerance.store.num_backup_nodes = 2;
  copts.fault_tolerance.store.io_threads = 4;
  runtime::Cluster cluster(copts);
  auto d = cluster.Deploy(std::move(*g));
  if (!d.ok()) {
    return {};
  }

  std::string value(kValueSize, 'x');
  for (uint64_t k = 0; k < keys; ++k) {
    (void)(*d)->Inject("put", Tuple{Value(static_cast<int64_t>(k)), Value(value)});
  }
  (*d)->Drain();

  Histogram latency_ms;
  (void)(*d)->OnOutput("get", [&](const Tuple&, uint64_t tag) {
    if (tag != 0) {
      latency_ms.Record(LatencyMsFromTag(tag));
    }
  });

  std::atomic<uint64_t> seed{23};
  uint64_t injected = DriveLoad(seconds, 2, [&](int) {
    thread_local apps::KvWorkload wl(keys, kValueSize, 0.5,
                                     seed.fetch_add(1));
    if (Backpressure(**d)) {
      return false;
    }
    auto op = wl.Next();
    if (op.type == apps::KvWorkload::OpType::kRead) {
      return (*d)->Inject("get", Tuple{Value(op.key)}, NowTag()).ok();
    }
    return (*d)->Inject("put", Tuple{Value(op.key), Value(std::move(op.value))}).ok();
  });
  (*d)->Drain();
  auto lat = latency_ms.Snapshot();
  (*d)->Shutdown();
  std::filesystem::remove_all(dir);
  return {static_cast<double>(injected) / seconds, lat.p99, lat.p50};
}

void Run() {
  PrintHeader("Fig. 12", "sync vs async checkpointing: throughput and tail latency");
  const double seconds = MeasureSeconds(3.0);
  const double scale = Scale();

  std::printf("%-12s %-8s %14s %12s %12s\n", "state", "mode", "tput (op/s)",
              "p50 (ms)", "p99 (ms)");
  for (uint64_t mb : {16, 32, 64, 128}) {
    auto keys =
        static_cast<uint64_t>(mb * 1024.0 * 1024.0 * scale / kValueSize);
    char label[32];
    std::snprintf(label, sizeof(label), "%lu MB",
                  static_cast<unsigned long>(mb));
    auto sync = RunMode(runtime::FtMode::kSyncLocal, keys, seconds);
    auto async = RunMode(runtime::FtMode::kAsyncLocal, keys, seconds);
    std::printf("%-12s %-8s %14.0f %12.3f %12.3f\n", label, "sync", sync.tput,
                sync.p50_ms, sync.p99_ms);
    std::printf("%-12s %-8s %14.0f %12.3f %12.3f\n", label, "async",
                async.tput, async.p50_ms, async.p99_ms);
  }
  PrintNote("checkpoint interval 1 s; sync stops the node for the full "
            "serialise+write, async locks only to consolidate dirty state");
}

}  // namespace
}  // namespace sdg::bench

int main() {
  sdg::bench::Run();
  return 0;
}
