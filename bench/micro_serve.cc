// Serve front-door bench (BENCH_serve.json).
//
// One process, loopback TCP: a real ElasticHead + ServeGateway, a real
// ElasticWorker with the replica feed on, and the serve load generator as
// the client — the exact three-process serving topology of
// tools/kv_gateway + elastic_worker --serve + kv_loadgen, minus the process
// boundaries. Four stories, each a fresh fleet so no controller state leaks
// between rows:
//
//   1. Load sweep: open-loop QPS vs p50/p99 at several offered loads
//      (latency measured from the scheduled send time — no coordinated
//      omission), plus a closed-loop row.
//   2. Batch policy: fixed batch 1 vs fixed 512 vs the SLO-adaptive AIMD
//      controller at a demanding offered load. The adaptive row must hold
//      p99 within 2x the SLO at comparable throughput.
//   3. Peak: the same policies driven past saturation (admission sheds the
//      excess); items_per_sec is the sustained accepted rate.
//   4. Read scaling: bounded-stale gets answered from the gateway's replica
//      table vs the write-path ceiling and the strong-read path — §3.2's
//      partial-state read replicas are the only row that clears the
//      dataflow's single-host ceiling.
//
// Short mode: SDG_BENCH_SECONDS=0.2 (CI smoke; rows carry measure_s so the
// trajectory diff never compares smoke windows against full runs).
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/apps/kv.h"
#include "src/runtime/elastic.h"
#include "src/serve/client.h"
#include "src/serve/gateway.h"
#include "src/serve/loadgen.h"

namespace sdg::bench {
namespace {

constexpr uint32_t kPartitions = 4;
constexpr double kSloMs = 20.0;

// A full serving fleet on loopback: head + gateway + one feed-enabled worker.
struct ServeFleet {
  std::filesystem::path root;
  std::unique_ptr<elastic::ElasticHead> head;
  std::unique_ptr<elastic::ElasticWorker> worker;
  std::unique_ptr<serve::ServeGateway> gateway;

  bool Start(size_t fixed_batch) {
    root = FreshBenchDir("serve");
    elastic::ElasticHeadOptions h;
    h.state = "store";
    h.partitions = kPartitions;
    h.entries = {"put", "get", "del"};
    h.backup_root = (root / "backup").string();
    h.monitor_interval_ms = 50;
    head = std::make_unique<elastic::ElasticHead>(h);
    if (!head->Start().ok()) {
      return false;
    }

    apps::KvOptions kv;
    kv.partitions = kPartitions;
    auto g = apps::BuildKvSdg(kv);
    if (!g.ok()) {
      return false;
    }
    elastic::ElasticWorkerOptions w;
    w.member_id = 1;
    w.name = "w1";
    w.head_port = head->port();
    w.state = "store";
    w.partitions = kPartitions;
    w.entries = {"put", "get", "del"};
    w.backup_root = h.backup_root;
    w.checkpoint_interval_ms = 100;
    w.serve_feed = true;
    w.forward_sinks = {"get"};
    worker = std::make_unique<elastic::ElasticWorker>(std::move(*g),
                                                      std::move(w));
    if (!worker->Start().ok() || !worker->WaitJoined(20000) ||
        !head->WaitForAssignment(20000)) {
      return false;
    }

    serve::GatewayOptions go;
    go.partitions = kPartitions;
    go.batcher.slo_p99_ms = kSloMs;
    go.fixed_batch = fixed_batch;
    gateway = std::make_unique<serve::ServeGateway>(head.get(), go);
    return gateway->Start().ok();
  }

  // Writes keys 0..n-1 and waits until every partition's replica answers a
  // bounded-stale read (the feed has based every partition).
  bool Prefill(int64_t n) {
    serve::KvClient client({"127.0.0.1", head->port()});
    if (!client.Connect().ok()) {
      return false;
    }
    for (int64_t k = 0; k < n; ++k) {
      auto resp = client.Put(k, "v" + std::to_string(k));
      if (!resp.ok()) {
        std::fprintf(stderr, "prefill put %lld: %s\n",
                     static_cast<long long>(k),
                     resp.status().ToString().c_str());
        return false;
      }
      if (resp->code != net::kRespOk) {
        std::fprintf(stderr, "prefill put %lld: code %d\n",
                     static_cast<long long>(k),
                     static_cast<int>(resp->code));
        return false;
      }
    }
    auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    const auto& table = gateway->replicas();
    uint32_t warm = 0;
    while (warm < kPartitions) {
      if (std::chrono::steady_clock::now() > deadline) {
        std::fprintf(stderr,
                     "replica warmup timed out: %u/%u partitions warm, "
                     "%llu epochs applied, %llu feed errors, "
                     "%llu published by worker\n",
                     warm, kPartitions,
                     static_cast<unsigned long long>(
                         gateway->replicas().epochs_applied()),
                     static_cast<unsigned long long>(
                         gateway->replicas().feed_errors()),
                     static_cast<unsigned long long>(
                         worker->feed_epochs_published()));
        return false;
      }
      warm = 0;
      std::vector<bool> seen(kPartitions, false);
      for (int64_t k = 0; k < n; ++k) {
        uint32_t p = table.PartitionOf(k);
        if (!seen[p] && table.TryGet(k, 8).admissible) {
          seen[p] = true;
          ++warm;
        }
      }
      if (warm < kPartitions) {
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
      }
    }
    client.Close();
    return true;
  }

  void Stop() {
    if (gateway != nullptr) {
      gateway->Stop();
    }
    if (worker != nullptr) {
      worker->Stop();
    }
    if (head != nullptr) {
      head->Stop();
    }
    std::filesystem::remove_all(root);
  }
};

struct RowSpec {
  std::string config;
  size_t fixed_batch = 0;  // 0 = adaptive
  double offered_qps = 0;  // 0 = closed loop
  int connections = 4;
  double get_fraction = 0;
  double stale_fraction = 0;
  int64_t prefill = 0;
};

void RunRow(BenchJson& json, const RowSpec& spec, double measure_s) {
  ServeFleet fleet;
  if (!fleet.Start(spec.fixed_batch)) {
    std::fprintf(stderr, "serve fleet failed to start for %s\n",
                 spec.config.c_str());
    fleet.Stop();
    return;
  }
  if (spec.prefill > 0 && !fleet.Prefill(spec.prefill)) {
    std::fprintf(stderr, "prefill/replica warmup failed for %s\n",
                 spec.config.c_str());
    fleet.Stop();
    return;
  }

  serve::LoadGenOptions o;
  o.port = fleet.head->port();
  o.connections = spec.connections;
  o.duration_ms = static_cast<int>(measure_s * 1000);
  o.offered_qps = spec.offered_qps;
  o.get_fraction = spec.get_fraction;
  o.stale_fraction = spec.stale_fraction;
  o.max_epoch_lag = 8;
  o.key_space = spec.prefill > 0 ? spec.prefill : 4096;
  o.pipeline = 128;
  auto report = serve::RunLoadGen(o);
  auto stats = fleet.gateway->stats();
  fleet.Stop();
  if (!report.ok()) {
    std::fprintf(stderr, "loadgen failed for %s: %s\n", spec.config.c_str(),
                 report.status().ToString().c_str());
    return;
  }

  std::string policy = spec.fixed_batch == 0
                           ? "adaptive"
                           : "fixed" + std::to_string(spec.fixed_batch);
  std::printf(
      "  %-22s %8.0f qps  p50 %7.3f ms  p99 %8.3f ms  shed %6llu  "
      "replica %6llu  batch %zu\n",
      spec.config.c_str(), report->achieved_qps, report->latency_ms.p50,
      report->latency_ms.p99,
      static_cast<unsigned long long>(report->overloaded),
      static_cast<unsigned long long>(report->replica_answers),
      stats.batch_size);

  json.BeginRow();
  json.Add("config", spec.config);
  json.Add("mode", spec.offered_qps > 0 ? std::string("open")
                                        : std::string("closed"));
  json.Add("batch_policy", policy);
  json.Add("offered_qps", spec.offered_qps);
  json.Add("connections", static_cast<uint64_t>(spec.connections));
  json.Add("get_fraction", spec.get_fraction);
  json.Add("stale_fraction", spec.stale_fraction);
  json.Add("slo_ms", kSloMs);
  json.Add("measure_s", measure_s);
  json.Add("hw_threads", HwThreads());
  json.Add("items_per_sec", report->achieved_qps);
  json.Add("p50_ms", report->latency_ms.p50);
  json.Add("p99_ms", report->latency_ms.p99);
  json.Add("overloaded", report->overloaded);
  json.Add("errors", report->errors);
  json.Add("replica_answers", report->replica_answers);
  json.Add("final_batch", static_cast<uint64_t>(stats.batch_size));
}

}  // namespace
}  // namespace sdg::bench

int main() {
  using namespace sdg::bench;
  double measure_s = MeasureSeconds(2.0);
  int64_t prefill = static_cast<int64_t>(512 * Scale());
  if (prefill < 64) {
    prefill = 64;
  }

  PrintHeader("serve", "front-door QPS vs latency (SLO-adaptive batching, "
                       "admission control, replica reads)");
  PrintNote("open-loop latency runs from the scheduled send time; "
            "items_per_sec is the accepted (kRespOk) rate");

  BenchJson json;
  std::vector<RowSpec> rows = {
      // 1. Load sweep, 50/50 put/strong-get.
      {"open_mixed_2k", 0, 2000, 4, 0.5, 0, 0},
      {"open_mixed_6k", 0, 6000, 4, 0.5, 0, 0},
      {"open_mixed_12k", 0, 12000, 4, 0.5, 0, 0},
      {"closed_mixed_8c", 0, 0, 8, 0.5, 0, 0},
      // 2. Batch policy at a demanding (but feasible) put-only load.
      {"batch_fixed1_14k", 1, 14000, 4, 0, 0, 0},
      {"batch_fixed512_14k", 512, 14000, 4, 0, 0, 0},
      {"batch_adaptive_14k", 0, 14000, 4, 0, 0, 0},
      // 3. Peak: past saturation, admission sheds the excess.
      {"peak_fixed512_60k", 512, 60000, 4, 0, 0, 0},
      {"peak_adaptive_60k", 0, 60000, 4, 0, 0, 0},
      // 4. Read scaling: replica reads vs the strong path.
      {"strong_read_closed_8c", 0, 0, 8, 1.0, 0, 512},
      {"replica_read_60k", 0, 60000, 4, 1.0, 1.0, 512},
  };
  for (auto& spec : rows) {
    if (spec.prefill > 0) {
      spec.prefill = prefill;
    }
    RunRow(json, spec, measure_s);
  }

  if (!json.WriteFile("BENCH_serve.json")) {
    std::fprintf(stderr, "failed to write BENCH_serve.json\n");
    return 1;
  }
  std::printf("  wrote BENCH_serve.json\n");
  return 0;
}
