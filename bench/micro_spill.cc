// Cold-tier microbench (BENCH_spill.json): what the disk-backed stripe spill
// costs, and what it buys.
//
// Rows, all on KeyedDict<int64_t, std::string> (the kv store backend):
//
//  1. Hot-path overhead: Put and View throughput with spill DISABLED vs
//     ENABLED-but-all-resident (budget >> working set). The enabled-resident
//     rows carry overhead_vs_off ratios: the budget accounting on every
//     write must stay within a few percent of the plain dict — this is the
//     "≤5% when everything fits" acceptance gate, eyeballed from the ratio
//     and regression-gated through items_per_sec by scripts/diff_bench.py.
//  2. Cold write absorption: Put throughput at budget = 25% of the working
//     set. Writes on spilled stripes land in the cold overlay (no
//     rehydration), so this row measures overlay absorption + periodic
//     compaction, not page-in storms.
//  3. Cold read thrash: uniform-random View at the same 25% budget — every
//     read of a blob-only key pages a whole stripe in and usually evicts
//     another. The worst case for the design; reported, not gated tightly.
//  4. Checkpoint wall on cold state: SerializeRecords over the 25%-budget
//     dict (spilled stripes stream from their spill files, no fault-in) vs
//     the all-resident dict.
//
// Short mode: SDG_BENCH_SECONDS=0.2 SDG_BENCH_SCALE=0.05 (CI smoke).
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/state/keyed_dict.h"
#include "src/state/spill.h"

namespace sdg::bench {
namespace {

using StrDict = state::KeyedDict<int64_t, std::string>;

// Stripe count is pinned (not DefaultStateShards): eviction is
// stripe-granular and a 1-core smoke host would otherwise collapse to one
// stripe, which cannot spill at all.
constexpr uint32_t kStripes = 16;
constexpr size_t kValueBytes = 64;

size_t ScaledKeys() {
  double n = 100000.0 * Scale();
  return n < 2048 ? 2048 : static_cast<size_t>(n);
}

void Fill(StrDict& dict, size_t keys, const std::string& value) {
  for (size_t i = 0; i < keys; ++i) {
    dict.Put(static_cast<int64_t>(i), value);
  }
}

double PutRow(StrDict& dict, size_t keys, const std::string& value,
              double secs) {
  uint64_t cursor = 0;
  uint64_t ops = DriveLoad(secs, 1, [&](int) {
    dict.Put(static_cast<int64_t>(cursor++ % keys), value);
    return true;
  });
  return static_cast<double>(ops) / secs;
}

double ViewRow(StrDict& dict, size_t keys, double secs) {
  std::atomic<uint64_t> sink{0};
  uint64_t cursor = 0;
  uint64_t ops = DriveLoad(secs, 1, [&](int) {
    // Pseudo-random walk so stripes are hit uniformly, not in lockstep.
    int64_t key = static_cast<int64_t>((cursor++ * 0x9E3779B97F4A7C15ull) %
                                       keys);
    size_t len = 0;
    dict.View(key, [&len](const std::string& v) { len = v.size(); });
    if (len == 0) {
      sink.fetch_add(1, std::memory_order_relaxed);  // keeps len live
    }
    return true;
  });
  return static_cast<double>(ops) / secs;
}

// gated=false rows (the 25%-budget thrash measurements) emit their rate as
// "items_cold_per_sec": still a metric for diff_bench's shape matching, but
// outside the items_per_sec regression gate — page-in thrash swings ±25%
// run to run and would flake the ±20% tolerance. The hot-path rows stay
// gated.
void AddRow(BenchJson& json, const std::string& config, double items_per_sec,
            double baseline, bool gated = true) {
  json.BeginRow();
  json.Add("config", config);
  json.Add("threads", uint64_t{1});
  json.Add("stripes", static_cast<uint64_t>(kStripes));
  json.Add("hw_threads", HwThreads());
  json.Add(gated ? "items_per_sec" : "items_cold_per_sec", items_per_sec);
  if (baseline > 0 && items_per_sec > 0) {
    json.Add("overhead_vs_off", baseline / items_per_sec);
    std::printf("  %-28s %12.0f items/s (%.2fx spill-off)\n", config.c_str(),
                items_per_sec, baseline / items_per_sec);
  } else {
    std::printf("  %-28s %12.0f items/s\n", config.c_str(), items_per_sec);
  }
}

double SerializeWallMs(StrDict& dict, int reps) {
  double total = 0;
  for (int r = 0; r < reps; ++r) {
    Stopwatch sw;
    uint64_t bytes = 0;
    dict.SerializeRecords(
        [&bytes](uint64_t, const uint8_t*, size_t n) { bytes += n; });
    total += sw.ElapsedMillis();
    if (bytes == 0) {
      PrintNote("serialize produced no bytes — spill row is meaningless");
    }
  }
  return total / reps;
}

}  // namespace
}  // namespace sdg::bench

int main() {
  using namespace sdg::bench;
  const double secs = MeasureSeconds(0.5);
  const size_t keys = ScaledKeys();
  const std::string value(kValueBytes, 'v');
  const auto dir = FreshBenchDir("spill");
  BenchJson json;

  PrintHeader("micro_spill", "disk-backed cold tier");
  std::printf("  keys=%zu value=%zuB window=%.2fs stripes=%u\n", keys,
              kValueBytes, secs, kStripes);

  // --- Working-set size: fill once under an effectively infinite budget ----
  uint64_t ws_bytes = 0;
  {
    StrDict probe(kStripes);
    sdg::state::SpillConfig cfg;
    cfg.dir = (dir / "probe").string();
    cfg.budget_bytes = ~uint64_t{0} >> 1;
    if (!probe.ConfigureSpill(cfg).ok()) {
      std::fprintf(stderr, "probe ConfigureSpill failed\n");
      return 1;
    }
    Fill(probe, keys, value);
    ws_bytes = probe.GetSpillStats().resident_bytes;
  }
  std::printf("  working set %.1f MiB\n",
              static_cast<double>(ws_bytes) / (1024.0 * 1024.0));

  // --- Hot path: spill off vs enabled-but-resident --------------------------
  double put_off = 0;
  double get_off = 0;
  {
    StrDict dict(kStripes);
    Fill(dict, keys, value);
    put_off = PutRow(dict, keys, value, secs);
    AddRow(json, "spill_off_put_1t", put_off, 0);
    get_off = ViewRow(dict, keys, secs);
    AddRow(json, "spill_off_get_1t", get_off, 0);
  }
  {
    StrDict dict(kStripes);
    sdg::state::SpillConfig cfg;
    cfg.dir = (dir / "resident").string();
    cfg.budget_bytes = ws_bytes * 4;  // nothing ever evicts
    if (!dict.ConfigureSpill(cfg).ok()) {
      std::fprintf(stderr, "resident ConfigureSpill failed\n");
      return 1;
    }
    Fill(dict, keys, value);
    double put_on = PutRow(dict, keys, value, secs);
    AddRow(json, "spill_resident_put_1t", put_on, put_off);
    double get_on = ViewRow(dict, keys, secs);
    AddRow(json, "spill_resident_get_1t", get_on, get_off);
    auto st = dict.GetSpillStats();
    if (st.evictions != 0) {
      PrintNote("resident rows evicted — budget probe undersized, overhead "
                "rows are polluted");
    }

    // Checkpoint wall, all resident (the spilled row below compares to it).
    double wall = SerializeWallMs(dict, 3);
    json.BeginRow();
    json.Add("config", std::string("serialize_resident"));
    json.Add("stripes", static_cast<uint64_t>(kStripes));
    json.Add("hw_threads", HwThreads());
    json.Add("wall_ms", wall);
    std::printf("  %-28s %.2f ms\n", "serialize_resident", wall);
  }

  // --- Cold tier live: budget = 25% of the working set ----------------------
  {
    StrDict dict(kStripes);
    sdg::state::SpillConfig cfg;
    cfg.dir = (dir / "cold").string();
    cfg.budget_bytes = ws_bytes / 4;
    if (!dict.ConfigureSpill(cfg).ok()) {
      std::fprintf(stderr, "cold ConfigureSpill failed\n");
      return 1;
    }
    Fill(dict, keys, value);
    auto after_fill = dict.GetSpillStats();
    std::printf("  cold fill: %llu evictions, %llu stripes on disk, "
                "%.1f MiB spilled\n",
                static_cast<unsigned long long>(after_fill.evictions),
                static_cast<unsigned long long>(after_fill.spilled_stripes),
                static_cast<double>(after_fill.spilled_bytes) /
                    (1024.0 * 1024.0));

    // Writes: absorbed by the cold overlay, never page a stripe in.
    double put_cold = PutRow(dict, keys, value, secs);
    AddRow(json, "spill_25pct_put_1t", put_cold, put_off, /*gated=*/false);

    // Checkpoint wall with most stripes cold: spilled stripes stream their
    // blob + overlay straight from disk, no fault-in.
    uint64_t faults_before = dict.GetSpillStats().fault_ins;
    double wall = SerializeWallMs(dict, 3);
    json.BeginRow();
    json.Add("config", std::string("serialize_25pct_spilled"));
    json.Add("stripes", static_cast<uint64_t>(kStripes));
    json.Add("hw_threads", HwThreads());
    json.Add("wall_ms", wall);
    std::printf("  %-28s %.2f ms\n", "serialize_25pct_spilled", wall);
    if (dict.GetSpillStats().fault_ins != faults_before) {
      PrintNote("serialize faulted stripes in — the no-rehydration path "
                "regressed");
    }

    // Reads: uniform-random over 4x the budget — the page-in worst case.
    double get_cold = ViewRow(dict, keys, secs);
    AddRow(json, "spill_25pct_get_1t", get_cold, get_off, /*gated=*/false);
    // Counters are printed, not emitted as JSON: they vary run to run and
    // would only show up in diff_bench as noisy shape mismatches.
    auto st = dict.GetSpillStats();
    std::printf("  cold totals: %llu evictions, %llu fault-ins\n",
                static_cast<unsigned long long>(st.evictions),
                static_cast<unsigned long long>(st.fault_ins));
  }

  if (json.WriteFile("BENCH_spill.json")) {
    PrintNote("wrote BENCH_spill.json");
  }
  return 0;
}
