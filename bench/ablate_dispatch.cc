// Ablation — one-to-any dispatch policy under a straggler.
//
// The runtime defaults to join-shortest-queue dispatch for one-to-any edges;
// this ablation compares it against strict round-robin when one of the
// partial-state replicas sits on a 4x slower node. Round-robin force-feeds
// the straggler its fair share, capping throughput near
// n * slowest-instance-rate; JSQ lets fast instances absorb the surplus.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/apps/cf.h"
#include "src/apps/workloads.h"

namespace sdg::bench {
namespace {

double RunPolicy(runtime::OneToAnyPolicy policy, double seconds) {
  apps::CfOptions opt;
  opt.num_items = 100;
  opt.cooc_replicas = 3;       // one replica will sit on the slow node
  opt.update_think_us = 300;   // sleep-bound so parallelism works on 1 core
  auto t = apps::BuildCfSdg(opt);
  if (!t.ok()) {
    return 0;
  }
  runtime::ClusterOptions copts;
  copts.num_nodes = 3;
  copts.mailbox_capacity = 1 << 10;
  copts.node_speed = {1.0, 1.0, 0.25};
  copts.one_to_any = policy;
  runtime::Cluster cluster(copts);
  auto d = cluster.Deploy(std::move(t->sdg));
  if (!d.ok()) {
    return 0;
  }

  std::atomic<uint64_t> seed{1};
  DriveLoad(seconds, 2, [&](int) {
    thread_local apps::RatingGenerator gen(5000, 100, seed.fetch_add(1));
    if (Backpressure(**d, 1024)) {
      return false;
    }
    auto r = gen.Next();
    return (*d)
        ->Inject("addRating", Tuple{Value(r.user), Value(r.item), Value(r.rating)})
        .ok();
  });
  uint64_t done = (*d)->ProcessedOf("updateCoOcc");
  (*d)->Drain();
  (*d)->Shutdown();
  return static_cast<double>(done) / seconds;
}

void Run() {
  PrintHeader("Ablation A1", "one-to-any dispatch policy with a straggler");
  const double seconds = MeasureSeconds(5.0);
  double jsq = RunPolicy(runtime::OneToAnyPolicy::kJoinShortestQueue, seconds);
  double rr = RunPolicy(runtime::OneToAnyPolicy::kRoundRobin, seconds);
  std::printf("%-24s %16s\n", "policy", "tput (ratings/s)");
  std::printf("%-24s %16.0f\n", "join-shortest-queue", jsq);
  std::printf("%-24s %16.0f\n", "round-robin", rr);
  std::printf("JSQ advantage: %.2fx\n", rr > 0 ? jsq / rr : 0.0);
  PrintNote("3 coOcc replicas, one on a 0.25x node; updateCoOcc think time "
            "300us/rating");
}

}  // namespace
}  // namespace sdg::bench

int main() {
  sdg::bench::Run();
  return 0;
}
