// Hot-path pipeline throughput microbench: items/sec through a two-hop
// dataflow (entry TE -> partitioned stateful TE) as the node count, the
// cross-node serialisation flag and the worker batch size vary. This is the
// repo's perf-trajectory anchor for the dataflow hot path: every item pays
// mailbox push/pop, in-flight accounting, routing and (optionally) a
// serialise/deserialise round trip, so the numbers move whenever those costs
// do. Each configuration runs `SDG_BENCH_REPS` times (default 3) and reports
// the best rate — on a shared/small machine the peak is the stable statistic,
// the mean just measures scheduler noise. Emits BENCH_hotpath.json next to
// the printed table.
#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/graph/sdg.h"
#include "src/runtime/cluster.h"
#include "src/state/keyed_dict.h"

namespace sdg::bench {
namespace {

using state::KeyedDict;
using state::StateAs;
using IntDict = KeyedDict<int64_t, int64_t>;

struct Config {
  std::string name;
  uint32_t nodes = 1;
  bool serialize = false;
  size_t max_batch = 256;    // worker mailbox drain limit
  size_t inject_chunk = 64;  // tuples per InjectAll call
  uint32_t instances = 4;    // materialised `count` instances
};

int Reps() {
  const char* env = std::getenv("SDG_BENCH_REPS");
  if (env != nullptr) {
    int v = std::atoi(env);
    if (v > 0) {
      return v;
    }
  }
  return 3;
}

// feed (entry) --kPartitioned--> count (stateful, 4 partitions). Returns
// items/sec processed by the `count` stage.
double RunPipeline(const Config& cfg, double seconds) {
  graph::SdgBuilder b;
  auto dict = b.AddState("d", graph::StateDistribution::kPartitioned,
                         [] { return std::make_unique<IntDict>(); });
  auto feed = b.AddEntryTask("feed", [](const Tuple& in,
                                        graph::TaskContext& ctx) {
    ctx.Emit(0, in);
  });
  auto count = b.AddTask("count", [](const Tuple& in, graph::TaskContext& ctx) {
    StateAs<IntDict>(ctx.state())->Put(in[0].AsInt(), in[1].AsInt());
  });
  (void)b.SetAccess(count, dict, graph::AccessMode::kPartitioned);
  b.SetInitialInstances(count, cfg.instances);
  (void)b.Connect(feed, count, graph::Dispatch::kPartitioned, 0);
  auto g = std::move(b).Build();

  runtime::ClusterOptions o;
  o.num_nodes = cfg.nodes;
  o.serialize_cross_node = cfg.serialize;
  o.max_batch = cfg.max_batch;
  runtime::Cluster cluster(o);
  auto d = cluster.Deploy(std::move(*g));

  Stopwatch timer;
  std::atomic<int64_t> key{0};
  DriveLoad(seconds, 1, [&](int) {
    if (Backpressure(**d, 8192)) {
      return false;
    }
    std::vector<Tuple> chunk;
    chunk.reserve(cfg.inject_chunk);
    for (size_t i = 0; i < cfg.inject_chunk; ++i) {
      int64_t k = key.fetch_add(1, std::memory_order_relaxed);
      chunk.push_back(Tuple{Value(k % 10000), Value(k)});
    }
    return (*d)->InjectAll("feed", std::move(chunk)).ok();
  });
  (*d)->Drain();
  double elapsed = timer.ElapsedSeconds();
  auto processed = static_cast<double>((*d)->ProcessedOf("count"));
  (*d)->Shutdown();
  return processed / elapsed;
}

double BestOf(int reps, const Config& cfg, double seconds) {
  double best = 0;
  for (int r = 0; r < reps; ++r) {
    best = std::max(best, RunPipeline(cfg, seconds));
  }
  return best;
}

}  // namespace
}  // namespace sdg::bench

int main() {
  using namespace sdg::bench;
  const double seconds = MeasureSeconds(2.0);
  const int reps = Reps();
  PrintHeader("Hotpath", "pipeline items/sec vs nodes x serialisation x batch");

  // Main grid at the default batch size, then a batch-size sweep on the
  // heaviest configuration (4 nodes, serialised) down to max_batch = 1,
  // which reproduces strict item-at-a-time processing.
  std::vector<Config> configs = {
      {"1node_raw", 1, false},
      {"1node_ser", 1, true},
      {"4node_raw", 4, false},
      {"4node_ser", 4, true},
      {"4node_ser_b1", 4, true, /*max_batch=*/1, /*inject_chunk=*/1},
      {"4node_ser_b8", 4, true, /*max_batch=*/8, /*inject_chunk=*/8},
      {"4node_ser_b64", 4, true, /*max_batch=*/64, /*inject_chunk=*/64},
      // Instance scaling on the shared fixed pool: the same two-hop pipeline
      // with the stateful stage materialised 64/256/1024-wide. Before the
      // executor this sweep was unrunnable (one thread per instance); now the
      // instances multiplex over hw_threads workers and the rows track the
      // scheduling overhead of an oversubscribed ready set.
      {"4node_ser_inst64", 4, true, 256, 64, /*instances=*/64},
      {"4node_ser_inst256", 4, true, 256, 64, /*instances=*/256},
      {"4node_ser_inst1024", 4, true, 256, 64, /*instances=*/1024},
  };

  BenchJson json;
  std::printf("%-22s %8s %10s %10s %10s %16s\n", "config", "nodes",
              "serialize", "max_batch", "instances", "items/sec");
  for (const auto& cfg : configs) {
    double rate = BestOf(reps, cfg, seconds);
    std::printf("%-22s %8u %10s %10zu %10u %16.0f\n", cfg.name.c_str(),
                cfg.nodes, cfg.serialize ? "on" : "off", cfg.max_batch,
                cfg.instances, rate);
    json.BeginRow();
    json.Add("config", cfg.name);
    json.Add("nodes", static_cast<uint64_t>(cfg.nodes));
    json.Add("serialize", std::string(cfg.serialize ? "on" : "off"));
    json.Add("max_batch", static_cast<uint64_t>(cfg.max_batch));
    json.Add("instances", static_cast<uint64_t>(cfg.instances));
    json.Add("reps", static_cast<uint64_t>(reps));
    json.Add("hw_threads", HwThreads());
    json.Add("items_per_sec", rate);
  }
  if (!json.WriteFile("BENCH_hotpath.json")) {
    std::printf("  warning: could not write BENCH_hotpath.json\n");
    return 1;
  }
  PrintNote("wrote BENCH_hotpath.json");
  return 0;
}
