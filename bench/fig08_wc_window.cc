// Fig. 8 — Streaming wordcount: sustained throughput vs result-window size
// for SDG, Naiad-LowLatency (1k batches), Naiad-HighThroughput (20k batches)
// and Streaming Spark (micro-batch == window, immutable state per window).
//
// Paper shape: SDG and Naiad-LowLatency sustain every window (SDG higher —
// no scheduling overhead); Streaming Spark collapses below ~250 ms;
// Naiad-HighThroughput peaks highest but cannot support windows < 100 ms.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/apps/wordcount.h"
#include "src/apps/workloads.h"
#include "src/baseline/batched_stream.h"

namespace sdg::bench {
namespace {

constexpr uint64_t kVocabulary = 200000;
constexpr uint64_t kWordsPerLine = 10;

// SDG processes each word as it arrives; a window only controls how often a
// result snapshot is requested, so the per-window cost is one snapshot read.
double RunSdgWordCount(double window_s, double seconds) {
  apps::WordCountOptions opt;
  opt.count_partitions = 2;
  auto g = apps::BuildWordCountSdg(opt);
  if (!g.ok()) {
    return 0;
  }
  runtime::ClusterOptions copts;
  copts.num_nodes = 2;
  copts.mailbox_capacity = 1 << 14;
  runtime::Cluster cluster(copts);
  auto d = cluster.Deploy(std::move(*g));
  if (!d.ok()) {
    return 0;
  }

  std::atomic<uint64_t> words{0};
  std::atomic<bool> stop{false};
  std::thread window_driver([&] {
    // Each window boundary triggers a snapshot request (the result emission
    // the paper's WC produces per window).
    while (!stop.load()) {
      std::this_thread::sleep_for(
          std::chrono::nanoseconds(static_cast<int64_t>(window_s * 1e9)));
      (void)(*d)->Inject("snapshot", Tuple{Value("w0")});
    }
  });

  std::atomic<uint64_t> seed{3};
  DriveLoad(seconds, 2, [&](int) {
    thread_local apps::TextGenerator gen(kVocabulary, kWordsPerLine,
                                         seed.fetch_add(1));
    if ((*d)->Inject("line", Tuple{Value(gen.NextLine())}).ok()) {
      words.fetch_add(kWordsPerLine, std::memory_order_relaxed);
      return true;
    }
    return false;
  });
  stop = true;
  window_driver.join();
  (*d)->Drain();
  (*d)->Shutdown();
  return static_cast<double>(words.load()) / seconds;
}

// Returns the throughput, or a negative value when the engine could not hold
// the requested window cadence (the paper's unsustainable region).
double RunBaseline(size_t batch_size, double per_batch_overhead_s,
                   double per_item_cost_s, bool copy_state, double window_s,
                   double seconds) {
  apps::TextGenerator gen(kVocabulary, kWordsPerLine, 17);
  baseline::BatchedWordCountOptions opt;
  opt.batch_size = batch_size;
  opt.per_batch_overhead_s = per_batch_overhead_s;
  opt.per_item_cost_s = per_item_cost_s;
  opt.copy_state_per_window = copy_state;
  opt.window_s = window_s;
  auto r = baseline::RunBatchedWordCount(opt, gen, seconds);
  // Unsustainable when the per-window fixed cost (forced-flush scheduling +
  // state regeneration) eats more than a third of the window.
  if (r.fixed_window_cost_s > 0.33 * window_s) {
    return -r.throughput_items_s;
  }
  return r.throughput_items_s;
}

void PrintCell(double v) {
  if (v < 0) {
    std::printf(" %13s[x]", "");  // cannot sustain this window
  } else {
    std::printf(" %16.0f", v);
  }
}

void Run() {
  PrintHeader("Fig. 8", "streaming wordcount: throughput vs window size");
  const double seconds = MeasureSeconds(1.5);

  std::printf("%-12s %14s %18s %18s %18s\n", "window", "SDG",
              "Naiad-LowLat", "Naiad-HighTput", "StreamingSpark");

  for (double window_ms : {10.0, 50.0, 100.0, 250.0, 1000.0, 5000.0}) {
    double w = window_ms / 1e3;
    double sdg = RunSdgWordCount(w, seconds);
    // Naiad: fixed progress-tracking cost per scheduled batch, plus the
    // per-record dataflow cost every engine pays.
    double naiad_ll = RunBaseline(1000, 0.0015, 2.2e-6, false, w, seconds);
    double naiad_ht = RunBaseline(20000, 0.020, 1.0e-6, false, w, seconds);
    // Streaming Spark: micro-batch == window, immutable state regeneration.
    double spark =
        RunBaseline(static_cast<size_t>(1e9), 0.010, 1.6e-6, true, w, seconds);
    char label[32];
    std::snprintf(label, sizeof(label), "%.0f ms", window_ms);
    std::printf("%-12s %14.0f", label, sdg);
    PrintCell(naiad_ll);
    PrintCell(naiad_ht);
    PrintCell(spark);
    std::printf("\n");
  }
  PrintNote("words/s; [x] = unsustainable: per-window fixed costs exceed 1/3 window. "
            "Streaming Spark's micro-batch equals the window, so small "
            "windows pay state regeneration every window");
}

}  // namespace
}  // namespace sdg::bench

int main() {
  sdg::bench::Run();
  return 0;
}
