// Ablation — cost of the location-independence contract.
//
// Items crossing simulated node boundaries are serialised and deserialised
// (§4.1 requires transparent serialisation). This ablation measures what the
// round-trip costs by toggling it off — the delta is the price the runtime
// pays to keep the simulation honest, and what a colocated deployment saves.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/apps/kv.h"
#include "src/apps/workloads.h"

namespace sdg::bench {
namespace {

constexpr size_t kValueSize = 512;

double RunOnce(bool serialize, double seconds) {
  apps::KvOptions opt;
  opt.partitions = 2;
  auto g = apps::BuildKvSdg(opt);
  if (!g.ok()) {
    return 0;
  }
  runtime::ClusterOptions copts;
  copts.num_nodes = 2;
  copts.serialize_cross_node = serialize;
  runtime::Cluster cluster(copts);
  auto d = cluster.Deploy(std::move(*g));
  if (!d.ok()) {
    return 0;
  }
  std::atomic<uint64_t> seed{3};
  uint64_t injected = DriveLoad(seconds, 2, [&](int) {
    thread_local apps::KvWorkload wl(100000, kValueSize, 0.5,
                                     seed.fetch_add(1));
    if (Backpressure(**d)) {
      return false;
    }
    auto op = wl.Next();
    if (op.type == apps::KvWorkload::OpType::kRead) {
      return (*d)->Inject("get", Tuple{Value(op.key)}).ok();
    }
    return (*d)->Inject("put", Tuple{Value(op.key), Value(std::move(op.value))}).ok();
  });
  (*d)->Drain();
  (*d)->Shutdown();
  return static_cast<double>(injected) / seconds;
}

void Run() {
  PrintHeader("Ablation A3", "cross-node serialisation cost");
  const double seconds = MeasureSeconds(3.0);
  double with = RunOnce(true, seconds);
  double without = RunOnce(false, seconds);
  std::printf("%-28s %16s\n", "mode", "tput (op/s)");
  std::printf("%-28s %16.0f\n", "serialised boundaries", with);
  std::printf("%-28s %16.0f\n", "zero-copy boundaries", without);
  std::printf("serialisation overhead: %.1f%%\n",
              without > 0 ? (1.0 - with / without) * 100.0 : 0.0);
  PrintNote("2-partition KV store, 512 B values, 50/50 read/write");
}

}  // namespace
}  // namespace sdg::bench

int main() {
  sdg::bench::Run();
  return 0;
}
