// Microbenchmarks of the state layer (google-benchmark): dirty-overlay cost,
// serialisation, chunk split, and tuple round-trips. These quantify the
// primitives behind the figure-level results (e.g. why async checkpoints are
// cheap: a write during a checkpoint is one extra hash-map insert).
#include <benchmark/benchmark.h>

#include "src/common/value.h"
#include "src/state/chunk.h"
#include "src/state/keyed_dict.h"
#include "src/state/sparse_matrix.h"
#include "src/state/vector_state.h"

namespace sdg {
namespace {

void BM_DictPut(benchmark::State& state) {
  state::KeyedDict<int64_t, int64_t> dict;
  int64_t k = 0;
  for (auto _ : state) {
    dict.Put(k++ % 100000, 1);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DictPut);

void BM_DictPutDuringCheckpoint(benchmark::State& state) {
  state::KeyedDict<int64_t, int64_t> dict;
  for (int64_t i = 0; i < 100000; ++i) {
    dict.Put(i, 1);
  }
  dict.BeginCheckpoint();
  int64_t k = 0;
  for (auto _ : state) {
    dict.Put(k++ % 100000, 2);  // diverted to the dirty overlay
  }
  dict.EndCheckpoint();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DictPutDuringCheckpoint);

void BM_DictGet(benchmark::State& state) {
  state::KeyedDict<int64_t, int64_t> dict;
  for (int64_t i = 0; i < 100000; ++i) {
    dict.Put(i, i);
  }
  int64_t k = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dict.Get(k++ % 100000));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DictGet);

void BM_DictSerialize(benchmark::State& state) {
  state::KeyedDict<int64_t, int64_t> dict;
  const int64_t n = state.range(0);
  for (int64_t i = 0; i < n; ++i) {
    dict.Put(i, i);
  }
  for (auto _ : state) {
    size_t bytes = 0;
    dict.SerializeRecords([&](uint64_t, const uint8_t*, size_t size) {
      bytes += size;
    });
    benchmark::DoNotOptimize(bytes);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_DictSerialize)->Arg(1000)->Arg(100000);

void BM_EndCheckpointConsolidate(benchmark::State& state) {
  const int64_t dirty = state.range(0);
  for (auto _ : state) {
    state.PauseTiming();
    state::KeyedDict<int64_t, int64_t> dict;
    for (int64_t i = 0; i < 100000; ++i) {
      dict.Put(i, 1);
    }
    dict.BeginCheckpoint();
    for (int64_t i = 0; i < dirty; ++i) {
      dict.Put(i, 2);
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(dict.EndCheckpoint());
  }
}
BENCHMARK(BM_EndCheckpointConsolidate)->Arg(100)->Arg(10000);

void BM_SparseMatrixAdd(benchmark::State& state) {
  state::SparseMatrix m;
  int64_t k = 0;
  for (auto _ : state) {
    m.Add(k % 1000, (k * 7) % 1000, 1.0);
    ++k;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SparseMatrixAdd);

void BM_SparseMatrixMultiply(benchmark::State& state) {
  state::SparseMatrix m;
  const size_t dim = state.range(0);
  for (size_t r = 0; r < dim; ++r) {
    for (size_t c = 0; c < 16; ++c) {
      m.Set(static_cast<int64_t>(r), static_cast<int64_t>((r * 31 + c) % dim),
            1.0);
    }
  }
  std::vector<double> x(dim, 0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.MultiplyDense(x, dim));
  }
}
BENCHMARK(BM_SparseMatrixMultiply)->Arg(256)->Arg(1024);

void BM_VectorStateAdd(benchmark::State& state) {
  state::VectorState v(4096);
  size_t i = 0;
  for (auto _ : state) {
    v.Add(i++ % 4096, 1.0);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_VectorStateAdd);

void BM_ChunkSplit(benchmark::State& state) {
  state::KeyedDict<int64_t, int64_t> dict;
  for (int64_t i = 0; i < state.range(0); ++i) {
    dict.Put(i, i);
  }
  auto chunks = state::SerializeToChunks(dict, "bench", 1);
  for (auto _ : state) {
    auto parts = state::SplitChunk(chunks[0], 4);
    benchmark::DoNotOptimize(parts);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ChunkSplit)->Arg(10000);

void BM_TupleRoundTrip(benchmark::State& state) {
  Tuple t{Value(int64_t{42}), Value(std::string(64, 'x')),
          Value(std::vector<double>(16, 1.5))};
  for (auto _ : state) {
    auto bytes = t.ToBytes();
    auto back = Tuple::FromBytes(bytes);
    benchmark::DoNotOptimize(back);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TupleRoundTrip);

}  // namespace
}  // namespace sdg

BENCHMARK_MAIN();
