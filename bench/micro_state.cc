// State-layer microbench (BENCH_state.json): what lock striping buys.
//
// Rows, all on KeyedDict (the backend every app's hot TE hits):
//
//  1. Read scaling: Get/View throughput at 1 thread vs kThreads threads, on
//     the striped dict and on a num_shards=1 dict (the pre-striping layout —
//     one shared_mutex everyone serialises through). On multi-core hardware
//     the striped multi-thread row is the ≥3× headline; the unstriped row is
//     the contention baseline it is measured against.
//  2. Write scaling: Put throughput, same thread/striping matrix, writers on
//     disjoint key ranges (the partitioned-TE access pattern).
//  3. Checkpoint-active overhead: Put throughput while a checkpoint is
//     active, i.e. every write diverts to the stripe's dirty overlay.
//  4. Serialize wall: SerializeRecords over all stripes serially vs fanned
//     across a ThreadPool via SerializeShardRecords — the same fan-out the
//     checkpoint driver runs on the streaming path.
//
// Every row carries hw_threads (std::thread::hardware_concurrency at run
// time): thread-scaling ratios are only meaningful when it is >= the row's
// thread count. items_per_sec fields are diffed by scripts/diff_bench.py in
// CI against the committed BENCH_state.json.
//
// Short mode: SDG_BENCH_SECONDS=0.2 SDG_BENCH_SCALE=0.05 (CI smoke).
#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/common/thread_pool.h"
#include "src/state/keyed_dict.h"

namespace sdg::bench {
namespace {

using IntDict = state::KeyedDict<int64_t, int64_t>;
using StrDict = state::KeyedDict<int64_t, std::string>;

constexpr int kThreads = 8;
constexpr uint32_t kUnstriped = 1;
constexpr size_t kCursorStride = 16;  // one cache line between thread cursors

size_t ScaledKeys() {
  double n = 100000.0 * Scale();
  return n < 1024 ? 1024 : static_cast<size_t>(n);
}

// Aggregate ops/sec of `op(thread_id, op_index)` driven from `threads`
// threads for the measurement window.
template <typename Op>
double Drive(int threads, double secs, Op&& op) {
  std::vector<uint64_t> cursors(static_cast<size_t>(threads) * kCursorStride,
                                0);
  uint64_t ops = DriveLoad(secs, threads, [&](int t) {
    uint64_t& k = cursors[static_cast<size_t>(t) * kCursorStride];
    op(t, k++);
    return true;
  });
  return static_cast<double>(ops) / secs;
}

double ReadRow(IntDict& dict, size_t keys, int threads, double secs) {
  std::atomic<int64_t> sink{0};
  return Drive(threads, secs, [&](int t, uint64_t k) {
    // Pseudo-random walk so stripes are hit uniformly, not in lockstep.
    int64_t key = static_cast<int64_t>(
        (k * 0x9E3779B97F4A7C15ull + static_cast<uint64_t>(t) * 7919) % keys);
    int64_t v = 0;
    dict.View(key, [&v](const int64_t& x) { v = x; });
    if (v < 0) {
      sink.fetch_add(v, std::memory_order_relaxed);  // never taken; keeps v live
    }
  });
}

double WriteRow(IntDict& dict, size_t keys, int threads, double secs) {
  const size_t per_thread = keys / static_cast<size_t>(threads);
  return Drive(threads, secs, [&](int t, uint64_t k) {
    int64_t key = static_cast<int64_t>(static_cast<size_t>(t) * per_thread +
                                       k % per_thread);
    dict.Put(key, static_cast<int64_t>(k));
  });
}

void AddThroughputRow(BenchJson& json, const std::string& config, int threads,
                      uint32_t shards, double items_per_sec,
                      double baseline_1t) {
  json.BeginRow();
  json.Add("config", config);
  json.Add("threads", static_cast<uint64_t>(threads));
  json.Add("shards", static_cast<uint64_t>(shards));
  json.Add("hw_threads", HwThreads());
  json.Add("items_per_sec", items_per_sec);
  if (baseline_1t > 0) {
    json.Add("speedup_vs_1t", items_per_sec / baseline_1t);
  }
  std::printf("  %-24s threads=%d shards=%-3u %12.0f items/s\n",
              config.c_str(), threads, shards, items_per_sec);
}

}  // namespace
}  // namespace sdg::bench

int main() {
  using namespace sdg::bench;
  const double secs = MeasureSeconds(0.5);
  const size_t keys = ScaledKeys();
  const int hw = static_cast<int>(HwThreads());
  BenchJson json;

  PrintHeader("micro_state", "striped state backends");
  std::printf("  keys=%zu window=%.2fs hw_threads=%d\n", keys, secs, hw);
  if (hw < kThreads) {
    PrintNote("hardware_concurrency < 8: multi-thread rows are contention "
              "tests, not scaling measurements");
  }

  // --- Read scaling ---------------------------------------------------------
  double read_1t = 0;
  {
    IntDict dict;
    for (size_t i = 0; i < keys; ++i) {
      dict.Put(static_cast<int64_t>(i), static_cast<int64_t>(i));
    }
    read_1t = ReadRow(dict, keys, 1, secs);
    AddThroughputRow(json, "dict_get_1t", 1, sdg::state::DefaultStateShards(),
                     read_1t, 0);
    double read_8t = ReadRow(dict, keys, kThreads, secs);
    AddThroughputRow(json, "dict_get_8t", kThreads,
                     sdg::state::DefaultStateShards(), read_8t, read_1t);
  }
  {
    IntDict dict(kUnstriped);
    for (size_t i = 0; i < keys; ++i) {
      dict.Put(static_cast<int64_t>(i), static_cast<int64_t>(i));
    }
    double read_8t_u = ReadRow(dict, keys, kThreads, secs);
    AddThroughputRow(json, "dict_get_8t_unstriped", kThreads, kUnstriped,
                     read_8t_u, read_1t);
  }

  // --- Write scaling --------------------------------------------------------
  double put_1t = 0;
  {
    IntDict dict;
    put_1t = WriteRow(dict, keys, 1, secs);
    AddThroughputRow(json, "dict_put_1t", 1, sdg::state::DefaultStateShards(),
                     put_1t, 0);
  }
  {
    IntDict dict;
    double put_8t = WriteRow(dict, keys, kThreads, secs);
    AddThroughputRow(json, "dict_put_8t", kThreads,
                     sdg::state::DefaultStateShards(), put_8t, put_1t);
  }
  {
    IntDict dict(kUnstriped);
    double put_8t_u = WriteRow(dict, keys, kThreads, secs);
    AddThroughputRow(json, "dict_put_8t_unstriped", kThreads, kUnstriped,
                     put_8t_u, put_1t);
  }

  // --- Stripe sweep at the pool's real width --------------------------------
  // DefaultStateShards() is tuned from this grid: `hw` writers (the executor
  // never runs more) against 1/4/16/64 stripes. The knee sits at ~2x the
  // writer count; rows carry threads=hw so runs from different machines are
  // never diffed against each other.
  for (uint32_t shards : {1u, 4u, 16u, 64u}) {
    IntDict dict(shards);
    double rate = WriteRow(dict, keys, hw, secs);
    AddThroughputRow(json, "dict_put_hw_s" + std::to_string(shards), hw,
                     shards, rate, put_1t);
  }

  // --- Checkpoint-active overhead ------------------------------------------
  {
    IntDict dict;
    for (size_t i = 0; i < keys; ++i) {
      dict.Put(static_cast<int64_t>(i), 1);
    }
    dict.BeginCheckpoint();
    double put_ckpt = WriteRow(dict, keys, 1, secs);
    dict.EndCheckpoint();
    json.BeginRow();
    json.Add("config", std::string("dict_put_1t_ckpt_active"));
    json.Add("threads", uint64_t{1});
    json.Add("shards", static_cast<uint64_t>(sdg::state::DefaultStateShards()));
    json.Add("hw_threads", HwThreads());
    json.Add("items_per_sec", put_ckpt);
    json.Add("overhead_vs_put_1t", put_1t > 0 ? put_1t / put_ckpt : 0.0);
    std::printf("  %-24s threads=1 shards=%-3u %12.0f items/s (%.2fx put_1t)\n",
                "dict_put_1t_ckpt_active", sdg::state::DefaultStateShards(),
                put_ckpt, put_1t > 0 ? put_1t / put_ckpt : 0.0);
  }

  // --- Serialize wall: serial vs shard fan-out ------------------------------
  {
    StrDict dict;
    const std::string value(64, 'v');
    for (size_t i = 0; i < keys; ++i) {
      dict.Put(static_cast<int64_t>(i), value);
    }
    const int reps = 3;
    auto serial_pass = [&] {
      std::atomic<uint64_t> bytes{0};
      for (uint32_t s = 0; s < dict.SerializeShardCount(); ++s) {
        dict.SerializeShardRecords(
            s, [&](uint64_t, const uint8_t*, size_t n) {
              bytes.fetch_add(n, std::memory_order_relaxed);
            });
      }
      return bytes.load();
    };
    double serial_ms = 0;
    uint64_t bytes = 0;
    for (int r = 0; r < reps; ++r) {
      sdg::Stopwatch sw;
      bytes = serial_pass();
      serial_ms += sw.ElapsedMillis();
    }
    serial_ms /= reps;
    json.BeginRow();
    json.Add("config", std::string("serialize_serial"));
    json.Add("threads", uint64_t{1});
    json.Add("keys", static_cast<uint64_t>(keys));
    json.Add("hw_threads", HwThreads());
    json.Add("bytes", bytes);
    json.Add("wall_ms", serial_ms);
    std::printf("  %-24s %.2f ms (%llu bytes)\n", "serialize_serial",
                serial_ms, static_cast<unsigned long long>(bytes));

    // Whole-backend SerializeRecords: the round-robin cross-stripe walk the
    // driver uses when ckpt_parallelism is 1. Visits nodes in near allocation
    // order, unlike the stripe-at-a-time loop above.
    double interleaved_ms = 0;
    for (int r = 0; r < reps; ++r) {
      sdg::Stopwatch sw;
      uint64_t ibytes = 0;
      dict.SerializeRecords([&](uint64_t, const uint8_t*, size_t n) {
        ibytes += n;
      });
      interleaved_ms += sw.ElapsedMillis();
    }
    interleaved_ms /= reps;
    json.BeginRow();
    json.Add("config", std::string("serialize_interleaved"));
    json.Add("threads", uint64_t{1});
    json.Add("keys", static_cast<uint64_t>(keys));
    json.Add("hw_threads", HwThreads());
    json.Add("wall_ms", interleaved_ms);
    json.Add("speedup_vs_serial",
             interleaved_ms > 0 ? serial_ms / interleaved_ms : 0.0);
    std::printf("  %-24s %.2f ms (%.2fx shard-serial)\n",
                "serialize_interleaved", interleaved_ms,
                interleaved_ms > 0 ? serial_ms / interleaved_ms : 0.0);

    double parallel_ms = 0;
    for (int r = 0; r < reps; ++r) {
      sdg::Stopwatch sw;
      std::atomic<uint64_t> pbytes{0};
      sdg::ThreadPool pool(kThreads);
      for (uint32_t s = 0; s < dict.SerializeShardCount(); ++s) {
        pool.Submit([&, s] {
          dict.SerializeShardRecords(
              s, [&](uint64_t, const uint8_t*, size_t n) {
                pbytes.fetch_add(n, std::memory_order_relaxed);
              });
        });
      }
      pool.Wait();
      parallel_ms += sw.ElapsedMillis();
    }
    parallel_ms /= reps;
    json.BeginRow();
    json.Add("config", std::string("serialize_parallel"));
    json.Add("threads", static_cast<uint64_t>(kThreads));
    json.Add("keys", static_cast<uint64_t>(keys));
    json.Add("hw_threads", HwThreads());
    json.Add("wall_ms", parallel_ms);
    json.Add("speedup_vs_serial", parallel_ms > 0 ? serial_ms / parallel_ms
                                                  : 0.0);
    std::printf("  %-24s %.2f ms (%.2fx serial)\n", "serialize_parallel",
                parallel_ms, parallel_ms > 0 ? serial_ms / parallel_ms : 0.0);
  }

  if (json.WriteFile("BENCH_state.json")) {
    PrintNote("wrote BENCH_state.json");
  }
  return 0;
}
