// Fig. 11 — Recovery time vs state size under m-to-n recovery strategies
// (1-to-1, 2-to-1, 1-to-2, 2-to-2).
//
// Paper shape: 1-to-1 slowest (single disk, single reconstructor); adding
// backup disks (m=2) helps I/O; adding recovering nodes (n=2) halves
// reconstruction; 2-to-2 fastest. At large state, reconstruction dominates
// disk I/O. A per-backup-directory bandwidth throttle stands in for the
// paper's per-disk throughput.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/apps/kv.h"
#include "src/state/keyed_dict.h"

namespace sdg::bench {
namespace {

constexpr size_t kValueSize = 2048;

// Builds a KV deployment with `m` backup dirs, loads `keys`, checkpoints,
// kills the node, recovers onto `n` replacements; returns recovery seconds.
double MeasureRecovery(uint64_t keys, uint32_t m, uint32_t n) {
  auto dir = FreshBenchDir("fig11");
  apps::KvOptions opt;
  auto g = apps::BuildKvSdg(opt);
  if (!g.ok()) {
    return -1;
  }
  runtime::ClusterOptions copts;
  copts.num_nodes = 3;  // node 0 serves; 1 and 2 are spares
  copts.mailbox_capacity = 1 << 14;
  copts.fault_tolerance.mode = runtime::FtMode::kAsyncLocal;
  copts.fault_tolerance.checkpoint_interval_s = 0;  // manual
  copts.fault_tolerance.chunks_per_state = std::max(4u, 2 * m);
  copts.fault_tolerance.store.root = dir;
  copts.fault_tolerance.store.num_backup_nodes = m;
  // Model the paper's disk-bound regime: each backup "disk" sustains
  // ~250 MB/s; splitting across m disks parallelises the I/O.
  copts.fault_tolerance.store.throttle_bytes_per_sec = 250ull << 20;
  copts.fault_tolerance.store.io_threads = 4;
  // Each recovering node ingests restore traffic at ~200 MB/s (NIC/memory
  // bound); n nodes ingest in parallel.
  copts.fault_tolerance.recovery_ingest_bytes_per_sec = 200ull << 20;
  runtime::Cluster cluster(copts);
  auto d = cluster.Deploy(std::move(*g));
  if (!d.ok()) {
    return -1;
  }

  // Preload directly into the SE instance (state sizing, not the workload
  // under test) — the dataflow path would dominate setup time.
  std::string value(kValueSize, 'x');
  auto* store = dynamic_cast<state::KeyedDict<int64_t, std::string>*>(
      (*d)->StateInstance("store", 0));
  if (store == nullptr) {
    return -1;
  }
  for (uint64_t k = 0; k < keys; ++k) {
    store->Put(static_cast<int64_t>(k), value);
  }
  if (!(*d)->CheckpointNode(0).ok()) {
    return -1;
  }
  // Some post-checkpoint updates through the dataflow so replay work is
  // included in the measured recovery.
  for (uint64_t k = 0; k < keys / 50; ++k) {
    (void)(*d)->Inject("put", Tuple{Value(static_cast<int64_t>(k)), Value(value)});
  }
  (*d)->Drain();

  if (!(*d)->KillNode(0).ok()) {
    return -1;
  }
  std::vector<uint32_t> replacements;
  for (uint32_t i = 1; i <= n; ++i) {
    replacements.push_back(i);
  }
  Stopwatch timer;
  if (!(*d)->RecoverNode(0, replacements).ok()) {
    return -1;
  }
  (*d)->Drain();  // includes replay reprocessing (§5 step R3)
  double recovery_s = timer.ElapsedSeconds();
  (*d)->Shutdown();
  std::filesystem::remove_all(dir);
  return recovery_s;
}

void Run() {
  PrintHeader("Fig. 11", "recovery time vs state size for m-to-n strategies");
  const double scale = Scale();

  struct Strategy {
    const char* label;
    uint32_t m, n;
  };
  const Strategy strategies[] = {
      {"1-to-1", 1, 1}, {"2-to-1", 2, 1}, {"1-to-2", 1, 2}, {"2-to-2", 2, 2}};

  std::printf("%-12s", "state");
  for (const auto& s : strategies) {
    std::printf(" %12s", s.label);
  }
  std::printf("\n");

  for (uint64_t mb : {64, 128, 256}) {
    auto keys =
        static_cast<uint64_t>(mb * 1024.0 * 1024.0 * scale / kValueSize);
    char label[32];
    std::snprintf(label, sizeof(label), "%lu MB",
                  static_cast<unsigned long>(mb));
    std::printf("%-12s", label);
    for (const auto& s : strategies) {
      double r = MeasureRecovery(keys, s.m, s.n);
      std::printf(" %11.2fs", r);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  PrintNote("backup dirs throttled to 250 MB/s (per-disk I/O) and recovering "
            "nodes to 200 MB/s ingest; times include chunk fetch, split, "
            "reconstruction, and replay. On a single-core host the n-side "
            "gain comes from parallel ingest; parallel reconstruction "
            "additionally needs real cores");
}

}  // namespace
}  // namespace sdg::bench

int main() {
  sdg::bench::Run();
  return 0;
}
