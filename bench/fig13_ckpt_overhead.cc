// Fig. 13 — Overhead of asynchronous checkpointing: request latency as a
// function of (top) checkpoint frequency and (bottom) state size.
//
// Paper shape: latency grows gradually as checkpoints become more frequent
// or state larger (p95 68 ms with FT off, ~500 ms checkpointing 1 GB every
// 10 s, ~850 ms at 4 GB); frequency and size trade off almost
// proportionally because only dirty-state consolidation locks the store.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/apps/kv.h"
#include "src/apps/workloads.h"

namespace sdg::bench {
namespace {

constexpr size_t kValueSize = 1024;

PercentileSummary RunOnce(double ckpt_interval_s, uint64_t keys,
                          double seconds) {
  auto dir = FreshBenchDir("fig13");
  apps::KvOptions opt;
  auto g = apps::BuildKvSdg(opt);
  if (!g.ok()) {
    return {};
  }
  runtime::ClusterOptions copts;
  copts.num_nodes = 1;
  copts.mailbox_capacity = 1 << 14;
  if (ckpt_interval_s > 0) {
    copts.fault_tolerance.mode = runtime::FtMode::kAsyncLocal;
    copts.fault_tolerance.checkpoint_interval_s = ckpt_interval_s;
    copts.fault_tolerance.store.root = dir;
    copts.fault_tolerance.store.num_backup_nodes = 2;
  }
  runtime::Cluster cluster(copts);
  auto d = cluster.Deploy(std::move(*g));
  if (!d.ok()) {
    return {};
  }

  std::string value(kValueSize, 'x');
  for (uint64_t k = 0; k < keys; ++k) {
    (void)(*d)->Inject("put", Tuple{Value(static_cast<int64_t>(k)), Value(value)});
  }
  (*d)->Drain();

  Histogram latency_ms;
  (void)(*d)->OnOutput("get", [&](const Tuple&, uint64_t tag) {
    if (tag != 0) {
      latency_ms.Record(LatencyMsFromTag(tag));
    }
  });
  std::atomic<uint64_t> seed{31};
  DriveLoad(seconds, 2, [&](int) {
    thread_local apps::KvWorkload wl(keys, kValueSize, 0.5,
                                     seed.fetch_add(1));
    if (Backpressure(**d)) {
      return false;
    }
    auto op = wl.Next();
    if (op.type == apps::KvWorkload::OpType::kRead) {
      return (*d)->Inject("get", Tuple{Value(op.key)}, NowTag()).ok();
    }
    return (*d)->Inject("put", Tuple{Value(op.key), Value(std::move(op.value))}).ok();
  });
  (*d)->Drain();
  auto lat = latency_ms.Snapshot();
  (*d)->Shutdown();
  std::filesystem::remove_all(dir);
  return lat;
}

void Run() {
  PrintHeader("Fig. 13",
              "async checkpointing overhead: latency vs frequency and size");
  const double seconds = MeasureSeconds(2.5);
  const double scale = Scale();
  const auto base_keys =
      static_cast<uint64_t>(48.0 * 1024 * 1024 * scale / kValueSize);

  std::printf("-- latency vs checkpoint frequency (state = %.0f MB) --\n",
              static_cast<double>(base_keys) * kValueSize / 1e6);
  std::printf("%-14s %12s %12s %12s\n", "interval", "p50 (ms)", "p95 (ms)",
              "p99 (ms)");
  for (double interval : {0.5, 1.0, 2.0, 4.0}) {
    auto lat = RunOnce(interval, base_keys, seconds);
    char label[32];
    std::snprintf(label, sizeof(label), "%.1f s", interval);
    std::printf("%-14s %12.3f %12.3f %12.3f\n", label, lat.p50, lat.p95,
                lat.p99);
  }
  {
    auto lat = RunOnce(0, base_keys, seconds);
    std::printf("%-14s %12.3f %12.3f %12.3f\n", "No FT", lat.p50, lat.p95,
                lat.p99);
  }

  std::printf("-- latency vs state size (interval = 1 s) --\n");
  std::printf("%-14s %12s %12s %12s\n", "state", "p50 (ms)", "p95 (ms)",
              "p99 (ms)");
  for (uint64_t mb : {16, 32, 64, 128}) {
    auto keys =
        static_cast<uint64_t>(mb * 1024.0 * 1024.0 * scale / kValueSize);
    auto lat = RunOnce(1.0, keys, seconds);
    char label[32];
    std::snprintf(label, sizeof(label), "%lu MB",
                  static_cast<unsigned long>(mb));
    std::printf("%-14s %12.3f %12.3f %12.3f\n", label, lat.p50, lat.p95,
                lat.p99);
  }
  PrintNote("frequency and size trade off ~proportionally; only dirty-state "
            "consolidation takes the state lock");
}

}  // namespace
}  // namespace sdg::bench

int main() {
  sdg::bench::Run();
  return 0;
}
