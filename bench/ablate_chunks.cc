// Ablation — checkpoint chunking and parallel I/O (§5, Fig. 4 step B2).
//
// Sweeps the number of chunks an SE is cut into and the backup store's I/O
// thread count, measuring (a) the wall time of one full checkpoint and
// (b) the recovery time from it. More chunks + more I/O threads overlap
// serialisation with (throttled) writes; past a point, per-chunk overhead
// wins back.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/apps/kv.h"
#include "src/state/keyed_dict.h"

namespace sdg::bench {
namespace {

constexpr size_t kValueSize = 256;

struct Outcome {
  double checkpoint_s = -1;
  double recovery_s = -1;
};

Outcome RunOnce(uint64_t keys, uint32_t chunks, size_t io_threads) {
  auto dir = FreshBenchDir("ablate_chunks");
  apps::KvOptions opt;
  auto g = apps::BuildKvSdg(opt);
  if (!g.ok()) {
    return {};
  }
  runtime::ClusterOptions copts;
  copts.num_nodes = 2;
  copts.fault_tolerance.mode = runtime::FtMode::kAsyncLocal;
  copts.fault_tolerance.checkpoint_interval_s = 0;
  copts.fault_tolerance.chunks_per_state = chunks;
  copts.fault_tolerance.store.root = dir;
  copts.fault_tolerance.store.num_backup_nodes = 2;
  copts.fault_tolerance.store.io_threads = io_threads;
  copts.fault_tolerance.store.throttle_bytes_per_sec = 300ull << 20;
  runtime::Cluster cluster(copts);
  auto d = cluster.Deploy(std::move(*g));
  if (!d.ok()) {
    return {};
  }

  auto* store = dynamic_cast<state::KeyedDict<int64_t, std::string>*>(
      (*d)->StateInstance("store", 0));
  if (store == nullptr) {
    return {};
  }
  std::string value(kValueSize, 'x');
  for (uint64_t k = 0; k < keys; ++k) {
    store->Put(static_cast<int64_t>(k), value);
  }

  Outcome out;
  Stopwatch ckpt;
  if (!(*d)->CheckpointNode(0).ok()) {
    return {};
  }
  out.checkpoint_s = ckpt.ElapsedSeconds();

  if (!(*d)->KillNode(0).ok()) {
    return out;
  }
  Stopwatch rec;
  if (!(*d)->RecoverNode(0, {1}).ok()) {
    return out;
  }
  (*d)->Drain();
  out.recovery_s = rec.ElapsedSeconds();
  (*d)->Shutdown();
  std::filesystem::remove_all(dir);
  return out;
}

void Run() {
  PrintHeader("Ablation A2", "checkpoint chunk count x I/O parallelism");
  const double scale = Scale();
  const auto keys =
      static_cast<uint64_t>(96.0 * 1024 * 1024 * scale / kValueSize);

  std::printf("%-8s %-11s %16s %16s\n", "chunks", "io-threads",
              "checkpoint (s)", "recovery (s)");
  for (uint32_t chunks : {1, 2, 4, 8, 16}) {
    for (size_t io : {size_t{1}, size_t{4}}) {
      auto o = RunOnce(keys, chunks, io);
      std::printf("%-8u %-11zu %16.2f %16.2f\n", chunks, io, o.checkpoint_s,
                  o.recovery_s);
      std::fflush(stdout);
    }
  }
  PrintNote("state ~96 MB, 2 backup dirs throttled to 300 MB/s each");
}

}  // namespace
}  // namespace sdg::bench

int main() {
  sdg::bench::Run();
  return 0;
}
