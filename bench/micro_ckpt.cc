// Checkpoint data-path microbench (BENCH_checkpoint.json).
//
// Two comparisons on a KV deployment whose dict holds `keys` string records:
//
//  1. Delta vs full epoch bytes at a 1% update rate: after a full base, each
//     epoch rewrites 1% of the keys; a delta epoch persists only those
//     records (plus tombstones), a full epoch rewrites everything. Reports
//     bytes/epoch for both and the full/delta ratio (the headline win of
//     incremental checkpointing).
//
//  2. Streaming vs materialise-then-write checkpoint wall time at equal chunk
//     counts, under a per-backup-node write throttle that models the paper's
//     disk-bound regime. The streaming path overlaps SerializeRecords with
//     backup I/O segment-by-segment; the batch path serialises every chunk
//     into memory first. Also reports the foreground ingest rate measured
//     while the checkpoint runs (async-local checkpoints must not dent it).
//
// Short mode: SDG_BENCH_SCALE=0.05 (CI smoke) — this bench is sized by state
// volume, so the scale knob is the one that shortens it.
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/graph/sdg.h"
#include "src/runtime/cluster.h"
#include "src/state/codec.h"
#include "src/state/keyed_dict.h"

namespace sdg::bench {
namespace {

using state::KeyedDict;
using state::StateAs;
using StrDict = KeyedDict<int64_t, std::string>;

constexpr size_t kValueBytes = 200;
constexpr uint32_t kChunks = 8;

Result<graph::Sdg> BuildKvGraph() {
  graph::SdgBuilder b;
  auto dict = b.AddState("dict", graph::StateDistribution::kPartitioned,
                         [] { return std::make_unique<StrDict>(); });
  auto put = b.AddEntryTask("put", [](const Tuple& in, graph::TaskContext& ctx) {
    StateAs<StrDict>(ctx.state())->Put(in[0].AsInt(), in[1].AsString());
  });
  (void)b.SetAccess(put, dict, graph::AccessMode::kPartitioned);
  return std::move(b).Build();
}

runtime::ClusterOptions MakeOptions(const std::filesystem::path& dir,
                                    bool streaming, uint32_t delta_interval,
                                    uint64_t throttle_bytes_per_sec) {
  runtime::ClusterOptions o;
  o.num_nodes = 1;
  o.mailbox_capacity = 1 << 15;
  o.fault_tolerance.mode = runtime::FtMode::kAsyncLocal;
  o.fault_tolerance.checkpoint_interval_s = 0;  // bench-driven
  o.fault_tolerance.chunks_per_state = kChunks;
  o.fault_tolerance.streaming_checkpoint = streaming;
  o.fault_tolerance.delta_epoch_interval = delta_interval;
  o.fault_tolerance.chunk_codec = state::kChunkCodecPrefix;
  o.fault_tolerance.store.root = dir;
  o.fault_tolerance.store.num_backup_nodes = 2;
  o.fault_tolerance.store.io_threads = 2;
  o.fault_tolerance.store.throttle_bytes_per_sec = throttle_bytes_per_sec;
  return o;
}

std::string MakeValue(int64_t key, int rev) {
  std::string v(kValueBytes, 'v');
  // A distinct tail per (key, rev) so epochs genuinely change the record.
  std::string tag = std::to_string(key) + ":" + std::to_string(rev);
  v.replace(0, std::min(tag.size(), v.size()), tag);
  return v;
}

void LoadKeys(runtime::Deployment& d, int64_t keys, int rev) {
  std::vector<Tuple> batch;
  for (int64_t k = 0; k < keys; ++k) {
    batch.push_back(Tuple{Value(k), Value(MakeValue(k, rev))});
    if (batch.size() == 512 || k + 1 == keys) {
      (void)d.InjectAll("put", std::move(batch));
      batch.clear();
    }
  }
  d.Drain();
}

void UpdateSample(runtime::Deployment& d, int64_t keys, double rate, int rev,
                  std::mt19937_64& rng) {
  const int64_t count = std::max<int64_t>(1, keys * rate);
  std::vector<Tuple> batch;
  for (int64_t i = 0; i < count; ++i) {
    int64_t k = static_cast<int64_t>(rng() % keys);
    batch.push_back(Tuple{Value(k), Value(MakeValue(k, rev))});
  }
  (void)d.InjectAll("put", std::move(batch));
  d.Drain();
}

struct EpochCost {
  double bytes_per_epoch = 0;
  double records_per_epoch = 0;
  double wall_ms = 0;
};

// Loads `keys`, writes a full base, then runs `epochs` epochs each updating
// `rate` of the keys, and averages their cost. delta_interval 0 = every
// epoch full (control).
EpochCost MeasureEpochs(const std::string& tag, int64_t keys, double rate,
                        int epochs, uint32_t delta_interval) {
  auto dir = FreshBenchDir("ckpt_" + tag);
  auto g = BuildKvGraph();
  runtime::Cluster cluster(
      MakeOptions(dir, /*streaming=*/true, delta_interval, /*throttle=*/0));
  auto d = cluster.Deploy(std::move(*g));
  LoadKeys(**d, keys, /*rev=*/0);
  (void)(*d)->CheckpointNode(0);  // base (always full)

  std::mt19937_64 rng(42);
  auto before = (*d)->CheckpointStatsSnapshot();
  double wall_ms = 0;
  for (int e = 0; e < epochs; ++e) {
    UpdateSample(**d, keys, rate, /*rev=*/e + 1, rng);
    Stopwatch timer;
    (void)(*d)->CheckpointNode(0);
    wall_ms += timer.ElapsedSeconds() * 1e3;
  }
  auto after = (*d)->CheckpointStatsSnapshot();
  EpochCost c;
  c.bytes_per_epoch =
      static_cast<double>(after.bytes_written - before.bytes_written) / epochs;
  c.records_per_epoch =
      static_cast<double>((after.records_full + after.records_delta) -
                          (before.records_full + before.records_delta)) /
      epochs;
  c.wall_ms = wall_ms / epochs;
  (*d)->Shutdown();
  std::filesystem::remove_all(dir);
  return c;
}

struct CkptRun {
  double wall_ms = 0;
  double items_per_sec_during = 0;
};

// Loads `keys`, then checkpoints while a foreground injector keeps writing;
// reports checkpoint wall time and the foreground rate during it.
CkptRun MeasureCheckpointWall(const std::string& tag, int64_t keys,
                              bool streaming, uint64_t throttle) {
  auto dir = FreshBenchDir("ckpt_" + tag);
  auto g = BuildKvGraph();
  runtime::Cluster cluster(
      MakeOptions(dir, streaming, /*delta_interval=*/0, throttle));
  auto d = cluster.Deploy(std::move(*g));
  LoadKeys(**d, keys, /*rev=*/0);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> injected{0};
  std::thread fg([&] {
    std::mt19937_64 rng(7);
    while (!stop.load(std::memory_order_relaxed)) {
      if (Backpressure(**d)) {
        continue;
      }
      int64_t k = static_cast<int64_t>(rng() % keys);
      if ((*d)->Inject("put", Tuple{Value(k), Value(MakeValue(k, 99))}).ok()) {
        injected.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });

  Stopwatch timer;
  uint64_t fg_before = injected.load();
  (void)(*d)->CheckpointNode(0);
  double wall_s = timer.ElapsedSeconds();
  uint64_t fg_during = injected.load() - fg_before;
  stop = true;
  fg.join();
  (*d)->Drain();

  CkptRun r;
  r.wall_ms = wall_s * 1e3;
  r.items_per_sec_during = wall_s > 0 ? fg_during / wall_s : 0;
  (*d)->Shutdown();
  std::filesystem::remove_all(dir);
  return r;
}

}  // namespace
}  // namespace sdg::bench

int main() {
  using namespace sdg::bench;

  const int64_t keys =
      std::max<int64_t>(2000, static_cast<int64_t>(100000 * Scale()));
  const int epochs = 3;
  // Per-backup-node write cap modelling the disk-bound regime; sized so the
  // write leg is comparable to serialisation and the overlap is visible.
  const uint64_t throttle = 200ull << 20;  // 200 MiB/s per backup node

  PrintHeader("micro_ckpt", "checkpoint data path: delta epochs + streaming");
  std::printf("  keys=%lld value_bytes=%zu chunks=%u\n",
              static_cast<long long>(keys), kValueBytes, kChunks);

  BenchJson json;

  // Full-epoch cost is the whole state regardless of update rate; measure it
  // once at 1% as the baseline for every delta rate.
  auto full = MeasureEpochs("full", keys, 0.01, epochs, /*delta_interval=*/0);
  std::printf("  full epoch:            %10.0f bytes/epoch  %8.0f records"
              "  %7.1f ms\n",
              full.bytes_per_epoch, full.records_per_epoch, full.wall_ms);
  json.BeginRow();
  json.Add("config", std::string("full_epoch"));
  json.Add("keys", static_cast<uint64_t>(keys));
  json.Add("hw_threads", HwThreads());
  json.Add("bytes_per_epoch", full.bytes_per_epoch);
  json.Add("records_per_epoch", full.records_per_epoch);
  json.Add("wall_ms", full.wall_ms);

  for (double rate : {0.01, 0.10, 0.50}) {
    auto delta = MeasureEpochs("delta", keys, rate, epochs,
                               /*delta_interval=*/1u << 20);
    double ratio = delta.bytes_per_epoch > 0
                       ? full.bytes_per_epoch / delta.bytes_per_epoch
                       : 0;
    std::printf("  delta epoch (%4.0f%%):   %10.0f bytes/epoch  %8.0f records"
                "  %7.1f ms  (full/delta bytes: %.1fx)\n",
                rate * 100, delta.bytes_per_epoch, delta.records_per_epoch,
                delta.wall_ms, ratio);
    json.BeginRow();
    json.Add("config",
             "delta_epoch_" + std::to_string(static_cast<int>(rate * 100)) +
                 "pct");
    json.Add("keys", static_cast<uint64_t>(keys));
    json.Add("hw_threads", HwThreads());
    json.Add("update_rate", rate);
    json.Add("bytes_per_epoch", delta.bytes_per_epoch);
    json.Add("records_per_epoch", delta.records_per_epoch);
    json.Add("wall_ms", delta.wall_ms);
    json.Add("full_over_delta_bytes", ratio);
  }

  auto batch = MeasureCheckpointWall("mat", keys, /*streaming=*/false,
                                     throttle);
  auto stream = MeasureCheckpointWall("stream", keys, /*streaming=*/true,
                                      throttle);
  std::printf("  materialise:  %7.1f ms  fg %8.0f items/s during ckpt\n",
              batch.wall_ms, batch.items_per_sec_during);
  std::printf("  streaming:    %7.1f ms  fg %8.0f items/s during ckpt"
              "  (%.0f%% of materialise wall)\n",
              stream.wall_ms, stream.items_per_sec_during,
              batch.wall_ms > 0 ? 100 * stream.wall_ms / batch.wall_ms : 0);
  json.BeginRow();
  json.Add("config", std::string("materialize_ckpt"));
  json.Add("keys", static_cast<uint64_t>(keys));
  json.Add("hw_threads", HwThreads());
  json.Add("throttle_mib_s", static_cast<uint64_t>(throttle >> 20));
  json.Add("wall_ms", batch.wall_ms);
  json.Add("items_per_sec_during", batch.items_per_sec_during);
  json.BeginRow();
  json.Add("config", std::string("streaming_ckpt"));
  json.Add("keys", static_cast<uint64_t>(keys));
  json.Add("hw_threads", HwThreads());
  json.Add("throttle_mib_s", static_cast<uint64_t>(throttle >> 20));
  json.Add("wall_ms", stream.wall_ms);
  json.Add("items_per_sec_during", stream.items_per_sec_during);

  if (json.WriteFile("BENCH_checkpoint.json")) {
    PrintNote("wrote BENCH_checkpoint.json");
  }
  return 0;
}
