// Fig. 5 — Online collaborative filtering: throughput and getRec latency as
// the read/write ratio varies (1:5, 1:2, 1:1, 2:1, 5:1).
//
// Paper shape: ~10k-14k requests/s overall; throughput declines modestly as
// the read share grows because every getRec crosses the partial-state
// synchronisation barrier (one-to-all multiply + all-to-one merge).
#include <cstdio>

#include "bench/bench_common.h"
#include "src/apps/cf.h"
#include "src/apps/workloads.h"
#include "src/common/rng.h"

namespace sdg::bench {
namespace {

struct RatioPoint {
  const char* label;
  double read_fraction;  // getRec share of requests
};

void Run() {
  PrintHeader("Fig. 5", "CF throughput/latency vs read:write ratio");
  PrintNote("reads = getRec (global access + merge barrier), writes = addRating");

  const double seconds = MeasureSeconds(3.0);
  const double scale = Scale();
  const auto num_users = static_cast<uint64_t>(2000 * scale);
  const auto num_items = static_cast<uint64_t>(150 * scale);

  const RatioPoint points[] = {
      {"1:5", 1.0 / 6}, {"1:2", 1.0 / 3}, {"1:1", 0.5},
      {"2:1", 2.0 / 3}, {"5:1", 5.0 / 6},
  };

  std::printf("%-8s %16s %14s %14s %14s\n", "ratio", "tput (req/s)",
              "lat p50 (ms)", "lat p95 (ms)", "staleness ok");

  for (const auto& point : points) {
    apps::CfOptions opt;
    opt.num_items = num_items;
    opt.user_partitions = 2;
    opt.cooc_replicas = 2;
    auto t = apps::BuildCfSdg(opt);
    if (!t.ok()) {
      std::fprintf(stderr, "build failed: %s\n", t.status().ToString().c_str());
      return;
    }
    runtime::ClusterOptions copts;
    copts.num_nodes = 4;
    copts.mailbox_capacity = 1 << 14;
    runtime::Cluster cluster(copts);
    auto d = cluster.Deploy(std::move(t->sdg));
    if (!d.ok()) {
      std::fprintf(stderr, "deploy failed: %s\n", d.status().ToString().c_str());
      return;
    }

    Histogram latency_ms;
    (void)(*d)->OnOutput("merge", [&](const Tuple&, uint64_t tag) {
      if (tag != 0) {
        latency_ms.Record(LatencyMsFromTag(tag));
      }
    });

    // Warm the model so recommendations are non-trivial.
    apps::RatingGenerator warmup(num_users, num_items, 1);
    for (int i = 0; i < 3000; ++i) {
      auto r = warmup.Next();
      (void)(*d)->Inject("addRating",
                         Tuple{Value(r.user), Value(r.item), Value(r.rating)});
    }
    (*d)->Drain();

    std::atomic<uint64_t> seed{100};
    uint64_t injected = DriveLoad(seconds, 2, [&](int thread_id) {
      thread_local apps::RatingGenerator ratings(num_users, num_items,
                                                 seed.fetch_add(1));
      thread_local Rng rng(seed.fetch_add(1));
      if (Backpressure(**d, 512)) {
        return false;
      }
      if (rng.NextDouble() < point.read_fraction) {
        auto user = static_cast<int64_t>(rng.NextBounded(num_users));
        return (*d)->Inject("getRec", Tuple{Value(user)}, NowTag()).ok();
      }
      auto r = ratings.Next();
      return (*d)
          ->Inject("addRating",
                   Tuple{Value(r.user), Value(r.item), Value(r.rating)})
          .ok();
    });
    (*d)->Drain();

    auto lat = latency_ms.Snapshot();
    double tput = static_cast<double>(injected) / seconds;
    std::printf("%-8s %16.0f %14.2f %14.2f %14s\n", point.label, tput, lat.p50,
                lat.p95, lat.p95 < 1500.0 ? "yes" : "no");
    (*d)->Shutdown();
  }
}

}  // namespace
}  // namespace sdg::bench

int main() {
  sdg::bench::Run();
  return 0;
}
