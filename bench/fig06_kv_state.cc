// Fig. 6 — Single-node key/value store: throughput and latency as the state
// size grows; SDG (async dirty-state checkpoints) vs the Naiad comparator
// (synchronous global checkpoints, to disk and to a RAM-disk stand-in).
//
// Paper shape: comparable at small state; as state grows the synchronous
// engines collapse (disk worst) while SDG stays roughly flat.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/apps/kv.h"
#include "src/apps/workloads.h"
#include "src/baseline/sync_kv.h"

namespace sdg::bench {
namespace {

constexpr size_t kValueSize = 512;

struct SdgPoint {
  double tput = 0;
  double p50 = 0;
  double p95 = 0;
};

SdgPoint RunSdg(uint64_t keys, double seconds) {
  auto dir = FreshBenchDir("fig06");
  apps::KvOptions opt;
  auto g = apps::BuildKvSdg(opt);
  if (!g.ok()) {
    return {};
  }
  runtime::ClusterOptions copts;
  copts.num_nodes = 1;
  copts.mailbox_capacity = 1 << 14;
  copts.fault_tolerance.mode = runtime::FtMode::kAsyncLocal;
  copts.fault_tolerance.checkpoint_interval_s = 1.0;
  copts.fault_tolerance.store.root = dir;
  copts.fault_tolerance.store.num_backup_nodes = 2;
  runtime::Cluster cluster(copts);
  auto d = cluster.Deploy(std::move(*g));
  if (!d.ok()) {
    return {};
  }

  std::string value(kValueSize, 'x');
  for (uint64_t k = 0; k < keys; ++k) {
    (void)(*d)->Inject("put", Tuple{Value(static_cast<int64_t>(k)), Value(value)});
  }
  (*d)->Drain();

  Histogram latency_ms;
  (void)(*d)->OnOutput("get", [&](const Tuple&, uint64_t tag) {
    if (tag != 0) {
      latency_ms.Record(LatencyMsFromTag(tag));
    }
  });

  std::atomic<uint64_t> seed{7};
  uint64_t injected = DriveLoad(seconds, 2, [&](int) {
    thread_local apps::KvWorkload wl(keys, kValueSize, /*read_fraction=*/0.5,
                                     seed.fetch_add(1));
    if (Backpressure(**d)) {
      return false;
    }
    auto op = wl.Next();
    if (op.type == apps::KvWorkload::OpType::kRead) {
      return (*d)->Inject("get", Tuple{Value(op.key)}, NowTag()).ok();
    }
    return (*d)->Inject("put", Tuple{Value(op.key), Value(std::move(op.value))}).ok();
  });
  (*d)->Drain();
  auto lat = latency_ms.Snapshot();
  (*d)->Shutdown();
  std::filesystem::remove_all(dir);
  return {static_cast<double>(injected) / seconds, lat.p50, lat.p95};
}

void Run() {
  PrintHeader("Fig. 6",
              "KV throughput/latency vs state size (single node): SDG vs "
              "sync-checkpoint comparator");
  const double seconds = MeasureSeconds(2.0);
  const double scale = Scale();

  std::printf("%-12s %-18s %14s %12s %12s\n", "state", "system", "tput (op/s)",
              "p50 (ms)", "p95 (ms)");

  for (uint64_t mb : {32, 64, 128, 256}) {
    auto keys =
        static_cast<uint64_t>(mb * 1024.0 * 1024.0 * scale / kValueSize);
    char state_label[32];
    std::snprintf(state_label, sizeof(state_label), "%lu MB",
                  static_cast<unsigned long>(mb));

    auto sdg = RunSdg(keys, seconds);
    std::printf("%-12s %-18s %14.0f %12.3f %12.3f\n", state_label, "SDG",
                sdg.tput, sdg.p50, sdg.p95);

    for (bool to_disk : {true, false}) {
      baseline::SyncKvOptions sopt;
      sopt.checkpoint_interval_s = 1.0;
      sopt.checkpoint_to_disk = to_disk;
      // Naiad routes each request through its dataflow scheduler; modelled
      // as a fixed per-request cost so absolute rates are comparable.
      sopt.per_request_overhead_s = 10e-6;
      sopt.disk_path =
          (FreshBenchDir("fig06_sync") / "sync.ckpt").string();
      apps::KvWorkload wl(keys, kValueSize, 0.5, 99);
      auto r = baseline::RunSyncCheckpointKv(sopt, wl, keys, kValueSize,
                                             seconds);
      std::printf("%-12s %-18s %14.0f %12.3f %12.3f\n", state_label,
                  to_disk ? "Naiad-Disk" : "Naiad-NoDisk", r.throughput_ops_s,
                  r.latency_ms.p50, r.latency_ms.p95);
    }
  }
}

}  // namespace
}  // namespace sdg::bench

int main() {
  sdg::bench::Run();
  return 0;
}
