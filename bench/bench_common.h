// Shared plumbing for the per-figure reproduction benches.
//
// Every binary regenerates one table/figure of the paper's §6 and prints the
// same rows/series the paper reports. Run durations are scaled for a single
// machine; set SDG_BENCH_SECONDS to stretch the measurement window and
// SDG_BENCH_SCALE (a float, default 1.0) to scale state sizes / key counts.
#ifndef SDG_BENCH_BENCH_COMMON_H_
#define SDG_BENCH_BENCH_COMMON_H_

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/common/clock.h"
#include "src/common/metrics.h"
#include "src/runtime/cluster.h"

namespace sdg::bench {

inline double MeasureSeconds(double default_s) {
  const char* env = std::getenv("SDG_BENCH_SECONDS");
  if (env != nullptr) {
    double v = std::atof(env);
    if (v > 0) {
      return v;
    }
  }
  return default_s;
}

inline double Scale() {
  const char* env = std::getenv("SDG_BENCH_SCALE");
  if (env != nullptr) {
    double v = std::atof(env);
    if (v > 0) {
      return v;
    }
  }
  return 1.0;
}

// Core count stamped into every BENCH_*.json row: scripts/diff_bench.py only
// compares rows measured on same-shape hardware.
inline uint64_t HwThreads() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

inline std::filesystem::path FreshBenchDir(const std::string& tag) {
  auto dir = std::filesystem::temp_directory_path() / ("sdg_bench_" + tag);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

// Tag carrying the injection time, for end-to-end request latency.
inline uint64_t NowTag() { return static_cast<uint64_t>(Stopwatch::NowNanos()); }

inline double LatencyMsFromTag(uint64_t tag) {
  return static_cast<double>(Stopwatch::NowNanos() -
                             static_cast<int64_t>(tag)) *
         1e-6;
}

// Header/row helpers keeping all benches' output uniform.
inline void PrintHeader(const std::string& figure, const std::string& title) {
  std::printf("=== %s: %s ===\n", figure.c_str(), title.c_str());
}

inline void PrintNote(const std::string& note) {
  std::printf("  note: %s\n", note.c_str());
}

// Open-loop load needs backpressure or reported latency is just unbounded
// queue wait: when the deployment's aggregate mailbox depth passes `limit`,
// callers should pause injection briefly. Returns true when overloaded.
inline bool Backpressure(runtime::Deployment& d, size_t limit = 4096) {
  if (d.TotalQueueDepth() > limit) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
    return true;
  }
  return false;
}

// Accumulates rows of (key, value) pairs and writes them as a JSON array of
// objects — the machine-readable sibling of the printed tables, consumed by
// perf-trajectory tooling (e.g. BENCH_hotpath.json).
class BenchJson {
 public:
  void BeginRow() { rows_.emplace_back(); }

  void Add(const std::string& key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.2f", value);
    rows_.back().emplace_back(key, buf);
  }

  void Add(const std::string& key, uint64_t value) {
    rows_.back().emplace_back(key, std::to_string(value));
  }

  void Add(const std::string& key, const std::string& value) {
    rows_.back().emplace_back(key, "\"" + value + "\"");
  }

  bool WriteFile(const std::string& path) const {
    std::ostringstream os;
    os << "[\n";
    for (size_t r = 0; r < rows_.size(); ++r) {
      os << "  {";
      for (size_t f = 0; f < rows_[r].size(); ++f) {
        os << "\"" << rows_[r][f].first << "\": " << rows_[r][f].second;
        if (f + 1 < rows_[r].size()) {
          os << ", ";
        }
      }
      os << "}" << (r + 1 < rows_.size() ? "," : "") << "\n";
    }
    os << "]\n";
    std::ofstream out(path);
    if (!out) {
      return false;
    }
    out << os.str();
    return static_cast<bool>(out);
  }

 private:
  std::vector<std::vector<std::pair<std::string, std::string>>> rows_;
};

// Drives `inject` from `threads` threads as fast as possible for
// `duration_s`; returns the number of successful injections.
inline uint64_t DriveLoad(double duration_s, int threads,
                          const std::function<bool(int thread_id)>& inject) {
  std::atomic<uint64_t> injected{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      while (!stop.load(std::memory_order_relaxed)) {
        if (inject(t)) {
          injected.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  std::this_thread::sleep_for(
      std::chrono::nanoseconds(static_cast<int64_t>(duration_s * 1e9)));
  stop = true;
  for (auto& w : workers) {
    w.join();
  }
  return injected.load();
}

}  // namespace sdg::bench

#endif  // SDG_BENCH_BENCH_COMMON_H_
