// k-means clustering: iterative reconcile-and-redistribute on partial state.
//
// Each iteration streams points through the assign/accumulate pipeline (the
// sums accumulate independently per replica), then a single step() request
// triggers the §3.2 synchronisation point: all sum replicas are read
// globally, merged into new centroids, broadcast back to every model
// replica, and the sums reset. Watch the centroids walk onto the true
// cluster centres.
#include <cstdio>
#include <mutex>
#include <vector>

#include "src/apps/kmeans.h"
#include "src/common/rng.h"
#include "src/runtime/cluster.h"

using sdg::Tuple;
using sdg::Value;

int main() {
  sdg::apps::KMeansOptions options;
  options.clusters = 3;
  options.dimensions = 2;
  options.replicas = 2;
  auto graph = sdg::apps::BuildKMeansSdg(options);
  if (!graph.ok()) {
    std::fprintf(stderr, "build failed: %s\n", graph.status().ToString().c_str());
    return 1;
  }

  sdg::runtime::ClusterOptions copts;
  copts.num_nodes = 2;
  sdg::runtime::Cluster cluster(copts);
  auto d = cluster.Deploy(std::move(*graph));
  if (!d.ok()) {
    std::fprintf(stderr, "deploy failed: %s\n", d.status().ToString().c_str());
    return 1;
  }

  std::mutex mu;
  std::vector<double> centroids;
  (void)(*d)->OnOutput("newModel", [&](const Tuple& out, uint64_t) {
    std::lock_guard<std::mutex> lock(mu);
    centroids = out[0].AsDoubleVector();
  });

  // Three blobs around (0,0), (8,1) and (3,7).
  const double blob_x[] = {0.0, 8.0, 3.0};
  const double blob_y[] = {0.0, 1.0, 7.0};
  sdg::Rng rng(29);

  std::printf("true centres: (0,0) (8,1) (3,7)\n");
  for (int iteration = 1; iteration <= 5; ++iteration) {
    for (int i = 0; i < 600; ++i) {
      int blob = i % 3;
      std::vector<double> p{blob_x[blob] + rng.NextDoubleIn(-0.7, 0.7),
                            blob_y[blob] + rng.NextDoubleIn(-0.7, 0.7)};
      (void)(*d)->Inject("assign", Tuple{Value(std::move(p))});
    }
    (*d)->Drain();  // assignments settled: iteration boundary (§3.1)
    (void)(*d)->Inject("step", Tuple{});
    (*d)->Drain();

    std::lock_guard<std::mutex> lock(mu);
    std::printf("iteration %d centroids:", iteration);
    for (uint32_t c = 0; c < options.clusters; ++c) {
      std::printf("  (%.2f, %.2f)", centroids[c * 2], centroids[c * 2 + 1]);
    }
    std::printf("\n");
  }
  (*d)->Shutdown();
  return 0;
}
