// Fault-tolerant key/value store: the §5 recovery mechanism in action.
//
// A partitioned KV store runs with asynchronous dirty-state checkpointing.
// The demo loads data, checkpoints, keeps writing, kills the node hosting
// the store, and restores it onto TWO replacement nodes (the 1-to-2 strategy
// of Fig. 4): checkpoint chunks stream from the backup directories, are
// hash-split across the recovering nodes, and the post-checkpoint writes are
// replayed from the upstream buffers — nothing is lost.
#include <cstdio>
#include <filesystem>
#include <map>
#include <mutex>

#include "src/apps/kv.h"
#include "src/common/clock.h"
#include "src/runtime/cluster.h"

using sdg::Tuple;
using sdg::Value;

int main() {
  auto dir = std::filesystem::temp_directory_path() / "sdg_example_kv";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  sdg::apps::KvOptions kv;
  auto graph = sdg::apps::BuildKvSdg(kv);
  if (!graph.ok()) {
    std::fprintf(stderr, "build failed: %s\n", graph.status().ToString().c_str());
    return 1;
  }

  sdg::runtime::ClusterOptions options;
  options.num_nodes = 3;  // node 0 serves; nodes 1 and 2 are spares
  options.fault_tolerance.mode = sdg::runtime::FtMode::kAsyncLocal;
  options.fault_tolerance.checkpoint_interval_s = 0;  // manual for the demo
  options.fault_tolerance.store.root = dir;
  options.fault_tolerance.store.num_backup_nodes = 2;  // m = 2 backup "disks"
  sdg::runtime::Cluster cluster(options);
  auto d = cluster.Deploy(std::move(*graph));
  if (!d.ok()) {
    std::fprintf(stderr, "deploy failed: %s\n", d.status().ToString().c_str());
    return 1;
  }

  constexpr int64_t kKeys = 20000;
  for (int64_t k = 0; k < kKeys; ++k) {
    (void)(*d)->Inject("put", Tuple{Value(k), Value("v" + std::to_string(k))});
  }
  (*d)->Drain();
  std::printf("loaded %ld keys (%zu bytes of state)\n",
              static_cast<long>(kKeys), (*d)->StateSizeBytes("store"));

  if (auto s = (*d)->CheckpointNode(0); !s.ok()) {
    std::fprintf(stderr, "checkpoint failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("checkpoint taken (async, dirty-state)\n");

  // Post-checkpoint writes: only recoverable via upstream-buffer replay.
  for (int64_t k = 0; k < kKeys; k += 2) {
    (void)(*d)->Inject("put",
                       Tuple{Value(k), Value("updated" + std::to_string(k))});
  }
  (*d)->Drain();
  std::printf("applied %ld post-checkpoint updates\n",
              static_cast<long>(kKeys / 2));

  (void)(*d)->KillNode(0);
  std::printf("node 0 killed; in-memory state lost\n");

  sdg::Stopwatch timer;
  if (auto s = (*d)->RecoverNode(0, {1, 2}); !s.ok()) {
    std::fprintf(stderr, "recovery failed: %s\n", s.ToString().c_str());
    return 1;
  }
  (*d)->Drain();  // replay reprocessing included
  std::printf("recovered 1-to-2 in %.3f s; store now has %u partitions\n",
              timer.ElapsedSeconds(), (*d)->NumStateInstances("store"));

  // Verify: every key readable, post-checkpoint updates present.
  std::mutex mu;
  std::map<int64_t, std::string> results;
  (void)(*d)->OnOutput("get", [&](const Tuple& out, uint64_t) {
    std::lock_guard<std::mutex> lock(mu);
    results[out[0].AsInt()] = out[1].AsString();
  });
  for (int64_t k = 0; k < kKeys; ++k) {
    (void)(*d)->Inject("get", Tuple{Value(k)});
  }
  (*d)->Drain();

  int64_t missing = 0, stale = 0;
  for (int64_t k = 0; k < kKeys; ++k) {
    const std::string& v = results[k];
    if (v.empty()) {
      ++missing;
    } else if (k % 2 == 0 && v.rfind("updated", 0) != 0) {
      ++stale;
    }
  }
  std::printf("verification: %ld missing, %ld stale of %ld keys -> %s\n",
              static_cast<long>(missing), static_cast<long>(stale),
              static_cast<long>(kKeys),
              missing == 0 && stale == 0 ? "OK" : "FAILED");
  (*d)->Shutdown();
  std::filesystem::remove_all(dir);
  return missing == 0 && stale == 0 ? 0 : 1;
}
