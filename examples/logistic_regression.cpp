// Logistic regression: iterative machine learning on partial state.
//
// The model weights are a @Partial vector — each worker replica trains on
// its share of the stream without coordination, relying on the optimistic
// convergence the paper cites for iterative algorithms (§3.1). The demo
// trains on a synthetic separable dataset over several epochs, reading the
// merged (averaged) model between epochs to watch accuracy climb.
#include <cstdio>
#include <mutex>
#include <vector>

#include "src/apps/lr.h"
#include "src/apps/workloads.h"
#include "src/runtime/cluster.h"

using sdg::Tuple;
using sdg::Value;

namespace {

double Accuracy(const std::vector<double>& model,
                sdg::apps::LrDataGenerator& gen, int samples) {
  int correct = 0;
  for (int i = 0; i < samples; ++i) {
    auto ex = gen.Next();
    double z = 0;
    for (size_t j = 0; j < model.size() && j < ex.x.size(); ++j) {
      z += model[j] * ex.x[j];
    }
    if ((sdg::apps::LrSigmoid(z) > 0.5 ? 1 : 0) == ex.y) {
      ++correct;
    }
  }
  return static_cast<double>(correct) / samples;
}

}  // namespace

int main() {
  sdg::apps::LrOptions options;
  options.dimensions = 16;
  options.learning_rate = 0.3;
  options.worker_replicas = 2;

  auto graph = sdg::apps::BuildLrSdg(options);
  if (!graph.ok()) {
    std::fprintf(stderr, "build failed: %s\n", graph.status().ToString().c_str());
    return 1;
  }
  sdg::runtime::ClusterOptions copts;
  copts.num_nodes = 2;
  sdg::runtime::Cluster cluster(copts);
  auto d = cluster.Deploy(std::move(*graph));
  if (!d.ok()) {
    std::fprintf(stderr, "deploy failed: %s\n", d.status().ToString().c_str());
    return 1;
  }

  std::mutex mu;
  std::vector<double> model;
  (void)(*d)->OnOutput("mergeModel", [&](const Tuple& out, uint64_t) {
    std::lock_guard<std::mutex> lock(mu);
    model = out[0].AsDoubleVector();
  });

  sdg::apps::LrDataGenerator train_gen(options.dimensions, /*seed=*/3);
  sdg::apps::LrDataGenerator eval_gen(options.dimensions, /*seed=*/3);
  for (int i = 0; i < 50000; ++i) {
    eval_gen.Next();  // disjoint evaluation range, same ground truth
  }

  std::printf("epoch  accuracy (2 independent weight replicas, merged read)\n");
  for (int epoch = 1; epoch <= 4; ++epoch) {
    for (int i = 0; i < 3000; ++i) {
      auto ex = train_gen.Next();
      (void)(*d)->Inject("train", Tuple{Value(ex.x), Value(ex.y)});
    }
    (*d)->Drain();
    (void)(*d)->Inject("readModel", Tuple{});
    (*d)->Drain();
    std::lock_guard<std::mutex> lock(mu);
    std::printf("%5d  %.1f%%\n", epoch, 100.0 * Accuracy(model, eval_gen, 500));
  }
  (*d)->Shutdown();
  return 0;
}
