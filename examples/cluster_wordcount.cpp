// Two-process cluster wordcount over the TCP transport (docs/runtime.md).
//
//   cluster_wordcount --role receiver --port P --snapshot FILE
//   cluster_wordcount --role sender   --port P --lines N [--batch B]
//
// The receiver hosts the wordcount deployment behind a net::ChannelServer:
// wire batches flow through Deployment::InjectRemote into the same batched
// dispatch as local traffic. Durability is snapshot + watermark: a periodic
// checkpoint pauses ingest, drains the pipeline, serialises the "counts" SE
// instances plus the highest received timestamp to FILE (tmp + rename), and
// only then broadcasts the watermark as an ack — so the sender's
// OutputBuffer retains exactly what a crash of this process could lose.
// Kill the receiver (even SIGKILL) and restart it on the same port: it
// restores FILE, hands the watermark to reconnecting senders, and their
// replay re-delivers everything past it, losing nothing and (thanks to the
// watermark filter) double-counting nothing.
//
// The sender stamps monotone timestamps, delivers through net::RemoteChannel
// (log-before-send), and exits 0 only once every line is durably
// acknowledged. scripts/net_smoke.sh drives the kill/restart scenario.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/apps/wordcount.h"
#include "src/common/clock.h"
#include "src/common/serialize.h"
#include "src/net/channel_server.h"
#include "src/net/remote_channel.h"
#include "src/runtime/cluster.h"
#include "src/state/chunk.h"
#include "src/state/keyed_dict.h"

namespace {

using sdg::BinaryReader;
using sdg::BinaryWriter;
using sdg::LogicalClock;
using sdg::Tuple;
using sdg::Value;

constexpr uint32_t kSnapshotMagic = 0x53444757;  // "SDGW"
constexpr uint32_t kCountPartitions = 2;

struct Args {
  std::string role;
  uint16_t port = 7001;
  std::string snapshot = "/tmp/cluster_wordcount.snap";
  uint64_t lines = 2000;
  size_t batch = 64;
  int ckpt_interval_ms = 300;
};

Args ParseArgs(int argc, char** argv) {
  Args a;
  for (int i = 1; i + 1 < argc; i += 2) {
    std::string flag = argv[i];
    std::string value = argv[i + 1];
    if (flag == "--role") {
      a.role = value;
    } else if (flag == "--port") {
      a.port = static_cast<uint16_t>(std::stoi(value));
    } else if (flag == "--snapshot") {
      a.snapshot = value;
    } else if (flag == "--lines") {
      a.lines = std::stoull(value);
    } else if (flag == "--batch") {
      a.batch = std::stoull(value);
    } else if (flag == "--ckpt-interval-ms") {
      a.ckpt_interval_ms = std::stoi(value);
    }
  }
  return a;
}

// Snapshot file: magic, watermark, then per "counts" instance its chunk blobs.
bool WriteSnapshot(const std::string& path, uint64_t watermark,
                   const std::vector<std::vector<std::vector<uint8_t>>>& per_instance) {
  BinaryWriter w;
  w.Write<uint32_t>(kSnapshotMagic);
  w.Write<uint64_t>(watermark);
  w.Write<uint64_t>(per_instance.size());
  for (const auto& chunks : per_instance) {
    w.Write<uint64_t>(chunks.size());
    for (const auto& chunk : chunks) {
      w.WriteVector(chunk);
    }
  }
  std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return false;
  }
  size_t written = std::fwrite(w.data(), 1, w.size(), f);
  std::fflush(f);
  std::fclose(f);
  if (written != w.size()) {
    return false;
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  return !ec;
}

bool ReadSnapshot(const std::string& path, uint64_t* watermark,
                  std::vector<std::vector<std::vector<uint8_t>>>* per_instance) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return false;
  }
  std::vector<uint8_t> bytes;
  uint8_t buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    bytes.insert(bytes.end(), buf, buf + n);
  }
  std::fclose(f);
  BinaryReader r(bytes);
  auto magic = r.Read<uint32_t>();
  if (!magic.ok() || *magic != kSnapshotMagic) {
    return false;
  }
  auto wm = r.Read<uint64_t>();
  auto num_inst = r.Read<uint64_t>();
  if (!wm.ok() || !num_inst.ok()) {
    return false;
  }
  per_instance->clear();
  for (uint64_t i = 0; i < *num_inst; ++i) {
    auto num_chunks = r.Read<uint64_t>();
    if (!num_chunks.ok()) {
      return false;
    }
    std::vector<std::vector<uint8_t>> chunks;
    for (uint64_t c = 0; c < *num_chunks; ++c) {
      auto chunk = r.ReadVector<uint8_t>();
      if (!chunk.ok()) {
        return false;
      }
      chunks.push_back(std::move(*chunk));
    }
    per_instance->push_back(std::move(chunks));
  }
  *watermark = *wm;
  return true;
}

int RunReceiver(const Args& args) {
  sdg::apps::WordCountOptions wc;
  wc.count_partitions = kCountPartitions;
  auto g = sdg::apps::BuildWordCountSdg(wc);
  if (!g.ok()) {
    std::fprintf(stderr, "build sdg: %s\n", g.status().ToString().c_str());
    return 1;
  }
  sdg::runtime::ClusterOptions copts;
  copts.num_nodes = 2;
  sdg::runtime::Cluster cluster(copts);
  auto d = cluster.Deploy(std::move(*g));
  if (!d.ok()) {
    std::fprintf(stderr, "deploy: %s\n", d.status().ToString().c_str());
    return 1;
  }

  // Restore the previous incarnation's snapshot, if any.
  uint64_t durable_w = 0;
  std::vector<std::vector<std::vector<uint8_t>>> restored;
  if (ReadSnapshot(args.snapshot, &durable_w, &restored)) {
    for (uint32_t i = 0; i < restored.size() && i < kCountPartitions; ++i) {
      auto* backend = (*d)->StateInstance("counts", i);
      for (const auto& chunk : restored[i]) {
        auto st = sdg::state::RestoreChunk(*backend, chunk);
        if (!st.ok()) {
          std::fprintf(stderr, "restore: %s\n", st.ToString().c_str());
          return 1;
        }
      }
    }
    std::fprintf(stderr, "restored snapshot w=%llu\n",
                 static_cast<unsigned long long>(durable_w));
  }

  // Ingest state shared between the wire threads and the checkpointer. The
  // mutex gates ingest: while a checkpoint holds it, on_batch blocks on the
  // connection reader thread, which backpressures the wire.
  std::mutex ingest_mu;
  uint64_t received_w = durable_w;

  sdg::net::ChannelServer server(sdg::net::ChannelServerOptions{args.port});
  auto started = server.Start(
      [&](const sdg::net::Handshake&) -> sdg::Result<uint64_t> {
        std::lock_guard<std::mutex> lock(ingest_mu);
        return durable_w;
      },
      [&](const sdg::net::Handshake& hs,
          std::vector<sdg::runtime::DataItem> items) {
        std::lock_guard<std::mutex> lock(ingest_mu);
        // Items at or below the restored watermark are already reflected in
        // the restored state; a fresh deployment has no last-seen record of
        // them, so they must be filtered here.
        std::vector<sdg::runtime::DataItem> fresh;
        fresh.reserve(items.size());
        for (auto& item : items) {
          if (item.ts <= durable_w && item.replayed) {
            continue;
          }
          received_w = std::max(received_w, item.ts);
          fresh.push_back(std::move(item));
        }
        if (fresh.empty()) {
          return;
        }
        auto st = (*d)->InjectRemote(hs.entry, std::move(fresh));
        if (!st.ok()) {
          std::fprintf(stderr, "inject: %s\n", st.ToString().c_str());
        }
      });
  if (!started.ok()) {
    std::fprintf(stderr, "start: %s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("LISTENING %u\n", server.port());
  std::fflush(stdout);

  // Checkpoint loop: pause ingest, drain, serialise state + watermark, make
  // it durable, then (and only then) ack the senders.
  for (;;) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(args.ckpt_interval_ms));
    uint64_t w;
    uint64_t words = 0;
    {
      std::lock_guard<std::mutex> lock(ingest_mu);
      if (received_w == durable_w) {
        continue;  // nothing new since the last checkpoint
      }
      w = received_w;
      (*d)->Drain();  // everything received is now applied to the SEs
      std::vector<std::vector<std::vector<uint8_t>>> per_instance;
      for (uint32_t i = 0; i < kCountPartitions; ++i) {
        auto* backend = (*d)->StateInstance("counts", i);
        per_instance.push_back(
            sdg::state::SerializeToChunks(*backend, "counts", 1));
        auto* dict =
            sdg::state::StateAs<sdg::state::KeyedDict<std::string, int64_t>>(
                backend);
        dict->ForEach([&](const std::string&, const int64_t& v) {
          words += static_cast<uint64_t>(v);
        });
      }
      if (!WriteSnapshot(args.snapshot, w, per_instance)) {
        std::fprintf(stderr, "snapshot write failed\n");
        continue;  // do NOT ack: senders keep the entries
      }
      durable_w = w;
    }
    server.Ack(w);
    std::printf("CKPT w=%llu words=%llu\n",
                static_cast<unsigned long long>(w),
                static_cast<unsigned long long>(words));
    std::fflush(stdout);
  }
}

int RunSender(const Args& args) {
  sdg::runtime::OutputBuffer log;
  sdg::net::RemoteChannelOptions opts;
  opts.port = args.port;
  opts.entry = "line";
  opts.deployment_id = 1;
  opts.reconnect_attempts = 300;
  opts.reconnect_backoff_ms = 100;
  sdg::net::RemoteChannel chan(opts, &log);
  auto st = chan.Connect();
  if (!st.ok()) {
    std::fprintf(stderr, "connect: %s\n", st.ToString().c_str());
    return 1;
  }

  LogicalClock clock;
  uint64_t sent = 0;
  while (sent < args.lines) {
    std::vector<sdg::runtime::DataItem> batch;
    size_t count = std::min<uint64_t>(args.batch, args.lines - sent);
    for (size_t i = 0; i < count; ++i) {
      sdg::runtime::DataItem item;
      item.from =
          sdg::runtime::SourceId{sdg::runtime::kRemoteSourceTask, 0};
      item.ts = clock.Next();
      // Two words per line: a spread key and a shared hot key, so the final
      // count of "common" equals the number of lines delivered exactly once.
      item.payload = Tuple{Value("w" + std::to_string(sent + i) + " common")};
      batch.push_back(std::move(item));
    }
    size_t accepted = chan.DeliverAll(std::move(batch));
    if (accepted != count) {
      std::fprintf(stderr, "delivery failed at line %llu\n",
                   static_cast<unsigned long long>(sent));
      return 1;
    }
    sent += count;
  }

  // Exit only when every line is durable at the receiver (acked), riding out
  // receiver restarts via reconnect-replay.
  auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(120);
  while (chan.UnackedCount() > 0) {
    if (std::chrono::steady_clock::now() > deadline) {
      std::fprintf(stderr, "timed out with %zu unacked\n", chan.UnackedCount());
      return 1;
    }
    if (!chan.connected()) {
      // The receiver died after the send loop finished; nothing else will
      // touch the channel, so the drain loop owns the redial. Connect() is
      // idempotent on a live channel and replays past the ack watermark the
      // restarted receiver reports in its handshake.
      (void)chan.Connect();
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::printf("SENDER DONE lines=%llu words=%llu\n",
              static_cast<unsigned long long>(args.lines),
              static_cast<unsigned long long>(args.lines * 2));
  std::fflush(stdout);
  chan.Close();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args = ParseArgs(argc, argv);
  if (args.role == "receiver") {
    return RunReceiver(args);
  }
  if (args.role == "sender") {
    return RunSender(args);
  }
  std::fprintf(stderr,
               "usage: %s --role receiver|sender [--port P] [--snapshot FILE] "
               "[--lines N] [--batch B]\n",
               argv[0]);
  return 2;
}
