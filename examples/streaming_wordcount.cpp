// Streaming wordcount: fine-grained state updates with per-window results.
//
// Lines of synthetic Zipf text stream into the SDG; every word is one state
// update to a partitioned dictionary (the finest update granularity, §6.1).
// Twice a second the driver snapshots the hottest words — fresh results over
// continuously mutating state, with no micro-batching anywhere.
#include <chrono>
#include <cstdio>
#include <mutex>
#include <thread>
#include <vector>

#include "src/apps/wordcount.h"
#include "src/apps/workloads.h"
#include "src/runtime/cluster.h"

using sdg::Tuple;
using sdg::Value;

int main() {
  sdg::apps::WordCountOptions options;
  options.count_partitions = 2;
  auto graph = sdg::apps::BuildWordCountSdg(options);
  if (!graph.ok()) {
    std::fprintf(stderr, "build failed: %s\n", graph.status().ToString().c_str());
    return 1;
  }

  sdg::runtime::ClusterOptions copts;
  copts.num_nodes = 2;
  sdg::runtime::Cluster cluster(copts);
  auto d = cluster.Deploy(std::move(*graph));
  if (!d.ok()) {
    std::fprintf(stderr, "deploy failed: %s\n", d.status().ToString().c_str());
    return 1;
  }

  std::mutex mu;
  std::vector<std::pair<std::string, int64_t>> snapshot;
  (void)(*d)->OnOutput("read", [&](const Tuple& out, uint64_t) {
    std::lock_guard<std::mutex> lock(mu);
    snapshot.emplace_back(out[0].AsString(), out[1].AsInt());
  });

  // Producer thread: a continuous stream of synthetic text.
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> lines{0};
  std::thread producer([&] {
    sdg::apps::TextGenerator gen(/*vocabulary=*/5000, /*words_per_line=*/8,
                                 /*seed=*/7);
    while (!stop.load(std::memory_order_relaxed)) {
      if ((*d)->Inject("line", Tuple{Value(gen.NextLine())}).ok()) {
        lines.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });

  // Window driver: every 500 ms, snapshot the counts of the head words.
  for (int window = 1; window <= 6; ++window) {
    std::this_thread::sleep_for(std::chrono::milliseconds(500));
    {
      std::lock_guard<std::mutex> lock(mu);
      snapshot.clear();
    }
    for (const char* w : {"w0", "w1", "w2", "w3"}) {
      (void)(*d)->Inject("snapshot", Tuple{Value(w)});
    }
    (*d)->Drain();
    std::lock_guard<std::mutex> lock(mu);
    std::printf("window %d (%llu lines in):", window,
                static_cast<unsigned long long>(lines.load()));
    for (const auto& [word, count] : snapshot) {
      std::printf("  %s=%lld", word.c_str(), static_cast<long long>(count));
    }
    std::printf("\n");
  }

  stop = true;
  producer.join();
  (*d)->Drain();
  std::printf("processed %llu lines total; distinct words tracked: %llu\n",
              static_cast<unsigned long long>(lines.load()),
              static_cast<unsigned long long>(
                  (*d)->StateInstance("counts", 0)->EntryCount() +
                  (*d)->StateInstance("counts", 1)->EntryCount()));
  (*d)->Shutdown();
  return 0;
}
