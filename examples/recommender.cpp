// Recommender: the paper's running example end-to-end.
//
// The annotated imperative program of Alg. 1 (collaborative filtering with a
// @Partitioned user/item matrix and a @Partial co-occurrence matrix) is
// translated by the java2sdg-analogue pipeline into the Fig. 1 SDG, deployed
// with two coOcc replicas, fed a synthetic Zipf rating stream, and asked for
// fresh recommendations — the combined offline/online behaviour of §3.4.
#include <algorithm>
#include <cstdio>
#include <mutex>
#include <vector>

#include "src/apps/cf.h"
#include "src/apps/workloads.h"
#include "src/runtime/cluster.h"

using sdg::Tuple;
using sdg::Value;

int main() {
  sdg::apps::CfOptions options;
  options.num_items = 50;
  options.user_partitions = 2;
  options.cooc_replicas = 2;

  auto translation = sdg::apps::BuildCfSdg(options);
  if (!translation.ok()) {
    std::fprintf(stderr, "translation failed: %s\n",
                 translation.status().ToString().c_str());
    return 1;
  }
  std::printf("--- translation report (Fig. 3 pipeline) ---\n%s\n",
              translation->report.c_str());
  std::printf("--- resulting SDG (Fig. 1) ---\n%s\n",
              translation->sdg.ToDot().c_str());

  sdg::runtime::ClusterOptions copts;
  copts.num_nodes = 3;
  sdg::runtime::Cluster cluster(copts);
  auto d = cluster.Deploy(std::move(translation->sdg));
  if (!d.ok()) {
    std::fprintf(stderr, "deploy failed: %s\n", d.status().ToString().c_str());
    return 1;
  }

  // Stream 20k synthetic ratings (Zipf users and items — the Netflix-trace
  // stand-in) through addRating.
  sdg::apps::RatingGenerator ratings(/*num_users=*/500, options.num_items,
                                     /*seed=*/42);
  for (int i = 0; i < 20000; ++i) {
    auto r = ratings.Next();
    (void)(*d)->Inject("addRating",
                       Tuple{Value(r.user), Value(r.item), Value(r.rating)});
  }
  (*d)->Drain();
  std::printf("ingested 20000 ratings; userItem now holds %zu bytes, "
              "coOcc %zu bytes across %u replicas\n",
              (*d)->StateSizeBytes("userItem"), (*d)->StateSizeBytes("coOcc"),
              (*d)->NumStateInstances("coOcc"));

  // Ask for recommendations for a few users; the merge collector sums the
  // partial recommendation vectors from both replicas.
  std::mutex mu;
  std::vector<std::pair<int64_t, std::vector<double>>> recs;
  (void)(*d)->OnOutput("merge", [&](const Tuple& out, uint64_t) {
    std::lock_guard<std::mutex> lock(mu);
    recs.emplace_back(out[0].AsInt(), out[1].AsDoubleVector());
  });
  for (int64_t user : {0, 1, 7}) {
    (void)(*d)->Inject("getRec", Tuple{Value(user)});
  }
  (*d)->Drain();

  std::lock_guard<std::mutex> lock(mu);
  for (const auto& [user, rec] : recs) {
    // Top-3 items by score.
    std::vector<size_t> idx(rec.size());
    for (size_t i = 0; i < idx.size(); ++i) {
      idx[i] = i;
    }
    std::partial_sort(idx.begin(), idx.begin() + 3, idx.end(),
                      [&](size_t a, size_t b) { return rec[a] > rec[b]; });
    std::printf("user %ld top items: %zu (%.0f), %zu (%.0f), %zu (%.0f)\n",
                static_cast<long>(user), idx[0], rec[idx[0]], idx[1],
                rec[idx[1]], idx[2], rec[idx[2]]);
  }
  (*d)->Shutdown();
  return 0;
}
