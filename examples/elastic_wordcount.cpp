// Head-side driver for a live elastic scale-out demo (docs/runtime.md).
//
//   elastic_wordcount --backup DIR [--port P] [--lines N] [--partitions K]
//
// Run it with real worker processes (tools/elastic_worker):
//
//   term 1: elastic_wordcount --backup /tmp/ew --port 7500
//   term 2: elastic_worker --app wordcount --head-port 7500 --id 1 \
//             --backup /tmp/ew --slow-us 2000 --ckpt-interval-ms 0
//   term 3: elastic_worker --app wordcount --head-port 7500 --id 2 \
//             --backup /tmp/ew --ckpt-interval-ms 0
//
// The head assigns every count partition to the first worker that joins and
// starts injecting single-word lines. When the second worker joins, the
// management loop notices the load imbalance (the first worker's unacked
// backlog is pinned high while the newcomer's is empty) and sheds a
// partition to it — a live migration with a sub-frame pause, while the
// stream keeps flowing. The head then quiesces, checkpoints, and verifies
// the fleet's durable word counts against its own reference model by
// reading the shared backup store: nothing lost, nothing double-counted.
// scripts/net_smoke.sh drives this as the three-process scale-out smoke.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <thread>

#include "src/checkpoint/backup_store.h"
#include "src/runtime/elastic.h"
#include "src/state/chunk.h"
#include "src/state/keyed_dict.h"

namespace {

using sdg::Tuple;
using sdg::Value;

struct Args {
  uint16_t port = 0;  // 0 = ephemeral, printed on the HEAD line
  std::string backup;
  uint32_t partitions = 4;
  uint64_t lines = 4000;
  uint64_t vocab = 50;
  size_t backlog_high = 200;
  int scale_wait_ms = 30000;
};

[[noreturn]] void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --backup DIR [--port N] [--partitions N] "
               "[--lines N] [--vocab N] [--backlog-high N] "
               "[--scale-wait-ms N]\n",
               argv0);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    auto need = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        Usage(argv[0]);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--port") == 0) {
      args.port = static_cast<uint16_t>(std::atoi(need("--port")));
    } else if (std::strcmp(argv[i], "--backup") == 0) {
      args.backup = need("--backup");
    } else if (std::strcmp(argv[i], "--partitions") == 0) {
      args.partitions = static_cast<uint32_t>(std::atoi(need("--partitions")));
    } else if (std::strcmp(argv[i], "--lines") == 0) {
      args.lines = std::strtoull(need("--lines"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--vocab") == 0) {
      args.vocab = std::strtoull(need("--vocab"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--backlog-high") == 0) {
      args.backlog_high = std::strtoull(need("--backlog-high"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--scale-wait-ms") == 0) {
      args.scale_wait_ms = std::atoi(need("--scale-wait-ms"));
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      Usage(argv[0]);
    }
  }
  if (args.backup.empty()) {
    Usage(argv[0]);
  }

  sdg::elastic::ElasticHeadOptions options;
  options.port = args.port;
  options.state = "counts";
  options.entries = {"line"};
  options.partitions = args.partitions;
  options.backup_root = args.backup;
  options.auto_scale = true;
  options.backlog_high = args.backlog_high;
  options.cooldown_ms = 500;
  options.monitor_interval_ms = 50;
  sdg::elastic::ElasticHead head(std::move(options));
  sdg::Status st = head.Start();
  if (!st.ok()) {
    std::fprintf(stderr, "start: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("HEAD port=%u\n", static_cast<unsigned>(head.port()));
  std::fflush(stdout);

  if (!head.WaitForMembers(1, 30000) || !head.WaitForAssignment(30000)) {
    std::fprintf(stderr, "no worker joined\n");
    return 1;
  }
  std::printf("ASSIGNED partitions=%u\n", args.partitions);
  std::fflush(stdout);

  // Stream single-word lines (line hash == word hash, so head routing and
  // count partitioning agree) while recording the reference model.
  std::map<std::string, int64_t> model;
  for (uint64_t i = 0; i < args.lines; ++i) {
    std::string word = "w" + std::to_string(i % args.vocab);
    st = head.Inject(0, Tuple{Value(word)}, 60000);
    if (!st.ok()) {
      std::fprintf(stderr, "inject %llu: %s\n",
                   static_cast<unsigned long long>(i),
                   st.ToString().c_str());
      return 1;
    }
    model[word] += 1;
  }
  std::printf("INJECTED lines=%llu\n",
              static_cast<unsigned long long>(args.lines));
  std::fflush(stdout);

  // The unacked backlog stays pinned (workers only checkpoint when driven),
  // so as soon as a second worker joins, the management loop sheds a
  // partition to it. Wait for that live migration to complete.
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(args.scale_wait_ms);
  while (head.migrations_completed() == 0) {
    if (std::chrono::steady_clock::now() >= deadline) {
      std::fprintf(stderr, "no scale-out migration within %d ms\n",
                   args.scale_wait_ms);
      return 1;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  std::printf("MIGRATED n=%llu pause_ms=%lld\n",
              static_cast<unsigned long long>(head.migrations_completed()),
              static_cast<long long>(head.last_migration_pause_ms()));
  std::fflush(stdout);

  if (!head.AwaitQuiesce(60000)) {
    std::fprintf(stderr, "quiesce failed, %llu items unacked\n",
                 static_cast<unsigned long long>(head.UnackedTotal()));
    return 1;
  }
  st = head.CheckpointAll();
  if (!st.ok()) {
    std::fprintf(stderr, "checkpoint: %s\n", st.ToString().c_str());
    return 1;
  }

  // Verify the durable counts against the model by reading every
  // partition's chunks from its current owner's latest epoch. The fleet is
  // quiesced and nothing else checkpoints, so the store is static.
  sdg::checkpoint::BackupStoreOptions bso;
  bso.root = args.backup;
  sdg::checkpoint::BackupStore store(bso);
  std::map<std::string, int64_t> merged;
  for (uint32_t p = 0; p < args.partitions; ++p) {
    uint32_t owner = head.OwnerOf(p);
    if (owner == sdg::elastic::kNoOwner) {
      std::fprintf(stderr, "p%u has no owner after quiesce\n", p);
      return 1;
    }
    auto epoch = store.LatestEpoch(owner);
    if (!epoch.ok()) {
      std::fprintf(stderr, "m%u has no durable epoch\n", owner);
      return 1;
    }
    auto meta = store.ReadMeta(owner, *epoch);
    if (!meta.ok()) {
      std::fprintf(stderr, "meta m%u e%llu: %s\n", owner,
                   static_cast<unsigned long long>(*epoch),
                   meta.status().ToString().c_str());
      return 1;
    }
    uint32_t num_chunks = 0;
    for (const auto& sm : meta->states) {
      if (sm.instance == p) {
        num_chunks = sm.num_chunks;
      }
    }
    auto chunks = store.ReadChunks(owner, *epoch,
                                   "counts." + std::to_string(p), num_chunks);
    if (!chunks.ok()) {
      std::fprintf(stderr, "chunks p%u: %s\n", p,
                   chunks.status().ToString().c_str());
      return 1;
    }
    sdg::state::KeyedDict<std::string, int64_t> dict;
    for (const auto& blob : *chunks) {
      if (!sdg::state::RestoreChunk(dict, blob).ok()) {
        std::fprintf(stderr, "restore p%u failed\n", p);
        return 1;
      }
    }
    dict.ForEach([&](const std::string& w, const int64_t& c) {
      merged[w] += c;
    });
  }
  if (merged != model) {
    std::fprintf(stderr, "COUNTS MISMATCH: %zu durable words vs %zu modeled\n",
                 merged.size(), model.size());
    return 1;
  }
  uint64_t mass = 0;
  for (const auto& [w, c] : merged) {
    mass += static_cast<uint64_t>(c);
  }
  std::printf("COUNTS OK words=%zu mass=%llu\n", merged.size(),
              static_cast<unsigned long long>(mass));
  return 0;
}
