// Quickstart: build a small stateful dataflow graph by hand, deploy it on a
// simulated cluster, stream data through it, and read state back.
//
// The graph is a minimal "visit counter": events (user, page) enter at the
// "visit" entry TE, which updates a partitioned KeyedDict; "query"(user)
// reads the count back and emits it to a sink.
#include <cstdio>
#include <map>
#include <mutex>

#include "src/graph/sdg.h"
#include "src/runtime/cluster.h"
#include "src/state/keyed_dict.h"

using sdg::Tuple;
using sdg::Value;
using sdg::graph::AccessMode;
using sdg::graph::SdgBuilder;
using sdg::graph::StateDistribution;
using sdg::state::KeyedDict;
using sdg::state::StateAs;

using VisitDict = KeyedDict<int64_t, int64_t>;

int main() {
  // 1. Declare the state element: a dictionary partitioned by user id.
  SdgBuilder builder;
  auto visits = builder.AddState("visits", StateDistribution::kPartitioned,
                                 [] { return std::make_unique<VisitDict>(); });

  // 2. Task elements. Each TE accesses at most one SE; partitioned access
  //    means the dataflow key selects the partition.
  auto visit = builder.AddEntryTask(
      "visit", [](const Tuple& in, sdg::graph::TaskContext& ctx) {
        auto* d = StateAs<VisitDict>(ctx.state());
        d->Update(in[0].AsInt(), [](int64_t v) { return v + 1; });
      });
  auto query = builder.AddEntryTask(
      "query", [](const Tuple& in, sdg::graph::TaskContext& ctx) {
        auto* d = StateAs<VisitDict>(ctx.state());
        // Emitting past the last out-edge delivers to the TE's sink.
        ctx.Emit(0, Tuple{in[0], Value(d->Get(in[0].AsInt()).value_or(0))});
      });
  if (!builder.SetAccess(visit, visits, AccessMode::kPartitioned).ok() ||
      !builder.SetAccess(query, visits, AccessMode::kPartitioned).ok()) {
    std::fprintf(stderr, "failed to wire access edges\n");
    return 1;
  }
  builder.SetInitialInstances(visit, 2);  // two partitions from the start

  auto graph = std::move(builder).Build();
  if (!graph.ok()) {
    std::fprintf(stderr, "invalid SDG: %s\n", graph.status().ToString().c_str());
    return 1;
  }
  std::printf("SDG built:\n%s\n", graph->ToDot().c_str());

  // 3. Deploy on a simulated 2-node cluster.
  sdg::runtime::ClusterOptions options;
  options.num_nodes = 2;
  sdg::runtime::Cluster cluster(options);
  auto deployment = cluster.Deploy(std::move(*graph));
  if (!deployment.ok()) {
    std::fprintf(stderr, "deploy failed: %s\n",
                 deployment.status().ToString().c_str());
    return 1;
  }

  // 4. Register the sink, stream events, and query.
  std::mutex mu;
  std::map<int64_t, int64_t> results;
  (void)(*deployment)->OnOutput("query", [&](const Tuple& out, uint64_t) {
    std::lock_guard<std::mutex> lock(mu);
    results[out[0].AsInt()] = out[1].AsInt();
  });

  for (int round = 0; round < 5; ++round) {
    for (int64_t user = 0; user < 4; ++user) {
      if (user <= round) {
        (void)(*deployment)->Inject("visit", Tuple{Value(user)});
      }
    }
  }
  (*deployment)->Drain();

  for (int64_t user = 0; user < 4; ++user) {
    (void)(*deployment)->Inject("query", Tuple{Value(user)});
  }
  (*deployment)->Drain();

  std::printf("visit counts (expected 5,4,3,2):\n");
  for (const auto& [user, count] : results) {
    std::printf("  user %ld -> %ld visits\n", static_cast<long>(user),
                static_cast<long>(count));
  }
  (*deployment)->Shutdown();
  return 0;
}
