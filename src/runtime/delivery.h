// DeliveryTarget: the mailbox-delivery interface of the dataflow hot path.
//
// RouteEmits/InjectAll deliver per-destination batches through exactly this
// surface: a blocking single-item push and a batched push that applies
// backpressure while the destination is full. A local TaskInstance mailbox
// and a net::RemoteChannel (TCP to another deployment process) both
// implement it, so the batching hot path is transport-agnostic — whether the
// destination TE instance is a thread in this process or a socket away.
#ifndef SDG_RUNTIME_DELIVERY_H_
#define SDG_RUNTIME_DELIVERY_H_

#include <cstdint>
#include <vector>

#include "src/runtime/data_item.h"

namespace sdg::runtime {

// Reserved SourceId::task value marking an item that entered this deployment
// from a remote process. Deployment-local bookkeeping (checkpoint ack sweeps)
// must not index local task tables with it; the remote sender's OutputBuffer
// is the authoritative log for such items.
inline constexpr uint32_t kRemoteSourceTask = 0xFFFFFFFEu;

class DeliveryTarget {
 public:
  virtual ~DeliveryTarget() = default;

  // Blocking push of one item; false if the target is closed/broken.
  virtual bool Deliver(DataItem item) = 0;

  // Blocking push of a batch in FIFO order; returns the number accepted
  // (< items.size() only if the target closed mid-push).
  virtual size_t DeliverAll(std::vector<DataItem>&& items) = 0;
};

}  // namespace sdg::runtime

#endif  // SDG_RUNTIME_DELIVERY_H_
