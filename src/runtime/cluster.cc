#include "src/runtime/cluster.h"

#include <algorithm>
#include <chrono>
#include <set>
#include <sstream>
#include <thread>

#include "src/checkpoint/chunk_stream.h"
#include "src/common/clock.h"
#include "src/common/logging.h"
#include "src/state/chunk.h"
#include "src/state/codec.h"

namespace sdg::runtime {

namespace {

// Acquires every step mutex in `mutexes` without hold-and-wait: try-lock all,
// back off on contention. Avoids deadlock against slices that hold their step
// lock while blocked on a full mailbox.
class MultiLock {
 public:
  explicit MultiLock(std::vector<std::timed_mutex*> mutexes)
      : mutexes_(std::move(mutexes)) {
    for (;;) {
      size_t acquired = 0;
      for (; acquired < mutexes_.size(); ++acquired) {
        if (!mutexes_[acquired]->try_lock()) {
          break;
        }
      }
      if (acquired == mutexes_.size()) {
        return;
      }
      for (size_t i = 0; i < acquired; ++i) {
        mutexes_[i]->unlock();
      }
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }

  ~MultiLock() { Release(); }

  void Release() {
    for (auto* m : mutexes_) {
      m->unlock();
    }
    mutexes_.clear();
  }

 private:
  std::vector<std::timed_mutex*> mutexes_;
};

std::string StateChunkName(graph::StateId state, uint32_t instance) {
  return "se" + std::to_string(state) + "_" + std::to_string(instance);
}

std::string BufferChunkName(graph::TaskId task, uint32_t instance) {
  return "outbuf" + std::to_string(task) + "_" + std::to_string(instance);
}

// Threads for fanning serialisation across state shards and chunk restores
// across chunks. 0 = auto: hardware concurrency capped at 8 (past that the
// backup store's I/O pool is the bottleneck, not serialisation).
uint32_t CkptParallelism(const FaultToleranceOptions& ft) {
  if (ft.ckpt_parallelism > 0) {
    return ft.ckpt_parallelism;
  }
  unsigned hw = std::thread::hardware_concurrency();
  return std::min<uint32_t>(hw == 0 ? 1 : hw, 8);
}

// Serialise/deserialise round trip for items crossing a node boundary. The
// writer is a thread-local scratch whose capacity is reused across items, and
// the reader decodes straight out of it — no per-item byte-buffer allocation.
DataItem SerializedRoundTrip(DataItem item) {
  thread_local BinaryWriter scratch;
  scratch.Clear();
  item.Serialize(scratch);
  auto back = DataItem::FromBytes(scratch.data(), scratch.size());
  SDG_CHECK(back.ok()) << "node-boundary round-trip failed";
  return std::move(*back);
}

// One delivery group a worker thread has routed but not yet pushed: items for
// one (downstream task, destination instance) pair, in emit order. Groups
// hold no instance pointer — destinations are re-resolved under the topology
// lock at flush time, so a group may safely outlive a kill/recover cycle of
// its destination. `ti` is transient flush-local scratch.
struct StagedGroup {
  graph::TaskId task = 0;
  uint32_t dest = 0;
  uint32_t src_node = 0;
  graph::TaskId src_task = 0;  // emitting TE, for edge-fault rule matching
  TaskInstance* ti = nullptr;
  std::vector<DataItem> items;
};

// Per-thread staging area. RouteEmits runs inside one instance's slice and
// stages into it; FlushStagedDeliveries empties it — per input item when
// upstream backup is on, per drained mailbox batch otherwise. A blocked
// delivery may help-run ANOTHER instance's slice inline on this same thread
// (executor.h), so the flush must swap the staged groups out of the
// thread_local before delivering: the nested slice then stages and flushes
// its own groups without touching the outer flush's. Thread-local reuse keeps
// the steady-state emit path free of per-item allocations.
thread_local std::vector<StagedGroup> tl_staged;

// Scratch for tuples emitted past the last out-edge (sink deliveries);
// swapped to a local before delivery for the same inline-help reason.
thread_local std::vector<Tuple> tl_sink_tuples;

}  // namespace

std::string_view FtModeName(FtMode mode) {
  switch (mode) {
    case FtMode::kNone:
      return "none";
    case FtMode::kAsyncLocal:
      return "async-local";
    case FtMode::kSyncLocal:
      return "sync-local";
    case FtMode::kSyncGlobal:
      return "sync-global";
  }
  return "?";
}

Deployment::Deployment(graph::Sdg g, ClusterOptions options)
    : sdg_(std::move(g)), options_(std::move(options)) {
  if (options_.executor_workers > 0) {
    owned_executor_ = std::make_unique<Executor>(
        Executor::Options{options_.executor_workers});
    executor_ = owned_executor_.get();
  } else {
    executor_ = Executor::Shared();
  }
  edges_ = sdg_.edges();
  out_edges_.resize(sdg_.tasks().size());
  for (const auto& e : edges_) {
    out_edges_[e.from].push_back(&e);
  }
  rr_counters_.reserve(edges_.size());
  for (size_t i = 0; i < edges_.size(); ++i) {
    rr_counters_.push_back(std::make_unique<std::atomic<uint64_t>>(0));
  }
  node_alive_.assign(options_.num_nodes, true);
  node_straggler_.assign(options_.num_nodes, false);
  node_epoch_.assign(options_.num_nodes, 0);
  ckpt_chains_.resize(options_.num_nodes);
  for (uint32_t i = 0; i < options_.num_nodes; ++i) {
    node_ckpt_mutex_.push_back(std::make_unique<std::mutex>());
  }
  if (options_.fault_injection.enabled) {
    fault_injector_ = std::make_unique<FaultInjector>(options_.fault_injection);
  }
  if (options_.fault_tolerance.mode != FtMode::kNone) {
    auto store_opts = options_.fault_tolerance.store;
    if (fault_injector_ != nullptr) {
      FaultInjector* inj = fault_injector_.get();
      store_opts.fault_hook = [inj](const char* op, uint32_t index,
                                    bool before) {
        return inj->OnStoreOp(op, index, before);
      };
    }
    store_ = std::make_unique<checkpoint::BackupStore>(std::move(store_opts));
    buffering_enabled_ = true;
  }
}

Deployment::~Deployment() { Shutdown(); }

std::unique_ptr<state::StateBackend> Deployment::MakeStateBackend(
    const graph::StateElement& se) const {
  auto backend = se.factory();
  if (options_.fault_tolerance.delta_epoch_interval > 0) {
    backend->EnableDeltaTracking();
  }
  return backend;
}

Status Deployment::Start() {
  if (started_.exchange(true)) {
    return FailedPreconditionError("deployment already started");
  }
  SDG_ASSIGN_OR_RETURN(graph::Allocation alloc,
                       graph::AllocateSdg(sdg_, options_.num_nodes));
  if (fault_injector_ != nullptr) {
    SDG_RETURN_IF_ERROR(fault_injector_->Resolve(sdg_));
  }

  task_instances_.resize(sdg_.tasks().size());
  state_groups_.resize(sdg_.states().size());

  // Build state groups: instance count of a group is the maximum requested
  // instance count over its accessor TEs; all accessors are yoked to it.
  for (const auto& se : sdg_.states()) {
    StateGroup& group = state_groups_[se.id];
    group.state = se.id;
    uint32_t count = 1;
    for (const auto& te : sdg_.tasks()) {
      if (te.state == se.id) {
        group.accessors.push_back(te.id);
        count = std::max(count, te.initial_instances);
      }
    }
    for (uint32_t j = 0; j < count; ++j) {
      group.instances.push_back(MakeStateBackend(se));
      // Instance 0 at the allocated home node; extras spread round-robin.
      uint32_t node = (alloc.state_nodes[se.id] + j) % options_.num_nodes;
      group.instance_nodes.push_back(node);
    }
  }

  // Materialise task instances. Stateful TEs: one instance per SE instance,
  // colocated (§3.3 step 3). Stateless TEs: their own requested count.
  for (const auto& te : sdg_.tasks()) {
    auto& slots = task_instances_[te.id];
    if (te.state.has_value()) {
      StateGroup& group = state_groups_[*te.state];
      for (uint32_t j = 0; j < group.instances.size(); ++j) {
        slots.push_back(std::make_unique<TaskInstance>(
            te, j, group.instance_nodes[j], group.instances[j].get(), this,
            executor_, options_.mailbox_capacity, options_.max_batch));
      }
    } else {
      for (uint32_t j = 0; j < te.initial_instances; ++j) {
        uint32_t node = (alloc.task_nodes[te.id] + j) % options_.num_nodes;
        slots.push_back(std::make_unique<TaskInstance>(
            te, j, node, nullptr, this, executor_, options_.mailbox_capacity,
            options_.max_batch));
      }
    }
    if (te.is_entry) {
      external_clocks_[te.id] = std::make_unique<LogicalClock>();
      external_buffers_[te.id] = std::make_unique<OutputBuffer>();
      external_locks_[te.id] = std::make_unique<std::mutex>();
    }
  }

  for (auto& slots : task_instances_) {
    for (auto& ti : slots) {
      ti->Start();
    }
  }

  services_running_ = true;
  const auto& ft = options_.fault_tolerance;
  if (ft.mode != FtMode::kNone && ft.checkpoint_interval_s > 0) {
    ckpt_driver_ = std::thread([this] { CheckpointDriverLoop(); });
  }
  if (options_.scaling.enabled) {
    scaling_monitor_ = std::thread([this] { ScalingMonitorLoop(); });
  }
  return Status::Ok();
}

Status Deployment::Inject(std::string_view entry, Tuple tuple,
                          uint64_t user_tag) {
  if (!started_.load() || shut_down_.load()) {
    return FailedPreconditionError("deployment is not running");
  }
  std::shared_lock ingest(ingest_gate_);
  SDG_ASSIGN_OR_RETURN(graph::TaskId task, sdg_.TaskByName(entry));
  const auto& te = sdg_.task(task);
  if (!te.is_entry) {
    return InvalidArgumentError("task '" + std::string(entry) +
                                "' is not an entry point");
  }

  // The per-entry lock makes (timestamp, buffer append, dispatch) atomic so
  // per-source FIFO timestamps stay monotone at every destination.
  std::lock_guard<std::mutex> entry_lock(*external_locks_.at(task));

  DataItem item;
  item.from = SourceId{kExternalTask, task};
  item.ts = external_clocks_.at(task)->Next();
  item.user_tag = user_tag;
  item.payload = std::move(tuple);

  std::shared_lock topo(topo_mutex_);
  const auto& slots = task_instances_[task];
  uint32_t n = static_cast<uint32_t>(slots.size());
  if (n == 0) {
    return UnavailableError("entry task has no instances");
  }

  std::vector<std::pair<uint32_t, DataItem>> deliveries;
  if (te.access == graph::AccessMode::kPartitioned) {
    int key_field = te.entry_key_field;
    if (key_field < 0 || static_cast<size_t>(key_field) >= item.payload.size()) {
      return InvalidArgumentError("entry tuple lacks the partition key field");
    }
    uint32_t dest = static_cast<uint32_t>(item.payload[key_field].Hash() % n);
    if (buffering_enabled_) {
      external_buffers_.at(task)->Append(item, dest);
    }
    deliveries.emplace_back(dest, std::move(item));
  } else if (te.access == graph::AccessMode::kGlobal) {
    item.barrier_id = barrier_seq_.fetch_add(1);
    item.expected_partials = n;
    for (uint32_t j = 0; j < n; ++j) {
      if (buffering_enabled_) {
        external_buffers_.at(task)->Append(item, j);
      }
      if (j + 1 < n) {
        deliveries.emplace_back(j, item);
      } else {
        deliveries.emplace_back(j, std::move(item));
      }
    }
  } else {
    // Local / stateless entries load-balance (one-to-any).
    uint32_t dest = static_cast<uint32_t>(item.ts % n);
    if (buffering_enabled_) {
      external_buffers_.at(task)->Append(item, dest);
    }
    deliveries.emplace_back(dest, std::move(item));
  }

  std::vector<std::pair<TaskInstance*, DataItem>> pushes;
  pushes.reserve(deliveries.size());
  for (auto& [dest, it] : deliveries) {
    if (slots[dest]) {
      pushes.emplace_back(slots[dest].get(), std::move(it));
    }
  }
  topo.unlock();

  for (auto& [ti, it] : pushes) {
    if (fault_injector_ != nullptr) {
      // Faults apply after the buffer append above: a dropped item is a lost
      // network delivery that replay can still restore from the buffer.
      std::vector<DataItem> group;
      group.push_back(std::move(it));
      fault_injector_->ApplyToGroup(kExternalTask, task, group);
      if (options_.serialize_cross_node) {
        for (auto& item : group) {
          item = SerializedRoundTrip(std::move(item));
        }
      }
      const size_t count = group.size();
      if (count == 0) {
        continue;
      }
      AccountDelivered(count);
      size_t accepted = ti->DeliverAll(std::move(group));
      if (accepted < count) {
        AccountDone(count - accepted);
      }
      continue;
    }
    // Injection crosses the client/cluster boundary: always serialise.
    if (options_.serialize_cross_node) {
      it = SerializedRoundTrip(std::move(it));
    }
    AccountDelivered(1);
    if (!ti->Deliver(std::move(it))) {
      AccountDone(1);
    }
  }
  return Status::Ok();
}

Status Deployment::InjectAll(std::string_view entry, std::vector<Tuple> tuples,
                             uint64_t user_tag) {
  if (tuples.empty()) {
    return Status::Ok();
  }
  if (!started_.load() || shut_down_.load()) {
    return FailedPreconditionError("deployment is not running");
  }
  std::shared_lock ingest(ingest_gate_);
  SDG_ASSIGN_OR_RETURN(graph::TaskId task, sdg_.TaskByName(entry));
  const auto& te = sdg_.task(task);
  if (!te.is_entry) {
    return InvalidArgumentError("task '" + std::string(entry) +
                                "' is not an entry point");
  }
  if (te.access == graph::AccessMode::kPartitioned) {
    // Validate before ticking the clock so a malformed tuple cannot leave a
    // partial batch behind.
    int key_field = te.entry_key_field;
    for (const auto& tuple : tuples) {
      if (key_field < 0 || static_cast<size_t>(key_field) >= tuple.size()) {
        return InvalidArgumentError("entry tuple lacks the partition key field");
      }
    }
  }

  // The per-entry lock makes (timestamps, buffer appends, dispatch) atomic
  // for the whole batch, so per-source FIFO timestamps stay monotone at
  // every destination.
  std::lock_guard<std::mutex> entry_lock(*external_locks_.at(task));
  LogicalClock& clock = *external_clocks_.at(task);
  OutputBuffer* ext_buffer =
      buffering_enabled_ ? external_buffers_.at(task).get() : nullptr;

  // Delivery groups, one per destination instance, built under a single
  // topology-lock scope and pushed with one mailbox batch each.
  struct Group {
    uint32_t dest = 0;
    TaskInstance* ti = nullptr;
    std::vector<DataItem> items;
  };
  std::vector<Group> groups;
  auto stage = [&](uint32_t dest, TaskInstance* ti, DataItem item) {
    for (auto& g : groups) {
      if (g.dest == dest) {
        g.items.push_back(std::move(item));
        return;
      }
    }
    groups.push_back(Group{dest, ti, {}});
    groups.back().items.push_back(std::move(item));
  };

  {
    std::shared_lock topo(topo_mutex_);
    const auto& slots = task_instances_[task];
    uint32_t n = static_cast<uint32_t>(slots.size());
    if (n == 0) {
      return UnavailableError("entry task has no instances");
    }
    for (auto& tuple : tuples) {
      DataItem item;
      item.from = SourceId{kExternalTask, task};
      item.ts = clock.Next();
      item.user_tag = user_tag;
      item.payload = std::move(tuple);

      if (te.access == graph::AccessMode::kPartitioned) {
        uint32_t dest = static_cast<uint32_t>(
            item.payload[te.entry_key_field].Hash() % n);
        if (ext_buffer != nullptr) {
          ext_buffer->Append(item, dest);
        }
        stage(dest, slots[dest] ? slots[dest].get() : nullptr, std::move(item));
      } else if (te.access == graph::AccessMode::kGlobal) {
        item.barrier_id = barrier_seq_.fetch_add(1);
        item.expected_partials = n;
        for (uint32_t j = 0; j < n; ++j) {
          if (ext_buffer != nullptr) {
            ext_buffer->Append(item, j);
          }
          TaskInstance* ti = slots[j] ? slots[j].get() : nullptr;
          if (j + 1 < n) {
            stage(j, ti, item);
          } else {
            stage(j, ti, std::move(item));
          }
        }
      } else {
        // Local / stateless entries load-balance (one-to-any).
        uint32_t dest = static_cast<uint32_t>(item.ts % n);
        if (ext_buffer != nullptr) {
          ext_buffer->Append(item, dest);
        }
        stage(dest, slots[dest] ? slots[dest].get() : nullptr, std::move(item));
      }
    }
  }

  for (auto& g : groups) {
    if (g.ti == nullptr) {
      continue;  // lost instance: the buffer retains the items for replay
    }
    if (fault_injector_ != nullptr) {
      // After the buffer appends, before accounting: the group size below
      // already reflects drops and duplicates.
      fault_injector_->ApplyToGroup(kExternalTask, task, g.items);
      if (g.items.empty()) {
        continue;
      }
    }
    // Injection crosses the client/cluster boundary: always serialise.
    if (options_.serialize_cross_node) {
      for (auto& item : g.items) {
        item = SerializedRoundTrip(std::move(item));
      }
    }
    const size_t count = g.items.size();
    AccountDelivered(count);
    size_t accepted = g.ti->DeliverAll(std::move(g.items));
    if (accepted < count) {
      AccountDone(count - accepted);  // closed mailbox rejected the tail
    }
  }
  return Status::Ok();
}

Status Deployment::InjectRemote(std::string_view entry,
                                std::vector<DataItem> items) {
  if (items.empty()) {
    return Status::Ok();
  }
  if (!started_.load() || shut_down_.load()) {
    return FailedPreconditionError("deployment is not running");
  }
  std::shared_lock ingest(ingest_gate_);
  SDG_ASSIGN_OR_RETURN(graph::TaskId task, sdg_.TaskByName(entry));
  const auto& te = sdg_.task(task);
  if (!te.is_entry) {
    return InvalidArgumentError("task '" + std::string(entry) +
                                "' is not an entry point");
  }
  if (te.access == graph::AccessMode::kGlobal) {
    return UnimplementedError(
        "global entry TEs are not supported for remote injection");
  }
  if (te.access == graph::AccessMode::kPartitioned) {
    int key_field = te.entry_key_field;
    for (const auto& item : items) {
      if (key_field < 0 ||
          static_cast<size_t>(key_field) >= item.payload.size()) {
        return InvalidArgumentError("entry item lacks the partition key field");
      }
    }
  }

  // No entry lock, clock tick or local buffer append: the items carry the
  // sender's timestamps, and the sender's OutputBuffer is their log. Two
  // connections delivering concurrently are two independent sources — each
  // is FIFO per its own source id, which is all the dedup filter needs.
  struct Group {
    uint32_t dest = 0;
    TaskInstance* ti = nullptr;
    std::vector<DataItem> items;
  };
  std::vector<Group> groups;
  auto stage = [&](uint32_t dest, TaskInstance* ti, DataItem item) {
    for (auto& g : groups) {
      if (g.dest == dest) {
        g.items.push_back(std::move(item));
        return;
      }
    }
    groups.push_back(Group{dest, ti, {}});
    groups.back().items.push_back(std::move(item));
  };

  {
    std::shared_lock topo(topo_mutex_);
    const auto& slots = task_instances_[task];
    uint32_t n = static_cast<uint32_t>(slots.size());
    if (n == 0) {
      return UnavailableError("entry task has no instances");
    }
    for (auto& item : items) {
      uint32_t dest;
      if (te.access == graph::AccessMode::kPartitioned) {
        dest = static_cast<uint32_t>(
            item.payload[te.entry_key_field].Hash() % n);
      } else {
        // One-to-any: ts modulo n, NOT load-based — a replayed item must
        // reach the instance that saw (or would have seen) the original.
        dest = static_cast<uint32_t>(item.ts % n);
      }
      stage(dest, slots[dest] ? slots[dest].get() : nullptr, std::move(item));
    }
  }

  for (auto& g : groups) {
    if (g.ti == nullptr) {
      // Lost instance: drop here; the REMOTE sender's buffer still holds the
      // items (they are unacked until the next durable watermark), so a
      // later replay re-delivers them once the instance is restored.
      continue;
    }
    const size_t count = g.items.size();
    AccountDelivered(count);
    size_t accepted = g.ti->DeliverAll(std::move(g.items));
    if (accepted < count) {
      AccountDone(count - accepted);
    }
  }
  return Status::Ok();
}

Status Deployment::OnOutput(std::string_view task, SinkFn fn) {
  SDG_ASSIGN_OR_RETURN(graph::TaskId id, sdg_.TaskByName(task));
  std::lock_guard<std::mutex> lock(sinks_mutex_);
  sinks_[id] = std::move(fn);
  return Status::Ok();
}

void Deployment::Drain() {
  // AccountDone serialises on inflight_mutex_ before notifying, so checking
  // the atomic under the lock cannot miss the 1->0 wakeup.
  {
    std::unique_lock<std::mutex> lock(inflight_mutex_);
    if (inflight_cv_.wait_for(lock, std::chrono::milliseconds(2),
                              [&] { return in_flight_.value() <= 0; })) {
      return;
    }
  }
  // Slow path: help. On a shared pool every worker may be occupied — or
  // blocked on a lock the Drain caller holds (e.g. an ingest gate taken
  // around checkpointing): waiting passively would deadlock. The draining
  // thread claims and runs this deployment's OWN instances inline instead.
  // Only own instances: a foreign entity's slice could be the one that needs
  // the caller's lock. Slices never take ingest_gate_ (only the Inject*
  // entry points do), so a caller holding it uniquely (ScaleUp) is safe.
  std::vector<TaskInstance*> instances;
  for (;;) {
    instances.clear();
    {
      std::shared_lock topo(topo_mutex_);
      for (auto& slots : task_instances_) {
        for (auto& ti : slots) {
          if (ti) {
            instances.push_back(ti.get());
          }
        }
      }
    }
    // Raw pointers stay valid off the lock: instances are only destroyed in
    // ~Deployment, never while a Drain can be in progress.
    bool progress = false;
    for (auto* ti : instances) {
      progress |= ti->TryRunInline();
    }
    std::unique_lock<std::mutex> lock(inflight_mutex_);
    if (in_flight_.value() <= 0) {
      return;
    }
    if (!progress) {
      if (inflight_cv_.wait_for(lock, std::chrono::milliseconds(1),
                                [&] { return in_flight_.value() <= 0; })) {
        return;
      }
    }
  }
}

void Deployment::AccountDelivered(size_t count) {
  in_flight_.Add(static_cast<int64_t>(count));
}

void Deployment::AccountDone(size_t count) {
  if (in_flight_.Add(-static_cast<int64_t>(count)) <= 0) {
    // Taking (and immediately dropping) the lock orders this notification
    // after any Drain() caller's predicate check, closing the lost-wakeup
    // window. Only the transition to zero pays it.
    std::lock_guard<std::mutex> lock(inflight_mutex_);
    inflight_cv_.notify_all();
  }
}

void Deployment::Shutdown() {
  if (shut_down_.exchange(true)) {
    return;
  }
  services_running_ = false;
  if (ckpt_driver_.joinable()) {
    ckpt_driver_.join();
  }
  if (scaling_monitor_.joinable()) {
    scaling_monitor_.join();
  }
  // Abort everything; callers wanting a clean flush call Drain() first. The
  // joins happen OFF the topology lock: a retiring slice may still be inside
  // RouteEmits waiting for a shared topo lock, and AwaitIdle-ing it while
  // holding any topo lock could deadlock through a queued writer. The raw
  // pointers stay valid — nothing destroys instances until ~Deployment.
  std::vector<TaskInstance*> to_join;
  {
    std::unique_lock topo(topo_mutex_);
    for (auto& slots : task_instances_) {
      for (auto& ti : slots) {
        if (ti) {
          ti->Abort();
          to_join.push_back(ti.get());
        }
      }
    }
    for (auto& ti : dead_instances_) {
      ti->Abort();
      to_join.push_back(ti.get());
    }
  }
  for (auto* ti : to_join) {
    ti->Join();
  }
}

// --- Routing -----------------------------------------------------------------

void Deployment::RouteEmits(TaskInstance& src, std::vector<PendingEmit>& emits,
                            const DataItem& cause) {
  const auto& outs = out_edges_[src.task_id()];
  const uint32_t src_node = src.node();

  // Items are staged into the calling worker's per-(downstream task,
  // destination instance) delivery groups. A TE fans out to a handful of
  // destinations at most, so a flat vector with a linear scan beats a map.
  // Items stay in emit order within a group, which preserves per-(source,
  // destination) FIFO delivery: a group's items are pushed as one contiguous
  // batch, and only this worker thread emits for this source.
  std::vector<StagedGroup>& groups = tl_staged;
  std::vector<Tuple>& sinks = tl_sink_tuples;
  size_t staged_count = 0;

  auto stage = [&](graph::TaskId task, uint32_t dest, DataItem item) {
    ++staged_count;
    for (auto& g : groups) {
      if (g.task == task && g.dest == dest) {
        g.items.push_back(std::move(item));
        return;
      }
    }
    groups.push_back(StagedGroup{task, dest, src_node, src.task_id(), nullptr, {}});
    groups.back().items.push_back(std::move(item));
  };

  // Mailbox depth a destination would have once this worker's staged items
  // land; keeps join-shortest-queue decisions honest while deliveries are
  // deferred to the end of the drained batch.
  auto staged_depth = [&](graph::TaskId task, uint32_t dest) -> size_t {
    for (const auto& g : groups) {
      if (g.task == task && g.dest == dest) {
        return g.items.size();
      }
    }
    return 0;
  };

  // One shared topology-lock scope covers routing decisions for every emit
  // of this input item; mailbox pushes happen after release.
  {
    std::shared_lock topo(topo_mutex_);
    for (auto& emit : emits) {
      if (emit.output >= outs.size()) {
        sinks.push_back(std::move(emit.tuple));
        continue;
      }
      const graph::DataflowEdge& edge = *outs[emit.output];
      const auto& slots = task_instances_[edge.to];
      uint32_t n = static_cast<uint32_t>(slots.size());
      if (n == 0) {
        continue;
      }
      DataItem item;
      item.from = SourceId{src.task_id(), src.instance_id()};
      item.ts = src.emit_clock().Next();
      item.barrier_id = cause.barrier_id;
      item.expected_partials = cause.expected_partials;
      item.user_tag = cause.user_tag;
      item.replayed = cause.replayed;  // derived items of replayed inputs dedupe too
      item.payload = std::move(emit.tuple);

      switch (edge.dispatch) {
        case graph::Dispatch::kPartitioned: {
          uint32_t dest = static_cast<uint32_t>(
              item.payload[edge.key_field].Hash() % n);
          stage(edge.to, dest, std::move(item));
          break;
        }
        case graph::Dispatch::kOneToAny: {
          size_t edge_index = static_cast<size_t>(&edge - edges_.data());
          uint32_t start = static_cast<uint32_t>(
              rr_counters_[edge_index]->fetch_add(1) % n);
          uint32_t dest = start;
          if (options_.one_to_any == OneToAnyPolicy::kRoundRobin) {
            // Strict fair share; skip dead instances only.
            for (uint32_t tries = 0; tries < n && !slots[dest]; ++tries) {
              dest = (dest + 1) % n;
            }
          } else {
            // Join-shortest-queue with round-robin tie-breaking: a straggling
            // instance naturally receives less work instead of its fair share
            // (reactive load balancing, §3.3). Depth probes read the queues'
            // relaxed size mirror — no lock taken per probe — plus this
            // worker's own staged-but-unpushed items.
            size_t min_depth = SIZE_MAX;
            for (uint32_t j = 0; j < n; ++j) {
              if (slots[j]) {
                min_depth = std::min(
                    min_depth, slots[j]->QueueDepth() + staged_depth(edge.to, j));
              }
            }
            if (min_depth == SIZE_MAX) {
              break;  // no alive instance
            }
            for (uint32_t tries = 0; tries < n; ++tries) {
              uint32_t candidate = (start + tries) % n;
              if (slots[candidate] &&
                  slots[candidate]->QueueDepth() +
                          staged_depth(edge.to, candidate) <=
                      min_depth) {
                dest = candidate;
                break;
              }
            }
          }
          stage(edge.to, dest, std::move(item));
          break;
        }
        case graph::Dispatch::kOneToAll: {
          // A broadcast over partial instances opens a barrier (§4.2 rule 3).
          item.barrier_id = barrier_seq_.fetch_add(1);
          uint32_t alive = 0;
          for (uint32_t j = 0; j < n; ++j) {
            if (slots[j]) {
              ++alive;
            }
          }
          item.expected_partials = alive;
          uint32_t fanned = 0;
          for (uint32_t j = 0; j < n; ++j) {
            if (slots[j]) {
              ++fanned;
              if (fanned < alive) {
                stage(edge.to, j, item);
              } else {
                stage(edge.to, j, std::move(item));
              }
            }
          }
          break;
        }
        case graph::Dispatch::kAllToOne: {
          // Gather at the collector's first alive instance.
          uint32_t dest = 0;
          for (uint32_t j = 0; j < n; ++j) {
            if (slots[j]) {
              dest = j;
              break;
            }
          }
          stage(edge.to, dest, std::move(item));
          break;
        }
      }
    }
  }

  // Take this item's sink tuples out of the thread_local before anything can
  // deliver: a blocked delivery below may help-run a nested slice on this
  // thread, and its RouteEmits must find tl_sink_tuples empty rather than
  // adopt (and mis-tag) ours.
  std::vector<Tuple> local_sinks;
  local_sinks.swap(sinks);

  // Staged items count as in flight from here: the causing input item is
  // only released (OnItemsDone) after they are flushed, so Drain() cannot
  // observe a moment where they are invisible.
  AccountDelivered(staged_count);

  if (buffering_enabled_) {
    // Upstream-backup log first — an item must be in its source's buffer
    // before any downstream effect of it can be checkpointed — then flush
    // inside this item's step-lock scope. Deferring delivery past the step
    // lock would let a checkpoint cover the item while its outputs sit
    // undelivered in this thread; a downstream replay plus the late original
    // push would then double-deliver (originals carry replayed=false and
    // bypass dedup). With buffering off no replay exists, so OnItemsDone
    // flushes once per drained batch instead.
    for (auto& g : groups) {
      src.BufferFor(g.task).AppendAll(g.items, g.dest);
    }
    FlushStagedDeliveries();
  }
  for (auto& tuple : local_sinks) {
    DeliverToSink(src.task_id(), tuple, cause.user_tag);
  }
  local_sinks.clear();
  if (sinks.empty()) {
    sinks.swap(local_sinks);  // hand the warmed capacity back
  }
}

void Deployment::FlushStagedDeliveries() {
  if (tl_staged.empty()) {
    return;
  }
  // Move the staged groups out of the thread_local before delivering: a push
  // below may block on a full mailbox and help-run another instance's slice
  // inline on this thread, whose RouteEmits/OnItemsDone stage and flush
  // through the same thread_local.
  std::vector<StagedGroup> groups;
  groups.swap(tl_staged);
  // Resolve every destination under one shared topology-lock scope; pushes
  // happen after release (a blocking push under the topology lock could
  // stall writers, and readers behind them, on a full mailbox). The resolved
  // pointers stay valid past the unlock: killed instances move to the
  // graveyard and are only reclaimed by later recovery/shutdown.
  {
    std::shared_lock topo(topo_mutex_);
    for (auto& g : groups) {
      const auto& slots = task_instances_[g.task];
      g.ti = (g.dest < slots.size() && slots[g.dest]) ? slots[g.dest].get()
                                                      : nullptr;
    }
  }
  for (auto& g : groups) {
    if (g.ti == nullptr) {
      // Destination lost between staging and flush. When buffering, the
      // upstream log already retains the items for replay; either way they
      // leave the in-flight count.
      AccountDone(g.items.size());
      continue;
    }
    if (fault_injector_ != nullptr) {
      // The upstream-backup log (RouteEmits) already holds the originals, so
      // a drop here models a lost network delivery that replay can restore.
      // Staged items were accounted in RouteEmits: settle the difference.
      auto eff = fault_injector_->ApplyToGroup(g.src_task, g.task, g.items);
      if (eff.dropped > 0) {
        AccountDone(eff.dropped);
      }
      if (eff.duplicated > 0) {
        AccountDelivered(eff.duplicated);
      }
      if (g.items.empty()) {
        continue;
      }
    }
    // Items crossing a node boundary are serialised to keep the location-
    // independence contract honest (§4.1).
    if (options_.serialize_cross_node && g.ti->node() != g.src_node) {
      for (auto& item : g.items) {
        item = SerializedRoundTrip(std::move(item));
      }
    }
    const size_t count = g.items.size();
    size_t accepted = g.ti->DeliverAll(std::move(g.items));
    if (accepted < count) {
      AccountDone(count - accepted);  // closed mailbox rejected the tail
    }
  }
  groups.clear();
  if (tl_staged.empty()) {
    tl_staged.swap(groups);  // hand the warmed capacity back
  }
}

void Deployment::DeliverTo(graph::TaskId task, uint32_t dest, DataItem item,
                           uint32_t src_node) {
  TaskInstance* ti = nullptr;
  {
    std::shared_lock topo(topo_mutex_);
    const auto& slots = task_instances_[task];
    if (dest >= slots.size() || !slots[dest]) {
      return;  // lost instance: upstream buffer retains the item for replay
    }
    ti = slots[dest].get();
  }
  // Items crossing a node boundary are serialised to keep the location-
  // independence contract honest (§4.1).
  if (options_.serialize_cross_node && ti->node() != src_node) {
    item = SerializedRoundTrip(std::move(item));
  }
  AccountDelivered(1);
  if (!ti->Deliver(std::move(item))) {
    // A closed mailbox rejected the item: release it through the same
    // accounting helper the success path uses.
    AccountDone(1);
  }
}

void Deployment::DeliverToSink(graph::TaskId task, const Tuple& tuple,
                               uint64_t user_tag) {
  SinkFn fn;
  {
    std::lock_guard<std::mutex> lock(sinks_mutex_);
    auto it = sinks_.find(task);
    if (it == sinks_.end()) {
      return;
    }
    fn = it->second;
  }
  fn(tuple, user_tag);
}

void Deployment::OnItemsDone(size_t count) {
  // Push everything this worker staged during the batch before releasing the
  // batch's own in-flight count — staged items were accounted at staging
  // time, so in_flight_ never dips to zero while they are pending.
  FlushStagedDeliveries();
  AccountDone(count);
}

double Deployment::NodeSpeed(uint32_t node) const {
  if (node < options_.node_speed.size()) {
    return options_.node_speed[node];
  }
  return 1.0;
}

uint32_t Deployment::NumInstances(graph::TaskId task) const {
  std::shared_lock topo(topo_mutex_);
  uint32_t alive = 0;
  for (const auto& ti : task_instances_[task]) {
    if (ti) {
      ++alive;
    }
  }
  return alive;
}

// --- Introspection -------------------------------------------------------------

uint64_t Deployment::TotalProcessed() const {
  std::shared_lock topo(topo_mutex_);
  uint64_t total = 0;
  for (const auto& slots : task_instances_) {
    for (const auto& ti : slots) {
      if (ti) {
        total += ti->ItemsProcessed();
      }
    }
  }
  return total;
}

size_t Deployment::TotalQueueDepth() const {
  std::shared_lock topo(topo_mutex_);
  size_t total = 0;
  for (const auto& slots : task_instances_) {
    for (const auto& ti : slots) {
      if (ti) {
        total += ti->QueueDepth();
      }
    }
  }
  return total;
}

size_t Deployment::QueueDepthOf(std::string_view task_name) const {
  auto id = sdg_.TaskByName(task_name);
  if (!id.ok()) {
    return 0;
  }
  std::shared_lock topo(topo_mutex_);
  size_t total = 0;
  for (const auto& ti : task_instances_[*id]) {
    if (ti) {
      total += ti->QueueDepth();
    }
  }
  return total;
}

uint64_t Deployment::ProcessedOf(std::string_view task_name) const {
  auto id = sdg_.TaskByName(task_name);
  if (!id.ok()) {
    return 0;
  }
  std::shared_lock topo(topo_mutex_);
  uint64_t total = 0;
  for (const auto& ti : task_instances_[*id]) {
    if (ti) {
      total += ti->ItemsProcessed();
    }
  }
  return total;
}

size_t Deployment::StateSizeBytes(std::string_view state_name) const {
  auto id = sdg_.StateByName(state_name);
  if (!id.ok()) {
    return 0;
  }
  std::shared_lock topo(topo_mutex_);
  size_t total = 0;
  for (const auto& inst : state_groups_[*id].instances) {
    if (inst) {
      total += inst->SizeBytes();
    }
  }
  return total;
}

state::StateBackend* Deployment::StateInstance(std::string_view state_name,
                                               uint32_t instance) {
  auto id = sdg_.StateByName(state_name);
  if (!id.ok()) {
    return nullptr;
  }
  std::shared_lock topo(topo_mutex_);
  auto& group = state_groups_[*id];
  if (instance >= group.instances.size()) {
    return nullptr;
  }
  return group.instances[instance].get();
}

uint32_t Deployment::NumStateInstances(std::string_view state_name) const {
  auto id = sdg_.StateByName(state_name);
  if (!id.ok()) {
    return 0;
  }
  std::shared_lock topo(topo_mutex_);
  return static_cast<uint32_t>(state_groups_[*id].instances.size());
}

uint32_t Deployment::NodeOfStateInstance(std::string_view state_name,
                                         uint32_t instance) const {
  auto id = sdg_.StateByName(state_name);
  if (!id.ok()) {
    return UINT32_MAX;
  }
  std::shared_lock topo(topo_mutex_);
  const auto& group = state_groups_[*id];
  if (instance >= group.instance_nodes.size() || !group.instances[instance]) {
    return UINT32_MAX;
  }
  return group.instance_nodes[instance];
}

uint32_t Deployment::NumInstancesOf(std::string_view task_name) const {
  auto id = sdg_.TaskByName(task_name);
  if (!id.ok()) {
    return 0;
  }
  return NumInstances(*id);
}

bool Deployment::NodeAlive(uint32_t node) const {
  std::shared_lock topo(topo_mutex_);
  return node < node_alive_.size() && node_alive_[node];
}

std::string Deployment::DescribeTopology() const {
  std::shared_lock topo(topo_mutex_);
  std::ostringstream os;
  for (uint32_t node = 0; node < options_.num_nodes; ++node) {
    os << "node " << node << (node_alive_[node] ? "" : " [DEAD]")
       << (node_straggler_[node] ? " [straggler]" : "");
    double speed = node < options_.node_speed.size()
                       ? options_.node_speed[node]
                       : 1.0;
    if (speed != 1.0) {
      os << " (speed " << speed << "x)";
    }
    os << "\n";
    for (const auto& group : state_groups_) {
      for (uint32_t j = 0; j < group.instances.size(); ++j) {
        if (group.instances[j] && group.instance_nodes[j] == node) {
          os << "  SE " << sdg_.state(group.state).name << "[" << j << "] "
             << group.instances[j]->EntryCount() << " entries, "
             << group.instances[j]->SizeBytes() << " bytes\n";
        }
      }
    }
    for (const auto& slots : task_instances_) {
      for (const auto& ti : slots) {
        if (ti && ti->node() == node) {
          os << "  TE " << ti->te().name << "[" << ti->instance_id() << "] "
             << "queued=" << ti->QueueDepth()
             << " processed=" << ti->ItemsProcessed() << "\n";
        }
      }
    }
  }
  return os.str();
}

// --- Scaling -------------------------------------------------------------------

uint32_t Deployment::PickLeastLoadedNode(bool avoid_stragglers) const {
  // Callers hold at least a shared topo lock.
  std::vector<size_t> load(options_.num_nodes, 0);
  for (const auto& slots : task_instances_) {
    for (const auto& ti : slots) {
      if (ti) {
        ++load[ti->node()];
      }
    }
  }
  auto least_loaded = [&](bool skip_stragglers) {
    uint32_t best = kNoNode;
    size_t best_load = SIZE_MAX;
    for (uint32_t n = 0; n < options_.num_nodes; ++n) {
      if (!node_alive_[n]) {
        continue;
      }
      if (skip_stragglers && node_straggler_[n]) {
        continue;
      }
      if (load[n] < best_load) {
        best = n;
        best_load = load[n];
      }
    }
    return best;
  };
  uint32_t best = least_loaded(avoid_stragglers);
  if (best == kNoNode && avoid_stragglers) {
    // Every alive node is flagged as a straggler: still balance by load
    // among them instead of dog-piling the first alive node (the previous
    // fallback), which was typically the straggler that triggered scaling.
    best = least_loaded(false);
  }
  return best;  // kNoNode when no node is alive at all
}

void Deployment::MarkNodeStraggler(uint32_t node) {
  std::unique_lock topo(topo_mutex_);
  if (node < node_straggler_.size()) {
    node_straggler_[node] = true;
  }
}

uint32_t Deployment::NodeOfTaskInstance(std::string_view task_name,
                                        uint32_t instance) const {
  auto task = sdg_.TaskByName(task_name);
  if (!task.ok()) {
    return kNoNode;
  }
  std::shared_lock topo(topo_mutex_);
  const auto& slots = task_instances_[*task];
  if (instance >= slots.size() || !slots[instance]) {
    return kNoNode;
  }
  return slots[instance]->node();
}

Status Deployment::AddTaskInstance(std::string_view task_name) {
  SDG_ASSIGN_OR_RETURN(graph::TaskId task, sdg_.TaskByName(task_name));
  const auto& te = sdg_.task(task);

  // Pause ingest and wait for in-flight items so no item is routed under the
  // old partitioning while we re-shard.
  std::unique_lock ingest(ingest_gate_);
  Drain();
  std::unique_lock topo(topo_mutex_);

  if (!te.state.has_value()) {
    auto& slots = task_instances_[task];
    uint32_t j = static_cast<uint32_t>(slots.size());
    uint32_t node = PickLeastLoadedNode(/*avoid_stragglers=*/true);
    if (node == kNoNode) {
      return UnavailableError("no alive node to place the new instance on");
    }
    slots.push_back(std::make_unique<TaskInstance>(
        te, j, node, nullptr, this, executor_, options_.mailbox_capacity,
        options_.max_batch));
    slots.back()->Start();
    return Status::Ok();
  }

  StateGroup& group = state_groups_[*te.state];
  const auto& se = sdg_.state(group.state);
  uint32_t k = static_cast<uint32_t>(group.instances.size());
  for (const auto& inst : group.instances) {
    if (!inst) {
      return FailedPreconditionError(
          "cannot scale a group with failed instances; recover first");
    }
    if (inst->checkpoint_active()) {
      return FailedPreconditionError(
          "cannot scale during an active checkpoint of SE '" + se.name + "'");
    }
  }

  uint32_t node = PickLeastLoadedNode(/*avoid_stragglers=*/true);
  if (node == kNoNode) {
    return UnavailableError("no alive node to place the new instance on");
  }
  auto fresh = MakeStateBackend(se);

  if (se.distribution == graph::StateDistribution::kPartitioned) {
    // Re-shard every existing instance under the new modulus k+1: records
    // whose partition changes move to their new owner. Records just moved
    // into instance j already satisfy hash % (k+1) == j, so later
    // extractions cannot move them twice.
    group.instances.push_back(std::move(fresh));
    group.instance_nodes.push_back(node);
    uint32_t new_k = k + 1;
    for (uint32_t i = 0; i < new_k; ++i) {
      for (uint32_t j = 0; j < new_k; ++j) {
        if (i == j || !group.instances[i]) {
          continue;
        }
        // Collect the moving records first, restore after ExtractPartition
        // returns: restoring from inside the extraction callback would hold
        // two SE-instance locks at once, in both (i, j) orders across the
        // pairwise loop — a lock-order inversion.
        std::vector<std::vector<uint8_t>> moving;
        Status s = group.instances[i]->ExtractPartition(
            j, new_k, [&moving](uint64_t, const uint8_t* p, size_t n) {
              moving.emplace_back(p, p + n);
            });
        SDG_RETURN_IF_ERROR(s);
        // Stripe-locked backends take concurrent RestoreRecord calls, so a
        // large migration is ingested by a stride-per-slot executor fan-out.
        const uint32_t fanout =
            std::min<uint32_t>(CkptParallelism(options_.fault_tolerance),
                               static_cast<uint32_t>(moving.size() / 64));
        if (fanout > 1) {
          std::mutex status_mutex;
          Status first_error;
          state::StateBackend* target = group.instances[j].get();
          const size_t stride = (moving.size() + fanout - 1) / fanout;
          executor_->Parallel(
              fanout,
              [&moving, target, stride, &status_mutex, &first_error](size_t t) {
                const size_t begin = t * stride;
                const size_t end = std::min(moving.size(), begin + stride);
                for (size_t r = begin; r < end; ++r) {
                  Status rs = target->RestoreRecord(moving[r].data(),
                                                    moving[r].size());
                  if (!rs.ok()) {
                    std::lock_guard<std::mutex> lock(status_mutex);
                    if (first_error.ok()) {
                      first_error = rs;
                    }
                    return;
                  }
                }
              },
              fanout);
          SDG_CHECK(first_error.ok())
              << "re-shard restore failed: " << first_error.ToString();
        } else {
          for (const auto& rec : moving) {
            Status rs =
                group.instances[j]->RestoreRecord(rec.data(), rec.size());
            SDG_CHECK(rs.ok()) << "re-shard restore failed: " << rs.ToString();
          }
        }
      }
    }
  } else {
    // Partial (or single) SE: a new, independent replica starting empty; its
    // contributions merge with the others at the next global access (§3.2).
    group.instances.push_back(std::move(fresh));
    group.instance_nodes.push_back(node);
  }

  // Every accessor TE gains a colocated instance bound to the new SE
  // instance.
  uint32_t j = k;
  for (graph::TaskId accessor : group.accessors) {
    auto& slots = task_instances_[accessor];
    SDG_CHECK(slots.size() == j) << "group instance counts diverged";
    slots.push_back(std::make_unique<TaskInstance>(
        sdg_.task(accessor), j, node, group.instances[j].get(), this,
        executor_, options_.mailbox_capacity, options_.max_batch));
    slots.back()->Start();
  }
  return Status::Ok();
}

// --- Checkpointing -------------------------------------------------------------

Status Deployment::CheckpointNode(uint32_t node) {
  if (options_.fault_tolerance.mode == FtMode::kNone) {
    return FailedPreconditionError("fault tolerance disabled");
  }
  if (node >= options_.num_nodes) {
    return InvalidArgumentError("unknown node");
  }
  std::lock_guard<std::mutex> ckpt_lock(*node_ckpt_mutex_[node]);
  return CheckpointNodeLocked(node);
}

Status Deployment::CheckpointNodeLocked(uint32_t node) {
  const FtMode mode = options_.fault_tolerance.mode;
  const auto& ft = options_.fault_tolerance;
  const uint32_t num_chunks = std::max<uint32_t>(1, ft.chunks_per_state);
  Stopwatch ckpt_timer;

  checkpoint::CheckpointMeta meta;
  struct CapturedState {
    state::StateBackend* backend = nullptr;
    std::string name;
  };
  struct CaptureUnit {
    state::StateBackend* backend = nullptr;  // nullptr for stateless tasks
    graph::StateId state = 0;
    uint32_t instance = 0;
    std::vector<TaskInstance*> accessors;
  };
  std::vector<CapturedState> captured_states;
  std::vector<TaskInstance*> captured_tasks;

  // Pass 1 (topology lock only): enumerate what lives on the node. Pointers
  // stay valid after release — killed objects are parked, not destroyed.
  std::vector<CaptureUnit> units;
  {
    std::shared_lock topo(topo_mutex_);
    if (!node_alive_[node]) {
      return FailedPreconditionError("node is not alive");
    }
    meta.epoch = ++node_epoch_[node];

    for (auto& group : state_groups_) {
      for (uint32_t j = 0; j < group.instances.size(); ++j) {
        if (!group.instances[j] || group.instance_nodes[j] != node) {
          continue;
        }
        CaptureUnit unit;
        unit.backend = group.instances[j].get();
        unit.state = group.state;
        unit.instance = j;
        for (graph::TaskId a : group.accessors) {
          auto& slots = task_instances_[a];
          if (j < slots.size() && slots[j]) {
            unit.accessors.push_back(slots[j].get());
          }
        }
        units.push_back(std::move(unit));
      }
    }
    for (const auto& te : sdg_.tasks()) {
      if (te.state.has_value()) {
        continue;
      }
      for (auto& ti : task_instances_[te.id]) {
        if (ti && ti->node() == node) {
          CaptureUnit unit;
          unit.accessors.push_back(ti.get());
          units.push_back(std::move(unit));
        }
      }
    }
  }

  // Pass 2 (no topology lock held): per unit, briefly pause its accessors to
  // flag the SE dirty and capture a consistent (SE, vector-timestamp, clock)
  // cut — the paper's "minimal interruption" point (§5 step 1/2).
  for (auto& unit : units) {
    std::vector<std::timed_mutex*> locks;
    locks.reserve(unit.accessors.size());
    for (auto* ti : unit.accessors) {
      locks.push_back(&ti->step_mutex());
    }
    MultiLock pause(std::move(locks));
    if (unit.backend != nullptr) {
      unit.backend->BeginCheckpoint();
      checkpoint::StateInstanceMeta sm;
      sm.state = unit.state;
      sm.instance = unit.instance;
      sm.num_chunks = num_chunks;
      sm.record_count = unit.backend->EntryCount();
      meta.states.push_back(sm);
      captured_states.push_back(
          {unit.backend, StateChunkName(unit.state, unit.instance)});
    }
    for (auto* ti : unit.accessors) {
      checkpoint::TaskInstanceMeta tm;
      tm.task = ti->task_id();
      tm.instance = ti->instance_id();
      tm.emit_clock = ti->emit_clock().Peek();
      for (const auto& [src, ts] : ti->LastSeenSnapshot()) {
        tm.last_seen.push_back({src.task, src.instance, ts});
      }
      meta.tasks.push_back(std::move(tm));
      captured_tasks.push_back(ti);
    }
  }

  // Decide full base vs delta per captured SE, now that BeginCheckpoint has
  // frozen each backend's change set. meta.states[i] corresponds to
  // captured_states[i] (both were pushed per backend unit in pass 2). A delta
  // needs a committed chain to extend (headed by a full base, shorter than the
  // interval cap) and a backend with a frozen baseline; anything else writes a
  // fresh full base. ckpt_chains_[node] is guarded by node_ckpt_mutex_[node],
  // held by our caller.
  auto& chains = ckpt_chains_[node];
  for (size_t i = 0; i < captured_states.size(); ++i) {
    auto& sm = meta.states[i];
    auto& cs = captured_states[i];
    auto chain_it = chains.find(cs.name);
    const bool use_delta =
        ft.delta_epoch_interval > 0 && chain_it != chains.end() &&
        !chain_it->second.empty() &&
        chain_it->second.front().kind == checkpoint::EpochKind::kFull &&
        chain_it->second.size() < ft.delta_epoch_interval &&
        cs.backend->DeltaReady();
    sm.kind = use_delta ? checkpoint::EpochKind::kDelta
                        : checkpoint::EpochKind::kFull;
    if (use_delta) {
      sm.chain = chain_it->second;
    }
    sm.chain.push_back({meta.epoch, num_chunks, sm.kind});
    sm.base_epoch = sm.chain.front().epoch;
  }

  // Serialise + persist. For the synchronous modes, processing is paused for
  // this entire phase; for async-local the dirty overlays absorb writes.
  // Streaming hands fixed-size segments to the backup store as records are
  // serialised (bounded memory, I/O overlapped); the batch path materialises
  // every chunk first (baseline).
  auto persist = [&]() -> Status {
    if (fault_injector_ != nullptr) {
      SDG_RETURN_IF_ERROR(
          fault_injector_->CheckCrash("checkpoint.persist", CrashPhase::kBefore));
    }
    for (size_t i = 0; i < captured_states.size(); ++i) {
      auto& cs = captured_states[i];
      const bool use_delta =
          meta.states[i].kind == checkpoint::EpochKind::kDelta;
      uint64_t records = 0;
      uint64_t tombstones = 0;
      uint64_t bytes = 0;
      if (ft.streaming_checkpoint) {
        checkpoint::ChunkStreamWriter::Options wo;
        wo.num_chunks = num_chunks;
        wo.codec = ft.chunk_codec;
        wo.delta = use_delta;
        wo.segment_bytes = ft.ckpt_segment_bytes;
        // Fan serialisation across the backend's shards: each stripe's
        // records are disjoint and the writer's Add is thread-safe when
        // concurrent, so the shards feed the same segment streams while the
        // store overlaps I/O. Unsharded backends report one shard and stay
        // serial.
        const uint32_t nshards = cs.backend->SerializeShardCount();
        const uint32_t fanout = std::min(CkptParallelism(ft), nshards);
        wo.concurrent = fanout > 1;
        checkpoint::ChunkStreamWriter writer(*store_, node, meta.epoch,
                                             cs.name, wo);
        SDG_RETURN_IF_ERROR(writer.Begin());
        if (fanout > 1) {
          auto sink = writer.AsSink();
          auto delta_sink = writer.AsDeltaSink();
          executor_->Parallel(
              nshards,
              [&](size_t s) {
                if (use_delta) {
                  cs.backend->SerializeShardDirtyRecords(
                      static_cast<uint32_t>(s), delta_sink);
                } else {
                  cs.backend->SerializeShardRecords(static_cast<uint32_t>(s),
                                                    sink);
                }
              },
              fanout);
        } else if (use_delta) {
          cs.backend->SerializeDirtyRecords(writer.AsDeltaSink());
        } else {
          cs.backend->SerializeRecords(writer.AsSink());
        }
        SDG_ASSIGN_OR_RETURN(auto wstats, writer.Finish());
        records = wstats.records;
        tombstones = wstats.tombstones;
        bytes = wstats.bytes;
      } else {
        state::ChunkOptions copts;
        if (use_delta || ft.chunk_codec != state::kChunkCodecNone) {
          copts.version = state::kChunkVersion2;
          copts.codec = ft.chunk_codec;
          copts.delta = use_delta;
        }
        std::vector<std::vector<uint8_t>> chunks;
        if (use_delta) {
          std::vector<state::ChunkBuilder> builders;
          builders.reserve(num_chunks);
          for (uint32_t c = 0; c < num_chunks; ++c) {
            builders.emplace_back(cs.name, copts);
          }
          cs.backend->SerializeDirtyRecords(
              [&](uint64_t key_hash, const uint8_t* payload, size_t size,
                  bool tombstone) {
                auto& b = builders[key_hash % num_chunks];
                if (tombstone) {
                  b.AddTombstone(key_hash, payload, size);
                  ++tombstones;
                } else {
                  b.AddRecord(key_hash, payload, size);
                }
                ++records;
              });
          chunks.reserve(num_chunks);
          for (auto& b : builders) {
            chunks.push_back(std::move(b).Finish());
          }
        } else {
          chunks =
              state::SerializeToChunks(*cs.backend, cs.name, num_chunks, copts);
          records = cs.backend->EntryCount();
        }
        for (const auto& c : chunks) {
          bytes += c.size();
        }
        SDG_RETURN_IF_ERROR(
            store_->WriteChunks(node, meta.epoch, cs.name, chunks));
      }
      ckpt_bytes_.Increment(bytes);
      ckpt_tombstones_.Increment(tombstones);
      if (use_delta) {
        ckpt_delta_se_.Increment();
        ckpt_records_delta_.Increment(records);
      } else {
        ckpt_full_se_.Increment();
        ckpt_records_full_.Increment(records);
      }
    }
    for (auto* ti : captured_tasks) {
      std::vector<uint8_t> blob = SerializeBuffers(*ti);
      ckpt_bytes_.Increment(blob.size());
      SDG_RETURN_IF_ERROR(store_->WriteChunks(
          node, meta.epoch, BufferChunkName(ti->task_id(), ti->instance_id()),
          {blob}));
    }
    return Status::Ok();
  };

  Status persist_status;
  if (mode == FtMode::kSyncLocal || mode == FtMode::kSyncGlobal) {
    // Stop-the-node (SEEP) / stop-the-world (Naiad): hold every relevant
    // step lock for the full serialise+write. Paused slices time out on
    // try_lock_for and yield their pool worker rather than wedging the pool.
    std::vector<std::timed_mutex*> locks;
    {
      std::shared_lock topo(topo_mutex_);
      for (auto& slots : task_instances_) {
        for (auto& ti : slots) {
          if (!ti) {
            continue;
          }
          if (mode == FtMode::kSyncGlobal || ti->node() == node) {
            locks.push_back(&ti->step_mutex());
          }
        }
      }
    }
    MultiLock pause(std::move(locks));
    persist_status = persist();
  } else {
    persist_status = persist();
  }

  // Consolidate dirty overlays (brief per-SE lock inside EndCheckpoint).
  uint64_t consolidated = 0;
  for (auto& cs : captured_states) {
    consolidated += cs.backend->EndCheckpoint();
  }
  ckpt_overlay_.Increment(consolidated);

  Status final_status = persist_status;
  if (final_status.ok() && fault_injector_ != nullptr) {
    // Fires between persist and the meta write: state chunks are durable but
    // the completeness marker is missing, so the checkpoint never counts.
    final_status =
        fault_injector_->CheckCrash("checkpoint.persist", CrashPhase::kAfter);
  }
  if (final_status.ok()) {
    final_status = store_->WriteMeta(node, meta.epoch, meta);
  }
  // Epoch durability is decided: commit the frozen change sets as the new
  // delta baseline, or merge them forward so the next epoch's delta is a
  // superset (restore-equivalent, which also makes an uncertain WriteMeta —
  // durable but reported failed — safe). Must run on every path.
  for (auto& cs : captured_states) {
    cs.backend->ResolveEpoch(final_status.ok());
  }
  SDG_RETURN_IF_ERROR(final_status);
  for (size_t i = 0; i < captured_states.size(); ++i) {
    chains[captured_states[i].name] = meta.states[i].chain;
  }

  // Acknowledge upstream buffers: everything at or below the checkpointed
  // vector timestamp is now recoverable from this checkpoint (§5 trimming).
  {
    std::shared_lock topo(topo_mutex_);
    for (const auto& tm : meta.tasks) {
      for (const auto& seen : tm.last_seen) {
        if (seen.task == kExternalTask) {
          auto it = external_buffers_.find(seen.instance);
          if (it != external_buffers_.end()) {
            it->second->Ack(tm.instance, seen.ts);
          }
          continue;
        }
        if (seen.task >= task_instances_.size()) {
          // Remote-origin source ids (kRemoteSourceTask and friends) have no
          // local upstream buffer — the sending process trims its own log
          // from the watermark acks the channel server issues.
          continue;
        }
        auto& slots = task_instances_[seen.task];
        if (seen.instance < slots.size() && slots[seen.instance]) {
          slots[seen.instance]->BufferFor(tm.task).Ack(tm.instance, seen.ts);
        }
      }
    }
  }
  // Epochs below the oldest chain base are unreachable from any chain in
  // this meta and safe to drop.
  store_->PruneBefore(node, meta.MinChainEpoch());
  checkpoints_done_.Increment();
  const uint64_t us =
      static_cast<uint64_t>(ckpt_timer.ElapsedSeconds() * 1e6);
  ckpt_last_us_.store(us, std::memory_order_relaxed);
  ckpt_total_us_.Increment(us);
  return Status::Ok();
}

Deployment::CheckpointStats Deployment::CheckpointStatsSnapshot() const {
  CheckpointStats s;
  s.checkpoints = checkpoints_done_.value();
  s.full_serializations = ckpt_full_se_.value();
  s.delta_serializations = ckpt_delta_se_.value();
  s.records_full = ckpt_records_full_.value();
  s.records_delta = ckpt_records_delta_.value();
  s.tombstones = ckpt_tombstones_.value();
  s.bytes_written = ckpt_bytes_.value();
  s.overlay_consolidated = ckpt_overlay_.value();
  s.last_duration_us = ckpt_last_us_.load(std::memory_order_relaxed);
  s.total_duration_us = ckpt_total_us_.value();
  return s;
}

state::SpillStats Deployment::SpillStatsSnapshot() const {
  std::shared_lock topo(topo_mutex_);
  state::SpillStats total;
  for (const auto& group : state_groups_) {
    for (const auto& inst : group.instances) {
      if (!inst) {
        continue;
      }
      const state::SpillStats s = inst->GetSpillStats();
      total.evictions += s.evictions;
      total.fault_ins += s.fault_ins;
      total.cold_lookups += s.cold_lookups;
      total.spilled_stripes += s.spilled_stripes;
      total.spilled_bytes += s.spilled_bytes;
      total.resident_bytes += s.resident_bytes;
    }
  }
  return total;
}

Status Deployment::CheckpointAllNodes() {
  for (uint32_t n = 0; n < options_.num_nodes; ++n) {
    if (NodeAlive(n)) {
      SDG_RETURN_IF_ERROR(CheckpointNode(n));
    }
  }
  return Status::Ok();
}

void Deployment::CheckpointDriverLoop() {
  const double interval = options_.fault_tolerance.checkpoint_interval_s;
  Stopwatch since_last;
  while (services_running_) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    if (since_last.ElapsedSeconds() < interval) {
      continue;
    }
    since_last.Restart();
    for (uint32_t n = 0; n < options_.num_nodes && services_running_; ++n) {
      if (NodeAlive(n)) {
        Status s = CheckpointNode(n);
        if (!s.ok()) {
          SDG_LOG(kWarning) << "periodic checkpoint of node " << n
                            << " failed: " << s.ToString();
        }
      }
    }
    const CheckpointStats st = CheckpointStatsSnapshot();
    SDG_LOG(kInfo) << "checkpoint sweep done: " << st.checkpoints
                   << " checkpoints, " << st.full_serializations << " full / "
                   << st.delta_serializations << " delta serialisations, "
                   << st.bytes_written << " bytes written, "
                   << st.records_full << "+" << st.records_delta
                   << " records (full+delta), " << st.tombstones
                   << " tombstones, " << st.overlay_consolidated
                   << " overlay entries consolidated, last "
                   << st.last_duration_us << "us";
    const state::SpillStats sp = SpillStatsSnapshot();
    if (sp.evictions > 0 || sp.spilled_stripes > 0) {
      SDG_LOG(kInfo) << "cold tier: " << sp.spilled_stripes
                     << " stripes spilled (" << sp.spilled_bytes
                     << " bytes), " << sp.resident_bytes << " bytes resident, "
                     << sp.evictions << " evictions, " << sp.fault_ins
                     << " fault-ins, " << sp.cold_lookups << " cold lookups";
    }
    SDG_LOG(kInfo) << "executor: " << executor_->StatsSnapshot().ToString();
  }
}

// --- Output-buffer (de)serialisation -------------------------------------------

std::vector<uint8_t> Deployment::SerializeBuffers(TaskInstance& ti) {
  BinaryWriter w;
  std::vector<std::pair<graph::TaskId, std::vector<OutputBuffer::Entry>>> all;
  ti.ForEachBuffer([&](graph::TaskId task, OutputBuffer& buffer) {
    all.emplace_back(task, buffer.Snapshot());
  });
  w.Write<uint32_t>(static_cast<uint32_t>(all.size()));
  for (const auto& [task, entries] : all) {
    w.Write<uint32_t>(task);
    w.Write<uint64_t>(entries.size());
    for (const auto& e : entries) {
      w.Write<uint32_t>(e.dest_instance);
      e.item.Serialize(w);
    }
  }
  return std::move(w).TakeBuffer();
}

Status Deployment::RestoreBuffers(TaskInstance& ti,
                                  const std::vector<uint8_t>& blob) {
  BinaryReader r(blob);
  SDG_ASSIGN_OR_RETURN(uint32_t num_buffers, r.Read<uint32_t>());
  for (uint32_t b = 0; b < num_buffers; ++b) {
    SDG_ASSIGN_OR_RETURN(uint32_t task, r.Read<uint32_t>());
    SDG_ASSIGN_OR_RETURN(uint64_t count, r.Read<uint64_t>());
    OutputBuffer& buffer = ti.BufferFor(task);
    for (uint64_t i = 0; i < count; ++i) {
      SDG_ASSIGN_OR_RETURN(uint32_t dest, r.Read<uint32_t>());
      SDG_ASSIGN_OR_RETURN(DataItem item, DataItem::Deserialize(r));
      buffer.RestoreEntry(item, dest);
    }
  }
  return Status::Ok();
}

// --- Failure & recovery ----------------------------------------------------------

Status Deployment::KillNode(uint32_t node) {
  if (node >= options_.num_nodes) {
    return InvalidArgumentError("unknown node");
  }
  std::unique_lock topo(topo_mutex_);
  if (!node_alive_[node]) {
    return FailedPreconditionError("node already dead");
  }
  node_alive_[node] = false;
  size_t items_lost = 0;
  for (auto& slots : task_instances_) {
    for (auto& ti : slots) {
      if (ti && ti->node() == node) {
        // Drops queued items; the worker exits asynchronously. The dropped
        // items were counted as in flight when delivered and will never reach
        // OnItemsDone, so they are released here — otherwise a concurrent or
        // later Drain() would wait on them forever.
        items_lost += ti->Abort();
        dead_instances_.push_back(std::move(ti));
      }
    }
  }
  for (auto& group : state_groups_) {
    for (uint32_t j = 0; j < group.instances.size(); ++j) {
      if (group.instances[j] && group.instance_nodes[j] == node) {
        // The in-memory state is lost to the dataflow; the object itself is
        // parked so concurrent raw-pointer holders (e.g. a checkpoint in
        // flight) stay valid.
        dead_states_.push_back(std::move(group.instances[j]));
      }
    }
  }
  if (items_lost > 0) {
    AccountDone(items_lost);
  }
  return Status::Ok();
}

Status Deployment::RecoverNode(uint32_t failed,
                               const std::vector<uint32_t>& replacements) {
  if (store_ == nullptr) {
    return FailedPreconditionError("fault tolerance disabled");
  }
  if (replacements.empty()) {
    return InvalidArgumentError("need at least one replacement node");
  }
  if (failed >= options_.num_nodes || NodeAlive(failed)) {
    // Recovering a live node would install a second copy of every one of its
    // task instances next to the running ones.
    return FailedPreconditionError("node to recover must exist and be dead");
  }
  for (uint32_t r : replacements) {
    if (r == failed) {
      return InvalidArgumentError(
          "replacement list contains the failed node itself");
    }
    if (r >= options_.num_nodes || !NodeAlive(r)) {
      return InvalidArgumentError("replacement node not alive");
    }
  }
  const uint32_t n = static_cast<uint32_t>(replacements.size());

  // Exclude a still-running checkpoint of the failed node: its raw pointers
  // into the graveyard must stay valid while it persists.
  std::lock_guard<std::mutex> ckpt_lock(*node_ckpt_mutex_[failed]);

  if (fault_injector_ != nullptr) {
    // Fires before any checkpoint data is read; nothing has been mutated, so
    // a failed recovery here can simply be retried.
    SDG_RETURN_IF_ERROR(
        fault_injector_->CheckCrash("restore.meta", CrashPhase::kBefore));
  }
  SDG_ASSIGN_OR_RETURN(uint64_t epoch, store_->LatestEpoch(failed));
  SDG_ASSIGN_OR_RETURN(checkpoint::CheckpointMeta meta,
                       store_->ReadMeta(failed, epoch));

  // Phase 1 (off the lock): fetch chunks from the m backup directories in
  // parallel, split n ways, and rebuild backends + instances.
  struct RestoredState {
    graph::StateId state = 0;
    uint32_t old_instance = 0;
    std::vector<std::unique_ptr<state::StateBackend>> backends;  // size n
  };
  std::vector<RestoredState> restored_states;

  for (const auto& sm : meta.states) {
    RestoredState rs;
    rs.state = sm.state;
    rs.old_instance = sm.instance;
    const auto& se = sdg_.state(sm.state);
    for (uint32_t i = 0; i < n; ++i) {
      rs.backends.push_back(MakeStateBackend(se));
    }
    const std::string name = StateChunkName(sm.state, sm.instance);
    // Per-node ingest pacing: each recovering node can only absorb restore
    // traffic at a bounded rate, so splitting across n nodes divides the
    // per-node ingest time (the sleeps below overlap across threads).
    const uint64_t ingest_bw =
        options_.fault_tolerance.recovery_ingest_bytes_per_sec;
    auto ingest_throttle = [ingest_bw](size_t bytes) {
      if (ingest_bw > 0) {
        std::this_thread::sleep_for(std::chrono::nanoseconds(
            static_cast<int64_t>(1e9 * static_cast<double>(bytes) /
                                 static_cast<double>(ingest_bw))));
      }
    };
    // Apply the base+delta chain strictly in order: the full base first, then
    // each delta epoch's changed records and tombstones on top. v1 metas
    // deserialize with a synthesized single-link full chain, so this loop is
    // the only restore path. The per-link barrier (pool.Wait) keeps later
    // epochs from overtaking earlier ones.
    for (const auto& link : sm.chain) {
      SDG_ASSIGN_OR_RETURN(
          auto chunks,
          store_->ReadChunks(failed, link.epoch, name, link.num_chunks));
      if (n == 1) {
        // Plain 1-to-1 (or m-to-1) restore. Stripe-locked backends accept
        // concurrent RestoreChunk calls (records route to per-stripe locks),
        // so one link's chunks are ingested in parallel; the per-link barrier
        // still keeps delta epochs ordered.
        const uint32_t fanout =
            std::min<uint32_t>(CkptParallelism(options_.fault_tolerance),
                               static_cast<uint32_t>(chunks.size()));
        if (fanout > 1) {
          std::mutex status_mutex;
          Status first_error;
          state::StateBackend* target = rs.backends[0].get();
          executor_->Parallel(
              chunks.size(),
              [&chunks, target, &status_mutex, &first_error,
               &ingest_throttle](size_t c) {
                ingest_throttle(chunks[c].size());
                Status s = state::RestoreChunk(*target, chunks[c]);
                if (!s.ok()) {
                  std::lock_guard<std::mutex> lock(status_mutex);
                  if (first_error.ok()) {
                    first_error = s;
                  }
                }
              },
              fanout);
          SDG_RETURN_IF_ERROR(first_error);
        } else {
          for (const auto& chunk : chunks) {
            ingest_throttle(chunk.size());
            SDG_RETURN_IF_ERROR(state::RestoreChunk(*rs.backends[0], chunk));
          }
        }
      } else {
        // Step R1/R2 of Fig. 4: split each chunk into n partitions and
        // reconstruct the n new instances in parallel.
        std::mutex status_mutex;
        Status first_error;
        for (const auto& chunk : chunks) {
          SDG_ASSIGN_OR_RETURN(auto parts, state::SplitChunk(chunk, n));
          executor_->Parallel(
              n,
              [&parts, &rs, &status_mutex, &first_error,
               &ingest_throttle](size_t i) {
                ingest_throttle(parts[i].size());
                Status s = state::RestoreChunk(*rs.backends[i], parts[i]);
                if (!s.ok()) {
                  std::lock_guard<std::mutex> lock(status_mutex);
                  if (first_error.ok()) {
                    first_error = s;
                  }
                }
              },
              n);
        }
        SDG_RETURN_IF_ERROR(first_error);
      }
    }
    restored_states.push_back(std::move(rs));
  }

  // Phase 2: install under the topology lock.
  if (fault_injector_ != nullptr) {
    // Fires after every chunk was read but before the topology is mutated:
    // the restore work is wasted, the deployment is untouched, a retry works.
    SDG_RETURN_IF_ERROR(
        fault_injector_->CheckCrash("restore.install", CrashPhase::kBefore));
  }
  std::vector<TaskInstance*> new_instances;
  std::set<graph::TaskId> split_tasks;  // re-instantiated n-way (old dest = 0)
  {
    std::unique_lock topo(topo_mutex_);

    for (auto& rs : restored_states) {
      StateGroup& group = state_groups_[rs.state];
      if (n == 1) {
        group.instances[rs.old_instance] = std::move(rs.backends[0]);
        group.instance_nodes[rs.old_instance] = replacements[0];
      } else {
        if (group.instances.size() != 1) {
          return UnimplementedError(
              "n-way split recovery requires a single-instance SE");
        }
        group.instances.clear();
        group.instance_nodes.clear();
        for (uint32_t i = 0; i < n; ++i) {
          group.instances.push_back(std::move(rs.backends[i]));
          group.instance_nodes.push_back(replacements[i]);
        }
      }
    }

    for (const auto& tm : meta.tasks) {
      const auto& te = sdg_.task(tm.task);
      auto& slots = task_instances_[tm.task];
      std::map<SourceId, uint64_t> seen;
      for (const auto& s : tm.last_seen) {
        seen[SourceId{s.task, s.instance}] = s.ts;
      }

      uint32_t copies = 1;
      if (te.state.has_value() &&
          state_groups_[*te.state].instances.size() == n && n > 1) {
        copies = n;  // accessor of a split SE is re-instantiated n-way
        split_tasks.insert(tm.task);
        slots.clear();
        slots.resize(n);
      }
      for (uint32_t c = 0; c < copies; ++c) {
        uint32_t inst = copies == 1 ? tm.instance : c;
        uint32_t node = replacements[c % replacements.size()];
        state::StateBackend* backend = nullptr;
        if (te.state.has_value()) {
          backend = state_groups_[*te.state].instances[inst].get();
        }
        if (inst >= slots.size()) {
          slots.resize(inst + 1);
        }
        slots[inst] = std::make_unique<TaskInstance>(
            te, inst, node, backend, this, executor_,
            options_.mailbox_capacity, options_.max_batch);
        // tm.emit_clock is the checkpointed Peek() — the next ts to issue.
        // ResumeAt (not AdvanceTo) so re-processed inputs re-issue the same
        // timestamps and stay inside downstream dedup watermarks.
        slots[inst]->emit_clock().ResumeAt(tm.emit_clock);
        // Chaos-debug trace (docs/testing.md) — marks installs so a
        // SDG_DEBUG_TASK item trace can be segmented by recovery epoch.
        static const char* const dbg = getenv("SDG_DEBUG_TASK");
        if (dbg != nullptr && te.name == dbg) {
          fprintf(stderr, "DBG RESTORE %s inst=%u node=%u clock=%llu\n",
                  te.name.c_str(), inst, node,
                  (unsigned long long)tm.emit_clock);
        }
        slots[inst]->RestoreLastSeen(seen);
        new_instances.push_back(slots[inst].get());
      }
      // Restore this instance's output buffers (for downstream replay).
      auto blob = store_->ReadChunks(failed, epoch,
                                     BufferChunkName(tm.task, tm.instance), 1);
      if (blob.ok() && !blob->empty()) {
        SDG_RETURN_IF_ERROR(RestoreBuffers(*slots[copies == 1 ? tm.instance : 0],
                                           (*blob)[0]));
      }
    }
    // Note: the graveyard (dead_instances_/dead_states_) is reclaimed only at
    // shutdown — an in-flight checkpoint may still hold raw pointers into it.
  }

  for (auto* ti : new_instances) {
    ti->Start();
  }

  // Phase 3: replay. First re-send the recovered node's own buffered outputs
  // (downstream dedups by timestamp), then ask upstreams to replay inputs
  // past the checkpoint's vector timestamp. The whole phase is idempotent —
  // every replayed item carries replayed=true and dedups by timestamp — which
  // the "replay.repeat" crash point exercises by running it twice.
  auto run_replay = [&]() {
  for (auto* ti : new_instances) {
    // Snapshot under the buffer lock, deliver after: DeliverTo takes the
    // topology lock, which elsewhere (RestoreBuffers under the exclusive
    // scope above) is held while buffer locks are taken — delivering from
    // inside ForEachBuffer would invert that order.
    std::vector<std::pair<graph::TaskId, std::vector<OutputBuffer::Entry>>>
        logged;
    ti->ForEachBuffer([&](graph::TaskId downstream, OutputBuffer& buffer) {
      logged.emplace_back(downstream, buffer.Snapshot());
    });
    for (auto& [downstream, entries] : logged) {
      for (auto& entry : entries) {
        DataItem item = std::move(entry.item);
        item.replayed = true;
        DeliverTo(downstream, entry.dest_instance, std::move(item), UINT32_MAX);
      }
    }
  }

  for (auto* ti : new_instances) {
    graph::TaskId t = ti->task_id();
    const auto& te = sdg_.task(t);
    const bool split = split_tasks.count(t) > 0;
    // Items for a split task were originally destined to the single old
    // instance 0; re-dispatch them under the new partitioning. For 1:1
    // recovery the recorded destination is exact.
    const uint32_t old_dest = split ? 0 : ti->instance_id();

    auto replay_to_self = [&](const DataItem& item, int key_field) {
      DataItem replay = item;
      replay.replayed = true;
      if (split && te.access == graph::AccessMode::kPartitioned &&
          key_field >= 0) {
        uint32_t count = NumInstances(t);
        uint32_t dest =
            count == 0
                ? 0
                : static_cast<uint32_t>(
                      replay.payload[static_cast<size_t>(key_field)].Hash() %
                      count);
        if (dest != ti->instance_id()) {
          return;  // another new instance replays it
        }
      } else if (split && ti->instance_id() != 0) {
        // Non-partitioned access after a split: instance 0 inherits the
        // stream (others start fresh).
        return;
      }
      DeliverTo(t, ti->instance_id(), std::move(replay), UINT32_MAX);
    };

    // External replay for entry TEs.
    if (te.is_entry) {
      std::shared_lock topo(topo_mutex_);
      auto it = external_buffers_.find(t);
      if (it != external_buffers_.end()) {
        uint64_t from_ts = ti->LastSeenFrom(SourceId{kExternalTask, t});
        auto items = it->second->ItemsAfter(old_dest, from_ts);
        topo.unlock();
        for (auto& item : items) {
          replay_to_self(item, te.entry_key_field);
        }
      }
    }
    // Upstream TE replay.
    for (const auto* edge : sdg_.InEdges(t)) {
      std::vector<TaskInstance*> upstreams;
      {
        std::shared_lock topo(topo_mutex_);
        for (auto& u : task_instances_[edge->from]) {
          if (u) {
            upstreams.push_back(u.get());
          }
        }
      }
      for (auto* u : upstreams) {
        uint64_t from_ts =
            ti->LastSeenFrom(SourceId{edge->from, u->instance_id()});
        for (auto& item : u->BufferFor(t).ItemsAfter(old_dest, from_ts)) {
          replay_to_self(item, edge->key_field);
        }
      }
    }
  }
  };
  run_replay();
  if (fault_injector_ != nullptr &&
      fault_injector_->FireIfArmed("replay.repeat", CrashPhase::kAfter)) {
    run_replay();
  }
  return Status::Ok();
}

Status Deployment::MigrateNode(uint32_t from, const std::vector<uint32_t>& to) {
  for (uint32_t t : to) {
    if (t == from) {
      return InvalidArgumentError("cannot migrate a node onto itself");
    }
  }
  // A fresh checkpoint minimises the replay tail; the kill then makes the
  // node's in-memory state unreachable, and recovery restores it elsewhere.
  SDG_RETURN_IF_ERROR(CheckpointNode(from));
  SDG_RETURN_IF_ERROR(KillNode(from));
  return RecoverNode(from, to);
}

// --- Scaling monitor --------------------------------------------------------------

void Deployment::ScalingMonitorLoop() {
  const auto& opts = options_.scaling;
  std::map<graph::TaskId, int> high_samples;
  std::map<std::pair<graph::TaskId, uint32_t>, uint64_t> last_processed;
  std::map<std::pair<graph::TaskId, uint32_t>, int> slow_samples;
  Stopwatch cooldown;
  bool in_cooldown = false;

  while (services_running_) {
    std::this_thread::sleep_for(std::chrono::milliseconds(opts.sample_interval_ms));
    if (!services_running_) {
      return;
    }
    if (in_cooldown && cooldown.ElapsedMillis() < opts.cooldown_ms) {
      continue;
    }
    in_cooldown = false;

    struct TaskSample {
      graph::TaskId task;
      double occupancy = 0;
      uint32_t alive = 0;
      std::vector<std::pair<uint32_t, double>> instance_rates;  // per instance
      std::vector<uint32_t> instance_nodes;
    };
    std::vector<TaskSample> samples;
    {
      std::shared_lock topo(topo_mutex_);
      for (const auto& te : sdg_.tasks()) {
        TaskSample s;
        s.task = te.id;
        size_t depth = 0, capacity = 0;
        for (const auto& ti : task_instances_[te.id]) {
          if (!ti) {
            continue;
          }
          ++s.alive;
          depth += ti->QueueDepth();
          capacity += ti->QueueCapacity();
          uint64_t processed = ti->ItemsProcessed();
          auto key = std::make_pair(te.id, ti->instance_id());
          double rate =
              static_cast<double>(processed - last_processed[key]);
          last_processed[key] = processed;
          s.instance_rates.emplace_back(ti->instance_id(), rate);
          s.instance_nodes.push_back(ti->node());
        }
        s.occupancy = capacity == 0
                          ? 0
                          : static_cast<double>(depth) / static_cast<double>(capacity);
        samples.push_back(std::move(s));
      }
    }

    for (auto& s : samples) {
      // Straggler detection: an instance persistently slower than the median
      // marks its node (future placements avoid it; §6.3).
      if (s.instance_rates.size() >= 2) {
        std::vector<double> rates;
        for (auto& [inst, rate] : s.instance_rates) {
          rates.push_back(rate);
        }
        std::sort(rates.begin(), rates.end());
        double median = rates[rates.size() / 2];
        for (size_t i = 0; i < s.instance_rates.size(); ++i) {
          auto [inst, rate] = s.instance_rates[i];
          auto key = std::make_pair(s.task, inst);
          if (median > 0 && rate < opts.straggler_ratio * median) {
            if (++slow_samples[key] >= opts.samples_to_trigger) {
              uint32_t node = s.instance_nodes[i];
              bool newly_flagged = false;
              {
                std::unique_lock topo(topo_mutex_);
                if (!node_straggler_[node]) {
                  SDG_LOG(kInfo) << "node " << node << " flagged as straggler";
                  node_straggler_[node] = true;
                  newly_flagged = true;
                }
              }
              if (newly_flagged && opts.on_straggler) {
                opts.on_straggler(node);
              }
            }
          } else {
            slow_samples[key] = 0;
          }
        }
      }
      // Bottleneck detection: sustained queue occupancy triggers a new
      // instance (§3.3 reactive scaling).
      if (s.occupancy >= opts.queue_high_watermark &&
          s.alive < opts.max_instances_per_task) {
        if (++high_samples[s.task] >= opts.samples_to_trigger) {
          high_samples[s.task] = 0;
          const auto& te = sdg_.task(s.task);
          SDG_LOG(kInfo) << "scaling task '" << te.name << "' to "
                         << (s.alive + 1) << " instances";
          Status st = AddTaskInstance(te.name);
          if (!st.ok()) {
            SDG_LOG(kWarning) << "scale-out failed: " << st.ToString();
          }
          in_cooldown = true;
          cooldown.Restart();
          break;  // one action per cycle
        }
      } else {
        high_samples[s.task] = 0;
      }
    }
  }
}

// --- Cluster -----------------------------------------------------------------------

Result<std::unique_ptr<Deployment>> Cluster::Deploy(graph::Sdg g) {
  auto deployment = std::make_unique<Deployment>(std::move(g), options_);
  SDG_RETURN_IF_ERROR(deployment->Start());
  return deployment;
}

}  // namespace sdg::runtime
