// Cluster and Deployment: materialised execution of an SDG (§3.3) on a
// simulated cluster.
//
// A "node" is a placement container: every TE instance is materialised as a
// schedulable entity on the deployment's executor pool (executor.h), and
// data items crossing a node boundary are serialised and
// deserialised so the location-independence and recovery code paths are
// genuinely exercised. Instances of TEs that access the same SE form a
// state-bound group: they share the SE's instance count, and instance j of
// every accessor is colocated with SE instance j (the colocation rule of
// §3.3 step 3, maintained under runtime scaling).
//
// Fault tolerance (§5) is selected per deployment:
//   kNone        — no checkpoints (recovery impossible).
//   kAsyncLocal  — the paper's mechanism: dirty-state overlays let processing
//                  continue while the consistent snapshot is serialised and
//                  streamed to m backup directories; state is locked only to
//                  consolidate the overlay.
//   kSyncLocal   — SEEP-style: the node stops processing for the whole
//                  checkpoint.
//   kSyncGlobal  — Naiad-style stop-the-world: every node pauses while all
//                  state is checkpointed.
#ifndef SDG_RUNTIME_CLUSTER_H_
#define SDG_RUNTIME_CLUSTER_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/checkpoint/backup_store.h"
#include "src/checkpoint/checkpoint_meta.h"
#include "src/common/metrics.h"
#include "src/common/status.h"
#include "src/graph/allocation.h"
#include "src/graph/sdg.h"
#include "src/runtime/data_item.h"
#include "src/runtime/executor.h"
#include "src/runtime/fault_injector.h"
#include "src/runtime/task_instance.h"

namespace sdg::runtime {

enum class FtMode { kNone, kAsyncLocal, kSyncLocal, kSyncGlobal };

std::string_view FtModeName(FtMode mode);

struct FaultToleranceOptions {
  FtMode mode = FtMode::kNone;
  // Interval of the periodic checkpoint driver; <= 0 disables the driver
  // (checkpoints can still be triggered manually).
  double checkpoint_interval_s = 10.0;
  // Number of chunks an SE instance is cut into (>= m gives the m-to-n
  // protocol freedom to spread them).
  uint32_t chunks_per_state = 4;
  // Per-recovering-node ingest bandwidth (bytes/s; 0 = unlimited). Models
  // each node's NIC/memory bandwidth during restore: splitting a failed SE
  // across n nodes divides the bytes each must ingest (Fig. 4 / Fig. 11).
  uint64_t recovery_ingest_bytes_per_sec = 0;
  // Streaming pipeline: hand fixed-size chunk segments to the backup store
  // as SerializeRecords produces them, overlapping serialization with backup
  // I/O under the store's backlog budget. false = materialise every chunk in
  // memory, then write (the 2x-RSS baseline).
  bool streaming_checkpoint = true;
  // Delta epochs: 0 = every epoch persists the full state. k > 0 caps each
  // base+delta chain at k epochs — a full base, then up to k-1 delta epochs
  // persisting only records changed/erased since the previous epoch.
  uint32_t delta_epoch_interval = 0;
  // Chunk compression codec (state::kChunkCodec*), carried per chunk and
  // decoded transparently on restore.
  uint8_t chunk_codec = 0;
  // Segment size of the streaming pipeline.
  size_t ckpt_segment_bytes = 256 * 1024;
  // Threads fanning SerializeRecords across state shards on the streaming
  // path (and chunk restores on recovery). 0 = auto (hardware concurrency,
  // capped at 8); 1 = serial. Sharded backends emit disjoint shards, so the
  // fan-out is safe for any value.
  uint32_t ckpt_parallelism = 0;
  checkpoint::BackupStoreOptions store;
};

struct ScalingOptions {
  bool enabled = false;
  int sample_interval_ms = 250;
  // A TE is a bottleneck when its aggregate mailbox occupancy exceeds this
  // fraction of capacity for `samples_to_trigger` consecutive samples.
  double queue_high_watermark = 0.25;
  int samples_to_trigger = 3;
  int cooldown_ms = 3000;
  uint32_t max_instances_per_task = 8;
  // An instance processing slower than this fraction of its TE's median
  // marks its node as straggling (avoided for future placement).
  double straggler_ratio = 0.5;
  // Fired once per node on the not-straggler -> straggler transition, from
  // the monitor thread with no cluster locks held. The elastic runtime hooks
  // this to escalate to its head process, which may respond by migrating
  // partitions off the node live.
  std::function<void(uint32_t node)> on_straggler;
};

// Load-balancing policy for one-to-any dispatch.
enum class OneToAnyPolicy {
  kJoinShortestQueue,  // default: stragglers receive less work
  kRoundRobin,         // strict fair share (ablation baseline)
};

struct ClusterOptions {
  uint32_t num_nodes = 4;
  size_t mailbox_capacity = 1 << 16;
  // Maximum items a worker drains from its mailbox per wakeup. Larger
  // batches amortise the mailbox lock, condvar wakeup and in-flight report;
  // 1 reproduces strict item-at-a-time processing. Per-source FIFO order is
  // unaffected either way.
  size_t max_batch = 256;
  OneToAnyPolicy one_to_any = OneToAnyPolicy::kJoinShortestQueue;
  // Workers in the deployment's executor pool. 0 = use the process-wide
  // Executor::Shared() (hardware-concurrency workers, shared with the
  // network layer so total thread count stays O(cores)); > 0 = a private
  // pool of exactly that many workers (tests pin oversubscription ratios).
  size_t executor_workers = 0;
  // Serialise/deserialise items that cross node boundaries (realistic cost;
  // disable only for microbenchmarks of pure processing).
  bool serialize_cross_node = true;
  // Per-node speed factors (1.0 nominal, <1 straggler); missing entries = 1.
  std::vector<double> node_speed;
  FaultToleranceOptions fault_tolerance;
  ScalingOptions scaling;
  // Seeded deterministic fault injection (edge faults + crash points); see
  // fault_injector.h and docs/testing.md.
  FaultInjectionOptions fault_injection;
};

// Receives tuples a TE emits past its last out-edge. user_tag is the value
// given at injection (request latency measurement).
using SinkFn = std::function<void(const Tuple& tuple, uint64_t user_tag)>;

class Deployment final : public RuntimeHooks {
 public:
  Deployment(graph::Sdg g, ClusterOptions options);
  ~Deployment() override;

  Deployment(const Deployment&) = delete;
  Deployment& operator=(const Deployment&) = delete;

  // Materialises all instances per the §3.3 allocation and starts workers.
  Status Start();

  // Feeds one data item into the named entry TE. Thread-safe.
  Status Inject(std::string_view entry, Tuple tuple, uint64_t user_tag = 0);

  // Feeds a batch of data items into the named entry TE under one
  // (clock, dispatch) critical section, delivering per destination instance
  // with one mailbox push per group. Equivalent to calling Inject for each
  // tuple in order (same per-source FIFO timestamps), but amortises the
  // ingest-gate, topology-lock and mailbox synchronisation over the batch.
  // Thread-safe.
  Status InjectAll(std::string_view entry, std::vector<Tuple> tuples,
                   uint64_t user_tag = 0);

  // Feeds items that arrived from a REMOTE deployment (net::ChannelServer)
  // into the named entry TE. Unlike InjectAll, the items keep the sender's
  // source id, timestamps and replayed flags — the remote OutputBuffer is
  // their authoritative log, so this deployment neither ticks an external
  // clock nor buffers them. Dispatch is deterministic in the item (partition
  // hash, or ts modulo instance count for one-to-any) so a reconnect replay
  // lands on the same instance, whose last-seen filter drops duplicates.
  // Thread-safe. Global entry TEs are not yet supported over the wire.
  Status InjectRemote(std::string_view entry, std::vector<DataItem> items);

  // Registers the sink for tuples `task` emits beyond its out-edges.
  Status OnOutput(std::string_view task, SinkFn fn);

  // Blocks until no data item is in flight (mailboxes empty, workers idle).
  // The caller must stop injecting first.
  void Drain();

  // Graceful stop: drains pipelines and joins all workers and service threads.
  void Shutdown();

  // --- Runtime parallelism (§3.3) -------------------------------------------

  // Adds one instance to `task`. For a stateful TE this scales the whole
  // state-bound group: a partitioned SE is re-sharded over k+1 instances, a
  // partial SE gains a fresh replica, and every accessor TE gains a
  // colocated instance. Pauses ingest briefly to drain in-flight items.
  Status AddTaskInstance(std::string_view task_name);

  uint32_t NumInstancesOf(std::string_view task_name) const;

  // Sentinel returned by placement when no node qualifies (nothing alive).
  static constexpr uint32_t kNoNode = 0xFFFFFFFFu;

  // Flags `node` so placement avoids it, exactly as the scaling monitor's
  // straggler detector would (exposed for tests and external monitors).
  void MarkNodeStraggler(uint32_t node);

  // Node hosting instance `instance` of `task_name`; kNoNode if unknown.
  uint32_t NodeOfTaskInstance(std::string_view task_name,
                              uint32_t instance) const;

  // --- Failure injection & recovery (§5) ------------------------------------

  // Triggers one checkpoint of `node` using the configured mode.
  Status CheckpointNode(uint32_t node);
  Status CheckpointAllNodes();

  // Abruptly kills `node`: workers abort, queued items and SE instances on
  // the node are lost.
  Status KillNode(uint32_t node);

  // Restores everything `failed` hosted onto `replacements` (m-to-n restore:
  // m backup directories stream chunks; |replacements| = n). n > 1 requires
  // each lost SE to have had a single instance, which is then range-split
  // into n partitioned instances.
  Status RecoverNode(uint32_t failed, const std::vector<uint32_t>& replacements);

  // Evacuates `from` entirely: checkpoint, retire the node, restore its TEs
  // and SEs onto `to` with replay. This is §6.3's "extreme case" — a
  // straggling node is removed and the job resumes from a checkpoint on a
  // new node. `from` stays dead afterwards.
  Status MigrateNode(uint32_t from, const std::vector<uint32_t>& to);

  // --- Introspection ---------------------------------------------------------

  const graph::Sdg& sdg() const { return sdg_; }
  uint64_t TotalProcessed() const;
  size_t TotalQueueDepth() const;
  size_t QueueDepthOf(std::string_view task_name) const;
  // Items processed by all instances of one TE.
  uint64_t ProcessedOf(std::string_view task_name) const;
  // Sum of SizeBytes over all instances of `state_name`.
  size_t StateSizeBytes(std::string_view state_name) const;
  // Direct access to an SE instance (tests and single-process apps).
  state::StateBackend* StateInstance(std::string_view state_name,
                                     uint32_t instance);
  uint32_t NumStateInstances(std::string_view state_name) const;
  // Node hosting instance `instance` of `state_name`; UINT32_MAX if unknown.
  uint32_t NodeOfStateInstance(std::string_view state_name,
                               uint32_t instance) const;
  bool NodeAlive(uint32_t node) const;
  // Non-null only when options.fault_injection.enabled.
  FaultInjector* fault_injector() { return fault_injector_.get(); }
  uint64_t CheckpointsCompleted() const { return checkpoints_done_.value(); }

  // Cumulative checkpoint observability counters (satellite of the streaming
  // data path): what the periodic driver logs and tests assert against.
  struct CheckpointStats {
    uint64_t checkpoints = 0;            // node checkpoints completed
    uint64_t full_serializations = 0;    // SE instances persisted as full bases
    uint64_t delta_serializations = 0;   // SE instances persisted as deltas
    uint64_t records_full = 0;           // records written by full bases
    uint64_t records_delta = 0;          // records written by delta epochs
    uint64_t tombstones = 0;             // erasures persisted in delta epochs
    uint64_t bytes_written = 0;          // chunk + buffer-blob bytes handed to
                                         // the backup store
    uint64_t overlay_consolidated = 0;   // dirty-overlay entries folded back by
                                         // EndCheckpoint
    uint64_t last_duration_us = 0;       // wall time of the latest checkpoint
    uint64_t total_duration_us = 0;
  };
  CheckpointStats CheckpointStatsSnapshot() const;

  // Cold-tier observability: GetSpillStats summed over every SE instance.
  // All-zero unless some backend runs with a spill budget (docs/state.md,
  // "Tiered storage"); the periodic driver logs it alongside checkpoints.
  state::SpillStats SpillStatsSnapshot() const;

  // Executor observability: per-worker tasks-run/steal counters and current
  // ready-set depth of the pool this deployment runs on (shared pool stats
  // include other deployments' work; private pools are exact).
  ExecutorStats ExecutorStatsSnapshot() const {
    return executor_->StatsSnapshot();
  }
  Executor* executor() { return executor_; }

  // Human-readable snapshot of the materialised topology: per node, the TE
  // instances (with queue depth and processed count) and SE instances (with
  // size) it hosts.
  std::string DescribeTopology() const;

  // --- RuntimeHooks ----------------------------------------------------------
  void RouteEmits(TaskInstance& src, std::vector<PendingEmit>& emits,
                  const DataItem& cause) override;
  void DeliverToSink(graph::TaskId task, const Tuple& tuple,
                     uint64_t user_tag) override;
  void OnItemsDone(size_t count) override;
  double NodeSpeed(uint32_t node) const override;
  uint32_t NumInstances(graph::TaskId task) const override;

 private:
  struct StateGroup {
    graph::StateId state = 0;
    // Instance j of the SE; nullptr while lost to a failure.
    std::vector<std::unique_ptr<state::StateBackend>> instances;
    std::vector<uint32_t> instance_nodes;
    std::vector<graph::TaskId> accessors;
  };

  // Source id used for externally injected items: task = kExternalTask,
  // instance = entry TE id.
  static constexpr uint32_t kExternalTask = 0xFFFFFFFFu;

  void DeliverTo(graph::TaskId task, uint32_t dest, DataItem item,
                 uint32_t src_node);
  uint32_t PickLeastLoadedNode(bool avoid_stragglers) const;

  // In-flight accounting: every delivered item is counted before its mailbox
  // push and released exactly once — after processing, or immediately when a
  // closed mailbox rejects it or its destination instance is lost. All paths
  // go through these two helpers.
  void AccountDelivered(size_t count);
  void AccountDone(size_t count);

  // Delivers every group the calling worker thread staged in RouteEmits:
  // destination instances are re-resolved under the topology lock (staged
  // groups hold no instance pointers), items crossing a node boundary are
  // serialised, and each group lands with one mailbox push. Groups whose
  // destination is gone are dropped and released from in-flight accounting.
  // Called per input item when upstream backup is on, per drained mailbox
  // batch otherwise.
  void FlushStagedDeliveries();

  Status CheckpointNodeLocked(uint32_t node);
  void CheckpointDriverLoop();
  void ScalingMonitorLoop();

  // Creates an SE instance from its factory, enabling epoch-dirty tracking
  // when delta checkpoints are configured. Every factory call site (Start,
  // AddTaskInstance, RecoverNode) must go through this.
  std::unique_ptr<state::StateBackend> MakeStateBackend(
      const graph::StateElement& se) const;

  // Serialises one instance's output buffers into a chunk blob.
  std::vector<uint8_t> SerializeBuffers(TaskInstance& ti);
  Status RestoreBuffers(TaskInstance& ti, const std::vector<uint8_t>& blob);

  graph::Sdg sdg_;
  ClusterOptions options_;
  // The pool every TaskInstance slice, checkpoint fan-out and helper task of
  // this deployment runs on. Declared before (so destroyed after) instances
  // and state: entities must be able to retire their last slice before their
  // pool disappears. owned_executor_ is set only for private pools.
  std::unique_ptr<Executor> owned_executor_;
  Executor* executor_ = nullptr;
  std::vector<graph::DataflowEdge> edges_;                       // flattened
  std::vector<std::vector<const graph::DataflowEdge*>> out_edges_;  // by task

  mutable std::shared_mutex topo_mutex_;
  std::vector<std::vector<std::unique_ptr<TaskInstance>>> task_instances_;
  std::vector<StateGroup> state_groups_;
  // Graveyards keep killed objects alive (not reachable from routing) so that
  // raw pointers captured concurrently never dangle; cleared on recovery /
  // shutdown.
  std::vector<std::unique_ptr<TaskInstance>> dead_instances_;
  std::vector<std::unique_ptr<state::StateBackend>> dead_states_;
  std::vector<bool> node_alive_;
  std::vector<bool> node_straggler_;

  // Injection state: per-entry logical clock and upstream-backup buffer.
  std::shared_mutex ingest_gate_;
  std::map<graph::TaskId, std::unique_ptr<LogicalClock>> external_clocks_;
  std::map<graph::TaskId, std::unique_ptr<OutputBuffer>> external_buffers_;
  std::map<graph::TaskId, std::unique_ptr<std::mutex>> external_locks_;

  std::mutex sinks_mutex_;
  std::map<graph::TaskId, SinkFn> sinks_;

  std::atomic<uint64_t> barrier_seq_{1};
  std::vector<std::unique_ptr<std::atomic<uint64_t>>> rr_counters_;  // per edge

  // In-flight accounting for Drain(): a padded atomic keeps the per-item
  // (per-batch) hot path lock-free; the mutex/condvar pair exists only to
  // park Drain() callers and is touched solely on the 1->0 transition.
  Gauge in_flight_;
  std::mutex inflight_mutex_;
  std::condition_variable inflight_cv_;

  // Fault tolerance.
  // Upstream-backup logging only pays off when checkpoints exist to trim it;
  // without fault tolerance the buffers would grow without bound.
  bool buffering_enabled_ = false;

  std::unique_ptr<FaultInjector> fault_injector_;
  std::unique_ptr<checkpoint::BackupStore> store_;
  std::vector<uint64_t> node_epoch_;
  std::vector<std::unique_ptr<std::mutex>> node_ckpt_mutex_;
  // Per node, the committed base+delta chain of each SE instance hosted there
  // (keyed by chunk name). Guarded by node_ckpt_mutex_[node]; an entry is only
  // updated after WriteMeta succeeds, so it always names a restorable chain.
  std::vector<std::map<std::string, std::vector<checkpoint::ChainLink>>>
      ckpt_chains_;
  Counter checkpoints_done_;
  Counter ckpt_full_se_;
  Counter ckpt_delta_se_;
  Counter ckpt_records_full_;
  Counter ckpt_records_delta_;
  Counter ckpt_tombstones_;
  Counter ckpt_bytes_;
  Counter ckpt_overlay_;
  Counter ckpt_total_us_;
  std::atomic<uint64_t> ckpt_last_us_{0};
  std::thread ckpt_driver_;
  std::thread scaling_monitor_;
  std::atomic<bool> services_running_{false};
  std::atomic<bool> started_{false};
  std::atomic<bool> shut_down_{false};
};

class Cluster {
 public:
  explicit Cluster(ClusterOptions options) : options_(std::move(options)) {}

  // Validates allocation feasibility, materialises the SDG and starts it.
  Result<std::unique_ptr<Deployment>> Deploy(graph::Sdg g);

  const ClusterOptions& options() const { return options_; }

 private:
  ClusterOptions options_;
};

}  // namespace sdg::runtime

#endif  // SDG_RUNTIME_CLUSTER_H_
