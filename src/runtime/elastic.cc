#include "src/runtime/elastic.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <utility>

#include "src/checkpoint/chunk_stream.h"
#include "src/common/backoff.h"
#include "src/common/logging.h"
#include "src/net/connection.h"
#include "src/runtime/delivery.h"
#include "src/state/chunk.h"
#include "src/state/codec.h"

namespace sdg::elastic {
namespace {

// Chunks per migrated/checkpointed partition. Small: a partition is already
// the placement unit, the split only exercises the multi-chunk path.
constexpr uint32_t kChunksPerPartition = 2;
// Segment size of migration streams — small enough that even modest state
// pipelines over several frames.
constexpr size_t kMigrateSegmentBytes = 64 * 1024;
constexpr int kMigrateDeltaRounds = 2;

std::string PartName(const std::string& state, uint32_t partition) {
  return state + "." + std::to_string(partition);
}

state::ChunkOptions MigrateChunkOptions(bool delta) {
  state::ChunkOptions o;
  o.version = state::kChunkVersion2;
  o.codec = state::kChunkCodecPrefix;
  o.delta = delta;
  return o;
}

uint64_t NowMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

// ===========================================================================
// ElasticWorker

ElasticWorker::ElasticWorker(graph::Sdg g, ElasticWorkerOptions options)
    : options_(std::move(options)), graph_(std::move(g)) {}

ElasticWorker::~ElasticWorker() { Stop(); }

void ElasticWorker::CrashPoint(const char* phase) {
  if (!options_.crash_at.empty() && options_.crash_at == phase) {
    SDG_LOG(kInfo) << "worker " << options_.member_id << " crash point "
                   << phase;
    std::_Exit(41);
  }
}

Status ElasticWorker::Start() {
  runtime::ClusterOptions copts;
  copts.num_nodes = options_.local_nodes;
  copts.executor_workers = options_.executor_workers;
  copts.scaling = options_.scaling;
  if (copts.scaling.enabled && !copts.scaling.on_straggler) {
    // Escalate local straggler detection to the head, which owns the
    // cross-process response (shedding partitions off this worker).
    copts.scaling.on_straggler = [this](uint32_t node) {
      net::ControlMsg msg;
      msg.op = net::kCtrlStraggler;
      msg.arg = node;
      (void)SendControlToHead(msg);
    };
  }
  runtime::Cluster cluster(std::move(copts));
  SDG_ASSIGN_OR_RETURN(deployment_, cluster.Deploy(std::move(graph_)));

  checkpoint::BackupStoreOptions sopts;
  sopts.root = options_.backup_root;
  sopts.num_backup_nodes = options_.backup_nodes;
  store_ = std::make_unique<checkpoint::BackupStore>(std::move(sopts));

  // Restore the latest durable epoch: owned partitions, their state and the
  // per-source watermarks.
  auto latest = store_->LatestEpoch(options_.member_id);
  if (latest.ok() && *latest > 0) {
    epoch_ = *latest;
    SDG_ASSIGN_OR_RETURN(auto meta,
                         store_->ReadMeta(options_.member_id, epoch_));
    for (const auto& sm : meta.states) {
      SDG_ASSIGN_OR_RETURN(
          auto chunks,
          store_->ReadChunks(options_.member_id, epoch_,
                             PartName(options_.state, sm.instance),
                             sm.num_chunks));
      auto* backend = deployment_->StateInstance(options_.state, sm.instance);
      if (backend == nullptr) {
        return Status(StatusCode::kNotFound,
                      "restore: unknown state instance " +
                          PartName(options_.state, sm.instance));
      }
      for (const auto& chunk : chunks) {
        SDG_RETURN_IF_ERROR(state::RestoreChunk(*backend, chunk));
      }
      owned_.insert(sm.instance);
    }
    for (const auto& tm : meta.tasks) {
      for (const auto& ls : tm.last_seen) {
        received_[tm.instance] = std::max(received_[tm.instance], ls.ts);
        durable_[tm.instance] = std::max(durable_[tm.instance], ls.ts);
      }
    }
    SDG_LOG(kInfo) << "worker " << options_.member_id << " restored epoch "
                   << epoch_ << " with " << owned_.size() << " partitions";
  }

  net::ChannelServerOptions nopts;
  nopts.port = options_.data_port;
  server_ = std::make_unique<net::ChannelServer>(std::move(nopts));
  SDG_RETURN_IF_ERROR(server_->Start(
      [this](const net::Handshake& hs) { return OnHandshake(hs); },
      [this](const net::Handshake& hs, std::vector<runtime::DataItem> items) {
        OnBatch(hs, std::move(items));
      },
      /*on_join=*/nullptr, /*on_member=*/nullptr,
      [this](net::Socket socket, net::FrameDecoder carry,
             const net::MigrateBeginMsg& begin) {
        OnMigrationSession(std::move(socket), std::move(carry), begin);
      }));

  if (options_.mux_replies) {
    net::MuxConnection::Options mopts;
    mopts.loop = net::EventLoop::Shared();
    mopts.deployment_id = options_.deployment_id;
    reply_pool_ = std::make_unique<net::MuxPool>(mopts);
  }

  // Strong-read reply path: forward these sinks' outputs to the head as
  // kResponse frames, keyed by the item's user_tag (the gateway's request
  // tag; untagged outputs have no waiter and are dropped).
  for (const auto& sink : options_.forward_sinks) {
    SDG_RETURN_IF_ERROR(deployment_->OnOutput(
        sink, [this](const Tuple& tuple, uint64_t user_tag) {
          if (user_tag == 0) {
            return;
          }
          net::ResponseMsg resp;
          resp.request_id = user_tag;
          resp.code = net::kRespOk;
          if (tuple.size() > 1) {
            resp.value = tuple[1].AsString();
          }
          (void)SendResponseToHead(resp);
        }));
  }

  if (options_.serve_feed) {
    tails_.reserve(options_.partitions);
    for (uint32_t p = 0; p < options_.partitions; ++p) {
      tails_.push_back(
          std::make_unique<checkpoint::EpochTail>(options_.feed_max_deltas));
    }
    // Dirty tracking from the first epoch on; restored partitions start
    // invalid (RestoreChunk invalidates), so their first publish is a base.
    for (uint32_t p = 0; p < options_.partitions; ++p) {
      auto* backend = deployment_->StateInstance(options_.state, p);
      if (backend != nullptr) {
        backend->EnableDeltaTracking();
      }
    }
  }

  running_.store(true, std::memory_order_release);
  control_thread_ = std::thread([this] { ControlLoop(); });
  if (options_.checkpoint_interval_ms > 0) {
    checkpoint_thread_ = std::thread([this] { CheckpointLoop(); });
  }
  if (options_.serve_feed) {
    feed_thread_ = std::thread([this] { FeedLoop(); });
  }
  return Status::Ok();
}

void ElasticWorker::Stop() {
  if (!running_.exchange(false)) {
    return;
  }
  {
    std::lock_guard<std::mutex> lock(ctrl_send_mutex_);
    if (ctrl_socket_ != nullptr) {
      ctrl_socket_->ShutdownBoth();
    }
  }
  {
    std::lock_guard<std::mutex> lock(joined_mutex_);
    joined_cv_.notify_all();
  }
  {
    std::lock_guard<std::mutex> lock(feed_mutex_);
    feed_cv_.notify_all();
  }
  if (control_thread_.joinable()) {
    control_thread_.join();
  }
  if (checkpoint_thread_.joinable()) {
    checkpoint_thread_.join();
  }
  if (feed_thread_.joinable()) {
    feed_thread_.join();
  }
  if (server_) {
    server_->Stop();
  }
  // Fail the reply stream before deployment shutdown: an output callback
  // blocked in MuxStream::Send (head wedged, no credits) must wake and
  // return false, or Shutdown would wait on it forever.
  if (reply_pool_) {
    reply_pool_->CloseAll();
  }
  if (deployment_) {
    deployment_->Shutdown();
  }
}

bool ElasticWorker::WaitJoined(int timeout_ms) {
  std::unique_lock<std::mutex> lock(joined_mutex_);
  return joined_cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                             [this] {
                               return joined_.load(std::memory_order_acquire);
                             });
}

uint16_t ElasticWorker::data_port() const { return server_->port(); }

std::vector<uint32_t> ElasticWorker::OwnedPartitions() const {
  std::lock_guard<std::mutex> lock(ingest_mutex_);
  return std::vector<uint32_t>(owned_.begin(), owned_.end());
}

Result<uint64_t> ElasticWorker::OnHandshake(const net::Handshake& hs) {
  if (hs.deployment_id != options_.deployment_id) {
    return Status(StatusCode::kFailedPrecondition, "wrong deployment");
  }
  std::lock_guard<std::mutex> lock(ingest_mutex_);
  // The applied watermark, not the durable one: a reconnect to a live worker
  // must not replay items already applied in memory (after a restart the two
  // coincide — received_ is restored from the durable epoch).
  uint64_t wm = 0;
  if (auto it = received_.find(hs.source_instance); it != received_.end()) {
    wm = it->second;
  }
  if (auto it = durable_.find(hs.source_instance); it != durable_.end()) {
    wm = std::max(wm, it->second);
  }
  return wm;
}

void ElasticWorker::OnBatch(const net::Handshake& hs,
                            std::vector<runtime::DataItem> items) {
  std::lock_guard<std::mutex> lock(ingest_mutex_);
  uint32_t si = hs.source_instance;
  uint32_t partition = si % options_.partitions;
  if (owned_.find(partition) == owned_.end()) {
    // Not (or no longer) this worker's partition: drop without acking. The
    // head's log retains the items and replays them to the actual owner.
    return;
  }
  std::vector<runtime::DataItem> fresh;
  fresh.reserve(items.size());
  uint64_t& received = received_[si];
  for (auto& item : items) {
    // Replayed items at or below the applied watermark are already reflected
    // in this worker's state (restored or live); only the suffix past it is
    // genuinely new.
    if (item.replayed && item.ts <= received) {
      continue;
    }
    received = std::max(received, item.ts);
    fresh.push_back(std::move(item));
  }
  if (fresh.empty()) {
    return;
  }
  if (options_.slow_us > 0) {
    std::this_thread::sleep_for(
        std::chrono::microseconds(options_.slow_us * fresh.size()));
  }
  size_t n = fresh.size();
  Status st = deployment_->InjectRemote(hs.entry, std::move(fresh));
  if (!st.ok()) {
    SDG_LOG(kWarning) << "worker " << options_.member_id
                   << " inject failed: " << st.ToString();
    return;
  }
  items_ingested_.fetch_add(n, std::memory_order_relaxed);
}

Status ElasticWorker::Checkpoint() {
  std::scoped_lock op(op_mutex_);
  std::map<uint32_t, uint64_t> acks;
  std::vector<net::ReplicaEpochMsg> publish;
  {
    std::lock_guard<std::mutex> ingest(ingest_mutex_);
    deployment_->Drain();
    uint64_t epoch = epoch_ + 1;
    uint64_t depth = deployment_->TotalQueueDepth();
    checkpoint::CheckpointMeta meta;
    meta.epoch = epoch;
    for (uint32_t p : owned_) {
      auto* backend = deployment_->StateInstance(options_.state, p);
      std::vector<std::vector<uint8_t>> chunks;
      if (options_.serve_feed) {
        // Cut the epoch under the backend's delta protocol so the same
        // quiesced snapshot yields both the durable full chunks and the
        // replica-feed blobs (delta when the dirty tracker covers the gap
        // since the tail's last epoch, base otherwise).
        backend->BeginCheckpoint();
        bool delta = backend->DeltaReady() && !tails_[p]->NeedsBase();
        auto blobs = checkpoint::SerializeEpochBlobs(
            *backend, options_.state, kChunksPerPartition, delta,
            state::kChunkCodecPrefix);
        chunks = state::SerializeToChunks(*backend, options_.state,
                                          kChunksPerPartition,
                                          MigrateChunkOptions(false));
        backend->EndCheckpoint();
        backend->ResolveEpoch(blobs.ok());
        if (blobs.ok()) {
          if (delta) {
            delta = tails_[p]->PushDelta(epoch, *blobs);
          }
          if (!delta) {
            tails_[p]->PushBase(epoch, *blobs);
          }
          net::ReplicaEpochMsg announce;
          announce.partition = p;
          announce.member_id = options_.member_id;
          announce.kind = net::kEpochAnnounce;
          announce.epoch = epoch;
          announce.queue_depth = depth;
          net::ReplicaEpochMsg body = announce;
          body.kind = delta ? net::kEpochDelta : net::kEpochBase;
          body.chunks = std::move(*blobs);
          publish.push_back(std::move(announce));
          publish.push_back(std::move(body));
        }
      } else {
        chunks = state::SerializeToChunks(*backend, options_.state,
                                          kChunksPerPartition,
                                          MigrateChunkOptions(false));
      }
      SDG_RETURN_IF_ERROR(store_->WriteChunks(options_.member_id, epoch,
                                              PartName(options_.state, p),
                                              chunks));
      checkpoint::StateInstanceMeta sm;
      sm.state = 0;
      sm.instance = p;
      sm.num_chunks = static_cast<uint32_t>(chunks.size());
      sm.record_count = backend->EntryCount();
      sm.kind = checkpoint::EpochKind::kFull;
      sm.base_epoch = epoch;
      sm.chain = {{epoch, sm.num_chunks, checkpoint::EpochKind::kFull}};
      meta.states.push_back(std::move(sm));
    }
    for (const auto& [si, wm] : received_) {
      checkpoint::TaskInstanceMeta tm;
      tm.task = runtime::kRemoteSourceTask;
      tm.instance = si;
      tm.last_seen = {{runtime::kRemoteSourceTask, si, wm}};
      meta.tasks.push_back(std::move(tm));
    }
    // Meta last: an epoch is durable only once its meta exists, so a crash
    // mid-write leaves the previous epoch authoritative.
    SDG_RETURN_IF_ERROR(store_->WriteMeta(options_.member_id, epoch, meta));
    epoch_ = epoch;
    durable_ = received_;
    acks = durable_;
    store_->PruneBefore(options_.member_id, epoch_);
  }
  // Ack outside the ingest lock: senders trim their logs; a lost ack is
  // repaired by the next handshake's watermark. One batched call: a mux
  // sender gets a single coalesced kMuxAckBatch frame for all its streams.
  if (!acks.empty()) {
    std::vector<net::ChannelServer::SourceAck> batch;
    batch.reserve(acks.size());
    for (const auto& [si, wm] : acks) {
      batch.push_back({runtime::kRemoteSourceTask, si, wm});
    }
    server_->AckSources(batch);
  }
  // Publish the epoch to the replica feed (announce first, blobs after).
  for (auto& msg : publish) {
    QueueFeed(std::move(msg));
  }
  return Status::Ok();
}

void ElasticWorker::CheckpointLoop() {
  while (running_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(options_.checkpoint_interval_ms));
    if (!running_.load(std::memory_order_acquire)) {
      return;
    }
    bool dirty;
    {
      std::lock_guard<std::mutex> lock(ingest_mutex_);
      dirty = received_ != durable_;
    }
    if (!dirty) {
      continue;
    }
    Status st = Checkpoint();
    if (!st.ok()) {
      SDG_LOG(kWarning) << "worker " << options_.member_id
                     << " checkpoint failed: " << st.ToString();
    }
  }
}

// --- Control channel --------------------------------------------------------

Status ElasticWorker::JoinHead(net::Socket* socket, net::FrameDecoder* carry) {
  SDG_ASSIGN_OR_RETURN(
      *socket, net::Socket::Connect(options_.head_host, options_.head_port));
  net::JoinMsg join;
  join.deployment_id = options_.deployment_id;
  join.member_id = options_.member_id;
  join.host = "127.0.0.1";
  join.data_port = server_->port();
  join.name = options_.name;
  socket->SetRecvTimeout(5000);
  SDG_RETURN_IF_ERROR(
      net::WriteFrameBlocking(*socket, net::FrameType::kJoin, join.Encode()));
  SDG_ASSIGN_OR_RETURN(net::Frame reply,
                       net::ReadFrameBlocking(*socket, *carry));
  if (reply.type != net::FrameType::kJoinAck) {
    return Status(StatusCode::kDataLoss, "join: unexpected reply frame");
  }
  SDG_ASSIGN_OR_RETURN(auto ack, net::JoinAckMsg::Decode(reply.payload));
  if (!ack.accepted) {
    return Status(StatusCode::kFailedPrecondition,
                  "join rejected: " + ack.message);
  }
  socket->SetRecvTimeout(0);
  return Status::Ok();
}

void ElasticWorker::ControlLoop() {
  while (running_.load(std::memory_order_acquire)) {
    net::Socket socket;
    net::FrameDecoder carry;
    Status joined = JoinHead(&socket, &carry);
    if (!joined.ok()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(ctrl_send_mutex_);
      ctrl_socket_ = &socket;
    }
    {
      std::lock_guard<std::mutex> lock(joined_mutex_);
      joined_.store(true, std::memory_order_release);
      joined_cv_.notify_all();
    }
    while (running_.load(std::memory_order_acquire)) {
      auto frame = net::ReadFrameBlocking(socket, carry);
      if (!frame.ok()) {
        break;  // head gone or Stop(): rejoin (or exit) above
      }
      switch (frame->type) {
        case net::FrameType::kControl: {
          auto msg = net::ControlMsg::Decode(frame->payload);
          if (msg.ok()) {
            HandleControl(socket, *msg);
          }
          break;
        }
        case net::FrameType::kMigrateBegin: {
          auto cmd = net::MigrateBeginMsg::Decode(frame->payload);
          if (cmd.ok()) {
            HandleMigrateBegin(socket, *cmd);
          }
          break;
        }
        default:
          break;
      }
    }
    {
      std::lock_guard<std::mutex> lock(ctrl_send_mutex_);
      ctrl_socket_ = nullptr;
    }
    joined_.store(false, std::memory_order_release);
  }
}

bool ElasticWorker::SendControlToHead(const net::ControlMsg& msg) {
  std::lock_guard<std::mutex> lock(ctrl_send_mutex_);
  if (ctrl_socket_ == nullptr) {
    return false;
  }
  return net::WriteFrameBlocking(*ctrl_socket_, net::FrameType::kControl,
                                 msg.Encode())
      .ok();
}

bool ElasticWorker::SendResponseToHead(const net::ResponseMsg& msg) {
  if (options_.mux_replies) {
    auto stream = ReplyStream();
    if (stream != nullptr) {
      // TrySend, not Send: this runs on the deployment's executor (sink
      // output callback), and executor tasks must never block on mux
      // credits — the head returns credits through its own executor, and on
      // a small pool the two sides would starve each other. Out of credits
      // (or a full staging buffer) falls back to the control channel.
      if (stream->TrySend(net::FrameType::kResponse, msg.Encode())) {
        return true;
      }
      if (stream->broken()) {
        // Drop the cached handle; the next response reopens.
        std::lock_guard<std::mutex> lock(reply_mutex_);
        if (reply_stream_ == stream) {
          reply_stream_.reset();
        }
      }
    }
  }
  std::lock_guard<std::mutex> lock(ctrl_send_mutex_);
  if (ctrl_socket_ == nullptr) {
    return false;
  }
  return net::WriteFrameBlocking(*ctrl_socket_, net::FrameType::kResponse,
                                 msg.Encode())
      .ok();
}

std::shared_ptr<net::MuxStream> ElasticWorker::ReplyStream() {
  std::lock_guard<std::mutex> lock(reply_mutex_);
  if (reply_stream_ != nullptr && !reply_stream_->broken()) {
    return reply_stream_;
  }
  reply_stream_.reset();
  if (reply_pool_ == nullptr || !running_.load(std::memory_order_acquire)) {
    return nullptr;
  }
  // Negative cache: a head that refused mux (old binary) or a failed open
  // must not cost every subsequent response a fresh dial.
  const auto now = std::chrono::steady_clock::now();
  if (now < reply_retry_after_) {
    return nullptr;
  }
  auto conn = reply_pool_->Get(options_.head_host, options_.head_port);
  if (!conn.ok()) {
    // Head predates mux (or is down) — the control channel carries replies.
    reply_retry_after_ = now + std::chrono::seconds(2);
    return nullptr;
  }
  net::MuxOpenMsg open;
  open.kind = net::kMuxStreamReply;
  open.deployment_id = options_.deployment_id;
  open.member_id = options_.member_id;
  auto stream =
      (*conn)->OpenStream(open, /*on_frame=*/nullptr, /*on_error=*/nullptr);
  if (!stream.ok()) {
    SDG_LOG(kWarning) << "worker " << options_.member_id
                   << " reply stream open failed: "
                   << stream.status().ToString();
    reply_retry_after_ = std::chrono::steady_clock::now() +
                         std::chrono::seconds(2);
    return nullptr;
  }
  reply_stream_ = *stream;
  return reply_stream_;
}

// --- Replica feed -----------------------------------------------------------

void ElasticWorker::QueueFeed(net::ReplicaEpochMsg msg) {
  constexpr size_t kFeedQueueMax = 256;
  std::lock_guard<std::mutex> lock(feed_mutex_);
  if (feed_queue_.size() >= kFeedQueueMax) {
    // A wedged gateway must not hold blob memory hostage: drop the queue and
    // resync from the tails when the wire drains (duplicates are idempotent
    // replica-side, and a delta chain never tears — tails replay base-first).
    feed_queue_.clear();
    feed_replay_ = true;
  } else {
    feed_queue_.push_back(std::move(msg));
  }
  feed_cv_.notify_all();
}

void ElasticWorker::FeedLoop() {
  // Redial schedule: 200 ms doubling to a 5 s cap with jitter (the old fixed
  // 200 ms hammered a gateway that stayed down for minutes). Sleeps in small
  // slices so Stop() is never held up by a capped delay.
  Backoff backoff(Backoff::Options{.seed = options_.member_id * 0x9e3779b9ull + 1});
  auto redial_sleep = [this, &backoff] {
    int ms = backoff.NextDelayMs();
    while (ms > 0 && running_.load(std::memory_order_acquire)) {
      const int slice = std::min(ms, 50);
      std::this_thread::sleep_for(std::chrono::milliseconds(slice));
      ms -= slice;
    }
  };
  while (running_.load(std::memory_order_acquire)) {
    auto dialed =
        net::Socket::Connect(options_.head_host, options_.head_port);
    if (!dialed.ok()) {
      redial_sleep();
      continue;
    }
    net::Socket socket = std::move(*dialed);
    net::ReplicaSubscribeMsg sub;
    sub.deployment_id = options_.deployment_id;
    sub.member_id = options_.member_id;
    sub.state = options_.state;
    if (!net::WriteFrameBlocking(socket, net::FrameType::kReplicaSubscribe,
                                 sub.Encode())
             .ok()) {
      redial_sleep();
      continue;
    }
    backoff.Reset();
    // Fresh connection: whatever queued while disconnected is superseded by
    // a tail replay (base + deltas per partition, in epoch order).
    {
      std::lock_guard<std::mutex> lock(feed_mutex_);
      feed_queue_.clear();
      feed_replay_ = true;
    }
    bool wire_ok = true;
    while (wire_ok && running_.load(std::memory_order_acquire)) {
      std::vector<net::ReplicaEpochMsg> out;
      bool replay = false;
      {
        std::unique_lock<std::mutex> lock(feed_mutex_);
        feed_cv_.wait_for(lock, std::chrono::milliseconds(100), [this] {
          return !feed_queue_.empty() || feed_replay_ ||
                 !running_.load(std::memory_order_acquire);
        });
        if (!running_.load(std::memory_order_acquire)) {
          return;
        }
        replay = feed_replay_;
        feed_replay_ = false;
        while (!feed_queue_.empty()) {
          out.push_back(std::move(feed_queue_.front()));
          feed_queue_.pop_front();
        }
      }
      if (replay) {
        std::vector<net::ReplicaEpochMsg> msgs;
        for (uint32_t p = 0; p < options_.partitions; ++p) {
          auto entries = tails_[p]->Replay();
          if (entries.empty()) {
            continue;
          }
          for (auto& e : entries) {
            net::ReplicaEpochMsg m;
            m.partition = p;
            m.member_id = options_.member_id;
            m.kind = e.base ? net::kEpochBase : net::kEpochDelta;
            m.epoch = e.epoch;
            m.chunks = std::move(e.chunks);
            msgs.push_back(std::move(m));
          }
          // Close the replay with an announce at the tail's watermark: a
          // freshly-(re)started gateway becomes read-admissible immediately
          // instead of waiting for the next checkpoint's announce.
          net::ReplicaEpochMsg announce;
          announce.partition = p;
          announce.member_id = options_.member_id;
          announce.kind = net::kEpochAnnounce;
          announce.epoch = tails_[p]->latest_epoch();
          msgs.push_back(std::move(announce));
        }
        msgs.insert(msgs.end(), std::make_move_iterator(out.begin()),
                    std::make_move_iterator(out.end()));
        out = std::move(msgs);
      }
      for (auto& m : out) {
        if (!net::WriteFrameBlocking(socket, net::FrameType::kReplicaEpoch,
                                     m.Encode())
                 .ok()) {
          wire_ok = false;  // gateway gone: redial and replay
          break;
        }
        feed_published_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
}

void ElasticWorker::HandleControl(net::Socket& socket,
                                  const net::ControlMsg& msg) {
  switch (msg.op) {
    case net::kCtrlPing:
      break;  // liveness is the connection itself
    case net::kCtrlCheckpoint: {
      Status st = Checkpoint();
      uint64_t epoch;
      {
        std::lock_guard<std::mutex> lock(ingest_mutex_);
        epoch = epoch_;
      }
      net::ControlMsg reply;
      reply.op = st.ok() ? net::kCtrlDone : net::kCtrlError;
      reply.arg = epoch;
      reply.text = st.ok() ? "checkpoint" : st.ToString();
      (void)net::WriteFrameBlocking(socket, net::FrameType::kControl,
                                    reply.Encode());
      break;
    }
    case net::kCtrlCutover:
      HandleCutover(socket, msg.partition);
      break;
    case net::kCtrlRelease: {
      // Abort/cleanup: drop the partition (and any durable claim on it).
      std::scoped_lock op(op_mutex_);
      bool was_owned;
      {
        std::lock_guard<std::mutex> ingest(ingest_mutex_);
        was_owned = owned_.erase(msg.partition) > 0;
        for (uint32_t ei = 0; ei < options_.entries.size(); ++ei) {
          uint32_t si =
              SourceInstanceOf(ei, msg.partition, options_.partitions);
          received_.erase(si);
          durable_.erase(si);
        }
        auto* backend =
            deployment_->StateInstance(options_.state, msg.partition);
        if (backend != nullptr) {
          backend->Clear();
        }
      }
      {
        std::lock_guard<std::mutex> lock(outbound_mutex_);
        if (outbound_ && outbound_->partition == msg.partition) {
          outbound_.reset();
        }
      }
      if (!tails_.empty()) {
        tails_[msg.partition]->Clear();
      }
      if (was_owned) {
        (void)Checkpoint();  // make the release durable
      }
      break;
    }
    default:
      break;
  }
}

Status ElasticWorker::StreamEpoch(state::StateBackend& backend,
                                  net::Socket& socket, bool delta,
                                  const char* phase) {
  checkpoint::ChunkStreamWriter::Options wopts;
  wopts.num_chunks = kChunksPerPartition;
  wopts.codec = state::kChunkCodecPrefix;
  wopts.delta = delta;
  wopts.segment_bytes = kMigrateSegmentBytes;
  uint8_t flags = delta ? net::kMigrateChunkDelta : 0;
  checkpoint::ChunkStreamWriter writer(
      [this, &socket, flags, phase](uint32_t chunk_index,
                                    std::vector<uint8_t> segment) -> Status {
        net::MigrateChunkMsg msg;
        msg.chunk_index = chunk_index;
        msg.flags = flags;
        msg.bytes = std::move(segment);
        Status st = net::WriteFrameBlocking(
            socket, net::FrameType::kMigrateChunk, msg.Encode());
        CrashPoint(phase);
        return st;
      },
      options_.state, wopts);
  SDG_RETURN_IF_ERROR(writer.Begin());
  if (delta) {
    backend.SerializeDirtyRecords(writer.AsDeltaSink());
  } else {
    backend.SerializeRecords(writer.AsSink());
  }
  SDG_ASSIGN_OR_RETURN(auto stats, writer.Finish());
  (void)stats;
  return Status::Ok();
}

Status ElasticWorker::AwaitMigrateAck(net::Socket& socket,
                                      net::FrameDecoder& carry) {
  SDG_ASSIGN_OR_RETURN(net::Frame frame,
                       net::ReadFrameBlocking(socket, carry));
  if (frame.type != net::FrameType::kMigrateAck) {
    return Status(StatusCode::kDataLoss, "migration: expected ack frame");
  }
  SDG_ASSIGN_OR_RETURN(auto ack, net::MigrateAckMsg::Decode(frame.payload));
  if (!ack.ok) {
    return Status(StatusCode::kAborted, "migration rejected: " + ack.message);
  }
  return Status::Ok();
}

void ElasticWorker::HandleMigrateBegin(net::Socket& control,
                                       const net::MigrateBeginMsg& cmd) {
  auto fail = [&](const Status& st) {
    SDG_LOG(kWarning) << "worker " << options_.member_id << " migrate-out p"
                   << cmd.partition << " failed: " << st.ToString();
    net::ControlMsg err;
    err.op = net::kCtrlError;
    err.partition = cmd.partition;
    err.text = st.ToString();
    (void)net::WriteFrameBlocking(control, net::FrameType::kControl,
                                  err.Encode());
  };
  {
    std::lock_guard<std::mutex> lock(ingest_mutex_);
    if (owned_.find(cmd.partition) == owned_.end()) {
      fail(Status(StatusCode::kFailedPrecondition, "partition not owned"));
      return;
    }
  }
  // Migration epochs consume the backend's dirty set, so the replica feed's
  // delta baseline is gone: drop the tail and let the next feed epoch re-base.
  if (!tails_.empty()) {
    tails_[cmd.partition]->Clear();
  }
  auto dialed = net::Socket::Connect(cmd.target_host,
                                     static_cast<uint16_t>(cmd.target_port));
  if (!dialed.ok()) {
    fail(dialed.status());
    return;
  }
  net::Socket session = std::move(*dialed);
  net::FrameDecoder carry;
  net::MigrateBeginMsg begin;
  begin.state = options_.state;
  begin.partition = cmd.partition;
  begin.num_partitions = options_.partitions;
  Status st = net::WriteFrameBlocking(session, net::FrameType::kMigrateBegin,
                                      begin.Encode());
  if (!st.ok()) {
    fail(st);
    return;
  }
  auto* backend = deployment_->StateInstance(options_.state, cmd.partition);

  // Base epoch: freeze, stream the full state while processing continues
  // against the dirty overlay, commit the epoch as the delta baseline.
  {
    std::scoped_lock op(op_mutex_);
    backend->EnableDeltaTracking();
    backend->BeginCheckpoint();
    st = StreamEpoch(*backend, session, /*delta=*/false, "migrate.base");
    backend->EndCheckpoint();
    backend->ResolveEpoch(st.ok());
  }
  net::MigrateChunkMsg apply;
  apply.flags = net::kMigrateChunkApply;
  if (st.ok()) {
    st = net::WriteFrameBlocking(session, net::FrameType::kMigrateChunk,
                                 apply.Encode());
  }
  if (st.ok()) {
    st = AwaitMigrateAck(session, carry);
  }

  // Delta epochs: ship what changed while the base was in flight; each round
  // shrinks the remainder the cutover has to stop the world for.
  for (int round = 0; st.ok() && round < kMigrateDeltaRounds; ++round) {
    {
      std::scoped_lock op(op_mutex_);
      backend->BeginCheckpoint();
      if (backend->DeltaReady()) {
        st = StreamEpoch(*backend, session, /*delta=*/true, "migrate.delta");
      } else {
        st = StreamEpoch(*backend, session, /*delta=*/false, "migrate.delta");
      }
      backend->EndCheckpoint();
      backend->ResolveEpoch(st.ok());
    }
    if (st.ok()) {
      st = net::WriteFrameBlocking(session, net::FrameType::kMigrateChunk,
                                   apply.Encode());
    }
    if (st.ok()) {
      st = AwaitMigrateAck(session, carry);
    }
  }
  if (!st.ok()) {
    fail(st);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(outbound_mutex_);
    outbound_.emplace(OutboundMigration{std::move(session), std::move(carry),
                                        cmd.partition});
  }
  net::ControlMsg prepared;
  prepared.op = net::kCtrlPrepared;
  prepared.partition = cmd.partition;
  (void)net::WriteFrameBlocking(control, net::FrameType::kControl,
                                prepared.Encode());
}

void ElasticWorker::HandleCutover(net::Socket& control, uint32_t partition) {
  CrashPoint("migrate.precutover");
  std::optional<OutboundMigration> session;
  {
    std::lock_guard<std::mutex> lock(outbound_mutex_);
    if (outbound_ && outbound_->partition == partition) {
      session = std::move(outbound_);
      outbound_.reset();
    }
  }
  auto fail = [&](const Status& st) {
    SDG_LOG(kWarning) << "worker " << options_.member_id << " cutover p"
                   << partition << " failed: " << st.ToString();
    net::ControlMsg err;
    err.op = net::kCtrlError;
    err.partition = partition;
    err.text = st.ToString();
    (void)net::WriteFrameBlocking(control, net::FrameType::kControl,
                                  err.Encode());
  };
  if (!session) {
    fail(Status(StatusCode::kFailedPrecondition, "no prepared session"));
    return;
  }
  // The final delta eats the dirty set whether or not cutover lands; either
  // way the feed tail's baseline is invalid for this partition.
  if (!tails_.empty()) {
    tails_[partition]->Clear();
  }
  auto* backend = deployment_->StateInstance(options_.state, partition);
  std::vector<net::SourceWatermark> watermarks;
  Status st;
  {
    std::scoped_lock op(op_mutex_);
    std::lock_guard<std::mutex> ingest(ingest_mutex_);
    // Stop serving the partition, quiesce, and capture a final delta that
    // agrees exactly with the handed-off watermarks: everything applied is
    // at or below them, everything above them stays in the head's log.
    owned_.erase(partition);
    deployment_->Drain();
    for (uint32_t ei = 0; ei < options_.entries.size(); ++ei) {
      uint32_t si = SourceInstanceOf(ei, partition, options_.partitions);
      uint64_t wm = 0;
      if (auto it = received_.find(si); it != received_.end()) {
        wm = it->second;
      }
      watermarks.push_back({si, wm});
      received_.erase(si);
      durable_.erase(si);
    }
    backend->BeginCheckpoint();
    if (backend->DeltaReady()) {
      st = StreamEpoch(*backend, session->socket, /*delta=*/true,
                       "migrate.final");
    } else {
      st = StreamEpoch(*backend, session->socket, /*delta=*/false,
                       "migrate.final");
    }
    backend->EndCheckpoint();
    backend->ResolveEpoch(st.ok());
  }
  net::MigrateChunkMsg apply;
  apply.flags = net::kMigrateChunkApply;
  if (st.ok()) {
    st = net::WriteFrameBlocking(session->socket,
                                 net::FrameType::kMigrateChunk,
                                 apply.Encode());
  }
  if (st.ok()) {
    st = AwaitMigrateAck(session->socket, session->carry);
  }
  if (st.ok()) {
    net::MigrateCommitMsg commit;
    commit.state = options_.state;
    commit.partition = partition;
    commit.watermarks = watermarks;
    st = net::WriteFrameBlocking(session->socket,
                                 net::FrameType::kMigrateCommit,
                                 commit.Encode());
    CrashPoint("migrate.postcommit");
  }
  if (st.ok()) {
    st = AwaitMigrateAck(session->socket, session->carry);
  }
  if (!st.ok()) {
    // The target never durably committed: take the partition back.
    {
      std::lock_guard<std::mutex> ingest(ingest_mutex_);
      owned_.insert(partition);
      for (const auto& sw : watermarks) {
        received_[sw.source_instance] = sw.watermark;
      }
    }
    fail(st);
    return;
  }
  // The target owns the partition durably; drop our copy under the stripe
  // fence so no straggling writer can resurrect records.
  backend->ExclusiveBarrier([] {});
  backend->Clear();
  SDG_LOG(kInfo) << "worker " << options_.member_id << " migrated out p"
                 << partition;
}

void ElasticWorker::OnMigrationSession(net::Socket socket,
                                       net::FrameDecoder carry,
                                       const net::MigrateBeginMsg& begin) {
  auto reject = [&](const std::string& why) {
    net::MigrateAckMsg nack;
    nack.ok = false;
    nack.message = why;
    (void)net::WriteFrameBlocking(socket, net::FrameType::kMigrateAck,
                                  nack.Encode());
  };
  if (begin.state != options_.state ||
      begin.num_partitions != options_.partitions ||
      begin.partition >= options_.partitions) {
    reject("migration shape mismatch");
    return;
  }
  uint32_t partition = begin.partition;
  {
    std::lock_guard<std::mutex> lock(ingest_mutex_);
    if (owned_.find(partition) != owned_.end()) {
      reject("partition already owned");
      return;
    }
  }
  auto* backend = deployment_->StateInstance(options_.state, partition);
  backend->Clear();  // drop any orphan of an aborted earlier session
  if (!tails_.empty()) {
    tails_[partition]->Clear();  // stale retained epochs from past ownership
  }
  bool touched = false;
  // Segments per chunk index, concatenated in arrival order: together they
  // are one streamed v2 chunk blob (the prefix-codec context spans segment
  // boundaries, so chunks must be reassembled before ChunkReader::Open).
  std::map<uint32_t, std::vector<uint8_t>> pending;
  for (;;) {
    auto frame = net::ReadFrameBlocking(socket, carry);
    if (!frame.ok()) {
      break;  // source died mid-session: abort below
    }
    if (frame->type == net::FrameType::kMigrateChunk) {
      auto msg = net::MigrateChunkMsg::Decode(frame->payload);
      if (!msg.ok()) {
        break;
      }
      if ((msg->flags & net::kMigrateChunkApply) != 0) {
        Status st;
        for (auto& [index, blob] : pending) {
          (void)index;
          st = state::RestoreChunk(*backend, blob);
          if (!st.ok()) {
            break;
          }
          touched = true;
        }
        pending.clear();
        if (!st.ok()) {
          reject(st.ToString());
          break;
        }
        net::MigrateAckMsg ack;
        ack.ok = true;
        if (!net::WriteFrameBlocking(socket, net::FrameType::kMigrateAck,
                                     ack.Encode())
                 .ok()) {
          break;
        }
        continue;
      }
      auto& blob = pending[msg->chunk_index];
      blob.insert(blob.end(), msg->bytes.begin(), msg->bytes.end());
      touched = true;
      continue;
    }
    if (frame->type == net::FrameType::kMigrateCommit) {
      auto commit = net::MigrateCommitMsg::Decode(frame->payload);
      if (!commit.ok()) {
        break;
      }
      {
        std::lock_guard<std::mutex> lock(ingest_mutex_);
        owned_.insert(partition);
        for (const auto& sw : commit->watermarks) {
          received_[sw.source_instance] =
              std::max(received_[sw.source_instance], sw.watermark);
        }
      }
      // Persist before acking: once the source hears the ack it clears its
      // copy, so the handoff must already be durable here.
      Status st = Checkpoint();
      if (!st.ok()) {
        std::lock_guard<std::mutex> lock(ingest_mutex_);
        owned_.erase(partition);
        for (const auto& sw : commit->watermarks) {
          received_.erase(sw.source_instance);
          durable_.erase(sw.source_instance);
        }
        reject(st.ToString());
        break;
      }
      net::MigrateAckMsg ack;
      ack.ok = true;
      (void)net::WriteFrameBlocking(socket, net::FrameType::kMigrateAck,
                                    ack.Encode());
      net::ControlMsg done;
      done.op = net::kCtrlDone;
      done.partition = partition;
      done.text = "migrated";
      (void)SendControlToHead(done);
      SDG_LOG(kInfo) << "worker " << options_.member_id << " migrated in p"
                     << partition;
      return;
    }
    break;  // unexpected frame
  }
  // Aborted before commit: discard the partial copy.
  std::lock_guard<std::mutex> lock(ingest_mutex_);
  if (owned_.find(partition) == owned_.end() && touched) {
    backend->Clear();
  }
}

// ===========================================================================
// ElasticHead

ElasticHead::ElasticHead(ElasticHeadOptions options)
    : options_(std::move(options)) {
  size_t sources = options_.entries.size() * options_.partitions;
  parts_.reserve(options_.partitions);
  for (uint32_t p = 0; p < options_.partitions; ++p) {
    parts_.push_back(std::make_unique<Part>());
  }
  logs_.reserve(sources);
  clocks_.reserve(sources);
  for (size_t i = 0; i < sources; ++i) {
    logs_.push_back(std::make_unique<runtime::OutputBuffer>());
    clocks_.push_back(std::make_unique<LogicalClock>());
  }
}

ElasticHead::~ElasticHead() { Stop(); }

Status ElasticHead::Start() {
  if (!options_.backup_root.empty()) {
    checkpoint::BackupStoreOptions sopts;
    sopts.root = options_.backup_root;
    sopts.num_backup_nodes = options_.backup_nodes;
    store_ = std::make_unique<checkpoint::BackupStore>(std::move(sopts));
  }
  if (options_.use_mux) {
    net::MuxConnection::Options mopts;
    mopts.loop = net::EventLoop::Shared();
    mopts.deployment_id = options_.deployment_id;
    mux_pool_ = std::make_unique<net::MuxPool>(mopts);
  }
  net::ChannelServerOptions nopts;
  nopts.port = options_.port;
  server_ = std::make_unique<net::ChannelServer>(std::move(nopts));
  SDG_RETURN_IF_ERROR(server_->Start(
      [](const net::Handshake&) -> Result<uint64_t> {
        return Status(StatusCode::kFailedPrecondition,
                      "head accepts no data channels");
      },
      [](const net::Handshake&, std::vector<runtime::DataItem>) {},
      [this](const net::JoinMsg& join) { return OnJoin(join); },
      [this](uint32_t member_id, net::Frame frame) {
        OnMemberFrame(member_id, std::move(frame));
      },
      /*on_migration=*/nullptr));
  running_.store(true, std::memory_order_release);
  mgmt_thread_ = std::thread([this] { ManagementLoop(); });
  return Status::Ok();
}

void ElasticHead::Stop() {
  if (!running_.exchange(false)) {
    return;
  }
  {
    std::lock_guard<std::mutex> lock(events_mutex_);
    events_cv_.notify_all();
  }
  {
    std::lock_guard<std::mutex> lock(members_mutex_);
    members_cv_.notify_all();
  }
  if (mgmt_thread_.joinable()) {
    mgmt_thread_.join();
  }
  for (auto& part : parts_) {
    std::lock_guard<std::mutex> lock(part->mu);
    for (auto& chan : part->chans) {
      chan->Close();
    }
    part->chans.clear();
  }
  if (mux_pool_) {
    mux_pool_->CloseAll();
  }
  if (server_) {
    server_->Stop();
  }
}

uint16_t ElasticHead::port() const { return server_->port(); }

Result<uint32_t> ElasticHead::OnJoin(const net::JoinMsg& join) {
  if (join.deployment_id != options_.deployment_id) {
    return Status(StatusCode::kFailedPrecondition, "wrong deployment");
  }
  std::lock_guard<std::mutex> lock(members_mutex_);
  Member& m = members_[join.member_id];
  m.id = join.member_id;
  m.host = join.host.empty() ? "127.0.0.1" : join.host;
  m.data_port = static_cast<uint16_t>(join.data_port);
  m.alive = true;
  m.suspected = false;
  m.straggler = false;
  m.last_seen = std::chrono::steady_clock::now();
  members_cv_.notify_all();
  SDG_LOG(kInfo) << "head: member " << join.member_id << " joined ("
                 << m.host << ":" << m.data_port << " '" << join.name << "')";
  return join.member_id;
}

void ElasticHead::SetResponseHandler(ResponseHandler handler) {
  std::lock_guard<std::mutex> lock(response_mutex_);
  response_handler_ = std::move(handler);
}

void ElasticHead::OnMemberFrame(uint32_t member_id, net::Frame frame) {
  if (frame.type == net::FrameType::kResponse) {
    // Strong-read result riding the worker's control channel back to the
    // gateway. Handler must not block: this is the member IO thread.
    auto resp = net::ResponseMsg::Decode(frame.payload);
    if (!resp.ok()) {
      return;
    }
    ResponseHandler handler;
    {
      std::lock_guard<std::mutex> lock(response_mutex_);
      handler = response_handler_;
    }
    if (handler) {
      handler(member_id, std::move(*resp));
    }
    return;
  }
  // IO thread: record and notify only.
  if (frame.type != net::FrameType::kControl) {
    return;
  }
  auto msg = net::ControlMsg::Decode(frame.payload);
  if (!msg.ok()) {
    return;
  }
  {
    std::lock_guard<std::mutex> lock(members_mutex_);
    auto it = members_.find(member_id);
    if (it != members_.end()) {
      it->second.last_seen = std::chrono::steady_clock::now();
      if (msg->op == net::kCtrlStraggler) {
        it->second.straggler = true;
      }
    }
  }
  if (msg->op == net::kCtrlStraggler) {
    return;
  }
  std::lock_guard<std::mutex> lock(events_mutex_);
  events_.push_back({member_id, std::move(*msg)});
  while (events_.size() > 1024) {
    events_.pop_front();
  }
  events_cv_.notify_all();
}

Result<net::ControlMsg> ElasticHead::WaitForControl(uint32_t member,
                                                    uint32_t op,
                                                    uint32_t partition,
                                                    const std::string& text,
                                                    int timeout_ms) {
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(timeout_ms);
  std::unique_lock<std::mutex> lock(events_mutex_);
  for (;;) {
    for (auto it = events_.begin(); it != events_.end(); ++it) {
      if (it->member != member || it->msg.partition != partition) {
        continue;
      }
      bool match = it->msg.op == net::kCtrlError ||
                   (it->msg.op == op &&
                    (text.empty() || it->msg.text == text));
      if (match) {
        net::ControlMsg msg = std::move(it->msg);
        events_.erase(it);
        return msg;
      }
    }
    if (!running_.load(std::memory_order_acquire)) {
      return Status(StatusCode::kAborted, "head stopping");
    }
    if (events_cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
      return Status(StatusCode::kDeadlineExceeded,
                    "timed out waiting for control reply");
    }
  }
}

void ElasticHead::PurgeControl(uint32_t op, uint32_t partition,
                               const std::string& text) {
  std::lock_guard<std::mutex> lock(events_mutex_);
  for (auto it = events_.begin(); it != events_.end();) {
    bool match = it->msg.partition == partition &&
                 (it->msg.op == op || it->msg.op == net::kCtrlError) &&
                 (text.empty() || it->msg.op == net::kCtrlError ||
                  it->msg.text == text);
    it = match ? events_.erase(it) : ++it;
  }
}

Result<ElasticHead::Member> ElasticHead::GetMember(uint32_t id) const {
  std::lock_guard<std::mutex> lock(members_mutex_);
  auto it = members_.find(id);
  if (it == members_.end() || !it->second.alive) {
    return Status(StatusCode::kNotFound,
                  "member " + std::to_string(id) + " not alive");
  }
  return it->second;
}

std::vector<uint32_t> ElasticHead::AliveMembers() const {
  std::lock_guard<std::mutex> lock(members_mutex_);
  std::vector<uint32_t> out;
  for (const auto& [id, m] : members_) {
    if (m.alive) {
      out.push_back(id);
    }
  }
  return out;
}

uint32_t ElasticHead::OwnerOf(uint32_t partition) const {
  auto& part = *parts_[partition];
  std::lock_guard<std::mutex> lock(part.mu);
  return part.owner;
}

Result<uint32_t> ElasticHead::PickTarget(uint32_t exclude) const {
  std::map<uint32_t, size_t> owned;
  for (const auto& part : parts_) {
    std::lock_guard<std::mutex> lock(part->mu);
    if (part->owner != kNoOwner) {
      ++owned[part->owner];
    }
  }
  std::lock_guard<std::mutex> lock(members_mutex_);
  uint32_t best = kNoOwner;
  size_t best_owned = SIZE_MAX;
  for (const auto& [id, m] : members_) {
    if (!m.alive || id == exclude) {
      continue;
    }
    size_t n = owned.count(id) ? owned[id] : 0;
    if (n < best_owned) {
      best = id;
      best_owned = n;
    }
  }
  if (best == kNoOwner) {
    return Status(StatusCode::kNotFound, "no eligible member");
  }
  return best;
}

bool ElasticHead::WaitForMembers(size_t n, int timeout_ms) {
  std::unique_lock<std::mutex> lock(members_mutex_);
  return members_cv_.wait_for(
      lock, std::chrono::milliseconds(timeout_ms), [&] {
        size_t alive = 0;
        for (const auto& [id, m] : members_) {
          alive += m.alive ? 1 : 0;
        }
        return alive >= n;
      });
}

bool ElasticHead::WaitForAssignment(int timeout_ms) {
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(timeout_ms);
  for (;;) {
    bool all = true;
    for (const auto& part : parts_) {
      std::lock_guard<std::mutex> lock(part->mu);
      all = all && part->owner != kNoOwner;
    }
    if (all) {
      return true;
    }
    if (std::chrono::steady_clock::now() > deadline ||
        !running_.load(std::memory_order_acquire)) {
      return false;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

Status ElasticHead::FlipOwnerLocked(Part& part, uint32_t partition,
                                    uint32_t member) {
  SDG_ASSIGN_OR_RETURN(Member m, GetMember(member));
  for (auto& chan : part.chans) {
    chan->Close();
  }
  part.chans.clear();
  part.owner = member;
  Status first;
  for (uint32_t ei = 0; ei < options_.entries.size(); ++ei) {
    uint32_t si = SourceInstanceOf(ei, partition, options_.partitions);
    net::RemoteChannelOptions copts;
    copts.host = m.host;
    copts.port = m.data_port;
    copts.deployment_id = options_.deployment_id;
    copts.source_task = runtime::kRemoteSourceTask;
    copts.source_instance = si;
    copts.entry = options_.entries[ei];
    copts.reconnect_attempts = options_.channel_reconnect_attempts;
    copts.reconnect_backoff_ms = options_.channel_reconnect_backoff_ms;
    copts.mux = mux_pool_.get();  // null when use_mux is off
    auto chan =
        std::make_shared<net::RemoteChannel>(copts, logs_[si].get());
    // Connect replays everything logged past the owner's durable watermark;
    // a failure here is repaired by the next Deliver (or the quiesce poke).
    Status st = chan->Connect();
    if (first.ok() && !st.ok()) {
      first = st;
    }
    part.chans.push_back(std::move(chan));
  }
  return first;
}

Status ElasticHead::Inject(uint32_t entry_index, Tuple tuple,
                           int deadline_ms) {
  if (entry_index >= options_.entries.size()) {
    return Status(StatusCode::kInvalidArgument, "bad entry index");
  }
  if (tuple.empty()) {
    return Status(StatusCode::kInvalidArgument, "empty tuple");
  }
  uint32_t partition =
      static_cast<uint32_t>(tuple[0].Hash() % options_.partitions);
  uint32_t si = SourceInstanceOf(entry_index, partition, options_.partitions);
  Part& part = *parts_[partition];
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(deadline_ms);
  for (;;) {
    std::shared_ptr<net::RemoteChannel> chan;
    {
      std::lock_guard<std::mutex> lock(part.mu);
      if (part.owner != kNoOwner && entry_index < part.chans.size()) {
        chan = part.chans[entry_index];
      }
    }
    if (chan) {
      std::lock_guard<std::mutex> send(part.send_mu);
      runtime::DataItem item;
      item.from = {runtime::kRemoteSourceTask, si};
      item.ts = clocks_[si]->Next();
      item.payload = tuple;
      if (chan->Deliver(std::move(item))) {
        return Status::Ok();
      }
      // Not logged (wire down past the redial budget, or mid-flip): retry
      // with a fresh timestamp — holes in the sequence are harmless, the
      // watermark protocol only needs monotonicity.
    }
    if (std::chrono::steady_clock::now() > deadline) {
      return Status(StatusCode::kDeadlineExceeded,
                    "inject: partition " + std::to_string(partition) +
                        " unreachable");
    }
    if (!running_.load(std::memory_order_acquire)) {
      return Status(StatusCode::kAborted, "head stopping");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

Status ElasticHead::InjectBatch(uint32_t entry_index,
                                std::vector<TaggedTuple> tuples,
                                int deadline_ms) {
  if (entry_index >= options_.entries.size()) {
    return Status(StatusCode::kInvalidArgument, "bad entry index");
  }
  std::vector<std::vector<TaggedTuple>> by_part(options_.partitions);
  for (auto& tt : tuples) {
    if (tt.tuple.empty()) {
      return Status(StatusCode::kInvalidArgument, "empty tuple");
    }
    uint32_t partition =
        static_cast<uint32_t>(tt.tuple[0].Hash() % options_.partitions);
    by_part[partition].push_back(std::move(tt));
  }
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(deadline_ms);
  for (uint32_t partition = 0; partition < options_.partitions; ++partition) {
    auto& batch = by_part[partition];
    if (batch.empty()) {
      continue;
    }
    uint32_t si =
        SourceInstanceOf(entry_index, partition, options_.partitions);
    Part& part = *parts_[partition];
    size_t accepted = 0;
    for (;;) {
      std::shared_ptr<net::RemoteChannel> chan;
      {
        std::lock_guard<std::mutex> lock(part.mu);
        if (part.owner != kNoOwner && entry_index < part.chans.size()) {
          chan = part.chans[entry_index];
        }
      }
      if (chan) {
        std::lock_guard<std::mutex> send(part.send_mu);
        std::vector<runtime::DataItem> items;
        items.reserve(batch.size() - accepted);
        // The unaccepted suffix is rebuilt with fresh timestamps on every
        // attempt (same monotonicity argument as Inject: holes are fine).
        for (size_t i = accepted; i < batch.size(); ++i) {
          runtime::DataItem item;
          item.from = {runtime::kRemoteSourceTask, si};
          item.ts = clocks_[si]->Next();
          item.user_tag = batch[i].tag;
          item.payload = batch[i].tuple;
          items.push_back(std::move(item));
        }
        accepted += chan->DeliverAll(std::move(items));
        if (accepted >= batch.size()) {
          break;
        }
      }
      if (std::chrono::steady_clock::now() > deadline) {
        return Status(StatusCode::kDeadlineExceeded,
                      "inject batch: partition " + std::to_string(partition) +
                          " unreachable");
      }
      if (!running_.load(std::memory_order_acquire)) {
        return Status(StatusCode::kAborted, "head stopping");
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
  return Status::Ok();
}

Status ElasticHead::PushPartition(
    uint32_t partition, uint32_t member,
    const std::vector<std::vector<uint8_t>>& chunks,
    const std::vector<net::SourceWatermark>& watermarks) {
  std::lock_guard<std::mutex> migrate(migrate_mutex_);
  SDG_ASSIGN_OR_RETURN(Member m, GetMember(member));
  SDG_ASSIGN_OR_RETURN(net::Socket socket,
                       net::Socket::Connect(m.host, m.data_port));
  socket.SetRecvTimeout(options_.migrate_timeout_ms);
  net::FrameDecoder carry;
  net::MigrateBeginMsg begin;
  begin.state = options_.state;
  begin.partition = partition;
  begin.num_partitions = options_.partitions;
  SDG_RETURN_IF_ERROR(net::WriteFrameBlocking(
      socket, net::FrameType::kMigrateBegin, begin.Encode()));
  for (uint32_t i = 0; i < chunks.size(); ++i) {
    net::MigrateChunkMsg msg;
    msg.chunk_index = i;
    msg.bytes = chunks[i];
    SDG_RETURN_IF_ERROR(net::WriteFrameBlocking(
        socket, net::FrameType::kMigrateChunk, msg.Encode()));
  }
  net::MigrateChunkMsg apply;
  apply.flags = net::kMigrateChunkApply;
  SDG_RETURN_IF_ERROR(net::WriteFrameBlocking(
      socket, net::FrameType::kMigrateChunk, apply.Encode()));
  auto await_ack = [&]() -> Status {
    SDG_ASSIGN_OR_RETURN(net::Frame frame,
                         net::ReadFrameBlocking(socket, carry));
    if (frame.type != net::FrameType::kMigrateAck) {
      return Status(StatusCode::kDataLoss, "push: expected ack");
    }
    SDG_ASSIGN_OR_RETURN(auto ack, net::MigrateAckMsg::Decode(frame.payload));
    if (!ack.ok) {
      return Status(StatusCode::kAborted, "push rejected: " + ack.message);
    }
    return Status::Ok();
  };
  SDG_RETURN_IF_ERROR(await_ack());
  net::MigrateCommitMsg commit;
  commit.state = options_.state;
  commit.partition = partition;
  commit.watermarks = watermarks;
  SDG_RETURN_IF_ERROR(net::WriteFrameBlocking(
      socket, net::FrameType::kMigrateCommit, commit.Encode()));
  SDG_RETURN_IF_ERROR(await_ack());
  Part& part = *parts_[partition];
  {
    std::lock_guard<std::mutex> lock(part.mu);
    (void)FlipOwnerLocked(part, partition, member);
  }
  // The target also reported kCtrlDone on its control channel; this push
  // drove the session itself, so drop the notification.
  PurgeControl(net::kCtrlDone, partition, "migrated");
  return Status::Ok();
}

Status ElasticHead::MigratePartition(uint32_t partition,
                                     uint32_t target_member) {
  if (partition >= options_.partitions) {
    return Status(StatusCode::kInvalidArgument, "bad partition");
  }
  std::lock_guard<std::mutex> migrate(migrate_mutex_);
  uint32_t source = OwnerOf(partition);
  if (source == kNoOwner) {
    return Status(StatusCode::kFailedPrecondition, "partition unowned");
  }
  if (source == target_member) {
    return Status(StatusCode::kInvalidArgument, "target already owns it");
  }
  SDG_ASSIGN_OR_RETURN(Member target, GetMember(target_member));
  PurgeControl(net::kCtrlPrepared, partition, "");
  PurgeControl(net::kCtrlDone, partition, "migrated");

  auto abort = [&](const Status& why) -> Status {
    net::ControlMsg release;
    release.op = net::kCtrlRelease;
    release.partition = partition;
    (void)server_->SendToMember(target_member, net::FrameType::kControl,
                                release.Encode());
    SDG_LOG(kWarning) << "head: migration of p" << partition << " to m"
                   << target_member << " aborted: " << why.ToString();
    return why;
  };

  net::MigrateBeginMsg begin;
  begin.state = options_.state;
  begin.partition = partition;
  begin.num_partitions = options_.partitions;
  begin.target_host = target.host;
  begin.target_port = target.data_port;
  if (!server_->SendToMember(source, net::FrameType::kMigrateBegin,
                             begin.Encode())) {
    return abort(Status(StatusCode::kUnavailable, "source unreachable"));
  }
  auto prepared = WaitForControl(source, net::kCtrlPrepared, partition, "",
                                 options_.migrate_timeout_ms);
  if (!prepared.ok()) {
    return abort(prepared.status());
  }
  if (prepared->op == net::kCtrlError) {
    return abort(Status(StatusCode::kAborted,
                        "source failed to prepare: " + prepared->text));
  }

  // Cutover: pause the partition's channels, order the final handoff, flip
  // on the target's durable confirmation. The pause window below is the
  // migration pause the bench and the smoke assert on.
  Part& part = *parts_[partition];
  std::unique_lock<std::mutex> pause(part.mu);
  auto t0 = std::chrono::steady_clock::now();
  net::ControlMsg cutover;
  cutover.op = net::kCtrlCutover;
  cutover.partition = partition;
  if (!server_->SendToMember(source, net::FrameType::kControl,
                             cutover.Encode())) {
    pause.unlock();
    return abort(Status(StatusCode::kUnavailable, "source lost at cutover"));
  }
  auto done = WaitForControl(target_member, net::kCtrlDone, partition,
                             "migrated", options_.migrate_timeout_ms);
  if (!done.ok() || done->op == net::kCtrlError) {
    pause.unlock();
    return abort(done.ok() ? Status(StatusCode::kAborted,
                                    "target failed: " + done->text)
                           : done.status());
  }
  Status flip = FlipOwnerLocked(part, partition, target_member);
  double pause_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  pause.unlock();
  last_pause_ms_.store(pause_ms, std::memory_order_relaxed);
  migrations_done_.fetch_add(1, std::memory_order_relaxed);
  SDG_LOG(kInfo) << "head: migrated p" << partition << " m" << source
                 << " -> m" << target_member << " pause_ms=" << pause_ms
                 << (flip.ok() ? "" : " (reconnect pending)");
  return Status::Ok();
}

Status ElasticHead::RecoverMember(uint32_t member) {
  if (store_ == nullptr) {
    return Status(StatusCode::kFailedPrecondition, "head has no backup root");
  }
  {
    std::lock_guard<std::mutex> lock(members_mutex_);
    auto it = members_.find(member);
    if (it != members_.end()) {
      it->second.alive = false;
    }
  }
  // The dead member's last complete epoch (if it ever checkpointed). With no
  // epoch the partitions restart empty — and the head's logs, never acked,
  // still hold every item, so replay rebuilds the state.
  uint64_t epoch = 0;
  checkpoint::CheckpointMeta meta;
  auto latest = store_->LatestEpoch(member);
  if (latest.ok() && *latest > 0) {
    epoch = *latest;
    SDG_ASSIGN_OR_RETURN(meta, store_->ReadMeta(member, epoch));
  }
  std::vector<uint32_t> lost;
  for (uint32_t p = 0; p < options_.partitions; ++p) {
    if (OwnerOf(p) == member) {
      lost.push_back(p);
    }
  }
  if (lost.empty()) {
    return Status::Ok();
  }
  std::vector<uint32_t> alive = AliveMembers();
  if (alive.empty()) {
    return Status(StatusCode::kUnavailable, "no member to recover onto");
  }
  SDG_LOG(kInfo) << "head: recovering " << lost.size() << " partitions of m"
                 << member << " across " << alive.size() << " members";
  Status first;
  for (size_t i = 0; i < lost.size(); ++i) {
    uint32_t p = lost[i];
    std::vector<std::vector<uint8_t>> chunks;
    std::vector<net::SourceWatermark> watermarks;
    for (const auto& sm : meta.states) {
      if (sm.instance != p) {
        continue;
      }
      auto read = store_->ReadChunks(member, epoch,
                                     PartName(options_.state, p),
                                     sm.num_chunks);
      if (!read.ok()) {
        if (first.ok()) {
          first = read.status();
        }
        continue;
      }
      chunks = std::move(*read);
    }
    for (const auto& tm : meta.tasks) {
      if (tm.instance % options_.partitions != p) {
        continue;
      }
      for (const auto& ls : tm.last_seen) {
        watermarks.push_back({tm.instance, ls.ts});
      }
    }
    uint32_t to = alive[i % alive.size()];
    Status st = PushPartition(p, to, chunks, watermarks);
    if (!st.ok() && first.ok()) {
      first = st;
    }
  }
  return first;
}

Status ElasticHead::CheckpointMember(uint32_t member, int timeout_ms) {
  PurgeControl(net::kCtrlDone, 0, "checkpoint");
  net::ControlMsg msg;
  msg.op = net::kCtrlCheckpoint;
  if (!server_->SendToMember(member, net::FrameType::kControl, msg.Encode())) {
    return Status(StatusCode::kUnavailable,
                  "member " + std::to_string(member) + " unreachable");
  }
  SDG_ASSIGN_OR_RETURN(
      net::ControlMsg done,
      WaitForControl(member, net::kCtrlDone, 0, "checkpoint", timeout_ms));
  if (done.op == net::kCtrlError) {
    return Status(StatusCode::kAborted, "checkpoint failed: " + done.text);
  }
  return Status::Ok();
}

Status ElasticHead::CheckpointAll(int timeout_ms) {
  for (uint32_t id : AliveMembers()) {
    SDG_RETURN_IF_ERROR(CheckpointMember(id, timeout_ms));
  }
  return Status::Ok();
}

size_t ElasticHead::UnackedTotal() const {
  size_t n = 0;
  for (const auto& log : logs_) {
    n += log->size();
  }
  return n;
}

bool ElasticHead::AwaitQuiesce(int timeout_ms) {
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(timeout_ms);
  auto next_checkpoint = std::chrono::steady_clock::now();
  for (;;) {
    if (UnackedTotal() == 0) {
      return true;
    }
    // Idle channels with backlog may have exhausted their background redial
    // round (e.g. the worker restarted while nothing was being injected);
    // poke them so reconnect-replay drains the logs.
    for (uint32_t p = 0; p < options_.partitions; ++p) {
      Part& part = *parts_[p];
      std::vector<std::shared_ptr<net::RemoteChannel>> chans;
      {
        std::lock_guard<std::mutex> lock(part.mu);
        chans = part.chans;
      }
      for (auto& chan : chans) {
        if (chan->UnackedCount() > 0 && !chan->connected()) {
          (void)chan->Connect();
        }
      }
    }
    // Acks only happen when a worker checkpoints, so quiescing has to drive
    // checkpoint rounds: items that were still in flight (wire or executor)
    // during one round become durable — and acked — in a later one.
    if (std::chrono::steady_clock::now() >= next_checkpoint) {
      for (uint32_t id : AliveMembers()) {
        (void)CheckpointMember(id, /*timeout_ms=*/5000);
      }
      next_checkpoint =
          std::chrono::steady_clock::now() + std::chrono::milliseconds(200);
    }
    if (std::chrono::steady_clock::now() > deadline ||
        !running_.load(std::memory_order_acquire)) {
      return UnackedTotal() == 0;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
  }
}

size_t ElasticHead::BacklogOf(uint32_t member) const {
  size_t n = 0;
  for (uint32_t p = 0; p < options_.partitions; ++p) {
    Part& part = *parts_[p];
    std::lock_guard<std::mutex> lock(part.mu);
    if (part.owner != member) {
      continue;
    }
    for (uint32_t ei = 0; ei < options_.entries.size(); ++ei) {
      n += logs_[SourceInstanceOf(ei, p, options_.partitions)]->size();
    }
  }
  return n;
}

void ElasticHead::AssignUnowned() {
  for (uint32_t p = 0; p < options_.partitions; ++p) {
    {
      std::lock_guard<std::mutex> lock(parts_[p]->mu);
      if (parts_[p]->owner != kNoOwner) {
        continue;
      }
    }
    auto target = PickTarget(kNoOwner);
    if (!target.ok()) {
      return;  // nobody joined yet
    }
    Status st = PushPartition(p, *target, {}, {});
    if (!st.ok()) {
      SDG_LOG(kWarning) << "head: assigning p" << p << " to m" << *target
                     << " failed: " << st.ToString();
    }
  }
}

void ElasticHead::MaybeScaleOut() {
  auto now = std::chrono::steady_clock::now();
  if (now - last_scale_out_ <
      std::chrono::milliseconds(options_.cooldown_ms)) {
    return;
  }
  // A member is overloaded when it reported straggling or its unacked
  // backlog is pinned high; shed one partition to the least-loaded peer.
  uint32_t overloaded = kNoOwner;
  {
    std::lock_guard<std::mutex> lock(members_mutex_);
    for (const auto& [id, m] : members_) {
      if (m.alive && m.straggler) {
        overloaded = id;
        break;
      }
    }
  }
  if (overloaded == kNoOwner) {
    size_t worst = 0;
    for (uint32_t id : AliveMembers()) {
      size_t backlog = BacklogOf(id);
      if (backlog >= options_.backlog_high && backlog > worst) {
        worst = backlog;
        overloaded = id;
      }
    }
  }
  if (overloaded == kNoOwner) {
    return;
  }
  auto target = PickTarget(overloaded);
  if (!target.ok()) {
    return;
  }
  size_t src_owned = 0;
  uint32_t candidate = kNoOwner;
  for (uint32_t p = 0; p < options_.partitions; ++p) {
    if (OwnerOf(p) == overloaded) {
      ++src_owned;
      if (candidate == kNoOwner) {
        candidate = p;
      }
    }
  }
  size_t dst_owned = 0;
  for (uint32_t p = 0; p < options_.partitions; ++p) {
    dst_owned += OwnerOf(p) == *target ? 1 : 0;
  }
  if (candidate == kNoOwner || dst_owned >= src_owned ||
      BacklogOf(*target) > options_.backlog_high / 4) {
    return;
  }
  SDG_LOG(kInfo) << "head: scale-out, shedding p" << candidate << " from m"
                 << overloaded << " to m" << *target;
  Status st = MigratePartition(candidate, *target);
  {
    std::lock_guard<std::mutex> lock(members_mutex_);
    auto it = members_.find(overloaded);
    if (it != members_.end()) {
      it->second.straggler = false;
    }
  }
  if (st.ok()) {
    last_scale_out_ = std::chrono::steady_clock::now();
  }
}

void ElasticHead::ProbeMembers() {
  std::vector<uint32_t> suspects;
  {
    std::lock_guard<std::mutex> lock(members_mutex_);
    for (auto& [id, m] : members_) {
      if (!m.alive) {
        continue;
      }
      net::ControlMsg ping;
      ping.op = net::kCtrlPing;
      bool reachable = server_->SendToMember(id, net::FrameType::kControl,
                                             ping.Encode());
      auto now = std::chrono::steady_clock::now();
      if (reachable) {
        m.suspected = false;
        m.last_seen = now;
        continue;
      }
      if (!m.suspected) {
        m.suspected = true;
        m.suspect_since = now;
        continue;
      }
      if (options_.auto_recover_ms > 0 &&
          now - m.suspect_since >
              std::chrono::milliseconds(options_.auto_recover_ms)) {
        suspects.push_back(id);
      }
    }
  }
  for (uint32_t id : suspects) {
    SDG_LOG(kWarning) << "head: member " << id << " declared dead, recovering";
    Status st = RecoverMember(id);
    if (!st.ok()) {
      SDG_LOG(kWarning) << "head: recovery of m" << id
                     << " failed: " << st.ToString();
    }
  }
}

void ElasticHead::ManagementLoop() {
  uint64_t last_probe_ms = NowMs();
  while (running_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(options_.monitor_interval_ms));
    if (!running_.load(std::memory_order_acquire)) {
      return;
    }
    AssignUnowned();
    uint64_t now = NowMs();
    if (now - last_probe_ms >= 500) {
      last_probe_ms = now;
      ProbeMembers();
    }
    if (options_.auto_scale) {
      MaybeScaleOut();
    }
  }
}

}  // namespace sdg::elastic
