// DataItem: the unit travelling along dataflow edges at runtime.
//
// Besides the tuple payload, an item carries the metadata the SDG protocols
// need: a per-source scalar timestamp (failure recovery replay/dedup, §5), a
// barrier id + expected-partials count (all-to-one synchronisation barriers
// over partial state, §3.2/§4.2), and an opaque user tag that flows from
// injection to the sink (benches use it to measure per-request latency).
#ifndef SDG_RUNTIME_DATA_ITEM_H_
#define SDG_RUNTIME_DATA_ITEM_H_

#include <cstdint>

#include "src/common/serialize.h"
#include "src/common/status.h"
#include "src/common/value.h"

namespace sdg::runtime {

// Identifies one task-element instance as a message source.
struct SourceId {
  uint32_t task = 0;
  uint32_t instance = 0;

  friend bool operator==(const SourceId& a, const SourceId& b) {
    return a.task == b.task && a.instance == b.instance;
  }
  friend bool operator<(const SourceId& a, const SourceId& b) {
    return a.task != b.task ? a.task < b.task : a.instance < b.instance;
  }
};

struct DataItem {
  SourceId from;
  // TE-generated scalar timestamp, strictly increasing per source (§5).
  uint64_t ts = 0;
  // Non-zero when this item belongs to a one-to-all/all-to-one barrier; the
  // collector gathers `expected_partials` items sharing a barrier id.
  uint64_t barrier_id = 0;
  uint32_t expected_partials = 0;
  // Opaque request tag propagated from injection to sinks.
  uint64_t user_tag = 0;
  // Set on items re-sent during recovery; receivers run duplicate detection
  // only on replayed items (normal FIFO delivery cannot duplicate).
  bool replayed = false;
  Tuple payload;

  void Serialize(BinaryWriter& w) const {
    w.Write<uint32_t>(from.task);
    w.Write<uint32_t>(from.instance);
    w.Write<uint64_t>(ts);
    w.Write<uint64_t>(barrier_id);
    w.Write<uint32_t>(expected_partials);
    w.Write<uint64_t>(user_tag);
    w.Write<uint8_t>(replayed ? 1 : 0);
    payload.Serialize(w);
  }

  static Result<DataItem> Deserialize(BinaryReader& r) {
    DataItem item;
    SDG_ASSIGN_OR_RETURN(item.from.task, r.Read<uint32_t>());
    SDG_ASSIGN_OR_RETURN(item.from.instance, r.Read<uint32_t>());
    SDG_ASSIGN_OR_RETURN(item.ts, r.Read<uint64_t>());
    SDG_ASSIGN_OR_RETURN(item.barrier_id, r.Read<uint64_t>());
    SDG_ASSIGN_OR_RETURN(item.expected_partials, r.Read<uint32_t>());
    SDG_ASSIGN_OR_RETURN(item.user_tag, r.Read<uint64_t>());
    SDG_ASSIGN_OR_RETURN(uint8_t replayed, r.Read<uint8_t>());
    item.replayed = replayed != 0;
    SDG_ASSIGN_OR_RETURN(item.payload, Tuple::Deserialize(r));
    return item;
  }

  std::vector<uint8_t> ToBytes() const {
    BinaryWriter w;
    Serialize(w);
    return std::move(w).TakeBuffer();
  }

  static Result<DataItem> FromBytes(const std::vector<uint8_t>& bytes) {
    return FromBytes(bytes.data(), bytes.size());
  }

  // Zero-copy span path: reads directly out of caller-owned bytes (e.g. a
  // reused thread-local scratch buffer) without materialising a vector.
  static Result<DataItem> FromBytes(const uint8_t* data, size_t size) {
    BinaryReader r(data, size);
    return Deserialize(r);
  }
};

}  // namespace sdg::runtime

#endif  // SDG_RUNTIME_DATA_ITEM_H_
