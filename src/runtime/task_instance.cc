#include "src/runtime/task_instance.h"

#include <chrono>

#include "src/common/logging.h"

namespace sdg::runtime {

namespace {
// Help-on-block nesting bound. A chain of full mailboxes A -> B -> C ... is
// helped by running each destination inline on the pushing thread; the chain
// length is bounded by the topology's path length, so a depth beyond this is
// a cycle of full mailboxes — which deadlocked under thread-per-instance too.
// Falling back to a bounded wait converts would-be infinite recursion into
// that same (pre-existing) deadlock instead of a stack overflow.
constexpr int kMaxHelpDepth = 64;
thread_local int tl_help_depth = 0;
}  // namespace

// TaskContext implementation bound to one (instance, input item) pair. Emits
// are coalesced into the instance's scratch vector (single runner, so no
// sharing) and routed as one batch after the task function returns — one
// routing pass (one topology-lock scope) per input item instead of one per
// emit, and no per-item allocation once the scratch capacity has warmed up.
class InstanceTaskContext final : public graph::TaskContext {
 public:
  InstanceTaskContext(TaskInstance& ti, const DataItem& cause,
                      uint32_t num_instances, std::vector<PendingEmit>& emits)
      : ti_(ti), cause_(cause), num_instances_(num_instances), emits_(emits) {}

  state::StateBackend* state() override { return ti_.state_; }

  void Emit(size_t output, Tuple tuple) override {
    emits_.push_back(PendingEmit{output, std::move(tuple)});
  }

  // Routes everything emitted so far. Called under the runner's step lock,
  // so emitted timestamps stay consistent with the checkpoint cut.
  void Flush() {
    if (emits_.empty()) {
      return;
    }
    ti_.hooks_->RouteEmits(ti_, emits_, cause_);
    emits_.clear();
  }

  uint32_t instance_id() const override { return ti_.instance_; }
  uint32_t num_instances() const override { return num_instances_; }

 private:
  TaskInstance& ti_;
  const DataItem& cause_;
  uint32_t num_instances_;
  std::vector<PendingEmit>& emits_;
};

TaskInstance::TaskInstance(const graph::TaskElement& te, uint32_t instance,
                           uint32_t node, state::StateBackend* state,
                           RuntimeHooks* hooks, Executor* executor,
                           size_t mailbox_capacity, size_t max_batch)
    : te_(te),
      instance_(instance),
      node_(node),
      state_(state),
      hooks_(hooks),
      executor_(executor),
      mailbox_(mailbox_capacity),
      max_batch_(max_batch < 1 ? 1 : max_batch) {
  // Invoked under the mailbox lock whenever items land; Ready() is a no-op
  // until Start() binds the executor, and Close/Abort serialise against it
  // on the same lock, so no ready can start after shutdown begins.
  mailbox_.SetReadyCallback([this] { Ready(); });
}

TaskInstance::~TaskInstance() {
  Abort();
  Join();
}

void TaskInstance::Start() {
  SDG_CHECK(!started_.exchange(true)) << "task instance started twice";
  BindExecutor(executor_);
  if (!mailbox_.Empty()) {
    Ready();  // items delivered before Start (restore/install paths)
  }
}

void TaskInstance::StopWhenDrained() {
  mailbox_.Close();
  Ready();  // make sure a final slice observes the close and retires
}

size_t TaskInstance::Abort() {
  size_t dropped = mailbox_.Abort();
  Ready();  // flush any carried resume_ items, then go idle
  return dropped;
}

void TaskInstance::Join() { AwaitIdle(); }

bool TaskInstance::Deliver(DataItem item) {
  std::vector<DataItem> one;
  one.push_back(std::move(item));
  return DeliverAll(std::move(one)) == 1;
}

size_t TaskInstance::DeliverAll(std::vector<DataItem>&& items) {
  if (items.empty()) {
    return 0;
  }
  size_t done = 0;
  bool closed = false;
  for (;;) {
    done = mailbox_.TryPushSome(items, done, &closed);
    if (closed || done == items.size()) {
      return done;  // on close the remainder is dropped, matching PushAll
    }
    // Mailbox full. Instead of parking this thread until the pool gets to
    // the destination (which on a saturated pool might be never, if every
    // worker is a blocked producer), drain the destination right here.
    if (tl_help_depth < kMaxHelpDepth) {
      ++tl_help_depth;
      bool ran = TryRunInline();
      --tl_help_depth;
      if (ran) {
        continue;
      }
    }
    // Someone else is running it (or the help chain is a cycle): bounded
    // wait for capacity, then retry.
    mailbox_.WaitNotFullFor(std::chrono::microseconds(200));
  }
}

std::map<SourceId, uint64_t> TaskInstance::LastSeenSnapshot() const {
  std::lock_guard<std::mutex> lock(seen_mutex_);
  return last_seen_;
}

void TaskInstance::RestoreLastSeen(const std::map<SourceId, uint64_t>& seen) {
  std::lock_guard<std::mutex> lock(seen_mutex_);
  last_seen_ = seen;
}

uint64_t TaskInstance::LastSeenFrom(const SourceId& src) const {
  std::lock_guard<std::mutex> lock(seen_mutex_);
  auto it = last_seen_.find(src);
  return it == last_seen_.end() ? 0 : it->second;
}

OutputBuffer& TaskInstance::BufferFor(graph::TaskId downstream) {
  std::lock_guard<std::mutex> lock(buffers_mutex_);
  auto& slot = buffers_[downstream];
  if (!slot) {
    slot = std::make_unique<OutputBuffer>();
  }
  return *slot;
}

void TaskInstance::ForEachBuffer(
    const std::function<void(graph::TaskId, OutputBuffer&)>& fn) {
  std::lock_guard<std::mutex> lock(buffers_mutex_);
  for (auto& [task, buffer] : buffers_) {
    fn(task, *buffer);
  }
}

bool TaskInstance::RunSlice() {
  // resume_ holds items already popped by a previous slice that yielded on
  // the step lock; they must go first to preserve per-source FIFO.
  if (resume_.empty() &&
      mailbox_.TryPopAll(resume_, max_batch_) == 0) {
    return false;  // empty (spurious ready) or closed-and-drained
  }
  int64_t start_ns = Stopwatch::NowNanos();
  size_t processed = 0;
  bool yielded = false;
  while (!resume_.empty()) {
    // The step lock is re-acquired per item so a checkpoint can still cut in
    // between any two items of a batch (§5's "minimal interruption"). A
    // checkpointer that holds it across a long synchronous persist must not
    // wedge this pool worker: give up after ~1ms and yield the slice (the
    // executor re-runs it; the un-processed tail stays in resume_).
    std::unique_lock<std::timed_mutex> step(step_mutex_, std::defer_lock);
    if (!step.try_lock() &&
        !step.try_lock_for(std::chrono::milliseconds(1))) {
      yielded = true;
      break;
    }
    ProcessItem(resume_.front(), emit_scratch_);
    step.unlock();
    resume_.pop_front();
    ++processed;
  }
  if (processed > 0) {
    hooks_->OnItemsDone(processed);
    // Straggler simulation: a node with speed s < 1 takes 1/s times as long
    // per item; pad the batch by the difference. This sleeps a pool worker,
    // exactly as it slept the dedicated worker before.
    double speed = hooks_->NodeSpeed(node_);
    if (speed < 1.0 && speed > 0.0) {
      int64_t took = Stopwatch::NowNanos() - start_ns;
      auto pad = static_cast<int64_t>(static_cast<double>(took) *
                                      (1.0 / speed - 1.0));
      if (pad > 0) {
        std::this_thread::sleep_for(std::chrono::nanoseconds(pad));
      }
    }
  }
  return yielded || !resume_.empty() || !mailbox_.Empty();
}

void TaskInstance::ProcessItem(const DataItem& item,
                               std::vector<PendingEmit>& emit_scratch) {
  // Duplicate detection (§5): only replayed items are checked — in normal
  // operation per-source FIFO delivery makes duplicates impossible, and
  // checking would mis-drop items rerouted by repartitioning.
  // Chaos-debug trace (docs/testing.md): SDG_DEBUG_TASK=<te name> prints
  // every apply/dedup decision for that task. One pointer check when unset.
  static const char* const dbg = getenv("SDG_DEBUG_TASK");
  if (dbg != nullptr && te_.name == dbg) {
    static const bool print_key = getenv("SDG_DEBUG_PAYLOAD0_STR") != nullptr;
    const char* key =
        print_key && !item.payload.empty() ? item.payload[0].AsString().c_str()
                                           : "";
    fprintf(stderr,
            "DBG %s inst=%u from=(%u,%u) ts=%llu replayed=%d seen=%llu %s %s\n",
            te_.name.c_str(), instance_, item.from.task, item.from.instance,
            (unsigned long long)item.ts, item.replayed ? 1 : 0,
            (unsigned long long)LastSeenFrom(item.from),
            (item.replayed && item.ts <= LastSeenFrom(item.from)) ? "DEDUP"
                                                                  : "APPLY",
            key);
  }
  if (item.replayed && item.ts <= LastSeenFrom(item.from)) {
    processed_.Increment();
    return;
  }

  uint32_t num_instances = hooks_->NumInstances(te_.id);
  emit_scratch.clear();
  InstanceTaskContext ctx(*this, item, num_instances, emit_scratch);
  if (te_.is_collector()) {
    // All-to-one barrier: gather the partials of this item's barrier until
    // all expected instances have reported, then run the merge logic (§3.2).
    if (item.barrier_id == 0) {
      te_.collector({item.payload}, ctx);
    } else {
      auto& pending = pending_barriers_[item.barrier_id];
      pending.expected = item.expected_partials;
      pending.user_tag = item.user_tag;
      pending.partials.push_back(item.payload);
      if (pending.partials.size() >= pending.expected) {
        PendingBarrier done = std::move(pending);
        pending_barriers_.erase(item.barrier_id);
        te_.collector(done.partials, ctx);
      }
    }
  } else {
    te_.fn(item.payload, ctx);
  }
  ctx.Flush();

  {
    std::lock_guard<std::mutex> lock(seen_mutex_);
    uint64_t& slot = last_seen_[item.from];
    slot = std::max(slot, item.ts);
  }
  processed_.Increment();
}

}  // namespace sdg::runtime
