#include "src/runtime/task_instance.h"

#include <chrono>

#include "src/common/logging.h"

namespace sdg::runtime {

// TaskContext implementation bound to one (instance, input item) pair. Emits
// are coalesced into a scratch vector owned by the worker loop and routed as
// one batch after the task function returns — one routing pass (one
// topology-lock scope) per input item instead of one per emit, and no
// per-item allocation once the scratch capacity has warmed up.
class InstanceTaskContext final : public graph::TaskContext {
 public:
  InstanceTaskContext(TaskInstance& ti, const DataItem& cause,
                      uint32_t num_instances, std::vector<PendingEmit>& emits)
      : ti_(ti), cause_(cause), num_instances_(num_instances), emits_(emits) {}

  state::StateBackend* state() override { return ti_.state_; }

  void Emit(size_t output, Tuple tuple) override {
    emits_.push_back(PendingEmit{output, std::move(tuple)});
  }

  // Routes everything emitted so far. Called under the worker's step lock,
  // so emitted timestamps stay consistent with the checkpoint cut.
  void Flush() {
    if (emits_.empty()) {
      return;
    }
    ti_.hooks_->RouteEmits(ti_, emits_, cause_);
    emits_.clear();
  }

  uint32_t instance_id() const override { return ti_.instance_; }
  uint32_t num_instances() const override { return num_instances_; }

 private:
  TaskInstance& ti_;
  const DataItem& cause_;
  uint32_t num_instances_;
  std::vector<PendingEmit>& emits_;
};

TaskInstance::TaskInstance(const graph::TaskElement& te, uint32_t instance,
                           uint32_t node, state::StateBackend* state,
                           RuntimeHooks* hooks, size_t mailbox_capacity,
                           size_t max_batch)
    : te_(te),
      instance_(instance),
      node_(node),
      state_(state),
      hooks_(hooks),
      mailbox_(mailbox_capacity),
      max_batch_(max_batch < 1 ? 1 : max_batch) {}

TaskInstance::~TaskInstance() {
  Abort();
  Join();
}

void TaskInstance::Start() {
  SDG_CHECK(!started_.exchange(true)) << "task instance started twice";
  worker_ = std::thread([this] { WorkerLoop(); });
}

void TaskInstance::StopWhenDrained() { mailbox_.Close(); }

size_t TaskInstance::Abort() { return mailbox_.Abort(); }

void TaskInstance::Join() {
  if (worker_.joinable()) {
    worker_.join();
  }
}

bool TaskInstance::Deliver(DataItem item) {
  return mailbox_.Push(std::move(item));
}

size_t TaskInstance::DeliverAll(std::vector<DataItem>&& items) {
  return mailbox_.PushAll(std::move(items));
}

std::map<SourceId, uint64_t> TaskInstance::LastSeenSnapshot() const {
  std::lock_guard<std::mutex> lock(seen_mutex_);
  return last_seen_;
}

void TaskInstance::RestoreLastSeen(const std::map<SourceId, uint64_t>& seen) {
  std::lock_guard<std::mutex> lock(seen_mutex_);
  last_seen_ = seen;
}

uint64_t TaskInstance::LastSeenFrom(const SourceId& src) const {
  std::lock_guard<std::mutex> lock(seen_mutex_);
  auto it = last_seen_.find(src);
  return it == last_seen_.end() ? 0 : it->second;
}

OutputBuffer& TaskInstance::BufferFor(graph::TaskId downstream) {
  std::lock_guard<std::mutex> lock(buffers_mutex_);
  auto& slot = buffers_[downstream];
  if (!slot) {
    slot = std::make_unique<OutputBuffer>();
  }
  return *slot;
}

void TaskInstance::ForEachBuffer(
    const std::function<void(graph::TaskId, OutputBuffer&)>& fn) {
  std::lock_guard<std::mutex> lock(buffers_mutex_);
  for (auto& [task, buffer] : buffers_) {
    fn(task, *buffer);
  }
}

void TaskInstance::WorkerLoop() {
  std::deque<DataItem> batch;
  std::vector<PendingEmit> emit_scratch;
  while (true) {
    size_t drained = mailbox_.PopAll(batch, max_batch_);
    if (drained == 0) {
      return;  // closed and drained, or aborted
    }
    int64_t start_ns = Stopwatch::NowNanos();
    // The step lock is re-acquired per item so a checkpoint can still cut in
    // between any two items of a batch (§5's "minimal interruption").
    for (const auto& item : batch) {
      std::lock_guard<std::mutex> step(step_mutex_);
      ProcessItem(item, emit_scratch);
    }
    batch.clear();
    hooks_->OnItemsDone(drained);
    // Straggler simulation: a node with speed s < 1 takes 1/s times as long
    // per item; pad the batch by the difference.
    double speed = hooks_->NodeSpeed(node_);
    if (speed < 1.0 && speed > 0.0) {
      int64_t took = Stopwatch::NowNanos() - start_ns;
      auto pad = static_cast<int64_t>(static_cast<double>(took) * (1.0 / speed - 1.0));
      if (pad > 0) {
        std::this_thread::sleep_for(std::chrono::nanoseconds(pad));
      }
    }
  }
}

void TaskInstance::ProcessItem(const DataItem& item,
                               std::vector<PendingEmit>& emit_scratch) {
  // Duplicate detection (§5): only replayed items are checked — in normal
  // operation per-source FIFO delivery makes duplicates impossible, and
  // checking would mis-drop items rerouted by repartitioning.
  // Chaos-debug trace (docs/testing.md): SDG_DEBUG_TASK=<te name> prints
  // every apply/dedup decision for that task. One pointer check when unset.
  static const char* const dbg = getenv("SDG_DEBUG_TASK");
  if (dbg != nullptr && te_.name == dbg) {
    static const bool print_key = getenv("SDG_DEBUG_PAYLOAD0_STR") != nullptr;
    const char* key =
        print_key && !item.payload.empty() ? item.payload[0].AsString().c_str()
                                           : "";
    fprintf(stderr,
            "DBG %s inst=%u from=(%u,%u) ts=%llu replayed=%d seen=%llu %s %s\n",
            te_.name.c_str(), instance_, item.from.task, item.from.instance,
            (unsigned long long)item.ts, item.replayed ? 1 : 0,
            (unsigned long long)LastSeenFrom(item.from),
            (item.replayed && item.ts <= LastSeenFrom(item.from)) ? "DEDUP"
                                                                  : "APPLY",
            key);
  }
  if (item.replayed && item.ts <= LastSeenFrom(item.from)) {
    processed_.Increment();
    return;
  }

  uint32_t num_instances = hooks_->NumInstances(te_.id);
  emit_scratch.clear();
  InstanceTaskContext ctx(*this, item, num_instances, emit_scratch);
  if (te_.is_collector()) {
    // All-to-one barrier: gather the partials of this item's barrier until
    // all expected instances have reported, then run the merge logic (§3.2).
    if (item.barrier_id == 0) {
      te_.collector({item.payload}, ctx);
    } else {
      auto& pending = pending_barriers_[item.barrier_id];
      pending.expected = item.expected_partials;
      pending.user_tag = item.user_tag;
      pending.partials.push_back(item.payload);
      if (pending.partials.size() >= pending.expected) {
        PendingBarrier done = std::move(pending);
        pending_barriers_.erase(item.barrier_id);
        te_.collector(done.partials, ctx);
      }
    }
  } else {
    te_.fn(item.payload, ctx);
  }
  ctx.Flush();

  {
    std::lock_guard<std::mutex> lock(seen_mutex_);
    uint64_t& slot = last_seen_[item.from];
    slot = std::max(slot, item.ts);
  }
  processed_.Increment();
}

}  // namespace sdg::runtime
