#ifndef SDG_RUNTIME_FAULT_INJECTOR_H_
#define SDG_RUNTIME_FAULT_INJECTOR_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"
#include "src/graph/sdg.h"
#include "src/runtime/data_item.h"

namespace sdg::runtime {

// Which side of a crash point an armed crash fires on.
enum class CrashPhase { kBefore, kAfter };

// One fault rule for a dataflow edge. Task names are matched against the
// SDG at Deployment::Start(); "" matches any task and "external" matches the
// client injection boundary (Deployment::Inject / InjectAll).
//
// Only first-time deliveries are faulted. Replayed items (recovery re-sends
// and their derived re-emissions) ride the recovery protocol's ordered,
// reliable channel (§5): the receiver's timestamp-watermark dedup assumes
// per-source FIFO, so dropping or reordering them would not model a network
// fault — it would silently lose acknowledged state updates.
struct EdgeFaultRule {
  std::string from_task;
  std::string to_task;
  double drop_p = 0.0;     // per item: silently discard
  double dup_p = 0.0;      // per item: deliver a second, replay-marked copy
  double delay_p = 0.0;    // per group: sleep before delivery
  double reorder_p = 0.0;  // per group: reverse the delivery group
  uint32_t delay_us = 200; // sleep length when a delay fires (capped at 5ms)
};

struct FaultInjectionOptions {
  bool enabled = false;
  uint64_t seed = 1;
  std::vector<EdgeFaultRule> edges;
};

// Seeded deterministic fault injector. Edge-fault decisions are pure hashes
// of (seed, source id, timestamp, destination task, fault kind) — never a
// shared sequential RNG — so the same seed yields the same fault schedule
// regardless of thread interleaving. Crash points are armed explicitly by
// tests and fire on the Nth hit of a named (point, phase) pair.
//
// Crash points planted in the runtime and backup store:
//   backup.write_chunk   before/after each chunk submitted during checkpoint
//   backup.read_chunk    before/after each chunk read during restore
//   backup.write_meta    before/after the meta (completeness marker) write
//   checkpoint.persist   before/after the node checkpoint persist step
//   restore.meta         before the restore reads the latest checkpoint meta
//   restore.install      before restored state is installed in the topology
//   replay.repeat        after replay: runs the whole replay a second time
class FaultInjector {
 public:
  // Matches Deployment::kExternalTask (source id of injected items).
  static constexpr uint32_t kExternalTask = 0xFFFFFFFFu;
  static constexpr uint32_t kAnyTask = 0xFFFFFFFEu;

  explicit FaultInjector(FaultInjectionOptions options);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // Resolves rule task names against the SDG. Called once at Start().
  Status Resolve(const graph::Sdg& sdg);

  struct GroupEffect {
    size_t dropped = 0;
    size_t duplicated = 0;
    bool reordered = false;
    bool delayed = false;
  };

  // Applies edge faults to a delivery group travelling from `from_task`
  // (kExternalTask for injected items) to `to_task`, mutating `items` in
  // place: dropped items are removed, duplicates are appended after the
  // originals with `replayed = true` (so receiver-side dedup absorbs them),
  // reorder reverses the group, delay sleeps on the calling thread.
  GroupEffect ApplyToGroup(uint32_t from_task, uint32_t to_task,
                           std::vector<DataItem>& items);

  // Arms a one-shot crash: the `on_hit`-th call to FireIfArmed/CheckCrash
  // with this (point, phase) fires it.
  void ArmCrash(std::string_view point, CrashPhase phase, uint32_t on_hit = 1);
  void DisarmAll();

  // Consumes a hit; true exactly when an armed countdown reaches zero.
  bool FireIfArmed(std::string_view point, CrashPhase phase);

  // FireIfArmed, packaged as the error the runtime propagates.
  Status CheckCrash(std::string_view point, CrashPhase phase);

  // Adapter for the backup store's layering-neutral fault hook; maps
  // ("write_chunk", before) to ("backup.write_chunk", kBefore) etc.
  Status OnStoreOp(const char* op, uint32_t index, bool before);

  // Pauses/resumes edge faults (crash points stay armed). Verification
  // sweeps run paused so injected faults can't masquerade as divergence.
  void Pause() { paused_.store(true, std::memory_order_relaxed); }
  void Resume() { paused_.store(false, std::memory_order_relaxed); }
  bool paused() const { return paused_.load(std::memory_order_relaxed); }

  uint64_t seed() const { return options_.seed; }

  // Total faults fired (edge + crash) and a bounded log of descriptions.
  uint64_t FaultCount() const;
  std::vector<std::string> Log() const;

 private:
  struct ResolvedRule {
    uint32_t from = kAnyTask;
    uint32_t to = kAnyTask;
    const EdgeFaultRule* rule = nullptr;
  };
  struct ArmedCrash {
    std::string point;
    CrashPhase phase;
    uint32_t countdown;
  };

  // Pure decision hash in [0, 1).
  double Roll(const SourceId& from, uint64_t ts, uint32_t to_task,
              uint32_t kind) const;
  const ResolvedRule* RuleFor(uint32_t from, uint32_t to) const;
  const std::string& NameOf(uint32_t task) const;
  void Record(std::string what);

  FaultInjectionOptions options_;
  std::vector<ResolvedRule> resolved_;
  std::vector<std::string> task_names_;
  std::atomic<bool> paused_{false};
  std::atomic<uint64_t> fault_count_{0};

  mutable std::mutex log_mutex_;
  std::vector<std::string> log_;

  std::mutex crash_mutex_;
  std::vector<ArmedCrash> armed_;
};

}  // namespace sdg::runtime

#endif  // SDG_RUNTIME_FAULT_INJECTOR_H_
