#include "src/runtime/executor.h"

#include <algorithm>
#include <chrono>

#include "src/common/logging.h"

namespace sdg::runtime {

namespace {
// Which worker (of which executor) the current thread is; lets Enqueue favour
// the local run queue and Parallel detect re-entrancy cheaply.
thread_local Executor* tl_executor = nullptr;
thread_local size_t tl_worker_index = 0;
}  // namespace

Schedulable::~Schedulable() {
  SDG_CHECK(pending_entries_.load(std::memory_order_acquire) == 0)
      << "schedulable destroyed with live run-queue entries";
}

void Schedulable::Ready() {
  if (home_ == nullptr) {
    return;
  }
  uint32_t s = sched_state_.load(std::memory_order_acquire);
  for (;;) {
    if (s == kIdle) {
      if (sched_state_.compare_exchange_weak(s, kQueued,
                                             std::memory_order_acq_rel)) {
        home_->Enqueue(this);
        return;
      }
    } else if (s == kRunning) {
      if (sched_state_.compare_exchange_weak(s, kRunningNotified,
                                             std::memory_order_acq_rel)) {
        return;  // the running slice will re-enqueue on exit
      }
    } else {
      return;  // kQueued / kRunningNotified: a run is already pending
    }
  }
}

void Schedulable::FinishSlice(bool more) {
  for (;;) {
    uint32_t s = sched_state_.load(std::memory_order_acquire);
    if (more || s == kRunningNotified) {
      // More work (or a Ready arrived mid-slice): go back on the queue. The
      // store may overwrite a racing kRunning->kRunningNotified transition,
      // which is fine — we are enqueuing anyway.
      sched_state_.store(kQueued, std::memory_order_release);
      home_->Enqueue(this);
      return;
    }
    if (sched_state_.compare_exchange_weak(s, kIdle,
                                           std::memory_order_acq_rel)) {
      return;
    }
    // CAS failed: a Ready flipped us to kRunningNotified — loop and enqueue.
  }
}

bool Schedulable::TryRunInline() {
  if (home_ == nullptr) {
    return false;
  }
  uint32_t s = sched_state_.load(std::memory_order_acquire);
  for (;;) {
    if (s != kIdle && s != kQueued) {
      return false;  // someone is running it; our wait will be short
    }
    // Claiming from kQueued leaves a stale queue entry behind — harmless:
    // the popper's CAS fails and only pending_entries_ is touched.
    if (sched_state_.compare_exchange_weak(s, kRunning,
                                           std::memory_order_acq_rel)) {
      break;
    }
  }
  bool more = RunSlice();
  FinishSlice(more);
  return true;
}

void Schedulable::AwaitIdle() {
  for (int spins = 0;; ++spins) {
    if (sched_state_.load(std::memory_order_acquire) == kIdle &&
        pending_entries_.load(std::memory_order_acquire) == 0) {
      return;
    }
    if (spins < 64) {
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  }
}

Executor::Executor(Options options) {
  size_t n = options.workers;
  if (n == 0) {
    n = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.push_back(std::make_unique<WorkerState>());
  }
  threads_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

Executor::~Executor() {
  stop_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(idle_mutex_);
  }
  idle_cv_.notify_all();
  for (auto& t : threads_) {
    if (t.joinable()) {
      t.join();
    }
  }
  // Cancel whatever is still queued: entity entries release their claim so a
  // late AwaitIdle cannot wedge; closures are dropped (owners of closure
  // results must not outlive their executor).
  for (auto& w : workers_) {
    std::lock_guard<std::mutex> lock(w->mutex);
    for (auto& work : w->queue) {
      if (work.ent != nullptr) {
        uint32_t expected = Schedulable::kQueued;
        work.ent->sched_state_.compare_exchange_strong(
            expected, Schedulable::kIdle, std::memory_order_acq_rel);
        work.ent->pending_entries_.fetch_sub(1, std::memory_order_release);
      }
    }
    w->queue.clear();
  }
}

Executor* Executor::Shared() {
  // Leaked on purpose (reachable through the static, so not a "leak" to
  // LSan): workers must outlive every static-destruction-order dependent.
  static Executor* shared = new Executor();
  return shared;
}

void Executor::Enqueue(Schedulable* ent) {
  ent->pending_entries_.fetch_add(1, std::memory_order_acq_rel);
  Push(Work{ent, nullptr});
}

void Executor::Submit(std::function<void()> fn) {
  Push(Work{nullptr, std::move(fn)});
}

void Executor::Push(Work work) {
  size_t target;
  if (tl_executor == this) {
    target = tl_worker_index;  // stay local; thieves redistribute
  } else {
    target = next_queue_.fetch_add(1, std::memory_order_relaxed) %
             workers_.size();
  }
  // Count first so the counter is conservative (never less than the queued
  // items a scanning worker can find); a pop can therefore never underflow it.
  work_count_.fetch_add(1, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(workers_[target]->mutex);
    workers_[target]->queue.push_back(std::move(work));
  }
  std::unique_lock<std::mutex> lock(idle_mutex_);
  if (sleepers_ > 0) {
    lock.unlock();
    idle_cv_.notify_one();
  }
}

bool Executor::PopWork(size_t index, Work* out, bool* stolen) {
  const size_t n = workers_.size();
  for (;;) {
    if (work_count_.load(std::memory_order_acquire) > 0) {
      // Own queue first (FIFO front), then steal from siblings' backs.
      {
        WorkerState& me = *workers_[index];
        std::lock_guard<std::mutex> lock(me.mutex);
        if (!me.queue.empty()) {
          *out = std::move(me.queue.front());
          me.queue.pop_front();
          *stolen = false;
          work_count_.fetch_sub(1, std::memory_order_release);
          return true;
        }
      }
      for (size_t d = 1; d < n; ++d) {
        WorkerState& victim = *workers_[(index + d) % n];
        std::lock_guard<std::mutex> lock(victim.mutex);
        if (!victim.queue.empty()) {
          *out = std::move(victim.queue.back());
          victim.queue.pop_back();
          *stolen = true;
          work_count_.fetch_sub(1, std::memory_order_release);
          return true;
        }
      }
      // Counted work raced away between the scan's lock releases; retry.
      if (stop_.load(std::memory_order_acquire)) {
        return false;
      }
      std::this_thread::yield();
      continue;
    }
    if (stop_.load(std::memory_order_acquire)) {
      return false;
    }
    std::unique_lock<std::mutex> lock(idle_mutex_);
    if (work_count_.load(std::memory_order_acquire) > 0 ||
        stop_.load(std::memory_order_acquire)) {
      continue;  // a push landed between the check and the lock
    }
    ++sleepers_;
    idle_cv_.wait_for(lock, std::chrono::milliseconds(50));
    --sleepers_;
  }
}

void Executor::RunWork(Work& work, WorkerState& me, bool stolen) {
  if (work.ent != nullptr) {
    Schedulable* ent = work.ent;
    uint32_t expected = Schedulable::kQueued;
    if (ent->sched_state_.compare_exchange_strong(
            expected, Schedulable::kRunning, std::memory_order_acq_rel)) {
      me.tasks_run.Increment();
      if (stolen) {
        me.steals.Increment();
      }
      bool more = ent->RunSlice();
      ent->FinishSlice(more);
    }
    // Last access to the entity: releases AwaitIdle / the destructor.
    ent->pending_entries_.fetch_sub(1, std::memory_order_release);
  } else if (work.fn) {
    me.tasks_run.Increment();
    if (stolen) {
      me.steals.Increment();
    }
    work.fn();
  }
}

void Executor::WorkerLoop(size_t index) {
  tl_executor = this;
  tl_worker_index = index;
  WorkerState& me = *workers_[index];
  Work work;
  bool stolen = false;
  while (PopWork(index, &work, &stolen)) {
    RunWork(work, me, stolen);
    work = Work{};
  }
  tl_executor = nullptr;
}

void Executor::Parallel(size_t n, const std::function<void(size_t)>& fn,
                        size_t max_workers) {
  if (n == 0) {
    return;
  }
  struct Ctl {
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    std::mutex mutex;
    std::condition_variable cv;
  };
  auto ctl = std::make_shared<Ctl>();
  auto drain = [ctl, &fn, n] {
    for (;;) {
      size_t i = ctl->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) {
        return;
      }
      fn(i);
      if (ctl->done.fetch_add(1, std::memory_order_acq_rel) + 1 == n) {
        std::lock_guard<std::mutex> lock(ctl->mutex);
        ctl->cv.notify_all();
      }
    }
  };
  size_t cap = max_workers == 0 ? workers_.size() : max_workers;
  cap = std::min(cap, workers_.size() + 1);  // caller counts as one
  size_t helpers = std::min(cap > 0 ? cap - 1 : 0, n - 1);
  // Helpers read `fn` only while claiming indexes; once done == n no further
  // claim can succeed, so waking the caller cannot dangle the reference.
  for (size_t h = 0; h < helpers; ++h) {
    Submit(drain);
  }
  drain();  // caller participates: progress even on a saturated pool
  std::unique_lock<std::mutex> lock(ctl->mutex);
  ctl->cv.wait(lock, [&] {
    return ctl->done.load(std::memory_order_acquire) == n;
  });
}

ExecutorStats Executor::StatsSnapshot() const {
  ExecutorStats stats;
  stats.per_worker.reserve(workers_.size());
  for (const auto& w : workers_) {
    ExecutorWorkerStats ws;
    ws.tasks_run = w->tasks_run.value();
    ws.steals = w->steals.value();
    stats.tasks_run += ws.tasks_run;
    stats.steals += ws.steals;
    stats.per_worker.push_back(ws);
  }
  stats.ready_queue_depth = work_count_.load(std::memory_order_acquire);
  return stats;
}

}  // namespace sdg::runtime
