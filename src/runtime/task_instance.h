// TaskInstance: one materialised instance of a task element on a node.
//
// TEs are not scheduled per item; the whole SDG is materialised (§3.1). Every
// instance owns a mailbox and is a Schedulable entity on the deployment's
// shared executor (executor.h): a mailbox push marks it ready, a pool worker
// claims it and drains a batch of data items per slice, processing them one
// at a time against the instance's local SE and emitting results downstream —
// a fully pipelined execution whose thread count is O(pool size), not
// O(instances). Batching changes only how often a slice touches shared
// synchronisation (one mailbox lock and one in-flight report per batch, not
// per item); items are still processed strictly in per-source FIFO order
// (the claim protocol guarantees a single runner per instance).
//
// The instance also carries the recovery protocol's per-instance state (§5):
// the emit clock issuing outgoing timestamps, the vector of last-seen
// timestamps per upstream source (checkpointed, and used to discard
// duplicates during replay), and the output buffers logging sent items for
// upstream backup.
#ifndef SDG_RUNTIME_TASK_INSTANCE_H_
#define SDG_RUNTIME_TASK_INSTANCE_H_

#include <atomic>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "src/common/clock.h"
#include "src/common/metrics.h"
#include "src/common/queue.h"
#include "src/graph/sdg.h"
#include "src/runtime/data_item.h"
#include "src/runtime/delivery.h"
#include "src/runtime/executor.h"
#include "src/runtime/output_buffer.h"
#include "src/state/state_backend.h"

namespace sdg::runtime {

class TaskInstance;

// One tuple emitted by task code, tagged with the out-edge index it was
// emitted on. Emits are coalesced per input item and routed as one batch.
struct PendingEmit {
  size_t output = 0;
  Tuple tuple;
};

// Callbacks a TaskInstance needs from the deployment. Implemented by
// Deployment; kept abstract so TaskInstance has no dependency on it.
class RuntimeHooks {
 public:
  virtual ~RuntimeHooks() = default;

  // Routes every tuple `src` emitted while processing one input item, in
  // emit order. Each emit travels the `output`-th out-edge of src's TE (or
  // to the TE's sink when past the last out-edge). `cause` is the input item
  // being processed (propagates barrier id and user tag). The vector is
  // scratch owned by the worker loop: implementations may move tuples out of
  // it but must leave the vector itself reusable (the caller clears it after
  // the call, retaining capacity across items).
  virtual void RouteEmits(TaskInstance& src, std::vector<PendingEmit>& emits,
                          const DataItem& cause) = 0;

  // Delivers a tuple emitted past the last out-edge to the TE's sink.
  virtual void DeliverToSink(graph::TaskId task, const Tuple& tuple,
                             uint64_t user_tag) = 0;

  // Called once per drained mailbox batch, after all `count` items have been
  // processed (in-flight accounting).
  virtual void OnItemsDone(size_t count) = 0;

  // Speed factor of `node` (1.0 = nominal; <1 simulates a straggler).
  virtual double NodeSpeed(uint32_t node) const = 0;

  // Current instance count of `task` (exposed to task code via the context).
  virtual uint32_t NumInstances(graph::TaskId task) const = 0;
};

class TaskInstance : public DeliveryTarget, public Schedulable {
 public:
  TaskInstance(const graph::TaskElement& te, uint32_t instance, uint32_t node,
               state::StateBackend* state, RuntimeHooks* hooks,
               Executor* executor, size_t mailbox_capacity, size_t max_batch);
  ~TaskInstance() override;

  TaskInstance(const TaskInstance&) = delete;
  TaskInstance& operator=(const TaskInstance&) = delete;

  void Start();
  // Stops processing after the mailbox drains (graceful shutdown).
  void StopWhenDrained();
  // Kills the instance immediately, dropping queued items (failure
  // injection). Returns the number of queued items dropped so the deployment
  // can settle its in-flight accounting for them. Items already popped into
  // the current slice's batch still complete (same semantics as the old
  // dedicated worker finishing its popped batch).
  size_t Abort();
  // Waits for the last slice to retire. Requires StopWhenDrained or Abort
  // first (otherwise new pushes keep the instance busy indefinitely).
  void Join();

  // Enqueues an item; returns false if the mailbox is closed. Blocks while
  // the mailbox is full — but instead of parking, the calling thread helps
  // drain the destination (TryRunInline), which is what gives the fixed pool
  // the progress guarantees of thread-per-instance.
  bool Deliver(DataItem item) override;
  // Batch variant; returns the number accepted (< items.size() only if the
  // mailbox closed mid-push).
  size_t DeliverAll(std::vector<DataItem>&& items) override;

  const graph::TaskElement& te() const { return te_; }
  graph::TaskId task_id() const { return te_.id; }
  uint32_t instance_id() const { return instance_; }
  uint32_t node() const { return node_; }
  void set_node(uint32_t node) { node_ = node; }
  state::StateBackend* state() const { return state_; }
  void set_state(state::StateBackend* s) { state_ = s; }

  size_t QueueDepth() const { return mailbox_.size(); }
  size_t QueueCapacity() const { return mailbox_.capacity(); }
  uint64_t ItemsProcessed() const { return processed_.value(); }

  LogicalClock& emit_clock() { return emit_clock_; }

  // --- Recovery protocol state ----------------------------------------------

  // The step lock is held by a slice while processing one item (it is
  // re-acquired per item even within a batch); the checkpointer takes it to
  // capture a consistent (SE, meta) cut with only a brief interruption (§5).
  // timed_mutex: a slice that cannot get it within ~1ms parks the rest of
  // its batch and yields its worker instead of wedging the pool while a
  // synchronous checkpoint holds step locks across a persist.
  std::timed_mutex& step_mutex() { return step_mutex_; }

  // Snapshot of the per-source last-seen timestamps. Caller must hold the
  // step lock for a consistent cut.
  std::map<SourceId, uint64_t> LastSeenSnapshot() const;
  void RestoreLastSeen(const std::map<SourceId, uint64_t>& seen);
  uint64_t LastSeenFrom(const SourceId& src) const;

  // Output buffer per downstream task (upstream backup log).
  OutputBuffer& BufferFor(graph::TaskId downstream);
  // Visits (downstream task id, buffer) pairs.
  void ForEachBuffer(
      const std::function<void(graph::TaskId, OutputBuffer&)>& fn);

 protected:
  // Schedulable: drains up to max_batch items under the step lock.
  bool RunSlice() override;

 private:
  friend class InstanceTaskContext;

  void ProcessItem(const DataItem& item, std::vector<PendingEmit>& emit_scratch);

  const graph::TaskElement te_;  // copy: survives graph changes & rescaling
  const uint32_t instance_;
  uint32_t node_;
  state::StateBackend* state_;  // owned by the deployment; stable across repartitioning
  RuntimeHooks* const hooks_;
  Executor* const executor_;

  BoundedQueue<DataItem> mailbox_;
  const size_t max_batch_;
  std::atomic<bool> started_{false};

  // Slice-local work owned by the single runner (claim protocol): items
  // popped from the mailbox but not yet processed (carried across slices
  // when the step lock forces a yield), and the emit coalescing scratch.
  std::deque<DataItem> resume_;
  std::vector<PendingEmit> emit_scratch_;

  LogicalClock emit_clock_;
  std::timed_mutex step_mutex_;

  mutable std::mutex seen_mutex_;
  std::map<SourceId, uint64_t> last_seen_;

  std::mutex buffers_mutex_;
  std::map<graph::TaskId, std::unique_ptr<OutputBuffer>> buffers_;

  // Barrier gathering for collector TEs: barrier id -> partials received.
  struct PendingBarrier {
    uint32_t expected = 0;
    uint64_t user_tag = 0;
    std::vector<Tuple> partials;
  };
  std::map<uint64_t, PendingBarrier> pending_barriers_;

  Counter processed_;
};

}  // namespace sdg::runtime

#endif  // SDG_RUNTIME_TASK_INSTANCE_H_
