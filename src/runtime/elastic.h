// Elastic scale-out over the real transport (§3.3 + §5 across processes).
//
// Two roles build a multi-process deployment out of the existing pieces:
//
//  - ElasticHead: the router/ingest process. It owns the membership
//    ChannelServer (worker processes register over kJoin and keep the
//    connection as their control channel), the partition routing table, and
//    one RemoteChannel + OutputBuffer + LogicalClock per (entry, partition).
//    Injected tuples are routed by payload[0].Hash() % partitions — exactly
//    the dispatcher's partitioned routing — so partition p always lands in
//    SE instance p of whichever worker currently owns p.
//
//  - ElasticWorker: a worker process hosting a full Deployment (all P
//    partition instances materialised, only the owned subset fed). Ingest
//    arrives through its own ChannelServer; durability is the upstream-backup
//    contract: checkpoint owned partitions + per-source watermarks to a
//    BackupStore, then AckSource so the head trims its logs. A restart
//    restores the latest epoch, rejoins under the same member id and the
//    head's channels replay past the durable watermarks.
//
// Live migration moves one partition between workers while the source keeps
// serving: the head commands the source (kMigrateBegin over the control
// channel); the source dials the target's ChannelServer and streams a
// compressed base epoch plus delta epochs through ChunkStreamWriter's
// remote-sink mode; once prepared, the head pauses the partition's channels,
// orders the cutover (drain + final delta under quiesce + watermark handoff
// in kMigrateCommit), and flips routing to the target, whose data handshake
// watermark makes the channels replay exactly the unacked suffix. The
// interval from pause to flipped-and-reconnected is the measured migration
// pause. The same push session, driven by the head from a dead worker's
// backup store, is the m-to-n recovery path: each lost partition is pushed
// to a different surviving worker.
#ifndef SDG_RUNTIME_ELASTIC_H_
#define SDG_RUNTIME_ELASTIC_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/checkpoint/backup_store.h"
#include "src/checkpoint/epoch_tail.h"
#include "src/common/clock.h"
#include "src/common/status.h"
#include "src/graph/sdg.h"
#include "src/net/channel_server.h"
#include "src/net/mux.h"
#include "src/net/remote_channel.h"
#include "src/runtime/cluster.h"
#include "src/runtime/output_buffer.h"

namespace sdg::elastic {

inline constexpr uint32_t kNoOwner = 0xFFFFFFFFu;

// Remote source instance feeding entry `entry_index`'s items for partition
// `partition`: each (entry, partition) pair is its own channel, clock and
// watermark space.
inline uint32_t SourceInstanceOf(uint32_t entry_index, uint32_t partition,
                                 uint32_t num_partitions) {
  return entry_index * num_partitions + partition;
}

// ---------------------------------------------------------------------------
// Worker

struct ElasticWorkerOptions {
  uint64_t deployment_id = 1;
  // Stable across restarts; names the worker's backup-store directory and
  // identifies the member to the head (a rejoin supersedes).
  uint32_t member_id = 0;
  std::string name;  // diagnostics
  std::string head_host = "127.0.0.1";
  uint16_t head_port = 0;
  // This worker's own ChannelServer (data channels + inbound migration
  // sessions). Must be stable across restarts: the head's channels redial it.
  uint16_t data_port = 0;
  // Partitioned SE this worker serves and its entry TEs, in the same order
  // the head was configured with (source instances must agree).
  std::string state;
  uint32_t partitions = 1;
  std::vector<std::string> entries;
  // Backup store root; the worker persists under node id = member_id.
  std::string backup_root;
  uint32_t backup_nodes = 2;
  // 0 = checkpoint only on head command (kCtrlCheckpoint).
  int checkpoint_interval_ms = 0;
  // Artificial per-item ingest delay — the straggler knob for tests/smoke.
  int slow_us = 0;
  // Seeded crash points for the migration test matrix. One of "",
  // "migrate.base", "migrate.delta", "migrate.precutover",
  // "migrate.postcommit": the process _Exit(41)s at that phase.
  std::string crash_at;
  // Worker deployment shape.
  uint32_t local_nodes = 1;
  size_t executor_workers = 0;
  runtime::ScalingOptions scaling;  // on_straggler is wired to kCtrlStraggler
  // Serve path. With serve_feed set, every checkpoint epoch of an owned
  // partition is also published to the head's gateway over a replica-feed
  // connection (kReplicaSubscribe + kReplicaEpoch): an announce the moment
  // the epoch is cut, then the epoch's chunk blobs as a base or — when the
  // backend's dirty tracker covers the gap — a delta. An EpochTail per
  // partition retains base + deltas for reconnect replay; after
  // feed_max_deltas deltas the next epoch re-bases.
  bool serve_feed = false;
  size_t feed_max_deltas = 8;
  // Sink TEs whose outputs are forwarded to the head as kResponse frames
  // (request_id = the item's user_tag) — the strong-read reply path.
  std::vector<std::string> forward_sinks;
  // Send those responses over a dedicated mux reply stream to the head
  // instead of the membership control channel, so bulk replies never queue
  // behind (or ahead of) control traffic. Falls back to the control channel
  // when the head predates mux or the stream is down.
  bool mux_replies = true;
};

class ElasticWorker {
 public:
  // `g` is the worker's SDG (e.g. BuildKvSdg/BuildWordCountSdg with
  // `options.partitions` partitions).
  ElasticWorker(graph::Sdg g, ElasticWorkerOptions options);
  ~ElasticWorker();

  ElasticWorker(const ElasticWorker&) = delete;
  ElasticWorker& operator=(const ElasticWorker&) = delete;

  // Deploys, restores the latest durable epoch (if any), starts the data
  // server and joins the head (retrying until Stop).
  Status Start();
  void Stop();

  // Blocks until the worker has joined the head (false on timeout).
  bool WaitJoined(int timeout_ms);

  uint16_t data_port() const;
  std::vector<uint32_t> OwnedPartitions() const;
  uint64_t ItemsIngested() const {
    return items_ingested_.load(std::memory_order_relaxed);
  }

  // Persists owned partitions + watermarks as one epoch, then acks the
  // sources. Public for tests; also runs on the interval and on command.
  Status Checkpoint();

  runtime::Deployment* deployment() { return deployment_.get(); }

  // Epochs published to the replica feed (serve_feed only).
  uint64_t feed_epochs_published() const {
    return feed_published_.load(std::memory_order_relaxed);
  }

 private:
  struct OutboundMigration {
    net::Socket socket;
    net::FrameDecoder carry;
    uint32_t partition = 0;
  };

  void CrashPoint(const char* phase);

  // Data-plane callbacks.
  Result<uint64_t> OnHandshake(const net::Handshake& hs);
  void OnBatch(const net::Handshake& hs,
               std::vector<runtime::DataItem> items);
  // Target side of a migration/recovery push session; runs on a setup thread
  // of the data server.
  void OnMigrationSession(net::Socket socket, net::FrameDecoder carry,
                          const net::MigrateBeginMsg& begin);

  // Control channel: join (with retry) then execute head commands until Stop.
  void ControlLoop();
  Status JoinHead(net::Socket* socket, net::FrameDecoder* carry);
  void HandleControl(net::Socket& socket, const net::ControlMsg& msg);
  // Source side of a live migration: stream base + deltas to the target,
  // then report prepared.
  void HandleMigrateBegin(net::Socket& control,
                          const net::MigrateBeginMsg& cmd);
  void HandleCutover(net::Socket& control, uint32_t partition);
  // Best-effort send on the current control connection (straggler escalation,
  // migrated-in notifications); false when not joined or the wire is broken.
  bool SendControlToHead(const net::ControlMsg& msg);
  // Forwards one sink output to the head as a kResponse frame — over the mux
  // reply stream when available (pipelined, off the control channel), else
  // on the control channel (the pre-mux path).
  bool SendResponseToHead(const net::ResponseMsg& msg);
  // Returns the cached reply stream, opening one if needed; null when the
  // head does not speak mux (the caller falls back to the control channel).
  std::shared_ptr<net::MuxStream> ReplyStream();

  // Replica feed (serve_feed): connects to the head's gateway, replays the
  // retained tails, then streams epochs as Checkpoint publishes them.
  void FeedLoop();
  // Queues one feed message; drops to a tail re-replay when the queue backs
  // up (a wedged gateway must not hold worker memory hostage).
  void QueueFeed(net::ReplicaEpochMsg msg);

  // One serialized epoch (base or delta) of `backend` streamed into `sink`
  // as kMigrateChunk segments; `phase` is the crash-point name.
  Status StreamEpoch(state::StateBackend& backend, net::Socket& socket,
                     bool delta, const char* phase);
  Status AwaitMigrateAck(net::Socket& socket, net::FrameDecoder& carry);

  void CheckpointLoop();

  const ElasticWorkerOptions options_;
  graph::Sdg graph_;
  std::unique_ptr<runtime::Deployment> deployment_;
  std::unique_ptr<checkpoint::BackupStore> store_;
  std::unique_ptr<net::ChannelServer> server_;

  // Gates ingest against checkpoint/cutover; see the ordering note in
  // elastic.cc (op_mutex_ before ingest_mutex_).
  std::mutex op_mutex_;
  mutable std::mutex ingest_mutex_;
  std::set<uint32_t> owned_;                 // partitions served
  std::map<uint32_t, uint64_t> received_;    // source instance -> applied wm
  std::map<uint32_t, uint64_t> durable_;     // source instance -> durable wm
  uint64_t epoch_ = 0;

  std::mutex outbound_mutex_;
  std::optional<OutboundMigration> outbound_;  // prepared, awaiting cutover

  // The live control connection, published by ControlLoop for out-of-band
  // sends (and ShutdownBoth on Stop); null while disconnected.
  std::mutex ctrl_send_mutex_;
  net::Socket* ctrl_socket_ = nullptr;

  // Mux reply path (mux_replies): a pooled connection to the head and one
  // cached reply stream. A broken stream is dropped and reopened on the next
  // response; while it is down, responses ride the control channel.
  std::unique_ptr<net::MuxPool> reply_pool_;
  std::mutex reply_mutex_;
  std::shared_ptr<net::MuxStream> reply_stream_;
  // Backoff after a failed dial/open (head predates mux or is down), so
  // responses don't pay a fresh TCP connect each.
  std::chrono::steady_clock::time_point reply_retry_after_{};

  std::thread control_thread_;
  std::thread checkpoint_thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> joined_{false};
  std::mutex joined_mutex_;
  std::condition_variable joined_cv_;
  std::atomic<uint64_t> items_ingested_{0};

  // Replica feed (serve_feed). Tails are per partition, internally locked;
  // the queue hands Checkpoint's published epochs to the feed thread.
  std::vector<std::unique_ptr<checkpoint::EpochTail>> tails_;
  std::thread feed_thread_;
  std::mutex feed_mutex_;
  std::condition_variable feed_cv_;
  std::deque<net::ReplicaEpochMsg> feed_queue_;
  bool feed_replay_ = false;  // queue overflowed/reconnected: replay tails
  std::atomic<uint64_t> feed_published_{0};
};

// ---------------------------------------------------------------------------
// Head

struct ElasticHeadOptions {
  uint64_t deployment_id = 1;
  uint16_t port = 0;  // membership server; 0 = ephemeral
  std::string state;
  uint32_t partitions = 1;
  std::vector<std::string> entries;
  // Backup root shared with the workers — the head reads a dead member's
  // store to drive m-to-n recovery.
  std::string backup_root;
  uint32_t backup_nodes = 2;
  // Management loop cadence and scale-out policy: a member whose unacked
  // backlog stays at or above backlog_high while another member's is below
  // backlog_high/4 (or that reported kCtrlStraggler) sheds one partition.
  int monitor_interval_ms = 100;
  size_t backlog_high = 4096;
  int cooldown_ms = 2000;
  bool auto_scale = false;
  // A member whose control channel stays broken this long is declared dead
  // and its partitions are recovered onto the survivors. 0 disables.
  int auto_recover_ms = 0;
  int migrate_timeout_ms = 30000;
  // Per-delivery redial budget of the data channels (attempts * backoff
  // bounds how long one Deliver blocks while a worker restarts).
  int channel_reconnect_attempts = 25;
  int channel_reconnect_backoff_ms = 40;
  // Multiplex all data channels to a worker over one shared socket (the
  // RemoteChannel mux mode). Off = one socket per (entry, partition), the
  // pre-mux wire. Per-channel fallback still applies when a worker binary
  // predates mux.
  bool use_mux = true;
};

class ElasticHead {
 public:
  explicit ElasticHead(ElasticHeadOptions options);
  ~ElasticHead();

  ElasticHead(const ElasticHead&) = delete;
  ElasticHead& operator=(const ElasticHead&) = delete;

  Status Start();
  void Stop();

  uint16_t port() const;

  // Blocks until `n` members are joined and alive.
  bool WaitForMembers(size_t n, int timeout_ms);
  // Blocks until every partition has an owner (initial assignment done).
  bool WaitForAssignment(int timeout_ms);

  // Routes one tuple of entry `entry_index` by payload[0].Hash() %
  // partitions, stamps the per-source clock, logs and delivers. Blocks while
  // the owner is being (re)connected or migrated; fails only after
  // `deadline_ms` of sustained failure.
  Status Inject(uint32_t entry_index, Tuple tuple, int deadline_ms = 120000);

  // Batched Inject: groups the tuples by owning partition and delivers each
  // group as one DataBatch frame — the serve path's amortisation lever.
  // `tag` rides DataItem::user_tag end to end (sink outputs echo it), so a
  // gateway can correlate responses. Same blocking/deadline semantics.
  struct TaggedTuple {
    Tuple tuple;
    uint64_t tag = 0;
  };
  Status InjectBatch(uint32_t entry_index, std::vector<TaggedTuple> tuples,
                     int deadline_ms = 120000);

  // Live migration of `partition` to `target_member` (must differ from the
  // current owner). Synchronous; concurrent calls are serialized.
  Status MigratePartition(uint32_t partition, uint32_t target_member);

  // m-to-n recovery: pushes every partition owned by dead `member` from its
  // backup store onto the surviving members, round-robin.
  Status RecoverMember(uint32_t member);

  // Orders `member` to checkpoint (and so ack) its partitions.
  Status CheckpointMember(uint32_t member, int timeout_ms = 30000);
  Status CheckpointAll(int timeout_ms = 30000);

  // True once every log is fully acked (all delivered items durable at the
  // owners). Pokes disconnected channels while waiting.
  bool AwaitQuiesce(int timeout_ms);
  size_t UnackedTotal() const;

  uint32_t OwnerOf(uint32_t partition) const;
  std::vector<uint32_t> AliveMembers() const;
  // Pause of the latest completed migration: channel-pause to routing
  // flipped and reconnected, in milliseconds.
  double last_migration_pause_ms() const {
    return last_pause_ms_.load(std::memory_order_relaxed);
  }
  uint64_t migrations_completed() const {
    return migrations_done_.load(std::memory_order_relaxed);
  }

  // The membership ChannelServer — the gateway layers its serve handlers
  // (client requests, replica feeds) onto the same port.
  net::ChannelServer* server() { return server_.get(); }

  // Receives kResponse frames forwarded by workers over their control
  // channels (strong-read replies). Runs on the IO thread — must not block.
  using ResponseHandler =
      std::function<void(uint32_t member_id, net::ResponseMsg msg)>;
  void SetResponseHandler(ResponseHandler handler);

 private:
  struct Member {
    uint32_t id = 0;
    std::string host;
    uint16_t data_port = 0;
    bool alive = false;
    bool straggler = false;
    std::chrono::steady_clock::time_point last_seen{};
    std::chrono::steady_clock::time_point suspect_since{};
    bool suspected = false;
  };

  struct Part {
    // Guards owner + channel vector; held across the migration pause.
    std::mutex mu;
    // Serializes Deliver calls per channel (RemoteChannel's single-sender
    // contract) without blocking the flip.
    std::mutex send_mu;
    uint32_t owner = kNoOwner;
    std::vector<std::shared_ptr<net::RemoteChannel>> chans;  // per entry
  };

  struct ControlEvent {
    uint32_t member = 0;
    net::ControlMsg msg;
  };

  Result<uint32_t> OnJoin(const net::JoinMsg& join);
  void OnMemberFrame(uint32_t member_id, net::Frame frame);

  // Waits for a control event matching (op, partition, text-prefix) from
  // `member`; removes and returns it.
  Result<net::ControlMsg> WaitForControl(uint32_t member, uint32_t op,
                                         uint32_t partition,
                                         const std::string& text,
                                         int timeout_ms);
  void PurgeControl(uint32_t op, uint32_t partition, const std::string& text);

  // Closes old channels, points `partition` at `member` and reconnects; the
  // caller holds part.mu. Returns the first connect error (channels heal on
  // later Deliver/poke regardless).
  Status FlipOwnerLocked(Part& part, uint32_t partition, uint32_t member);

  // Pushes `chunks` (+ watermark handoff) into `member`'s data server as a
  // migration session and flips routing on success. The initial-assignment
  // (empty chunks) and recovery paths.
  Status PushPartition(uint32_t partition, uint32_t member,
                       const std::vector<std::vector<uint8_t>>& chunks,
                       const std::vector<net::SourceWatermark>& watermarks);

  size_t BacklogOf(uint32_t member) const;
  void ManagementLoop();
  void AssignUnowned();
  void MaybeScaleOut();
  void ProbeMembers();

  Result<Member> GetMember(uint32_t id) const;
  // First alive member with the fewest owned partitions, excluding `exclude`.
  Result<uint32_t> PickTarget(uint32_t exclude) const;

  const ElasticHeadOptions options_;
  std::unique_ptr<net::ChannelServer> server_;
  std::unique_ptr<checkpoint::BackupStore> store_;
  // Shared per-worker sockets for the data channels (use_mux). Outlives the
  // channels: Stop closes them first, then the pool.
  std::unique_ptr<net::MuxPool> mux_pool_;

  mutable std::mutex members_mutex_;
  std::map<uint32_t, Member> members_;
  std::condition_variable members_cv_;

  std::vector<std::unique_ptr<Part>> parts_;
  // Logs and clocks outlive routing flips: logs_[entry * P + partition].
  std::vector<std::unique_ptr<runtime::OutputBuffer>> logs_;
  std::vector<std::unique_ptr<LogicalClock>> clocks_;

  mutable std::mutex events_mutex_;
  std::deque<ControlEvent> events_;
  std::condition_variable events_cv_;

  std::mutex response_mutex_;
  ResponseHandler response_handler_;

  std::mutex migrate_mutex_;  // one migration/push at a time
  std::thread mgmt_thread_;
  std::atomic<bool> running_{false};
  std::atomic<double> last_pause_ms_{0.0};
  std::atomic<uint64_t> migrations_done_{0};
  std::chrono::steady_clock::time_point last_scale_out_{};
};

}  // namespace sdg::elastic

#endif  // SDG_RUNTIME_ELASTIC_H_
