// OutputBuffer: the upstream-backup message log of the recovery protocol (§5).
//
// Every TE instance logs, per downstream TE, each item it sent together with
// the destination instance chosen by the dispatcher. After a downstream
// failure, entries past the restored checkpoint's vector timestamp are
// replayed; once a downstream instance's checkpoint is persisted, its entries
// at or below the acknowledged timestamp are trimmed.
//
// Entries are kept in one deque PER destination instance. Acks for one
// destination therefore trim that destination's log regardless of what other
// destinations still retain — a slow (or failed) instance can never pin
// acknowledged entries of its healthy siblings behind it, which is what the
// earlier single-FIFO layout did whenever destinations interleaved.
#ifndef SDG_RUNTIME_OUTPUT_BUFFER_H_
#define SDG_RUNTIME_OUTPUT_BUFFER_H_

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <vector>

#include "src/common/serialize.h"
#include "src/runtime/data_item.h"

namespace sdg::runtime {

class OutputBuffer {
 public:
  struct Entry {
    DataItem item;
    uint32_t dest_instance = 0;
  };

  void Append(const DataItem& item, uint32_t dest_instance) {
    std::lock_guard<std::mutex> lock(mutex_);
    AppendLocked(item, dest_instance);
  }

  // Logs a whole batch destined to one instance under a single lock hold
  // (the batch-delivery path appends per destination group).
  void AppendAll(const std::vector<DataItem>& items, uint32_t dest_instance) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto& q = queues_[dest_instance];
    for (const auto& item : items) {
      q.push_back(item);
    }
  }

  // Records that `dest_instance` has durably checkpointed items from this
  // source up to `acked_ts`, then drops that destination's entries at or
  // below the highest acknowledgement seen (the watermark is sticky: an
  // entry restored or appended below it is trimmed by the next Ack, however
  // low). Timestamps per source are monotone, so covered entries are exactly
  // a prefix of the destination's deque.
  void Ack(uint32_t dest_instance, uint64_t acked_ts) {
    std::lock_guard<std::mutex> lock(mutex_);
    uint64_t& slot = acked_[dest_instance];
    slot = std::max(slot, acked_ts);
    auto it = queues_.find(dest_instance);
    if (it == queues_.end()) {
      return;
    }
    auto& q = it->second;
    while (!q.empty() && q.front().ts <= slot) {
      q.pop_front();
    }
    if (q.empty()) {
      queues_.erase(it);
    }
  }

  // Entries with ts > from_ts destined to `dest_instance` (replay set).
  std::vector<DataItem> ItemsAfter(uint32_t dest_instance,
                                   uint64_t from_ts) const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<DataItem> out;
    auto it = queues_.find(dest_instance);
    if (it == queues_.end()) {
      return out;
    }
    for (const auto& item : it->second) {
      if (item.ts > from_ts) {
        out.push_back(item);
      }
    }
    return out;
  }

  // All retained entries, for checkpointing this buffer's contents. Grouped
  // by destination (FIFO within each destination) — the restore path replays
  // per destination, so cross-destination order carries no meaning.
  std::vector<Entry> Snapshot() const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<Entry> out;
    for (const auto& [dest, q] : queues_) {
      for (const auto& item : q) {
        out.push_back(Entry{item, dest});
      }
    }
    return out;
  }

  void RestoreEntry(const DataItem& item, uint32_t dest_instance) {
    Append(item, dest_instance);
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    size_t n = 0;
    for (const auto& [dest, q] : queues_) {
      n += q.size();
    }
    return n;
  }

  // Retained entries for one destination (bounded-size assertions in tests).
  size_t SizeFor(uint32_t dest_instance) const {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = queues_.find(dest_instance);
    return it == queues_.end() ? 0 : it->second.size();
  }

  void Clear() {
    std::lock_guard<std::mutex> lock(mutex_);
    queues_.clear();
  }

 private:
  void AppendLocked(const DataItem& item, uint32_t dest_instance) {
    queues_[dest_instance].push_back(item);
  }

  mutable std::mutex mutex_;
  // Ordered map so Snapshot() is deterministic across runs (checkpoint bytes
  // compare equal for equal logical state).
  std::map<uint32_t, std::deque<DataItem>> queues_;
  std::map<uint32_t, uint64_t> acked_;  // sticky per-destination watermark
};

}  // namespace sdg::runtime

#endif  // SDG_RUNTIME_OUTPUT_BUFFER_H_
