// OutputBuffer: the upstream-backup message log of the recovery protocol (§5).
//
// Every TE instance logs, per downstream TE, each item it sent together with
// the destination instance chosen by the dispatcher. After a downstream
// failure, entries past the restored checkpoint's vector timestamp are
// replayed; once a downstream instance's checkpoint is persisted, its entries
// at or below the acknowledged timestamp are trimmed.
#ifndef SDG_RUNTIME_OUTPUT_BUFFER_H_
#define SDG_RUNTIME_OUTPUT_BUFFER_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/common/serialize.h"
#include "src/runtime/data_item.h"

namespace sdg::runtime {

class OutputBuffer {
 public:
  struct Entry {
    DataItem item;
    uint32_t dest_instance = 0;
  };

  void Append(const DataItem& item, uint32_t dest_instance) {
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.push_back(Entry{item, dest_instance});
  }

  // Logs a whole batch destined to one instance under a single lock hold
  // (the batch-delivery path appends per destination group).
  void AppendAll(const std::vector<DataItem>& items, uint32_t dest_instance) {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& item : items) {
      entries_.push_back(Entry{item, dest_instance});
    }
  }

  // Records that `dest_instance` has durably checkpointed items from this
  // source up to `acked_ts`, then drops every entry covered by the
  // acknowledgements seen so far.
  void Ack(uint32_t dest_instance, uint64_t acked_ts) {
    std::lock_guard<std::mutex> lock(mutex_);
    uint64_t& slot = acked_[dest_instance];
    slot = std::max(slot, acked_ts);
    while (!entries_.empty()) {
      const Entry& front = entries_.front();
      auto it = acked_.find(front.dest_instance);
      if (it == acked_.end() || front.item.ts > it->second) {
        break;  // head not yet covered; keep everything after it too (FIFO)
      }
      entries_.pop_front();
    }
  }

  // Entries with ts > from_ts destined to `dest_instance` (replay set).
  std::vector<DataItem> ItemsAfter(uint32_t dest_instance,
                                   uint64_t from_ts) const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<DataItem> out;
    for (const auto& e : entries_) {
      if (e.dest_instance == dest_instance && e.item.ts > from_ts) {
        out.push_back(e.item);
      }
    }
    return out;
  }

  // All entries, for checkpointing this buffer's contents.
  std::vector<Entry> Snapshot() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return std::vector<Entry>(entries_.begin(), entries_.end());
  }

  void RestoreEntry(const DataItem& item, uint32_t dest_instance) {
    Append(item, dest_instance);
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
  }

  void Clear() {
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.clear();
  }

 private:
  mutable std::mutex mutex_;
  std::deque<Entry> entries_;
  std::unordered_map<uint32_t, uint64_t> acked_;
};

}  // namespace sdg::runtime

#endif  // SDG_RUNTIME_OUTPUT_BUFFER_H_
