#include "src/runtime/fault_injector.h"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <thread>

#include "src/common/logging.h"

namespace sdg::runtime {
namespace {

// Bounded so a long chaos run can't grow the log without limit; the fault
// counter keeps counting past the cap.
constexpr size_t kMaxLogEntries = 4096;
constexpr uint32_t kMaxDelayUs = 5000;

// SplitMix64 finalizer (same mixing constants as src/common/rng.h).
uint64_t Mix(uint64_t z) {
  z += 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

const char* PhaseName(CrashPhase phase) {
  return phase == CrashPhase::kBefore ? "before" : "after";
}

}  // namespace

FaultInjector::FaultInjector(FaultInjectionOptions options)
    : options_(std::move(options)) {}

Status FaultInjector::Resolve(const graph::Sdg& sdg) {
  resolved_.clear();
  task_names_.clear();
  for (const auto& te : sdg.tasks()) task_names_.push_back(te.name);
  for (const auto& rule : options_.edges) {
    ResolvedRule r;
    r.rule = &rule;
    if (rule.from_task == "external") {
      r.from = kExternalTask;
    } else if (!rule.from_task.empty()) {
      auto id = sdg.TaskByName(rule.from_task);
      if (!id.ok()) {
        return InvalidArgumentError("fault rule references unknown from_task '" +
                                    rule.from_task + "'");
      }
      r.from = *id;
    }
    if (!rule.to_task.empty()) {
      auto id = sdg.TaskByName(rule.to_task);
      if (!id.ok()) {
        return InvalidArgumentError("fault rule references unknown to_task '" +
                                    rule.to_task + "'");
      }
      r.to = *id;
    }
    resolved_.push_back(r);
  }
  return Status::Ok();
}

double FaultInjector::Roll(const SourceId& from, uint64_t ts, uint32_t to_task,
                           uint32_t kind) const {
  uint64_t h = Mix(options_.seed ^ (uint64_t{from.task} << 32 | from.instance));
  h = Mix(h ^ ts);
  h = Mix(h ^ (uint64_t{to_task} << 8 | kind));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

const FaultInjector::ResolvedRule* FaultInjector::RuleFor(uint32_t from,
                                                          uint32_t to) const {
  for (const auto& r : resolved_) {
    if ((r.from == kAnyTask || r.from == from) &&
        (r.to == kAnyTask || r.to == to)) {
      return &r;
    }
  }
  return nullptr;
}

const std::string& FaultInjector::NameOf(uint32_t task) const {
  static const std::string kExternal = "external";
  static const std::string kUnknown = "?";
  if (task == kExternalTask) return kExternal;
  if (task < task_names_.size()) return task_names_[task];
  return kUnknown;
}

void FaultInjector::Record(std::string what) {
  const uint64_t seq = fault_count_.fetch_add(1, std::memory_order_relaxed);
  SDG_LOG(kDebug) << "[fault #" << seq << " seed=" << options_.seed << "] "
                  << what;
  std::lock_guard<std::mutex> lock(log_mutex_);
  if (log_.size() < kMaxLogEntries) log_.push_back(std::move(what));
}

FaultInjector::GroupEffect FaultInjector::ApplyToGroup(
    uint32_t from_task, uint32_t to_task, std::vector<DataItem>& items) {
  GroupEffect eff;
  if (!options_.enabled || items.empty() ||
      paused_.load(std::memory_order_relaxed)) {
    return eff;
  }
  const ResolvedRule* resolved = RuleFor(from_task, to_task);
  if (resolved == nullptr) return eff;
  const EdgeFaultRule& rule = *resolved->rule;

  // Group-level decisions key off the first item so they are stable no
  // matter how per-item faults reshape the group.
  const SourceId group_from = items[0].from;
  const uint64_t group_ts = items[0].ts;

  // Replayed items are exempt from drop/dup/reorder: they model the recovery
  // protocol's ordered re-send over a reliable channel (§5), not first-time
  // network traffic. Timestamp-watermark dedup at the receiver requires
  // per-source FIFO — reordering a replayed group would advance the watermark
  // past still-undelivered replayed items and silently discard them.
  bool any_replayed = false;
  std::vector<DataItem> kept;
  std::vector<DataItem> dups;
  kept.reserve(items.size());
  for (auto& item : items) {
    if (item.replayed) {
      any_replayed = true;
      kept.push_back(std::move(item));
      continue;
    }
    if (rule.drop_p > 0.0 && Roll(item.from, item.ts, to_task, 0) < rule.drop_p) {
      ++eff.dropped;
      std::ostringstream os;
      os << "drop " << NameOf(from_task) << "->" << NameOf(to_task)
         << " from=(" << item.from.task << "," << item.from.instance
         << ") ts=" << item.ts;
      Record(os.str());
      continue;
    }
    if (rule.dup_p > 0.0 && Roll(item.from, item.ts, to_task, 1) < rule.dup_p) {
      DataItem copy = item;
      copy.replayed = true;  // receiver-side dedup absorbs the duplicate
      dups.push_back(std::move(copy));
      ++eff.duplicated;
      std::ostringstream os;
      os << "dup " << NameOf(from_task) << "->" << NameOf(to_task) << " from=("
         << item.from.task << "," << item.from.instance << ") ts=" << item.ts;
      Record(os.str());
    }
    kept.push_back(std::move(item));
  }
  if (rule.reorder_p > 0.0 && kept.size() > 1 && !any_replayed &&
      Roll(group_from, group_ts, to_task, 2) < rule.reorder_p) {
    std::reverse(kept.begin(), kept.end());
    eff.reordered = true;
    std::ostringstream os;
    os << "reorder " << NameOf(from_task) << "->" << NameOf(to_task)
       << " group_ts=" << group_ts << " n=" << kept.size();
    Record(os.str());
  }
  // Duplicates go after every original so the original always updates the
  // receiver's last-seen timestamp first.
  for (auto& d : dups) kept.push_back(std::move(d));
  items = std::move(kept);

  if (rule.delay_p > 0.0 &&
      Roll(group_from, group_ts, to_task, 3) < rule.delay_p) {
    eff.delayed = true;
    const uint32_t us = std::min(rule.delay_us, kMaxDelayUs);
    std::ostringstream os;
    os << "delay " << NameOf(from_task) << "->" << NameOf(to_task)
       << " group_ts=" << group_ts << " us=" << us;
    Record(os.str());
    std::this_thread::sleep_for(std::chrono::microseconds(us));
  }
  return eff;
}

void FaultInjector::ArmCrash(std::string_view point, CrashPhase phase,
                             uint32_t on_hit) {
  std::lock_guard<std::mutex> lock(crash_mutex_);
  armed_.push_back(
      ArmedCrash{std::string(point), phase, on_hit == 0 ? 1u : on_hit});
}

void FaultInjector::DisarmAll() {
  std::lock_guard<std::mutex> lock(crash_mutex_);
  armed_.clear();
}

bool FaultInjector::FireIfArmed(std::string_view point, CrashPhase phase) {
  bool fired = false;
  {
    std::lock_guard<std::mutex> lock(crash_mutex_);
    for (auto it = armed_.begin(); it != armed_.end(); ++it) {
      if (it->point == point && it->phase == phase) {
        if (--it->countdown == 0) {
          armed_.erase(it);
          fired = true;
        }
        break;
      }
    }
  }
  if (fired) {
    std::ostringstream os;
    os << "crash " << point << " (" << PhaseName(phase) << ")";
    Record(os.str());
  }
  return fired;
}

Status FaultInjector::CheckCrash(std::string_view point, CrashPhase phase) {
  if (!FireIfArmed(point, phase)) return Status::Ok();
  std::ostringstream os;
  os << "injected crash at '" << point << "' (" << PhaseName(phase)
     << "), seed " << options_.seed;
  return AbortedError(os.str());
}

Status FaultInjector::OnStoreOp(const char* op, uint32_t index, bool before) {
  const CrashPhase phase = before ? CrashPhase::kBefore : CrashPhase::kAfter;
  (void)index;  // the countdown encodes "after chunk N"; index is for logs
  return CheckCrash(std::string("backup.") + op, phase);
}

uint64_t FaultInjector::FaultCount() const {
  return fault_count_.load(std::memory_order_relaxed);
}

std::vector<std::string> FaultInjector::Log() const {
  std::lock_guard<std::mutex> lock(log_mutex_);
  return log_;
}

}  // namespace sdg::runtime
