// Executor: a fixed pool of workers multiplexing every schedulable entity in
// the process — task instances, network dispatch, checkpoint fan-out.
//
// The paper's runtime materialises the whole SDG (§3.1) and assumes a node
// can host many TE/SE instances (§3.3-3.4). A dedicated thread per instance
// caps that at hundreds; the executor decouples the dataflow graph from the
// execution layer: N logical entities share `workers` OS threads (default
// hardware concurrency), each worker owning a run queue and stealing from
// siblings when its own runs dry.
//
// Scheduling model ("ready set"): a `Schedulable` is either idle, queued on
// some worker's run queue, or running a slice on exactly one thread. Marking
// it ready (mailbox push, frame arrival) enqueues it if idle, or flags the
// current run to re-enqueue itself — so there is never more than one thread
// inside RunSlice() per entity (the single-runner invariant per-source FIFO
// depends on), and a burst of readies collapses into one queue entry.
//
// Claim protocol. Queue entries are hints, not ownership: a worker that pops
// an entity CASes kQueued -> kRunning to claim it; a failed CAS means someone
// else (a stealing worker, or a producer helping via TryRunInline) already
// ran it, and the entry is dropped. `pending_entries_` counts outstanding
// queue entries so AwaitIdle()/the destructor can wait until no queue slot
// still points at the entity — the decrement is the popper's LAST access.
//
// Help-on-block: a producer blocked on a full mailbox may call the
// destination's TryRunInline() to drain it on the producer's own thread.
// This gives a fixed pool the same progress guarantees as thread-per-
// instance (only cyclically-full mailboxes deadlock — which deadlocked
// before too) and keeps a 1-worker pool (1-core container) live.
#ifndef SDG_RUNTIME_EXECUTOR_H_
#define SDG_RUNTIME_EXECUTOR_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/common/metrics.h"

namespace sdg::runtime {

class Executor;

// A schedulable entity: something with its own inbox that processes work in
// slices. Derivers implement RunSlice() — drain a bounded amount of work,
// return true if more is immediately available (the executor re-enqueues).
class Schedulable {
 public:
  virtual ~Schedulable();

  // Associates the entity with its executor. Call before the first Ready().
  void BindExecutor(Executor* ex) { home_ = ex; }
  Executor* executor() const { return home_; }

  // Marks the entity ready: enqueues it if idle, or (if a slice is running)
  // asks that slice to re-enqueue on exit. Safe from any thread, including
  // under the inbox's lock (see BoundedQueue::SetReadyCallback). No-op until
  // BindExecutor.
  void Ready();

  // Claims and runs one slice on the calling thread if the entity is not
  // already running. Returns true if a slice ran. Used by producers blocked
  // on this entity's full inbox (help-on-block).
  bool TryRunInline();

  // Blocks until the entity is idle AND no run-queue entry still references
  // it. After this returns — with the entity's work sources closed so no new
  // Ready() can fire — the entity is safe to destroy.
  void AwaitIdle();

 protected:
  // Processes a bounded amount of work. Must not block indefinitely. Returns
  // true if more work is immediately available.
  virtual bool RunSlice() = 0;

 private:
  friend class Executor;

  enum State : uint32_t {
    kIdle = 0,     // not queued, not running
    kQueued = 1,   // at least one run-queue entry points here
    kRunning = 2,  // a thread is inside RunSlice
    kRunningNotified = 3,  // running, and a Ready() arrived meanwhile
  };

  // Transitions out of kRunning/kRunningNotified after a slice.
  void FinishSlice(bool more);

  std::atomic<uint32_t> sched_state_{kIdle};
  std::atomic<uint32_t> pending_entries_{0};
  Executor* home_ = nullptr;
};

class Executor {
 public:
  struct Options {
    // 0 = std::thread::hardware_concurrency().
    size_t workers = 0;
  };

  explicit Executor(Options options);
  Executor() : Executor(Options()) {}
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  // Process-wide executor (never destroyed; kept reachable so leak checkers
  // stay quiet). Deployments and network endpoints default to it so the
  // total thread count is O(pool size) no matter how many of them exist.
  static Executor* Shared();

  // Runs a one-shot closure on some worker. Closures bypass the claim
  // protocol — use for coarse tasks (connection setup, reconnect-replay),
  // not per-item work.
  void Submit(std::function<void()> fn);

  // Runs fn(0..n-1) across the pool, caller participating (so progress is
  // guaranteed even on a saturated or 1-worker pool); returns when all n
  // are done. `max_workers` caps total concurrency (0 = pool size). This is
  // the checkpoint/restore fan-out primitive that replaced ThreadPool.
  void Parallel(size_t n, const std::function<void(size_t)>& fn,
                size_t max_workers = 0);

  size_t workers() const { return workers_.size(); }

  ExecutorStats StatsSnapshot() const;

 private:
  friend class Schedulable;

  struct Work {
    Schedulable* ent = nullptr;        // claim-protocol entry, or
    std::function<void()> fn;          // one-shot closure
  };

  // One run queue per worker; stealing scans siblings. alignas keeps each
  // worker's hot fields off its neighbours' cache lines.
  struct alignas(64) WorkerState {
    std::mutex mutex;
    std::deque<Work> queue;
    Counter tasks_run;
    Counter steals;
  };

  void Enqueue(Schedulable* ent);
  void Push(Work work);
  void WorkerLoop(size_t index);
  bool PopWork(size_t index, Work* out, bool* stolen);
  void RunWork(Work& work, WorkerState& me, bool stolen);

  std::vector<std::unique_ptr<WorkerState>> workers_;
  std::vector<std::thread> threads_;
  std::atomic<size_t> next_queue_{0};
  std::atomic<uint64_t> work_count_{0};  // queued Work items (ready-set depth)
  std::atomic<bool> stop_{false};

  // Parks idle workers; producers notify after a push when sleepers exist.
  std::mutex idle_mutex_;
  std::condition_variable idle_cv_;
  size_t sleepers_ = 0;
};

}  // namespace sdg::runtime

#endif  // SDG_RUNTIME_EXECUTOR_H_
