// IterativeBatchLr: the Spark comparator of the scalability experiment
// (Fig. 9).
//
// Spark executes iterative logistic regression as one scheduled job per
// iteration: every iteration (re)launches one task per partition, each task
// computing a partial gradient over its cached slice, and the driver
// aggregates. The per-iteration task (re)instantiation cost is exactly what
// the paper credits SDG's pipelining with avoiding, so it is modelled as an
// explicit per-task launch overhead here.
#ifndef SDG_BASELINE_ITERATIVE_BATCH_H_
#define SDG_BASELINE_ITERATIVE_BATCH_H_

#include <cstdint>
#include <vector>

#include "src/apps/workloads.h"

namespace sdg::baseline {

struct IterativeLrOptions {
  uint32_t workers = 2;                 // parallel executors ("nodes")
  uint32_t partitions_per_worker = 2;   // tasks per stage per worker
  double task_launch_overhead_s = 0.002;  // scheduler + task setup per task
  uint32_t iterations = 3;
  double learning_rate = 0.1;
};

struct IterativeLrResult {
  double throughput_examples_s = 0;  // examples * iterations / wall time
  double total_seconds = 0;
  std::vector<double> weights;
};

// Trains on `examples` (cached in memory, Spark-style) and reports the
// effective processing throughput.
IterativeLrResult RunIterativeBatchLr(
    const IterativeLrOptions& options,
    const std::vector<apps::LrDataGenerator::Example>& examples);

}  // namespace sdg::baseline

#endif  // SDG_BASELINE_ITERATIVE_BATCH_H_
