// SyncCheckpointKvEngine: the Naiad comparator of the state-size experiment
// (Fig. 6).
//
// A single-node key/value store whose only fault-tolerance mechanism is
// synchronous global checkpointing: processing stops while the entire state
// is serialised and written out — to disk (Naiad-Disk) or to a memory buffer
// standing in for a RAM disk (Naiad-NoDisk). Request latency therefore
// spikes by the full checkpoint duration, and throughput degrades as state
// grows; the paper's SDG runs the same workload with dirty-state
// asynchronous checkpoints for contrast.
#ifndef SDG_BASELINE_SYNC_KV_H_
#define SDG_BASELINE_SYNC_KV_H_

#include <cstdint>
#include <string>

#include "src/apps/workloads.h"
#include "src/common/metrics.h"

namespace sdg::baseline {

struct SyncKvOptions {
  double checkpoint_interval_s = 1.0;
  bool checkpoint_to_disk = true;
  std::string disk_path = "/tmp/sdg_sync_kv.ckpt";
  // Extra per-request scheduling cost (Naiad routes requests through its
  // dataflow scheduler even for single-record batches).
  double per_request_overhead_s = 0;
};

struct SyncKvResult {
  double throughput_ops_s = 0;
  PercentileSummary latency_ms;
  uint64_t checkpoints = 0;
  double max_checkpoint_s = 0;
  size_t state_bytes = 0;
};

// Preloads `preload_keys` entries of `value_size` bytes, then serves the
// workload for `duration_s`, checkpointing synchronously on schedule.
SyncKvResult RunSyncCheckpointKv(const SyncKvOptions& options,
                                 apps::KvWorkload& workload,
                                 uint64_t preload_keys, size_t value_size,
                                 double duration_s);

}  // namespace sdg::baseline

#endif  // SDG_BASELINE_SYNC_KV_H_
