// BatchedWordCountEngine: a first-order model of batched dataflow systems for
// the update-granularity experiment (Fig. 8).
//
// Two comparator behaviours of §6.1 are reproduced:
//  - Naiad-like ("timely"): items are processed in scheduling batches of a
//    configurable size; every batch pays a fixed coordination/progress-
//    tracking overhead. A small batch size gives low latency, a large one
//    high throughput — the trade-off the paper configures as
//    Naiad-LowLatency (1k) vs Naiad-HighThroughput (20k).
//  - Streaming-Spark-like ("microbatch"): the batch IS the window; state is
//    carried as immutable per-batch datasets, so every window additionally
//    pays a cost proportional to the whole state size (the RDD cogroup of
//    updateStateByKey) — this is what collapses below a minimum window.
//
// In both, a window boundary forces a flush: the current partial batch is
// processed so the window's result can be emitted. The engine runs the
// workload for a fixed wall-clock duration and reports the achieved
// throughput; collapse appears as a steep throughput drop once per-window
// fixed costs dominate.
#ifndef SDG_BASELINE_BATCHED_STREAM_H_
#define SDG_BASELINE_BATCHED_STREAM_H_

#include <cstdint>
#include <string>

#include "src/apps/workloads.h"

namespace sdg::baseline {

struct BatchedWordCountOptions {
  // Items per scheduling batch (window boundaries force smaller batches).
  size_t batch_size = 1000;
  // Fixed coordination cost paid per scheduled batch (seconds).
  double per_batch_overhead_s = 0.001;
  // Per-record dataflow processing cost (seconds/word): operator dispatch,
  // (de)serialisation and channel hand-off a real engine pays per record.
  double per_item_cost_s = 0;
  // Streaming-Spark semantics: pay an O(|state|) immutable-state
  // regeneration cost at every window.
  bool copy_state_per_window = false;
  // Window (result granularity) in seconds of wall-clock time.
  double window_s = 1.0;
};

struct BatchedRunResult {
  double throughput_items_s = 0;
  uint64_t items_processed = 0;
  uint64_t batches = 0;
  uint64_t windows = 0;
  uint64_t distinct_words = 0;
  // Mean wall time between window results.
  double achieved_window_s = 0;
  // Fixed cost charged at every window boundary (forced-flush scheduling
  // overhead + state regeneration). When this approaches the window length
  // the engine cannot sustain that result granularity — the paper's
  // "smallest sustainable window size".
  double fixed_window_cost_s = 0;
};

// Runs synthetic text through the engine for `duration_s` wall seconds.
BatchedRunResult RunBatchedWordCount(const BatchedWordCountOptions& options,
                                     apps::TextGenerator& generator,
                                     double duration_s);

}  // namespace sdg::baseline

#endif  // SDG_BASELINE_BATCHED_STREAM_H_
