#include "src/baseline/sync_kv.h"

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/common/clock.h"
#include "src/common/serialize.h"

namespace sdg::baseline {

namespace {

size_t StateBytes(const std::unordered_map<int64_t, std::string>& state) {
  size_t total = 0;
  for (const auto& [k, v] : state) {
    total += sizeof(k) + v.size() + 32;
  }
  return total;
}

// Stop-the-world checkpoint: serialise everything, then (optionally) write
// it out. Returns the wall time consumed.
double SyncCheckpoint(const std::unordered_map<int64_t, std::string>& state,
                      bool to_disk, const std::string& path) {
  Stopwatch timer;
  BinaryWriter w(StateBytes(state));
  w.Write<uint64_t>(state.size());
  for (const auto& [k, v] : state) {
    w.Write<int64_t>(k);
    w.WriteString(v);
  }
  if (to_disk) {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f != nullptr) {
      std::fwrite(w.buffer().data(), 1, w.buffer().size(), f);
      std::fflush(f);
      ::fsync(::fileno(f));  // a checkpoint is only durable once on media
      std::fclose(f);
    }
  } else {
    // RAM-disk stand-in: the serialised image still has to be materialised.
    std::vector<uint8_t> ram_copy = w.buffer();
    volatile size_t sink = ram_copy.size();
    (void)sink;
  }
  return timer.ElapsedSeconds();
}

}  // namespace

SyncKvResult RunSyncCheckpointKv(const SyncKvOptions& options,
                                 apps::KvWorkload& workload,
                                 uint64_t preload_keys, size_t value_size,
                                 double duration_s) {
  std::unordered_map<int64_t, std::string> state;
  state.reserve(preload_keys);
  for (uint64_t k = 0; k < preload_keys; ++k) {
    state[static_cast<int64_t>(k)] =
        std::string(value_size, static_cast<char>('a' + k % 26));
  }

  SyncKvResult result;
  Histogram latency_ms;
  // Per-op mutex acquisition would distort the microsecond-scale latencies
  // being measured; buffer samples and flush in batches instead.
  Histogram::BatchRecorder latency_rec(&latency_ms);
  Stopwatch total;
  Stopwatch since_ckpt;
  uint64_t ops = 0;
  // Requests arriving while the engine is stopped for a checkpoint queue up;
  // each queued request observes the remaining pause. `backlog_until_op` /
  // `pause_end_s` model that drain: ops processed before the backlog clears
  // get the residual delay attributed to them.
  uint64_t backlog_start_op = 0;
  uint64_t backlog_until_op = 0;
  double pause_len_s = 0;

  while (total.ElapsedSeconds() < duration_s) {
    if (since_ckpt.ElapsedSeconds() >= options.checkpoint_interval_s) {
      double took = SyncCheckpoint(state, options.checkpoint_to_disk,
                                   options.disk_path);
      result.max_checkpoint_s = std::max(result.max_checkpoint_s, took);
      ++result.checkpoints;
      since_ckpt.Restart();
      double elapsed = total.ElapsedSeconds();
      double rate = elapsed > 0 ? static_cast<double>(ops) / elapsed : 0;
      backlog_start_op = ops;
      backlog_until_op = ops + static_cast<uint64_t>(rate * took);
      pause_len_s = took;
      continue;
    }
    if (options.per_request_overhead_s > 0) {
      // Busy-wait: sleep granularity (~50µs) is far coarser than the
      // per-request scheduling cost being modelled.
      int64_t until = Stopwatch::NowNanos() +
                      static_cast<int64_t>(options.per_request_overhead_s * 1e9);
      while (Stopwatch::NowNanos() < until) {
      }
    }
    Stopwatch op_timer;
    auto op = workload.Next();
    if (op.type == apps::KvWorkload::OpType::kWrite) {
      state[op.key] = std::move(op.value);
    } else {
      volatile bool found = state.find(op.key) != state.end();
      (void)found;
    }
    double queueing_ms = 0;
    if (ops < backlog_until_op && backlog_until_op > backlog_start_op) {
      // This request "arrived" during the pause: it waited for the rest of
      // the checkpoint plus the queue ahead of it draining.
      double remaining =
          static_cast<double>(backlog_until_op - ops) /
          static_cast<double>(backlog_until_op - backlog_start_op);
      queueing_ms = pause_len_s * 1e3 * remaining;
    }
    latency_rec.Record(op_timer.ElapsedMillis() + queueing_ms);
    ++ops;
  }
  latency_rec.Flush();

  double elapsed = total.ElapsedSeconds();
  result.throughput_ops_s = elapsed > 0 ? static_cast<double>(ops) / elapsed : 0;
  result.latency_ms = latency_ms.Snapshot();
  result.state_bytes = StateBytes(state);
  std::remove(options.disk_path.c_str());
  return result;
}

}  // namespace sdg::baseline
