#include "src/baseline/batched_stream.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/common/clock.h"

namespace sdg::baseline {

namespace {

// Busy-work stand-in for per-batch coordination: sleeping models a fixed
// scheduling/progress-tracking delay during which no items are processed.
void PayOverhead(double seconds) {
  if (seconds > 0) {
    std::this_thread::sleep_for(
        std::chrono::nanoseconds(static_cast<int64_t>(seconds * 1e9)));
  }
}

}  // namespace

BatchedRunResult RunBatchedWordCount(const BatchedWordCountOptions& options,
                                     apps::TextGenerator& generator,
                                     double duration_s) {
  std::unordered_map<std::string, int64_t> state;
  BatchedRunResult result;

  Stopwatch total;
  Stopwatch window;
  std::vector<std::string> batch;
  batch.reserve(std::min<size_t>(options.batch_size, 1 << 16));

  auto process_batch = [&] {
    if (batch.empty()) {
      return;
    }
    PayOverhead(options.per_batch_overhead_s);
    uint64_t batch_words = 0;
    for (const auto& line : batch) {
      size_t start = 0;
      while (start < line.size()) {
        size_t end = line.find(' ', start);
        if (end == std::string::npos) {
          end = line.size();
        }
        if (end > start) {
          ++state[line.substr(start, end - start)];
          ++result.items_processed;
          ++batch_words;
        }
        start = end + 1;
      }
    }
    if (options.per_item_cost_s > 0 && batch_words > 0) {
      // Busy-spin: per-record costs are far below sleep granularity.
      int64_t until =
          Stopwatch::NowNanos() +
          static_cast<int64_t>(options.per_item_cost_s * 1e9 *
                               static_cast<double>(batch_words));
      while (Stopwatch::NowNanos() < until) {
      }
    }
    ++result.batches;
    batch.clear();
  };

  uint64_t timer_windows = 0;
  double copy_cost_s = 0;
  auto close_window = [&] {
    process_batch();  // forced flush so the window result is complete
    if (options.copy_state_per_window) {
      // Immutable-dataset semantics: the new state generation is a full copy
      // (Spark's updateStateByKey cogroups every key every window).
      Stopwatch copy_timer;
      std::unordered_map<std::string, int64_t> next_generation(state);
      state.swap(next_generation);
      copy_cost_s += copy_timer.ElapsedSeconds();
    }
    ++result.windows;
    window.Restart();
  };

  while (total.ElapsedSeconds() < duration_s) {
    batch.push_back(generator.NextLine());
    if (batch.size() >= options.batch_size) {
      process_batch();
    }
    if (window.ElapsedSeconds() >= options.window_s) {
      close_window();
      ++timer_windows;
    }
  }
  close_window();  // final partial window (not counted towards cadence)

  double elapsed = total.ElapsedSeconds();
  result.throughput_items_s =
      elapsed > 0 ? static_cast<double>(result.items_processed) / elapsed : 0;
  result.distinct_words = state.size();
  // Cadence is judged on timer-driven windows only; the final partial flush
  // would skew short runs.
  result.achieved_window_s =
      timer_windows > 0 ? elapsed / static_cast<double>(timer_windows) : 0;
  result.fixed_window_cost_s =
      options.per_batch_overhead_s +
      (result.windows > 0 ? copy_cost_s / static_cast<double>(result.windows)
                          : 0);
  return result;
}

}  // namespace sdg::baseline
