#include "src/baseline/iterative_batch.h"

#include <chrono>
#include <cmath>
#include <mutex>
#include <thread>

#include "src/common/clock.h"
#include "src/common/thread_pool.h"

namespace sdg::baseline {

namespace {

double Sigmoid(double z) { return 1.0 / (1.0 + std::exp(-z)); }

}  // namespace

IterativeLrResult RunIterativeBatchLr(
    const IterativeLrOptions& options,
    const std::vector<apps::LrDataGenerator::Example>& examples) {
  IterativeLrResult result;
  if (examples.empty()) {
    return result;
  }
  const size_t dims = examples[0].x.size();
  std::vector<double> weights(dims, 0.0);

  const uint32_t num_tasks = options.workers * options.partitions_per_worker;
  const size_t slice = (examples.size() + num_tasks - 1) / num_tasks;

  ThreadPool pool(options.workers);
  Stopwatch total;

  for (uint32_t iter = 0; iter < options.iterations; ++iter) {
    std::mutex agg_mutex;
    std::vector<double> gradient(dims, 0.0);
    // One scheduled task per partition; each pays the launch overhead the
    // Spark scheduler would (task serialisation, shipping, setup).
    for (uint32_t task = 0; task < num_tasks; ++task) {
      size_t begin = task * slice;
      size_t end = std::min(examples.size(), begin + slice);
      pool.Submit([&, begin, end] {
        std::this_thread::sleep_for(std::chrono::nanoseconds(
            static_cast<int64_t>(options.task_launch_overhead_s * 1e9)));
        std::vector<double> local(dims, 0.0);
        for (size_t i = begin; i < end; ++i) {
          const auto& ex = examples[i];
          double z = 0;
          for (size_t j = 0; j < dims; ++j) {
            z += weights[j] * ex.x[j];
          }
          double err = Sigmoid(z) - static_cast<double>(ex.y);
          for (size_t j = 0; j < dims; ++j) {
            local[j] += err * ex.x[j];
          }
        }
        std::lock_guard<std::mutex> lock(agg_mutex);
        for (size_t j = 0; j < dims; ++j) {
          gradient[j] += local[j];
        }
      });
    }
    pool.Wait();
    // Driver-side model update between stages.
    for (size_t j = 0; j < dims; ++j) {
      weights[j] -= options.learning_rate * gradient[j] /
                    static_cast<double>(examples.size());
    }
  }

  result.total_seconds = total.ElapsedSeconds();
  result.throughput_examples_s =
      result.total_seconds > 0
          ? static_cast<double>(examples.size()) * options.iterations /
                result.total_seconds
          : 0;
  result.weights = std::move(weights);
  return result;
}

}  // namespace sdg::baseline
