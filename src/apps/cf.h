// Online collaborative filtering — the paper's running example (Alg. 1).
//
// The program is expressed in the translate IR exactly as the annotated Java
// class of Alg. 1: `userItem` is a @Partitioned matrix keyed by user,
// `coOcc` a @Partial matrix; addRating updates both, getRec multiplies the
// user's rating row with every coOcc replica under @Global access and merges
// the partial recommendation vectors. Translating it yields the Fig. 1 SDG
// (five task elements on two state elements).
#ifndef SDG_APPS_CF_H_
#define SDG_APPS_CF_H_

#include <cstdint>

#include "src/common/status.h"
#include "src/graph/sdg.h"
#include "src/translate/ir.h"
#include "src/translate/translator.h"

namespace sdg::apps {

struct CfOptions {
  // Item-vector dimension (recommendation vectors have this length).
  size_t num_items = 1000;
  // Initial parallelism: partitions of userItem / replicas of coOcc.
  uint32_t user_partitions = 1;
  uint32_t cooc_replicas = 1;
  // Artificial per-request work (microseconds, slept) in the getRecVec
  // multiply and the updateCoOcc update. Lets single-core hosts exhibit the
  // paper's instance-scaling behaviour: sleeping instances overlap, so added
  // instances add capacity. updateCoOcc is the CPU-intensive TE of §3.2 and
  // splits across replicas via one-to-any dispatch.
  uint32_t multiply_think_us = 0;
  uint32_t update_think_us = 0;
};

// The annotated imperative program of Alg. 1.
translate::Program BuildCfProgram(const CfOptions& options);

// Convenience: translated, executable SDG.
//   Entries: "addRating"(user, item, rating) and "getRec"(user).
//   Sink: the "merge" collector emits (user, recommendation vector).
Result<translate::Translation> BuildCfSdg(const CfOptions& options);

}  // namespace sdg::apps

#endif  // SDG_APPS_CF_H_
