#include "src/apps/wordcount.h"

#include <memory>
#include <string>

#include "src/state/keyed_dict.h"

namespace sdg::apps {

using graph::AccessMode;
using graph::Dispatch;
using graph::SdgBuilder;
using graph::StateDistribution;
using state::KeyedDict;
using state::StateAs;

using CountDict = KeyedDict<std::string, int64_t>;

Result<graph::Sdg> BuildWordCountSdg(const WordCountOptions& options) {
  SdgBuilder b;
  auto counts = b.AddState("counts", StateDistribution::kPartitioned,
                           [] { return std::make_unique<CountDict>(); });

  auto line = b.AddEntryTask("line", [](const Tuple& in, graph::TaskContext& ctx) {
    const std::string& text = in[0].AsString();
    size_t start = 0;
    while (start < text.size()) {
      size_t end = text.find(' ', start);
      if (end == std::string::npos) {
        end = text.size();
      }
      if (end > start) {
        ctx.Emit(0, Tuple{Value(text.substr(start, end - start))});
      }
      start = end + 1;
    }
  });

  const bool emit_updates = options.emit_updates;
  auto count = b.AddTask("count", [emit_updates](const Tuple& in,
                                                 graph::TaskContext& ctx) {
    auto* d = StateAs<CountDict>(ctx.state());
    const std::string& word = in[0].AsString();
    int64_t updated = 0;
    d->Update(word, [&](int64_t v) {
      updated = v + 1;
      return updated;
    });
    if (emit_updates) {
      ctx.Emit(1, Tuple{in[0], Value(updated)});
    }
  });

  auto snapshot =
      b.AddEntryTask("snapshot", [](const Tuple& in, graph::TaskContext& ctx) {
        ctx.Emit(0, in);
      });
  auto read = b.AddTask("read", [](const Tuple& in, graph::TaskContext& ctx) {
    auto* d = StateAs<CountDict>(ctx.state());
    ctx.Emit(0, Tuple{in[0], Value(d->Get(in[0].AsString()).value_or(0))});
  });

  SDG_RETURN_IF_ERROR(b.SetAccess(count, counts, AccessMode::kPartitioned));
  SDG_RETURN_IF_ERROR(b.SetAccess(read, counts, AccessMode::kPartitioned));
  b.SetInitialInstances(count, options.count_partitions);
  SDG_RETURN_IF_ERROR(b.Connect(line, count, Dispatch::kPartitioned, 0));
  SDG_RETURN_IF_ERROR(b.Connect(snapshot, read, Dispatch::kPartitioned, 0));
  return std::move(b).Build();
}

}  // namespace sdg::apps
