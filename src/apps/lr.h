// Batch logistic regression on SDGs (§6.2 scalability experiment).
//
// The model weights are a @Partial vector: every worker instance owns a
// replica, trains on its share of the batch (one-to-any dispatch) and applies
// gradients locally without coordination — the optimistic consistency the
// paper relies on for iterative ML (§3.1). A "readModel" entry performs a
// @Global read that averages the replicas through a merge collector.
#ifndef SDG_APPS_LR_H_
#define SDG_APPS_LR_H_

#include <cstdint>

#include "src/common/status.h"
#include "src/graph/sdg.h"

namespace sdg::apps {

struct LrOptions {
  size_t dimensions = 10;
  double learning_rate = 0.1;
  uint32_t worker_replicas = 1;
};

// Entries:
//   "train"(x: double vector, y: int {0,1})  — one SGD step on one replica
//   "trainBatch"(xs: flattened doubles, ys: int vector) — a block of
//       examples in one data item (datasets enter as splits, not records)
//   "readModel"()                            — merged (averaged) weights to
//                                              the "mergeModel" sink
// State element: "weights" (VectorState, partial).
Result<graph::Sdg> BuildLrSdg(const LrOptions& options);

// Sigmoid used by both the trainer and tests.
double LrSigmoid(double z);

}  // namespace sdg::apps

#endif  // SDG_APPS_LR_H_
