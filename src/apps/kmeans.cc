#include "src/apps/kmeans.h"

#include <cmath>
#include <limits>
#include <memory>

#include "src/state/dense_matrix.h"

namespace sdg::apps {

using graph::AccessMode;
using graph::Dispatch;
using graph::SdgBuilder;
using graph::StateDistribution;
using state::DenseMatrix;
using state::StateAs;

Result<graph::Sdg> BuildKMeansSdg(const KMeansOptions& options) {
  const uint32_t k = options.clusters;
  const size_t d = options.dimensions;
  if (k == 0 || d == 0) {
    return InvalidArgumentError("k-means needs clusters > 0 and dimensions > 0");
  }
  std::vector<double> init = options.initial_centroids;
  if (init.empty()) {
    // Axis-aligned unit positions: centroid i at e_{i mod d} * (1 + i/d).
    init.assign(k * d, 0.0);
    for (uint32_t i = 0; i < k; ++i) {
      init[i * d + i % d] = 1.0 + static_cast<double>(i / d);
    }
  }
  if (init.size() != static_cast<size_t>(k) * d) {
    return InvalidArgumentError("initial_centroids must be clusters x dimensions");
  }

  SdgBuilder b;
  auto model = b.AddState(
      "model", StateDistribution::kPartial, [k, d, init] {
        auto m = std::make_unique<DenseMatrix>(k, d);
        for (uint32_t i = 0; i < k; ++i) {
          for (size_t j = 0; j < d; ++j) {
            m->Set(i, j, init[i * d + j]);
          }
        }
        return m;
      });
  auto sums = b.AddState("sums", StateDistribution::kPartial, [k, d] {
    return std::make_unique<DenseMatrix>(k, d + 1);
  });

  // assign: nearest centroid under the local model replica.
  auto assign = b.AddEntryTask(
      "assign", [k, d](const Tuple& in, graph::TaskContext& ctx) {
        auto* m = StateAs<DenseMatrix>(ctx.state());
        const auto& x = in[0].AsDoubleVector();
        uint32_t best = 0;
        double best_dist = std::numeric_limits<double>::infinity();
        for (uint32_t c = 0; c < k; ++c) {
          double dist = 0;
          for (size_t j = 0; j < d && j < x.size(); ++j) {
            double diff = m->Get(c, j) - x[j];
            dist += diff * diff;
          }
          if (dist < best_dist) {
            best_dist = dist;
            best = c;
          }
        }
        ctx.Emit(0, Tuple{Value(static_cast<int64_t>(best)), in[0]});
        ctx.Emit(1, Tuple{Value(static_cast<int64_t>(best)), in[0]});  // sink
      });

  // accumulate: fold the assignment into one replica's sums.
  auto accumulate = b.AddTask(
      "accumulate", [d](const Tuple& in, graph::TaskContext& ctx) {
        auto* s = StateAs<DenseMatrix>(ctx.state());
        auto c = static_cast<size_t>(in[0].AsInt());
        const auto& x = in[1].AsDoubleVector();
        for (size_t j = 0; j < d && j < x.size(); ++j) {
          s->Add(c, j, x[j]);
        }
        s->Add(c, d, 1.0);
      });

  // step: fan the synchronisation token out to every sums replica.
  auto step = b.AddEntryTask("step", [](const Tuple& in, graph::TaskContext& ctx) {
    ctx.Emit(0, in);
  });
  auto read_sums = b.AddTask(
      "readSums", [k, d](const Tuple&, graph::TaskContext& ctx) {
        auto* s = StateAs<DenseMatrix>(ctx.state());
        std::vector<double> flat;
        flat.reserve(k * (d + 1));
        for (uint32_t c = 0; c < k; ++c) {
          for (size_t j = 0; j <= d; ++j) {
            flat.push_back(s->Get(c, j));
          }
        }
        ctx.Emit(0, Tuple{Value(std::move(flat))});
      });

  // newModel: reconcile the partial sums into centroids (merge TE).
  auto new_model = b.AddCollectorTask(
      "newModel",
      [k, d](const std::vector<Tuple>& partials, graph::TaskContext& ctx) {
        std::vector<double> totals(k * (d + 1), 0.0);
        for (const auto& p : partials) {
          const auto& flat = p[0].AsDoubleVector();
          for (size_t i = 0; i < totals.size() && i < flat.size(); ++i) {
            totals[i] += flat[i];
          }
        }
        std::vector<double> centroids(k * d, 0.0);
        std::vector<double> counts(k, 0.0);
        for (uint32_t c = 0; c < k; ++c) {
          double count = totals[c * (d + 1) + d];
          counts[c] = count;
          for (size_t j = 0; j < d; ++j) {
            centroids[c * d + j] =
                count > 0 ? totals[c * (d + 1) + j] / count : 0.0;
          }
        }
        Tuple update{Value(centroids), Value(counts)};
        ctx.Emit(0, update);                    // -> applyModel (one-to-all)
        ctx.Emit(1, Tuple{Value(int64_t{1})});  // -> resetSums (one-to-all)
        ctx.Emit(2, std::move(update));         // -> sink (observers)
      });

  // applyModel: every model replica adopts the reconciled centroids; empty
  // clusters keep their previous position.
  auto apply_model = b.AddTask(
      "applyModel", [k, d](const Tuple& in, graph::TaskContext& ctx) {
        auto* m = StateAs<DenseMatrix>(ctx.state());
        const auto& centroids = in[0].AsDoubleVector();
        const auto& counts = in[1].AsDoubleVector();
        for (uint32_t c = 0; c < k; ++c) {
          if (counts[c] <= 0) {
            continue;
          }
          for (size_t j = 0; j < d; ++j) {
            m->Set(c, j, centroids[c * d + j]);
          }
        }
      });

  // resetSums: every sums replica starts the next iteration from zero.
  auto reset_sums = b.AddTask("resetSums", [](const Tuple&, graph::TaskContext& ctx) {
    StateAs<DenseMatrix>(ctx.state())->Fill(0.0);
  });

  SDG_RETURN_IF_ERROR(b.SetAccess(assign, model, AccessMode::kLocal));
  SDG_RETURN_IF_ERROR(b.SetAccess(accumulate, sums, AccessMode::kLocal));
  SDG_RETURN_IF_ERROR(b.SetAccess(read_sums, sums, AccessMode::kGlobal));
  SDG_RETURN_IF_ERROR(b.SetAccess(apply_model, model, AccessMode::kLocal));
  SDG_RETURN_IF_ERROR(b.SetAccess(reset_sums, sums, AccessMode::kLocal));
  b.SetInitialInstances(assign, options.replicas);
  b.SetInitialInstances(accumulate, options.replicas);

  SDG_RETURN_IF_ERROR(b.Connect(assign, accumulate, Dispatch::kOneToAny));
  SDG_RETURN_IF_ERROR(b.Connect(step, read_sums, Dispatch::kOneToAll));
  SDG_RETURN_IF_ERROR(b.Connect(read_sums, new_model, Dispatch::kAllToOne));
  SDG_RETURN_IF_ERROR(b.Connect(new_model, apply_model, Dispatch::kOneToAll));
  SDG_RETURN_IF_ERROR(b.Connect(new_model, reset_sums, Dispatch::kOneToAll));
  return std::move(b).Build();
}

}  // namespace sdg::apps
