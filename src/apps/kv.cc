#include "src/apps/kv.h"

#include <atomic>
#include <memory>

#include "src/common/logging.h"
#include "src/state/keyed_dict.h"

namespace sdg::apps {

using graph::AccessMode;
using graph::SdgBuilder;
using graph::StateDistribution;
using state::KeyedDict;
using state::StateAs;

using StoreDict = KeyedDict<int64_t, std::string>;

namespace {

// Store factory honouring the disk-backed mode. Each created instance (one
// per partition) gets its own spill subdirectory — spill dirs are wiped on
// (re-)configure, so instances must never share one.
state::StateFactory MakeStoreFactory(const KvOptions& options) {
  uint32_t stripes = options.store_stripes;
  if (options.spill_budget_bytes > 0 && stripes < 2) {
    // Eviction is stripe-granular; the hardware default collapses to one
    // stripe on a single-thread host, which cannot evict at all.
    stripes = 8;
  }
  auto next_instance = std::make_shared<std::atomic<uint32_t>>(0);
  KvOptions opts = options;
  return [opts, stripes, next_instance]() {
    auto dict = stripes > 0 ? std::make_unique<StoreDict>(stripes)
                            : std::make_unique<StoreDict>();
    if (opts.spill_budget_bytes > 0) {
      state::SpillConfig config;
      config.dir = opts.spill_dir + "/instance-" +
                   std::to_string(next_instance->fetch_add(1));
      config.budget_bytes = opts.spill_budget_bytes;
      Status st = dict->ConfigureSpill(config);
      SDG_CHECK(st.ok()) << "kv store spill configuration failed: "
                         << st.ToString();
    }
    return dict;
  };
}

}  // namespace

Result<graph::Sdg> BuildKvSdg(const KvOptions& options) {
  if (options.spill_budget_bytes > 0 && options.spill_dir.empty()) {
    return InvalidArgumentError(
        "kv spill mode needs a process-private spill_dir");
  }
  SdgBuilder b;
  auto store = b.AddState("store", StateDistribution::kPartitioned,
                          MakeStoreFactory(options));

  auto put = b.AddEntryTask("put", [](const Tuple& in, graph::TaskContext& ctx) {
    StateAs<StoreDict>(ctx.state())->Put(in[0].AsInt(), in[1].AsString());
  });
  auto get = b.AddEntryTask("get", [](const Tuple& in, graph::TaskContext& ctx) {
    // View copies the value once straight into the output tuple instead of
    // materialising an optional<string> and copying again on emit.
    std::string out;
    StateAs<StoreDict>(ctx.state())
        ->View(in[0].AsInt(), [&out](const std::string& v) { out = v; });
    ctx.Emit(0, Tuple{in[0], Value(std::move(out))});
  });
  auto del = b.AddEntryTask("del", [](const Tuple& in, graph::TaskContext& ctx) {
    StateAs<StoreDict>(ctx.state())->Erase(in[0].AsInt());
  });

  SDG_RETURN_IF_ERROR(b.SetAccess(put, store, AccessMode::kPartitioned));
  SDG_RETURN_IF_ERROR(b.SetAccess(get, store, AccessMode::kPartitioned));
  SDG_RETURN_IF_ERROR(b.SetAccess(del, store, AccessMode::kPartitioned));
  b.SetInitialInstances(put, options.partitions);
  return std::move(b).Build();
}

translate::Program BuildKvProgram() {
  using translate::FieldAnnotation;
  using translate::Method;
  using translate::OutputStmt;
  using translate::Program;
  using translate::StateField;
  using translate::StateStmt;

  Program p;
  p.name = "kv-store";
  // @Partitioned Dictionary<long, String> store;
  p.fields.push_back(StateField{"store", FieldAnnotation::kPartitioned,
                                [] { return std::make_unique<StoreDict>(); }});

  {
    Method m;
    m.name = "put";
    m.params = {"key", "value"};
    StateStmt s;
    s.field = "store";
    s.key_var = "key";
    s.inputs = {"key", "value"};
    s.op = [](state::StateBackend* b, const std::vector<Value>& in) {
      StateAs<StoreDict>(b)->Put(in[0].AsInt(), in[1].AsString());
      return Value();
    };
    m.body.push_back(std::move(s));
    p.methods.push_back(std::move(m));
  }
  {
    Method m;
    m.name = "get";
    m.params = {"key"};
    StateStmt s;
    s.field = "store";
    s.key_var = "key";
    s.inputs = {"key"};
    s.output = "value";
    s.op = [](state::StateBackend* b, const std::vector<Value>& in) {
      std::string out;
      StateAs<StoreDict>(b)->View(in[0].AsInt(),
                                  [&out](const std::string& v) { out = v; });
      return Value(std::move(out));
    };
    m.body.push_back(std::move(s));
    OutputStmt out;
    out.inputs = {"key", "value"};
    m.body.push_back(out);
    p.methods.push_back(std::move(m));
  }
  {
    Method m;
    m.name = "del";
    m.params = {"key"};
    StateStmt s;
    s.field = "store";
    s.key_var = "key";
    s.inputs = {"key"};
    s.op = [](state::StateBackend* b, const std::vector<Value>& in) {
      StateAs<StoreDict>(b)->Erase(in[0].AsInt());
      return Value();
    };
    m.body.push_back(std::move(s));
    p.methods.push_back(std::move(m));
  }
  return p;
}

Result<translate::Translation> BuildKvSdgViaTranslator(const KvOptions& options) {
  translate::TranslateOptions topt;
  topt.partitioned_instances = options.partitions;
  return translate::TranslateToSdg(BuildKvProgram(), topt);
}

}  // namespace sdg::apps
