#include "src/apps/cf.h"

#include <chrono>
#include <thread>

#include "src/common/logging.h"
#include "src/state/sparse_matrix.h"

namespace sdg::apps {

using state::SparseMatrix;
using state::StateAs;
using translate::FieldAnnotation;
using translate::LocalStmt;
using translate::MergeStmt;
using translate::Method;
using translate::OutputStmt;
using translate::Program;
using translate::StateField;
using translate::StateStmt;

namespace {

// A sparse row travels between TEs as an interleaved (column, value) vector.
std::vector<double> EncodeSparseRow(const SparseMatrix::Row& row) {
  std::vector<double> out;
  out.reserve(row.size() * 2);
  for (const auto& [col, v] : row) {
    out.push_back(static_cast<double>(col));
    out.push_back(v);
  }
  return out;
}

}  // namespace

Program BuildCfProgram(const CfOptions& options) {
  const size_t num_items = options.num_items;

  Program p;
  p.name = "collaborative-filtering";

  // @Partitioned Matrix userItem;  @Partial Matrix coOcc;  (Alg. 1 lines 1-2)
  p.fields.push_back(StateField{
      "userItem", FieldAnnotation::kPartitioned,
      [] { return std::make_unique<SparseMatrix>(); }});
  p.fields.push_back(StateField{
      "coOcc", FieldAnnotation::kPartial,
      [] { return std::make_unique<SparseMatrix>(); }});

  // void addRating(int user, int item, int rating)  (lines 4-13)
  {
    Method m;
    m.name = "addRating";
    m.params = {"user", "item", "rating"};

    // userItem.setElement(user, item, rating); userRow = userItem.getRow(user)
    StateStmt set;
    set.field = "userItem";
    set.key_var = "user";
    set.inputs = {"user", "item", "rating"};
    set.label = "updateUserItem";
    set.op = [](state::StateBackend* s, const std::vector<Value>& in) {
      auto* m = StateAs<SparseMatrix>(s);
      m->Set(in[0].AsInt(), in[1].AsInt(), in[2].ToDouble());
      return Value();
    };
    m.body.push_back(set);

    StateStmt get_row;
    get_row.field = "userItem";
    get_row.key_var = "user";
    get_row.inputs = {"user"};
    get_row.output = "userRow";
    get_row.op = [](state::StateBackend* s, const std::vector<Value>& in) {
      auto* m = StateAs<SparseMatrix>(s);
      return Value(EncodeSparseRow(m->GetRow(in[0].AsInt())));
    };
    m.body.push_back(get_row);

    // The co-occurrence update loop (lines 7-12): for every item i the user
    // rated positively, bump coOcc[item][i] and coOcc[i][item]. Local access
    // to the @Partial field: each replica absorbs a share of the updates.
    StateStmt update_cooc;
    update_cooc.field = "coOcc";
    update_cooc.inputs = {"item", "userRow"};
    update_cooc.label = "updateCoOcc";
    const uint32_t update_think_us = options.update_think_us;
    update_cooc.op = [update_think_us](state::StateBackend* s,
                                       const std::vector<Value>& in) {
      if (update_think_us > 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(update_think_us));
      }
      auto* m = StateAs<SparseMatrix>(s);
      int64_t item = in[0].AsInt();
      const auto& row = in[1].AsDoubleVector();
      for (size_t k = 0; k + 1 < row.size(); k += 2) {
        auto i = static_cast<int64_t>(row[k]);
        if (row[k + 1] > 0) {
          m->Add(item, i, 1.0);
          if (i != item) {
            m->Add(i, item, 1.0);
          }
        }
      }
      return Value();
    };
    m.body.push_back(update_cooc);
    p.methods.push_back(std::move(m));
  }

  // Vector getRec(int user)  (lines 14-19)
  {
    Method m;
    m.name = "getRec";
    m.params = {"user"};

    StateStmt get_row;
    get_row.field = "userItem";
    get_row.key_var = "user";
    get_row.inputs = {"user"};
    get_row.output = "userRow";
    get_row.label = "getUserVec";
    get_row.op = [num_items](state::StateBackend* s,
                             const std::vector<Value>& in) {
      auto* m = StateAs<SparseMatrix>(s);
      return Value(m->GetRowDense(in[0].AsInt(), num_items));
    };
    m.body.push_back(get_row);

    // @Partial Vector userRec = @Global coOcc.multiply(userRow);  (line 16)
    StateStmt multiply;
    multiply.field = "coOcc";
    multiply.global = true;
    multiply.inputs = {"userRow"};
    multiply.output = "userRec";
    multiply.label = "getRecVec";
    const uint32_t think_us = options.multiply_think_us;
    multiply.op = [num_items, think_us](state::StateBackend* s,
                                        const std::vector<Value>& in) {
      if (think_us > 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(think_us));
      }
      auto* m = StateAs<SparseMatrix>(s);
      return Value(m->MultiplyDense(in[0].AsDoubleVector(), num_items));
    };
    m.body.push_back(multiply);

    // Vector rec = merge(@Global userRec);  (lines 17, 20-25)
    MergeStmt merge;
    merge.partial_var = "userRec";
    merge.extra_inputs = {"user"};
    merge.output = "rec";
    merge.label = "merge";
    merge.op = [num_items](const std::vector<Value>& partials,
                           const std::vector<Value>& extras) {
      std::vector<double> rec(num_items, 0.0);
      for (const auto& partial : partials) {
        const auto& v = partial.AsDoubleVector();
        for (size_t i = 0; i < v.size() && i < rec.size(); ++i) {
          rec[i] += v[i];
        }
      }
      (void)extras;
      return Value(std::move(rec));
    };
    m.body.push_back(merge);

    OutputStmt out;
    out.inputs = {"user", "rec"};
    m.body.push_back(out);
    p.methods.push_back(std::move(m));
  }
  return p;
}

Result<translate::Translation> BuildCfSdg(const CfOptions& options) {
  translate::TranslateOptions topt;
  topt.partitioned_instances = options.user_partitions;
  topt.partial_instances = options.cooc_replicas;
  return translate::TranslateToSdg(BuildCfProgram(options), topt);
}

}  // namespace sdg::apps
