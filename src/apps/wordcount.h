// Streaming wordcount (§6.1, "update granularity" experiment).
//
// Lines enter at the "line" entry, a stateless splitter fans words out under
// key partitioning, and per-word counts live in a partitioned KeyedDict —
// the finest possible update granularity (one state update per word).
// A "snapshot"(word) entry reads a count back out.
#ifndef SDG_APPS_WORDCOUNT_H_
#define SDG_APPS_WORDCOUNT_H_

#include <cstdint>

#include "src/common/status.h"
#include "src/graph/sdg.h"

namespace sdg::apps {

struct WordCountOptions {
  uint32_t count_partitions = 1;
  // When true, the counter emits (word, count) to its sink on every update —
  // the per-item output mode the smallest windows degenerate to.
  bool emit_updates = false;
};

// Entries: "line"(text:string), "snapshot"(word:string).
// TEs: "line" -> "count" (partitioned KeyedDict<string,int64> "counts").
Result<graph::Sdg> BuildWordCountSdg(const WordCountOptions& options);

}  // namespace sdg::apps

#endif  // SDG_APPS_WORDCOUNT_H_
