#include "src/apps/lr.h"

#include <cmath>
#include <memory>

#include "src/state/vector_state.h"

namespace sdg::apps {

using graph::AccessMode;
using graph::Dispatch;
using graph::SdgBuilder;
using graph::StateDistribution;
using state::StateAs;
using state::VectorState;

double LrSigmoid(double z) { return 1.0 / (1.0 + std::exp(-z)); }

Result<graph::Sdg> BuildLrSdg(const LrOptions& options) {
  SdgBuilder b;
  const size_t dims = options.dimensions;
  auto weights = b.AddState("weights", StateDistribution::kPartial,
                            [dims] { return std::make_unique<VectorState>(dims); });

  const double lr = options.learning_rate;
  auto train = b.AddEntryTask("train", [lr, dims](const Tuple& in,
                                                  graph::TaskContext& ctx) {
    auto* w = StateAs<VectorState>(ctx.state());
    const auto& x = in[0].AsDoubleVector();
    double y = static_cast<double>(in[1].AsInt());
    // One shared-locked View over the weights instead of a per-dimension
    // Get (which would take the stripe lock dims times per example).
    double z = 0;
    w->View([&](const double* wv, size_t wn) {
      for (size_t i = 0; i < dims && i < x.size() && i < wn; ++i) {
        z += wv[i] * x[i];
      }
    });
    double err = LrSigmoid(z) - y;
    for (size_t i = 0; i < dims && i < x.size(); ++i) {
      w->Add(i, -lr * err * x[i]);
    }
  });

  auto train_batch = b.AddEntryTask(
      "trainBatch", [lr, dims](const Tuple& in, graph::TaskContext& ctx) {
        auto* w = StateAs<VectorState>(ctx.state());
        const auto& xs = in[0].AsDoubleVector();
        const auto& ys = in[1].AsIntVector();
        // Snapshot once, run SGD locally over the split, write back one
        // accumulated delta — two locked state operations per split.
        std::vector<double> local = w->ToDense();
        local.resize(dims, 0.0);
        std::vector<double> original = local;
        for (size_t e = 0; e < ys.size(); ++e) {
          const double* x = xs.data() + e * dims;
          double z = 0;
          for (size_t i = 0; i < dims; ++i) {
            z += local[i] * x[i];
          }
          double err = LrSigmoid(z) - static_cast<double>(ys[e]);
          for (size_t i = 0; i < dims; ++i) {
            local[i] -= lr * err * x[i];
          }
        }
        for (size_t i = 0; i < dims; ++i) {
          local[i] -= original[i];  // local now holds the delta
        }
        w->Accumulate(local);
      });

  auto read_model =
      b.AddEntryTask("readModel", [](const Tuple& in, graph::TaskContext& ctx) {
        ctx.Emit(0, in);
      });
  auto fetch = b.AddTask("fetchModel", [](const Tuple&, graph::TaskContext& ctx) {
    auto* w = StateAs<VectorState>(ctx.state());
    ctx.Emit(0, Tuple{Value(w->ToDense())});
  });
  auto merge = b.AddCollectorTask(
      "mergeModel",
      [dims](const std::vector<Tuple>& partials, graph::TaskContext& ctx) {
        std::vector<double> avg(dims, 0.0);
        for (const auto& p : partials) {
          const auto& v = p[0].AsDoubleVector();
          for (size_t i = 0; i < dims && i < v.size(); ++i) {
            avg[i] += v[i];
          }
        }
        for (auto& a : avg) {
          a /= static_cast<double>(partials.size());
        }
        ctx.Emit(0, Tuple{Value(std::move(avg))});
      });

  SDG_RETURN_IF_ERROR(b.SetAccess(train, weights, AccessMode::kLocal));
  SDG_RETURN_IF_ERROR(b.SetAccess(train_batch, weights, AccessMode::kLocal));
  SDG_RETURN_IF_ERROR(b.SetAccess(fetch, weights, AccessMode::kGlobal));
  b.SetInitialInstances(train, options.worker_replicas);
  b.SetInitialInstances(train_batch, options.worker_replicas);
  SDG_RETURN_IF_ERROR(b.Connect(read_model, fetch, Dispatch::kOneToAll));
  SDG_RETURN_IF_ERROR(b.Connect(fetch, merge, Dispatch::kAllToOne));
  return std::move(b).Build();
}

}  // namespace sdg::apps
