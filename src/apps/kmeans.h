// Online k-means clustering on SDGs.
//
// k-means is one of the algorithms the paper's introduction targets. It
// exercises the partial-state machinery end to end: assignments accumulate
// into independent @Partial sum replicas; a synchronisation point reads all
// replicas globally, a merge TE reconciles them into new centroids, and the
// reconciled model is redistributed one-to-all so every replica resumes from
// the same state — the full "access all partial instances and reconcile
// according to application semantics" loop of §3.2, plus the iterative
// update cycle of §3.1.
//
// Dataflow:
//   assign(point) --one-to-any--> accumulate           [model: local read]
//                                                      [sums: local update]
//   step() --one-to-all--> readSums --all-to-one--> newModel (merge)
//   newModel --one-to-all--> applyModel                [model: local write]
//            --one-to-all--> resetSums                 [sums: local reset]
#ifndef SDG_APPS_KMEANS_H_
#define SDG_APPS_KMEANS_H_

#include <cstdint>
#include <vector>

#include "src/common/status.h"
#include "src/graph/sdg.h"

namespace sdg::apps {

struct KMeansOptions {
  uint32_t clusters = 4;
  size_t dimensions = 2;
  uint32_t replicas = 1;
  // Initial centroid positions, row-major clusters x dimensions; empty picks
  // axis-aligned unit positions.
  std::vector<double> initial_centroids;
};

// Entries:
//   "assign"(point: double vector)  — assigns the point to the nearest
//       centroid and accumulates it into one replica's sums; also emits
//       (cluster, point) to the "assign" sink for observers.
//   "step"()                        — closes the iteration: merges all sum
//       replicas into new centroids, redistributes them to every model
//       replica and resets the sums. The merged centroid matrix (flattened)
//       is emitted to the "newModel" sink.
// State elements: "model" (partial DenseMatrix k x d),
//                 "sums" (partial DenseMatrix k x (d+1); last column holds
//                 the assignment counts).
//
// Callers must Drain() between assignment streaming and step() — the
// synchronisation point assumes assignments in flight have settled, matching
// the coordination-free iteration contract of §3.1.
Result<graph::Sdg> BuildKMeansSdg(const KMeansOptions& options);

}  // namespace sdg::apps

#endif  // SDG_APPS_KMEANS_H_
