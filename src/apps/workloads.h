// Synthetic workload generators standing in for the paper's datasets.
//
// Substitutions (see DESIGN.md §3): the Netflix rating trace and the
// Wikipedia text corpus drive state growth and access skew through their key
// distributions, which these Zipf-based generators reproduce; the Spark LR
// dataset is dense feature vectors, generated here from a known ground-truth
// separator so convergence is testable.
#ifndef SDG_APPS_WORKLOADS_H_
#define SDG_APPS_WORKLOADS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/rng.h"

namespace sdg::apps {

// Netflix-like stream of (user, item, rating) triples with Zipf-skewed
// users and items.
class RatingGenerator {
 public:
  struct Rating {
    int64_t user = 0;
    int64_t item = 0;
    int64_t rating = 0;  // 1..5
  };

  RatingGenerator(uint64_t num_users, uint64_t num_items, uint64_t seed,
                  double theta = 0.9)
      : users_(num_users, theta, seed),
        items_(num_items, theta, seed ^ 0x9e37u),
        rng_(seed ^ 0x51edu) {}

  Rating Next() {
    return Rating{static_cast<int64_t>(users_.Next()),
                  static_cast<int64_t>(items_.Next()),
                  static_cast<int64_t>(1 + rng_.NextBounded(5))};
  }

 private:
  ZipfGenerator users_;
  ZipfGenerator items_;
  Rng rng_;
};

// Wikipedia-like text: lines of Zipf-distributed words from a synthetic
// vocabulary ("w<rank>").
class TextGenerator {
 public:
  TextGenerator(uint64_t vocabulary, uint64_t words_per_line, uint64_t seed,
                double theta = 0.9)
      : words_(vocabulary, theta, seed), words_per_line_(words_per_line) {}

  std::string NextLine() {
    std::string line;
    for (uint64_t i = 0; i < words_per_line_; ++i) {
      if (i > 0) {
        line += ' ';
      }
      line += 'w';
      line += std::to_string(words_.Next());
    }
    return line;
  }

 private:
  ZipfGenerator words_;
  uint64_t words_per_line_;
};

// YCSB-like key/value operation mix with Zipf keys and fixed-size values.
class KvWorkload {
 public:
  enum class OpType { kRead, kWrite };
  struct Op {
    OpType type = OpType::kWrite;
    int64_t key = 0;
    std::string value;  // empty for reads
  };

  // `read_fraction` in [0,1]: probability an operation is a read.
  KvWorkload(uint64_t num_keys, size_t value_size, double read_fraction,
             uint64_t seed, double theta = 0.8)
      : keys_(num_keys, theta, seed),
        rng_(seed ^ 0xabcdu),
        value_size_(value_size),
        read_fraction_(read_fraction) {}

  Op Next() {
    Op op;
    op.key = static_cast<int64_t>(keys_.Next());
    if (rng_.NextDouble() < read_fraction_) {
      op.type = OpType::kRead;
    } else {
      op.type = OpType::kWrite;
      op.value.assign(value_size_, static_cast<char>('a' + op.key % 26));
    }
    return op;
  }

 private:
  ZipfGenerator keys_;
  Rng rng_;
  size_t value_size_;
  double read_fraction_;
};

// Dense feature vectors with labels from a known logistic model.
class LrDataGenerator {
 public:
  LrDataGenerator(size_t dimensions, uint64_t seed)
      : rng_(seed), true_weights_(dimensions) {
    for (auto& w : true_weights_) {
      w = rng_.NextDoubleIn(-1.0, 1.0);
    }
  }

  struct Example {
    std::vector<double> x;
    int64_t y = 0;
  };

  Example Next() {
    Example e;
    e.x.resize(true_weights_.size());
    double z = 0;
    for (size_t i = 0; i < e.x.size(); ++i) {
      e.x[i] = rng_.NextGaussian();
      z += e.x[i] * true_weights_[i];
    }
    e.y = z > 0 ? 1 : 0;
    return e;
  }

  const std::vector<double>& true_weights() const { return true_weights_; }

 private:
  Rng rng_;
  std::vector<double> true_weights_;
};

}  // namespace sdg::apps

#endif  // SDG_APPS_WORKLOADS_H_
