// Distributed partitioned key/value store on SDGs (§6.1).
//
// The paper's synthetic benchmark: "an algorithm with pure mutable state".
// Keys hash-partition a KeyedDict across the put/get state-bound group;
// values are opaque byte strings so benches can dial the state size.
#ifndef SDG_APPS_KV_H_
#define SDG_APPS_KV_H_

#include <cstdint>
#include <string>

#include "src/common/status.h"
#include "src/graph/sdg.h"
#include "src/translate/ir.h"
#include "src/translate/translator.h"

namespace sdg::apps {

struct KvOptions {
  uint32_t partitions = 1;
  // Disk-backed store mode: when spill_budget_bytes > 0 each store instance
  // runs under that resident-byte budget and evicts cold stripes to
  // chunk-framed spill files under `spill_dir/instance-<n>/` (see
  // docs/state.md, "Tiered storage"). The working set may then exceed memory
  // by the spill-capacity ratio; checkpoints, recovery, migration and
  // replica reads are unaffected. `spill_dir` must be process-private (spill
  // files are an ephemeral cache, wiped on startup). `store_stripes`
  // overrides the stripe count — eviction is stripe-granular, so a
  // single-stripe host default is too coarse; 0 picks 8 stripes when spill
  // is on and the hardware default otherwise.
  uint64_t spill_budget_bytes = 0;
  std::string spill_dir;
  uint32_t store_stripes = 0;
};

// SDG with entries:
//   "put"(key:int, value:string)  — upsert
//   "get"(key:int)                — emits (key, value|"") to the "get" sink
//   "del"(key:int)                — erase
// State element: "store" (KeyedDict<int64, string>, partitioned).
Result<graph::Sdg> BuildKvSdg(const KvOptions& options);

// The same store expressed as an annotated imperative program (the paper
// translates all applications from Java; this is the KV analogue). The
// translated SDG is behaviourally identical to BuildKvSdg's hand-built one.
translate::Program BuildKvProgram();
Result<translate::Translation> BuildKvSdgViaTranslator(const KvOptions& options);

}  // namespace sdg::apps

#endif  // SDG_APPS_KV_H_
