// Distributed partitioned key/value store on SDGs (§6.1).
//
// The paper's synthetic benchmark: "an algorithm with pure mutable state".
// Keys hash-partition a KeyedDict across the put/get state-bound group;
// values are opaque byte strings so benches can dial the state size.
#ifndef SDG_APPS_KV_H_
#define SDG_APPS_KV_H_

#include <cstdint>
#include <string>

#include "src/common/status.h"
#include "src/graph/sdg.h"
#include "src/translate/ir.h"
#include "src/translate/translator.h"

namespace sdg::apps {

struct KvOptions {
  uint32_t partitions = 1;
};

// SDG with entries:
//   "put"(key:int, value:string)  — upsert
//   "get"(key:int)                — emits (key, value|"") to the "get" sink
//   "del"(key:int)                — erase
// State element: "store" (KeyedDict<int64, string>, partitioned).
Result<graph::Sdg> BuildKvSdg(const KvOptions& options);

// The same store expressed as an annotated imperative program (the paper
// translates all applications from Java; this is the KV analogue). The
// translated SDG is behaviourally identical to BuildKvSdg's hand-built one.
translate::Program BuildKvProgram();
Result<translate::Translation> BuildKvSdgViaTranslator(const KvOptions& options);

}  // namespace sdg::apps

#endif  // SDG_APPS_KV_H_
