#include "src/apps/reference_models.h"

#include <limits>

namespace sdg::apps {

std::optional<std::string> KvReferenceModel::Get(int64_t key) const {
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    return std::nullopt;
  }
  return it->second;
}

void WordCountReferenceModel::AddLine(const std::string& text) {
  // Same split rule as the "line" TE: single-space separators, empty
  // segments skipped.
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find(' ', start);
    if (end == std::string::npos) {
      end = text.size();
    }
    if (end > start) {
      ++counts_[text.substr(start, end - start)];
    }
    start = end + 1;
  }
}

int64_t WordCountReferenceModel::CountOf(const std::string& word) const {
  auto it = counts_.find(word);
  return it == counts_.end() ? 0 : it->second;
}

LrReferenceModel::LrReferenceModel(const LrOptions& options)
    : options_(options), weights_(options.dimensions, 0.0) {}

void LrReferenceModel::Train(const std::vector<double>& x, int64_t y) {
  const size_t dims = options_.dimensions;
  const double lr = options_.learning_rate;
  double z = 0;
  for (size_t i = 0; i < dims && i < x.size(); ++i) {
    z += weights_[i] * x[i];
  }
  double err = LrSigmoid(z) - static_cast<double>(y);
  for (size_t i = 0; i < dims && i < x.size(); ++i) {
    weights_[i] += -lr * err * x[i];
  }
}

KMeansReferenceModel::KMeansReferenceModel(const KMeansOptions& options)
    : k_(options.clusters), d_(options.dimensions) {
  centroids_ = options.initial_centroids;
  if (centroids_.empty()) {
    centroids_.assign(static_cast<size_t>(k_) * d_, 0.0);
    for (uint32_t i = 0; i < k_; ++i) {
      centroids_[i * d_ + i % d_] = 1.0 + static_cast<double>(i / d_);
    }
  }
  sums_.assign(static_cast<size_t>(k_) * (d_ + 1), 0.0);
}

uint32_t KMeansReferenceModel::Assign(const std::vector<double>& x) {
  uint32_t best = 0;
  double best_dist = std::numeric_limits<double>::infinity();
  for (uint32_t c = 0; c < k_; ++c) {
    double dist = 0;
    for (size_t j = 0; j < d_ && j < x.size(); ++j) {
      double diff = centroids_[c * d_ + j] - x[j];
      dist += diff * diff;
    }
    if (dist < best_dist) {
      best_dist = dist;
      best = c;
    }
  }
  for (size_t j = 0; j < d_ && j < x.size(); ++j) {
    sums_[best * (d_ + 1) + j] += x[j];
  }
  sums_[best * (d_ + 1) + d_] += 1.0;
  return best;
}

void KMeansReferenceModel::Step() {
  for (uint32_t c = 0; c < k_; ++c) {
    double count = sums_[c * (d_ + 1) + d_];
    if (count <= 0) {
      continue;  // empty clusters keep their previous position (applyModel)
    }
    for (size_t j = 0; j < d_; ++j) {
      centroids_[c * d_ + j] = sums_[c * (d_ + 1) + j] / count;
    }
  }
  sums_.assign(sums_.size(), 0.0);
}

CfReferenceModel::CfReferenceModel(const CfOptions& options)
    : num_items_(options.num_items) {}

void CfReferenceModel::AddRating(int64_t user, int64_t item, double rating) {
  auto& row = user_item_[user];
  row[item] = rating;
  // updateCoOcc: for every item the user rated positively, bump
  // coOcc[item][i] and, off the diagonal, coOcc[i][item].
  for (const auto& [i, v] : row) {
    if (v > 0) {
      co_occ_[item][i] += 1.0;
      if (i != item) {
        co_occ_[i][item] += 1.0;
      }
    }
  }
}

std::vector<double> CfReferenceModel::GetRec(int64_t user) const {
  std::vector<double> x(num_items_, 0.0);
  auto uit = user_item_.find(user);
  if (uit != user_item_.end()) {
    for (const auto& [col, v] : uit->second) {
      if (col >= 0 && static_cast<size_t>(col) < num_items_) {
        x[static_cast<size_t>(col)] = v;
      }
    }
  }
  std::vector<double> rec(num_items_, 0.0);
  for (const auto& [row, cols] : co_occ_) {
    if (row < 0 || static_cast<size_t>(row) >= num_items_) {
      continue;
    }
    double sum = 0.0;
    for (const auto& [col, v] : cols) {
      if (col >= 0 && static_cast<size_t>(col) < x.size()) {
        sum += v * x[static_cast<size_t>(col)];
      }
    }
    rec[static_cast<size_t>(row)] = sum;
  }
  return rec;
}

}  // namespace sdg::apps
