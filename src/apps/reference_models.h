// Single-threaded reference models for the SDG applications.
//
// Each model mirrors the state logic of one app exactly — same split rules,
// same floating-point operation order where a single replica makes the
// runtime deterministic — so a differential chaos harness can feed the same
// seeded op stream to both the deployed SDG and the model and compare end
// states after checkpoints, kills, recoveries and injected faults
// (tests/harness/). The models hold no runtime dependency: verification
// against a live Deployment lives in the harness.
#ifndef SDG_APPS_REFERENCE_MODELS_H_
#define SDG_APPS_REFERENCE_MODELS_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/apps/cf.h"
#include "src/apps/kmeans.h"
#include "src/apps/lr.h"

namespace sdg::apps {

// KV store (BuildKvSdg): put / get / del on a partitioned KeyedDict.
class KvReferenceModel {
 public:
  void Put(int64_t key, std::string value) { entries_[key] = std::move(value); }
  void Del(int64_t key) { entries_.erase(key); }
  std::optional<std::string> Get(int64_t key) const;
  const std::map<int64_t, std::string>& entries() const { return entries_; }

 private:
  std::map<int64_t, std::string> entries_;
};

// Wordcount (BuildWordCountSdg): space-split lines into per-word counts.
class WordCountReferenceModel {
 public:
  void AddLine(const std::string& text);
  int64_t CountOf(const std::string& word) const;
  const std::map<std::string, int64_t>& counts() const { return counts_; }

 private:
  std::map<std::string, int64_t> counts_;
};

// Logistic regression (BuildLrSdg with worker_replicas = 1): one SGD step
// per Train call, float-op order identical to the "train" entry TE.
class LrReferenceModel {
 public:
  explicit LrReferenceModel(const LrOptions& options);
  void Train(const std::vector<double>& x, int64_t y);
  const std::vector<double>& weights() const { return weights_; }

 private:
  LrOptions options_;
  std::vector<double> weights_;
};

// K-means (BuildKMeansSdg with replicas = 1): Assign folds a point into the
// sums, Step reconciles the sums into new centroids and resets them —
// mirroring assign/accumulate/newModel/applyModel/resetSums.
class KMeansReferenceModel {
 public:
  explicit KMeansReferenceModel(const KMeansOptions& options);
  // Returns the chosen cluster (same tie-breaking as the app).
  uint32_t Assign(const std::vector<double>& x);
  void Step();
  // Row-major clusters x dimensions, like DenseMatrix.
  const std::vector<double>& centroids() const { return centroids_; }

 private:
  uint32_t k_;
  size_t d_;
  std::vector<double> centroids_;  // k x d
  std::vector<double> sums_;       // k x (d+1); last column counts
};

// Collaborative filtering (BuildCfSdg with user_partitions = 1,
// cooc_replicas = 1): AddRating mirrors updateUserItem + updateCoOcc,
// GetRec mirrors getUserVec + getRecVec + merge.
class CfReferenceModel {
 public:
  explicit CfReferenceModel(const CfOptions& options);
  void AddRating(int64_t user, int64_t item, double rating);
  std::vector<double> GetRec(int64_t user) const;

 private:
  size_t num_items_;
  std::map<int64_t, std::map<int64_t, double>> user_item_;
  std::map<int64_t, std::map<int64_t, double>> co_occ_;
};

}  // namespace sdg::apps

#endif  // SDG_APPS_REFERENCE_MODELS_H_
