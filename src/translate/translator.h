// TranslateToSdg: the java2sdg pipeline of Fig. 3 over the IR of ir.h.
//
// Steps (paper numbering):
//   2. SE extraction        — annotated fields become state elements.
//   3. SE access extraction — every StateStmt is classified as partitioned,
//                             local or global access.
//   4. TE & dataflow generation — methods are cut into task elements by the
//      five rules of §4.2: (1) one TE per entry point; (2) cut on partitioned
//      access to a new SE or a new access key; (3) cut on global access to a
//      partial SE (one-to-all edge); (4) cut on local access to a new partial
//      SE (one-to-any edge); (5) cut a collector TE for @Collection merges
//      (all-to-one edge / synchronisation barrier).
//   5. Live-variable analysis — the locals crossing each TE boundary define
//      that dataflow edge's tuple layout (and the key field position for
//      partitioned dispatch).
//   6-8. Code assembly — each TE's function interprets its statement slice,
//      reading the input tuple per the edge layout, invoking state ops
//      against the runtime-managed SE instance, and emitting the live
//      variables to the successor.
#ifndef SDG_TRANSLATE_TRANSLATOR_H_
#define SDG_TRANSLATE_TRANSLATOR_H_

#include <string>

#include "src/common/status.h"
#include "src/graph/sdg.h"
#include "src/translate/ir.h"

namespace sdg::translate {

struct TranslateOptions {
  // Initial instance counts for TEs bound to distributed SEs.
  uint32_t partitioned_instances = 1;
  uint32_t partial_instances = 1;
};

struct Translation {
  graph::Sdg sdg;
  // Human-readable translation report: TE cuts, rules applied, edge layouts.
  std::string report;
};

// Translates `program` into an executable SDG. Fails with INVALID_ARGUMENT on
// programs that violate the §4.1 restrictions (e.g. a partitioned access
// whose key variable is not available, or a merge of a variable that is not
// multi-valued).
Result<Translation> TranslateToSdg(const Program& program,
                                   const TranslateOptions& options = {});

}  // namespace sdg::translate

#endif  // SDG_TRANSLATE_TRANSLATOR_H_
