// The imperative intermediate representation consumed by the translator.
//
// java2sdg (§4.2) analyses Jimple — a typed three-address IR produced from
// Java bytecode. This module is that IR's analogue: an annotated imperative
// program made of entry methods whose bodies are sequences of statements over
// named local variables and annotated state fields. Control flow *within* a
// statement (e.g. the co-occurrence update loop of Alg. 1 lines 7-12) lives
// inside the statement's operation; statement-level structure is what the
// translator analyses, exactly as java2sdg analyses Jimple statement lists.
//
// The four paper annotations map as:
//   @Partitioned  -> FieldAnnotation::kPartitioned on a state field
//   @Partial      -> FieldAnnotation::kPartial on a state field
//   @Global       -> StateStmt::global = true (access applies to all partial
//                    instances; the assigned local becomes multi-valued)
//   @Collection   -> MergeStmt (reconciles the multi-valued local)
#ifndef SDG_TRANSLATE_IR_H_
#define SDG_TRANSLATE_IR_H_

#include <functional>
#include <string>
#include <variant>
#include <vector>

#include "src/common/value.h"
#include "src/state/state_backend.h"

namespace sdg::translate {

enum class FieldAnnotation {
  kNone,         // plain field: one SE instance
  kPartitioned,  // @Partitioned: disjoint splits by access key
  kPartial,      // @Partial: independent replicas
};

// A mutable state field of the program (becomes a state element).
struct StateField {
  std::string name;
  FieldAnnotation annotation = FieldAnnotation::kNone;
  state::StateFactory factory;
};

// An operation that touches exactly one state field.
struct StateStmt {
  std::string field;
  // @Global access: run on every partial instance; `output` becomes
  // multi-valued (one value per instance) until reconciled by a MergeStmt.
  bool global = false;
  // For @Partitioned fields: the local variable holding the access key.
  std::string key_var;
  std::vector<std::string> inputs;
  std::string output;  // empty for pure mutations
  // The imperative code block: receives the (typed) state backend and the
  // resolved input values, returns the produced value (ignored when `output`
  // is empty).
  std::function<Value(state::StateBackend*, const std::vector<Value>&)> op;
  // Optional name for the task element cut at this statement.
  std::string label;
};

// Pure computation on locals.
struct LocalStmt {
  std::vector<std::string> inputs;
  std::string output;
  std::function<Value(const std::vector<Value>&)> op;
  std::string label;
};

// @Collection reconciliation: consumes every instance's value of a
// multi-valued local (produced under @Global) and computes one global value.
// Introduces an all-to-one synchronisation barrier (§4.2 rule 5).
struct MergeStmt {
  std::string partial_var;
  std::vector<std::string> extra_inputs;  // single-valued context
  std::string output;
  std::function<Value(const std::vector<Value>& partials,
                      const std::vector<Value>& extras)>
      op;
  std::string label;
};

// Emits a result tuple to the program's output (the method's return value).
struct OutputStmt {
  std::vector<std::string> inputs;
};

using Stmt = std::variant<StateStmt, LocalStmt, MergeStmt, OutputStmt>;

// One entry point of the program (rule 1 of §4.2 creates a TE per entry).
struct Method {
  std::string name;
  std::vector<std::string> params;
  std::vector<Stmt> body;
};

// A whole annotated program: the unit java2sdg translates.
struct Program {
  std::string name;
  std::vector<StateField> fields;
  std::vector<Method> methods;
};

}  // namespace sdg::translate

#endif  // SDG_TRANSLATE_IR_H_
