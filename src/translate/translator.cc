#include "src/translate/translator.h"

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <sstream>

#include "src/common/logging.h"

namespace sdg::translate {
namespace {

using graph::AccessMode;
using graph::Dispatch;

// One task element's worth of statements, produced by the TE-partitioning
// pass (Fig. 3 step 4).
struct Slice {
  std::string name;
  bool is_entry = false;
  bool is_collector = false;   // gathers an all-to-one barrier
  bool has_merge = false;      // collector starting with a MergeStmt
  int field = -1;              // index into program.fields, -1 = stateless
  AccessMode access = AccessMode::kNone;
  std::string key_var;         // for partitioned access
  Dispatch in_dispatch = Dispatch::kOneToAny;  // edge into this slice
  std::vector<Stmt> stmts;
  // Filled by live-variable analysis:
  std::vector<std::string> layout_in;
};

// Per-statement uses/defs for the live-variable pass (Fig. 3 step 5).
void UsesAndDefs(const Stmt& stmt, std::vector<std::string>& uses,
                 std::vector<std::string>& defs) {
  if (const auto* s = std::get_if<StateStmt>(&stmt)) {
    uses = s->inputs;
    if (!s->key_var.empty()) {
      uses.push_back(s->key_var);
    }
    if (!s->output.empty()) {
      defs.push_back(s->output);
    }
  } else if (const auto* l = std::get_if<LocalStmt>(&stmt)) {
    uses = l->inputs;
    if (!l->output.empty()) {
      defs.push_back(l->output);
    }
  } else if (const auto* m = std::get_if<MergeStmt>(&stmt)) {
    uses = m->extra_inputs;
    uses.push_back(m->partial_var);
    if (!m->output.empty()) {
      defs.push_back(m->output);
    }
  } else if (const auto* o = std::get_if<OutputStmt>(&stmt)) {
    uses = o->inputs;
  }
}

// The executable form of a slice, shared by the closure installed in the TE.
struct SliceExec {
  std::vector<Stmt> stmts;
  std::vector<std::string> layout_in;
  std::vector<std::string> layout_out;  // empty when there is no successor
  bool has_next = false;
  bool starts_with_merge = false;
};

using Locals = std::map<std::string, Value>;

Value ResolveLocal(const Locals& locals, const std::string& name) {
  auto it = locals.find(name);
  SDG_CHECK(it != locals.end())
      << "translated program referenced undefined local '" << name << "'";
  return it->second;
}

std::vector<Value> ResolveAll(const Locals& locals,
                              const std::vector<std::string>& names) {
  std::vector<Value> out;
  out.reserve(names.size());
  for (const auto& n : names) {
    out.push_back(ResolveLocal(locals, n));
  }
  return out;
}

// Interprets the slice body over `locals`, then forwards the live variables
// to the successor TE (code-assembly contract of Fig. 3 steps 6-8).
void RunSlice(const SliceExec& exec, Locals locals, graph::TaskContext& ctx,
              size_t first_stmt) {
  const size_t sink_index = exec.has_next ? 1 : 0;
  for (size_t i = first_stmt; i < exec.stmts.size(); ++i) {
    const Stmt& stmt = exec.stmts[i];
    if (const auto* s = std::get_if<StateStmt>(&stmt)) {
      Value out = s->op(ctx.state(), ResolveAll(locals, s->inputs));
      if (!s->output.empty()) {
        locals[s->output] = std::move(out);
      }
    } else if (const auto* l = std::get_if<LocalStmt>(&stmt)) {
      Value out = l->op(ResolveAll(locals, l->inputs));
      if (!l->output.empty()) {
        locals[l->output] = std::move(out);
      }
    } else if (std::get_if<MergeStmt>(&stmt) != nullptr) {
      SDG_CHECK(false) << "merge statement reached mid-slice";
    } else if (const auto* o = std::get_if<OutputStmt>(&stmt)) {
      Tuple t(ResolveAll(locals, o->inputs));
      ctx.Emit(sink_index, std::move(t));
    }
  }
  if (exec.has_next) {
    Tuple t(ResolveAll(locals, exec.layout_out));
    ctx.Emit(0, std::move(t));
  }
}

Locals LocalsFromTuple(const std::vector<std::string>& layout,
                       const Tuple& tuple) {
  Locals locals;
  SDG_CHECK(tuple.size() == layout.size())
      << "tuple arity mismatch: expected " << layout.size() << " got "
      << tuple.size();
  for (size_t i = 0; i < layout.size(); ++i) {
    locals[layout[i]] = tuple[i];
  }
  return locals;
}

graph::TaskFn MakeTaskFn(std::shared_ptr<SliceExec> exec) {
  return [exec](const Tuple& input, graph::TaskContext& ctx) {
    RunSlice(*exec, LocalsFromTuple(exec->layout_in, input), ctx, 0);
  };
}

graph::CollectorFn MakeCollectorFn(std::shared_ptr<SliceExec> exec) {
  return [exec](const std::vector<Tuple>& partials, graph::TaskContext& ctx) {
    SDG_CHECK(!partials.empty()) << "collector invoked with no partials";
    // Single-valued context is identical in every partial copy; take the
    // first. The merge statement (if any) additionally reads the
    // multi-valued variable from every partial.
    Locals locals = LocalsFromTuple(exec->layout_in, partials[0]);
    size_t first_stmt = 0;
    if (exec->starts_with_merge) {
      const auto& m = std::get<MergeStmt>(exec->stmts[0]);
      size_t pv_index = 0;
      for (; pv_index < exec->layout_in.size(); ++pv_index) {
        if (exec->layout_in[pv_index] == m.partial_var) {
          break;
        }
      }
      SDG_CHECK(pv_index < exec->layout_in.size())
          << "partial variable missing from collector layout";
      std::vector<Value> partial_values;
      partial_values.reserve(partials.size());
      for (const auto& p : partials) {
        partial_values.push_back(p[pv_index]);
      }
      Value merged = m.op(partial_values, ResolveAll(locals, m.extra_inputs));
      if (!m.output.empty()) {
        locals[m.output] = std::move(merged);
      }
      first_stmt = 1;
    }
    RunSlice(*exec, std::move(locals), ctx, first_stmt);
  };
}

// Translation context for one method.
class MethodTranslator {
 public:
  MethodTranslator(const Program& program, const Method& method,
                   std::ostringstream& report)
      : program_(program), method_(method), report_(report) {}

  Result<std::vector<Slice>> Partition();

 private:
  int FieldIndex(const std::string& name) const {
    for (size_t i = 0; i < program_.fields.size(); ++i) {
      if (program_.fields[i].name == name) {
        return static_cast<int>(i);
      }
    }
    return -1;
  }

  // Starts a new slice reached via `dispatch` (rule 2/3/4/5 cut).
  void Cut(Dispatch dispatch, const std::string& label, const char* rule) {
    ++cut_index_;
    Slice next;
    next.name = !label.empty()
                    ? label
                    : method_.name + "@" + std::to_string(cut_index_);
    next.in_dispatch = dispatch;
    report_ << "  cut -> TE '" << next.name << "' (" << rule << ", "
            << graph::DispatchName(dispatch) << " edge)\n";
    slices_.push_back(std::move(next));
  }

  Slice& current() { return slices_.back(); }

  const Program& program_;
  const Method& method_;
  std::ostringstream& report_;
  std::vector<Slice> slices_;
  std::set<std::string> multivalued_;
  std::set<std::string> defined_;
  int cut_index_ = 0;
};

Result<std::vector<Slice>> MethodTranslator::Partition() {
  report_ << "method '" << method_.name << "':\n";
  Slice entry;
  entry.name = method_.name;
  entry.is_entry = true;
  slices_.push_back(std::move(entry));
  defined_.insert(method_.params.begin(), method_.params.end());

  for (const Stmt& stmt : method_.body) {
    // Reject uses of undefined or stale multi-valued locals first.
    std::vector<std::string> uses, defs;
    UsesAndDefs(stmt, uses, defs);
    for (const auto& u : uses) {
      if (defined_.count(u) == 0) {
        return InvalidArgumentError("method '" + method_.name +
                                    "' uses undefined variable '" + u + "'");
      }
    }

    if (const auto* s = std::get_if<StateStmt>(&stmt)) {
      int field = FieldIndex(s->field);
      if (field < 0) {
        return InvalidArgumentError("unknown state field '" + s->field + "'");
      }
      const StateField& sf = program_.fields[field];

      AccessMode access;
      switch (sf.annotation) {
        case FieldAnnotation::kPartitioned:
          if (s->global) {
            return InvalidArgumentError(
                "@Global access to @Partitioned field '" + sf.name +
                "' is not allowed");
          }
          if (s->key_var.empty()) {
            return InvalidArgumentError("access to @Partitioned field '" +
                                        sf.name + "' requires a key variable");
          }
          access = AccessMode::kPartitioned;
          break;
        case FieldAnnotation::kPartial:
          access = s->global ? AccessMode::kGlobal : AccessMode::kLocal;
          break;
        case FieldAnnotation::kNone:
          if (s->global) {
            return InvalidArgumentError("@Global access to plain field '" +
                                        sf.name + "' is meaningless");
          }
          access = AccessMode::kLocal;
          break;
      }

      bool cut_needed;
      const char* rule = "";
      if (current().field == -1 && !current().has_merge) {
        // Slice is stateless so far: try to attach here.
        cut_needed = false;
        if (access == AccessMode::kPartitioned && current().is_entry) {
          // The entry TE can host partitioned access only if the key arrives
          // with the injected tuple.
          bool key_is_param = false;
          for (const auto& p : method_.params) {
            if (p == s->key_var) {
              key_is_param = true;
            }
          }
          if (!key_is_param) {
            cut_needed = true;
            rule = "rule 2: partitioned access, key computed after entry";
          }
        }
        if (access == AccessMode::kGlobal && !cut_needed && current().is_entry) {
          // Entry injection one-to-all is supported, but cutting keeps entry
          // TEs cheap (they fan out the request).
          cut_needed = true;
          rule = "rule 3: global access to partial SE";
        }
      } else if (current().field == field &&
                 current().access == access &&
                 current().key_var == s->key_var && !s->global) {
        cut_needed = false;  // same SE, same key, same mode: stay in this TE
      } else if (current().field == field && current().access == access &&
                 access == AccessMode::kGlobal) {
        return InvalidArgumentError(
            "consecutive @Global accesses require a merge between them");
      } else {
        cut_needed = true;
        switch (access) {
          case AccessMode::kPartitioned:
            rule = "rule 2: partitioned access to new SE/key";
            break;
          case AccessMode::kGlobal:
            if (current().access == AccessMode::kGlobal) {
              return InvalidArgumentError(
                  "global access immediately after global access; merge "
                  "first");
            }
            rule = "rule 3: global access to partial SE";
            break;
          default:
            rule = "rule 4: local access to new partial SE";
            break;
        }
      }

      // Multi-valued inputs may only feed statements that stay inside the
      // global slice that produced them (§4.1 side-effect-free parallelism);
      // crossing a cut — in particular the rule-4 barrier — requires an
      // explicit @Collection merge.
      {
        bool stays_in_global =
            !cut_needed && current().access == AccessMode::kGlobal;
        for (const auto& u : uses) {
          if (multivalued_.count(u) > 0 && !stays_in_global) {
            return InvalidArgumentError(
                "multi-valued variable '" + u +
                "' used outside its @Global context; annotate with a merge");
          }
        }
      }

      if (cut_needed) {
        Dispatch dispatch;
        switch (access) {
          case AccessMode::kPartitioned:
            dispatch = Dispatch::kPartitioned;
            break;
          case AccessMode::kGlobal:
            dispatch = Dispatch::kOneToAll;
            break;
          default:
            dispatch = Dispatch::kOneToAny;
            break;
        }
        // Rule 4 second half: local or partitioned access after a global
        // slice needs a synchronisation barrier (all-to-one) first.
        if (current().access == AccessMode::kGlobal) {
          dispatch = Dispatch::kAllToOne;
        }
        Cut(dispatch, s->label, rule);
        if (dispatch == Dispatch::kAllToOne) {
          current().is_collector = true;
          multivalued_.clear();  // per-instance values do not cross a barrier
        }
      }

      current().field = field;
      current().access = access;
      current().key_var = s->key_var;
      current().stmts.push_back(stmt);
      if (!s->output.empty()) {
        defined_.insert(s->output);
        if (s->global) {
          // §4.1: a local assigned under @Global becomes multi-valued.
          multivalued_.insert(s->output);
        } else if (current().access == AccessMode::kGlobal) {
          multivalued_.insert(s->output);
        }
      }
    } else if (const auto* l = std::get_if<LocalStmt>(&stmt)) {
      bool in_global_slice = current().access == AccessMode::kGlobal;
      for (const auto& u : uses) {
        if (multivalued_.count(u) > 0 && !in_global_slice) {
          return InvalidArgumentError(
              "multi-valued variable '" + u +
              "' used outside its @Global context; annotate with a merge");
        }
      }
      current().stmts.push_back(stmt);
      if (!l->output.empty()) {
        defined_.insert(l->output);
        if (in_global_slice) {
          multivalued_.insert(l->output);
        }
      }
    } else if (const auto* m = std::get_if<MergeStmt>(&stmt)) {
      if (multivalued_.count(m->partial_var) == 0) {
        return InvalidArgumentError(
            "merge of '" + m->partial_var +
            "' which is not multi-valued (no preceding @Global access)");
      }
      for (const auto& e : m->extra_inputs) {
        if (multivalued_.count(e) > 0) {
          return InvalidArgumentError("merge extra input '" + e +
                                      "' must be single-valued");
        }
      }
      Cut(Dispatch::kAllToOne, m->label, "rule 5: @Collection merge");
      current().is_collector = true;
      current().has_merge = true;
      current().stmts.push_back(stmt);
      multivalued_.clear();
      if (!m->output.empty()) {
        defined_.insert(m->output);
      }
    } else if (std::get_if<OutputStmt>(&stmt) != nullptr) {
      current().stmts.push_back(stmt);
    }
  }
  return slices_;
}

}  // namespace

Result<Translation> TranslateToSdg(const Program& program,
                                   const TranslateOptions& options) {
  if (program.methods.empty()) {
    return InvalidArgumentError("program has no entry methods");
  }
  std::ostringstream report;
  report << "java2sdg translation of program '" << program.name << "'\n";

  graph::SdgBuilder builder;

  // Step 2: SE extraction.
  std::vector<graph::StateId> state_ids;
  for (const auto& field : program.fields) {
    graph::StateDistribution dist;
    switch (field.annotation) {
      case FieldAnnotation::kPartitioned:
        dist = graph::StateDistribution::kPartitioned;
        break;
      case FieldAnnotation::kPartial:
        dist = graph::StateDistribution::kPartial;
        break;
      case FieldAnnotation::kNone:
        dist = graph::StateDistribution::kSingle;
        break;
    }
    if (!field.factory) {
      return InvalidArgumentError("state field '" + field.name +
                                  "' has no factory");
    }
    state_ids.push_back(builder.AddState(field.name, dist, field.factory));
    report << "SE '" << field.name << "' ("
           << graph::StateDistributionName(dist) << ")\n";
  }

  // Steps 3-4 per method, then 5 (liveness) and 6-8 (assembly).
  for (const auto& method : program.methods) {
    MethodTranslator mt(program, method, report);
    SDG_ASSIGN_OR_RETURN(std::vector<Slice> slices, mt.Partition());

    // Step 5: backward live-variable analysis over the slice chain.
    std::set<std::string> live;
    for (auto it = slices.rbegin(); it != slices.rend(); ++it) {
      for (auto sit = it->stmts.rbegin(); sit != it->stmts.rend(); ++sit) {
        std::vector<std::string> uses, defs;
        UsesAndDefs(*sit, uses, defs);
        for (const auto& d : defs) {
          live.erase(d);
        }
        live.insert(uses.begin(), uses.end());
      }
      if (it->is_entry) {
        // Entry tuples carry the method parameters, in declaration order.
        for (const auto& v : live) {
          bool is_param = false;
          for (const auto& p : method.params) {
            if (p == v) {
              is_param = true;
            }
          }
          if (!is_param) {
            return InvalidArgumentError("method '" + method.name +
                                        "': variable '" + v +
                                        "' used before definition");
          }
        }
        it->layout_in = method.params;
      } else {
        it->layout_in.assign(live.begin(), live.end());
      }
    }

    // Steps 6-8: build TEs, wire edges, install interpreter closures.
    graph::TaskId prev = 0;
    for (size_t i = 0; i < slices.size(); ++i) {
      Slice& slice = slices[i];
      auto exec = std::make_shared<SliceExec>();
      exec->stmts = slice.stmts;
      exec->layout_in = slice.layout_in;
      exec->has_next = i + 1 < slices.size();
      if (exec->has_next) {
        exec->layout_out = slices[i + 1].layout_in;
      }
      exec->starts_with_merge = slice.has_merge;

      graph::TaskId te;
      if (slice.is_entry) {
        te = builder.AddEntryTask(slice.name, MakeTaskFn(exec));
      } else if (slice.is_collector) {
        te = builder.AddCollectorTask(slice.name, MakeCollectorFn(exec));
      } else {
        te = builder.AddTask(slice.name, MakeTaskFn(exec));
      }

      if (slice.field >= 0) {
        SDG_RETURN_IF_ERROR(builder.SetAccess(
            te, state_ids[slice.field], slice.access));
        const auto& field = program.fields[slice.field];
        uint32_t instances = 1;
        if (field.annotation == FieldAnnotation::kPartitioned) {
          instances = options.partitioned_instances;
        } else if (field.annotation == FieldAnnotation::kPartial) {
          instances = options.partial_instances;
        }
        builder.SetInitialInstances(te, instances);
      }

      if (slice.is_entry) {
        if (slice.access == AccessMode::kPartitioned) {
          int key_index = -1;
          for (size_t k = 0; k < slice.layout_in.size(); ++k) {
            if (slice.layout_in[k] == slice.key_var) {
              key_index = static_cast<int>(k);
            }
          }
          SDG_CHECK(key_index >= 0) << "entry key not in parameter list";
          builder.SetEntryKeyField(te, key_index);
        }
      } else {
        int key_index = -1;
        if (slice.in_dispatch == Dispatch::kPartitioned) {
          for (size_t k = 0; k < slice.layout_in.size(); ++k) {
            if (slice.layout_in[k] == slice.key_var) {
              key_index = static_cast<int>(k);
            }
          }
          if (key_index < 0) {
            return InternalError("partition key '" + slice.key_var +
                                 "' missing from edge layout");
          }
        }
        SDG_RETURN_IF_ERROR(
            builder.Connect(prev, te, slice.in_dispatch, key_index));
      }

      report << "  TE '" << slice.name << "': "
             << (slice.field >= 0
                     ? program.fields[slice.field].name + " (" +
                           std::string(graph::AccessModeName(slice.access)) + ")"
                     : std::string("stateless"))
             << ", layout_in = [";
      for (size_t k = 0; k < slice.layout_in.size(); ++k) {
        report << (k ? ", " : "") << slice.layout_in[k];
      }
      report << "]\n";
      prev = te;
    }
  }

  SDG_ASSIGN_OR_RETURN(graph::Sdg sdg, std::move(builder).Build());
  Translation t{std::move(sdg), report.str()};
  return t;
}

}  // namespace sdg::translate
