// Counters and percentile histograms.
//
// The paper reports latency candlesticks at the 5th/25th/50th/75th/95th
// percentiles (§6) and throughput in requests/s; these types back every bench
// binary's output.
#ifndef SDG_COMMON_METRICS_H_
#define SDG_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace sdg {

// Monotonic event counter, safe for concurrent increments.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// Cache-line-padded up/down counter for hot-path accounting (e.g. the
// deployment's in-flight item count). alignas keeps the atomic on its own
// line so unrelated neighbours don't false-share with per-item updates.
// Add returns the post-update value so callers can detect the 1->0 edge.
class alignas(64) Gauge {
 public:
  int64_t Add(int64_t delta) {
    return value_.fetch_add(delta, std::memory_order_acq_rel) + delta;
  }
  int64_t value() const { return value_.load(std::memory_order_acquire); }

 private:
  std::atomic<int64_t> value_{0};
};

// Summary of a histogram at the paper's candlestick percentiles.
struct PercentileSummary {
  uint64_t count = 0;
  double min = 0;
  double max = 0;
  double mean = 0;
  double p5 = 0;
  double p25 = 0;
  double p50 = 0;
  double p75 = 0;
  double p95 = 0;
  double p99 = 0;

  // e.g. "n=1000 mean=1.2 p5=0.3 p25=0.8 p50=1.1 p75=1.5 p95=2.2".
  std::string ToString() const;

  // The same summary as a JSON object fragment, for machine-readable bench
  // output files.
  std::string ToJson() const;
};

// Records raw samples and computes exact percentiles on demand. Recording is
// lock-protected; Snapshot sorts a copy, so it is safe to call concurrently
// with recording.
class Histogram {
 public:
  void Record(double sample) {
    std::lock_guard<std::mutex> lock(mutex_);
    samples_.push_back(sample);
  }

  void RecordBatch(const std::vector<double>& samples) {
    std::lock_guard<std::mutex> lock(mutex_);
    samples_.insert(samples_.end(), samples.begin(), samples.end());
  }

  PercentileSummary Snapshot() const;

  // Amortises Record's mutex for hot paths: samples accumulate in a private
  // (single-threaded) buffer and reach the histogram via one RecordBatch per
  // flush — on capacity, explicitly, or at destruction. Percentiles stay
  // exact: every sample still lands in samples_, just later. Give each
  // recording thread its own BatchRecorder; Flush before reading a Snapshot
  // that must include the pending tail.
  class BatchRecorder {
   public:
    explicit BatchRecorder(Histogram* hist, size_t flush_at = 1024)
        : hist_(hist), flush_at_(flush_at < 1 ? 1 : flush_at) {
      buffer_.reserve(flush_at_);
    }
    ~BatchRecorder() { Flush(); }
    BatchRecorder(const BatchRecorder&) = delete;
    BatchRecorder& operator=(const BatchRecorder&) = delete;

    void Record(double sample) {
      buffer_.push_back(sample);
      if (buffer_.size() >= flush_at_) {
        Flush();
      }
    }

    void Flush() {
      if (!buffer_.empty()) {
        hist_->RecordBatch(buffer_);
        buffer_.clear();
      }
    }

    size_t pending() const { return buffer_.size(); }

   private:
    Histogram* hist_;
    const size_t flush_at_;
    std::vector<double> buffer_;
  };

  uint64_t count() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return samples_.size();
  }

  void Reset() {
    std::lock_guard<std::mutex> lock(mutex_);
    samples_.clear();
  }

 private:
  mutable std::mutex mutex_;
  std::vector<double> samples_;
};

// Computes the p-th percentile (0..100) of already-sorted samples by linear
// interpolation. Exposed for tests and for one-shot percentile math.
double PercentileOfSorted(const std::vector<double>& sorted, double p);

// --- Executor observability --------------------------------------------------
// Snapshot of the shared work-stealing executor (runtime/executor.h): how many
// schedulable slices each worker ran, how many of those it had to steal from
// a sibling's run queue, and the instantaneous ready-queue depth. The
// deployment's checkpoint driver logs this next to the checkpoint counters so
// a starved pool (depth growing, steals pegged) is visible in the same place
// as a slow checkpoint.
struct ExecutorWorkerStats {
  uint64_t tasks_run = 0;
  uint64_t steals = 0;
};

struct ExecutorStats {
  std::vector<ExecutorWorkerStats> per_worker;
  uint64_t tasks_run = 0;  // sum over workers
  uint64_t steals = 0;     // sum over workers
  uint64_t ready_queue_depth = 0;

  // e.g. "workers=4 tasks=1234 steals=56 ready=2 [w0 600/10 w1 634/46]".
  std::string ToString() const;
};

// Throughput meter: windowed rate of events over wall-clock time.
class ThroughputMeter {
 public:
  void Add(uint64_t events) { counter_.Increment(events); }

  // Events counted since the previous TakeRate call, divided by elapsed
  // seconds since then.
  double TakeRate();

 private:
  Counter counter_;
  std::mutex mutex_;
  uint64_t last_count_ = 0;
  int64_t last_ns_ = 0;
};

}  // namespace sdg

#endif  // SDG_COMMON_METRICS_H_
