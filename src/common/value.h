// Dynamically-typed values and tuples flowing along SDG dataflow edges.
//
// Data items crossing simulated node boundaries are serialised; Tuple is the
// unit of transfer (the "live variables" a TE sends to its successor after
// the translation's live-variable analysis, §4.2 step 5).
#ifndef SDG_COMMON_VALUE_H_
#define SDG_COMMON_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "src/common/serialize.h"
#include "src/common/status.h"

namespace sdg {

// One dynamically typed value. The alternatives cover everything the paper's
// applications move along dataflows: scalars, strings, and numeric vectors
// (e.g. CF's user rating row and partial recommendation vectors).
class Value {
 public:
  using Variant = std::variant<std::monostate, int64_t, double, std::string,
                               std::vector<double>, std::vector<int64_t>>;

  enum class Type : uint8_t {
    kNull = 0,
    kInt = 1,
    kDouble = 2,
    kString = 3,
    kDoubleVector = 4,
    kIntVector = 5,
  };

  Value() = default;
  Value(int64_t v) : v_(v) {}                       // NOLINT
  Value(int v) : v_(static_cast<int64_t>(v)) {}     // NOLINT
  Value(double v) : v_(v) {}                        // NOLINT
  Value(std::string v) : v_(std::move(v)) {}        // NOLINT
  Value(const char* v) : v_(std::string(v)) {}      // NOLINT
  Value(std::vector<double> v) : v_(std::move(v)) {}   // NOLINT
  Value(std::vector<int64_t> v) : v_(std::move(v)) {}  // NOLINT

  Type type() const { return static_cast<Type>(v_.index()); }
  bool is_null() const { return type() == Type::kNull; }

  int64_t AsInt() const { return std::get<int64_t>(v_); }
  double AsDouble() const { return std::get<double>(v_); }
  const std::string& AsString() const { return std::get<std::string>(v_); }
  const std::vector<double>& AsDoubleVector() const {
    return std::get<std::vector<double>>(v_);
  }
  const std::vector<int64_t>& AsIntVector() const {
    return std::get<std::vector<int64_t>>(v_);
  }
  std::vector<double>& MutableDoubleVector() {
    return std::get<std::vector<double>>(v_);
  }

  // Numeric coercion: int or double -> double.
  double ToDouble() const {
    if (type() == Type::kInt) {
      return static_cast<double>(AsInt());
    }
    return AsDouble();
  }

  void Serialize(BinaryWriter& w) const;
  static Result<Value> Deserialize(BinaryReader& r);

  // Hash used by key-partitioned dispatch; equal values hash equally.
  uint64_t Hash() const;

  bool operator==(const Value& other) const { return v_ == other.v_; }

  std::string ToString() const;

 private:
  Variant v_;
};

// An ordered sequence of values: one dataflow data item's payload.
class Tuple {
 public:
  Tuple() = default;
  Tuple(std::initializer_list<Value> values) : values_(values) {}
  explicit Tuple(std::vector<Value> values) : values_(std::move(values)) {}

  size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }
  const Value& at(size_t i) const { return values_.at(i); }
  const Value& operator[](size_t i) const { return values_[i]; }
  Value& operator[](size_t i) { return values_[i]; }
  void Append(Value v) { values_.push_back(std::move(v)); }

  const std::vector<Value>& values() const { return values_; }

  void Serialize(BinaryWriter& w) const;
  static Result<Tuple> Deserialize(BinaryReader& r);
  std::vector<uint8_t> ToBytes() const;
  static Result<Tuple> FromBytes(const std::vector<uint8_t>& bytes);

  bool operator==(const Tuple& other) const { return values_ == other.values_; }

  std::string ToString() const;

 private:
  std::vector<Value> values_;
};

}  // namespace sdg

#endif  // SDG_COMMON_VALUE_H_
