// Binary serialisation used wherever data crosses a simulated node boundary
// or is written to a checkpoint chunk. Encoding is little-endian and
// self-delimiting for variable-size fields (length-prefixed).
#ifndef SDG_COMMON_SERIALIZE_H_
#define SDG_COMMON_SERIALIZE_H_

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <map>
#include <string>
#include <string_view>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/status.h"

namespace sdg {

// Appends fields to a growable byte buffer.
class BinaryWriter {
 public:
  BinaryWriter() = default;
  explicit BinaryWriter(size_t reserve) { buffer_.reserve(reserve); }

  template <typename T>
    requires std::is_arithmetic_v<T> || std::is_enum_v<T>
  void Write(T value) {
    size_t offset = buffer_.size();
    buffer_.resize(offset + sizeof(T));
    std::memcpy(buffer_.data() + offset, &value, sizeof(T));
  }

  void WriteString(std::string_view s) {
    Write<uint64_t>(s.size());
    size_t offset = buffer_.size();
    buffer_.resize(offset + s.size());
    std::memcpy(buffer_.data() + offset, s.data(), s.size());
  }

  void WriteBytes(const void* data, size_t size) {
    size_t offset = buffer_.size();
    buffer_.resize(offset + size);
    std::memcpy(buffer_.data() + offset, data, size);
  }

  template <typename T>
    requires std::is_arithmetic_v<T>
  void WriteVector(const std::vector<T>& v) {
    Write<uint64_t>(v.size());
    WriteBytes(v.data(), v.size() * sizeof(T));
  }

  void WriteStringVector(const std::vector<std::string>& v) {
    Write<uint64_t>(v.size());
    for (const auto& s : v) {
      WriteString(s);
    }
  }

  template <typename K, typename V>
    requires std::is_arithmetic_v<K> && std::is_arithmetic_v<V>
  void WriteMap(const std::unordered_map<K, V>& m) {
    Write<uint64_t>(m.size());
    for (const auto& [k, v] : m) {
      Write(k);
      Write(v);
    }
  }

  // Resets the writer for reuse while keeping the allocated capacity — the
  // basis of thread-local scratch writers on serialisation hot paths.
  void Clear() { buffer_.clear(); }

  size_t size() const { return buffer_.size(); }
  const uint8_t* data() const { return buffer_.data(); }
  const std::vector<uint8_t>& buffer() const { return buffer_; }
  std::vector<uint8_t> TakeBuffer() && { return std::move(buffer_); }

 private:
  std::vector<uint8_t> buffer_;
};

// Reads fields back in the order they were written. All reads are
// bounds-checked; overruns return OUT_OF_RANGE rather than crashing, so a
// corrupted checkpoint chunk or message is reported, not fatal.
class BinaryReader {
 public:
  explicit BinaryReader(const std::vector<uint8_t>& buffer)
      : data_(buffer.data()), size_(buffer.size()) {}
  BinaryReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  template <typename T>
    requires std::is_arithmetic_v<T> || std::is_enum_v<T>
  Result<T> Read() {
    if (pos_ + sizeof(T) > size_) {
      return Status(StatusCode::kOutOfRange, "read past end of buffer");
    }
    T value;
    std::memcpy(&value, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }

  Result<std::string> ReadString() {
    SDG_ASSIGN_OR_RETURN(uint64_t len, Read<uint64_t>());
    if (pos_ + len > size_) {
      return Status(StatusCode::kOutOfRange, "string length past end of buffer");
    }
    std::string s(reinterpret_cast<const char*>(data_ + pos_), len);
    pos_ += len;
    return s;
  }

  template <typename T>
    requires std::is_arithmetic_v<T>
  Result<std::vector<T>> ReadVector() {
    SDG_ASSIGN_OR_RETURN(uint64_t count, Read<uint64_t>());
    if (pos_ + count * sizeof(T) > size_) {
      return Status(StatusCode::kOutOfRange, "vector length past end of buffer");
    }
    std::vector<T> v(count);
    std::memcpy(v.data(), data_ + pos_, count * sizeof(T));
    pos_ += count * sizeof(T);
    return v;
  }

  Result<std::vector<std::string>> ReadStringVector() {
    SDG_ASSIGN_OR_RETURN(uint64_t count, Read<uint64_t>());
    std::vector<std::string> v;
    v.reserve(std::min<uint64_t>(count, remaining()));
    for (uint64_t i = 0; i < count; ++i) {
      SDG_ASSIGN_OR_RETURN(std::string s, ReadString());
      v.push_back(std::move(s));
    }
    return v;
  }

  template <typename K, typename V>
    requires std::is_arithmetic_v<K> && std::is_arithmetic_v<V>
  Result<std::unordered_map<K, V>> ReadMap() {
    SDG_ASSIGN_OR_RETURN(uint64_t count, Read<uint64_t>());
    std::unordered_map<K, V> m;
    m.reserve(std::min<uint64_t>(count, remaining() / (sizeof(K) + sizeof(V))));
    for (uint64_t i = 0; i < count; ++i) {
      SDG_ASSIGN_OR_RETURN(K k, Read<K>());
      SDG_ASSIGN_OR_RETURN(V v, Read<V>());
      m.emplace(k, v);
    }
    return m;
  }

  // Advances past `n` bytes without copying them.
  Status Skip(size_t n) {
    if (pos_ + n > size_) {
      return Status(StatusCode::kOutOfRange, "skip past end of buffer");
    }
    pos_ += n;
    return Status::Ok();
  }

  size_t remaining() const { return size_ - pos_; }
  size_t position() const { return pos_; }
  bool AtEnd() const { return pos_ == size_; }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace sdg

#endif  // SDG_COMMON_SERIALIZE_H_
