#include "src/common/logging.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <thread>

namespace sdg {
namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kWarning)};
std::mutex g_log_mutex;

}  // namespace

std::string_view LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}

void Logger::SetMinLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel Logger::min_level() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

void Logger::Write(LogLevel level, std::string_view file, int line,
                   std::string_view message) {
  // Strip the directory part of the file path for readability.
  size_t slash = file.rfind('/');
  if (slash != std::string_view::npos) {
    file = file.substr(slash + 1);
  }
  auto now = std::chrono::system_clock::now().time_since_epoch();
  auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(now).count();
  std::lock_guard<std::mutex> lock(g_log_mutex);
  std::fprintf(stderr, "[%lld.%03lld %s %.*s:%d] %.*s\n",
               static_cast<long long>(ms / 1000),
               static_cast<long long>(ms % 1000),
               std::string(LogLevelName(level)).c_str(),
               static_cast<int>(file.size()), file.data(), line,
               static_cast<int>(message.size()), message.data());
}

namespace internal {

LogMessage::~LogMessage() {
  Logger::Write(level_, file_, line_, stream_.str());
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace internal
}  // namespace sdg
