// Time primitives.
//
// LogicalClock issues the TE-generated scalar timestamps that the failure
// recovery protocol attaches to every data item (§5): checkpoints record a
// vector timestamp of the last item applied per input dataflow, and
// downstream nodes discard duplicates during replay by comparing timestamps.
#ifndef SDG_COMMON_CLOCK_H_
#define SDG_COMMON_CLOCK_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace sdg {

// Monotonically increasing per-source timestamp generator.
class LogicalClock {
 public:
  uint64_t Next() { return next_.fetch_add(1, std::memory_order_relaxed); }
  uint64_t Peek() const { return next_.load(std::memory_order_relaxed); }

  // Fast-forward past `ts` (a last-issued timestamp): the next issue will be
  // at least ts + 1. Used for monotonicity across repartitioning.
  void AdvanceTo(uint64_t ts) {
    uint64_t current = next_.load(std::memory_order_relaxed);
    while (current <= ts && !next_.compare_exchange_weak(
                                current, ts + 1, std::memory_order_relaxed)) {
    }
  }

  // Resume issuing exactly at `next` (a Peek() value captured by a
  // checkpoint). Distinct from AdvanceTo: a recovered task must re-issue the
  // same timestamps for its re-processed post-checkpoint inputs, otherwise
  // the replayed stream shifts by one and the last re-emitted item escapes
  // the surviving downstreams' dedup watermark (double application).
  void ResumeAt(uint64_t next) {
    uint64_t current = next_.load(std::memory_order_relaxed);
    while (current < next && !next_.compare_exchange_weak(
                                 current, next, std::memory_order_relaxed)) {
    }
  }

 private:
  std::atomic<uint64_t> next_{1};
};

// Wall-clock stopwatch for benchmark measurement windows.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}

  void Restart() { start_ = std::chrono::steady_clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  static int64_t NowNanos() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace sdg

#endif  // SDG_COMMON_CLOCK_H_
